// aurochs-bench regenerates every table and figure of the paper's
// evaluation (§V): the area breakdown (fig. 10), join and spatial-join
// scaling (fig. 11a/b), throughput vs stream-level parallelism (fig. 12),
// the nine ridesharing queries with energy (fig. 14 / table 2), the GPU
// warp-efficiency profiling claim (§III-A), and the microarchitectural
// ablations.
//
// Usage:
//
//	aurochs-bench                  # everything
//	aurochs-bench -fig 11a         # one experiment
//	aurochs-bench -fig 14 -scale bench
//	aurochs-bench -json BENCH_2.json -quick   # serial-vs-parallel kernel perf
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"aurochs/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 10, 11a, 11b, 12, 14, warp, ablation, table2, all")
	scale := flag.String("scale", "small", "dataset scale for -fig 14: small | bench")
	pipelines := flag.Int("p", 4, "Aurochs pipelines for query execution")
	jsonOut := flag.String("json", "", "run the serial-vs-parallel kernel benchmark and write the report to this path")
	quick := flag.Bool("quick", false, "shrink -json benchmark datasets (CI-sized)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the -json benchmark's parallel runs (0 = auto mode up to GOMAXPROCS)")
	rows := flag.String("rows", "", "with -json: run the rows-vs-throughput scaling sweep at these comma-separated row counts (k/m suffixes ok, e.g. 32k,128k,1m) instead of the kernel comparison")
	compare := flag.String("compare", "", "after -json, gate the fresh report against this baseline report (fails on >10% serial cycles/sec regression)")
	gate := flag.String("gate", "", "after -json: without -rows, require experiments to beat serial (name:minSpeedup pairs, skipped on single-core hosts); with -rows, require absolute serial floors (name@rows:minCyclesPerSec pairs, single-core safe)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this path (go tool pprof)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *jsonOut != "" {
		if *rows != "" {
			counts, err := bench.ParseRows(*rows)
			if err != nil {
				log.Fatal(err)
			}
			if err := bench.Sweep(*jsonOut, counts, *quick); err != nil {
				log.Fatal(err)
			}
			if *gate != "" {
				if err := bench.GateSerialFloor(*jsonOut, *gate); err != nil {
					log.Fatal(err)
				}
			}
			return
		}
		if err := bench.Perf(*jsonOut, *quick, *parallel); err != nil {
			log.Fatal(err)
		}
		if *compare != "" {
			if err := bench.Compare(*jsonOut, *compare, 0.10); err != nil {
				log.Fatal(err)
			}
		}
		if *gate != "" {
			if err := bench.GateParallel(*jsonOut, *gate); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	runs := map[string]func() error{
		"10":       bench.Fig10,
		"11a":      bench.Fig11a,
		"11b":      bench.Fig11b,
		"12":       bench.Fig12,
		"14":       func() error { return bench.Fig14(*scale, *pipelines) },
		"warp":     bench.WarpEfficiency,
		"ablation": bench.Ablation,
		"table2":   bench.Table2,
	}
	order := []string{"10", "11a", "11b", "12", "warp", "ablation", "table2", "14"}

	if *fig == "all" {
		for _, k := range order {
			if err := runs[k](); err != nil {
				log.Fatalf("fig %s: %v", k, err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runs[strings.ToLower(*fig)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}
