// aurochs-area prints the fig. 10 silicon-cost report: the per-component
// breakdown of the memory-reordering pipeline Aurochs adds to a Gorgon
// scratchpad tile, plus the headline tile and chip overheads.
package main

import (
	"fmt"

	"aurochs/internal/area"
)

func main() {
	m := area.Default()
	fmt.Println("Aurochs scratchpad additions (fig. 10), normalized to a Gorgon scratchpad tile = 100:")
	fmt.Println()
	fmt.Print(m.Breakdown())
	fmt.Println()
	fmt.Println(area.TimingNote)
}
