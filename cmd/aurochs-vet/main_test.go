package main

import "testing"

// TestAnalyzersFor pins the directory classification: the cycle-level core
// gets the full determinism set plus contract analyzers, other internal
// packages keep the contract analyzers with print hygiene only, and the
// bench harness and non-internal directories are skipped.
func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		rel   string
		n     int
		first string
	}{
		{"internal/sim", 3, "determinism"},
		{"internal/fabric", 3, "determinism"},
		{"internal/core", 3, "determinism"},
		{"internal/blueprint", 3, "determinism"},
		{"internal/bench", 0, ""},
		{"cmd/aurochs-vet", 0, ""},
		{".", 0, ""},
	}
	for _, tc := range cases {
		as := analyzersFor(tc.rel)
		if len(as) != tc.n {
			t.Errorf("analyzersFor(%q) = %d analyzers, want %d", tc.rel, len(as), tc.n)
			continue
		}
		if tc.n > 0 && as[0].Name != tc.first {
			t.Errorf("analyzersFor(%q)[0] = %s, want %s", tc.rel, as[0].Name, tc.first)
		}
	}
}

// TestVetGraphsClean runs the -graphs path end to end: every registered
// blueprint must come through the prover with zero findings.
func TestVetGraphsClean(t *testing.T) {
	fs, err := vetGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("graph findings on a clean registry: %v", fs)
	}
}
