package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aurochs/internal/lint"
)

// TestAnalyzersFor pins the directory classification: the cycle-level core
// gets the full determinism set plus contract analyzers, other internal
// packages keep the contract analyzers with print hygiene only, and the
// bench harness and non-internal directories are skipped.
func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		rel   string
		opt   vetOptions
		n     int
		first string
		last  string
	}{
		{"internal/sim", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/fabric", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/core", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/blueprint", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/bench", vetOptions{}, 0, "", ""},
		{"cmd/aurochs-vet", vetOptions{}, 0, "", ""},
		{".", vetOptions{}, 0, "", ""},
		// The engine scope grows the optional provers; packages outside it
		// (blueprint, dram) never do.
		{"internal/sim", vetOptions{Wake: true}, 5, "determinism", "wakeprop"},
		{"internal/ring", vetOptions{Allocs: true}, 5, "determinism", "hotalloc"},
		{"internal/sim", vetOptions{Phase: true}, 5, "determinism", "phaseconf"},
		{"internal/core", vetOptions{Wake: true, Allocs: true}, 6, "determinism", "hotalloc"},
		{"internal/core", vetOptions{Wake: true, Allocs: true, Phase: true}, 7, "determinism", "phaseconf"},
		{"internal/blueprint", vetOptions{Wake: true, Allocs: true, Phase: true}, 4, "determinism", "orderdep"},
		{"internal/dram", vetOptions{Wake: true, Allocs: true}, 4, "determinism", "orderdep"},
		// Explicitly named fixture packages run the optional provers so the
		// CI negative gates exercise the real analyzer path.
		{"internal/analysis/testdata/src/wakebad", vetOptions{Wake: true}, 5, "determinism", "wakeprop"},
		{"internal/analysis/testdata/src/allocbad", vetOptions{Allocs: true}, 5, "determinism", "hotalloc"},
		{"internal/analysis/testdata/src/phasebad", vetOptions{Phase: true}, 5, "determinism", "phaseconf"},
	}
	for _, tc := range cases {
		as := analyzersFor(tc.rel, tc.opt)
		if len(as) != tc.n {
			t.Errorf("analyzersFor(%q, %+v) = %d analyzers, want %d", tc.rel, tc.opt, len(as), tc.n)
			continue
		}
		if tc.n > 0 && as[0].Name != tc.first {
			t.Errorf("analyzersFor(%q, %+v)[0] = %s, want %s", tc.rel, tc.opt, as[0].Name, tc.first)
		}
		if tc.n > 0 && as[len(as)-1].Name != tc.last {
			t.Errorf("analyzersFor(%q, %+v)[last] = %s, want %s", tc.rel, tc.opt, as[len(as)-1].Name, tc.last)
		}
	}
}

// TestVetGraphsClean runs the -graphs path end to end: every registered
// blueprint must come through the prover with zero hard findings in both
// modes. The explicitly waived CAS/publish effects surface as Waived
// findings — reported for review, never a failure.
func TestVetGraphsClean(t *testing.T) {
	for _, strict := range []bool{false, true} {
		fs, err := vetGraphs(strict)
		if err != nil {
			t.Fatal(err)
		}
		sawWaived := false
		for _, f := range fs {
			if !f.Waived {
				t.Errorf("strict=%v: hard finding on a clean registry: %v", strict, f)
			}
			if f.Analyzer != "graphs" {
				t.Errorf("graph finding missing analyzer attribution: %+v", f)
			}
			sawWaived = true
		}
		if !sawWaived {
			t.Errorf("strict=%v: expected the registry's waived order-dependent effects to be reported", strict)
		}
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the complete -json output contract — analyzer name
// and waiver status on every diagnostic, both for source-level findings
// (the orderbad fixture) and graph-level findings (the -schemas prover on
// the shipped registry, whose waived effects must carry waived=true).
// Regenerate with: go test ./cmd/aurochs-vet -run TestJSONGolden -update
func TestJSONGolden(t *testing.T) {
	fixtures := []string{
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "orderbad"),
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "wakebad"),
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "allocbad"),
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "phasebad"),
	}
	src, err := vetPackages(fixtures, vetOptions{Wake: true, Allocs: true, Phase: true})
	if err != nil {
		t.Fatal(err)
	}
	graph, err := vetGraphs(true)
	if err != nil {
		t.Fatal(err)
	}
	all := append(src, graph...)
	lint.SortFindings(all)
	for _, f := range all {
		if f.Analyzer == "" {
			t.Errorf("finding without analyzer attribution: %+v", f)
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(all); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "findings.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file %s\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}

	// The golden file itself must decode and keep the waiver split: the
	// orderbad fixture contributes hard findings, the registry contributes
	// waived ones.
	var decoded []lint.Finding
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	hard, waived := 0, 0
	for _, f := range decoded {
		if f.Waived {
			waived++
		} else {
			hard++
		}
	}
	if hard == 0 || waived == 0 {
		t.Errorf("golden file lost its hard/waived split: %d hard, %d waived", hard, waived)
	}
}
