package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aurochs/internal/lint"
)

// TestAnalyzersFor pins the directory classification: the cycle-level core
// gets the full determinism set plus contract analyzers, other internal
// packages keep the contract analyzers with print hygiene only, and the
// bench harness and non-internal directories are skipped.
func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		rel   string
		opt   vetOptions
		n     int
		first string
		last  string
	}{
		{"internal/sim", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/fabric", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/core", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/blueprint", vetOptions{}, 4, "determinism", "orderdep"},
		{"internal/bench", vetOptions{}, 0, "", ""},
		{"cmd/aurochs-vet", vetOptions{}, 0, "", ""},
		{".", vetOptions{}, 0, "", ""},
		// The engine scope grows the optional provers; packages outside it
		// (blueprint, dram) never do.
		{"internal/sim", vetOptions{Wake: true}, 5, "determinism", "wakeprop"},
		{"internal/ring", vetOptions{Allocs: true}, 5, "determinism", "hotalloc"},
		{"internal/sim", vetOptions{Phase: true}, 5, "determinism", "phaseconf"},
		{"internal/core", vetOptions{Wake: true, Allocs: true}, 6, "determinism", "hotalloc"},
		{"internal/core", vetOptions{Wake: true, Allocs: true, Phase: true}, 7, "determinism", "phaseconf"},
		{"internal/blueprint", vetOptions{Wake: true, Allocs: true, Phase: true}, 4, "determinism", "orderdep"},
		{"internal/dram", vetOptions{Wake: true, Allocs: true}, 4, "determinism", "orderdep"},
		// Explicitly named fixture packages run the optional provers so the
		// CI negative gates exercise the real analyzer path.
		{"internal/analysis/testdata/src/wakebad", vetOptions{Wake: true}, 5, "determinism", "wakeprop"},
		{"internal/analysis/testdata/src/allocbad", vetOptions{Allocs: true}, 5, "determinism", "hotalloc"},
		{"internal/analysis/testdata/src/phasebad", vetOptions{Phase: true}, 5, "determinism", "phaseconf"},
	}
	for _, tc := range cases {
		as := analyzersFor(tc.rel, tc.opt)
		if len(as) != tc.n {
			t.Errorf("analyzersFor(%q, %+v) = %d analyzers, want %d", tc.rel, tc.opt, len(as), tc.n)
			continue
		}
		if tc.n > 0 && as[0].Name != tc.first {
			t.Errorf("analyzersFor(%q, %+v)[0] = %s, want %s", tc.rel, tc.opt, as[0].Name, tc.first)
		}
		if tc.n > 0 && as[len(as)-1].Name != tc.last {
			t.Errorf("analyzersFor(%q, %+v)[last] = %s, want %s", tc.rel, tc.opt, as[len(as)-1].Name, tc.last)
		}
	}
}

// TestVetGraphsClean runs the -graphs path end to end: every registered
// blueprint must come through the prover with zero hard findings in every
// mode, including the full -schemas -flow gate. The explicitly waived
// CAS/publish effects surface as Waived findings — reported for review,
// never a failure.
func TestVetGraphsClean(t *testing.T) {
	for _, opt := range []graphOptions{
		{},
		{Schemas: true},
		{Schemas: true, Flow: true},
	} {
		fs, err := vetGraphs(opt)
		if err != nil {
			t.Fatal(err)
		}
		sawWaived := false
		for _, f := range fs {
			if !f.Waived {
				t.Errorf("%+v: hard finding on a clean registry: %v", opt, f)
			}
			if f.Analyzer != "graphs" && f.Analyzer != "flow" {
				t.Errorf("graph finding missing analyzer attribution: %+v", f)
			}
			sawWaived = true
		}
		if !sawWaived {
			t.Errorf("%+v: expected the registry's waived order-dependent effects to be reported", opt)
		}
	}
}

// TestVetGraphsFixtures pins the -fixture mode: the wedging fixture must
// produce hard error findings attributed to the flow analyzer, and the
// clean fixture none at all.
func TestVetGraphsFixtures(t *testing.T) {
	fs, err := vetGraphs(graphOptions{Flow: true, Fixture: "flowbad"})
	if err != nil {
		t.Fatal(err)
	}
	hard := 0
	for _, f := range fs {
		if !f.IsError() {
			continue
		}
		hard++
		if f.Analyzer != "flow" {
			t.Errorf("flowbad finding not attributed to the flow analyzer: %+v", f)
		}
		if f.File != "fixture:flowbad" {
			t.Errorf("flowbad finding file = %q, want fixture:flowbad", f.File)
		}
	}
	if hard == 0 {
		t.Error("the flowbad fixture produced no hard findings under -flow")
	}

	fs, err = vetGraphs(graphOptions{Flow: true, Fixture: "flowclean"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.IsError() {
			t.Errorf("hard finding on the flowclean fixture: %+v", f)
		}
	}

	if _, err := vetGraphs(graphOptions{Flow: true, Fixture: "nope"}); err == nil {
		t.Error("unknown fixture name accepted")
	}
}

// TestCensusLine pins the stderr census: every enabled family appears with
// its count, zeros included.
func TestCensusLine(t *testing.T) {
	fams := enabledFamilies(vetOptions{Wake: true}, graphOptions{Flow: true}, true, true)
	want := []string{"determinism", "sharedstate", "tickpurity", "orderdep", "wakeprop", "graphs", "flow"}
	if len(fams) != len(want) {
		t.Fatalf("enabledFamilies = %v, want %v", fams, want)
	}
	for i := range fams {
		if fams[i] != want[i] {
			t.Fatalf("enabledFamilies = %v, want %v", fams, want)
		}
	}
	got := censusLine(fams, []lint.Finding{
		{Analyzer: "flow"}, {Analyzer: "flow"}, {Analyzer: "orderdep"},
	})
	const wantLine = "determinism 0, sharedstate 0, tickpurity 0, orderdep 1, wakeprop 0, graphs 0, flow 2"
	if got != wantLine {
		t.Fatalf("censusLine = %q, want %q", got, wantLine)
	}
	// Graph-only mode (-fixture): package families drop out entirely.
	if got := censusLine(enabledFamilies(vetOptions{}, graphOptions{Flow: true}, true, false), nil); got != "graphs 0, flow 0" {
		t.Fatalf("graph-only censusLine = %q", got)
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the complete -json output contract — analyzer name
// and waiver status on every diagnostic, both for source-level findings
// (the orderbad fixture) and graph-level findings (the -schemas prover on
// the shipped registry, whose waived effects must carry waived=true).
// Regenerate with: go test ./cmd/aurochs-vet -run TestJSONGolden -update
func TestJSONGolden(t *testing.T) {
	fixtures := []string{
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "orderbad"),
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "wakebad"),
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "allocbad"),
		filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "phasebad"),
	}
	src, err := vetPackages(fixtures, vetOptions{Wake: true, Allocs: true, Phase: true})
	if err != nil {
		t.Fatal(err)
	}
	graph, err := vetGraphs(graphOptions{Schemas: true, Flow: true})
	if err != nil {
		t.Fatal(err)
	}
	flowbad, err := vetGraphs(graphOptions{Flow: true, Fixture: "flowbad"})
	if err != nil {
		t.Fatal(err)
	}
	all := append(src, graph...)
	all = append(all, flowbad...)
	lint.SortFindings(all)
	for _, f := range all {
		if f.Analyzer == "" {
			t.Errorf("finding without analyzer attribution: %+v", f)
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(all); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "findings.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file %s\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}

	// The golden file itself must decode and keep the waiver split: the
	// orderbad fixture contributes hard findings, the registry contributes
	// waived ones.
	var decoded []lint.Finding
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	hard, waived := 0, 0
	for _, f := range decoded {
		if f.Waived {
			waived++
		} else {
			hard++
		}
	}
	if hard == 0 || waived == 0 {
		t.Errorf("golden file lost its hard/waived split: %d hard, %d waived", hard, waived)
	}
}
