// aurochs-vet statically verifies the repository's simulation contracts.
// It runs the type-checked analyzers from internal/analysis over the
// source tree and — with -graphs — the flow-control prover from
// internal/fabric over every registered kernel topology.
//
// Usage:
//
//	go run ./cmd/aurochs-vet [-json] [-all] [-graphs] [-schemas] [-flow] [-fixture name] [-wake] [-allocs] [-phase] [packages]
//
// Packages default to ./... — directories are classified by path:
//
//   - internal/sim, internal/fabric, internal/spad, internal/dram (the
//     cycle-level core) get the full determinism rule set (wallclock,
//     globalrand, maprange, print) plus the contract analyzers
//     (sharedstate, tickpurity);
//   - other internal packages get print hygiene plus the contract
//     analyzers — components are defined outside the core too (kernels in
//     internal/core), and the contract analyzers are no-ops on packages
//     without components;
//   - internal/bench is exempt (it is the reporting harness — printing is
//     its job), as are cmd/ and testdata.
//
// -graphs additionally builds every blueprint in internal/blueprint and
// runs fabric.Graph.Prove on it; structural diagnostics and unproven
// flow-control obligations are reported as findings with File set to
// "graph:<name>". -schemas upgrades that to the strict prover
// (fabric.ProveOptions.RequireSchemas): every link must be schema-typed at
// both ends, and explicitly waived order-dependent effects are reported
// with "waived": true — visible in the JSON stream, but not a failure.
//
// -flow runs the token-flow abstract interpreter (internal/analysis/flow)
// over every blueprint's link graph: each cycle must prove deadlock
// freedom and drain completeness, and the graph gets a static occupancy
// bound. Failed obligations are error findings under the "flow" analyzer,
// each carrying a flow-* rule and — in the blueprint report — a replayable
// wedge witness (see DESIGN.md §14). -fixture <name> restricts the graph
// analyzers to one entry of the blueprint *fixture* registry (skipping
// package vetting entirely): CI points it at the deliberately wedging
// "flowbad" fixture to prove the -flow gate still rejects, and at
// "flowclean" to prove it still accepts.
//
// -wake adds the missed-wake prover (wakeprop), -allocs the hot-path
// allocation prover (hotalloc), and -phase the barrier-phase confinement
// prover (phaseconf) over the engine packages (internal/sim, fabric, spad,
// ring, core) — see DESIGN.md §11 and §13. Reviewed sites carry
// lint:wakeprop-ok / lint:hotalloc-ok / lint:phaseconf-ok markers and
// surface as waived. -all enables every analyzer family at once
// (-graphs -schemas -flow -wake -allocs -phase) — the CI gate, so a new
// analyzer can never be silently left out of the pipeline.
//
// Exit status is 1 when error-severity findings exist, 2 on usage or I/O
// errors; warnings and waived findings are reported without failing the
// run. The stderr census line counts findings per enabled analyzer family,
// zeros included, so a family that silently stopped reporting is visible. The dynamic half of the same contracts
// is fabric.Graph.Check, which validates graph topology at Run time,
// sim.VerifyIdleContract/VerifyWakeContract, which audit Idle answers and
// wake coverage in the conformance tests, and the AllocsPerRun gates that
// pin the measured hot path at zero allocations.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aurochs/internal/analysis"
	"aurochs/internal/analysis/flow"
	"aurochs/internal/blueprint"
	"aurochs/internal/fabric"
	"aurochs/internal/lint"
)

// cycleLevel lists the packages simulating hardware at cycle granularity;
// these get the full determinism rule set.
var cycleLevel = map[string]bool{
	"internal/sim":    true,
	"internal/fabric": true,
	"internal/spad":   true,
	"internal/dram":   true,
}

// exempt lists packages the linter skips entirely: the benchmark harness
// prints tables by design.
var exempt = map[string]bool{
	"internal/bench": true,
}

// engineScope lists the packages the wakeprop and hotalloc analyzers run
// over when -wake / -allocs is set: the event-driven engine (sim), the
// component packages whose Tick/Idle surfaces it schedules (fabric, spad,
// core), and the hot-path containers (ring). dram is reached through the
// fabric's hbmComponent adapter, whose cross-package calls surface as
// hotalloc warnings rather than silent blind spots.
var engineScope = map[string]bool{
	"internal/sim":    true,
	"internal/fabric": true,
	"internal/spad":   true,
	"internal/ring":   true,
	"internal/core":   true,
}

// vetOptions selects the optional analyzer families.
type vetOptions struct {
	// Wake enables the missed-wake prover (wakeprop) on the engine scope.
	Wake bool
	// Allocs enables the static allocation prover (hotalloc) on the engine
	// scope.
	Allocs bool
	// Phase enables the barrier-phase confinement prover (phaseconf) on the
	// engine scope.
	Phase bool
}

// analyzersFor maps a module-relative directory to the analyzers it must
// pass. Returning nil skips the directory.
func analyzersFor(rel string, opt vetOptions) []*analysis.Analyzer {
	rel = filepath.ToSlash(rel)
	var as []*analysis.Analyzer
	switch {
	case exempt[rel]:
		return nil
	case cycleLevel[rel]:
		as = []*analysis.Analyzer{analysis.Determinism, analysis.SharedState, analysis.TickPurity, analysis.Orderdep}
	case rel == "internal" || strings.HasPrefix(rel, "internal/"):
		as = []*analysis.Analyzer{
			analysis.DeterminismWith(lint.Rules{Print: true}),
			analysis.SharedState,
			analysis.TickPurity,
			analysis.Orderdep,
		}
	default:
		return nil
	}
	// Fixture packages under testdata never appear in a recursive expansion
	// (expand skips testdata); when one is named explicitly — the CI
	// negative gates — the engine analyzers must run on it.
	if engineScope[rel] || strings.Contains(rel, "testdata/src/") {
		if opt.Wake {
			as = append(as, analysis.Wakeprop)
		}
		if opt.Allocs {
			as = append(as, analysis.Hotalloc)
		}
		if opt.Phase {
			as = append(as, analysis.Phaseconf)
		}
	}
	return as
}

// expand resolves package patterns to directories. "dir/..." walks the
// tree; anything else is taken as a single directory. testdata and hidden
// directories never participate.
func expand(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recursive := arg, false
		if arg == "..." {
			root, recursive = ".", true
		} else if strings.HasSuffix(arg, "/...") {
			root, recursive = strings.TrimSuffix(arg, "/..."), true
			if root == "" {
				root = "."
			}
		}
		if !recursive {
			info, err := os.Stat(root)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// moduleRel maps dir to its path relative to the enclosing Go module, so
// classification works from any working directory. Outside a module the
// path is returned as given.
func moduleRel(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for root := abs; ; {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return dir
			}
			return rel
		}
		parent := filepath.Dir(root)
		if parent == root {
			return dir
		}
		root = parent
	}
}

// vetPackages loads each classified directory through one shared loader
// (so the stdlib type-checks once) and runs its analyzer set.
func vetPackages(dirs []string, opt vetOptions) ([]lint.Finding, error) {
	ld := analysis.NewLoader()
	var all []lint.Finding
	for _, dir := range dirs {
		rel := moduleRel(dir)
		analyzers := analyzersFor(rel, opt)
		if len(analyzers) == 0 {
			continue
		}
		importPath := "aurochs/" + filepath.ToSlash(rel)
		pkg, err := ld.Load(dir, importPath)
		if err != nil {
			return nil, err
		}
		if len(pkg.Files) == 0 {
			continue
		}
		fs, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// graphOptions selects what the graph-registry vetting proves and over
// which registry.
type graphOptions struct {
	// Schemas demands every link be schema-typed at both ends (-schemas).
	Schemas bool
	// Flow runs the token-flow abstract interpreter: deadlock freedom,
	// loop drain, and a static occupancy bound per blueprint (-flow).
	Flow bool
	// Fixture restricts vetting to one named fixture from the blueprint
	// fixture registry instead of the shipped blueprints — the CI
	// negative/positive gates on the flow prover itself.
	Fixture string
}

// graphAnalyzer attributes a graph diagnostic to its analyzer family:
// flow-* rules come from the token-flow prover, everything else from the
// structural/credit prover.
func graphAnalyzer(code fabric.DiagCode) string {
	if strings.HasPrefix(string(code), "flow-") {
		return "flow"
	}
	return "graphs"
}

// vetGraphs builds every registered blueprint (or the one named fixture)
// and runs the flow-control, schema, reorder, and — under opt.Flow —
// token-flow provers. Check diagnostics and unproven obligations become
// findings; waived effects (audited CAS ordering, declared-lossy streams)
// are reported with Waived=true for reviewability but do not fail the run.
// A blueprint that fails to build is an engine error (exit 2), because the
// registry itself is then broken.
func vetGraphs(opt graphOptions) ([]lint.Finding, error) {
	var all []lint.Finding
	// file is "graph:<blueprint>" for registry entries and
	// "fixture:<name>" in -fixture mode.
	graphFinding := func(file string, d fabric.Diag, severity string, waived bool) lint.Finding {
		return lint.Finding{
			File:     file,
			Rule:     string(d.Code),
			Msg:      d.Msg,
			Analyzer: graphAnalyzer(d.Code),
			Severity: severity,
			Waived:   waived,
		}
	}
	type target struct {
		name  string
		build func() (*fabric.Graph, error)
	}
	var targets []target
	if opt.Fixture != "" {
		fx := blueprint.FixtureByName(opt.Fixture)
		if fx == nil {
			return nil, fmt.Errorf("unknown fixture %q", opt.Fixture)
		}
		targets = []target{{"fixture:" + fx.Name, fx.Build}}
	} else {
		for _, bp := range blueprint.All() {
			targets = append(targets, target{"graph:" + bp.Name, bp.Build})
		}
	}
	for _, tg := range targets {
		g, err := tg.build()
		if err != nil {
			return nil, fmt.Errorf("blueprint %s: %w", tg.name, err)
		}
		rep, err := g.ProveWith(fabric.ProveOptions{RequireSchemas: opt.Schemas, RequireDeadlockFree: opt.Flow})
		if err != nil {
			var ce *fabric.CheckError
			if !errors.As(err, &ce) {
				return nil, fmt.Errorf("blueprint %s: %w", tg.name, err)
			}
			for _, d := range ce.Diags {
				all = append(all, graphFinding(tg.name, d, lint.SevError, false))
			}
			continue
		}
		for _, d := range rep.Warnings {
			// Performance hazards (line-rate, credit starvation) let the
			// graph run correctly, just slowly, and an opaque node on a
			// cycle is an abstention, not a proof of failure: warning
			// severity. Schema obligations under -schemas and failed flow
			// obligations — each a provable runtime failure, most carrying
			// a replayable witness — are contract failures and stay errors.
			sev := lint.SevError
			if d.Code == fabric.DiagLineRate || d.Code == fabric.DiagCreditStarved ||
				d.Code == fabric.DiagCode(flow.RuleOpaqueCycle) {
				sev = lint.SevWarning
			}
			all = append(all, graphFinding(tg.name, d, sev, false))
		}
		for _, d := range rep.Waived {
			all = append(all, graphFinding(tg.name, d, lint.SevWarning, true))
		}
	}
	return all, nil
}

// enabledFamilies lists the analyzer families a flag combination turns on,
// in census order. Every enabled family appears in the stderr census even
// at zero findings, so a silently dead analyzer is visible.
func enabledFamilies(opt vetOptions, gopt graphOptions, graphsOn, packagesOn bool) []string {
	var fams []string
	if packagesOn {
		fams = append(fams, "determinism", "sharedstate", "tickpurity", "orderdep")
		if opt.Wake {
			fams = append(fams, "wakeprop")
		}
		if opt.Allocs {
			fams = append(fams, "hotalloc")
		}
		if opt.Phase {
			fams = append(fams, "phaseconf")
		}
	}
	if graphsOn {
		fams = append(fams, "graphs")
		if gopt.Flow {
			fams = append(fams, "flow")
		}
	}
	return fams
}

// censusLine renders the per-family finding counts for stderr: one entry
// per enabled analyzer family, zeros included.
func censusLine(families []string, findings []lint.Finding) string {
	counts := make(map[string]int, len(families))
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	parts := make([]string, len(families))
	for i, fam := range families {
		parts[i] = fmt.Sprintf("%s %d", fam, counts[fam])
	}
	return strings.Join(parts, ", ")
}

func run() (int, error) {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	graphs := flag.Bool("graphs", false, "also prove flow control on every registered graph blueprint")
	schemas := flag.Bool("schemas", false, "with -graphs, require every blueprint link to be schema-typed at both ends")
	flowFlag := flag.Bool("flow", false, "with -graphs, prove deadlock freedom and bounded occupancy with the token-flow prover")
	fixture := flag.String("fixture", "", "vet only the named fixture from the blueprint fixture registry (graph analyzers only)")
	wake := flag.Bool("wake", false, "run the missed-wake prover (wakeprop) over the engine packages")
	allocs := flag.Bool("allocs", false, "run the static allocation prover (hotalloc) over the engine packages")
	phase := flag.Bool("phase", false, "run the barrier-phase confinement prover (phaseconf) over the engine packages")
	all := flag.Bool("all", false, "enable every analyzer family (-graphs -schemas -flow -wake -allocs -phase)")
	flag.Parse()
	if *all {
		*graphs, *schemas, *flowFlag, *wake, *allocs, *phase = true, true, true, true, true, true
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	opt := vetOptions{Wake: *wake, Allocs: *allocs, Phase: *phase}
	gopt := graphOptions{Schemas: *schemas, Flow: *flowFlag, Fixture: *fixture}
	graphsOn := *graphs || *schemas || *flowFlag || *fixture != ""
	packagesOn := *fixture == "" // -fixture is a graph-only mode
	var findings []lint.Finding
	if packagesOn {
		dirs, err := expand(args)
		if err != nil {
			return 2, err
		}
		findings, err = vetPackages(dirs, opt)
		if err != nil {
			return 2, err
		}
	}
	if graphsOn {
		gf, err := vetGraphs(gopt)
		if err != nil {
			return 2, err
		}
		findings = append(findings, gf...)
	}
	lint.SortFindings(findings)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	hard, warned, waived := 0, 0, 0
	for _, f := range findings {
		switch {
		case f.Waived:
			waived++
		case f.IsError():
			hard++
		default:
			warned++
		}
	}
	if !*jsonOut {
		fmt.Fprintf(os.Stderr, "aurochs-vet: %d errors (%d warnings, %d waived) — %s\n",
			hard, warned, waived, censusLine(enabledFamilies(opt, gopt, graphsOn, packagesOn), findings))
	}
	if hard > 0 {
		return 1, nil
	}
	return 0, nil
}

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aurochs-vet:", err)
	}
	os.Exit(code)
}
