// aurochs-vet statically verifies the repository's determinism discipline:
// it runs the internal/lint rules over the simulator packages and reports
// every construct that could make two runs of the same kernel disagree.
//
// Usage:
//
//	go run ./cmd/aurochs-vet [-json] [packages]
//
// Packages default to ./... — directories are classified by path:
//
//   - internal/sim, internal/fabric, internal/spad, internal/dram (the
//     cycle-level core) get every rule: wallclock, globalrand, maprange,
//     print;
//   - other internal packages get print hygiene only;
//   - internal/bench is exempt (it is the reporting harness — printing is
//     its job), as are cmd/ and testdata.
//
// Exit status is 1 when findings exist, 2 on usage or I/O errors. The
// dynamic half of the same contract is fabric.Graph.Check, which validates
// graph topology at Run time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aurochs/internal/lint"
)

// cycleLevel lists the packages simulating hardware at cycle granularity;
// these get the full rule set.
var cycleLevel = map[string]bool{
	"internal/sim":    true,
	"internal/fabric": true,
	"internal/spad":   true,
	"internal/dram":   true,
}

// exempt lists packages the linter skips entirely: the benchmark harness
// prints tables by design.
var exempt = map[string]bool{
	"internal/bench": true,
}

func classify(rel string) lint.Rules {
	rel = filepath.ToSlash(rel)
	switch {
	case cycleLevel[rel]:
		return lint.AllRules()
	case exempt[rel]:
		return lint.Rules{}
	case rel == "internal" || strings.HasPrefix(rel, "internal/"):
		return lint.Rules{Print: true}
	default:
		return lint.Rules{}
	}
}

// expand resolves package patterns to directories. "dir/..." walks the
// tree; anything else is taken as a single directory. testdata and hidden
// directories never participate.
func expand(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recursive := arg, false
		if arg == "..." {
			root, recursive = ".", true
		} else if strings.HasSuffix(arg, "/...") {
			root, recursive = strings.TrimSuffix(arg, "/..."), true
			if root == "" {
				root = "."
			}
		}
		if !recursive {
			info, err := os.Stat(root)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// moduleRel maps dir to its path relative to the enclosing Go module, so
// classification works from any working directory. Outside a module the
// path is returned as given.
func moduleRel(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for root := abs; ; {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return dir
			}
			return rel
		}
		parent := filepath.Dir(root)
		if parent == root {
			return dir
		}
		root = parent
	}
}

func run() (int, error) {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(args)
	if err != nil {
		return 2, err
	}
	var all []lint.Finding
	for _, dir := range dirs {
		rules := classify(moduleRel(dir))
		if rules.None() {
			continue
		}
		fs, err := lint.AnalyzeDir(dir, rules)
		if err != nil {
			return 2, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		return all[i].Rule < all[j].Rule
	})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.Finding{}
		}
		if err := enc.Encode(all); err != nil {
			return 2, err
		}
	} else {
		for _, f := range all {
			fmt.Println(f)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "aurochs-vet: %d findings\n", len(all))
		}
		return 1, nil
	}
	return 0, nil
}

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aurochs-vet:", err)
	}
	os.Exit(code)
}
