// aurochs-sim runs a single kernel on the cycle-level fabric simulator and
// prints its timing and microarchitectural counters — the quickest way to
// poke at the machine.
//
// Usage:
//
//	aurochs-sim -kernel hashjoin -n 20000 -p 4
//	aurochs-sim -kernel probe -n 50000 -inorder     # Capstan ablation
//	aurochs-sim -kernel partition -n 100000 -parts 16
//	aurochs-sim -kernel sort -n 200000
//	aurochs-sim -kernel btree -n 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/index/btree"
	"aurochs/internal/record"
)

func main() {
	kernel := flag.String("kernel", "hashjoin", "hashjoin | build | probe | partition | sort | btree")
	n := flag.Int("n", 20000, "records")
	p := flag.Int("p", 4, "parallel pipelines (hashjoin)")
	parts := flag.Uint("parts", 8, "partitions (partition kernel)")
	seed := flag.Int64("seed", 1, "input seed")
	inorder := flag.Bool("inorder", false, "Capstan in-order scratchpad (ablation)")
	nofwd := flag.Bool("nofwd", false, "disable RMW forwarding (ablation)")
	stats := flag.Bool("stats", false, "dump all microarchitectural counters")
	flag.Parse()

	tun := core.Tuning{InOrderSpad: *inorder, NoForwarding: *nofwd}
	rng := rand.New(rand.NewSource(*seed))
	// Keys draw from a space half the input size so joins and probes
	// actually match.
	keyMod := uint32(*n/2 + 1)
	mk := func() []record.Rec {
		out := make([]record.Rec, *n)
		for i := range out {
			out[i] = record.Make(rng.Uint32()%keyMod, uint32(i))
		}
		return out
	}

	var res core.Result
	var err error
	var extra string
	switch *kernel {
	case "hashjoin":
		var matches []record.Rec
		matches, res, err = core.HashJoin(nil, mk(), mk(), core.HashJoinOptions{Pipelines: *p, Tuning: tun})
		extra = fmt.Sprintf("matches=%d", len(matches))
	case "build":
		params := core.DefaultHashTableParams(*n)
		params.Tuning = tun
		_, res, err = core.BuildHashTable(params, mk(), nil)
	case "probe":
		params := core.DefaultHashTableParams(*n)
		params.Tuning = tun
		var ht *core.HashTable
		ht, _, err = core.BuildHashTable(params, mk(), nil)
		if err == nil {
			var matches []record.Rec
			matches, res, err = core.ProbeHashTable(ht, mk(), core.ProbeOptions{})
			extra = fmt.Sprintf("matches=%d", len(matches))
		}
	case "partition":
		params := core.DefaultPartitionParams(*n, uint32(*parts), 2)
		params.Tuning = tun
		var ps *core.PartitionSet
		ps, res, err = core.Partition(params, mk(), nil)
		if err == nil {
			extra = fmt.Sprintf("blocks=%d", ps.Blocks)
		}
	case "sort":
		hbm := dram.New(dram.DefaultConfig())
		run := core.MaterializeRun(hbm, core.RegionTables, mk(), 2)
		_, res, err = core.Sort(hbm, run, func(r record.Rec) uint64 { return uint64(r.Get(0)) })
	case "btree":
		hbm := dram.New(dram.DefaultConfig())
		items := make([]btree.KV, *n)
		for i := range items {
			items[i] = btree.KV{Key: rng.Uint32(), Val: uint32(i)}
		}
		tr := btree.Build(hbm, core.RegionTables, items)
		queries := make([]core.RangeQuery, 1000)
		for i := range queries {
			lo := rng.Uint32()
			queries[i] = core.RangeQuery{Lo: lo, Hi: lo + 1<<20, Tag: uint32(i)}
		}
		var hits []record.Rec
		hits, res, err = core.BTreeSearch(tr, queries, tun)
		extra = fmt.Sprintf("hits=%d height=%d", len(hits), tr.Height)
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel=%s n=%d cycles=%d (%.3f cycles/rec, %.2f µs at 1 GHz)\n",
		*kernel, *n, res.Cycles, float64(res.Cycles)/float64(*n), float64(res.Cycles)/1e3)
	fmt.Printf("dram traffic: %d bytes (%.1f B/rec)\n", res.DRAMBytes, float64(res.DRAMBytes)/float64(*n))
	if extra != "" {
		fmt.Println(extra)
	}
	if *stats && res.Stats != nil {
		fmt.Print(res.Stats)
	}
}
