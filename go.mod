module aurochs

go 1.22
