module aurochs

go 1.23
