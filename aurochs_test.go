package aurochs

import (
	"math/rand"
	"testing"
)

// Facade-level tests: the README quick start must actually work.

func TestFacadeHashJoin(t *testing.T) {
	build := []Rec{MakeRec(1, 100), MakeRec(2, 200), MakeRec(2, 201)}
	probe := []Rec{MakeRec(2, 9), MakeRec(3, 8)}
	matches, res, err := HashJoin(nil, build, probe, HashJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches=%d want 2", len(matches))
	}
	for _, m := range matches {
		if m.Get(0) != 2 || m.Get(1) != 9 {
			t.Fatalf("bad match %v", m)
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no simulated cycles")
	}
}

func TestFacadeBuildProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	build := make([]Rec, n)
	for i := range build {
		build[i] = MakeRec(rng.Uint32()%2000, uint32(i))
	}
	ht, _, err := BuildHashTable(DefaultHashTableParams(n), build, NewHBM())
	if err != nil {
		t.Fatal(err)
	}
	probes := []Rec{MakeRec(build[0].Get(0), 7)}
	got, _, err := ProbeHashTable(ht, probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("present key not found")
	}
}

func TestFacadeSchema(t *testing.T) {
	s := NewSchema("key", "val")
	if s.MustField("val") != 1 {
		t.Fatal("schema field index wrong")
	}
}

func TestFacadeQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	d := GenerateDataset(SmallScale(), 5)
	cpuR, err := RunQueries(NewCPUEngine(), d)
	if err != nil {
		t.Fatal(err)
	}
	aurR, err := RunQueries(NewAurochsEngine(2), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpuR) != 9 || len(aurR) != 9 {
		t.Fatalf("expected 9 queries, got %d/%d", len(cpuR), len(aurR))
	}
	for i := range cpuR {
		if cpuR[i].Fingerprint != aurR[i].Fingerprint {
			t.Errorf("%s: engines disagree", cpuR[i].Query)
		}
	}
}
