// Package aurochs is the public facade over the Aurochs reproduction: a
// cycle-level model of the dataflow-thread architecture from "Aurochs: An
// Architecture for Dataflow Threads" (Vilim, Rucker, Olukotun — ISCA 2021),
// together with the database kernels built on it, the CPU/GPU/Gorgon
// baselines, and the ridesharing benchmark queries.
//
// Quick start — join two tables on the simulated fabric:
//
//	build := []aurochs.Rec{aurochs.MakeRec(1, 100), aurochs.MakeRec(2, 200)}
//	probe := []aurochs.Rec{aurochs.MakeRec(2, 9)}
//	matches, res, err := aurochs.HashJoin(nil, build, probe, aurochs.HashJoinOptions{})
//	// matches[0] = [2, 9, 200]; res.Cycles is the simulated runtime.
//
// The deeper layers are importable directly:
//
//	internal/fabric — compute/scratchpad tiles, loops, spill queues
//	internal/spad   — the sparse reordering scratchpad (issue queues,
//	                  lane↔bank allocator, RMW atomics)
//	internal/core   — the paper's kernels (hash table, partition, tree walks)
//	internal/queries — the fig. 13 benchmark on three engines
package aurochs

import (
	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/queries"
	"aurochs/internal/record"
)

// Re-exported data model.
type (
	// Rec is a thread/data record of 32-bit fields.
	Rec = record.Rec
	// Vector is a 16-lane SIMD beat of records.
	Vector = record.Vector
	// Schema names record fields.
	Schema = record.Schema
)

// MakeRec builds a record from field values.
func MakeRec(fields ...uint32) Rec { return record.Make(fields...) }

// NewSchema builds a schema from ordered field names.
func NewSchema(names ...string) *Schema { return record.NewSchema(names...) }

// Re-exported kernel API.
type (
	// Result is a kernel's simulated timing.
	Result = core.Result
	// HashJoinOptions configures the partitioned hash join.
	HashJoinOptions = core.HashJoinOptions
	// HashTableParams sizes an on-chip hash table with DRAM overflow.
	HashTableParams = core.HashTableParams
	// HashTable is a built chained hash table.
	HashTable = core.HashTable
	// Tuning carries the microarchitectural ablation knobs.
	Tuning = core.Tuning
	// HBM is the shared high-bandwidth memory model.
	HBM = dram.HBM
)

// NewHBM builds the default ~1 TB/s HBM model instance.
func NewHBM() *HBM { return dram.New(dram.DefaultConfig()) }

// HashJoin runs the paper's two-phase partitioned hash join on the fabric
// simulator. Inputs are [key, val] records; matches are [key, probeVal,
// buildVal]. Pass a nil HBM to use a fresh default instance.
func HashJoin(hbm *HBM, build, probe []Rec, opt HashJoinOptions) ([]Rec, Result, error) {
	return core.HashJoin(hbm, build, probe, opt)
}

// BuildHashTable runs the fig. 7a build pipeline: slot stamping, node
// scatter with transparent DRAM overflow, lock-free CAS chain prepend.
func BuildHashTable(p HashTableParams, input []Rec, hbm *HBM) (*HashTable, Result, error) {
	return core.BuildHashTable(p, input, hbm)
}

// DefaultHashTableParams sizes a table for n insertions with the paper's
// scratchpad geometry.
func DefaultHashTableParams(n int) HashTableParams {
	return core.DefaultHashTableParams(n)
}

// ProbeHashTable runs the fig. 6a probe pipeline over a built table.
// Probes are [key, tag]; matches are [key, tag, val].
func ProbeHashTable(ht *HashTable, probes []Rec) ([]Rec, Result, error) {
	return core.ProbeHashTable(ht, probes, core.ProbeOptions{})
}

// Re-exported benchmark API.
type (
	// Dataset is a generated ridesharing workload (fig. 13 / table 2).
	Dataset = queries.Dataset
	// Scale sets dataset cardinalities.
	Scale = queries.Scale
	// Engine abstracts the physical operators the queries run on.
	Engine = queries.Engine
	// QueryResult is one query's outcome on one engine.
	QueryResult = queries.QueryResult
)

// GenerateDataset builds a seeded synthetic ridesharing dataset.
func GenerateDataset(s Scale, seed int64) *Dataset { return queries.Generate(s, seed) }

// SmallScale returns a dataset scale that simulates in seconds.
func SmallScale() Scale { return queries.SmallScale() }

// NewAurochsEngine returns the fabric-simulator query engine with p
// parallel pipelines.
func NewAurochsEngine(p int) Engine { return queries.NewAurochs(p) }

// NewCPUEngine returns the multicore software baseline engine.
func NewCPUEngine() Engine { return queries.NewCPU() }

// NewGPUEngine returns the SIMT-model baseline engine.
func NewGPUEngine() Engine { return queries.NewGPU() }

// RunQueries executes the nine benchmark queries on an engine.
func RunQueries(e Engine, d *Dataset) ([]QueryResult, error) {
	return queries.RunAll(e, d)
}
