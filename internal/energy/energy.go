// Package energy converts runtimes to energy for the fig. 14 comparison.
// The paper estimates energy by multiplying runtime with design power; we
// do the same with the Table 1 platforms' board/socket powers and the
// accelerator's design power.
package energy

import "time"

// Platform carries a design power.
type Platform struct {
	Name  string
	Watts float64
}

// The evaluated platforms. CPU power covers the multi-socket server's
// processor package budget; GPU is a V100 board; Aurochs inherits Gorgon's
// design power envelope (a large reconfigurable die, well under a GPU
// because there is no instruction fetch/decode or giant register file).
var (
	CPU     = Platform{Name: "cpu", Watts: 400}
	GPU     = Platform{Name: "gpu", Watts: 300}
	Aurochs = Platform{Name: "aurochs", Watts: 90}
	Gorgon  = Platform{Name: "gorgon", Watts: 85}
)

// Joules returns energy for a runtime on the platform.
func (p Platform) Joules(t time.Duration) float64 {
	return p.Watts * t.Seconds()
}
