// Package dram models the HBM main memory behind the Aurochs fabric. The
// paper uses Ramulator for cycle-accurate HBM simulation; this model keeps
// the properties the evaluation depends on — bandwidth saturation shared by
// all pipelines, burst granularity, and row-buffer locality that makes
// dense streaming much cheaper than sparse scatter/gather — while
// simplifying DDR command timing to a hit/miss latency pair.
//
// Defaults approximate a 1 TB/s HBM2e part at the fabric's 1 GHz clock:
// 16 pseudo-channels × 64 B bursts × 1 burst/cycle/channel = 1024 B/cycle.
package dram

import (
	"fmt"
	"math"
	"math/bits"

	"aurochs/internal/ring"
)

// Config sizes the HBM model.
type Config struct {
	// Channels is the pseudo-channel count (power of two).
	Channels int
	// BanksPerChannel is the banks each channel interleaves across.
	BanksPerChannel int
	// RowWords is the row-buffer size in 32-bit words (1 KiB row = 256).
	RowWords int
	// BurstWords is the access granularity in words (64 B burst = 16).
	BurstWords int
	// RowHitLatency is the load-to-use latency for an open row, cycles.
	RowHitLatency int
	// RowMissPenalty is added on a row-buffer miss (precharge+activate).
	RowMissPenalty int
	// BurstCycles is the channel occupancy of one burst.
	BurstCycles int
	// QueueDepth is the per-channel request queue depth.
	QueueDepth int
}

// DefaultConfig returns the HBM configuration used throughout the repo.
func DefaultConfig() Config {
	return Config{
		Channels:        16,
		BanksPerChannel: 16,
		RowWords:        256,
		BurstWords:      16,
		RowHitLatency:   64,
		RowMissPenalty:  32,
		BurstCycles:     1,
		QueueDepth:      32,
	}
}

func (c *Config) validate() error {
	if c.Channels <= 0 || c.Channels&(c.Channels-1) != 0 {
		return fmt.Errorf("dram: channels must be a power of two, got %d", c.Channels)
	}
	if c.BurstWords <= 0 || c.BurstWords&(c.BurstWords-1) != 0 {
		return fmt.Errorf("dram: burst words must be a power of two, got %d", c.BurstWords)
	}
	if c.RowWords%c.BurstWords != 0 {
		return fmt.Errorf("dram: row words %d not a multiple of burst words %d", c.RowWords, c.BurstWords)
	}
	return nil
}

// PeakBytesPerCycle returns the theoretical bandwidth of this config.
func (c Config) PeakBytesPerCycle() float64 {
	return float64(c.Channels) * float64(c.BurstWords) * 4 / float64(c.BurstCycles)
}

// Request is one memory operation: Words 32-bit words at word address Addr.
// Done fires at completion with the read data (nil for writes).
type Request struct {
	Addr  uint32
	Words int
	Write bool
	Data  []uint32
	Done  func(data []uint32)
}

type burst struct {
	req       *pendingReq
	addr      uint32 // word address of burst start
	bank, row int
}

type pendingReq struct {
	req       Request
	remaining int
	data      []uint32
}

type channel struct {
	queue   ring.Queue[burst]
	busy    int64 // channel free at this cycle
	openRow []int // per-bank open row (-1 closed)
	// writeBuf is the controller's posted-write combining buffer: burst
	// address → insertion cycle. Writes to a resident burst merge for
	// free; entries retire to the queue on eviction or age-out.
	writeBuf map[uint32]int64
	// Cached deterministic minimum of (insertion cycle, address) over
	// writeBuf — the eviction victim and the next age-out candidate. The
	// old code recomputed it with a full map scan every tick; the cache
	// makes the per-tick age check O(1) and is rebuilt only when the
	// minimum itself is removed or touched.
	wbMinAddr uint32
	wbMinAt   int64
	wbMinOK   bool
}

// wbRecomputeMin rebuilds the cached (age, address) minimum.
func (c *channel) wbRecomputeMin() {
	c.wbMinOK = false
	// lint:maprange-ok — the result is the deterministic minimum of
	// (age, address); map iteration order cannot affect it.
	for a, at := range c.writeBuf {
		if !c.wbMinOK || at < c.wbMinAt || (at == c.wbMinAt && a < c.wbMinAddr) {
			c.wbMinAddr, c.wbMinAt, c.wbMinOK = a, at, true
		}
	}
}

// Write-buffer geometry: wbCap bursts per channel (a few KiB of combining
// storage), flushed after wbFlushAge cycles without needing eviction.
const (
	wbCap      = 64
	wbFlushAge = 512
)

// HBM is the memory device plus its channel scheduler. It is ticked by the
// owning system once per cycle; fabric nodes call Submit.
type HBM struct {
	cfg   Config
	chans []*channel
	pages map[uint32][]uint32

	burstShift uint
	chanMask   uint32
	inflight   inflightList
	now        int64
	need       []int // scratch for SubmitAt's per-channel reservation tally

	// Stats
	ReadBursts  int64
	WriteBursts int64
	RowHits     int64
	RowMisses   int64
	Stalls      int64
	// CoalescedWrites counts write bursts absorbed by the controller's
	// write-combining buffer (no extra channel occupancy).
	CoalescedWrites int64
}

const pageWords = 1 << 16 // 256 KiB pages, allocated on demand

// New builds an HBM instance.
func New(cfg Config) *HBM {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	h := &HBM{
		cfg:        cfg,
		pages:      make(map[uint32][]uint32),
		burstShift: uint(bits.TrailingZeros32(uint32(cfg.BurstWords))),
		chanMask:   uint32(cfg.Channels - 1),
		need:       make([]int, cfg.Channels),
	}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channel{openRow: make([]int, cfg.BanksPerChannel), writeBuf: make(map[uint32]int64)}
		for b := range ch.openRow {
			ch.openRow[b] = -1
		}
		h.chans = append(h.chans, ch)
	}
	return h
}

// Config returns the model's configuration.
func (h *HBM) Config() Config { return h.cfg }

// page returns the backing page for addr, allocating on first touch.
func (h *HBM) page(addr uint32) []uint32 {
	id := addr / pageWords
	p := h.pages[id]
	if p == nil {
		p = make([]uint32, pageWords)
		h.pages[id] = p
	}
	return p
}

// ReadWord performs an untimed functional read (setup and verification).
func (h *HBM) ReadWord(addr uint32) uint32 {
	return h.page(addr)[addr%pageWords]
}

// WriteWord performs an untimed functional write (setup and verification).
func (h *HBM) WriteWord(addr uint32, v uint32) {
	h.page(addr)[addr%pageWords] = v
}

// LoadWords copies data into memory starting at base (untimed).
func (h *HBM) LoadWords(base uint32, data []uint32) {
	for i, v := range data {
		h.WriteWord(base+uint32(i), v)
	}
}

// SnapshotWords reads n words starting at base (untimed).
func (h *HBM) SnapshotWords(base uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = h.ReadWord(base + uint32(i))
	}
	return out
}

// locate maps a burst-aligned word address to (channel, bank, row).
func (h *HBM) locate(addr uint32) (ch, bank, row int) {
	burstIdx := addr >> h.burstShift
	ch = int(burstIdx & h.chanMask)
	local := burstIdx >> uint(bits.TrailingZeros32(uint32(h.cfg.Channels)))
	burstsPerRow := uint32(h.cfg.RowWords / h.cfg.BurstWords)
	row = int(local / burstsPerRow)
	bank = row % h.cfg.BanksPerChannel
	return ch, bank, row
}

// Submit enqueues a request using the clock of the most recent Tick for
// write timestamps. Ticking components must prefer SubmitAt: with
// event-driven scheduling the HBM may legally skip idle Ticks, leaving the
// last-tick clock behind the caller's cycle. Submit remains for untimed
// setup and tests that tick the model themselves.
func (h *HBM) Submit(req Request) bool {
	return h.SubmitAt(h.now, req)
}

// SubmitAt enqueues a request at cycle now, splitting it into bursts. It
// returns false (and enqueues nothing) when any needed channel queue lacks
// space — callers stall and retry, which is how DRAM backpressure
// propagates into the fabric.
func (h *HBM) SubmitAt(now int64, req Request) bool {
	if req.Words <= 0 {
		panic("dram: request with no words")
	}
	if req.Write && len(req.Data) != req.Words {
		panic("dram: write data length mismatch")
	}
	first := req.Addr >> h.burstShift
	last := (req.Addr + uint32(req.Words) - 1) >> h.burstShift
	n := int(last - first + 1)

	// Reserve queue space across all involved channels first. Writes are
	// absorbed by the combining buffer but their evictions land in the
	// same queues, so both directions respect the depth. The per-channel
	// need tally lives in a reused scratch slice, not a per-call
	// allocation.
	need := h.need
	for i := range need {
		need[i] = 0
	}
	for b := first; b <= last; b++ {
		ch, _, _ := h.locate(b << h.burstShift)
		need[ch]++
	}
	for ch, k := range need {
		if k > 0 && h.chans[ch].queue.Len()+k > h.cfg.QueueDepth {
			h.Stalls++
			return false
		}
	}

	if req.Write {
		// Posted write: data lands in the controller's write-combining
		// buffer and the requester is acknowledged immediately. Bursts
		// retire to the channel (costing bandwidth) on eviction or
		// age-out — which is what makes the dense partition format
		// cheap (paper fig. 7b): consecutive slots of a block merge
		// into full bursts before ever touching DRAM.
		for i := 0; i < req.Words; i++ {
			h.WriteWord(req.Addr+uint32(i), req.Data[i])
		}
		for b := first; b <= last; b++ {
			addr := b << h.burstShift
			ch, _, _ := h.locate(addr)
			h.postWrite(h.chans[ch], addr, now)
		}
		if req.Done != nil {
			req.Done(nil)
		}
		return true
	}
	p := &pendingReq{req: req, remaining: n, data: make([]uint32, req.Words)}
	for b := first; b <= last; b++ {
		addr := b << h.burstShift
		ch, bank, row := h.locate(addr)
		h.chans[ch].queue.Push(burst{req: p, addr: addr, bank: bank, row: row})
	}
	return true
}

// postWrite inserts a burst into a channel's write buffer at cycle now,
// coalescing hits and evicting the oldest entry to the channel queue when
// full.
func (h *HBM) postWrite(c *channel, addr uint32, now int64) {
	if _, hit := c.writeBuf[addr]; hit {
		h.CoalescedWrites++
		c.writeBuf[addr] = now
		if c.wbMinOK && addr == c.wbMinAddr {
			// The refreshed entry may no longer be the minimum.
			c.wbRecomputeMin()
		}
		return
	}
	if len(c.writeBuf) >= wbCap {
		// Victim is the deterministic (age, address) minimum — the cache.
		if !c.wbMinOK {
			c.wbRecomputeMin()
		}
		h.evictWrite(c, c.wbMinAddr)
	}
	c.writeBuf[addr] = now
	if !c.wbMinOK || now < c.wbMinAt || (now == c.wbMinAt && addr < c.wbMinAddr) {
		c.wbMinAddr, c.wbMinAt, c.wbMinOK = addr, now, true
	}
}

// evictWrite moves one write burst from the buffer into the channel queue.
func (h *HBM) evictWrite(c *channel, addr uint32) {
	delete(c.writeBuf, addr)
	_, bank, row := h.locate(addr)
	c.queue.Push(burst{req: nil, addr: addr, bank: bank, row: row})
	if c.wbMinOK && addr == c.wbMinAddr {
		c.wbRecomputeMin()
	}
}

type completion struct {
	at int64
	b  burst
}

// inflight bursts awaiting completion, kept per HBM.
type inflightList struct {
	items []completion
}

// Tick advances every channel one cycle: flush aged write-buffer entries,
// issue at most one burst per free channel, retire elapsed bursts.
func (h *HBM) Tick(cycle int64) {
	h.now = cycle
	for _, ch := range h.chans {
		// Age-out flush: one entry per cycle at most. The cached (age,
		// address) minimum is exactly the entry the old full-map scan would
		// have chosen — if the globally oldest entry is not aged, nothing is.
		if ch.queue.Len() < h.cfg.QueueDepth && ch.wbMinOK && cycle-ch.wbMinAt > wbFlushAge {
			h.evictWrite(ch, ch.wbMinAddr)
		}
		if ch.queue.Len() == 0 || ch.busy > cycle {
			continue
		}
		b := ch.queue.Pop()
		lat := int64(h.cfg.RowHitLatency)
		if ch.openRow[b.bank] != b.row {
			lat += int64(h.cfg.RowMissPenalty)
			ch.openRow[b.bank] = b.row
			h.RowMisses++
		} else {
			h.RowHits++
		}
		ch.busy = cycle + int64(h.cfg.BurstCycles)
		h.service(cycle+lat, b)
	}
	h.retire(cycle)
}

func (h *HBM) service(at int64, b burst) {
	h.inflight.items = append(h.inflight.items, completion{at: at, b: b})
}

// retire completes bursts and fires request callbacks.
func (h *HBM) retire(cycle int64) {
	n := 0
	for _, c := range h.inflight.items {
		if c.at > cycle {
			h.inflight.items[n] = c
			n++
			continue
		}
		h.finishBurst(c.b)
	}
	h.inflight.items = h.inflight.items[:n]
}

func (h *HBM) finishBurst(b burst) {
	if b.req == nil {
		// A write-buffer eviction: pure timing traffic.
		h.WriteBursts++
		return
	}
	p := b.req
	req := p.req
	if req.Write {
		// Data was posted to the write buffer at submit time; this is
		// the timing-side retirement only.
		h.WriteBursts++
	} else {
		lo := b.addr
		if req.Addr > lo {
			lo = req.Addr
		}
		hi := b.addr + uint32(h.cfg.BurstWords)
		if end := req.Addr + uint32(req.Words); end < hi {
			hi = end
		}
		for a := lo; a < hi; a++ {
			p.data[int(a-req.Addr)] = h.ReadWord(a)
		}
		h.ReadBursts++
	}
	p.remaining--
	if p.remaining == 0 && req.Done != nil {
		req.Done(p.data)
	}
}

// ResetClock rebases the model's absolute-cycle state to zero so a new
// simulation (sharing this HBM across kernel phases) can start its clock
// from scratch. Queues and in-flight requests must be drained; row-buffer
// state persists (locality across phases is real).
func (h *HBM) ResetClock() {
	if !h.Drained() {
		panic("dram: ResetClock with work in flight")
	}
	for _, ch := range h.chans {
		ch.busy = 0
		// lint:maprange-ok — every entry is rebased to the same timestamp;
		// iteration order cannot matter.
		for a := range ch.writeBuf {
			ch.writeBuf[a] = 0
		}
		ch.wbRecomputeMin()
	}
	h.now = 0
}

// WorstCaseInternalLatency bounds how many cycles the HBM can hold work
// without any fabric-visible completion: a full channel queue draining at
// one burst per BurstCycles, the slowest single access (row miss), a full
// write buffer's evictions, and the write-buffer age-out horizon. The sim
// runner sums this into its deadlock grace window — the reason a deep
// queue with a large RowMissPenalty can no longer be misreported as
// deadlock by a hard-coded constant.
func (h *HBM) WorstCaseInternalLatency() int64 {
	perBurst := int64(h.cfg.RowHitLatency + h.cfg.RowMissPenalty + h.cfg.BurstCycles)
	queueDrain := int64(h.cfg.QueueDepth+wbCap) * int64(h.cfg.BurstCycles)
	return queueDrain + perBurst + wbFlushAge
}

// Idle reports whether the model is completely empty: no queued bursts,
// nothing in flight, and no resident posted writes. It is conservative —
// a resident write makes the model non-idle even though no tick will do
// anything until its age-out — so it suits callers without a clock.
// Clocked callers should prefer QuiescentAt.
func (h *HBM) Idle() bool {
	if len(h.inflight.items) > 0 {
		return false
	}
	for _, ch := range h.chans {
		if ch.queue.Len() > 0 || len(ch.writeBuf) > 0 {
			return false
		}
	}
	return true
}

// QuiescentAt reports whether a Tick at cycle would be a no-op: nothing
// queued or in flight, and no resident posted write old enough for its
// age-out flush to fire. Unlike Idle it is a pure function of
// (state, cycle) — resident-but-young writes do not count as work — so a
// quiescent stretch before the next age-out can be skipped entirely;
// NextWriteEvent tells the scheduler when to come back.
func (h *HBM) QuiescentAt(cycle int64) bool {
	if len(h.inflight.items) > 0 {
		return false
	}
	for _, ch := range h.chans {
		if ch.queue.Len() > 0 {
			return false
		}
		if ch.wbMinOK && cycle-ch.wbMinAt > wbFlushAge {
			return false
		}
	}
	return true
}

// NextWriteEvent returns the earliest cycle at which a write-buffer
// age-out flush can fire absent further submissions, or math.MaxInt64
// when no posted writes are resident. This is the HBM's only self-timed
// event: everything else it does is a response to a submission or an
// already-issued burst, both of which keep it non-quiescent.
func (h *HBM) NextWriteEvent() int64 {
	next := int64(math.MaxInt64)
	for _, ch := range h.chans {
		if ch.wbMinOK && ch.wbMinAt+wbFlushAge+1 < next {
			next = ch.wbMinAt + wbFlushAge + 1
		}
	}
	return next
}

// BytesMoved returns total bytes transferred so far.
func (h *HBM) BytesMoved() int64 {
	return (h.ReadBursts + h.WriteBursts) * int64(h.cfg.BurstWords) * 4
}

// Drained reports whether no request work remains queued or in flight.
// Resident write-buffer entries are posted (acknowledged) data whose
// flush-out is bookkeeping traffic; they do not block draining.
func (h *HBM) Drained() bool {
	for _, ch := range h.chans {
		if ch.queue.Len() > 0 {
			return false
		}
	}
	return len(h.inflight.items) == 0
}

// FlushWrites forces all resident write-buffer entries out (called between
// phases so traffic accounting attributes bytes to the phase that wrote
// them).
func (h *HBM) FlushWrites() {
	for _, ch := range h.chans {
		// lint:maprange-ok — every entry is unconditionally drained and the
		// counter is commutative; iteration order cannot matter.
		for a := range ch.writeBuf {
			delete(ch.writeBuf, a)
			h.WriteBursts++
		}
		ch.wbMinOK = false
	}
}
