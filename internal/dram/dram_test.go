package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// drive ticks the model until all submitted requests complete.
func drive(t *testing.T, h *HBM, submit func(cycle int64) bool) int64 {
	t.Helper()
	var cycle int64
	submitted := false
	for cycle = 0; cycle < 10_000_000; cycle++ {
		if !submitted {
			submitted = submit(cycle)
		}
		h.Tick(cycle)
		if submitted && h.Drained() {
			return cycle
		}
	}
	t.Fatal("dram never drained")
	return cycle
}

func TestFunctionalReadWrite(t *testing.T) {
	h := New(DefaultConfig())
	if err := quick.Check(func(addr uint32, v uint32) bool {
		addr %= 1 << 24
		h.WriteWord(addr, v)
		return h.ReadWord(addr) == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTimedWriteThenRead(t *testing.T) {
	h := New(DefaultConfig())
	data := make([]uint32, 100)
	for i := range data {
		data[i] = uint32(i * 7)
	}
	var got []uint32
	done := 0
	drive(t, h, func(cycle int64) bool {
		ok := h.Submit(Request{Addr: 1000, Words: 100, Write: true, Data: data,
			Done: func([]uint32) { done++ }})
		return ok
	})
	drive(t, h, func(cycle int64) bool {
		return h.Submit(Request{Addr: 1000, Words: 100,
			Done: func(d []uint32) { got = append([]uint32(nil), d...); done++ }})
	})
	if done != 2 {
		t.Fatalf("completions=%d", done)
	}
	for i, v := range got {
		if v != data[i] {
			t.Fatalf("word %d = %d, want %d", i, v, data[i])
		}
	}
}

func TestUnalignedRequestSpansBursts(t *testing.T) {
	h := New(DefaultConfig())
	for i := uint32(0); i < 64; i++ {
		h.WriteWord(100+i, i)
	}
	var got []uint32
	drive(t, h, func(cycle int64) bool {
		// Start mid-burst, end mid-burst.
		return h.Submit(Request{Addr: 103, Words: 37,
			Done: func(d []uint32) { got = append([]uint32(nil), d...) }})
	})
	if len(got) != 37 {
		t.Fatalf("got %d words", len(got))
	}
	for i, v := range got {
		if v != uint32(i)+3 {
			t.Fatalf("word %d = %d", i, v)
		}
	}
}

// TestStreamingBandwidth: a long sequential read must sustain close to peak
// bandwidth (row hits, all channels busy).
func TestStreamingBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	const words = 1 << 18 // 1 MiB
	reqs := 0
	const chunk = 4096
	cycles := drive(t, h, func(cycle int64) bool {
		for reqs < words/chunk {
			if !h.Submit(Request{Addr: uint32(reqs * chunk), Words: chunk}) {
				return false
			}
			reqs++
		}
		return true
	})
	bytes := float64(words * 4)
	bw := bytes / float64(cycles)
	peak := cfg.PeakBytesPerCycle()
	if bw < peak*0.5 {
		t.Errorf("sequential bandwidth %.1f B/cyc under half of peak %.1f", bw, peak)
	}
	hitRate := float64(h.RowHits) / float64(h.RowHits+h.RowMisses)
	if hitRate < 0.9 {
		t.Errorf("sequential row hit rate %.2f, want >0.9", hitRate)
	}
}

// TestSparseSlowerThanDense: random single-burst reads must achieve far
// lower bandwidth than streaming — the property that motivates the paper's
// dense partition layout (fig. 7b).
func TestSparseSlowerThanDense(t *testing.T) {
	cfg := DefaultConfig()
	run := func(random bool) float64 {
		h := New(cfg)
		rng := rand.New(rand.NewSource(1))
		const n = 4096
		issued := 0
		cycles := drive(t, h, func(cycle int64) bool {
			for issued < n {
				var addr uint32
				if random {
					addr = uint32(rng.Intn(1<<22)) &^ 15
				} else {
					addr = uint32(issued * cfg.BurstWords)
				}
				if !h.Submit(Request{Addr: addr, Words: cfg.BurstWords}) {
					return false
				}
				issued++
			}
			return true
		})
		return float64(n*cfg.BurstWords*4) / float64(cycles)
	}
	dense, sparse := run(false), run(true)
	if sparse >= dense {
		t.Errorf("sparse bw %.1f should be below dense bw %.1f", sparse, dense)
	}
}

func TestBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 2
	h := New(cfg)
	ok := 0
	for i := 0; i < 100; i++ {
		if h.Submit(Request{Addr: 0, Words: cfg.BurstWords}) {
			ok++
		}
	}
	if ok >= 100 {
		t.Fatal("queue depth 2 accepted 100 same-channel requests without backpressure")
	}
	if h.Stalls == 0 {
		t.Error("stall counter not incremented")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Channels = 3
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-power-of-two channels must panic")
			}
		}()
		New(bad)
	}()
}

func TestPeakBandwidthMatchesHBM(t *testing.T) {
	// The default config should approximate a ~1 TB/s HBM at 1 GHz.
	peak := DefaultConfig().PeakBytesPerCycle()
	if peak < 512 || peak > 2048 {
		t.Errorf("peak %.0f B/cycle outside HBM-class range", peak)
	}
}

// TestPropertyReadAfterWriteConsistency: for any interleaving of posted
// writes and timed reads issued after them, reads must observe the data —
// the write buffer may defer traffic but never visibility.
func TestPropertyReadAfterWriteConsistency(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(DefaultConfig())
		type exp struct {
			addr uint32
			val  uint32
		}
		var expects []exp
		var pending int
		readBusy := map[uint32]int{} // addresses with in-flight reads
		ok := true
		var cycle int64
		for step := 0; step < 200; step++ {
			addr := uint32(rng.Intn(1 << 16))
			if rng.Intn(2) == 0 {
				// Posted writes become visible immediately, so writing an
				// address with an in-flight read would legitimately change
				// that read's answer; the property holds for the quiescent
				// case, which is what we generate.
				if readBusy[addr] > 0 {
					continue
				}
				val := rng.Uint32()
				if h.Submit(Request{Addr: addr, Words: 1, Write: true, Data: []uint32{val}}) {
					expects = append(expects, exp{addr, val})
				}
			} else if len(expects) > 0 {
				e := expects[rng.Intn(len(expects))]
				latest := e.val
				for _, x := range expects {
					if x.addr == e.addr {
						latest = x.val
					}
				}
				want := latest
				raddr := e.addr
				if h.Submit(Request{Addr: raddr, Words: 1, Done: func(d []uint32) {
					pending--
					readBusy[raddr]--
					if d[0] != want {
						ok = false
					}
				}}) {
					pending++
					readBusy[raddr]++
				}
			}
			h.Tick(cycle)
			cycle++
		}
		for i := 0; i < 100000 && (pending > 0 || !h.Drained()); i++ {
			h.Tick(cycle)
			cycle++
		}
		return ok && pending == 0
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestWriteCombiningReducesBursts(t *testing.T) {
	run := func(sequential bool) int64 {
		h := New(DefaultConfig())
		var cycle int64
		for i := 0; i < 2048; i++ {
			var addr uint32
			if sequential {
				addr = uint32(i) * 2 // adjacent slots share bursts
			} else {
				addr = uint32(i) * 4096 // every write its own burst
			}
			for !h.Submit(Request{Addr: addr, Words: 2, Write: true, Data: []uint32{1, 2}}) {
				h.Tick(cycle)
				cycle++
			}
			h.Tick(cycle)
			cycle++
		}
		h.FlushWrites()
		for !h.Drained() {
			h.Tick(cycle)
			cycle++
		}
		return h.WriteBursts
	}
	seq, sparse := run(true), run(false)
	if seq*4 > sparse {
		t.Errorf("sequential writes used %d bursts vs sparse %d; combining ineffective", seq, sparse)
	}
}
