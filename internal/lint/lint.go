// Package lint is the determinism linter behind cmd/aurochs-vet. The
// simulator's correctness argument rests on runs being bit-reproducible —
// registered links make tick order unobservable, so the only ways
// nondeterminism can creep in are the ones Go hands out for free: wall-clock
// reads, the globally seeded math/rand, and map iteration order. This
// package finds those by walking source ASTs; no build, no type checker,
// stdlib only.
//
// Rules:
//
//   - wallclock: time.Now / time.Since / friends in cycle-level code. Time
//     inside the simulation is the cycle counter; the host clock must never
//     leak into results.
//   - globalrand: package-level math/rand calls (rand.Intn, rand.Shuffle,
//     ...). Seeded generators via rand.New(rand.NewSource(seed)) are fine.
//   - maprange: a for-range over a map whose iteration order can reach
//     simulation state. Sanctioned when the *innermost enclosing function*
//     — a named declaration or a function literal — sorts after the loop
//     (collect-then-sort, the sim.Stats.Names idiom) or when the loop
//     carries a "lint:maprange-ok" comment asserting the reduction is
//     order-independent. Scoping the sanction to the innermost FuncLit is
//     load-bearing both ways: a collect-then-sort loop inside a closure is
//     clean without borrowing a sort from the enclosing function, and a
//     bare map range in one closure is not laundered by an unrelated sort
//     elsewhere in the same declaration.
//   - print: fmt.Print / Println / Printf in library packages — reporting
//     belongs to the callers (cmd/, internal/bench), not the model.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Severity classifies a finding. The zero value ("", historical findings)
// is an error: only findings explicitly marked SevWarning are advisory.
const (
	// SevError findings are contract violations: a non-waived error makes
	// aurochs-vet exit non-zero.
	SevError = "error"
	// SevWarning findings are advisory — unprovable-but-suspect sites
	// (credit sufficiency the prover cannot bound, cross-package calls an
	// allocation walk cannot see into). They are reported and counted but a
	// warnings-only run exits 0.
	SevWarning = "warning"
)

// Finding is one rule violation, JSON-ready for -json output.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
	// Analyzer names the engine pass that produced the finding
	// ("determinism", "sharedstate", "orderdep", "graphs"). Rule is the
	// specific violation within that pass; for single-rule analyzers the
	// two coincide.
	Analyzer string `json:"analyzer"`
	// Severity is SevError or SevWarning; empty means SevError (the
	// zero value keeps old JSON readable).
	Severity string `json:"severity,omitempty"`
	// Waived marks diagnostics accepted on an explicit waiver: reported
	// for reviewability, but not counted toward a failing exit status.
	Waived bool `json:"waived"`
}

// IsError reports whether the finding counts toward a failing exit status
// (it is neither waived nor a warning).
func (f Finding) IsError() bool {
	return !f.Waived && f.Severity != SevWarning
}

func (f Finding) String() string {
	suffix := ""
	if f.Severity == SevWarning {
		suffix = " (warning)"
	}
	if f.Waived {
		suffix += " (waived)"
	}
	return fmt.Sprintf("%s:%d: %s: %s%s", f.File, f.Line, f.Rule, f.Msg, suffix)
}

// Rules selects which checks run; the caller classifies packages (cycle-level
// code gets everything, other library code just print hygiene).
type Rules struct {
	WallClock  bool
	GlobalRand bool
	MapRange   bool
	Print      bool
}

// AllRules enables every check — for the cycle-level packages.
func AllRules() Rules {
	return Rules{WallClock: true, GlobalRand: true, MapRange: true, Print: true}
}

// None reports whether no rule is enabled.
func (r Rules) None() bool {
	return !r.WallClock && !r.GlobalRand && !r.MapRange && !r.Print
}

// MaprangeWaiver is the comment marker that suppresses the maprange rule on
// the loop it annotates.
const MaprangeWaiver = "lint:maprange-ok"

// wallClockFuncs are the time package entry points that read the host clock
// (or schedule against it).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// randAllowed are the math/rand package functions that construct seeded
// generators rather than consuming the global one.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// printFuncs are the fmt entry points that write to stdout.
var printFuncs = map[string]bool{"Print": true, "Println": true, "Printf": true}

// AnalyzeDir lints every non-test .go file directly in dir (testdata and
// subdirectories are the caller's concern). Findings come back sorted by
// (file, line, rule).
func AnalyzeDir(dir string, rules Rules) ([]Finding, error) {
	if rules.None() {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fs, err := AnalyzeFile(filepath.Join(dir, name), rules)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}

// AnalyzeFile lints one source file.
func AnalyzeFile(path string, rules Rules) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return AnalyzeASTFile(fset, f, path, rules), nil
}

// AnalyzeASTFile lints an already-parsed file — the entry point the
// type-checked driver in internal/analysis uses, so one parse serves both
// the determinism rules and the go/types analyzers. The file must have been
// parsed with comments (waivers live there). Findings come back sorted.
func AnalyzeASTFile(fset *token.FileSet, f *ast.File, path string, rules Rules) []Finding {
	if rules.None() {
		return nil
	}
	a := &analysis{fset: fset, file: f, rules: rules, path: path}
	out := a.run()
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) { SortFindings(fs) }

// SortFindings orders findings stably by (file, line, analyzer, rule) — the
// one ordering every emitter (the analysis driver, aurochs-vet's JSON stream,
// the golden-file test) must share. Stability matters: several analyzers can
// report distinct messages at the same (file, line, analyzer, rule) key, and
// an unstable sort would let their relative order vary run to run, breaking
// golden comparisons across map-iteration and scheduling differences.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Rule < fs[j].Rule
	})
}

type analysis struct {
	fset  *token.FileSet
	file  *ast.File
	rules Rules
	path  string

	imports  map[string]string // local name -> import path
	mapNames map[string]bool   // identifiers declared with a map type
	waived   map[int]bool      // lines covered by a maprange waiver
	findings []Finding
}

func (a *analysis) run() []Finding {
	a.imports = importTable(a.file)
	a.mapNames = mapTypedNames(a.file)
	a.waived = waivedLines(a.fset, a.file)

	ast.Inspect(a.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		fn := sel.Sel.Name
		switch a.imports[pkg.Name] {
		case "time":
			if a.rules.WallClock && wallClockFuncs[fn] {
				a.report(call.Pos(), "wallclock",
					fmt.Sprintf("time.%s reads the host clock; cycle-level code must derive time from the cycle counter", fn))
			}
		case "math/rand", "math/rand/v2":
			if a.rules.GlobalRand && !randAllowed[fn] {
				a.report(call.Pos(), "globalrand",
					fmt.Sprintf("global rand.%s is seeded per-process; use rand.New(rand.NewSource(seed)) for reproducible runs", fn))
			}
		case "fmt":
			if a.rules.Print && printFuncs[fn] {
				a.report(call.Pos(), "print",
					fmt.Sprintf("fmt.%s in a library package; reporting belongs to cmd/ or internal/bench", fn))
			}
		}
		return true
	})

	if a.rules.MapRange {
		a.checkMapRanges()
	}
	return a.findings
}

// funcScope is one function body — a named declaration or a literal — used
// to scope the maprange sanction to the innermost enclosing function.
type funcScope struct {
	pos, end token.Pos
}

func (s funcScope) contains(p token.Pos) bool { return s.pos <= p && p < s.end }

// innermostScope returns the index of the smallest scope containing p, or
// -1 (package level — ranges cannot occur there, but sort calls in var
// initializers can).
func innermostScope(scopes []funcScope, p token.Pos) int {
	best := -1
	for i, s := range scopes {
		if !s.contains(p) {
			continue
		}
		if best == -1 || scopes[best].end-scopes[best].pos > s.end-s.pos {
			best = i
		}
	}
	return best
}

// checkMapRanges flags map iterations anywhere in the file — including
// function literals hung off package-level variables, which a per-FuncDecl
// walk would miss — unless sanctioned by a later sort call in the *same
// innermost function* or an explicit waiver comment. Earlier revisions
// collected sort calls across the whole named declaration, which both
// flagged sorted collect-then-sort loops inside closures (the sanction
// never looked inside the FuncLit's own scope relative to outer ranges)
// and laundered unsorted ranges past sorts in sibling closures.
func (a *analysis) checkMapRanges() {
	// Every function scope in the file: named declarations and literals.
	var scopes []funcScope
	for _, decl := range a.file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			scopes = append(scopes, funcScope{fd.Body.Pos(), fd.Body.End()})
		}
	}
	ast.Inspect(a.file, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, funcScope{fl.Body.Pos(), fl.Body.End()})
		}
		return true
	})

	// Sort calls, attributed to their innermost scope.
	type scopedPos struct {
		scope int
		pos   token.Pos
	}
	var sortCalls []scopedPos
	ast.Inspect(a.file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && a.imports[pkg.Name] == "sort" {
					sortCalls = append(sortCalls, scopedPos{innermostScope(scopes, call.Pos()), call.Pos()})
				}
			}
		}
		return true
	})

	ast.Inspect(a.file, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !a.rangesOverMap(rs.X) {
			return true
		}
		line := a.fset.Position(rs.Pos()).Line
		if a.waived[line] {
			return true
		}
		scope := innermostScope(scopes, rs.Pos())
		for _, sc := range sortCalls {
			if sc.scope == scope && sc.pos >= rs.Pos() {
				return true // collect-then-sort in this function: order cannot escape
			}
		}
		a.report(rs.Pos(), "maprange",
			"map iteration order is randomized; sort the keys first, or mark an order-independent reduction with a lint:maprange-ok comment")
		return true
	})
}

// rangesOverMap reports whether expr names something this file declares
// with a map type. Heuristic (no type checker): tracks declared fields,
// variables, parameters, make(map...) and map-literal assignments, matching
// range expressions by their final identifier.
func (a *analysis) rangesOverMap(expr ast.Expr) bool {
	switch x := expr.(type) {
	case *ast.Ident:
		return a.mapNames[x.Name]
	case *ast.SelectorExpr:
		return a.mapNames[x.Sel.Name]
	}
	return false
}

func (a *analysis) report(pos token.Pos, rule, msg string) {
	p := a.fset.Position(pos)
	a.findings = append(a.findings, Finding{File: a.path, Line: p.Line, Rule: rule, Msg: msg, Analyzer: "determinism"})
}

// importTable maps local package names to import paths, honouring aliases.
func importTable(f *ast.File) map[string]string {
	out := make(map[string]string)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		out[name] = path
	}
	return out
}

// mapTypedNames collects every identifier the file declares with a map type:
// struct fields, variables, parameters, and assignments from make(map...)
// or map literals.
func mapTypedNames(f *ast.File) map[string]bool {
	names := make(map[string]bool)
	add := func(idents []*ast.Ident) {
		for _, id := range idents {
			if id.Name != "_" {
				names[id.Name] = true
			}
		}
	}
	isMapExpr := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.MapType:
			return true
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
				_, isMap := x.Args[0].(*ast.MapType)
				return isMap
			}
		case *ast.CompositeLit:
			_, isMap := x.Type.(*ast.MapType)
			return isMap
		}
		return false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Field:
			if _, ok := x.Type.(*ast.MapType); ok {
				add(x.Names)
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				if _, ok := x.Type.(*ast.MapType); ok {
					add(x.Names)
				}
			}
			for i, v := range x.Values {
				if isMapExpr(v) && i < len(x.Names) {
					add(x.Names[i : i+1])
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !isMapExpr(rhs) || i >= len(x.Lhs) {
					continue
				}
				switch lhs := x.Lhs[i].(type) {
				case *ast.Ident:
					add([]*ast.Ident{lhs})
				case *ast.SelectorExpr:
					add([]*ast.Ident{lhs.Sel})
				}
			}
		}
		return true
	})
	return names
}

// waivedLines marks the source lines a lint:maprange-ok comment covers: the
// lines of the comment itself and the line immediately after it, so both
// inline and preceding-comment placements work.
func waivedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		if !strings.Contains(cg.Text(), MaprangeWaiver) && !strings.Contains(cg.List[0].Text, MaprangeWaiver) {
			continue
		}
		start := fset.Position(cg.Pos()).Line
		end := fset.Position(cg.End()).Line
		for l := start; l <= end+1; l++ {
			out[l] = true
		}
	}
	return out
}
