package lint

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

func analyze(t *testing.T, dir string, rules Rules) []Finding {
	t.Helper()
	fs, err := AnalyzeDir(filepath.Join("testdata", "src", dir), rules)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func countRule(fs []Finding, rule string) int {
	n := 0
	for _, f := range fs {
		if f.Rule == rule {
			n++
		}
	}
	return n
}

// TestBadFixtureTripsEveryRule: the bad fixture violates each rule a known
// number of times.
func TestBadFixtureTripsEveryRule(t *testing.T) {
	fs := analyze(t, "bad", AllRules())
	want := map[string]int{
		"wallclock":  2, // time.Now, time.Since
		"globalrand": 3, // rand.Shuffle, rand.Intn, mrand.Int (aliased)
		"maprange":   3, // direct range, selector range, closure not laundered by outer sort
		"print":      2, // Println, Printf
	}
	for _, rule := range []string{"wallclock", "globalrand", "maprange", "print"} {
		if got := countRule(fs, rule); got != want[rule] {
			t.Errorf("%s: got %d findings, want %d\nall: %v", rule, got, want[rule], fs)
		}
	}
}

// TestCleanFixtureIsQuiet: sanctioned idioms — collect-then-sort, the
// maprange waiver, seeded rand, fmt.Sprintf/Errorf, slice and array ranges —
// produce no findings.
func TestCleanFixtureIsQuiet(t *testing.T) {
	if fs := analyze(t, "clean", AllRules()); len(fs) != 0 {
		t.Errorf("clean fixture flagged:\n%v", fs)
	}
}

// TestRuleSelection: disabled rules stay silent.
func TestRuleSelection(t *testing.T) {
	fs := analyze(t, "bad", Rules{Print: true})
	if got := countRule(fs, "print"); got != 2 {
		t.Errorf("print findings: got %d, want 2", got)
	}
	if len(fs) != 2 {
		t.Errorf("print-only run reported other rules: %v", fs)
	}
	if fs2 := analyze(t, "bad", Rules{}); fs2 != nil {
		t.Errorf("no-rules run reported findings: %v", fs2)
	}
}

// TestFindingsAreOrderedAndSerializable: output is sorted by (file, line,
// rule) and round-trips through JSON with stable field names.
func TestFindingsAreOrderedAndSerializable(t *testing.T) {
	fs := analyze(t, "bad", AllRules())
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("findings out of order at %d: %v then %v", i, a, b)
		}
	}
	blob, err := json.Marshal(fs[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"file", "line", "rule", "msg"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON output missing %q: %s", key, blob)
		}
	}
}

// TestAnalyzeFileBadSource: unparseable input is an error, not a pass.
func TestAnalyzeFileBadSource(t *testing.T) {
	if _, err := AnalyzeFile(filepath.Join("testdata", "src", "broken", "broken.go.txt"), AllRules()); err == nil {
		t.Error("want parse error for missing file")
	}
}

// TestSortFindingsAcrossAnalyzers pins the shared ordering contract on the
// mixed streams aurochs-vet emits: graph-level findings (line 0, synthetic
// "graph:"/"fixture:" files) from the graphs and flow analyzers interleave
// with source findings, and the (file, line, analyzer, rule) key must put
// a file's flow-* findings in a stable, rule-sorted block. Stability
// matters: distinct messages sharing a key keep their insertion order.
func TestSortFindingsAcrossAnalyzers(t *testing.T) {
	fs := []Finding{
		{File: "internal/sim/sim.go", Line: 10, Analyzer: "determinism", Rule: "wallclock"},
		{File: "graph:streamjoin", Line: 0, Analyzer: "graphs", Rule: "order-dependent"},
		{File: "fixture:flowbad", Line: 0, Analyzer: "flow", Rule: "flow-no-exit", Msg: "second"},
		{File: "fixture:flowbad", Line: 0, Analyzer: "flow", Rule: "flow-entry-miswired"},
		{File: "fixture:flowbad", Line: 0, Analyzer: "flow", Rule: "flow-no-exit", Msg: "first"},
		{File: "graph:streamjoin", Line: 0, Analyzer: "flow", Rule: "flow-uncounted-exit"},
	}
	SortFindings(fs)
	want := []struct {
		file, analyzer, rule, msg string
	}{
		{"fixture:flowbad", "flow", "flow-entry-miswired", ""},
		{"fixture:flowbad", "flow", "flow-no-exit", "second"},
		{"fixture:flowbad", "flow", "flow-no-exit", "first"},
		{"graph:streamjoin", "flow", "flow-uncounted-exit", ""},
		{"graph:streamjoin", "graphs", "order-dependent", ""},
		{"internal/sim/sim.go", "determinism", "wallclock", ""},
	}
	for i, w := range want {
		f := fs[i]
		if f.File != w.file || f.Analyzer != w.analyzer || f.Rule != w.rule || f.Msg != w.msg {
			t.Fatalf("fs[%d] = %s/%s/%s/%q, want %s/%s/%s/%q",
				i, f.File, f.Analyzer, f.Rule, f.Msg, w.file, w.analyzer, w.rule, w.msg)
		}
	}
}
