// Package clean is a lint fixture: every function uses the sanctioned form
// of a pattern the linter would otherwise flag.
package clean

import (
	"fmt"
	"math/rand"
	"sort"
)

var counters = map[string]int64{}

// sortedKeys is the collect-then-sort idiom (sim.Stats.Names): iteration
// order never escapes because the keys are sorted before use.
func sortedKeys() []string {
	out := make([]string, 0, len(counters))
	for name := range counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// waived carries the explicit order-independence waiver.
func waived() int64 {
	var total int64
	// lint:maprange-ok — addition is commutative; order cannot matter.
	for _, v := range counters {
		total += v
	}
	return total
}

// seeded uses a locally seeded generator, not the global one.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// formats uses fmt for strings and errors, never stdout.
func formats(n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("negative: %d", n)
	}
	return fmt.Sprintf("%d", n), nil
}

// closureSorted is the regression fixture for the closure-scoped sanction:
// the collect-then-sort idiom lives entirely inside a function literal, and
// the sanction must find the sort in the innermost FuncLit rather than only
// scanning the named declaration.
func closureSorted() func() []string {
	return func() []string {
		keys := make([]string, 0, len(counters))
		for name := range counters {
			keys = append(keys, name)
		}
		sort.Strings(keys)
		return keys
	}
}

// pkgLevelSorted hangs the same sanctioned idiom off a package-level var —
// a scope a per-declaration walk never visits.
var pkgLevelSorted = func() []string {
	keys := make([]string, 0, len(counters))
	for name := range counters {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys
}

// slices ranges over non-maps; the maprange heuristic must stay quiet.
func slices(rows []int, open [4]bool) int {
	total := 0
	for _, r := range rows {
		total += r
	}
	for b := range open {
		_ = b
	}
	return total
}
