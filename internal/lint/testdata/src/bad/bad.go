// Package bad is a lint fixture: every function violates one rule.
package bad

import (
	"fmt"
	"math/rand"
	mrand "math/rand"
	"sort"
	"time"
)

var counters = map[string]int64{}

// wallClock violates the wallclock rule twice.
func wallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// globalRand violates the globalrand rule, including through an alias.
func globalRand() int {
	rand.Shuffle(3, func(i, j int) {})
	return rand.Intn(10) + mrand.Int()
}

// mapOrder violates the maprange rule: no sort, no waiver.
func mapOrder() int64 {
	var total int64
	for _, v := range counters {
		total += v
	}
	return total
}

// mapOrderField ranges over a map reached through a selector.
type holder struct {
	seen map[uint32]bool
}

func (h *holder) first() uint32 {
	for k := range h.seen {
		return k
	}
	return 0
}

// mapOrderLaundered violates maprange inside a closure: the genuine sort.*
// call later in the enclosing function must not sanction the closure's bare
// iteration — the sanction is scoped to the innermost function. (The old
// per-declaration sanction accepted this.)
func mapOrderLaundered() (func() int64, []string) {
	f := func() int64 {
		var total int64
		for _, v := range counters {
			total += v
		}
		return total
	}
	keys := []string{"b", "a"}
	sort.Strings(keys)
	return f, keys
}

// printy violates the print rule.
func printy() {
	fmt.Println("cycle done")
	fmt.Printf("%d\n", 1)
}
