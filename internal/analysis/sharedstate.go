package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SharedStateWaiver suppresses the sharedstate rule on the field it
// annotates, asserting the referenced state is immutable for the lifetime
// of the run (e.g. a read-only index snapshot walked by several nodes).
const SharedStateWaiver = "lint:sharedstate-ok"

// SharedState enforces the parallel kernel's sharding contract: a simulator
// component (any type with Name/Tick/Done methods) holding a reference that
// can alias mutable heap state created outside the component — a *dram.HBM,
// a shared scratchpad Mem, a LoopCtl, a shared map — must surface that
// reference through SharedState(), or the union-find scheduler in
// internal/sim/parallel.go may place two components mutating the same
// memory on different workers and the serial/parallel bit-identity
// guarantee is silently gone.
//
// A field is suspect when both hold:
//
//   - its type can reach mutable non-link heap state (a pointer to a named
//     type other than sim.Link or sim.Stats, a map, or a channel — slices,
//     arrays and structs are traversed; funcs are exempt because datapath
//     closures are covered by the single-pipeline ordering argument in
//     fabric.Map's doc);
//   - the package assigns it a value originating outside the component: a
//     constructor parameter, a package-level variable, or another object's
//     field. References the component makes itself (make, new, composite
//     literals, call results) are owned, not shared.
//
// A suspect field passes when the component implements StateSharer and its
// SharedState body mentions the field, or when the field's declaration or
// the external assignment carries a "lint:sharedstate-ok" waiver.
var SharedState = &Analyzer{
	Name:       "sharedstate",
	Doc:        "components aliasing external mutable state must declare it via SharedState()",
	NeedsTypes: true,
	Run:        runSharedState,
}

// runSharedState drives the rule over one package.
func runSharedState(pass *Pass) error {
	comps := componentStructs(pass)
	if len(comps) == 0 {
		return nil
	}
	ext := newOriginAnalysis(pass)
	for _, comp := range comps {
		checkComponentSharing(pass, comp, ext)
	}
	return nil
}

// component pairs a named component struct with its syntax.
type component struct {
	named  *types.Named
	str    *types.Struct
	spec   *ast.TypeSpec
	fields *ast.FieldList
}

// componentStructs finds every named struct type in the package whose
// pointer method set satisfies the sim.Component shape: Name() string,
// Tick(int64), Done() bool. The check is structural, so the analyzer works
// on any package without importing the simulator.
func componentStructs(pass *Pass) []component {
	var out []component
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok || !isComponentType(named) {
					continue
				}
				str, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				out = append(out, component{named: named, str: str, spec: ts, fields: st.Fields})
			}
		}
	}
	return out
}

// isComponentType reports whether *T satisfies the component shape.
func isComponentType(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	hasName, hasTick, hasDone := false, false, false
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		switch fn.Name() {
		case "Name":
			hasName = sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				isBasic(sig.Results().At(0).Type(), types.String)
		case "Tick":
			hasTick = sig.Params().Len() == 1 && sig.Results().Len() == 0 &&
				isBasic(sig.Params().At(0).Type(), types.Int64)
		case "Done":
			hasDone = sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				isBasic(sig.Results().At(0).Type(), types.Bool)
		}
	}
	return hasName && hasTick && hasDone
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Kind() == kind
}

// checkComponentSharing applies the sharedstate rule to one component.
func checkComponentSharing(pass *Pass, comp component, ext *originAnalysis) {
	declared := sharedStateMentions(pass, comp.named)
	for _, field := range comp.fields.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			unsafeDesc := sharedReach(obj.Type(), make(map[types.Type]bool))
			if unsafeDesc == "" {
				continue
			}
			assign := ext.externalAssignment(comp.named, name.Name)
			if !assign.IsValid() {
				continue
			}
			if declared != nil && declared[name.Name] {
				continue
			}
			if pass.Waived(name.Pos(), SharedStateWaiver) || pass.Waived(assign, SharedStateWaiver) {
				continue
			}
			where := pass.Fset.Position(assign)
			pass.Reportf(name.Pos(),
				"component %s field %s can alias mutable shared state (%s) assigned from outside the component at %s:%d; "+
					"declare it in SharedState() so the parallel kernel serializes its sharers, or mark the field %s if the state is immutable",
				comp.named.Obj().Name(), name.Name, unsafeDesc,
				trimPath(where.Filename), where.Line, SharedStateWaiver)
		}
	}
}

// trimPath shortens an absolute filename to its last two path elements.
func trimPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) > 2 {
		return strings.Join(parts[len(parts)-2:], "/")
	}
	return p
}

// sharedReach reports how t can reach mutable heap state shareable between
// components, returning a human description of the first such reach or ""
// when t is safe. sim.Link pointers are safe — the scheduler already unions
// link endpoints through the port interfaces. Funcs are exempt (see the
// analyzer doc); everything else recurses structurally.
func sharedReach(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := types.Unalias(t).(type) {
	case *types.Basic:
		return ""
	case *types.Named:
		return sharedReach(u.Underlying(), seen)
	case *types.Pointer:
		if isSimSynchronized(u.Elem()) {
			return ""
		}
		return "pointer " + types.TypeString(u, nil)
	case *types.Map:
		return "map " + types.TypeString(u, nil)
	case *types.Chan:
		return "chan " + types.TypeString(u, nil)
	case *types.Slice:
		return sharedReach(u.Elem(), seen)
	case *types.Array:
		return sharedReach(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if d := sharedReach(u.Field(i).Type(), seen); d != "" {
				return d
			}
		}
		return ""
	case *types.Signature:
		return ""
	case *types.Interface:
		if u.Empty() {
			return "interface{} value"
		}
		return "interface " + types.TypeString(u, nil)
	default:
		return types.TypeString(t, nil)
	}
}

// isSimSynchronized reports whether t is one of the simulator types that are
// safe to share without a SharedState declaration: sim.Link (the scheduler
// unions link endpoints through the port interfaces) and sim.Stats (mutex-
// sharded counters whose Add is commutative, so tick order cannot leak into
// results).
func isSimSynchronized(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/sim") {
		return false
	}
	return obj.Name() == "Link" || obj.Name() == "Stats"
}

// sharedStateMentions returns the set of receiver field names read by the
// component's SharedState method, or nil when the component does not
// implement StateSharer. Mentioning a field in SharedState is what hands it
// to the scheduler.
func sharedStateMentions(pass *Pass, named *types.Named) map[string]bool {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "SharedState" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if receiverNamed(pass, fd) != named {
				continue
			}
			recvObj := receiverObject(pass, fd)
			mentions := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recvObj && recvObj != nil {
					mentions[sel.Sel.Name] = true
				}
				return true
			})
			return mentions
		}
	}
	return nil
}

// receiverNamed resolves the named type a method's receiver belongs to.
func receiverNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// receiverObject resolves the receiver variable of a method, or nil for an
// anonymous receiver.
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}
