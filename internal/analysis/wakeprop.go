package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WakepropWaiver suppresses the wakeprop rule on the write (or the whole
// method declaration) it annotates, asserting the mutation is covered by a
// wake channel the checker cannot see — typically a WakeHint timer that
// already spans the maturation, or a caller contract that only invokes the
// method while the component is provably awake.
const WakepropWaiver = "lint:wakeprop-ok"

// observationMethods are the quiescence surface of a component: the methods
// whose answers decide whether the wake scheduler lets it sleep (Idle), keeps
// the O(1) termination counters (Done), or gates drain accounting
// (Drained/Empty). Any struct field these methods read is *wake-relevant
// state*: a mutation of such a field can flip the component from quiescent to
// runnable.
var observationMethods = map[string]bool{
	"Idle": true, "Done": true, "Drained": true, "Empty": true,
}

// schedulerSurface are methods the scheduler itself calls (or that tickpurity
// already polices); they are never treated as an unnotified entry point.
var schedulerSurface = map[string]bool{
	"Idle": true, "Done": true, "Drained": true, "Empty": true,
	"CanPush": true, "Stats": true, "Name": true, "Tick": true,
	"TickBatch": true,
	"WakeHint":  true, "SharedState": true, "HostsCallbacks": true,
	"InputLinks": true, "OutputLinks": true,
	"WorstCaseInternalLatency": true,
}

// pureFieldObservers are method names that, called on a wake-relevant field,
// only observe it (ring.Queue / sim.Link observation APIs). Any other method
// call on such a field is conservatively a mutation — Push/Drop/Reset all
// change the answer Len() gives.
var pureFieldObservers = map[string]bool{
	"Len": true, "Empty": true, "Front": true, "At": true, "Peek": true,
	"CanPush": true, "Drained": true, "Name": true, "Capacity": true,
	"Latency": true, "Pushes": true, "Pops": true, "String": true,
	"Snapshot": true, "Get": true, "Count": true,
}

// Wakeprop is the missed-wake prover for the event-driven kernel
// (internal/sim/wake.go). The scheduler lets a component sleep as soon as
// Idle answers true, and the soundness argument enumerates exactly three
// channels that can end the sleep: committed link activity, a shared-state
// partner's tick, and a WakeHint timer. A method that mutates wake-relevant
// state — a field the component's Idle/Done/Drained/Empty answers read —
// from *outside* its own Tick therefore needs one of those channels to
// announce the change, or the component sleeps through work the polling
// kernel would have seen: a silent correctness divergence the dynamic
// VerifyWakeContract harness catches only on paths a test happens to drive.
//
// For every component type (Name/Tick/Done shape) implementing Idle, the
// analyzer computes the wake-relevant field set (fields read, transitively
// through same-type helpers, by the observation methods), then walks every
// *unnotified entry point* into the component and flags writes to those
// fields. An entry point is unnotified unless one of the sanctioned wake
// channels provably covers it:
//
//   - methods reachable from Tick run while the component is awake — the
//     scheduler re-arms a ticked component for the next cycle;
//   - a path that pushes or pops a sim.Link is announced by the end-of-cycle
//     link commit, which wakes both endpoints (and declared link sharers);
//   - builder methods returning the receiver type are construction-time
//     chaining by convention — the scheduler examines every component on the
//     first cycle, so pre-run mutation cannot be missed;
//   - function literals inside a StateSharer component are completion
//     callbacks registered with the shared resource: they fire inside a
//     partner's tick, and a partner's tick wakes the component (wake.go's
//     partner rule, widened one hop for CallbackHosts).
//
// Everything else — a plain setter invoked mid-run by another component, a
// callback on a component that declares no shared state — is reported at the
// write site. A reviewed escape carries a "lint:wakeprop-ok" marker on the
// write or the method declaration, mirroring the OrderWaiver pattern:
// the point is that every unannounced mutation of wake-relevant state in the
// tree has a justification a reviewer can audit.
var Wakeprop = &Analyzer{
	Name:       "wakeprop",
	Doc:        "writes to Idle/Done-observed state outside Tick must reach a wake notification (link op, partner tick, or waiver)",
	NeedsTypes: true,
	Run:        runWakeprop,
}

func runWakeprop(pass *Pass) error {
	for _, comp := range componentStructs(pass) {
		w := newWakepropComp(pass, comp)
		if w == nil {
			continue // no Idle method: the component never sleeps
		}
		w.check()
	}
	return nil
}

// wakepropComp is the per-component analysis state.
type wakepropComp struct {
	pass    *Pass
	comp    component
	methods map[string]*ast.FuncDecl // T's methods by name
	recvs   map[string]types.Object  // receiver object per method
	obs     map[string]bool          // wake-relevant field names
	obsBy   map[string][]string      // field -> observation methods reading it
	sharer  bool                     // implements StateSharer with a body
}

func newWakepropComp(pass *Pass, comp component) *wakepropComp {
	w := &wakepropComp{
		pass:    pass,
		comp:    comp,
		methods: make(map[string]*ast.FuncDecl),
		recvs:   make(map[string]types.Object),
		obs:     make(map[string]bool),
		obsBy:   make(map[string][]string),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if receiverNamed(pass, fd) != comp.named {
				continue
			}
			w.methods[fd.Name.Name] = fd
			w.recvs[fd.Name.Name] = receiverObject(pass, fd)
		}
	}
	if _, ok := w.methods["Idle"]; !ok {
		return nil
	}
	w.sharer = sharedStateMentions(pass, comp.named) != nil
	for name := range observationMethods {
		if _, ok := w.methods[name]; ok {
			w.collectObserved(name, name, make(map[string]bool))
		}
	}
	return w
}

// collectObserved gathers the receiver fields read by method `name` and by
// the same-type helpers it calls, attributing them to observation method
// `top` for diagnostics.
func (w *wakepropComp) collectObserved(top, name string, seen map[string]bool) {
	if seen[name] {
		return
	}
	seen[name] = true
	fd := w.methods[name]
	recv := w.recvs[name]
	if fd == nil || recv == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || w.pass.TypesInfo.Uses[id] != recv {
			return true
		}
		// recv.m(...) helper call: recurse; recv.f: field read.
		if _, isMethod := w.methods[sel.Sel.Name]; isMethod {
			w.collectObserved(top, sel.Sel.Name, seen)
			return true
		}
		if w.isField(sel.Sel.Name) && !w.obs[sel.Sel.Name] {
			w.obs[sel.Sel.Name] = true
		}
		if w.isField(sel.Sel.Name) {
			w.noteObserver(sel.Sel.Name, top)
		}
		return true
	})
}

func (w *wakepropComp) noteObserver(field, top string) {
	for _, t := range w.obsBy[field] {
		if t == top {
			return
		}
	}
	w.obsBy[field] = append(w.obsBy[field], top)
	sort.Strings(w.obsBy[field])
}

// isField reports whether name is a struct field of the component.
func (w *wakepropComp) isField(name string) bool {
	for i := 0; i < w.comp.str.NumFields(); i++ {
		if w.comp.str.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// tickReachable computes the method names reachable from Tick through
// same-type calls, *excluding* function-literal bodies: a closure built
// during a tick is deferred work — it runs when some other component fires
// it, outside this component's wake guarantee.
func (w *wakepropComp) tickReachable() map[string]bool {
	reach := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		fd := w.methods[name]
		recv := w.recvs[name]
		if fd == nil || recv == nil {
			return
		}
		w.forEachMethodCall(fd.Body, recv, true, func(callee string) {
			visit(callee)
		})
	}
	visit("Tick")
	// TickBatch is scheduler surface with the same re-arm guarantee as Tick
	// (the scheduler only offers a batch to an awake component, and ticking
	// re-arms it), so its helpers are covered by the same argument.
	visit("TickBatch")
	return reach
}

// forEachMethodCall invokes fn for every recv.m(...) call in body;
// skipLits controls whether function-literal bodies are descended into.
func (w *wakepropComp) forEachMethodCall(body ast.Node, recv types.Object, skipLits bool, fn func(string)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if skipLits {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && w.pass.TypesInfo.Uses[id] == recv {
			if _, isMethod := w.methods[sel.Sel.Name]; isMethod {
				fn(sel.Sel.Name)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// isBuilder reports whether a method returns its own receiver type —
// the chainable construction idiom (Cyclic(), Typed(...)): such methods run
// before the system does, and the scheduler examines everything on the
// first cycle.
func (w *wakepropComp) isBuilder(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		tv, ok := w.pass.TypesInfo.Types[res.Type]
		if !ok {
			continue
		}
		t := types.Unalias(tv.Type)
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == w.comp.named.Obj() {
			return true
		}
	}
	return false
}

// check walks every unnotified entry point and reports unannounced writes.
func (w *wakepropComp) check() {
	tickReach := w.tickReachable()

	// Direct entry points: methods that are neither scheduler surface, nor
	// tick-internal, nor builders.
	names := make([]string, 0, len(w.methods))
	for name := range w.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fd := w.methods[name]
		if schedulerSurface[name] || tickReach[name] || w.isBuilder(fd) {
			continue
		}
		if w.pass.Waived(fd.Pos(), WakepropWaiver) {
			continue
		}
		w.checkEntry(name, "method "+name)
	}

	// Closure entry points: function literals anywhere in the component's
	// methods. In a StateSharer component these are completion callbacks
	// covered by the partner-tick wake; elsewhere they announce nothing.
	if w.sharer {
		return
	}
	for _, name := range names {
		fd := w.methods[name]
		recv := w.recvs[name]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if w.pass.Waived(lit.Pos(), WakepropWaiver) {
				return false
			}
			w.checkPath(lit.Body, recv, "closure in "+name, false, make(map[string]bool))
			return false // nested literals are covered by the outer walk
		})
	}
}

// checkEntry analyzes one entry method and its same-type callees as a unit:
// the whole path is discharged when any step performs a link notification.
// Literal bodies are excluded from the write report — a closure built here
// is deferred work, reported (or discharged) by the closure pass under the
// method that builds it.
func (w *wakepropComp) checkEntry(name, desc string) {
	w.checkPath(w.methods[name].Body, w.recvs[name], desc, true, map[string]bool{name: true})
}

// checkPath reports unannounced wake-relevant writes reachable from body.
// The traversal first looks for a link notification anywhere on the path
// (the end-of-cycle commit wakes the link's endpoints, so the mutation is
// announced); only notification-free paths report their writes. skipLits
// excludes function-literal bodies from the report.
func (w *wakepropComp) checkPath(body ast.Node, recv types.Object, desc string, skipLits bool, seen map[string]bool) {
	bodies := []ast.Node{body}
	recvs := []types.Object{recv}
	// Expand the path across same-type callees (closures included this
	// time: a helper's literal executed on this path shares its fate).
	for i := 0; i < len(bodies); i++ {
		w.forEachMethodCall(bodies[i], recvs[i], false, func(callee string) {
			if seen[callee] {
				return
			}
			seen[callee] = true
			if fd := w.methods[callee]; fd != nil {
				bodies = append(bodies, fd.Body)
				recvs = append(recvs, w.recvs[callee])
			}
		})
	}
	for i, b := range bodies {
		if w.hasLinkNotification(b, recvs[i]) {
			return
		}
	}
	for i, b := range bodies {
		w.reportWrites(b, recvs[i], desc, skipLits)
	}
}

// linkMutators are the sim.Link methods whose effect the end-of-cycle commit
// announces to the link's endpoints and sharers.
var linkMutators = map[string]bool{
	"Push": true, "PushEOS": true, "StageVec": true, "Pop": true, "Drop": true,
	// Block forms commit (and therefore announce) exactly like their scalar
	// counterparts — one span, same end-of-cycle wake to both endpoints.
	"PushBlock": true, "PopBlock": true, "DropBlock": true,
}

// hasLinkNotification reports whether body performs a mutating operation on
// a sim.Link-typed value.
func (w *wakepropComp) hasLinkNotification(body ast.Node, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !linkMutators[sel.Sel.Name] {
			return true
		}
		if tv, ok := w.pass.TypesInfo.Types[sel.X]; ok && isLinkType(tv.Type) {
			found = true
		}
		return true
	})
	return found
}

// isLinkType matches *sim.Link / sim.Link by package-path suffix.
func isLinkType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Link" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}

// reportWrites flags writes to wake-relevant fields in one body; skipLits
// excludes function-literal bodies (covered by the closure pass).
func (w *wakepropComp) reportWrites(body ast.Node, recv types.Object, desc string, skipLits bool) {
	report := func(pos token.Pos, field, how string) {
		if w.pass.Waived(pos, WakepropWaiver) {
			return
		}
		w.pass.Reportf(pos,
			"%s of %s %s field %s, which %s reads: a sleeping component never re-examines it "+
				"(wake.go announces only link commits, partner ticks, and WakeHint timers); "+
				"push/pop a link on this path, declare the mutation channel via SharedState, or mark it %s",
			desc, w.comp.named.Obj().Name(), how, field,
			strings.Join(w.obsBy[field], "/"), WakepropWaiver)
	}
	fieldOf := func(e ast.Expr) (string, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || w.pass.TypesInfo.Uses[id] != recv || recv == nil {
			return "", false
		}
		if w.obs[sel.Sel.Name] {
			return sel.Sel.Name, true
		}
		return "", false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if skipLits && n != body {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				target := lhs
				// A store through the field (s.f[i] = v, *s.f = v, s.f.g = v)
				// mutates the observed value too.
				for {
					switch t := target.(type) {
					case *ast.IndexExpr:
						target = t.X
						continue
					case *ast.StarExpr:
						target = t.X
						continue
					case *ast.SelectorExpr:
						if f, ok := fieldOf(t); ok {
							report(lhs.Pos(), f, "writes")
						} else if inner, ok := t.X.(*ast.SelectorExpr); ok {
							if f, ok := fieldOf(inner); ok {
								report(lhs.Pos(), f, "writes through")
							}
						}
					}
					break
				}
			}
		case *ast.IncDecStmt:
			if f, ok := fieldOf(x.X); ok {
				report(x.Pos(), f, "mutates")
			}
		case *ast.CallExpr:
			// recv.f.Push(...) — a mutating method call on an observed field.
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || pureFieldObservers[sel.Sel.Name] {
				return true
			}
			if inner, ok := sel.X.(*ast.SelectorExpr); ok {
				if f, ok := fieldOf(inner); ok {
					// Link fields are announced by commit, not missed.
					if tv, ok := w.pass.TypesInfo.Types[inner]; !ok || !isLinkType(tv.Type) {
						report(x.Pos(), f, "calls "+sel.Sel.Name+" on")
					}
				}
			}
			// &recv.f or recv.f passed as an argument may be mutated by the
			// callee; stay syntactic — address-of an observed field escaping
			// into a call is flagged.
			for _, arg := range x.Args {
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					if f, ok := fieldOf(u.X); ok {
						report(u.Pos(), f, "passes the address of")
					}
				}
			}
		}
		return true
	})
}
