package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// OrderdepWaiver suppresses the orderdep rule on the spad.Spec literal it
// annotates, asserting the kernel's protocol makes the update order
// unobservable (e.g. a CAS retry loop whose every interleaving converges).
const OrderdepWaiver = "lint:orderdep-ok"

// Orderdep is the source-level half of the reorder-safety prover: every
// spad.Spec composite literal must be statically classifiable as safe under
// the architecture's undefined-thread-order contract (paper §II — the
// reordering pipelines of the scratchpad and DRAM nodes retire threads in
// completion order, not arrival order).
//
// The classification mirrors spad.Op.Commutativity():
//
//   - OpRead (the zero value) and OpFAA are order-insensitive and always
//     pass;
//   - OpModify passes only when the literal declares a Combiner — a named
//     CombineFn carrying its own commutativity class — instead of a raw
//     Modify closure the checker cannot see into;
//   - OpWrite, OpCAS and OpXCHG are order-dependent (last-writer-wins or
//     observed-value semantics) and must carry one of: DisjointAddrs: true
//     (no two in-flight threads touch the same address, so order cannot
//     matter), a non-empty OrderWaiver string (the runtime check surfaces
//     it in proof reports), or a "lint:orderdep-ok" comment on the literal.
//
// The rule is deliberately syntactic about the escape hatches: the point is
// that every order-dependent RMW in the tree carries a reviewable
// justification at the site that declares it.
var Orderdep = &Analyzer{
	Name:       "orderdep",
	Doc:        "order-dependent spad.Spec RMWs must declare a commutative combiner, disjoint addresses, or a waiver",
	NeedsTypes: true,
	Run:        runOrderdep,
}

func runOrderdep(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok || !isSpadSpec(tv.Type) {
				return true
			}
			checkSpecLit(pass, cl)
			return true
		})
	}
	return nil
}

// isSpadSpec matches the spad.Spec named type by package-path suffix, so
// the analyzer works from any importing package without linking spad.
func isSpadSpec(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Spec" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/spad")
}

// checkSpecLit applies the classification to one Spec literal.
func checkSpecLit(pass *Pass, cl *ast.CompositeLit) {
	op := "OpRead" // zero value of spad.Op
	hasCombiner, hasDisjoint, hasWaiverField := false, false, false
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Op":
			if name := constName(pass, kv.Value); name != "" {
				op = name
			}
		case "Combiner":
			hasCombiner = !isNilExpr(kv.Value)
		case "DisjointAddrs":
			if id, ok := kv.Value.(*ast.Ident); ok && id.Name == "true" {
				hasDisjoint = true
			}
		case "OrderWaiver":
			hasWaiverField = !isEmptyString(pass, kv.Value)
		}
	}
	switch op {
	case "OpRead", "OpFAA":
		return // pure / commutative
	case "OpModify":
		if hasCombiner {
			return // classification travels with the named CombineFn
		}
	}
	if hasDisjoint || hasWaiverField {
		return
	}
	if pass.Waived(cl.Pos(), OrderdepWaiver) {
		return
	}
	hint := "declare DisjointAddrs: true, set a non-empty OrderWaiver, or add a " + OrderdepWaiver + " comment"
	if op == "OpModify" {
		hint = "declare a Combiner (a named spad.CombineFn with its commutativity class) instead of a raw Modify closure, or " + hint
	}
	pass.Reportf(cl.Pos(),
		"spad.Spec with %s is order-dependent: under the undefined-thread-order contract its result varies with retirement order; %s",
		op, hint)
}

// constName resolves the identifier or selector naming a constant, e.g.
// spad.OpWrite -> "OpWrite".
func constName(pass *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isEmptyString reports whether e is a constant empty string; a non-constant
// expression counts as non-empty (the author supplied something).
func isEmptyString(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == `""`
}
