package analysis

import (
	"aurochs/internal/lint"
)

// Determinism adapts the PR-1 AST-only rules (wallclock, globalrand,
// maprange, print) to the type-checked driver so aurochs-vet runs one
// engine. The rule logic stays in internal/lint — it needs no types, and
// its fixtures keep guarding it — but the parse happens once here and the
// findings flow through the same sorted, JSON-ready stream as the
// go/types analyzers. DeterminismWith selects a rule subset for package
// classes that only get print hygiene.
var Determinism = DeterminismWith(lint.AllRules())

// DeterminismWith builds a determinism adapter restricted to the given
// rules.
func DeterminismWith(rules lint.Rules) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "wallclock/globalrand/maprange/print rules from internal/lint",
	}
	a.Run = func(pass *Pass) error {
		if rules.None() {
			return nil
		}
		for i, f := range pass.Files {
			for _, finding := range lint.AnalyzeASTFile(pass.Fset, f, pass.Filenames[i], rules) {
				// Re-report under the original rule name so output stays
				// bit-compatible with the PR-1 linter.
				*pass.findings = append(*pass.findings, finding)
			}
		}
		return nil
	}
	return a
}
