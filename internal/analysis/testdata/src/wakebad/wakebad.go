// Package wakebad is an analysis fixture: a sleeping component whose
// wake-relevant state — the fields its Idle/Done answers read — is mutated
// through entry points no sanctioned wake channel announces. Every
// violation here is counted by TestWakeBadFixture; update both together.
// This package is also a CI negative fixture — the workflow runs
// aurochs-vet -wake on it and requires a failing exit.
package wakebad

import "aurochs/internal/sim"

// Node sleeps as soon as its backlog drains; nothing below wakes it back up.
type Node struct {
	in      *sim.Link
	pending int
	eos     bool
}

func (n *Node) Name() string { return "wakebad" }

func (n *Node) Done() bool { return n.eos }

// Idle reads pending and the input link, making both wake-relevant.
func (n *Node) Idle(int64) bool { return n.pending == 0 && n.in.Empty() }

func (n *Node) Tick(cycle int64) {
	if n.pending > 0 {
		n.pending--
	}
}

// Inject is a plain setter another component calls mid-run: it makes the
// node runnable, but no link commit, partner tick, or timer announces it —
// a sleeping node never sees the work. FINDING: writes pending.
func (n *Node) Inject(k int) {
	n.pending += k
}

// Finish flips the Done answer from outside Tick; the scheduler's O(1)
// termination census never re-reads it. FINDING: writes eos.
func (n *Node) Finish() {
	n.eos = true
}

// Subscribe hands a mutating callback to an arbitrary registry. Node
// declares no SharedState, so when the callback eventually fires there is
// no partner-tick wake covering it. FINDING: closure mutates pending.
func (n *Node) Subscribe(register func(func())) {
	register(func() {
		n.pending++
	})
}
