// Package allocbad is an analysis fixture: a component whose Tick reaches
// every class of allocation site the hotalloc prover flags. Each violation
// is counted by TestAllocBadFixture; update both together. This package is
// also a CI negative fixture — the workflow runs aurochs-vet -allocs on it
// and requires a failing exit.
package allocbad

import "fmt"

// pair is a local composite whose address escapes below.
type pair struct {
	a, b int
}

// Hog allocates on its per-cycle path in every way Go hides in plain
// syntax.
type Hog struct {
	buf  []int
	m    map[int]int
	name string
	eos  bool
}

func (h *Hog) Name() string { return "allocbad" }

func (h *Hog) Done() bool { return h.eos }

func (h *Hog) Tick(cycle int64) {
	h.buf = append(h.buf, int(cycle)) // FINDING: append growth
	h.m[int(cycle)] = 1               // FINDING: map bucket allocation
	s := make([]int, 8)               // FINDING: make
	_ = s
	p := &pair{a: 1} // FINDING: escaping composite literal
	h.sink(p)
	h.call(func() { h.eos = true }) // FINDING: closure capture cell
	b := any(cycle)                 // FINDING: interface boxing
	h.keep(b)
	lbl := fmt.Sprintf("c%d", cycle) // FINDING: fmt formats into the heap
	_ = lbl
	msg := h.name + "!" // FINDING: non-constant string concatenation
	_ = msg
}

// sink receives the escaping pointer; its own body is allocation-free.
func (h *Hog) sink(p *pair) {
	h.buf = h.buf[:0]
	_ = p
}

// call invokes a function value — the call itself is exempt (datapath
// closures are covered by the runtime gates); building the closure above is
// the finding.
func (h *Hog) call(f func()) {
	f()
}

// keep swallows an already-boxed value.
func (h *Hog) keep(v any) {
	_ = v
}
