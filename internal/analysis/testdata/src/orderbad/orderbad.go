// Package orderbad is an analysis fixture: spad.Spec literals whose
// cross-thread effects are order-dependent and carry no justification.
// Every violation here is counted by TestOrderBadFixture; update both
// together. This package is also the CI negative fixture — the workflow
// runs aurochs-vet on it and requires a failing exit.
package orderbad

import (
	"aurochs/internal/record"
	"aurochs/internal/spad"
)

// PlainScatter is a last-writer-wins write with no disjointness claim:
// under undefined thread order the final memory image depends on
// retirement order.
func PlainScatter() spad.Spec {
	return spad.Spec{
		Op:    spad.OpWrite,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
		Data:  func(r *record.Rec, _ int) uint32 { return r.Get(1) },
	}
}

// RawModify hides its combiner in an opaque closure the checker cannot
// classify; OpModify must declare a named Combiner instead.
func RawModify() spad.Spec {
	return spad.Spec{
		Op:   spad.OpModify,
		Addr: func(r *record.Rec) uint32 { return r.Get(0) },
		Modify: func(cur uint32, r *record.Rec) uint32 {
			return cur*31 + r.Get(1) // order-sensitive fold
		},
	}
}

// BareCAS observes the current value, so which thread wins depends on
// order; it needs an OrderWaiver explaining why the protocol converges.
func BareCAS() spad.Spec {
	return spad.Spec{
		Op:   spad.OpCAS,
		Addr: func(r *record.Rec) uint32 { return r.Get(0) },
		Data: func(r *record.Rec, i int) uint32 { return r.Get(1 + i) },
	}
}

// EmptyWaiver sets OrderWaiver to the empty string, which is not a
// justification.
func EmptyWaiver() spad.Spec {
	return spad.Spec{
		Op:          spad.OpXCHG,
		Addr:        func(r *record.Rec) uint32 { return r.Get(0) },
		Data:        func(r *record.Rec, _ int) uint32 { return r.Get(1) },
		OrderWaiver: "",
	}
}
