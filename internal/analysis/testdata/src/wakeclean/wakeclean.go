// Package wakeclean is an analysis fixture: every mutation of wake-relevant
// state below is covered by a sanctioned wake channel or a reviewed waiver,
// so the wakeprop analyzer must report nothing.
package wakeclean

import "aurochs/internal/sim"

// Node exercises the per-method discharge rules: tick-reachable helpers,
// builder chaining, link notification on the mutation path, and an explicit
// reviewed waiver.
type Node struct {
	out     *sim.Link
	pending int
	eos     bool
}

func (n *Node) Name() string { return "wakeclean" }

func (n *Node) Done() bool { return n.eos }

func (n *Node) Idle(int64) bool { return n.pending == 0 }

func (n *Node) Tick(cycle int64) {
	if n.pending > 0 {
		n.pending--
		n.settle()
	}
}

// settle is reachable from Tick: it runs while the component is awake, and
// the scheduler re-arms a ticked component for the next cycle.
func (n *Node) settle() {
	n.eos = n.pending == 0
}

// WithPending returns the receiver type — construction-time chaining. The
// scheduler examines every component on the first cycle, so pre-run
// mutation cannot be missed.
func (n *Node) WithPending(k int) *Node {
	n.pending = k
	return n
}

// Feed mutates wake-relevant state but pushes a link on the same path: the
// end-of-cycle commit wakes the link's endpoints, announcing the change.
func (n *Node) Feed(cycle int64) {
	n.pending++
	n.out.Push(cycle, sim.Flit{})
}

// Reset is invoked only between runs, while the scheduler is not holding
// anything asleep. lint:wakeprop-ok — reviewed: harness-only entry point.
func (n *Node) Reset() {
	n.pending = 0
	n.eos = false
}

// Hub is a shared resource (not itself a component) that fires registered
// callbacks from inside its owner's tick.
type Hub struct {
	cbs []func()
}

// Register queues a completion callback.
func (h *Hub) Register(f func()) {
	h.cbs = append(h.cbs, f)
}

// Pump exercises the StateSharer closure discharge: it declares the hub via
// SharedState, so its completion callbacks fire inside a partner's tick and
// the kernel's partner-tick wake channel re-examines Pump's Idle.
type Pump struct {
	h           *Hub
	outstanding int
	eos         bool
}

func (p *Pump) Name() string { return "pump" }

func (p *Pump) Done() bool { return p.eos }

func (p *Pump) Idle(int64) bool { return p.outstanding == 0 }

// SharedState declares the hub: submissions and completions interleave with
// its owner's tick.
func (p *Pump) SharedState() []any { return []any{p.h} }

func (p *Pump) Tick(cycle int64) {
	if p.outstanding > 0 {
		p.outstanding--
	}
}

// Prime registers a completion callback that mutates wake-relevant state;
// the declared shared state means a partner tick announces it.
func (p *Pump) Prime() {
	p.h.Register(func() {
		p.outstanding--
	})
}
