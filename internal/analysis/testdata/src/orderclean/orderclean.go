// Package orderclean is an analysis fixture: one spad.Spec literal per
// legitimate way to satisfy the orderdep rule. TestOrderCleanFixture
// requires zero findings here.
package orderclean

import (
	"aurochs/internal/record"
	"aurochs/internal/spad"
)

// Gather is pure: reads cannot conflict.
func Gather() spad.Spec {
	return spad.Spec{
		Op:    spad.OpRead,
		Width: 2,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
	}
}

// Histogram is a fetch-and-add: addition commutes.
func Histogram() spad.Spec {
	return spad.Spec{
		Op:   spad.OpFAA,
		Addr: func(r *record.Rec) uint32 { return r.Get(0) },
		Data: func(*record.Rec, int) uint32 { return 1 },
	}
}

// DisjointScatter writes, but every thread owns its slot.
func DisjointScatter() spad.Spec {
	return spad.Spec{
		Op:            spad.OpWrite,
		Width:         1,
		Addr:          func(r *record.Rec) uint32 { return r.Get(0) },
		Data:          func(r *record.Rec, _ int) uint32 { return r.Get(1) },
		DisjointAddrs: true,
	}
}

// DeclaredModify routes its RMW through a named combiner whose
// commutativity class the runtime check can read.
func DeclaredModify() spad.Spec {
	return spad.Spec{
		Op:       spad.OpModify,
		Addr:     func(r *record.Rec) uint32 { return r.Get(0) },
		Combiner: spad.CombineMax,
	}
}

// WaivedCAS justifies its order dependence inline; the waiver travels into
// proof reports.
func WaivedCAS() spad.Spec {
	return spad.Spec{
		Op:          spad.OpCAS,
		Addr:        func(r *record.Rec) uint32 { return r.Get(0) },
		Data:        func(r *record.Rec, i int) uint32 { return r.Get(1 + i) },
		OrderWaiver: "fixture: retry loop converges under every interleaving",
	}
}

// CommentWaived uses the source-level escape hatch for a Spec built
// outside the kernels' annotated idiom.
func CommentWaived() spad.Spec {
	// lint:orderdep-ok — single writer by protocol.
	return spad.Spec{
		Op:    spad.OpWrite,
		Width: 1,
		Addr:  func(*record.Rec) uint32 { return 7 },
		Data:  func(r *record.Rec, _ int) uint32 { return r.Get(0) },
	}
}
