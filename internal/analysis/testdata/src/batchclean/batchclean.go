// Package batchclean is an analysis fixture: the batch tick path moving
// whole flit spans only through the audited block-transport surface —
// sim.Link PeekBlock/DropBlock/PushBlock/PopBlock over staging storage
// fixed at construction — plus a local Push+Pop-shaped container whose own
// block ops reuse a fixed backing array. The hotalloc analyzer, with
// TickBatch and the block ops as roots, must report nothing.
package batchclean

import (
	"aurochs/internal/sim"
)

// Span is a local Push+Pop-shaped container: the shape makes its block ops
// implicit hot-path roots exactly like sim.Link's, and they move data with
// copy over the fixed backing array.
type Span struct {
	buf [16]sim.Flit
	n   int
}

// Push appends one flit into the fixed array.
func (s *Span) Push(f sim.Flit) {
	s.buf[s.n] = f
	s.n++
}

// Pop removes and returns the newest flit.
func (s *Span) Pop() sim.Flit {
	s.n--
	return s.buf[s.n]
}

// PushBlock copies a span in, clamped to the free space.
func (s *Span) PushBlock(fs []sim.Flit) int {
	n := copy(s.buf[s.n:], fs)
	s.n += n
	return n
}

// PeekBlock aliases the occupied prefix.
func (s *Span) PeekBlock() []sim.Flit {
	return s.buf[:s.n]
}

// DropBlock discards the oldest n flits, shifting the remainder in place.
func (s *Span) DropBlock(n int) {
	rem := copy(s.buf[:], s.buf[n:s.n])
	s.n = rem
}

// PopBlock copies the oldest flits out and drops them.
func (s *Span) PopBlock(dst []sim.Flit) int {
	n := copy(dst, s.buf[:s.n])
	s.DropBlock(n)
	return n
}

// Relay forwards flits between two links; its batch tick is the block-path
// mirror of its scalar tick.
type Relay struct {
	in    *sim.Link
	out   *sim.Link
	stage Span
	eos   bool
}

func (r *Relay) Name() string { return "batchclean" }

func (r *Relay) Done() bool { return r.eos }

func (r *Relay) Tick(cycle int64) {
	if !r.in.Empty() && r.out.CanPush() {
		r.out.Push(cycle, r.in.Pop())
	}
}

// TickBatch moves whole visible spans: aliasing peeks, block pushes clamped
// by downstream credits, and one counter update per span — no per-flit
// bookkeeping and no per-batch storage.
func (r *Relay) TickBatch(cycle int64, n int) int {
	total := 0
	for total < n && !r.in.Empty() && r.out.CanPush() {
		blk := r.in.PeekBlock()
		if c := r.out.Credits(); c < len(blk) {
			blk = blk[:c]
		}
		pushed := r.out.PushBlock(cycle, blk)
		if pushed == 0 {
			break
		}
		r.in.DropBlock(pushed)
		total += pushed
	}
	// Staging through the fixed local container stays on the audited
	// surface too.
	if r.stage.n > 0 {
		r.stage.DropBlock(r.stage.n)
	}
	return total
}
