// Package phasebad is an analysis fixture: parallel tick-phase code (a
// component Tick, its helpers, and a spawned goroutine) breaking each of the
// three phaseconf disciplines — cross-shard confinement, atomic
// consistency, and commit-phase purity. Every violation here is counted by
// TestPhaseBadFixture; update both together. This package is also a CI
// negative fixture — the workflow runs aurochs-vet -phase on it and
// requires a failing exit.
package phasebad

import (
	"sync/atomic"

	"aurochs/internal/sim"
)

// tally is package-level state: every shard's worker would write it.
var tally int

// Node is a component, so Tick and the helpers it calls run on a worker
// goroutine during the parallel tick phase.
type Node struct {
	in    *sim.Link
	stats *sim.Stats
	hits  int64
	done  bool
	// commitSeq advances only at the end-of-cycle commit. phase:commit
	commitSeq int64
}

func (n *Node) Name() string { return "phasebad" }
func (n *Node) Done() bool   { return n.done }

// Tick runs concurrently with every other shard's worker.
func (n *Node) Tick(cycle int64) {
	tally++                   // FINDING: package-level write from the parallel phase
	n.hits++                  // FINDING: plain access to a field Rate reads via sync/atomic
	n.commitSeq = cycle       // FINDING: write to a phase:commit field
	n.stats.SetMeta("k", "v") // FINDING: string meta is commit/coordinator-only
	n.bump(&n.done)
}

// bump is reached from Tick, so it inherits the parallel phase; the write
// lands through a pointer parameter whose owner this function cannot prove.
func (n *Node) bump(p *bool) {
	*p = true // FINDING: write through a parameter
}

// Rate reads hits atomically — which makes Tick's plain n.hits++ a mixed
// plain/atomic access.
func (n *Node) Rate() int64 { return atomic.LoadInt64(&n.hits) }

// collectInto spawns a goroutine that appends through a captured pointer
// parameter: the literal's body is parallel-phase code by definition.
func collectInto(res *[]int) {
	go func() {
		*res = append(*res, 1) // FINDING: write through the enclosing parameter
	}()
}
