// Package allocclean is an analysis fixture: a component whose Tick moves
// data only through the audited allocation-free surface — ring.Queue and
// sim.Link ops, fixed-size record values, in-place slice filtering — plus
// one reviewed amortization waiver. The hotalloc analyzer must report
// nothing.
package allocclean

import (
	"fmt"

	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// Mover is steady-state allocation-free: every per-cycle operation reuses
// storage that already exists.
type Mover struct {
	in   *sim.Link
	out  *sim.Link
	q    ring.Queue[record.Rec]
	hot  []record.Rec
	eos  bool
	id   int
	tick int64
}

func (m *Mover) Name() string { return "allocclean" }

func (m *Mover) Done() bool { return m.eos }

func (m *Mover) Tick(cycle int64) {
	m.tick = cycle
	// Audited link and queue ops.
	if !m.in.Empty() && m.out.CanPush() {
		f := m.in.Pop()
		if f.EOS {
			m.eos = true
			m.out.PushEOS(cycle)
			return
		}
		v := m.out.StageVec(cycle)
		for i := 0; i < record.NumLanes; i++ {
			if f.Vec.Valid(i) {
				*v.PushRef() = f.Vec.Lane[i]
			}
		}
	}
	// Fixed-size record values.
	r := record.Make(1, 2).Append(uint32(m.id))
	m.q.Push(r)
	if m.q.Len() > 4 {
		m.q.Drop()
	}
	// In-place delete: append over the same base cannot grow.
	if len(m.hot) > 2 {
		m.hot = append(m.hot[:1], m.hot[2:]...)
	}
	// Aborting the simulation may format: panic arguments are cold.
	if m.id < 0 {
		panic(fmt.Sprintf("allocclean: bad id %d", m.id))
	}
	// Reviewed amortization: grows to the high-water mark, then reuses.
	m.hot = append(m.hot, r) // lint:hotalloc-ok warmup growth, accumulator reused at steady state
}
