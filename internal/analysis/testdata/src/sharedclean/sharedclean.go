// Package sharedclean is an analysis fixture: every pattern here is the
// sanctioned form of something the analyzers would otherwise flag, so the
// whole package must produce zero findings.
package sharedclean

import (
	"aurochs/internal/sim"
)

// Mem is mutable state legitimately shared between tiles.
type Mem struct {
	words []uint32
}

// Config is immutable after construction; sharing it is safe.
type Config struct {
	Depth int
	Label string
}

// Tile declares its sharing: mem flows to SharedState, the link is covered
// by the port interfaces, cfg carries the immutability waiver, and scratch
// is component-owned (constructed, never handed in).
type Tile struct {
	name string
	in   *sim.Link
	mem  *Mem
	// lint:sharedstate-ok — Config is written once before the run starts.
	cfg     *Config
	scratch map[uint32]uint32
	pos     int
	eos     bool
}

// NewTile is the sanctioned constructor shape.
func NewTile(name string, in *sim.Link, mem *Mem, cfg *Config) *Tile {
	return &Tile{name: name, in: in, mem: mem, cfg: cfg, scratch: make(map[uint32]uint32)}
}

// Name implements the component shape.
func (t *Tile) Name() string { return t.name }

// Tick implements the component shape.
func (t *Tile) Tick(cycle int64) {
	if t.in.Empty() {
		return
	}
	f := t.in.Pop()
	if f.EOS {
		t.eos = true
		return
	}
	t.pos++
	t.scratch[uint32(t.pos)] = uint32(cycle)
}

// Done implements the component shape, purely.
func (t *Tile) Done() bool { return t.eos }

// InputLinks implements sim.InputPorts.
func (t *Tile) InputLinks() []*sim.Link { return []*sim.Link{t.in} }

// SharedState declares the scratchpad memory.
func (t *Tile) SharedState() []any { return []any{t.mem} }

// Idle is pure: link observations, field reads, and a pure same-package
// helper.
func (t *Tile) Idle(cycle int64) bool {
	if t.eos {
		return true
	}
	return t.in.Empty() && quiescent(t.pos, t.cfg.Depth)
}

// quiescent is a pure helper the recursive checker must accept.
func quiescent(pos, depth int) bool {
	limit := depth
	if limit < 1 {
		limit = 1
	}
	return pos >= limit
}

// Refresh is a sanctioned impurity: the effect is invisible to results, and
// the waiver documents it the way hbmComponent.Idle does.
//
// lint:tickpure-ok — refreshes a cache that never reaches simulation state.
func (t *Tile) Empty() bool {
	t.pos = t.pos + 0
	return t.in.Empty()
}
