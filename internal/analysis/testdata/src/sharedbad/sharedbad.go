// Package sharedbad is an analysis fixture: a simulator component that
// breaks both type-checked contracts. Every violation here is counted by
// TestSharedBadFixture; update both together.
package sharedbad

// Table is mutable heap state two components could share.
type Table struct {
	rows map[uint32][]uint32
}

// Lookup is an impure helper (memoizing) used from CanPush.
func (t *Table) Lookup(k uint32) []uint32 {
	if t.rows == nil {
		t.rows = make(map[uint32][]uint32)
	}
	return t.rows[k]
}

// Walker is a component (Name/Tick/Done) with two undeclared shared
// references and three impure observation methods.
type Walker struct {
	name  string
	tbl   *Table           // sharedstate: assigned from a constructor parameter, no SharedState()
	log   map[string]int64 // sharedstate: externally provided map
	pos   int
	done  chan struct{}
	calls int
}

// NewWalker stores externally owned state without declaring it.
func NewWalker(name string, tbl *Table, log map[string]int64) *Walker {
	return &Walker{name: name, tbl: tbl, log: log, done: make(chan struct{}, 1)}
}

// Name implements the component shape.
func (w *Walker) Name() string { return w.name }

// Tick implements the component shape; mutation is fine here.
func (w *Walker) Tick(cycle int64) {
	w.pos++
	w.log["ticks"]++
}

// Done is impure: it signals on a channel.
func (w *Walker) Done() bool {
	select {
	case w.done <- struct{}{}:
	default:
	}
	return w.pos > 10
}

// Idle is impure: it counts its own calls, which the idle-skip would turn
// into divergent state between serial and parallel runs.
func (w *Walker) Idle(cycle int64) bool {
	w.calls++
	return w.pos > 5
}

// CanPush is impure through a helper: Lookup memoizes into the shared table.
func (w *Walker) CanPush() bool {
	return len(w.tbl.Lookup(uint32(w.pos))) == 0
}
