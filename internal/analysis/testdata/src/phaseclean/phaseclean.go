// Package phaseclean is an analysis fixture: every phaseconf discharge rule
// in one place — receiver-confined writes, function-owned locals, channel
// sends, mutex guards, the take-address-then-atomic idiom, barrier-ordered
// plain access from coordinator/commit/unphased code, and a reviewed
// parameter-write waiver. TestPhaseCleanFixture requires zero findings.
package phaseclean

import (
	"sync"
	"sync/atomic"

	"aurochs/internal/sim"
)

// journal collects run telemetry behind a lock.
var (
	journalMu sync.Mutex
	journal   []string
)

// Worker is a component: Tick and its callees are parallel-phase code.
type Worker struct {
	out    *sim.Link
	stats  *sim.Stats
	events chan int
	local  int64
	flags  []uint64
	// applied counts committed batches. phase:commit
	applied int64
}

func (w *Worker) Name() string { return "phaseclean" }
func (w *Worker) Done() bool   { return false }

// Tick exercises the confinement discharges: receiver state, owned locals,
// a channel send, an atomic bitmap op via the pointer idiom, and a
// lock-guarded global append.
func (w *Worker) Tick(cycle int64) {
	w.local++ // receiver-reachable: shard ownership is the planner's contract
	buf := make([]int64, 0, 4)
	buf = append(buf, cycle) // function-owned local
	word := &w.flags[0]
	atomic.OrUint64(word, 1) // take-address-then-atomic: sanctioned
	select {
	case w.events <- int(cycle): // channel send: synchronized by definition
	default:
	}
	w.fill(buf)
	journalMu.Lock()
	journal = append(journal, "tick") // mutex-guarded: serialized across workers
	journalMu.Unlock()
}

// fill scribbles into the scratch buffer Tick handed it. The buffer is this
// worker's own per-tick scratch, never shared.
func (w *Worker) fill(buf []int64) {
	for i := range buf {
		buf[i] = w.local // lint:phaseconf-ok per-tick scratch owned by the calling worker
	}
}

// commitBatch is the serial end-of-cycle commit: plain access to the atomic
// bitmap and the commit-only census is barrier-ordered here. phase:commit
func (w *Worker) commitBatch() {
	w.flags[0] = 0 // plain access legal in the commit phase
	w.applied++    // phase:commit field written from the commit phase
}

// redistribute runs on the coordinator between barriers. phase:coordinator
func (w *Worker) redistribute() {
	w.flags[0] |= 2 // plain access legal between barriers
}

// NewWorker is unphased setup code: string meta is fine before the first
// cycle, as is plain initialization of the atomic bitmap.
func NewWorker(stats *sim.Stats) *Worker {
	w := &Worker{stats: stats, events: make(chan int, 8), flags: make([]uint64, 1)}
	stats.SetMeta("kernel", "fixture")
	w.flags[0] = 0
	return w
}
