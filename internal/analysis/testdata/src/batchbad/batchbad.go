// Package batchbad is an analysis fixture: the batch tick path reaching
// every allocation class the extended hotalloc surface must catch — a
// staging buffer made per batch, spill growth on both a scalar and a block
// op of a queue-shaped type, a formatted label, and an interface boxing.
// Each violation is counted by TestBatchBadFixture; update both together.
// This package is also a CI negative fixture — the workflow runs
// aurochs-vet -allocs on it and requires a failing exit.
package batchbad

import (
	"fmt"

	"aurochs/internal/sim"
)

// Spill is Push+Pop-shaped, so its scalar and block ops are implicit
// hot-path roots.
type Spill struct {
	buf []sim.Flit
}

func (s *Spill) Push(f sim.Flit) {
	s.buf = append(s.buf, f) // FINDING: append growth on a scalar op
}

func (s *Spill) Pop() sim.Flit {
	f := s.buf[len(s.buf)-1]
	s.buf = s.buf[:len(s.buf)-1]
	return f
}

// PushBlock grows the spill on the block path.
func (s *Spill) PushBlock(fs []sim.Flit) int {
	s.buf = append(s.buf, fs...) // FINDING: append growth on a block op
	return len(fs)
}

// Batcher allocates per batch in its TickBatch.
type Batcher struct {
	in    *sim.Link
	out   *sim.Link
	label string
	eos   bool
}

func (b *Batcher) Name() string { return "batchbad" }

func (b *Batcher) Done() bool { return b.eos }

func (b *Batcher) Tick(cycle int64) {
	if !b.in.Empty() && b.out.CanPush() {
		b.out.Push(cycle, b.in.Pop())
	}
}

// TickBatch is a hot-path root: its staging and telemetry allocations must
// all be caught.
func (b *Batcher) TickBatch(cycle int64, n int) int {
	dst := make([]sim.Flit, n) // FINDING: per-batch staging buffer
	got := b.in.PopBlock(dst)
	b.label = fmt.Sprintf("batch@%d", cycle) // FINDING: fmt formats into the heap
	v := any(got)                            // FINDING: interface boxing
	_ = v
	return b.out.PushBlock(cycle, dst[:got])
}
