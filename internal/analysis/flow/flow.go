// Package flow is a token-flow abstract interpreter over fabric link
// graphs: it tracks per-link token-count intervals and credit obligations
// through an SCC condensation of the node graph (sim.StronglyConnected,
// the shard planner's iterative Tarjan) and proves three properties —
//
//   - deadlock freedom: every directed credit cycle admits a schedule in
//     which some link always has a free slot, because tokens provably
//     leave the cycle toward drainable consumers;
//   - bounded occupancy: a static upper bound on simultaneous in-flight
//     tokens per link, per cycle, and per node-internal buffer (pipeline
//     registers, compaction accumulators, scratchpad reorder buffers);
//   - loop drain: every LoopMerge cycle quiesces once its sources are
//     exhausted, because the loop control's in-flight count is complete —
//     every token entering the cycle is counted in and every token
//     leaving (exit port, kill, fork delta) is counted out.
//
// When a proof fails the prover emits a wedge witness: a concrete token
// placement (which links fill, which nodes block, how many records the
// external input must inject to reach it) that the fabric's replay
// harness (fabric.ReplayWitness) feeds to a real simulation, asserting
// the engine fails exactly as predicted — differential testing of the
// prover against the simulator.
//
// The package deliberately depends only on internal/sim (for the shared
// Tarjan) and the standard library. The fabric builds Net values from its
// own node types (Graph.FlowNet); hand-built nets drive the unit tests
// and the fuzzer.
package flow

// Kind classifies a node by how it moves tokens. The prover only needs
// conservation behaviour, not compute semantics.
type Kind uint8

const (
	// Opaque is a component the net builder could not classify; the prover
	// trusts nothing about it and warns when one sits on a cycle.
	Opaque Kind = iota
	// SourceKind injects tokens (bounded by Node.Supply) and consumes none.
	SourceKind
	// SinkKind absorbs every token offered, forever.
	SinkKind
	// Transform moves each input token to its single output, possibly after
	// an internal pipeline delay (Map, scratchpad tile, DRAM access node).
	Transform
	// FilterKind routes each input token to exactly one of its output
	// ports, or kills it (a port with Edge < 0, or a route that drops).
	FilterKind
	// MergeKind combines its Pri and Sec inputs into one output. A merge
	// built as a loop entry (Node.LoopEntry) runs the §III-A drain
	// protocol: Sec-side tokens are counted into the loop control.
	MergeKind
	// ForkKind may emit more or fewer tokens than it consumes (thread
	// spawn / kill); the delta is counted into Node.Ctl when one is set.
	ForkKind
)

func (k Kind) String() string {
	switch k {
	case SourceKind:
		return "source"
	case SinkKind:
		return "sink"
	case Transform:
		return "transform"
	case FilterKind:
		return "filter"
	case MergeKind:
		return "merge"
	case ForkKind:
		return "fork"
	default:
		return "opaque"
	}
}

// Port is one output of a node. Edge < 0 is a kill port: tokens routed
// there leave the graph without traversing a link.
type Port struct {
	// Edge indexes Net.Edges, or is -1 for a kill port.
	Edge int
	// Exit marks a port declared as leaving the enclosing loop; tokens
	// routed here are counted out of the loop control when the node
	// carries one.
	Exit bool
}

// Node is one component of the net.
type Node struct {
	// Name matches the simulator component name, so witnesses predict the
	// exact entries of sim.DeadlockError.Stuck.
	Name string
	// Kind is the conservation class.
	Kind Kind
	// LoopEntry marks a merge built with NewLoopMerge: its Sec input is
	// the counted external entry of a cyclic pipeline.
	LoopEntry bool
	// Ctl identifies the loop control this node counts into, or -1. Two
	// nodes share a control iff their Ctl values are equal.
	Ctl int
	// Pri and Sec are a merge's input edge ids (-1 on other kinds).
	Pri, Sec int
	// Amplify marks a node that can emit more tokens than it consumes.
	Amplify bool
	// CanKill marks a node that can retire tokens without an output edge
	// and counts those kills into Ctl (a filter or fork built with a loop
	// control). An undeclared drop is modelled with Lossy instead.
	CanKill bool
	// Lossy marks a node whose response hook may drop tokens
	// (spad.Spec.Lossy); inside a cycle this breaks the drain count
	// unless LossyWaiver justifies it.
	Lossy bool
	// LossyWaiver is the author's audited justification for Lossy inside
	// a loop; non-empty turns the finding into a waived one.
	LossyWaiver string
	// Elastic marks a node with effectively unbounded internal buffering
	// (a spill queue): a cycle through one cannot wedge, though it can
	// still stall at end-of-stream.
	Elastic bool
	// Resident bounds the records simultaneously buffered inside the node
	// (pipeline registers, accumulators, reorder buffers).
	Resident int
	// Supply bounds the records a source injects; -1 is unbounded or
	// unknown.
	Supply int
	// In and Out list the node's ports in declaration order.
	In, Out []Port
}

// Edge is one link: a bounded, credit-controlled token buffer with
// exactly one producer and one consumer.
type Edge struct {
	// Name matches the simulator link name ("link:"+Name in stuck sets).
	Name string
	// From and To index Net.Nodes.
	From, To int
	// Cap is the link capacity in flits, Lat its latency in cycles.
	Cap, Lat int
}

// Net is the abstract link graph the prover interprets.
type Net struct {
	Nodes []Node
	Edges []Edge
	// Lanes is the records-per-flit vector width (record.NumLanes).
	Lanes int
}
