package flow

import (
	"reflect"
	"strings"
	"testing"
)

// nb builds small nets with the same invariants Graph.FlowNet maintains:
// Pri/Sec/Ctl default to -1 and Out ports mirror the edge list.
type nb struct {
	net Net
}

func newNB(lanes int) *nb { return &nb{net: Net{Lanes: lanes}} }

func (b *nb) node(name string, kind Kind, mut func(*Node)) int {
	n := Node{Name: name, Kind: kind, Ctl: -1, Pri: -1, Sec: -1, Supply: -1}
	if mut != nil {
		mut(&n)
	}
	b.net.Nodes = append(b.net.Nodes, n)
	return len(b.net.Nodes) - 1
}

// edge adds a cap-8/lat-2 link and registers the matching ports.
func (b *nb) edge(name string, from, to int, exit bool) int {
	b.net.Edges = append(b.net.Edges, Edge{Name: name, From: from, To: to, Cap: 8, Lat: 2})
	ei := len(b.net.Edges) - 1
	b.net.Nodes[from].Out = append(b.net.Nodes[from].Out, Port{Edge: ei, Exit: exit})
	b.net.Nodes[to].In = append(b.net.Nodes[to].In, Port{Edge: ei})
	return ei
}

func findRule(t *testing.T, fs []Finding, rule string) *Finding {
	t.Helper()
	for i := range fs {
		if fs[i].Rule == rule {
			return &fs[i]
		}
	}
	t.Fatalf("no %s finding in %+v", rule, fs)
	return nil
}

func countRule(fs []Finding, rule string) int {
	n := 0
	for i := range fs {
		if fs[i].Rule == rule {
			n++
		}
	}
	return n
}

// cleanLoop wires the canonical countdown shape: source -> entry merge ->
// map -> exit filter, with the filter recirculating to the entry.
func cleanLoop() *Net {
	b := newNB(4)
	src := b.node("src", SourceKind, func(n *Node) { n.Supply = 64 })
	entry := b.node("entry", MergeKind, func(n *Node) { n.LoopEntry = true; n.Ctl = 0; n.Resident = 31 })
	dec := b.node("dec", Transform, func(n *Node) { n.Resident = 8 })
	exitf := b.node("exit?", FilterKind, func(n *Node) { n.Ctl = 0; n.CanKill = true; n.Resident = 8 })
	sink := b.node("out", SinkKind, nil)

	ext := b.edge("ext", src, entry, false)
	b.edge("body", entry, dec, false)
	b.edge("dec->exit?", dec, exitf, false)
	b.edge("drained", exitf, sink, true)
	rec := b.edge("recirc", exitf, entry, false)
	b.net.Nodes[entry].Pri, b.net.Nodes[entry].Sec = rec, ext
	return &b.net
}

func TestProveAcyclic(t *testing.T) {
	b := newNB(4)
	src := b.node("src", SourceKind, func(n *Node) { n.Supply = 10 })
	m := b.node("double", Transform, func(n *Node) { n.Resident = 8 })
	sink := b.node("out", SinkKind, nil)
	b.edge("in", src, m, false)
	b.edge("doubled", m, sink, false)

	rep := Prove(&b.net)
	if !rep.DeadlockFree() {
		t.Fatalf("acyclic net not deadlock free: %s", rep)
	}
	found := false
	for _, p := range rep.Proofs {
		if p.Subject == "token-flow" && strings.Contains(p.Property, "acyclic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing acyclic proof: %s", rep)
	}
	// Supply (10) is tighter than capacity (8×4=32) on every link.
	for _, lb := range rep.Occupancy.Links {
		if lb.MaxRecords != 10 {
			t.Fatalf("link %s bound = %d, want supply-clamped 10", lb.Link, lb.MaxRecords)
		}
	}
	if rep.Occupancy.Total != 10+10+8 {
		t.Fatalf("total occupancy = %d, want 28", rep.Occupancy.Total)
	}
}

func TestProveCleanLoop(t *testing.T) {
	rep := Prove(cleanLoop())
	if !rep.DeadlockFree() || len(rep.Warnings) != 0 {
		t.Fatalf("clean loop rejected: %s", rep)
	}
	var wantDeadlock, wantDrain bool
	for _, p := range rep.Proofs {
		if strings.HasPrefix(p.Subject, "cycle [") {
			if strings.Contains(p.Property, "deadlock-free") {
				wantDeadlock = true
			}
			if strings.Contains(p.Property, "loop-drain") {
				wantDrain = true
			}
		}
	}
	if !wantDeadlock || !wantDrain {
		t.Fatalf("missing cycle proofs (deadlock=%v drain=%v): %s", wantDeadlock, wantDrain, rep)
	}
	if len(rep.Occupancy.Cycles) != 1 {
		t.Fatalf("want 1 cycle bound, got %+v", rep.Occupancy.Cycles)
	}
	cb := rep.Occupancy.Cycles[0]
	if want := []string{"dec", "entry", "exit?"}; !reflect.DeepEqual(cb.Nodes, want) {
		t.Fatalf("cycle nodes = %v, want %v", cb.Nodes, want)
	}
	// Three internal cap-8 links at 4 lanes, clamped by supply 64... capacity
	// 32 < 64 so capacity wins: 3×32 links + 31+8+8 resident.
	if cb.MaxRecords != 3*32+47 {
		t.Fatalf("cycle MaxRecords = %d, want %d", cb.MaxRecords, 3*32+47)
	}
	if cb.Slack != 3*(8-2) {
		t.Fatalf("cycle slack = %d, want 18", cb.Slack)
	}
}

func TestProveDeterministic(t *testing.T) {
	a, b := Prove(cleanLoop()), Prove(cleanLoop())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Prove not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestProveNoExit(t *testing.T) {
	b := newNB(4)
	src := b.node("src", SourceKind, func(n *Node) { n.Supply = -1 })
	entry := b.node("entry", MergeKind, func(n *Node) { n.LoopEntry = true; n.Ctl = 0; n.Resident = 31 })
	spin := b.node("spin", Transform, func(n *Node) { n.Resident = 8 })
	ext := b.edge("ext", src, entry, false)
	b.edge("body", entry, spin, false)
	rec := b.edge("recirc", spin, entry, false)
	b.net.Nodes[entry].Pri, b.net.Nodes[entry].Sec = rec, ext

	rep := Prove(&b.net)
	f := findRule(t, rep.Findings, RuleNoExit)
	w := f.Witness
	if w == nil || w.Mode != WedgeWitness {
		t.Fatalf("no-exit witness = %+v, want wedge", w)
	}
	// Inject covers the whole net's capacity plus slack: 3 cap-8 links × 4
	// lanes + 39 resident + 2×4.
	if want := 3*32 + 39 + 8; w.Inject != want {
		t.Fatalf("Inject = %d, want %d", w.Inject, want)
	}
	if want := []string{"body", "recirc"}; !reflect.DeepEqual(w.Fill, want) {
		t.Fatalf("Fill = %v, want %v", w.Fill, want)
	}
	if want := []string{"entry", "spin"}; !reflect.DeepEqual(w.Blocked, want) {
		t.Fatalf("Blocked = %v, want %v", w.Blocked, want)
	}
}

func TestProveElasticCycleStallsNotWedges(t *testing.T) {
	b := newNB(4)
	src := b.node("src", SourceKind, nil)
	entry := b.node("entry", MergeKind, func(n *Node) { n.LoopEntry = true; n.Ctl = 0 })
	spill := b.node("spill", Transform, func(n *Node) { n.Elastic = true })
	ext := b.edge("ext", src, entry, false)
	b.edge("body", entry, spill, false)
	rec := b.edge("recirc", spill, entry, false)
	b.net.Nodes[entry].Pri, b.net.Nodes[entry].Sec = rec, ext

	rep := Prove(&b.net)
	w := findRule(t, rep.Findings, RuleNoExit).Witness
	if w.Mode != StallWitness || w.Fill != nil {
		t.Fatalf("elastic cycle witness = %+v, want stall with no fill", w)
	}
}

func TestProveEntryMiswired(t *testing.T) {
	b := newNB(4)
	src := b.node("src", SourceKind, nil)
	entry := b.node("entry", MergeKind, func(n *Node) { n.LoopEntry = true; n.Ctl = 0 })
	body := b.node("body", FilterKind, func(n *Node) { n.Ctl = 0; n.CanKill = true })
	sink := b.node("out", SinkKind, nil)
	ext := b.edge("ext", src, entry, false)
	b.edge("loop", entry, body, false)
	b.edge("drained", body, sink, true)
	rec := b.edge("recirc", body, entry, false)
	// Swapped: external feed on the priority side, recirculation counted.
	b.net.Nodes[entry].Pri, b.net.Nodes[entry].Sec = ext, rec

	rep := Prove(&b.net)
	if n := countRule(rep.Findings, RuleEntryMiswired); n != 2 {
		t.Fatalf("want 2 miswired findings (pri external, sec internal), got %d: %s", n, rep)
	}
	f := findRule(t, rep.Findings, RuleEntryMiswired)
	if f.Witness != nil && f.Witness.Mode != StallWitness {
		t.Fatalf("miswired witness mode = %s, want stall", f.Witness.Mode)
	}
}

func TestProveUncountedEntry(t *testing.T) {
	net := cleanLoop()
	b := &nb{net: *net}
	side := b.node("side", SourceKind, func(n *Node) { n.Supply = 8 })
	b.edge("sneak", side, 2 /* dec */, false)

	rep := Prove(&b.net)
	w := findRule(t, rep.Findings, RuleUncountedEntry).Witness
	if w == nil || w.Mode != UnderflowWitness {
		t.Fatalf("uncounted entry witness = %+v, want underflow", w)
	}
	if !strings.Contains(w.Explain, "underflow") {
		t.Fatalf("witness should predict the underflow panic: %q", w.Explain)
	}
}

func TestProveUncountedExitNilCtl(t *testing.T) {
	net := cleanLoop()
	// Strip the filter's loop control: its declared exit is no longer
	// counted out.
	net.Nodes[3].Ctl = -1
	net.Nodes[3].CanKill = false

	rep := Prove(net)
	w := findRule(t, rep.Findings, RuleUncountedExit).Witness
	if w == nil || w.Mode != StallWitness {
		t.Fatalf("uncounted exit witness = %+v, want stall", w)
	}
	if want := []string{"entry"}; !reflect.DeepEqual(w.Blocked, want) {
		t.Fatalf("Blocked = %v, want %v", w.Blocked, want)
	}
}

func TestProveCtlMismatch(t *testing.T) {
	net := cleanLoop()
	net.Nodes[3].Ctl = 7 // counts into a control the entry does not use

	rep := Prove(net)
	findRule(t, rep.Findings, RuleCtlMismatch)
	if countRule(rep.Findings, RuleUncountedExit) != 0 {
		t.Fatalf("ctl mismatch should subsume the per-port findings: %s", rep)
	}
}

func TestProveExitBlockedByDownstreamCycle(t *testing.T) {
	b := newNB(4)
	src := b.node("src", SourceKind, nil)
	aEntry := b.node("a.entry", MergeKind, func(n *Node) { n.LoopEntry = true; n.Ctl = 0 })
	aF := b.node("a.exit?", FilterKind, func(n *Node) { n.Ctl = 0; n.CanKill = true })
	bEntry := b.node("b.entry", MergeKind, func(n *Node) { n.LoopEntry = true; n.Ctl = 1 })
	bSpin := b.node("b.spin", Transform, nil)

	ext := b.edge("ext", src, aEntry, false)
	b.edge("a.body", aEntry, aF, false)
	aRec := b.edge("a.recirc", aF, aEntry, false)
	handoff := b.edge("handoff", aF, bEntry, true)
	b.edge("b.body", bEntry, bSpin, false)
	bRec := b.edge("b.recirc", bSpin, bEntry, false)
	b.net.Nodes[aEntry].Pri, b.net.Nodes[aEntry].Sec = aRec, ext
	b.net.Nodes[bEntry].Pri, b.net.Nodes[bEntry].Sec = bRec, handoff

	rep := Prove(&b.net)
	findRule(t, rep.Findings, RuleNoExit) // loop B
	f := findRule(t, rep.Findings, RuleExitBlocked)
	if !strings.Contains(f.Msg, "handoff") {
		t.Fatalf("exit-blocked finding should name the blocked exit: %q", f.Msg)
	}
	if f.Witness == nil || f.Witness.Mode != WedgeWitness {
		t.Fatalf("exit-blocked witness = %+v, want wedge", f.Witness)
	}
}

func TestProveLossyWaiver(t *testing.T) {
	net := cleanLoop()
	net.Nodes[2].Lossy = true // the in-loop transform drops threads

	rep := Prove(net)
	findRule(t, rep.Findings, RuleUncountedExit)

	net.Nodes[2].LossyWaiver = "drops are re-driven by the retry filter"
	rep = Prove(net)
	if !rep.DeadlockFree() {
		t.Fatalf("waived lossy node should prove clean: %s", rep)
	}
	findRule(t, rep.Waived, RuleLossyWaived)
}

func TestProveOpaqueCycleWarns(t *testing.T) {
	net := cleanLoop()
	net.Nodes[2].Kind = Opaque

	rep := Prove(net)
	if !rep.DeadlockFree() {
		t.Fatalf("opaque cycle should abstain (warn), not fail: %s", rep)
	}
	findRule(t, rep.Warnings, RuleOpaqueCycle)
	for _, p := range rep.Proofs {
		if strings.Contains(p.Property, "loop-drain") {
			t.Fatalf("no drain proof may cover an opaque cycle: %s", rep)
		}
	}
}

func TestProveIgnoresMalformedEdges(t *testing.T) {
	net := cleanLoop()
	net.Edges = append(net.Edges, Edge{Name: "wild", From: -3, To: 99, Cap: 8, Lat: 2})
	rep := Prove(net) // must not panic
	if !rep.DeadlockFree() {
		t.Fatalf("malformed edge changed the verdict: %s", rep)
	}
}

func TestProveCtlMismatchSuppressesNoExit(t *testing.T) {
	net := cleanLoop()
	net.Nodes[3].Ctl = 7
	rep := Prove(net)
	if countRule(rep.Findings, RuleNoExit) != 0 {
		t.Fatalf("mismatched exits still relieve pressure; no-exit must not fire: %s", rep)
	}
}
