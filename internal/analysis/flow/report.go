package flow

import (
	"fmt"
	"strings"
)

// The prover's finding rules. Each names one way a cyclic pipeline can
// defeat the credit protocol; the matching witness mode says how the
// simulator fails when the rule fires.
const (
	// RuleNoEntry: a cycle with no loop-entry merge — end-of-stream can
	// never be proven safe to enter, so the cycle stalls after its work.
	RuleNoEntry = "flow-no-entry"
	// RuleEntryMiswired: a loop entry whose priority input is fed from
	// outside its cycle or whose external input is fed from inside — the
	// drain count tracks the wrong stream and never returns to zero.
	RuleEntryMiswired = "flow-entry-miswired"
	// RuleNoExit: a cycle with no exit port and no counted kill — tokens
	// that enter can never leave, so enough of them wedge every producer.
	RuleNoExit = "flow-no-exit"
	// RuleExitBlocked: every exit of a cycle leads into the cycle itself
	// or into a downstream component that was not proven drainable — the
	// exits exist syntactically but cannot relieve pressure.
	RuleExitBlocked = "flow-exit-blocked"
	// RuleUncountedEntry: a token path enters a cycle without passing the
	// loop entry's counted external input — exits then outnumber entries
	// and the in-flight count underflows (a hard engine panic).
	RuleUncountedEntry = "flow-uncounted-entry"
	// RuleUncountedExit: tokens leave a cycle without being counted out
	// (an exit port or kill with no loop control, a fork whose thread
	// delta is unreported, an undeclared lossy response hook) — the
	// in-flight count never reaches zero and end-of-stream never enters.
	RuleUncountedExit = "flow-uncounted-exit"
	// RuleCtlMismatch: a node on a cycle counts into a different loop
	// control than the cycle's entry — entries and exits are tallied on
	// separate counters and neither drains.
	RuleCtlMismatch = "flow-ctl-mismatch"
	// RuleOpaqueCycle (warning): an unclassified component sits on a
	// cycle; the prover's bounds and drain facts do not cover it.
	RuleOpaqueCycle = "flow-opaque-cycle"
	// RuleLossyWaived (waived): a declared-lossy node on a cycle carrying
	// an audited waiver; surfaced for review, not a failure.
	RuleLossyWaived = "flow-lossy-waived"
)

// WitnessMode says how the simulator fails when the witnessed defect is
// driven with enough tokens.
type WitnessMode string

const (
	// WedgeWitness: the cycle's population saturates and can never leave —
	// the run cannot complete. The engine reports it as sim.DeadlockError
	// when motion stops entirely, or as sim.BudgetError when the full ring
	// keeps rotating (credits recycle at end-of-cycle commit, so a
	// saturated loop can livelock at perpetual motion); either way the
	// witness's nodes are in the stuck set.
	WedgeWitness WitnessMode = "wedge"
	// StallWitness: the data drains but end-of-stream never propagates —
	// the run quiesces into sim.DeadlockError with the loop entry stuck.
	StallWitness WitnessMode = "stall"
	// UnderflowWitness: an exit is counted that was never counted in; the
	// engine panics with the loop-control underflow diagnostic.
	UnderflowWitness WitnessMode = "underflow"
)

// Witness is a concrete failure prediction: inject Inject records at the
// cycle's external input and the engine fails in Mode, with Fill's links
// full and Blocked's components stuck (for deadlock modes).
type Witness struct {
	// Rule is the finding that produced this witness.
	Rule string `json:"rule"`
	// Mode is the predicted failure shape.
	Mode WitnessMode `json:"mode"`
	// Cycle lists the member node names, sorted.
	Cycle []string `json:"cycle"`
	// Inject is a sufficient external record count to reach the failure:
	// for a wedge, the net's total token capacity plus slack (the minimal
	// blocking placement is Fill; any input at least this large realizes
	// it). Stalls and underflows need only a handful of records.
	Inject int `json:"inject"`
	// Fill names the links the placement fills (wedge mode).
	Fill []string `json:"fill,omitempty"`
	// Blocked names the components the failure leaves stuck — a subset of
	// the sim.DeadlockError.Stuck the replay must report.
	Blocked []string `json:"blocked,omitempty"`
	// Explain is the human-readable account of the placement.
	Explain string `json:"explain"`
}

// Finding is one failed proof obligation.
type Finding struct {
	// Rule is one of the Rule* constants.
	Rule string `json:"rule"`
	// Msg is the diagnostic text.
	Msg string `json:"msg"`
	// Witness is the replayable counterexample, when the failure is a
	// concrete runtime behaviour rather than a modelling gap.
	Witness *Witness `json:"witness,omitempty"`
}

// Proof is one established fact.
type Proof struct {
	Subject  string `json:"subject"`
	Property string `json:"property"`
}

// LinkBound is the occupancy interval of one link: tokens in flight on it
// stay within [0, MaxRecords].
type LinkBound struct {
	Link string `json:"link"`
	// MaxRecords = min(capacity × lanes, upstream supply).
	MaxRecords int `json:"max_records"`
}

// CycleBound is the occupancy bound of one nontrivial SCC.
type CycleBound struct {
	// Nodes lists the member names, sorted.
	Nodes []string `json:"nodes"`
	// MaxRecords bounds tokens resident in the cycle: internal link
	// capacity plus member node residency.
	MaxRecords int `json:"max_records"`
	// Slack is Σcap − Σlat over internal links (flits): the credit
	// headroom beyond line-rate occupancy.
	Slack int `json:"slack"`
	// Amplified marks a cycle containing a fork: MaxRecords then bounds
	// buffered residency, not thread population, because expansion fan
	// is dynamic.
	Amplified bool `json:"amplified,omitempty"`
}

// Occupancy is the bounded-occupancy report: how much memory the graph
// can ever hold in flight, per link, per cycle, and inside nodes
// (pipeline registers, accumulators, scratchpad reorder buffers).
type Occupancy struct {
	Links  []LinkBound  `json:"links"`
	Cycles []CycleBound `json:"cycles,omitempty"`
	// Resident is Σ node-internal bounds across the graph.
	Resident int `json:"resident"`
	// Total is links + resident: the graph-wide in-flight token bound.
	Total int `json:"total"`
}

// Report is the outcome of Prove.
type Report struct {
	// Proofs are the established facts, deterministically ordered.
	Proofs []Proof `json:"proofs"`
	// Findings are failed obligations — each a provable runtime failure,
	// most carrying a replayable witness.
	Findings []Finding `json:"findings,omitempty"`
	// Warnings are modelling gaps (opaque nodes on cycles): the prover
	// abstains rather than claiming either way.
	Warnings []Finding `json:"warnings,omitempty"`
	// Waived are accepted-by-declaration findings (audited lossy nodes).
	Waived []Finding `json:"waived,omitempty"`
	// Occupancy is always computed, even for failing nets.
	Occupancy Occupancy `json:"occupancy"`
}

// DeadlockFree reports whether every obligation was proven.
func (r *Report) DeadlockFree() bool { return len(r.Findings) == 0 }

// Witnesses collects the findings' witnesses in report order.
func (r *Report) Witnesses() []*Witness {
	var out []*Witness
	for i := range r.Findings {
		if w := r.Findings[i].Witness; w != nil {
			out = append(out, w)
		}
	}
	return out
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flow: %d proofs, %d findings, %d warnings, %d waived, occupancy <= %d records",
		len(r.Proofs), len(r.Findings), len(r.Warnings), len(r.Waived), r.Occupancy.Total)
	for _, p := range r.Proofs {
		fmt.Fprintf(&b, "\n  proof %s: %s", p.Subject, p.Property)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "\n  finding %s: %s", f.Rule, f.Msg)
	}
	for _, f := range r.Warnings {
		fmt.Fprintf(&b, "\n  warn %s: %s", f.Rule, f.Msg)
	}
	for _, f := range r.Waived {
		fmt.Fprintf(&b, "\n  waived %s: %s", f.Rule, f.Msg)
	}
	return b.String()
}
