package flow

import (
	"fmt"
	"sort"
	"strings"

	"aurochs/internal/sim"
)

// Prove interprets the net: it condenses the node graph into strongly
// connected components, propagates token-supply intervals across the
// condensation in topological order, then walks the components in reverse
// topological order (consumers first) proving, for every cycle, that
// tokens can leave it toward drainable consumers and that the loop
// control's in-flight count is complete. Failures carry witnesses the
// fabric replay harness can drive against the real simulator.
//
// Prove never panics on malformed nets (fuzzed topologies): edges with
// out-of-range endpoints are ignored, and every slice access is bounded.
func Prove(net *Net) *Report {
	p := newProver(net)
	p.propagateSupply()
	p.proveCycles()
	p.occupancy()
	p.finish()
	return p.report
}

type prover struct {
	net    *Net
	lanes  int
	report *Report

	edges []int // indices of structurally valid edges
	adj   [][]int32
	of    []int32 // SCC index per node (Tarjan emission order)
	count int

	members    [][]int // per SCC, ascending node ids
	internal   [][]int // per SCC, internal edge ids
	entering   [][]int // per SCC, edge ids arriving from another SCC
	nontrivial []bool
	drainable  []bool

	edgeSupply []int // records reachable per edge; -1 unbounded
	edgeBound  []int // min(cap×lanes, supply)
	totalBound int   // Σ edge cap×lanes + Σ node resident (witness sizing)
}

func newProver(net *Net) *prover {
	p := &prover{net: net, lanes: net.Lanes, report: &Report{}}
	if p.lanes <= 0 {
		p.lanes = 1
	}
	n := len(net.Nodes)
	p.adj = make([][]int32, n)
	for ei := range net.Edges {
		e := &net.Edges[ei]
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			continue
		}
		p.edges = append(p.edges, ei)
		p.adj[e.From] = append(p.adj[e.From], int32(e.To))
	}
	p.of, p.count = sim.StronglyConnected(p.adj)
	p.members = make([][]int, p.count)
	p.internal = make([][]int, p.count)
	p.entering = make([][]int, p.count)
	p.nontrivial = make([]bool, p.count)
	p.drainable = make([]bool, p.count)
	for i := range net.Nodes {
		k := int(p.of[i])
		p.members[k] = append(p.members[k], i)
	}
	for _, ei := range p.edges {
		e := &net.Edges[ei]
		kf, kt := int(p.of[e.From]), int(p.of[e.To])
		if kf == kt {
			p.internal[kf] = append(p.internal[kf], ei)
			p.nontrivial[kf] = true // self-loop or larger cycle
		} else {
			p.entering[kt] = append(p.entering[kt], ei)
		}
	}
	p.totalBound = 0
	for _, ei := range p.edges {
		p.totalBound += p.net.Edges[ei].Cap * p.lanes
	}
	for i := range net.Nodes {
		p.totalBound += net.Nodes[i].Resident
	}
	return p
}

// addSupply saturates on the unbounded sentinel (-1).
func addSupply(a, b int) int {
	if a < 0 || b < 0 {
		return -1
	}
	return a + b
}

// propagateSupply walks the condensation in topological order (Tarjan
// emission is reverse topological, so descending component index visits
// producers before consumers) and assigns every edge the token-count
// interval [0, supply]: the most records that can ever traverse it.
func (p *prover) propagateSupply() {
	p.edgeSupply = make([]int, len(p.net.Edges))
	for i := range p.edgeSupply {
		p.edgeSupply[i] = -1
	}
	for k := p.count - 1; k >= 0; k-- {
		in := 0
		for _, ei := range p.entering[k] {
			in = addSupply(in, p.edgeSupply[ei])
		}
		amp := false
		for _, i := range p.members[k] {
			nd := &p.net.Nodes[i]
			if nd.Kind == SourceKind {
				in = addSupply(in, nd.Supply)
			}
			if nd.Amplify || nd.Kind == Opaque {
				amp = true
			}
		}
		out := in
		if amp {
			out = -1
		}
		if !p.nontrivial[k] {
			// A single node off any cycle: a non-amplifying node forwards at
			// most what reaches it.
			nd := &p.net.Nodes[p.members[k][0]]
			if nd.Kind == SourceKind {
				out = nd.Supply
			}
		}
		for _, ei := range p.edges {
			if int(p.of[p.net.Edges[ei].From]) == k {
				p.edgeSupply[ei] = out
			}
		}
	}
	p.edgeBound = make([]int, len(p.net.Edges))
	for _, ei := range p.edges {
		b := p.net.Edges[ei].Cap * p.lanes
		if s := p.edgeSupply[ei]; s >= 0 && s < b {
			b = s
		}
		p.edgeBound[ei] = b
	}
}

// sccNames returns the sorted member names of component k.
func (p *prover) sccNames(k int) []string {
	names := make([]string, 0, len(p.members[k]))
	for _, i := range p.members[k] {
		names = append(names, p.net.Nodes[i].Name)
	}
	sort.Strings(names)
	return names
}

func subject(names []string) string {
	return "cycle [" + strings.Join(names, ", ") + "]"
}

// proveCycles walks components in Tarjan emission order — consumers
// before producers — so each cycle's exits are judged against already
// settled downstream drainability.
func (p *prover) proveCycles() {
	sawCycle := false
	for k := 0; k < p.count; k++ {
		if !p.nontrivial[k] {
			p.drainable[k] = p.trivialDrainable(p.members[k][0])
			continue
		}
		sawCycle = true
		p.proveCycle(k)
	}
	if !sawCycle {
		p.report.Proofs = append(p.report.Proofs, Proof{
			Subject:  "token-flow",
			Property: "acyclic: no credit cycle exists, so every token path is finite and draining the sources drains the graph",
		})
	}
}

// trivialDrainable decides whether a node off every cycle passes tokens
// onward forever: sinks and output-less absorbers do; everything else
// needs all its successors drainable (a filter may route its whole stream
// to any one output). Opaque nodes are optimistically drainable — the
// prover abstains about them on cycles, where it matters.
func (p *prover) trivialDrainable(i int) bool {
	nd := &p.net.Nodes[i]
	if nd.Kind == SinkKind || nd.Kind == Opaque {
		return true
	}
	for _, ei := range p.edges {
		e := &p.net.Edges[ei]
		if e.From == i && !p.drainable[p.of[e.To]] {
			return false
		}
	}
	return true
}

// ctlIn reports membership in the (tiny) entry-control set.
func ctlIn(set []int, ctl int) bool {
	for _, c := range set {
		if c == ctl {
			return true
		}
	}
	return false
}

// proveCycle runs every per-cycle obligation for nontrivial component k.
func (p *prover) proveCycle(k int) {
	names := p.sccNames(k)
	subj := subject(names)
	nFindings := len(p.report.Findings)

	var entries []int
	var entryCtls []int
	elastic, opaque := false, false
	for _, i := range p.members[k] {
		nd := &p.net.Nodes[i]
		if nd.Kind == MergeKind && nd.LoopEntry {
			entries = append(entries, i)
			if nd.Ctl >= 0 && !ctlIn(entryCtls, nd.Ctl) {
				entryCtls = append(entryCtls, nd.Ctl)
			}
		}
		if nd.Elastic {
			elastic = true
		}
		if nd.Kind == Opaque {
			opaque = true
		}
	}
	if opaque {
		p.report.Warnings = append(p.report.Warnings, Finding{
			Rule: RuleOpaqueCycle,
			Msg:  fmt.Sprintf("%s contains a component the net builder could not classify; drain and occupancy facts do not cover it", subj),
		})
	}

	if len(entries) == 0 {
		p.report.Findings = append(p.report.Findings, Finding{
			Rule: RuleNoEntry,
			Msg:  fmt.Sprintf("%s has no loop-entry merge (NewLoopMerge): nothing proves the cycle empty, so end-of-stream can never safely enter it", subj),
		})
		return
	}

	// Entry orientation: the priority input must close the cycle, the
	// external input must come from outside — the swapped-argument bug
	// counts entries on the wrong stream.
	for _, i := range entries {
		nd := &p.net.Nodes[i]
		if e := p.edgeAt(nd.Pri); e != nil && int(p.of[e.From]) != k {
			p.report.Findings = append(p.report.Findings, Finding{
				Rule: RuleEntryMiswired,
				Msg: fmt.Sprintf("loop entry %q: priority input %q is fed from outside its cycle — entries are counted on the recirculating stream instead, so the in-flight count grows every lap and never returns to zero",
					nd.Name, e.Name),
				Witness: p.stallWitness(RuleEntryMiswired, names, []string{nd.Name},
					fmt.Sprintf("feed the loop records that recirculate at least once: each lap counts an entry but only the final exit counts out, so Inflight ends positive and %q never emits end-of-stream", nd.Name)),
			})
		}
		if e := p.edgeAt(nd.Sec); e != nil && int(p.of[e.From]) == k {
			p.report.Findings = append(p.report.Findings, Finding{
				Rule: RuleEntryMiswired,
				Msg: fmt.Sprintf("loop entry %q: external input %q is fed from its own cycle — the recirculating stream is being counted as external entries",
					nd.Name, e.Name),
			})
		}
	}

	// Every token path into the cycle must pass a counted entry: an edge
	// arriving anywhere else admits tokens the drain count never saw, so
	// their exits drive the count below zero.
	for _, ei := range p.entering[k] {
		e := &p.net.Edges[ei]
		to := &p.net.Nodes[e.To]
		if to.LoopEntry && (e.To < len(p.net.Nodes)) && (p.portIs(to.Sec, ei) || p.portIs(to.Pri, ei)) {
			continue // counted entry (Sec) or already reported as miswired (Pri)
		}
		p.report.Findings = append(p.report.Findings, Finding{
			Rule: RuleUncountedEntry,
			Msg: fmt.Sprintf("%s admits tokens over %q into %q without passing a loop entry: those tokens were never counted in, so their exits underflow the in-flight count",
				subj, e.Name, to.Name),
			Witness: &Witness{
				Rule:   RuleUncountedEntry,
				Mode:   UnderflowWitness,
				Cycle:  names,
				Inject: p.lanes,
				Explain: fmt.Sprintf("inject records over %q: they circulate and eventually take a counted exit, decrementing an in-flight count that never saw them enter — the engine panics with the loop inflight underflow diagnostic",
					e.Name),
			},
		})
	}

	p.proveExits(k, names, subj, entries, entryCtls, elastic)

	if len(p.report.Findings) > nFindings || opaque {
		return // drainable[k] stays false; upstream cycles judge against it
	}
	p.drainable[k] = true
	entryNames := make([]string, len(entries))
	for i, e := range entries {
		entryNames[i] = p.net.Nodes[e].Name
	}
	sort.Strings(entryNames)
	p.report.Proofs = append(p.report.Proofs, Proof{
		Subject: subj,
		Property: fmt.Sprintf("deadlock-free: every counted exit leads to a drainable consumer and entry admission at [%s] is gated on the cycle's own progress, so some link always has a free slot",
			strings.Join(entryNames, ", ")),
	})
	p.report.Proofs = append(p.report.Proofs, Proof{
		Subject: subj,
		Property: fmt.Sprintf("loop-drain: entries, exits, kills, and spawns all count into the loop control of [%s], so once sources exhaust the in-flight count reaches zero and end-of-stream propagates",
			strings.Join(entryNames, ", ")),
	})
}

// proveExits scans component k's ports for ways out of the cycle and
// checks each against the drain accounting.
func (p *prover) proveExits(k int, names []string, subj string, entries, entryCtls []int, elastic bool) {
	sawExit, viable := false, false
	var blockedExits []string // counted exits leading to non-drainable consumers
	inCycleExit := false      // an Exit-flagged port whose edge stays inside the cycle
	for _, i := range p.members[k] {
		nd := &p.net.Nodes[i]
		ctlOK := nd.Ctl >= 0 && ctlIn(entryCtls, nd.Ctl)
		mismatched := nd.Ctl >= 0 && !ctlOK && !nd.LoopEntry
		if mismatched {
			p.report.Findings = append(p.report.Findings, Finding{
				Rule: RuleCtlMismatch,
				Msg: fmt.Sprintf("%s: node %q counts into a different loop control than the cycle's entry — entries and exits are tallied on separate counters and neither count ever drains",
					subj, nd.Name),
				Witness: p.stallWitness(RuleCtlMismatch, names, p.entryNamesOf(entries),
					fmt.Sprintf("records exiting through %q decrement the wrong counter; the entry's in-flight count never reaches zero and end-of-stream never enters the loop", nd.Name)),
			})
			// Its exits still relieve pressure (records do leave, they are
			// just counted on the wrong counter): register them for the
			// no-exit check but suppress the per-port findings, which would
			// restate the same defect.
			for _, port := range nd.Out {
				if port.Edge < 0 {
					sawExit = true
					continue
				}
				if e := p.edgeAt(port.Edge); e != nil && int(p.of[e.To]) != k {
					sawExit = true
				}
			}
			continue
		}
		if nd.Lossy {
			if nd.LossyWaiver != "" {
				p.report.Waived = append(p.report.Waived, Finding{
					Rule: RuleLossyWaived,
					Msg: fmt.Sprintf("%s: node %q may drop threads in its response hook, waived: %s",
						subj, nd.Name, nd.LossyWaiver),
				})
			} else {
				p.report.Findings = append(p.report.Findings, Finding{
					Rule: RuleUncountedExit,
					Msg: fmt.Sprintf("%s: node %q declares a lossy response hook on a cycle with no waiver — dropped threads are never counted out of the loop control",
						subj, nd.Name),
					Witness: p.stallWitness(RuleUncountedExit, names, p.entryNamesOf(entries),
						fmt.Sprintf("any thread %q drops stays counted as in flight forever; the loop can never prove itself empty", nd.Name)),
				})
			}
		}
		if (nd.Amplify || nd.Kind == ForkKind) && nd.Ctl < 0 {
			p.report.Findings = append(p.report.Findings, Finding{
				Rule: RuleUncountedExit,
				Msg: fmt.Sprintf("%s: fork %q changes the thread population inside a cycle without a loop control — spawns and kills go uncounted",
					subj, nd.Name),
			})
		}
		if nd.CanKill && ctlOK {
			sawExit = true // counted dynamic kills retire tokens, but are
			// not a declared exit: they do not make the cycle viable alone.
		}
		for _, port := range nd.Out {
			if port.Edge < 0 {
				sawExit = true
				switch {
				case port.Exit && ctlOK:
					viable = true // counted kill port: tokens provably leave
				case port.Exit:
					p.report.Findings = append(p.report.Findings, Finding{
						Rule: RuleUncountedExit,
						Msg: fmt.Sprintf("%s: node %q kills threads on an exit port but carries no loop control — kills are never counted out",
							subj, nd.Name),
						Witness: p.stallWitness(RuleUncountedExit, names, p.entryNamesOf(entries),
							fmt.Sprintf("threads killed at %q stay counted as in flight; the entry's drain condition never holds", nd.Name)),
					})
				default:
					p.report.Findings = append(p.report.Findings, Finding{
						Rule: RuleUncountedExit,
						Msg: fmt.Sprintf("%s: node %q silently drops threads (nil output, no exit declaration) inside a cycle — the drain count never learns they left",
							subj, nd.Name),
					})
				}
				continue
			}
			e := p.edgeAt(port.Edge)
			if e == nil {
				continue
			}
			if int(p.of[e.To]) == k {
				if port.Exit {
					sawExit = true
					inCycleExit = true
					blockedExits = append(blockedExits,
						fmt.Sprintf("%s -> %s (re-enters the cycle)", nd.Name, e.Name))
				}
				continue
			}
			sawExit = true
			switch {
			case !port.Exit:
				p.report.Findings = append(p.report.Findings, Finding{
					Rule: RuleUncountedExit,
					Msg: fmt.Sprintf("%s: tokens leave over %q from %q without an exit declaration — the loop control never counts them out",
						subj, e.Name, nd.Name),
					Witness: p.stallWitness(RuleUncountedExit, names, p.entryNamesOf(entries),
						fmt.Sprintf("records escape the loop over %q but stay counted as in flight; end-of-stream never enters", e.Name)),
				})
			case !ctlOK:
				p.report.Findings = append(p.report.Findings, Finding{
					Rule: RuleUncountedExit,
					Msg: fmt.Sprintf("%s: exit port %q -> %q carries no loop control — exits are declared but never counted",
						subj, nd.Name, e.Name),
					Witness: p.stallWitness(RuleUncountedExit, names, p.entryNamesOf(entries),
						fmt.Sprintf("records exit over %q uncounted; the entry's in-flight count stays at its admission total forever", e.Name)),
				})
			case p.drainable[p.of[e.To]]:
				viable = true
			default:
				blockedExits = append(blockedExits,
					fmt.Sprintf("%s -> %s (consumer not proven drainable)", nd.Name, e.Name))
			}
		}
	}
	switch {
	case !sawExit:
		p.report.Findings = append(p.report.Findings, Finding{
			Rule: RuleNoExit,
			Msg: fmt.Sprintf("%s has no exit port and no counted kill: every token that enters circulates forever, so enough admitted tokens fill every link and block every producer",
				subj),
			Witness: p.wedgeWitness(RuleNoExit, k, names, elastic,
				"admit more records than the cycle's total buffering: the entry keeps admitting while its accumulator has room, the resident population grows monotonically, and once every link and pipeline register is full no member can push or pop"),
		})
	case !viable && len(blockedExits) > 0:
		sort.Strings(blockedExits)
		mode := ""
		if inCycleExit {
			mode = " counted exits re-enter the cycle, so the same token is counted out twice and the in-flight count underflows;"
		}
		w := p.wedgeWitness(RuleExitBlocked, k, names, elastic,
			"every declared exit feeds a consumer that itself cannot drain; pressure propagates back into the cycle until every link is full")
		if inCycleExit {
			w.Mode = UnderflowWitness
			w.Fill = nil
			w.Inject = p.lanes
			w.Explain = "records take the counted exit, re-enter the cycle uncounted, and are counted out again on their next pass — the engine panics with the loop inflight underflow diagnostic"
		}
		p.report.Findings = append(p.report.Findings, Finding{
			Rule: RuleExitBlocked,
			Msg: fmt.Sprintf("%s: no exit relieves pressure —%s blocked exits: [%s]",
				subj, mode, strings.Join(blockedExits, "; ")),
			Witness: w,
		})
	}
}

// entryNamesOf returns the sorted names of the entry merges.
func (p *prover) entryNamesOf(entries []int) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = p.net.Nodes[e].Name
	}
	sort.Strings(out)
	return out
}

// edgeAt bounds-checks an edge id.
func (p *prover) edgeAt(ei int) *Edge {
	if ei < 0 || ei >= len(p.net.Edges) {
		return nil
	}
	return &p.net.Edges[ei]
}

// portIs reports whether the node port id refers to edge ei.
func (p *prover) portIs(port, ei int) bool { return port >= 0 && port == ei }

// wedgeWitness predicts a total wedge of component k. Inject is sized
// from the whole net's token bound — an overestimate is always safe (the
// excess queues upstream of the cycle), an underestimate is not.
func (p *prover) wedgeWitness(rule string, k int, names []string, elastic bool, explain string) *Witness {
	w := &Witness{
		Rule:    rule,
		Mode:    WedgeWitness,
		Cycle:   names,
		Inject:  p.totalBound + 2*p.lanes,
		Blocked: names,
		Explain: explain,
	}
	for _, ei := range p.internal[k] {
		w.Fill = append(w.Fill, p.net.Edges[ei].Name)
	}
	sort.Strings(w.Fill)
	if elastic {
		// A spill queue on the cycle absorbs unbounded pressure: the cycle
		// cannot wedge, but it still never drains at end-of-stream.
		w.Mode = StallWitness
		w.Fill = nil
	}
	return w
}

// stallWitness predicts a post-work stall: data drains, end-of-stream
// does not, and the run quiesces into a deadlock with the entry stuck.
func (p *prover) stallWitness(rule string, names, blocked []string, explain string) *Witness {
	return &Witness{
		Rule:    rule,
		Mode:    StallWitness,
		Cycle:   names,
		Inject:  p.lanes,
		Blocked: blocked,
		Explain: explain,
	}
}

// occupancy assembles the bounded-occupancy report from the propagated
// intervals.
func (p *prover) occupancy() {
	occ := &p.report.Occupancy
	linkSum := 0
	for _, ei := range p.edges {
		occ.Links = append(occ.Links, LinkBound{
			Link:       p.net.Edges[ei].Name,
			MaxRecords: p.edgeBound[ei],
		})
		linkSum += p.edgeBound[ei]
	}
	sort.Slice(occ.Links, func(i, j int) bool { return occ.Links[i].Link < occ.Links[j].Link })
	for i := range p.net.Nodes {
		occ.Resident += p.net.Nodes[i].Resident
	}
	occ.Total = linkSum + occ.Resident
	for k := 0; k < p.count; k++ {
		if !p.nontrivial[k] {
			continue
		}
		cb := CycleBound{Nodes: p.sccNames(k)}
		for _, ei := range p.internal[k] {
			cb.MaxRecords += p.edgeBound[ei]
			cb.Slack += p.net.Edges[ei].Cap - p.net.Edges[ei].Lat
		}
		for _, i := range p.members[k] {
			cb.MaxRecords += p.net.Nodes[i].Resident
			if p.net.Nodes[i].Amplify {
				cb.Amplified = true
			}
		}
		occ.Cycles = append(occ.Cycles, cb)
	}
	sort.Slice(occ.Cycles, func(i, j int) bool {
		return strings.Join(occ.Cycles[i].Nodes, ",") < strings.Join(occ.Cycles[j].Nodes, ",")
	})
	p.report.Proofs = append(p.report.Proofs, Proof{
		Subject: "occupancy",
		Property: fmt.Sprintf("bounded: at most %d records in flight graph-wide (%d buffered in links, %d resident in nodes)",
			occ.Total, linkSum, occ.Resident),
	})
}

// finish orders everything deterministically.
func (p *prover) finish() {
	r := p.report
	sort.Slice(r.Proofs, func(i, j int) bool {
		if r.Proofs[i].Subject != r.Proofs[j].Subject {
			return r.Proofs[i].Subject < r.Proofs[j].Subject
		}
		return r.Proofs[i].Property < r.Proofs[j].Property
	})
	byRule := func(fs []Finding) func(i, j int) bool {
		return func(i, j int) bool {
			if fs[i].Rule != fs[j].Rule {
				return fs[i].Rule < fs[j].Rule
			}
			return fs[i].Msg < fs[j].Msg
		}
	}
	sort.SliceStable(r.Findings, byRule(r.Findings))
	sort.SliceStable(r.Warnings, byRule(r.Warnings))
	sort.SliceStable(r.Waived, byRule(r.Waived))
}
