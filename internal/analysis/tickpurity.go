package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TickPureWaiver suppresses the tickpurity rule on the method it annotates,
// asserting the mutation is invisible to simulation results (the canonical
// case: hbmComponent.Idle refreshing the HBM's clock on a skipped cycle).
const TickPureWaiver = "lint:tickpure-ok"

// pureMethodNames are the observation methods the simulator kernel may call
// without owning the component's worker: Idle gates the idle-skip, CanPush
// gates producers, Done/Drained drive termination, Empty gates consumers,
// and Stats must be a plain accessor. PR 2's credit commit and idle-skip
// assume every one of these is observably pure — a field write inside any
// of them is a cross-worker race and a determinism hole.
var pureMethodNames = map[string]bool{
	"Idle": true, "CanPush": true, "Done": true,
	"Drained": true, "Empty": true, "Stats": true,
}

// knownPureCalls are cross-package callees the purity checker accepts.
// Everything else outside the analyzed package is treated as potentially
// impure — the checker cannot see its body — and must be waived explicitly.
// Keyed by "pkgPathSuffix.Type.Method" (or "pkgPathSuffix.Func").
var knownPureCalls = map[string]bool{
	// sim.Link observation API (internal/sim/link.go documents purity).
	"internal/sim.Link.CanPush": true, "internal/sim.Link.Empty": true,
	"internal/sim.Link.Drained": true, "internal/sim.Link.Peek": true,
	"internal/sim.Link.Name": true, "internal/sim.Link.Capacity": true,
	"internal/sim.Link.Latency": true, "internal/sim.Link.Pushes": true,
	"internal/sim.Link.Pops": true,
	// sim.System accessors.
	"internal/sim.System.Stats": true, "internal/sim.System.Cycle": true,
	"internal/sim.System.Components": true, "internal/sim.System.Links": true,
	// dram.HBM observation API: pure functions of (state, cycle).
	"internal/dram.HBM.Drained": true, "internal/dram.HBM.Idle": true,
	"internal/dram.HBM.QuiescentAt":    true,
	"internal/dram.HBM.NextWriteEvent": true,
	// ring.Queue observers (internal/ring/ring.go documents purity).
	"internal/ring.Queue.Len": true, "internal/ring.Queue.Empty": true,
	"internal/ring.Queue.Front": true, "internal/ring.Queue.At": true,
}

// TickPurity verifies that the kernel's observation methods cannot mutate
// simulation state. The checker walks each target method body and flags:
//
//   - assignments, IncDec, sends, deletes, or range-clobbers whose target
//     is not provably local to the call;
//   - calls to functions it cannot prove pure: same-package callees are
//     checked recursively; cross-package callees must be on the known-pure
//     allowlist; calls through interfaces or function values are opaque.
//
// Methods are selected by name (Idle, CanPush, Done, Drained, Empty, Stats)
// on simulation actors — types that also have a Tick, Push, or Pop method —
// so ordinary data types with an Empty() helper are not dragged in. A
// sanctioned impurity (one whose effect is invisible to results) carries a
// "lint:tickpure-ok" waiver on the method declaration.
var TickPurity = &Analyzer{
	Name:       "tickpurity",
	Doc:        "kernel observation methods (Idle/CanPush/Done/Drained/Empty/Stats) must be observably pure",
	NeedsTypes: true,
	Run:        runTickPurity,
}

func runTickPurity(pass *Pass) error {
	pc := newPurityChecker(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !pureMethodNames[fd.Name.Name] {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil || !isSimActor(named) {
				continue
			}
			if pass.Waived(fd.Pos(), TickPureWaiver) {
				continue
			}
			if reason := pc.checkBody(fd); reason != nil {
				pass.Reportf(reason.pos,
					"%s.%s must be observably pure (the kernel may call it outside the owning worker's tick): %s; "+
						"if the effect is invisible to results, annotate the method %s",
					named.Obj().Name(), fd.Name.Name, reason.what, TickPureWaiver)
			}
		}
	}
	return nil
}

// isSimActor reports whether the type participates in the simulation
// protocol: it has a Tick (component), or Push/Pop (link-like) method.
func isSimActor(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Tick", "Push", "Pop":
			return true
		}
	}
	return false
}

// impurity is one reason a function is not pure.
type impurity struct {
	pos  token.Pos
	what string
}

// purityChecker memoizes per-function purity verdicts across the package so
// helper chains (Idle → helper → helper) are each analyzed once.
type purityChecker struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
	memo  map[types.Object]*impurity
	stack map[types.Object]bool
}

func newPurityChecker(pass *Pass) *purityChecker {
	pc := &purityChecker{
		pass:  pass,
		decls: make(map[types.Object]*ast.FuncDecl),
		memo:  make(map[types.Object]*impurity),
		stack: make(map[types.Object]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					pc.decls[obj] = fd
				}
			}
		}
	}
	return pc
}

// checkBody analyzes one function declaration directly (uncached entry for
// the target methods).
func (pc *purityChecker) checkBody(fd *ast.FuncDecl) *impurity {
	locals := localObjects(pc.pass, fd)
	return pc.walk(fd.Body, locals)
}

// checkObj analyzes a same-package callee by object, memoized. Recursion
// cycles are optimistically pure: an impurity anywhere in the cycle is
// still found on the path that contains it.
func (pc *purityChecker) checkObj(obj types.Object) *impurity {
	if v, ok := pc.memo[obj]; ok {
		return v
	}
	if pc.stack[obj] {
		return nil
	}
	fd, ok := pc.decls[obj]
	if !ok {
		return &impurity{pos: obj.Pos(), what: fmt.Sprintf("calls %s whose body is not in this package", obj.Name())}
	}
	pc.stack[obj] = true
	v := pc.checkBody(fd)
	delete(pc.stack, obj)
	pc.memo[obj] = v
	return v
}

// localObjects collects the variables declared by the function itself —
// its body's definitions and its named results. Assignments to these are
// pure; assignments to anything else (receiver fields, captured variables,
// dereferenced pointers) are observable.
func localObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, n := range f.Names {
				if obj := pass.TypesInfo.Defs[n]; obj != nil {
					locals[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					locals[obj] = true
				}
			}
		}
		return true
	})
	return locals
}

// walk scans a body for impurities. Value-typed parameters count as local
// (mutating a copy is invisible); everything pointer-shaped that was not
// created in the body is observable state.
func (pc *purityChecker) walk(body *ast.BlockStmt, locals map[types.Object]bool) *impurity {
	var found *impurity
	record := func(pos token.Pos, format string, args ...any) {
		if found == nil {
			found = &impurity{pos: pos, what: fmt.Sprintf(format, args...)}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if !pc.isLocalTarget(lhs, locals) {
					record(lhs.Pos(), "writes %s", exprString(lhs))
				}
			}
		case *ast.IncDecStmt:
			if !pc.isLocalTarget(x.X, locals) {
				record(x.Pos(), "mutates %s", exprString(x.X))
			}
		case *ast.SendStmt:
			record(x.Pos(), "sends on a channel")
		case *ast.GoStmt:
			record(x.Pos(), "starts a goroutine")
		case *ast.DeferStmt:
			record(x.Pos(), "defers a call (mutation-by-convention)")
		case *ast.CallExpr:
			if why := pc.checkCall(x); why != "" {
				record(x.Pos(), "%s", why)
			}
		}
		return true
	})
	return found
}

// isLocalTarget reports whether an assignment target is invisible outside
// the call: a local variable, the blank identifier, or a selection/index
// rooted at a local value (not reached through a pointer or captured var).
func (pc *purityChecker) isLocalTarget(e ast.Expr, locals map[types.Object]bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return true
		}
		obj := pc.pass.TypesInfo.Defs[x]
		if obj == nil {
			obj = pc.pass.TypesInfo.Uses[x]
		}
		return obj != nil && locals[obj]
	case *ast.SelectorExpr:
		// A selector store is local only when its base is a local value
		// (not pointer-typed: writing through a local pointer mutates the
		// pointee, which may be shared).
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pc.pass.TypesInfo.Uses[base]
		if obj == nil || !locals[obj] {
			return false
		}
		_, isPtr := types.Unalias(obj.Type()).(*types.Pointer)
		return !isPtr
	case *ast.IndexExpr:
		// Writing an element of a local slice/map may still be visible if
		// the backing store escaped; conservatively require the base to be
		// a local non-reference... slices and maps are references, so only
		// local arrays qualify.
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pc.pass.TypesInfo.Uses[base]
		if obj == nil || !locals[obj] {
			return false
		}
		_, isArray := types.Unalias(obj.Type()).(*types.Array)
		return isArray
	case *ast.ParenExpr:
		return pc.isLocalTarget(x.X, locals)
	default:
		return false
	}
}

// checkCall classifies one call: builtins and conversions are pure, panics
// are allowed (they abort the run rather than skew it), same-package
// callees are checked recursively, cross-package callees consult the
// allowlist. Returns "" when pure, else the reason.
func (pc *purityChecker) checkCall(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := pc.pass.TypesInfo.Uses[fun]; obj != nil {
			switch o := obj.(type) {
			case *types.Builtin:
				switch o.Name() {
				case "len", "cap", "min", "max", "panic", "append", "make", "new", "print", "println":
					// append/make/new build fresh values; whether the
					// result reaches observable state is the assignment
					// walker's concern.
					return ""
				default:
					return fmt.Sprintf("calls builtin %s", o.Name())
				}
			case *types.TypeName:
				return "" // conversion
			case *types.Func:
				return pc.checkCallee(o)
			case *types.Var:
				return fmt.Sprintf("calls through function value %s (purity unknowable)", fun.Name)
			}
		}
		// Conversion to an unresolved type or similar; treat as pure.
		return ""
	case *ast.SelectorExpr:
		if sel, ok := pc.pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return pc.checkCallee(fn)
			}
			return fmt.Sprintf("calls through field %s (purity unknowable)", fun.Sel.Name)
		}
		// Qualified identifier pkg.F or conversion pkg.T(x).
		if obj := pc.pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			switch o := obj.(type) {
			case *types.Func:
				return pc.checkCallee(o)
			case *types.TypeName:
				return ""
			}
		}
		return fmt.Sprintf("calls %s (purity unknowable)", exprString(fun))
	default:
		return fmt.Sprintf("calls %s (purity unknowable)", exprString(call.Fun))
	}
}

// checkCallee decides purity for a resolved function object.
func (pc *purityChecker) checkCallee(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg != nil && pkg == pc.pass.Pkg {
		if why := pc.checkObj(fn); why != nil {
			return fmt.Sprintf("calls %s which %s", fn.Name(), why.what)
		}
		return ""
	}
	if knownPureCalls[calleeKey(fn)] {
		return ""
	}
	return fmt.Sprintf("calls %s outside the known-pure set", calleeName(fn))
}

// calleeKey builds the allowlist key for a cross-package function:
// "pkgPathSuffix.Type.Method" using the last two path elements.
func calleeKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	path := pkg.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		if j := strings.LastIndex(path[:i], "/"); j >= 0 {
			path = path[j+1:]
		}
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			return path + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}

// calleeName renders a readable callee for messages.
func calleeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
