package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PhaseconfWaiver suppresses the phaseconf rule on the access (or the whole
// function declaration) it annotates, asserting a reviewed ownership
// argument the walk cannot see — e.g. a pointer parameter that is provably
// private to the calling worker (the per-worker outbox, a thief's own steal
// buffer). Same plumbing as lint:wakeprop-ok: the marker covers its comment
// group plus the next line, and a declaration-doc placement waives the whole
// body.
const PhaseconfWaiver = "lint:phaseconf-ok"

// Phase markers. A function's doc comment classifies it as a phase root for
// the call-graph walk; a struct field's doc or line comment classifies the
// field as confined to the serial phases.
const (
	// PhaseParallelMarker declares a function a parallel-phase root: it runs
	// on a worker goroutine during the tick phase, concurrently with other
	// workers. Tick methods on component-shaped types, Push/Pop-family ops on
	// link/queue-shaped types, and callees of go statements are parallel
	// roots implicitly; the marker exists for entry points those shape rules
	// cannot see.
	PhaseParallelMarker = "phase:parallel"
	// PhaseCommitMarker on a function declares a serial-commit root (the
	// end-of-cycle link commit, which runs after the barrier in both
	// kernels). On a struct field it declares the field commit/coordinator-
	// confined: a write from the parallel phase is a phaseconf error.
	PhaseCommitMarker = "phase:commit"
	// PhaseCoordinatorMarker declares a coordinator-only root: it runs on
	// the coordinating goroutine strictly between the cycle barriers
	// (distribute, set rotation, outbox merge), so plain access to
	// worker-shared words is barrier-ordered and legal there.
	PhaseCoordinatorMarker = "phase:coordinator"
)

// Phase bits assigned by the call-graph walk. A function can carry several
// (a helper called from both a worker and the coordinator); the parallel
// disciplines apply whenever the parallel bit is present. Functions reached
// from no root are unphased — constructors and harness code that run before
// the first cycle, outside the concurrency window.
const (
	phaseParallel = 1 << iota
	phaseCommit
	phaseCoordinator
)

// phaseWorkerMethods are the component-interface methods the parallel kernel
// invokes on worker goroutines during the tick phase (internal/sim's
// runShard): the tick itself plus the observation surface consulted while
// the shard is claimed. Each is a parallel root on any component-shaped
// type. (tickpurity separately keeps the observers write-free; listing them
// here closes the loop if an impure observer slips through on a waiver.)
var phaseWorkerMethods = map[string]bool{
	"Tick": true, "Idle": true, "Done": true, "WakeHint": true,
}

// Phaseconf is the barrier-phase confinement prover for the work-stealing
// kernel (internal/sim/steal.go, parallel.go). It classifies every function
// in the package into scheduler phases by a memoized call-graph walk from
// three kinds of root —
//
//   - parallel tick phase: callees of go statements, worker-surface methods
//     (Tick/Idle/Done/WakeHint) on component-shaped types, Push/Pop-family
//     ops on link/queue-shaped types, and "phase:parallel" markers;
//   - serial commit phase: "phase:commit" markers (the end-of-cycle link
//     commit, after the barrier);
//   - coordinator-only: "phase:coordinator" markers (between-barrier serial
//     work: shard distribution, wake-set rotation, outbox merge);
//
// — and then proves three disciplines over every function carrying the
// parallel bit:
//
//  1. Confinement (phase-confine): a parallel-phase write must target state
//     the claiming worker owns — receiver-reachable state (shard ownership
//     of the receiver is the planner's contract, enforced by sharedstate),
//     locals the function made itself, channel sends, or mutex-guarded
//     regions. Writes through pointer parameters or to package-level
//     variables have no visible owner and are cross-shard race errors.
//  2. Atomic consistency (phase-atomic): a field that is accessed through
//     sync/atomic anywhere in the package must be accessed atomically from
//     every parallel-phase function — a plain read or write of it there is
//     a data race by definition. Plain access from commit, coordinator, or
//     unphased code is legal: those run serially, ordered against the
//     workers by the cycle barrier. (sync/atomic typed wrappers need no
//     tracking — the type system already forbids mixed plain access.)
//  3. Phase purity (phase-commit): fields marked "phase:commit" (link
//     commit bookkeeping, scheduler census counters) must not be written
//     from the parallel phase, and sim.Stats.SetMeta — the string-meta
//     channel, guarded but deliberately outside the commutative-counter
//     bit-identity argument — must not be called there.
//
// Cross-package callees are not walked: the parallel phase enters another
// engine package only through the component and link interfaces, whose
// implementations are roots of this same analyzer in their defining package
// (run aurochs-vet -phase over the whole engine scope, as CI does).
// Reviewed exceptions carry a "lint:phaseconf-ok" marker at the site or on
// the enclosing declaration.
var Phaseconf = &Analyzer{
	Name:       "phaseconf",
	Doc:        "parallel tick-phase code must confine writes to worker-owned state and keep atomic/commit disciplines",
	NeedsTypes: true,
	Run:        runPhaseconf,
}

func runPhaseconf(pass *Pass) error {
	pw := newPhaseWalker(pass)
	pw.findRoots()
	pw.propagate()
	pw.collectAtomicFields()
	pw.collectCommitFields()
	for obj, ph := range pw.phases {
		if ph&phaseParallel == 0 {
			continue
		}
		if fd := pw.decls[obj]; fd != nil {
			pw.checkParallelFn(fd, pw.via[obj])
		}
	}
	for _, lit := range pw.goLits {
		pw.checkParallelBody(lit.fd, lit.lit.Body, lit.lit.Type, "go statement in "+lit.fd.Name.Name)
	}
	return nil
}

// goLit is a function literal launched by a go statement: its body is
// parallel-phase code with no named declaration to hang a phase on.
type goLit struct {
	fd  *ast.FuncDecl
	lit *ast.FuncLit
}

// phaseWalker memoizes the phase classification across one package.
type phaseWalker struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
	// phases accumulates the phase bits reaching each declaration; via names
	// the first parallel root that reached it, for diagnostics.
	phases map[types.Object]int
	via    map[types.Object]string
	goLits []goLit
	// atomicFields are field objects addressed into sync/atomic calls
	// somewhere in the package; commitFields carry a phase:commit marker.
	atomicFields map[types.Object]bool
	commitFields map[types.Object]bool
}

func newPhaseWalker(pass *Pass) *phaseWalker {
	pw := &phaseWalker{
		pass:         pass,
		decls:        make(map[types.Object]*ast.FuncDecl),
		phases:       make(map[types.Object]int),
		via:          make(map[types.Object]string),
		atomicFields: make(map[types.Object]bool),
		commitFields: make(map[types.Object]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					pw.decls[obj] = fd
				}
			}
		}
	}
	return pw
}

// docHas reports whether fd's doc comment carries marker.
func docHas(fd *ast.FuncDecl, marker string) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), marker)
}

// findRoots seeds the walk: marker-declared roots, the implicit parallel
// shapes, and go-statement callees anywhere in the package.
func (pw *phaseWalker) findRoots() {
	seed := func(obj types.Object, ph int, why string) {
		if obj == nil {
			return
		}
		if fn, ok := obj.(*types.Func); ok {
			obj = fn.Origin()
		}
		pw.phases[obj] |= ph
		if ph == phaseParallel && pw.via[obj] == "" {
			pw.via[obj] = why
		}
	}
	for obj, fd := range pw.decls {
		switch {
		case docHas(fd, PhaseParallelMarker):
			seed(obj, phaseParallel, "phase:parallel "+fd.Name.Name)
		case docHas(fd, PhaseCommitMarker):
			seed(obj, phaseCommit, "")
		case docHas(fd, PhaseCoordinatorMarker):
			seed(obj, phaseCoordinator, "")
		}
		if fd.Recv != nil {
			named := receiverNamed(pw.pass, fd)
			if named != nil {
				if phaseWorkerMethods[fd.Name.Name] && isComponentType(named) {
					seed(obj, phaseParallel, named.Obj().Name()+"."+fd.Name.Name)
				}
				if hotOpNames[fd.Name.Name] && hasPushPop(named) {
					seed(obj, phaseParallel, named.Obj().Name()+"."+fd.Name.Name)
				}
			}
		}
		// Anything this function launches as a goroutine runs concurrently
		// with whoever spawned it: a parallel root regardless of the
		// spawner's own phase.
		fdecl := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := gs.Call.Fun.(type) {
			case *ast.Ident:
				seed(pw.pass.TypesInfo.Uses[fun], phaseParallel, "go "+fun.Name)
			case *ast.SelectorExpr:
				if sel, ok := pw.pass.TypesInfo.Selections[fun]; ok {
					seed(sel.Obj(), phaseParallel, "go "+fun.Sel.Name)
				} else if obj := pw.pass.TypesInfo.Uses[fun.Sel]; obj != nil {
					seed(obj, phaseParallel, "go "+fun.Sel.Name)
				}
			case *ast.FuncLit:
				pw.goLits = append(pw.goLits, goLit{fd: fdecl, lit: fun})
			}
			return true
		})
	}
}

// propagate pushes each root's phase bits through same-package callees until
// a fixpoint: a callee executes in every phase its callers do. Interface and
// function-value calls are skipped — their targets are phase roots in their
// own right where they are defined (the component contract) or covered by
// the datapath-closure ordering argument.
func (pw *phaseWalker) propagate() {
	type work struct {
		obj types.Object
		ph  int
		via string
	}
	var queue []work
	for obj, ph := range pw.phases {
		queue = append(queue, work{obj, ph, pw.via[obj]})
	}
	done := make(map[types.Object]int) // bits already propagated *from* obj
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		todo := w.ph &^ done[w.obj]
		if todo == 0 {
			continue
		}
		done[w.obj] |= todo
		fd := pw.decls[w.obj]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pw.calleeObj(call)
			if callee == nil || pw.decls[callee] == nil {
				return true
			}
			added := todo &^ pw.phases[callee]
			pw.phases[callee] |= todo
			if todo&phaseParallel != 0 && pw.via[callee] == "" {
				pw.via[callee] = w.via
			}
			if added != 0 {
				queue = append(queue, work{callee, pw.phases[callee], pw.via[callee]})
			}
			return true
		})
	}
}

// calleeObj resolves a call to a same-package function or method object, or
// nil for builtins, conversions, interface dispatch, and function values.
func (pw *phaseWalker) calleeObj(call *ast.CallExpr) types.Object {
	info := pw.pass.TypesInfo
	norm := func(obj types.Object) types.Object {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() != pw.pass.Pkg {
			return nil
		}
		return fn.Origin()
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			return norm(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if _, isIface := types.Unalias(sel.Recv()).Underlying().(*types.Interface); isIface {
				return nil
			}
			return norm(sel.Obj())
		}
		if obj := info.Uses[fun.Sel]; obj != nil {
			return norm(obj)
		}
	}
	return nil
}

// collectAtomicFields records every struct field whose address feeds a
// sync/atomic call anywhere in the package, including through the one-hop
// local-pointer idiom (word := &sc.awake[i]; atomic.LoadUint64(word)).
func (pw *phaseWalker) collectAtomicFields() {
	for _, f := range pw.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ptrTo := pw.fieldPointerLocals(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !pw.isAtomicCall(call) {
					return true
				}
				for _, arg := range call.Args {
					if fld := pw.addressedField(arg); fld != nil {
						pw.atomicFields[fld] = true
					} else if id, ok := arg.(*ast.Ident); ok {
						if fld := ptrTo[pw.pass.TypesInfo.Uses[id]]; fld != nil {
							pw.atomicFields[fld] = true
						}
					}
				}
				return true
			})
		}
	}
}

// fieldPointerLocals maps local variables assigned &<field chain> to the
// field object they point at — the carrier of the take-address-then-atomic
// idiom and of the corresponding plain-deref blind spot the checker closes.
func (pw *phaseWalker) fieldPointerLocals(body ast.Node) map[types.Object]types.Object {
	out := make(map[types.Object]types.Object)
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pw.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pw.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		if fld := pw.addressedField(rhs); fld != nil {
			out[obj] = fld
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			record(as.Lhs[i], as.Rhs[i])
		}
		return true
	})
	return out
}

// addressedField returns the field object when e is &<chain> whose base
// selection names a struct field (possibly through index/paren layers), or
// nil.
func (pw *phaseWalker) addressedField(e ast.Expr) types.Object {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	return pw.chainField(un.X)
}

// chainField walks an expression chain inward to its outermost field
// selection and returns that field's object (e.g. sc.awake[i>>6] → awake).
func (pw *phaseWalker) chainField(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := pw.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func (pw *phaseWalker) isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pw.pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// collectCommitFields records struct fields whose doc or line comment
// carries the phase:commit marker.
func (pw *phaseWalker) collectCommitFields() {
	for _, f := range pw.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					marked := (field.Doc != nil && strings.Contains(field.Doc.Text(), PhaseCommitMarker)) ||
						(field.Comment != nil && strings.Contains(field.Comment.Text(), PhaseCommitMarker))
					if !marked {
						continue
					}
					for _, name := range field.Names {
						if obj := pw.pass.TypesInfo.Defs[name]; obj != nil {
							pw.commitFields[obj] = true
						}
					}
				}
			}
		}
	}
}

// checkParallelFn applies the three parallel-phase disciplines to one named
// declaration.
func (pw *phaseWalker) checkParallelFn(fd *ast.FuncDecl, via string) {
	if docHas(fd, PhaseconfWaiver) {
		return
	}
	pw.checkParallelBody(fd, fd.Body, fd.Type, via)
}

// rootClass classifies the owner of a write target's base.
type rootClass int

const (
	rootOwned  rootClass = iota // receiver-reachable or function-made
	rootParam                   // reached through a parameter: owner unprovable
	rootGlobal                  // package-level variable: shared by definition
)

// checkParallelBody runs the disciplines over one parallel-phase body (a
// declaration or a go-launched literal). ftyp supplies the parameter list;
// for literals, the enclosing declaration's parameters count as parameters
// too (a captured pointer argument is exactly as unowned as a passed one).
func (pw *phaseWalker) checkParallelBody(fd *ast.FuncDecl, body *ast.BlockStmt, ftyp *ast.FuncType, via string) {
	info := pw.pass.TypesInfo

	params := make(map[types.Object]bool)
	addParams := func(ft *ast.FuncType) {
		if ft == nil || ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	addParams(ftyp)
	if ftyp != fd.Type {
		addParams(fd.Type)
	}
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = info.Defs[fd.Recv.List[0].Names[0]]
	}

	// Source-order local rootedness: a local first assigned from a
	// param-rooted (or global-rooted) chain inherits that root; everything
	// else a function binds — results of calls, fresh composites, copies of
	// values — is its own.
	localRoot := make(map[types.Object]rootClass)
	ptrTo := pw.fieldPointerLocals(body)

	var classify func(e ast.Expr) rootClass
	classify = func(e ast.Expr) rootClass {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				if id, ok := x.X.(*ast.Ident); ok {
					if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
						return rootGlobal
					}
				}
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return rootOwned
				}
				e = x.X
			case *ast.Ident:
				obj := info.Uses[x]
				if obj == nil {
					obj = info.Defs[x]
				}
				switch {
				case obj == nil:
					return rootOwned
				case obj == recvObj:
					return rootOwned
				case params[obj]:
					return rootParam
				default:
					if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						return rootGlobal
					}
					if rc, ok := localRoot[obj]; ok {
						return rc
					}
					return rootOwned
				}
			default:
				return rootOwned
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || params[obj] || obj == recvObj {
				continue
			}
			// Aliases propagate ownership only through reference-shaped
			// values; copying a struct or scalar out of a parameter makes an
			// owned value.
			if v, ok := obj.(*types.Var); ok {
				switch types.Unalias(v.Type()).Underlying().(type) {
				case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
					if rc := classify(as.Rhs[i]); rc != rootOwned {
						localRoot[obj] = rc
					}
				}
			}
		}
		return true
	})

	// Mutex heuristic: a Lock/RLock call on a sync mutex sanctions writes
	// positioned after it in the same body — coarse, but lock-protected
	// regions in tick code are rare and reviewed.
	lockPos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if s, ok := info.Selections[sel]; ok {
			if named, ok := types.Unalias(s.Recv()).(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
				if !lockPos.IsValid() || call.Pos() < lockPos {
					lockPos = call.Pos()
				}
			}
		}
		return true
	})
	guarded := func(pos token.Pos) bool { return lockPos.IsValid() && pos > lockPos }

	fname := fd.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		if guarded(pos) || pw.pass.Waived(pos, PhaseconfWaiver) {
			return
		}
		args = append(args, fname, via, PhaseconfWaiver)
		pw.pass.Reportf(pos, format+" in %s (parallel phase via %s); confine it to the claiming worker's state or justify it with a %s marker", args...)
	}

	// checkWrite applies confinement and phase purity to one write target.
	checkWrite := func(target ast.Expr, pos token.Pos) {
		if fld := pw.chainField(target); fld != nil && pw.commitFields[fld] {
			report(pos,
				"write to commit-phase field %s from the parallel tick phase", fld.Name())
			return
		}
		if id, ok := ast.Unparen(target).(*ast.StarExpr); ok {
			if base, ok := ast.Unparen(id.X).(*ast.Ident); ok {
				if fld := ptrTo[info.Uses[base]]; fld != nil && pw.atomicFields[fld] {
					report(pos,
						"plain write through pointer to atomic field %s", fld.Name())
					return
				}
			}
		}
		switch classify(target) {
		case rootParam:
			report(pos,
				"write through parameter %s: ownership not provable from this function", types.ExprString(baseIdentExpr(target)))
		case rootGlobal:
			report(pos,
				"write to package-level state %s: shared across every shard", types.ExprString(baseIdentExpr(target)))
		}
	}

	atomicSanctioned := pw.atomicCallRanges(body)
	inAtomic := func(pos token.Pos) bool {
		for _, r := range atomicSanctioned {
			if r[0] <= pos && pos <= r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				checkWrite(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(x.X, x.Pos())
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" && len(x.Args) == 2 {
					checkWrite(x.Args[0], x.Pos())
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SetMeta" {
				if s, ok := info.Selections[sel]; ok && isStatsType(s.Recv()) {
					report(x.Pos(),
						"Stats.SetMeta from the parallel tick phase: string meta is commit/coordinator-only telemetry")
				}
			}
		case *ast.SelectorExpr:
			// Atomic-consistency: any touch of an atomic field outside a
			// sync/atomic argument — read or write — races with the workers'
			// atomic traffic.
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && pw.atomicFields[v] && !inAtomic(x.Pos()) && !pw.underAddressForAtomic(x) {
					report(x.Pos(),
						"plain access to field %s, which is accessed via sync/atomic elsewhere", v.Name())
				}
			}
		}
		return true
	})
}

// atomicCallRanges collects the source ranges of sync/atomic calls: field
// touches inside them are the sanctioned atomic accesses.
func (pw *phaseWalker) atomicCallRanges(body ast.Node) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && pw.isAtomicCall(call) {
			out = append(out, [2]token.Pos{call.Pos(), call.End()})
		}
		return true
	})
	return out
}

// underAddressForAtomic reports whether sel sits under a unary & — the
// take-address half of the pointer-then-atomic idiom. The address itself
// accesses nothing; the dereferences through the resulting pointer are
// checked separately (atomic calls are sanctioned, plain stores flagged).
func (pw *phaseWalker) underAddressForAtomic(sel *ast.SelectorExpr) bool {
	f := pw.pass.FileOf(sel.Pos())
	if f == nil {
		return false
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return true
		}
		if un.Pos() <= sel.Pos() && sel.End() <= un.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// baseIdentExpr returns the base identifier of a chain for diagnostics, or
// the expression itself when no identifier base exists.
func baseIdentExpr(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return x
		}
	}
}

// isStatsType reports whether t is (a pointer to) sim.Stats.
func isStatsType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/sim") && obj.Name() == "Stats"
}
