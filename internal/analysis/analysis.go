// Package analysis is the type-checked static-analysis engine behind
// cmd/aurochs-vet. It upgrades internal/lint's AST-only rules to analyzers
// that see go/types information, which is what the two load-bearing
// contracts of the parallel simulator kernel require:
//
//   - sharedstate: a component whose fields can alias mutable heap state
//     reachable from another component must declare that state via
//     SharedState(), or the kernel's union-find sharding silently loses the
//     bit-identity guarantee (internal/sim/parallel.go);
//   - tickpurity: the observation methods the kernel calls outside the
//     owning worker's tick — Idle, CanPush, Done, Drained, Empty — must be
//     observably pure, because the idle-skip and the commit-time credit
//     recomputation assume repeated calls cannot change simulation state.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer /
// Pass / Reportf) so analyzers written here port to the upstream driver
// verbatim; the driver itself is stdlib-only — the toolchain image carries
// no module proxy, so the framework is vendored down to the shape we need
// rather than imported.
//
// The PR-1 determinism rules (wallclock, globalrand, maprange, print) are
// folded into the same engine via adapter analyzers over internal/lint, so
// aurochs-vet runs everything through one driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aurochs/internal/lint"
)

// An Analyzer describes one static-analysis rule. The shape matches
// x/tools/go/analysis.Analyzer minus the dependency machinery (no Requires:
// every analyzer here is self-contained).
type Analyzer struct {
	// Name identifies the rule in findings ("sharedstate", "tickpurity").
	Name string
	// Doc is the one-paragraph contract the rule enforces.
	Doc string
	// NeedsTypes marks analyzers that require a successfully type-checked
	// package; the driver skips them (with an error finding) when type
	// checking failed, instead of crashing on a nil types.Info.
	NeedsTypes bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed non-test sources; Filenames is parallel.
	Files     []*ast.File
	Filenames []string
	// Pkg and TypesInfo are nil when the package failed to type-check and
	// the analyzer declared NeedsTypes=false.
	Pkg       *types.Package
	TypesInfo *types.Info

	findings *[]lint.Finding
}

// Reportf records one error-severity finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, "", format, args...)
}

// Warnf records one warning-severity finding at pos: reported and counted,
// but a warnings-only run still exits 0 — the channel for sites an analyzer
// cannot prove either way.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.report(pos, lint.SevWarning, format, args...)
}

func (p *Pass) report(pos token.Pos, severity, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, lint.Finding{
		File:     position.Filename,
		Line:     position.Line,
		Rule:     p.Analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
		Severity: severity,
	})
}

// FileOf returns the parsed file containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Waived reports whether pos is covered by the given waiver marker, e.g.
// "lint:sharedstate-ok". A marker covers the lines of its comment group plus
// the line immediately below it, so it works inline ("x int // lint:...-ok"),
// as a standalone comment above a field, and anywhere inside the doc comment
// of the declaration it annotates — matching the maprange waiver convention
// from internal/lint.
func (p *Pass) Waived(pos token.Pos, marker string) bool {
	f := p.FileOf(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, cg := range f.Comments {
		hit := false
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		start := p.Fset.Position(cg.Pos()).Line
		end := p.Fset.Position(cg.End()).Line
		if line >= start && line <= end+1 {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the merged
// findings in the stable (file, line, analyzer, rule) order of
// lint.SortFindings. Analyzers needing types are
// reported as engine errors on packages that failed to type-check rather
// than silently skipped — a package the checker cannot follow is a finding
// in itself, not a free pass.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]lint.Finding, error) {
	var all []lint.Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.NeedsTypes && pkg.Types == nil {
				all = append(all, lint.Finding{
					File:     pkg.Dir,
					Line:     0,
					Rule:     a.Name,
					Analyzer: a.Name,
					Msg: fmt.Sprintf("package did not type-check (%v); %s contract cannot be verified",
						pkg.TypeError, a.Name),
				})
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Filenames: pkg.Filenames,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				findings:  &all,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Dir, err)
			}
		}
	}
	lint.SortFindings(all)
	return all, nil
}
