package analysis

import (
	"path/filepath"
	"strings"
	"testing"

	"aurochs/internal/lint"
)

// loadFixture loads one testdata package through the real loader.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	ld := NewLoader()
	pkg, err := ld.Load(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("fixture %s failed to type-check: %v", name, pkg.TypeError)
	}
	return pkg
}

func runAnalyzers(t *testing.T, pkg *Package, as ...*Analyzer) []lint.Finding {
	t.Helper()
	fs, err := Run([]*Package{pkg}, as)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func countRule(fs []lint.Finding, rule string) int {
	n := 0
	for _, f := range fs {
		if f.Rule == rule {
			n++
		}
	}
	return n
}

// TestSharedBadFixture: the seeded violations are each caught — two
// undeclared shared references and three impure observation methods.
func TestSharedBadFixture(t *testing.T) {
	pkg := loadFixture(t, "sharedbad")
	fs := runAnalyzers(t, pkg, SharedState, TickPurity)
	if got := countRule(fs, "sharedstate"); got != 2 {
		t.Errorf("sharedstate: got %d findings, want 2\n%v", got, fs)
	}
	if got := countRule(fs, "tickpurity"); got != 3 {
		t.Errorf("tickpurity: got %d findings, want 3\n%v", got, fs)
	}
	// The messages must name the field and the remedy.
	var sawTbl, sawLog, sawIdle bool
	for _, f := range fs {
		if f.Rule == "sharedstate" && strings.Contains(f.Msg, "field tbl") {
			sawTbl = true
		}
		if f.Rule == "sharedstate" && strings.Contains(f.Msg, "field log") {
			sawLog = true
		}
		if f.Rule == "tickpurity" && strings.Contains(f.Msg, "Walker.Idle") {
			sawIdle = true
		}
	}
	if !sawTbl || !sawLog || !sawIdle {
		t.Errorf("missing expected findings (tbl=%v log=%v idle=%v):\n%v", sawTbl, sawLog, sawIdle, fs)
	}
}

// TestSharedCleanFixture: declared sharing, waivers, owned references, link
// fields, and pure helpers produce no findings.
func TestSharedCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "sharedclean")
	if fs := runAnalyzers(t, pkg, SharedState, TickPurity); len(fs) != 0 {
		t.Errorf("clean fixture flagged:\n%v", fs)
	}
}

// TestOrderBadFixture: each seeded order-dependent Spec literal is caught —
// a bare write, a raw Modify closure, an unwaived CAS, and an empty-string
// waiver — and the messages carry the remedy.
func TestOrderBadFixture(t *testing.T) {
	pkg := loadFixture(t, "orderbad")
	fs := runAnalyzers(t, pkg, Orderdep)
	if got := countRule(fs, "orderdep"); got != 4 {
		t.Fatalf("orderdep: got %d findings, want 4\n%v", got, fs)
	}
	var sawWrite, sawModify, sawAnalyzer bool
	for _, f := range fs {
		if strings.Contains(f.Msg, "OpWrite") {
			sawWrite = true
		}
		if strings.Contains(f.Msg, "OpModify") && strings.Contains(f.Msg, "Combiner") {
			sawModify = true
		}
		if f.Analyzer == "orderdep" {
			sawAnalyzer = true
		}
	}
	if !sawWrite || !sawModify || !sawAnalyzer {
		t.Errorf("missing expected findings (write=%v modify=%v analyzer=%v):\n%v",
			sawWrite, sawModify, sawAnalyzer, fs)
	}
}

// TestOrderCleanFixture: every sanctioned escape — pure read, FAA, disjoint
// addresses, a declared combiner, a non-empty waiver field, and a comment
// waiver — passes without findings.
func TestOrderCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "orderclean")
	if fs := runAnalyzers(t, pkg, Orderdep); len(fs) != 0 {
		t.Errorf("clean fixture flagged:\n%v", fs)
	}
}

// TestWakeBadFixture: every unsanctioned mutation of wake-relevant state is
// caught — the plain setter, the termination flip, and the registered
// closure — and each message names the field it writes.
func TestWakeBadFixture(t *testing.T) {
	pkg := loadFixture(t, "wakebad")
	fs := runAnalyzers(t, pkg, Wakeprop)
	if got := countRule(fs, "wakeprop"); got != 3 {
		t.Fatalf("wakeprop: got %d findings, want 3\n%v", got, fs)
	}
	var sawInject, sawFinish, sawClosure bool
	for _, f := range fs {
		if strings.Contains(f.Msg, "Inject") && strings.Contains(f.Msg, "pending") {
			sawInject = true
		}
		if strings.Contains(f.Msg, "Finish") && strings.Contains(f.Msg, "eos") {
			sawFinish = true
		}
		if strings.Contains(f.Msg, "closure") && strings.Contains(f.Msg, "pending") {
			sawClosure = true
		}
	}
	if !sawInject || !sawFinish || !sawClosure {
		t.Errorf("missing expected findings (inject=%v finish=%v closure=%v):\n%v",
			sawInject, sawFinish, sawClosure, fs)
	}
}

// TestWakeCleanFixture: every discharge rule — tick-reachable helpers,
// builder chaining, link notification on the mutation path, the decl-level
// waiver, and the StateSharer closure rule — passes without findings.
func TestWakeCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "wakeclean")
	if fs := runAnalyzers(t, pkg, Wakeprop); len(fs) != 0 {
		t.Errorf("clean fixture flagged:\n%v", fs)
	}
}

// TestAllocBadFixture: every class of hidden allocation on the hot path is
// caught — append growth, map writes, make, escaping composites, closure
// cells, interface boxing, fmt, and string concatenation.
func TestAllocBadFixture(t *testing.T) {
	pkg := loadFixture(t, "allocbad")
	fs := runAnalyzers(t, pkg, Hotalloc)
	if got := countRule(fs, "hotalloc"); got != 8 {
		t.Fatalf("hotalloc: got %d findings, want 8\n%v", got, fs)
	}
	for _, want := range []string{
		"append", "map", "make", "composite", "closure", "interface", "fmt", "concat",
	} {
		found := false
		for _, f := range fs {
			if strings.Contains(f.Msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding mentions %q:\n%v", want, fs)
		}
	}
}

// TestAllocCleanFixture: the audited allocation-free surface — link and ring
// ops, fixed-size records, in-place filtering, shrinking appends, cold panic
// arguments, and a reviewed amortization waiver — passes without findings.
func TestAllocCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "allocclean")
	if fs := runAnalyzers(t, pkg, Hotalloc); len(fs) != 0 {
		t.Errorf("clean fixture flagged:\n%v", fs)
	}
}

// TestBatchBadFixture: the batch tick path is audited like the scalar one —
// TickBatch on a component type and the block ops on a Push+Pop-shaped type
// are hot-path roots, and the seeded per-batch staging buffer, spill
// growth (scalar and block), formatted label, and interface boxing are each
// caught.
func TestBatchBadFixture(t *testing.T) {
	pkg := loadFixture(t, "batchbad")
	fs := runAnalyzers(t, pkg, Hotalloc)
	if got := countRule(fs, "hotalloc"); got != 5 {
		t.Fatalf("hotalloc: got %d findings, want 5\n%v", got, fs)
	}
	var sawBatch, sawBlock bool
	for _, f := range fs {
		if strings.Contains(f.Msg, "Batcher.TickBatch") {
			sawBatch = true
		}
		if strings.Contains(f.Msg, "Spill.PushBlock") {
			sawBlock = true
		}
	}
	if !sawBatch || !sawBlock {
		t.Errorf("findings must be attributed to the batch roots (TickBatch=%v PushBlock=%v):\n%v",
			sawBatch, sawBlock, fs)
	}
}

// TestBatchCleanFixture: the audited block-transport surface —
// PeekBlock/DropBlock/PushBlock/PopBlock on sim.Link, Credits for the batch
// budget, and a fixed-storage local container with the same op shapes —
// passes without findings.
func TestBatchCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "batchclean")
	if fs := runAnalyzers(t, pkg, Hotalloc); len(fs) != 0 {
		t.Errorf("clean fixture flagged:\n%v", fs)
	}
}

// TestPhaseBadFixture: every seeded phase-discipline violation is caught —
// the package-level write, the mixed plain/atomic field access, the
// commit-field write, the parallel SetMeta, and the two parameter writes
// (helper and go-literal) — and each message names the offending state.
func TestPhaseBadFixture(t *testing.T) {
	pkg := loadFixture(t, "phasebad")
	fs := runAnalyzers(t, pkg, Phaseconf)
	if got := countRule(fs, "phaseconf"); got != 6 {
		t.Fatalf("phaseconf: got %d findings, want 6\n%v", got, fs)
	}
	for _, want := range []string{
		"package-level", "accessed via sync/atomic", "commit-phase field commitSeq",
		"SetMeta", "parameter p", "parameter res",
	} {
		found := false
		for _, f := range fs {
			if strings.Contains(f.Msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding mentions %q:\n%v", want, fs)
		}
	}
	for _, f := range fs {
		if f.Severity == lint.SevWarning || f.Waived {
			t.Errorf("phaseconf findings must be hard errors: %+v", f)
		}
	}
}

// TestPhaseCleanFixture: every discharge rule — receiver confinement, owned
// locals, channel sends, mutex guards, the pointer-then-atomic idiom,
// barrier-ordered plain access from commit/coordinator/unphased code, and
// the reviewed parameter waiver — passes without findings.
func TestPhaseCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "phaseclean")
	if fs := runAnalyzers(t, pkg, Phaseconf); len(fs) != 0 {
		t.Errorf("clean fixture flagged:\n%v", fs)
	}
}

// TestRepoPhaseClean: the work-stealing kernel and every engine package it
// schedules pass the barrier-phase prover — the in-repo half of the -phase
// CI gate. A finding here is a cross-shard race, a mixed plain/atomic
// access, or a parallel write to commit-only state in the shipped tree.
func TestRepoPhaseClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks half the module; skipped in -short")
	}
	ld := NewLoader()
	for _, dir := range []string{"sim", "fabric", "spad", "ring", "core"} {
		pkg, err := ld.Load(filepath.Join("..", dir), "aurochs/internal/"+dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if pkg.TypeError != nil {
			t.Fatalf("%s failed to type-check: %v", dir, pkg.TypeError)
		}
		for _, f := range runAnalyzers(t, pkg, Phaseconf) {
			if f.IsError() {
				t.Errorf("internal/%s: %v", dir, f)
			}
		}
	}
}

// TestDeterminismAdapter: the folded PR-1 rules report identically through
// the driver — counts match the lint package's own fixture expectations.
func TestDeterminismAdapter(t *testing.T) {
	ld := NewLoader()
	pkg, err := ld.Load(filepath.Join("..", "lint", "testdata", "src", "bad"), "bad")
	if err != nil {
		t.Fatal(err)
	}
	fs := runAnalyzers(t, pkg, Determinism)
	want := map[string]int{"wallclock": 2, "globalrand": 3, "maprange": 3, "print": 2}
	for rule, n := range want {
		if got := countRule(fs, rule); got != n {
			t.Errorf("%s: got %d findings, want %d\n%v", rule, got, n, fs)
		}
	}
}

// TestRepoComponentsAreClean: the shipped simulator packages satisfy both
// contracts — this is the in-repo half of the CI gate. Everything flagged
// here would be a real hole in the parallel kernel's safety argument.
func TestRepoComponentsAreClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks half the module; skipped in -short")
	}
	ld := NewLoader()
	for _, dir := range []string{"sim", "fabric", "spad", "dram", "core"} {
		pkg, err := ld.Load(filepath.Join("..", dir), "aurochs/internal/"+dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if pkg.TypeError != nil {
			t.Fatalf("%s failed to type-check: %v", dir, pkg.TypeError)
		}
		if fs := runAnalyzers(t, pkg, SharedState, TickPurity, Orderdep); len(fs) != 0 {
			t.Errorf("internal/%s has contract findings:\n%v", dir, fs)
		}
	}
}
