package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// HotallocWaiver suppresses the hotalloc rule on the allocation site (or the
// whole function declaration) it annotates, asserting the allocation is
// amortized (ring growth, timer-wheel bucket doubling) or off the per-cycle
// path (a once-per-stream spill, an abort). A declaration-level waiver — the
// marker anywhere in the function's doc comment — accepts every site in that
// function and stops the walk from descending into it.
const HotallocWaiver = "lint:hotalloc-ok"

// HotPathMarker annotates a function declaration as a hot-path root in its
// doc comment. Tick methods on component types and Push/Pop-family methods
// on link- or queue-shaped types are roots implicitly; the marker exists for
// the per-cycle loops the shape rules cannot see (the wake scheduler's
// stepSerial/stepParallel, link commit).
const HotPathMarker = "hot:path"

// hotOpNames are the implicit hot-path root methods on types with a
// Push+Pop shape (sim.Link, ring.Queue): the steady-state data movement ops
// whose zero-allocation property PR 5 established at runtime via
// testing.AllocsPerRun. The block-transport forms move whole contiguous
// spans per call — they are the batch tick path's data plane, so they are
// held to the same standard as their scalar counterparts.
var hotOpNames = map[string]bool{
	"Push": true, "Pop": true, "Peek": true, "Drop": true, "DropN": true,
	"PushRef": true, "PushRefDirty": true, "PushEOS": true, "StageVec": true,
	"PushBlock": true, "PopBlock": true, "PeekBlock": true, "DropBlock": true,
}

// allocFreePkgs are packages every call into which is accepted: pure
// arithmetic with no allocating entry points.
var allocFreePkgs = map[string]bool{
	"math/bits": true,
	"math":      true,
}

// knownAllocFree are audited cross-package callees the walk accepts without
// seeing their bodies. The entries are steady-state allocation-free: the
// amortized growth inside ring.Queue and sim.Link is waived (and reviewed)
// at its definition, where the backing-store reuse argument lives, and each
// carrier package runs the same analyzer over those bodies as roots.
// Keyed like knownPureCalls: "pkgPathSuffix.Type.Method" or
// "pkgPathSuffix.Func".
var knownAllocFree = map[string]bool{
	// ring.Queue steady-state ops (growth waived in ring.go).
	"internal/ring.Queue.Len": true, "internal/ring.Queue.Empty": true,
	"internal/ring.Queue.Front": true, "internal/ring.Queue.At": true,
	"internal/ring.Queue.Push": true, "internal/ring.Queue.Pop": true,
	"internal/ring.Queue.Drop": true, "internal/ring.Queue.DropN": true,
	"internal/ring.Queue.PushRef": true, "internal/ring.Queue.PushRefDirty": true,
	"internal/ring.Queue.Reset": true,
	// sim.Link ring-buffer ops (fixed ring allocated at construction).
	"internal/sim.Link.CanPush": true, "internal/sim.Link.Empty": true,
	"internal/sim.Link.Peek": true, "internal/sim.Link.Pop": true,
	"internal/sim.Link.Drop": true, "internal/sim.Link.Push": true,
	"internal/sim.Link.PushEOS": true, "internal/sim.Link.StageVec": true,
	"internal/sim.Link.Drained": true, "internal/sim.Link.Name": true,
	"internal/sim.Link.Capacity": true, "internal/sim.Link.Latency": true,
	"internal/sim.Link.Pushes": true, "internal/sim.Link.Pops": true,
	// Block transport: span copies over the fixed ring (at most two copy
	// calls around the wrap) and aliasing peeks — no growth anywhere.
	// TickBatch implementations lean on these, plus Visible/Credits for
	// the batch-budget arithmetic.
	"internal/sim.Link.PushBlock": true, "internal/sim.Link.PopBlock": true,
	"internal/sim.Link.PeekBlock": true, "internal/sim.Link.DropBlock": true,
	"internal/sim.Link.Visible": true, "internal/sim.Link.Credits": true,
	// sim.Counter handles are pre-resolved pointers (PR 5).
	"internal/sim.Counter.Add": true, "internal/sim.Counter.Value": true,
	// record.Vector / record.Rec are fixed-size values. Vector.Records is
	// deliberately absent — it allocates a fresh slice per call (use
	// AppendRecords on a recycled accumulator instead), and AppendRecords
	// stays a warning because whether it grows depends on the caller's
	// accumulator capacity.
	"internal/record.Vector.Push": true, "internal/record.Vector.Reset": true,
	"internal/record.Vector.Valid": true, "internal/record.Vector.Len": true,
	"internal/record.Vector.Count": true, "internal/record.Vector.PushRef": true,
	"internal/record.Rec.Get": true, "internal/record.Rec.Len": true,
	"internal/record.Rec.Append": true, "internal/record.Rec.Set": true,
	"internal/record.Make": true,
	// sync/atomic typed wrappers compile to single load/store/RMW
	// instructions on a field the caller already owns.
	"sync/atomic.Int64.Load": true, "sync/atomic.Int64.Store": true,
	"sync/atomic.Int64.Add": true, "sync/atomic.Int64.CompareAndSwap": true,
	"sync/atomic.Uint64.Load": true, "sync/atomic.Uint64.Store": true,
	"sync/atomic.Uint64.Add": true, "sync/atomic.Uint64.CompareAndSwap": true,
	// reflect.TypeOf returns the interned rtype; the argument here is
	// always a pointer, which boxes without allocating.
	"reflect.TypeOf": true,
}

// interfaceContractMethods are dynamic calls the per-cycle loop makes
// through the simulator's own interfaces (sim.Component and friends). The
// implementations are themselves hot-path roots of this analyzer, so the
// dispatch is not a blind spot — each concrete Tick/Idle body is walked
// where it is defined.
var interfaceContractMethods = map[string]bool{
	"Tick": true, "TickBatch": true, "Idle": true, "Done": true, "Drained": true, "Empty": true,
	"CanPush": true, "WakeHint": true, "Name": true, "SharedState": true,
	"InputLinks": true, "OutputLinks": true, "WorstCaseInternalLatency": true,
	"HostsCallbacks": true, "Stats": true,
}

// Hotalloc is the static half of the zero-allocation contract PR 5 enforces
// dynamically with testing.AllocsPerRun: a memoized call-graph walk from the
// hot-path roots — every component Tick, the sim.Link and ring.Queue
// data-movement ops, and functions annotated "hot:path" (the wake
// scheduler's per-cycle loop) — that flags the allocation sites Go hides in
// plain syntax:
//
//   - make/new calls and slice/map composite literals;
//   - &T{...} literals (escape to the heap whenever the pointer outlives
//     the frame — the walk cannot prove it does not);
//   - append (growth reallocates the backing array);
//   - map assignment (inserts allocate buckets);
//   - function literals capturing outer variables (the closure cell);
//   - conversions and assignments boxing a non-pointer value into an
//     interface;
//   - non-constant string concatenation;
//   - any call into fmt or errors (formatting allocates by design);
//   - goroutine launches.
//
// Same-package callees are walked recursively; cross-package callees must be
// on the audited allocation-free allowlist, and everything else is a
// warning-severity finding — the walk cannot see the body, so the site is
// suspect but not proven (run the analyzer over the callee's package to
// promote or clear it). Calls through function values (datapath closures
// like fabric.Map's fn) are exempt: per-kernel code is covered by the
// runtime AllocsPerRun gates, while this analyzer proves the engine around
// it. Panic arguments are exempt too — aborting the simulation may format.
//
// The runtime gate says *whether* a hot loop allocates; this analyzer says
// *where*, per site, before any benchmark runs. A reviewed amortization
// argument carries a "lint:hotalloc-ok" marker on the site or the enclosing
// declaration.
var Hotalloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "hot-path functions (Tick, link/queue ops, hot:path roots) must not reach allocation sites",
	NeedsTypes: true,
	Run:        runHotalloc,
}

func runHotalloc(pass *Pass) error {
	aw := newAllocWalker(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root, why := aw.isRoot(fd)
			if !root {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			aw.visit(obj, why)
		}
	}
	return nil
}

// allocWalker memoizes the hot-path allocation walk across one package.
type allocWalker struct {
	pass    *Pass
	decls   map[types.Object]*ast.FuncDecl
	visited map[types.Object]bool
	// warned dedups unprovable-callee warnings per (caller, callee).
	warned map[[2]types.Object]bool
}

func newAllocWalker(pass *Pass) *allocWalker {
	aw := &allocWalker{
		pass:    pass,
		decls:   make(map[types.Object]*ast.FuncDecl),
		visited: make(map[types.Object]bool),
		warned:  make(map[[2]types.Object]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					aw.decls[obj] = fd
				}
			}
		}
	}
	return aw
}

// isRoot classifies a declaration as a hot-path root and names the reason.
func (aw *allocWalker) isRoot(fd *ast.FuncDecl) (bool, string) {
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), HotPathMarker) {
		return true, "hot:path " + fd.Name.Name
	}
	if fd.Recv == nil {
		return false, ""
	}
	named := receiverNamed(aw.pass, fd)
	if named == nil {
		return false, ""
	}
	if (fd.Name.Name == "Tick" || fd.Name.Name == "TickBatch") && isComponentType(named) {
		return true, named.Obj().Name() + "." + fd.Name.Name
	}
	if hotOpNames[fd.Name.Name] && hasPushPop(named) {
		return true, named.Obj().Name() + "." + fd.Name.Name
	}
	return false, ""
}

// hasPushPop reports whether *T has both Push and Pop methods — the
// link/queue shape whose data-movement ops are implicit roots.
func hasPushPop(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	hasPush, hasPop := false, false
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Push":
			hasPush = true
		case "Pop":
			hasPop = true
		}
	}
	return hasPush && hasPop
}

// declWaived reports whether the function's doc comment carries the waiver,
// accepting every site inside.
func (aw *allocWalker) declWaived(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), HotallocWaiver)
}

// visit walks one function reached from a hot root, reporting its
// allocation sites and recursing into same-package callees. Each function
// is analyzed once; `via` names the first root that reached it.
func (aw *allocWalker) visit(obj types.Object, via string) {
	if fn, ok := obj.(*types.Func); ok {
		obj = fn.Origin()
	}
	if aw.visited[obj] {
		return
	}
	aw.visited[obj] = true
	fd := aw.decls[obj]
	if fd == nil {
		return
	}
	if aw.declWaived(fd) {
		return
	}
	aw.scan(fd, via)
}

// coldRanges collects source ranges exempt from the scan: panic arguments.
func coldRanges(body ast.Node, info *types.Info) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				out = append(out, [2]token.Pos{call.Pos(), call.End()})
				return false
			}
		}
		return true
	})
	return out
}

// scan reports the allocation sites in one function body.
func (aw *allocWalker) scan(fd *ast.FuncDecl, via string) {
	cold := coldRanges(fd.Body, aw.pass.TypesInfo)
	isCold := func(p token.Pos) bool {
		for _, r := range cold {
			if r[0] <= p && p <= r[1] {
				return true
			}
		}
		return false
	}
	site := func(pos token.Pos, format string, args ...any) {
		if isCold(pos) || aw.pass.Waived(pos, HotallocWaiver) {
			return
		}
		args = append(args, fd.Name.Name, via, HotallocWaiver)
		aw.pass.Reportf(pos, format+" in %s (hot path via %s); hoist it off the per-cycle path or justify it with a %s marker", args...)
	}
	info := aw.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			aw.scanCall(fd, x, via, site, isCold)
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return false // cold: aborts the run
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := x.X.(*ast.CompositeLit); isLit {
					site(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				switch types.Unalias(tv.Type).Underlying().(type) {
				case *types.Slice:
					site(x.Pos(), "slice literal allocates its backing array")
					return false // elements are covered by this site
				case *types.Map:
					site(x.Pos(), "map literal allocates")
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.X]; ok {
						if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
							site(lhs.Pos(), "map assignment may allocate buckets")
						}
					}
				}
			}
			aw.scanBoxing(x, site)
		case *ast.FuncLit:
			if capturesOuter(aw.pass, fd, x) {
				site(x.Pos(), "closure captures variables (allocates the capture cell)")
			}
			// The literal's body typically runs on a hot path too
			// (completion callbacks fire inside the memory model's tick):
			// keep scanning inside it.
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Value == nil {
					if b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						site(x.Pos(), "string concatenation allocates")
						return false // one site per concat chain
					}
				}
			}
		case *ast.GoStmt:
			site(x.Pos(), "goroutine launch allocates a stack")
		}
		return true
	})
}

// scanBoxing flags assignments that box a non-pointer concrete value into an
// interface-typed destination.
func (aw *allocWalker) scanBoxing(as *ast.AssignStmt, site func(token.Pos, string, ...any)) {
	info := aw.pass.TypesInfo
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var lt types.Type
		if id, ok := lhs.(*ast.Ident); ok && as.Tok == token.DEFINE {
			if obj := info.Defs[id]; obj != nil {
				lt = obj.Type()
			}
		} else if tv, ok := info.Types[lhs]; ok {
			lt = tv.Type
		}
		if lt == nil || !types.IsInterface(types.Unalias(lt)) {
			continue
		}
		if boxes(info, as.Rhs[i]) {
			site(as.Rhs[i].Pos(), "boxing a non-pointer value into an interface allocates")
		}
	}
}

// boxes reports whether storing e into an interface allocates: a concrete
// non-pointer, non-interface, non-nil value wider than a machine word does.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := types.Unalias(tv.Type)
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false
	}
	return true
}

// scanCall classifies one call on the hot path.
func (aw *allocWalker) scanCall(fd *ast.FuncDecl, call *ast.CallExpr, via string, site func(token.Pos, string, ...any), isCold func(token.Pos) bool) {
	info := aw.pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			switch o := obj.(type) {
			case *types.Builtin:
				switch o.Name() {
				case "append":
					if !isShrinkingAppend(call) {
						site(call.Pos(), "append may grow (reallocate) the backing array")
					}
				case "make":
					site(call.Pos(), "make allocates")
				case "new":
					site(call.Pos(), "new allocates")
				}
			case *types.TypeName:
				aw.scanConversion(info, call, site)
			case *types.Func:
				aw.callee(fd, call, o, via, site, isCold)
			}
			// *types.Var: a call through a function value — per-kernel
			// datapath code, covered by the runtime AllocsPerRun gates.
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := types.Unalias(sel.Recv()).Underlying().(*types.Interface); isIface {
					if !interfaceContractMethods[fn.Name()] && !isCold(call.Pos()) &&
						!aw.pass.Waived(call.Pos(), HotallocWaiver) {
						aw.warnOnce(fd, fn, call.Pos(), via,
							"dynamic call %s through an interface: allocation behavior unprovable", fn.Name())
					}
					return
				}
				aw.callee(fd, call, fn, via, site, isCold)
			}
			return
		}
		// Qualified pkg.F call or conversion.
		if obj := info.Uses[fun.Sel]; obj != nil {
			switch o := obj.(type) {
			case *types.Func:
				aw.callee(fd, call, o, via, site, isCold)
			case *types.TypeName:
				aw.scanConversion(info, call, site)
			}
		}
	}
}

// scanConversion flags T(x) conversions that box into an interface.
func (aw *allocWalker) scanConversion(info *types.Info, call *ast.CallExpr, site func(token.Pos, string, ...any)) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !types.IsInterface(types.Unalias(tv.Type)) {
		return
	}
	if boxes(info, call.Args[0]) {
		site(call.Pos(), "conversion boxes a non-pointer value into an interface")
	}
}

// callee handles a resolved function callee: same-package bodies are walked,
// fmt/errors are allocation sites by definition, audited cross-package
// callees pass, everything else is a warning (the body is out of sight).
func (aw *allocWalker) callee(fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func, via string, site func(token.Pos, string, ...any), isCold func(token.Pos) bool) {
	pkg := fn.Pkg()
	if pkg != nil && pkg == aw.pass.Pkg {
		aw.visit(fn, via)
		return
	}
	if pkg == nil {
		return // error.Error and friends on universe types
	}
	path := pkg.Path()
	if path == "fmt" || path == "errors" {
		site(call.Pos(), "%s.%s formats into the heap", pkg.Name(), fn.Name())
		return
	}
	if allocFreePkgs[path] || knownAllocFree[calleeKey(fn)] {
		return
	}
	if isCold(call.Pos()) || aw.pass.Waived(call.Pos(), HotallocWaiver) {
		return
	}
	aw.warnOnce(fd, fn, call.Pos(), via,
		"call to %s outside the audited allocation-free set: body not visible from this package", calleeName(fn))
}

// warnOnce emits one warning-severity finding per (caller, callee) pair.
func (aw *allocWalker) warnOnce(fd *ast.FuncDecl, fn *types.Func, pos token.Pos, via, format string, args ...any) {
	key := [2]types.Object{aw.pass.TypesInfo.Defs[fd.Name], fn}
	if aw.warned[key] {
		return
	}
	aw.warned[key] = true
	args = append(args, fd.Name.Name, via)
	aw.pass.Warnf(pos, format+" in %s (hot path via %s)", args...)
}

// capturesOuter reports whether a function literal references a variable
// declared in the enclosing function but outside the literal — the capture
// that forces a heap-allocated closure cell.
func capturesOuter(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	inLit := func(p token.Pos) bool { return lit.Pos() <= p && p <= lit.End() }
	inDecl := func(p token.Pos) bool { return fd.Pos() <= p && p <= fd.End() }
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if inDecl(v.Pos()) && !inLit(v.Pos()) {
			captured = true
		}
		return true
	})
	return captured
}

// isShrinkingAppend recognizes the in-place delete idiom
// append(s[:i], s[i+k:]...) — both operands slice the same base expression
// and the source starts at or after the destination's end, so the result
// can never exceed the original length and the backing array is reused,
// not reallocated. Textual base equality is the aliasing proof; the bound
// comparison accepts an identical expression or i+<positive const>.
func isShrinkingAppend(call *ast.CallExpr) bool {
	if !call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	dst, ok := call.Args[0].(*ast.SliceExpr)
	if !ok || dst.Slice3 || dst.Low != nil || dst.High == nil {
		return false
	}
	src, ok := call.Args[1].(*ast.SliceExpr)
	if !ok || src.Slice3 || src.Low == nil || src.High != nil {
		return false
	}
	if types.ExprString(dst.X) != types.ExprString(src.X) {
		return false
	}
	hi := types.ExprString(dst.High)
	if types.ExprString(src.Low) == hi {
		return true
	}
	if bin, ok := src.Low.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		if lit, ok := bin.Y.(*ast.BasicLit); ok && lit.Kind == token.INT &&
			types.ExprString(bin.X) == hi {
			return true
		}
	}
	// Constant bounds: append(s[:1], s[2:]...) shrinks when low >= high.
	if a, ok := intLit(dst.High); ok {
		if b, ok := intLit(src.Low); ok && b >= a {
			return true
		}
	}
	return false
}

func intLit(e ast.Expr) (int64, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	n, err := strconv.ParseInt(lit.Value, 0, 64)
	return n, err == nil
}
