package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// originAnalysis answers, per package, where values stored into component
// fields come from. It distinguishes externally-originated values (function
// parameters, package-level variables, fields of other objects — anything
// another component could also hold) from component-owned ones (make, new,
// literals, call results). The flow tracking is deliberately shallow — one
// hop through local variables in source order — which matches how the
// repository's constructors are written and keeps the rule predictable.
type originAnalysis struct {
	pass *Pass
	// fieldStores maps (named type, field name) to the position of the
	// first externally-originated store into that field, if any.
	fieldStores map[fieldKey]token.Pos
}

type fieldKey struct {
	named *types.Named
	field string
}

// newOriginAnalysis scans every function and declaration in the package.
func newOriginAnalysis(pass *Pass) *originAnalysis {
	oa := &originAnalysis{pass: pass, fieldStores: make(map[fieldKey]token.Pos)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					oa.scanFunc(d.Body, oa.paramObjects(d))
				}
			case *ast.GenDecl:
				// Package-level values: composite literals of component
				// types built at init time. No parameters in scope.
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							oa.scanRHS(v, newScope(nil))
						}
					}
				}
			}
		}
	}
	return oa
}

// externalAssignment returns the position of the first external store into
// the field, or token.NoPos when the package never stores external state
// there.
func (oa *originAnalysis) externalAssignment(named *types.Named, field string) token.Pos {
	return oa.fieldStores[fieldKey{named, field}]
}

// paramObjects collects the parameter (and receiver) variables of a
// declaration — the canonical external origins.
func (oa *originAnalysis) paramObjects(fd *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if obj := oa.pass.TypesInfo.Defs[n]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return params
}

// scope tracks which local variables currently hold externally-originated
// values. Parameters are permanently external; locals flip as they are
// assigned.
type scope struct {
	params   map[types.Object]bool
	external map[types.Object]bool
}

func newScope(params map[types.Object]bool) *scope {
	if params == nil {
		params = map[types.Object]bool{}
	}
	return &scope{params: params, external: map[types.Object]bool{}}
}

// scanFunc walks one function body in source order: origin facts for local
// variables accumulate as assignments are seen, component-field stores are
// recorded, and function literals are scanned with the enclosing scope (a
// closure sees the same variables).
func (oa *originAnalysis) scanFunc(body *ast.BlockStmt, params map[types.Object]bool) {
	sc := newScope(params)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0] // multi-value: treat each LHS as fed by the call
				}
				oa.recordStore(lhs, rhs, sc)
			}
			for _, rhs := range x.Rhs {
				oa.scanRHS(rhs, sc)
			}
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								oa.recordStore(name, vs.Values[i], sc)
								oa.scanRHS(vs.Values[i], sc)
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				oa.scanRHS(r, sc)
			}
		case *ast.ExprStmt:
			oa.scanRHS(x.X, sc)
		case *ast.GoStmt:
			oa.scanRHS(x.Call, sc)
		case *ast.DeferStmt:
			oa.scanRHS(x.Call, sc)
		}
		return true
	})
}

// recordStore handles one `lhs = rhs` pair: locals update the scope's
// origin facts; selector stores into component-shaped fields are recorded
// when the RHS is external.
func (oa *originAnalysis) recordStore(lhs, rhs ast.Expr, sc *scope) {
	switch l := lhs.(type) {
	case *ast.Ident:
		obj := oa.pass.TypesInfo.Defs[l]
		if obj == nil {
			obj = oa.pass.TypesInfo.Uses[l]
		}
		if obj != nil && rhs != nil {
			sc.external[obj] = oa.isExternal(rhs, sc)
		}
	case *ast.SelectorExpr:
		if rhs == nil || !oa.isExternal(rhs, sc) {
			return
		}
		sel, ok := oa.pass.TypesInfo.Selections[l]
		if !ok || sel.Kind() != types.FieldVal {
			return
		}
		recv := types.Unalias(sel.Recv())
		if p, ok := recv.(*types.Pointer); ok {
			recv = types.Unalias(p.Elem())
		}
		if named, ok := recv.(*types.Named); ok {
			key := fieldKey{named, l.Sel.Name}
			if !oa.fieldStores[key].IsValid() {
				oa.fieldStores[key] = l.Pos()
			}
		}
	}
}

// scanRHS finds component composite literals and nested function literals
// inside an expression.
func (oa *originAnalysis) scanRHS(e ast.Expr, sc *scope) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			oa.scanComposite(x, sc)
		case *ast.FuncLit:
			// Closures share the enclosing origin facts; their own
			// parameters are additional external origins.
			inner := newScope(sc.params)
			for obj, ext := range sc.external { // lint:maprange-ok — copying a set
				inner.external[obj] = ext
			}
			for _, f := range x.Type.Params.List {
				for _, nm := range f.Names {
					if obj := oa.pass.TypesInfo.Defs[nm]; obj != nil {
						inner.params[obj] = true
					}
				}
			}
			oa.scanFunc(x.Body, inner.params)
			return false
		}
		return true
	})
}

// scanComposite records external stores made through composite literal
// fields: &T{h: h} with h a parameter is the canonical constructor shape.
func (oa *originAnalysis) scanComposite(lit *ast.CompositeLit, sc *scope) {
	tv, ok := oa.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if oa.isExternal(kv.Value, sc) {
			k := fieldKey{named, key.Name}
			if !oa.fieldStores[k].IsValid() {
				oa.fieldStores[k] = kv.Pos()
			}
		}
	}
}

// isExternal classifies an expression's origin. External means the value
// (or the memory it points to) may also be reachable from outside the
// component being constructed: parameters, package-level variables, other
// objects' fields, and anything derived from them by selection, indexing,
// or dereference. Fresh allocations — make, new, literals — and call
// results are owned: a helper returning an alias into its argument is rare
// enough that flagging every call would bury the signal.
func (oa *originAnalysis) isExternal(e ast.Expr, sc *scope) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := oa.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = oa.pass.TypesInfo.Defs[x]
		}
		if obj == nil {
			return false
		}
		if sc.params[obj] {
			return true
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == oa.pass.Pkg.Scope() {
			return true // package-level variable
		}
		return sc.external[obj]
	case *ast.SelectorExpr:
		// Qualified identifiers (pkg.Var) are package-level state in
		// another package: external. Field selections inherit the base's
		// origin.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := oa.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				if _, isVar := oa.pass.TypesInfo.Uses[x.Sel].(*types.Var); isVar {
					return true
				}
				return false // pkg.Const, pkg.Func, pkg.Type
			}
		}
		return oa.isExternal(x.X, sc)
	case *ast.IndexExpr:
		return oa.isExternal(x.X, sc)
	case *ast.StarExpr:
		return oa.isExternal(x.X, sc)
	case *ast.UnaryExpr:
		return oa.isExternal(x.X, sc)
	case *ast.ParenExpr:
		return oa.isExternal(x.X, sc)
	case *ast.TypeAssertExpr:
		return oa.isExternal(x.X, sc)
	case *ast.CallExpr, *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return false
	default:
		return false
	}
}
