package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package directory.
type Package struct {
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every file in the loader's shared set.
	Fset *token.FileSet
	// Files and Filenames hold the parsed non-test sources, sorted by name.
	Files     []*ast.File
	Filenames []string
	// Types and Info are nil when type checking failed; TypeError then says
	// why. AST-only analyzers still run on such packages.
	Types     *types.Package
	Info      *types.Info
	TypeError error
}

// Loader parses and type-checks package directories. One loader shares a
// file set and an importer across packages, so the (source-level) import
// graph — including the standard library — is checked once, not once per
// package. Type checking runs entirely from source: the container carries
// no compiled export data and no module proxy, and the simulator's own
// packages resolve through the module-aware build context.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh file set and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's shared file set.
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

// Load parses the non-test .go files directly in dir and type-checks them
// as one package. Parse errors fail the load (the tree is expected to
// build); type-check errors are recorded on the package so AST-only rules
// still run. importPath is used only for error messages and may be the
// directory itself.
func (ld *Loader) Load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	pkg := &Package{Dir: dir, Fset: ld.fset}
	for _, n := range names {
		path := filepath.Join(dir, n)
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, path)
	}
	if len(pkg.Files) == 0 {
		return pkg, nil
	}
	if importPath == "" {
		importPath = dir
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld.imp}
	tpkg, err := conf.Check(importPath, ld.fset, pkg.Files, info)
	if err != nil {
		pkg.TypeError = err
		return pkg, nil
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}
