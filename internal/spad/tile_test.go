package spad

import (
	"math/rand"
	"testing"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// runTile pushes recs through a single scratchpad stream pipeline and
// returns the output records plus elapsed cycles.
func runTile(t *testing.T, cfg Config, mem *Mem, spec Spec, recs []record.Rec) ([]record.Rec, int64) {
	t.Helper()
	sys := sim.NewSystem()
	in := sys.NewLink("in", 8, 1)
	out := sys.NewLink("out", 8, 1)
	tile := NewTile(cfg, mem, spec, in, out, sys.Stats())
	src := &vecSource{out: in, vecs: record.Vectorize(recs)}
	snk := &vecSink{in: out}
	sys.Add(src)
	sys.Add(tile)
	sys.Add(snk)
	cycles, err := sys.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sys.Stats())
	}
	return snk.recs, cycles
}

type vecSource struct {
	out  *sim.Link
	vecs []record.Vector
	pos  int
	eos  bool
}

func (s *vecSource) Name() string { return "src" }
func (s *vecSource) Done() bool   { return s.eos }
func (s *vecSource) Tick(c int64) {
	if s.eos || !s.out.CanPush() {
		return
	}
	if s.pos < len(s.vecs) {
		s.out.Push(c, sim.Flit{Vec: s.vecs[s.pos]})
		s.pos++
		return
	}
	s.out.Push(c, sim.Flit{EOS: true})
	s.eos = true
}

type vecSink struct {
	in   *sim.Link
	recs []record.Rec
	eos  bool
}

func (s *vecSink) Name() string { return "snk" }
func (s *vecSink) Done() bool   { return s.eos }
func (s *vecSink) Tick(c int64) {
	for !s.in.Empty() {
		f := s.in.Pop()
		if f.EOS {
			s.eos = true
			return
		}
		s.recs = append(s.recs, f.Vec.Records()...)
	}
}

func TestGatherReadsCorrectWords(t *testing.T) {
	mem := NewMem(16, 64, 0)
	for i := 0; i < mem.Words(); i++ {
		mem.Write(uint32(i), uint32(i*3))
	}
	spec := Spec{
		Op:    OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
		Apply: func(r *record.Rec, resp []uint32) bool {
			*r = r.Append(resp[0])
			return true
		},
	}
	var recs []record.Rec
	for i := 0; i < 200; i++ {
		recs = append(recs, record.Make(uint32(rand.Intn(mem.Words()))))
	}
	got, _ := runTile(t, DefaultConfig("g"), mem, spec, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for _, r := range got {
		if r.Get(1) != r.Get(0)*3 {
			t.Fatalf("addr %d read %d, want %d", r.Get(0), r.Get(1), r.Get(0)*3)
		}
	}
}

func TestWideGatherStaysInOneBank(t *testing.T) {
	// lineShift=2 keeps a 4-word node inside one bank.
	mem := NewMem(8, 64, 2)
	for i := 0; i < mem.Words(); i++ {
		mem.Write(uint32(i), uint32(i))
	}
	spec := Spec{
		Op:    OpRead,
		Width: 4,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) * 4 },
		Apply: func(r *record.Rec, resp []uint32) bool {
			for _, w := range resp {
				*r = r.Append(w)
			}
			return true
		},
	}
	var recs []record.Rec
	for i := 0; i < 50; i++ {
		recs = append(recs, record.Make(uint32(i)))
	}
	got, _ := runTile(t, DefaultConfig("w"), mem, spec, recs)
	for _, r := range got {
		base := r.Get(0) * 4
		for k := 0; k < 4; k++ {
			if r.Get(1+k) != base+uint32(k) {
				t.Fatalf("node %d word %d = %d", r.Get(0), k, r.Get(1+k))
			}
		}
	}
}

func TestScatterWritesAllWords(t *testing.T) {
	mem := NewMem(16, 64, 0)
	spec := Spec{
		Op:    OpWrite,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
		Data:  func(r *record.Rec, _ int) uint32 { return r.Get(1) },
	}
	var recs []record.Rec
	for i := 0; i < 100; i++ {
		recs = append(recs, record.Make(uint32(i), uint32(i)+1000))
	}
	got, _ := runTile(t, DefaultConfig("s"), mem, spec, recs)
	if len(got) != 100 {
		t.Fatalf("threads lost: %d", len(got))
	}
	for i := 0; i < 100; i++ {
		if v := mem.Read(uint32(i)); v != uint32(i)+1000 {
			t.Fatalf("mem[%d]=%d", i, v)
		}
	}
}

// TestFAAAtomicity: N threads increment one counter; every thread must see
// a unique pre-add value and the counter must end at N. This is the
// property that makes the partition-count pipeline (paper fig. 7b) correct.
func TestFAAAtomicity(t *testing.T) {
	mem := NewMem(16, 64, 0)
	spec := Spec{
		Op:   OpFAA,
		Addr: func(*record.Rec) uint32 { return 5 },
		Data: func(*record.Rec, int) uint32 { return 1 },
		Apply: func(r *record.Rec, resp []uint32) bool {
			*r = r.Append(resp[0])
			return true
		},
	}
	const n = 128
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(uint32(i))
	}
	got, _ := runTile(t, DefaultConfig("faa"), mem, spec, recs)
	if mem.Read(5) != n {
		t.Fatalf("counter=%d, want %d", mem.Read(5), n)
	}
	seen := make(map[uint32]bool)
	for _, r := range got {
		v := r.Get(1)
		if seen[v] {
			t.Fatalf("duplicate FAA ticket %d — atomicity violated", v)
		}
		seen[v] = true
	}
}

// TestCASExactlyOneWinner: all threads CAS the same location from 0 to
// their id; exactly one must succeed.
func TestCASExactlyOneWinner(t *testing.T) {
	mem := NewMem(16, 64, 0)
	spec := Spec{
		Op:   OpCAS,
		Addr: func(*record.Rec) uint32 { return 9 },
		Data: func(r *record.Rec, i int) uint32 {
			if i == 0 {
				return 0 // expected
			}
			return r.Get(0) // new
		},
		Apply: func(r *record.Rec, resp []uint32) bool {
			*r = r.Append(resp[0])
			return true
		},
	}
	recs := make([]record.Rec, 64)
	for i := range recs {
		recs[i] = record.Make(uint32(i) + 1)
	}
	got, _ := runTile(t, DefaultConfig("cas"), mem, spec, recs)
	winners := 0
	for _, r := range got {
		if r.Get(1) == 0 { // observed the initial value => CAS succeeded
			winners++
			if mem.Read(9) != r.Get(0) {
				// The winner's value must be what is stored unless a later
				// thread won... but only one can observe 0.
				t.Fatalf("stored %d, winner wrote %d", mem.Read(9), r.Get(0))
			}
		}
	}
	if winners != 1 {
		t.Fatalf("winners=%d, want exactly 1", winners)
	}
}

// TestBankConflictSerialization: requests hammering one bank take ~N cycles
// to grant; spread across 16 banks they take ~N/16.
func TestBankConflictSerialization(t *testing.T) {
	mkSpec := func() Spec {
		return Spec{
			Op:    OpRead,
			Width: 1,
			Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
			Apply: func(r *record.Rec, resp []uint32) bool { return true },
		}
	}
	const n = 512
	same := make([]record.Rec, n)
	spread := make([]record.Rec, n)
	for i := range same {
		same[i] = record.Make(uint32(0)) // all bank 0
		spread[i] = record.Make(uint32(i % 16))
	}
	_, cSame := runTile(t, DefaultConfig("b0"), NewMem(16, 64, 0), mkSpec(), same)
	_, cSpread := runTile(t, DefaultConfig("b1"), NewMem(16, 64, 0), mkSpec(), spread)
	if cSame < n {
		t.Fatalf("same-bank run finished in %d cycles; bank can serve at most 1/cycle", cSame)
	}
	if cSpread*4 > cSame {
		t.Fatalf("spread (%d cyc) should be ≫ faster than same-bank (%d cyc)", cSpread, cSame)
	}
}

// TestReorderBeatsInOrder: with a conflict-heavy address stream, Aurochs'
// reordering pipeline must outperform Capstan's in-order dequeue even
// though the in-order queues are twice as deep (paper §III-B).
func TestReorderBeatsInOrder(t *testing.T) {
	spec := func() Spec {
		return Spec{
			Op:    OpRead,
			Width: 1,
			Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
			Apply: func(r *record.Rec, resp []uint32) bool { return true },
		}
	}
	rng := rand.New(rand.NewSource(7))
	const n = 2048
	recs := make([]record.Rec, n)
	for i := range recs {
		// Skewed address distribution: heavy conflicts on a few banks.
		b := uint32(rng.Intn(4))
		recs[i] = record.Make(b + 16*uint32(rng.Intn(4)))
	}
	cp := func(r []record.Rec) []record.Rec { return append([]record.Rec(nil), r...) }

	outR, cycR := runTile(t, Config{Name: "reorder", ForwardRMW: true}, NewMem(16, 64, 0), spec(), cp(recs))
	outI, cycI := runTile(t, Config{Name: "inorder", InOrder: true, ForwardRMW: true}, NewMem(16, 64, 0), spec(), cp(recs))
	if len(outR) != n || len(outI) != n {
		t.Fatalf("lost threads: reorder=%d inorder=%d", len(outR), len(outI))
	}
	if cycR > cycI {
		t.Errorf("reordering (%d cyc) should not be slower than in-order (%d cyc)", cycR, cycI)
	}
}

// TestInOrderPreservesVectorOrder: Capstan mode must emit vectors in
// arrival order even under conflicts.
func TestInOrderPreservesVectorOrder(t *testing.T) {
	mem := NewMem(16, 64, 0)
	spec := Spec{
		Op:    OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(1) },
		Apply: func(r *record.Rec, resp []uint32) bool { return true },
	}
	rng := rand.New(rand.NewSource(3))
	const n = 256
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(uint32(i), uint32(rng.Intn(8))) // conflicty
	}
	got, _ := runTile(t, Config{Name: "ord", InOrder: true}, mem, spec, recs)
	if len(got) != n {
		t.Fatalf("got %d", len(got))
	}
	for i, r := range got {
		if r.Get(0) != uint32(i) {
			t.Fatalf("in-order mode broke order at %d: got id %d", i, r.Get(0))
		}
	}
}

func TestRMWForwardingThroughput(t *testing.T) {
	// Back-to-back FAA to one bank: with forwarding ~1/cycle, without ~1/2.
	run := func(fw bool) int64 {
		mem := NewMem(16, 64, 0)
		spec := Spec{
			Op:    OpFAA,
			Addr:  func(*record.Rec) uint32 { return 0 },
			Data:  func(*record.Rec, int) uint32 { return 1 },
			Apply: func(r *record.Rec, resp []uint32) bool { return true },
		}
		recs := make([]record.Rec, 256)
		for i := range recs {
			recs[i] = record.Make(uint32(i))
		}
		_, cyc := runTile(t, Config{Name: "fw", ForwardRMW: fw}, mem, spec, recs)
		return cyc
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("forwarding (%d cyc) must beat no-forwarding (%d cyc)", with, without)
	}
}

func TestMemBankMapping(t *testing.T) {
	m := NewMem(16, 64, 0)
	if m.Bank(0) != 0 || m.Bank(1) != 1 || m.Bank(16) != 0 {
		t.Error("word-interleave mapping wrong")
	}
	m2 := NewMem(8, 64, 2)
	if m2.Bank(0) != 0 || m2.Bank(3) != 0 || m2.Bank(4) != 1 {
		t.Error("line-interleave mapping wrong")
	}
}

func TestMemPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"banks-not-pow2": func() { NewMem(6, 64, 0) },
		"zero-words":     func() { NewMem(8, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// tileBufProbe watches a Tile's response-side buffers from inside the cycle
// loop, recording the identity of every backing array they ever live in.
// Both fields it samples were reallocation hot spots the hotalloc prover
// surfaced: ready used to slide off the front (ready = ready[n:]) until
// append reallocated it, and in-order ROB slots were made fresh per vector.
type tileBufProbe struct {
	tile         *Tile
	readyBacking map[*record.Rec]bool
	robBacking   map[*record.Rec]bool
	robSeqs      int
	lastSeq      int64
}

func (p *tileBufProbe) Name() string { return "tileprobe" }
func (p *tileBufProbe) Done() bool   { return true }

// SharedState pins the probe to the tile's shard under the parallel kernel:
// the tile declares its Mem, so claiming the same identity key unions the
// two and sampling the tile's unexported buffers cannot race.
func (p *tileBufProbe) SharedState() []any { return []any{p.tile.mem} }
func (p *tileBufProbe) Tick(int64) {
	if id := p.tile.ready.BackingID(); id != nil {
		p.readyBacking[id] = true
	}
	for seq, slots := range p.tile.rob {
		if len(slots) > 0 {
			p.robBacking[&slots[0]] = true
		}
		if seq >= p.lastSeq {
			p.lastSeq = seq + 1
			p.robSeqs++
		}
	}
}

// runTileProbed is runTile with the probe registered alongside the pipeline.
func runTileProbed(t *testing.T, cfg Config, spec Spec, recs []record.Rec) *tileBufProbe {
	t.Helper()
	sys := sim.NewSystem()
	in := sys.NewLink("in", 8, 1)
	out := sys.NewLink("out", 8, 1)
	tile := NewTile(cfg, NewMem(16, 64, 0), spec, in, out, sys.Stats())
	probe := &tileBufProbe{tile: tile, readyBacking: map[*record.Rec]bool{}, robBacking: map[*record.Rec]bool{}}
	sys.Add(&vecSource{out: in, vecs: record.Vectorize(recs)})
	sys.Add(tile)
	sys.Add(&vecSink{in: out})
	sys.Add(probe)
	if _, err := sys.Run(1_000_000); err != nil {
		t.Fatalf("run: %v\n%s", err, sys.Stats())
	}
	return probe
}

func conflictyRecs(n int) []record.Rec {
	rng := rand.New(rand.NewSource(11))
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(uint32(rng.Intn(4)) + 16*uint32(rng.Intn(4)))
	}
	return recs
}

// TestTileReadyBufferStaysPut: in reorder mode, the ready compactor reuses
// one backing array at steady state — growth to the backpressure bound is
// the only allocation, so the distinct-backing census stays tiny while
// thousands of records flow through.
func TestTileReadyBufferStaysPut(t *testing.T) {
	spec := Spec{
		Op:    OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
		Apply: func(r *record.Rec, resp []uint32) bool { return true },
	}
	probe := runTileProbed(t, Config{Name: "readyprobe"}, spec, conflictyRecs(4096))
	if len(probe.readyBacking) == 0 {
		t.Fatal("probe never saw the ready buffer populated")
	}
	// Pure doubling growth to the 4*Lanes backpressure bound allows at most
	// ~7 arrays; the pre-fix slide-then-reallocate pattern produced hundreds.
	if got := len(probe.readyBacking); got > 8 {
		t.Errorf("ready buffer lived in %d distinct backing arrays; compaction requires a handful at most", got)
	}
}

// TestTileROBSlotsRecycle: in-order mode recycles retired ROB slot slices
// through a freelist — the number of distinct slot arrays is bounded by the
// in-flight window, not by the number of vectors processed.
func TestTileROBSlotsRecycle(t *testing.T) {
	spec := Spec{
		Op:    OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
		Apply: func(r *record.Rec, resp []uint32) bool { return true },
	}
	probe := runTileProbed(t, Config{Name: "robprobe", InOrder: true}, spec, conflictyRecs(4096))
	if probe.robSeqs < 64 {
		t.Fatalf("probe saw only %d ROB sequences; want a long run", probe.robSeqs)
	}
	// The reorder window holds a handful of vectors; without the freelist
	// every sequence allocated a fresh slot slice (one per vector).
	if got := len(probe.robBacking); got > 16 {
		t.Errorf("ROB slots lived in %d distinct backing arrays across %d sequences; freelist recycling requires a bounded set",
			got, probe.robSeqs)
	}
}
