package spad

import (
	"testing"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// TestTileIdleConformance: the scratchpad pipeline honours the Idler
// contract under sim.VerifyIdleContract in both dequeue disciplines —
// every Idle=true answer is backed by a provably no-op Tick, and the
// stream still drains.
func TestTileIdleConformance(t *testing.T) {
	for _, tc := range []struct {
		name    string
		inOrder bool
	}{
		{"reordering", false},
		{"inorder", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := NewMem(16, 64, 0)
			for i := 0; i < mem.Words(); i++ {
				mem.Write(uint32(i), uint32(i*7))
			}
			spec := Spec{
				Op:    OpRead,
				Width: 1,
				Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
				Apply: func(r *record.Rec, resp []uint32) bool {
					*r = r.Append(resp[0])
					return true
				},
			}
			var recs []record.Rec
			for i := 0; i < 200; i++ {
				// Collide addresses deliberately: bank conflicts exercise the
				// queue-occupancy half of Idle.
				recs = append(recs, record.Make(uint32(i%32)))
			}
			cfg := DefaultConfig("tile")
			cfg.InOrder = tc.inOrder
			sys := sim.NewSystem()
			in := sys.NewLink("in", 8, 1)
			out := sys.NewLink("out", 8, 1)
			sys.Add(&vecSource{out: in, vecs: record.Vectorize(recs)})
			sys.Add(NewTile(cfg, mem, spec, in, out, sys.Stats()))
			sys.Add(&vecSink{in: out})
			if err := sim.VerifyIdleContract(sys, 1_000_000); err != nil {
				t.Fatal(err)
			}
		})
	}
}
