package spad

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// Property tests: the scratchpad pipeline, under any mix of operations and
// any reordering the allocator chooses, must be indistinguishable from a
// serial reference memory — atomics linearize, reads see every prior write
// of their own stream, and nothing is lost.

// TestPropertyFAATicketsAlwaysUnique: for any address distribution, FAA
// responses per address must be exactly {0, 1, ..., count-1}.
func TestPropertyFAATicketsAlwaysUnique(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%500 + 16
		rng := rand.New(rand.NewSource(seed))
		mem := NewMem(16, 64, 0)
		recs := make([]record.Rec, n)
		for i := range recs {
			recs[i] = record.Make(uint32(rng.Intn(32)), uint32(i))
		}
		spec := Spec{
			Op:   OpFAA,
			Addr: func(r *record.Rec) uint32 { return r.Get(0) },
			Data: func(*record.Rec, int) uint32 { return 1 },
			Apply: func(r *record.Rec, resp []uint32) bool {
				*r = r.Append(resp[0])
				return true
			},
		}
		got, _ := runTileQuick(mem, spec, recs)
		if len(got) != n {
			return false
		}
		seen := map[[2]uint32]bool{}
		counts := map[uint32]uint32{}
		for _, r := range got {
			k := [2]uint32{r.Get(0), r.Get(2)}
			if seen[k] {
				return false // duplicate ticket at one address
			}
			seen[k] = true
			counts[r.Get(0)]++
		}
		for addr, c := range counts {
			if mem.Read(addr) != c {
				return false // final count must equal tickets issued
			}
			for tkt := uint32(0); tkt < c; tkt++ {
				if !seen[[2]uint32{addr, tkt}] {
					return false // tickets must be dense 0..c-1
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyScatterGatherRoundTrip: for any set of distinct addresses,
// writing then reading through separate tile runs returns the written data
// regardless of allocation order.
func TestPropertyScatterGatherRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := NewMem(16, 256, 0)
		n := rng.Intn(300) + 10
		perm := rng.Perm(mem.Words())[:n]
		writes := make([]record.Rec, n)
		for i, a := range perm {
			writes[i] = record.Make(uint32(a), rng.Uint32())
		}
		runTileQuick(mem, Spec{
			Op:    OpWrite,
			Width: 1,
			Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
			Data:  func(r *record.Rec, _ int) uint32 { return r.Get(1) },
		}, writes)
		reads := make([]record.Rec, n)
		for i, a := range perm {
			reads[i] = record.Make(uint32(a))
		}
		got, _ := runTileQuick(mem, Spec{
			Op:    OpRead,
			Width: 1,
			Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
			Apply: func(r *record.Rec, resp []uint32) bool {
				*r = r.Append(resp[0])
				return true
			},
		}, reads)
		want := map[uint32]uint32{}
		for _, w := range writes {
			want[w.Get(0)] = w.Get(1)
		}
		for _, r := range got {
			if want[r.Get(0)] != r.Get(1) {
				return false
			}
		}
		return len(got) == n
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyModifyLinearizes: an arbitrary combiner (here a saturating
// add with a data-dependent ceiling) applied by many threads must land at
// the value a serial fold produces, for any thread interleaving.
func TestPropertyModifyLinearizes(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(func(seed int64, ceilRaw uint8) bool {
		ceil := uint32(ceilRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		mem := NewMem(16, 64, 0)
		n := rng.Intn(400) + 50
		recs := make([]record.Rec, n)
		for i := range recs {
			recs[i] = record.Make(uint32(rng.Intn(8)), uint32(i))
		}
		runTileQuick(mem, Spec{
			Op:   OpModify,
			Addr: func(r *record.Rec) uint32 { return r.Get(0) },
			Modify: func(cur uint32, _ *record.Rec) uint32 {
				if cur >= ceil {
					return cur
				}
				return cur + 1
			},
			Apply: func(r *record.Rec, resp []uint32) bool { return true },
		}, recs)
		counts := map[uint32]uint32{}
		for _, r := range recs {
			counts[r.Get(0)]++
		}
		for addr, c := range counts {
			want := c
			if want > ceil {
				want = ceil
			}
			if mem.Read(addr) != want {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// runTileQuick is a light harness for property tests (no *testing.T).
func runTileQuick(mem *Mem, spec Spec, recs []record.Rec) ([]record.Rec, int64) {
	sys := sim.NewSystem()
	in := sys.NewLink("in", 8, 1)
	out := sys.NewLink("out", 8, 1)
	tile := NewTile(DefaultConfig("q"), mem, spec, in, out, sys.Stats())
	src := &vecSource{out: in, vecs: record.Vectorize(recs)}
	snk := &vecSink{in: out}
	sys.Add(src)
	sys.Add(tile)
	sys.Add(snk)
	cycles, err := sys.Run(5_000_000)
	if err != nil {
		panic(err)
	}
	return snk.recs, cycles
}
