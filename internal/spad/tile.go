package spad

import (
	"fmt"
	"math/bits"

	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// Config sizes one scratchpad stream pipeline.
type Config struct {
	// Name identifies the tile in stats and errors.
	Name string
	// Lanes is the request vector width (default record.NumLanes).
	Lanes int
	// IssueDepth is the per-lane issue queue depth. Aurochs uses 8; the
	// Capstan ablation doubles it to 16 because in-order dequeue cannot
	// free granted slots early (paper §III-B).
	IssueDepth int
	// InOrder selects Capstan's discipline: only the oldest vector's
	// requests bid, and response vectors dequeue in arrival order
	// (head-of-line blocking). Default false = Aurochs reordering.
	InOrder bool
	// ForwardRMW enables the write→read forwarding path that lets
	// back-to-back RMW ops to the same bank issue every cycle. Without
	// it an RMW holds its bank for two cycles.
	ForwardRMW bool
	// AccessLatency is the SRAM pipeline latency in cycles (default 2).
	AccessLatency int
}

func (c *Config) fill() {
	if c.Lanes == 0 {
		c.Lanes = record.NumLanes
	}
	if c.IssueDepth == 0 {
		if c.InOrder {
			c.IssueDepth = 16
		} else {
			c.IssueDepth = 8
		}
	}
	if c.AccessLatency == 0 {
		c.AccessLatency = 2
	}
	if c.Name == "" {
		c.Name = "spad"
	}
}

// DefaultConfig returns the Aurochs-mode configuration from the paper:
// 16 lanes, issue depth 8 (up to 128 requests considered per cycle),
// reordering allocation, RMW forwarding.
func DefaultConfig(name string) Config {
	c := Config{Name: name, ForwardRMW: true}
	c.fill()
	return c
}

type qent struct {
	rec     record.Rec
	addr    uint32
	bank    int
	seq     int64 // arrival vector sequence (in-order mode)
	granted bool  // in-order mode: slot stays occupied until vector dequeue
}

type bankOp struct {
	rec  record.Rec
	resp []uint32
	done int64
	seq  int64
	lane int
}

// Tile is one stream pipeline of a scratchpad: issue queues, allocator,
// banks, and the response compactor that re-vectorizes completed threads.
// It is a sim.Component wired between an input and an output link.
type Tile struct {
	cfg   Config
	mem   *Mem
	spec  Spec // lint:sharedstate-ok — Spec (incl. its schemas) is immutable after construction
	in    *sim.Link
	out   *sim.Link
	stats *sim.Stats

	queues   [][]qent
	bankBusy []int64 // bank free again at this cycle
	// pending is FIFO by completion time: every grant's done stamp is
	// cycle + AccessLatency + busy - 1 with busy fixed per tile config, so
	// later grants never complete earlier and retire can stop at the first
	// unfinished op instead of scanning (and compacting) the whole window.
	pending  ring.Queue[bankOp]
	ready    ring.Queue[record.Rec] // completed threads awaiting output vectorization
	rob      map[int64][]record.Rec
	robFree  [][]record.Rec   // recycled ROB slot slices (in-order mode)
	robLive  map[int64]uint32 // lanes with a retired record per seq
	robCount map[int64]int    // outstanding requests per seq (in-order mode)
	robHead  int64
	seq      int64
	rr       int
	eosIn    bool
	eosSent  bool

	// Allocator acceleration state. The arbitration itself is unchanged —
	// these only let the scan skip banks and lanes that provably hold no
	// bidding request, so the single-cycle matching stays bit-identical
	// while the host cost drops from banks×lanes×depth struct copies to a
	// handful of counter probes.
	banks    int     // t.mem.Banks(), hoisted
	width    int     // t.spec.width(), hoisted
	nq       int     // total occupied issue-queue slots (incl. granted)
	bids     int     // total un-granted slots (active bidders)
	bankBids []int32 // un-granted slots per bank
	laneBids []int32 // un-granted slots per lane×bank, lane*banks+bank
	// Bit-mirrors of the counters above (bit b of bankBidMask set iff
	// bankBids[b] > 0; bit l of laneMask[bank] set iff laneBids[l*banks+bank]
	// > 0). The allocator rotates these by rr and walks set bits with
	// TrailingZeros, which visits exactly the banks/lanes the counter scan
	// would in the same priority order — only the empty probes disappear.
	// Maintained only while banks and Lanes both fit in 64 bits (maskable).
	bankBidMask uint64
	laneMask    []uint64
	maskable    bool
	respFree    [][]uint32

	cGrants, cConf, cReq *sim.Counter
	cDropped, cRespStall *sim.Counter
	cInStall, cOutStall  *sim.Counter
}

// NewTile builds a scratchpad stream pipeline over mem, reading thread
// vectors from in and writing updated thread vectors to out.
func NewTile(cfg Config, mem *Mem, spec Spec, in, out *sim.Link, stats *sim.Stats) *Tile {
	cfg.fill()
	if spec.Addr == nil {
		panic("spad: spec.Addr is required")
	}
	if spec.Op == OpModify {
		if spec.Modify == nil && spec.Combiner != nil {
			// Derive the modify function from the declared combiner so the
			// classified path needs no redundant closure.
			comb, data := spec.Combiner, spec.Data
			spec.Modify = func(cur uint32, r *record.Rec) uint32 {
				var arg uint32
				if data != nil {
					arg = data(r, 0)
				}
				return comb.Fn(cur, arg)
			}
		}
		if spec.Modify == nil {
			panic("spad: spec.Modify or spec.Combiner required for modify op")
		}
	} else if (spec.Op == OpWrite || spec.Op.IsRMW()) && spec.Data == nil {
		panic(fmt.Sprintf("spad: spec.Data required for %s", spec.Op))
	}
	t := &Tile{
		cfg:        cfg,
		mem:        mem,
		spec:       spec,
		in:         in,
		out:        out,
		stats:      stats,
		queues:     make([][]qent, cfg.Lanes),
		bankBusy:   make([]int64, mem.Banks()),
		rob:        make(map[int64][]record.Rec),
		robLive:    make(map[int64]uint32),
		robCount:   make(map[int64]int),
		banks:      mem.Banks(),
		bankBids:   make([]int32, mem.Banks()),
		laneBids:   make([]int32, cfg.Lanes*mem.Banks()),
		laneMask:   make([]uint64, mem.Banks()),
		maskable:   mem.Banks() <= 64 && cfg.Lanes <= 64,
		cGrants:    stats.Counter(cfg.Name + ".grants"),
		cConf:      stats.Counter(cfg.Name + ".conflicts"),
		cReq:       stats.Counter(cfg.Name + ".requests"),
		cDropped:   stats.Counter(cfg.Name + ".dropped"),
		cRespStall: stats.Counter(cfg.Name + ".resp_stall"),
		cInStall:   stats.Counter(cfg.Name + ".in_stall"),
		cOutStall:  stats.Counter(cfg.Name + ".out_stall"),
	}
	t.width = t.spec.width()
	return t
}

// Name implements sim.Component.
func (t *Tile) Name() string { return t.cfg.Name }

// InputLinks implements sim.InputPorts.
func (t *Tile) InputLinks() []*sim.Link { return []*sim.Link{t.in} }

// OutputLinks implements sim.OutputPorts.
func (t *Tile) OutputLinks() []*sim.Link { return []*sim.Link{t.out} }

// InputSchemas implements sim.TypedPorts from the Spec's In declaration.
func (t *Tile) InputSchemas() []*record.Schema {
	if t.spec.In == nil {
		return nil
	}
	return []*record.Schema{t.spec.In}
}

// OutputSchemas implements sim.TypedPorts from the Spec's Out declaration.
func (t *Tile) OutputSchemas() []*record.Schema {
	if t.spec.Out == nil {
		return nil
	}
	return []*record.Schema{t.spec.Out}
}

// Reordering implements sim.ReorderSemantics: the stream's class comes from
// its Spec, and the pipeline reorders thread responses exactly when it is
// not configured for Capstan's in-order dequeue.
func (t *Tile) Reordering() sim.ReorderDecl { return t.spec.Decl(!t.cfg.InOrder) }

// ResidentBound bounds the thread records simultaneously buffered inside
// the tile, for the token-flow prover's occupancy accounting: the issue
// queues (Lanes × IssueDepth slots) plus the response-side window, which
// Tick's admission gate holds under 4×Lanes ready-or-pending responses.
func (t *Tile) ResidentBound() int {
	return t.cfg.Lanes*t.cfg.IssueDepth + 4*t.cfg.Lanes
}

// LossyDecl exposes the stream's declared drop behaviour (Spec.Lossy and
// its waiver) to the token-flow prover.
func (t *Tile) LossyDecl() (lossy bool, waiver string) {
	return t.spec.Lossy, t.spec.LossyWaiver
}

// Done implements sim.Component.
func (t *Tile) Done() bool { return t.eosSent }

// Idle implements sim.Idler: the pipeline is quiescent when nothing is
// queued, pending, or ready, no input is poppable, and EOS (if due) has
// been sent.
func (t *Tile) Idle(int64) bool {
	if t.pending.Len() > 0 || t.ready.Len() > 0 || t.nq > 0 {
		return false
	}
	if t.cfg.InOrder && t.robHead < t.seq {
		return false
	}
	if !t.eosIn && !t.in.Empty() {
		return false
	}
	if t.eosIn && !t.eosSent {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: tiles mutate their backing Mem
// at grant time, and several tiles may share one Mem.
func (t *Tile) SharedState() []any { return []any{t.mem} }

// WakeHint implements sim.WakeHinter: Idle reports non-idle whenever any
// operation is queued, pending, or ready, so a sleeping tile holds no
// maturing state — only a link flit can produce work.
func (t *Tile) WakeHint(int64) int64 { return sim.WakeNever }

// WorstCaseInternalLatency implements sim.LatencyBound: a full set of
// issue queues drains through the banks in at most depth×lanes grants,
// each completing AccessLatency+width cycles later.
func (t *Tile) WorstCaseInternalLatency() int64 {
	return int64(t.cfg.IssueDepth*t.cfg.Lanes) + int64(t.cfg.AccessLatency) + int64(t.spec.width()) + 64
}

// Tick implements sim.Component: retire, allocate, emit, accept.
func (t *Tile) Tick(cycle int64) {
	t.retire(cycle)
	t.allocate(cycle)
	t.emit(cycle)
	t.accept(cycle)
	t.finishEOS(cycle)
}

// retire completes bank operations whose latency elapsed and applies the
// response to the thread record. pending is FIFO by done (see field doc),
// so the loop stops at the first unfinished op.
func (t *Tile) retire(cycle int64) {
	for t.pending.Len() > 0 {
		op := t.pending.Front()
		if op.done > cycle {
			return
		}
		keep := true
		if t.spec.Apply != nil {
			keep = t.spec.Apply(&op.rec, op.resp)
		}
		if op.resp != nil {
			// Apply may not retain resp (see Spec.Apply); recycle the buffer.
			t.respFree = append(t.respFree, op.resp) // lint:hotalloc-ok freelist bounded by pipeline population
			op.resp = nil
		}
		if !keep {
			t.cDropped.Add(1)
			t.retireSeq(op.seq)
			t.pending.Drop()
			continue
		}
		if t.cfg.InOrder {
			// Reassemble the vector in lane order: Capstan preserves
			// stream order exactly.
			slots := t.rob[op.seq]
			if slots == nil {
				if n := len(t.robFree); n > 0 {
					// Reuse a slice released by emitInOrder: the ROB
					// population is bounded, so the freelist covers
					// steady state without fresh allocation.
					slots = t.robFree[n-1]
					t.robFree = t.robFree[:n-1]
					clear(slots)
				} else {
					slots = make([]record.Rec, t.cfg.Lanes) // lint:hotalloc-ok freelist warmup, bounded by the in-flight window
				}
			}
			slots[op.lane] = op.rec
			// The reorder window is bounded by issue-queue backpressure, so
			// the maps' bucket arrays stop growing once it is covered.
			t.rob[op.seq] = slots                   // lint:hotalloc-ok bounded reorder window, buckets reused after delete
			t.robLive[op.seq] |= 1 << uint(op.lane) // lint:hotalloc-ok bounded reorder window, buckets reused after delete
			t.retireSeq(op.seq)
		} else {
			// Ring capacity is bounded by the response-side backpressure in
			// allocate, so the backing array stops growing at steady state.
			*t.ready.PushRefDirty() = op.rec // lint:hotalloc-ok bounded by backpressure, ring reuses its array
		}
		t.pending.Drop()
	}
}

func (t *Tile) retireSeq(seq int64) {
	if !t.cfg.InOrder {
		return
	}
	t.robCount[seq]--
}

// allocate is the single-cycle lane↔bank matching (paper fig. 2b): every
// valid issue-queue slot bids for its bank; each bank grants at most one
// request and each lane issues at most one. Granted slots are invalidated
// immediately in Aurochs mode, freeing the slot for a new thread.
func (t *Tile) allocate(cycle int64) {
	if t.ready.Len()+t.pending.Len() >= 4*t.cfg.Lanes {
		// Response-side backpressure: stop granting when the output
		// compactor is saturated so the pipeline stays bounded.
		t.cRespStall.Add(1)
		return
	}
	granted := 0
	if t.bids > 0 && t.maskable {
		// Greedy maximal matching (paper fig. 2b) over the bid masks: visit
		// banks with live bids in rotated order (b+rr)&(banks-1), and for
		// each, the first non-issued lane with a live bid for it in rotated
		// order (l+rr)%Lanes. Rotating the mask by rr and taking set bits in
		// ascending position reproduces those sequences exactly, so the
		// grant order — and therefore all simulated state — is unchanged.
		var issued uint64
		br := t.rr & (t.banks - 1)
		bm := (t.bankBidMask>>uint(br) | t.bankBidMask<<uint(t.banks-br)) & (uint64(1)<<uint(t.banks) - 1)
		lmod := t.cfg.Lanes
		lr := t.rr % lmod
		lfull := uint64(1)<<uint(lmod) - 1
		for bm != 0 {
			p := bits.TrailingZeros64(bm)
			bm &= bm - 1
			bank := (p + br) & (t.banks - 1)
			if t.bankBusy[bank] > cycle {
				continue
			}
			lm := t.laneMask[bank] &^ issued
			if lm == 0 {
				continue
			}
			lrot := (lm>>uint(lr) | lm<<uint(lmod-lr)) & lfull
			lane := bits.TrailingZeros64(lrot) + lr
			if lane >= lmod {
				lane -= lmod
			}
			// FIFO scan order gives priority to older requests, matching
			// Capstan's age-based allocation rounds. A matching un-granted
			// slot must exist: laneBids[lane][bank] > 0.
			q := t.queues[lane]
			for si := range q {
				e := &q[si]
				if e.granted || e.bank != bank {
					continue
				}
				t.grant(cycle, lane, si)
				issued |= uint64(1) << uint(lane)
				granted++
				break
			}
		}
	} else if t.bids > 0 {
		// Reference scan for degenerate geometries (>64 banks or lanes).
		issued := make([]bool, t.cfg.Lanes) // lint:hotalloc-ok cold fallback path, never taken at default geometry
		for b := 0; b < t.banks; b++ {
			bank := (b + t.rr) & (t.banks - 1)
			if t.bankBids[bank] == 0 || t.bankBusy[bank] > cycle {
				continue
			}
			for l := 0; l < t.cfg.Lanes; l++ {
				lane := (l + t.rr) % t.cfg.Lanes
				if issued[lane] || t.laneBids[lane*t.banks+bank] == 0 {
					continue
				}
				q := t.queues[lane]
				for si := range q {
					e := &q[si]
					if e.granted || e.bank != bank {
						continue
					}
					t.grant(cycle, lane, si)
					issued[lane] = true
					granted++
					break
				}
				break
			}
		}
	}
	t.rr++
	if granted > 0 {
		t.cGrants.Add(int64(granted))
	}
	// Conflicts: requests that wanted service this cycle but were not
	// granted (a direct proxy for bank-conflict serialization).
	if t.nq > granted {
		t.cConf.Add(int64(t.nq - granted))
	}
}

// grant executes queue slot si of lane and schedules its retirement.
// Memory state mutates at grant time, which is what serializes same-address
// atomics (same address ⇒ same bank ⇒ at most one grant per cycle).
//
// In Aurochs mode the slot is invalidated immediately — the property that
// halves the required queue depth. In Capstan (in-order) mode the slot
// stays occupied until its whole vector dequeues.
func (t *Tile) grant(cycle int64, lane, si int) {
	e := &t.queues[lane][si]
	bank := e.bank
	t.bids--
	if t.bankBids[bank]--; t.bankBids[bank] == 0 {
		t.bankBidMask &^= uint64(1) << uint(bank)
	}
	if t.laneBids[lane*t.banks+bank]--; t.laneBids[lane*t.banks+bank] == 0 {
		t.laneMask[bank] &^= uint64(1) << uint(lane)
	}

	w := t.width
	var resp []uint32
	switch t.spec.Op {
	case OpRead:
		resp = t.respBuf(w)
		for i := 0; i < w; i++ {
			resp[i] = t.mem.Read(e.addr + uint32(i))
		}
	case OpWrite:
		for i := 0; i < w; i++ {
			t.mem.Write(e.addr+uint32(i), t.spec.Data(&e.rec, i))
		}
	case OpCAS:
		cur := t.mem.Read(e.addr)
		if cur == t.spec.Data(&e.rec, 0) {
			t.mem.Write(e.addr, t.spec.Data(&e.rec, 1))
		}
		resp = t.respBuf(1)
		resp[0] = cur
	case OpFAA:
		cur := t.mem.Read(e.addr)
		t.mem.Write(e.addr, cur+t.spec.Data(&e.rec, 0))
		resp = t.respBuf(1)
		resp[0] = cur
	case OpXCHG:
		cur := t.mem.Read(e.addr)
		t.mem.Write(e.addr, t.spec.Data(&e.rec, 0))
		resp = t.respBuf(1)
		resp[0] = cur
	case OpModify:
		cur := t.mem.Read(e.addr)
		t.mem.Write(e.addr, t.spec.Modify(cur, &e.rec))
		resp = t.respBuf(1)
		resp[0] = cur
	}

	// Bank occupancy: a width-w access streams w fields through the bank;
	// an RMW occupies its bank for two stages unless the forwarding path
	// lets the next RMW issue back-to-back.
	busy := int64(w)
	if t.spec.Op.IsRMW() && !t.cfg.ForwardRMW {
		busy = 2
	}
	t.bankBusy[bank] = cycle + busy
	// Grows to the bounded in-flight population once; the ring reuses its
	// backing array at steady state.
	op := t.pending.PushRefDirty() // lint:hotalloc-ok bounded in-flight ops, ring reuses its array
	op.rec = e.rec
	op.resp = resp
	op.done = cycle + int64(t.cfg.AccessLatency) + busy - 1
	op.seq = e.seq
	op.lane = lane

	if t.cfg.InOrder {
		e.granted = true
	} else {
		t.queues[lane] = append(t.queues[lane][:si], t.queues[lane][si+1:]...)
		t.nq--
	}
}

// respBuf hands out a response buffer from the retire-side freelist,
// allocating only until the pipeline's steady-state population is covered.
func (t *Tile) respBuf(w int) []uint32 {
	if n := len(t.respFree); n > 0 {
		b := t.respFree[n-1]
		t.respFree = t.respFree[:n-1]
		if cap(b) >= w {
			return b[:w]
		}
	}
	return make([]uint32, w) // lint:hotalloc-ok freelist warmup, bounded by steady-state population
}

// emit vectorizes completed threads and pushes at most one dense vector per
// cycle downstream.
func (t *Tile) emit(cycle int64) {
	if !t.out.CanPush() {
		t.cOutStall.Add(1)
		return
	}
	if t.cfg.InOrder {
		t.emitInOrder(cycle)
		return
	}
	n := t.ready.Len()
	if n == 0 {
		return
	}
	if n > record.NumLanes {
		n = record.NumLanes
	}
	v := t.out.StageVec(cycle)
	for i := 0; i < n; i++ {
		*v.PushRef() = *t.ready.Front()
		t.ready.Drop()
	}
}

// emitInOrder releases the oldest vector only once all of its requests have
// retired — Capstan's head-of-line-blocking dequeue.
func (t *Tile) emitInOrder(cycle int64) {
	if t.robHead >= t.seq {
		return
	}
	if t.robCount[t.robHead] != 0 {
		return // straggler request still outstanding
	}
	slots := t.rob[t.robHead]
	live := t.robLive[t.robHead]
	var v record.Vector
	for lane := 0; lane < t.cfg.Lanes; lane++ {
		if live&(1<<uint(lane)) != 0 {
			v.Push(slots[lane])
		}
	}
	if slots != nil {
		t.robFree = append(t.robFree, slots) // lint:hotalloc-ok freelist growth bounded by the in-flight window
	}
	delete(t.rob, t.robHead)
	delete(t.robCount, t.robHead)
	delete(t.robLive, t.robHead)
	// Vector dequeue frees this vector's issue-queue slots — the point
	// where Capstan reclaims space that Aurochs reclaimed at grant time.
	for lane := range t.queues {
		q := t.queues[lane]
		n := 0
		for i := range q {
			if q[i].seq != t.robHead {
				if n != i {
					q[n] = q[i]
				}
				n++
			} else {
				t.nq-- // dequeued slots were all granted; bid counts unaffected
			}
		}
		t.queues[lane] = q[:n]
	}
	t.robHead++
	if v.Count() > 0 {
		t.out.Push(cycle, sim.Flit{Vec: v})
	}
}

// accept pops an input vector when every valid lane has queue space.
func (t *Tile) accept(cycle int64) {
	if t.eosIn || t.in.Empty() {
		return
	}
	f := t.in.Peek()
	if f.EOS {
		t.in.Drop()
		t.eosIn = true
		return
	}
	for i := 0; i < record.NumLanes; i++ {
		if f.Vec.Valid(i) && len(t.queues[i%t.cfg.Lanes]) >= t.cfg.IssueDepth {
			t.cInStall.Add(1)
			return
		}
	}
	t.in.Drop()
	seq := t.seq
	t.seq++
	count := 0
	for i := 0; i < record.NumLanes; i++ {
		if !f.Vec.Valid(i) {
			continue
		}
		addr := t.spec.Addr(&f.Vec.Lane[i])
		if int(addr)+t.width > t.mem.Words() {
			panic(fmt.Sprintf("%s: address %d+%d out of range (%d words)", t.cfg.Name, addr, t.width, t.mem.Words()))
		}
		lane := i % t.cfg.Lanes
		bank := t.mem.Bank(addr)
		q := append(t.queues[lane], qent{}) // lint:hotalloc-ok bounded by IssueDepth backpressure in the loop above
		e := &q[len(q)-1]
		e.rec = f.Vec.Lane[i]
		e.addr = addr
		e.bank = bank
		e.seq = seq
		t.queues[lane] = q
		t.nq++
		t.bids++
		if t.bankBids[bank]++; t.bankBids[bank] == 1 {
			t.bankBidMask |= uint64(1) << uint(bank)
		}
		if t.laneBids[lane*t.banks+bank]++; t.laneBids[lane*t.banks+bank] == 1 {
			t.laneMask[bank] |= uint64(1) << uint(lane)
		}
		count++
	}
	if t.cfg.InOrder {
		t.robCount[seq] = count // lint:hotalloc-ok bounded reorder window, buckets reused after delete
	}
	t.cReq.Add(int64(count))
}

// finishEOS forwards end-of-stream once the pipeline has fully drained.
func (t *Tile) finishEOS(cycle int64) {
	if t.eosSent || !t.eosIn {
		return
	}
	if t.nq > 0 || t.pending.Len() > 0 || t.ready.Len() > 0 {
		return
	}
	if t.cfg.InOrder && t.robHead < t.seq {
		return
	}
	if !t.out.CanPush() {
		return
	}
	t.out.Push(cycle, sim.Flit{EOS: true})
	t.eosSent = true
}
