package spad

import "aurochs/internal/record"

// Op selects the operation a scratchpad stream performs. Each of the two
// streams of a scratchpad is statically configured as a read, write, or
// read-modify-write stream (paper §III-B).
type Op uint8

const (
	// OpRead gathers Width words starting at the request address.
	OpRead Op = iota
	// OpWrite scatters Width words starting at the request address.
	OpWrite
	// OpCAS atomically compares word[addr] with the expected value and
	// stores the new value on match; the response carries the observed
	// value. Width is implicitly 1.
	OpCAS
	// OpFAA atomically fetches word[addr] and adds a delta; the response
	// carries the pre-add value. Width is implicitly 1.
	OpFAA
	// OpXCHG atomically exchanges word[addr] with the supplied value; the
	// response carries the previous value. Width is implicitly 1.
	OpXCHG
	// OpModify atomically applies the Spec's Modify combiner to word[addr];
	// the response carries the pre-modify value. Width is implicitly 1.
	// This models the small RMW ALU in the scratchpad's fused read-modify-
	// write pipeline (saturating counters, min/max, etc.).
	OpModify
)

// String names the op for stats and errors.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpFAA:
		return "faa"
	case OpXCHG:
		return "xchg"
	case OpModify:
		return "modify"
	}
	return "op?"
}

// IsRMW reports whether the op uses the fused read-modify-write pipeline.
func (o Op) IsRMW() bool {
	return o == OpCAS || o == OpFAA || o == OpXCHG || o == OpModify
}

// Spec is the static reconfiguration of one scratchpad stream: how a thread
// record encodes its request, and how the response mutates the thread. The
// closures are fixed at graph-construction time — the software analogue of
// reconfiguring the tile before a kernel runs — and must be pure functions
// of the record (plus the memory response).
type Spec struct {
	// Op is the stream's operation.
	Op Op
	// Width is the words accessed per request for OpRead/OpWrite.
	// RMW ops always access one word.
	Width int
	// Addr extracts the word address from a thread record.
	Addr func(record.Rec) uint32
	// Data supplies write data word i (0 <= i < Width) for OpWrite.
	// For OpCAS, Data(r, 0) is the expected old value and Data(r, 1) the
	// new value. For OpFAA it is the delta; for OpXCHG the new value.
	Data func(record.Rec, int) uint32
	// Modify is the combiner for OpModify: it receives the current memory
	// word and the thread record and returns the value to store.
	Modify func(cur uint32, r record.Rec) uint32
	// Apply merges the response into the thread record and returns the
	// updated thread. resp holds Width words for OpRead and one word (the
	// pre-op value) for RMW ops; it is nil for OpWrite. Returning keep ==
	// false drops the thread (rarely used; filtering normally happens in
	// compute tiles).
	Apply func(r record.Rec, resp []uint32) (out record.Rec, keep bool)
}

// width returns the effective words accessed.
func (s *Spec) width() int {
	if s.Op.IsRMW() {
		return 1
	}
	if s.Width <= 0 {
		return 1
	}
	return s.Width
}
