package spad

import (
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// Op selects the operation a scratchpad stream performs. Each of the two
// streams of a scratchpad is statically configured as a read, write, or
// read-modify-write stream (paper §III-B).
type Op uint8

const (
	// OpRead gathers Width words starting at the request address.
	OpRead Op = iota
	// OpWrite scatters Width words starting at the request address.
	OpWrite
	// OpCAS atomically compares word[addr] with the expected value and
	// stores the new value on match; the response carries the observed
	// value. Width is implicitly 1.
	OpCAS
	// OpFAA atomically fetches word[addr] and adds a delta; the response
	// carries the pre-add value. Width is implicitly 1.
	OpFAA
	// OpXCHG atomically exchanges word[addr] with the supplied value; the
	// response carries the previous value. Width is implicitly 1.
	OpXCHG
	// OpModify atomically applies the Spec's Modify combiner to word[addr];
	// the response carries the pre-modify value. Width is implicitly 1.
	// This models the small RMW ALU in the scratchpad's fused read-modify-
	// write pipeline (saturating counters, min/max, etc.).
	OpModify
)

// String names the op for stats and errors.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpFAA:
		return "faa"
	case OpXCHG:
		return "xchg"
	case OpModify:
		return "modify"
	}
	return "op?"
}

// IsRMW reports whether the op uses the fused read-modify-write pipeline.
func (o Op) IsRMW() bool {
	return o == OpCAS || o == OpFAA || o == OpXCHG || o == OpModify
}

// Commutativity classifies the op for the reorder-safety prover: does the
// final memory state depend on the order in which threads reach the bank?
// The paper's undefined-thread-order contract (§II) is sound exactly when
// every cross-thread update lands in one of the order-insensitive classes.
//
//	read    pure             no memory effect at all
//	faa     commutative      a+b+c sums the same in any order (responses —
//	                         the observed pre-add values — do differ per
//	                         interleaving, but their multiset is fixed)
//	write   order-dependent  last writer wins
//	cas     order-dependent  success depends on the observed value
//	xchg    order-dependent  both the stored and returned values do
//	modify  order-dependent  unknown combiner; a Spec can upgrade it by
//	                         declaring a Combiner with a stronger class
//
// This is the op's intrinsic class; Spec.EffectiveClass refines it with
// per-stream knowledge (a declared Combiner, provably disjoint addresses).
func (o Op) Commutativity() sim.ReorderClass {
	switch o {
	case OpRead:
		return sim.ReorderPure
	case OpFAA:
		return sim.ReorderCommutative
	default:
		return sim.ReorderOrderDependent
	}
}

// CombineFn is a named, classified combiner for OpModify streams. Declaring
// one (instead of a bare Modify closure) is what lets the static orderdep
// analyzer and the graph prover accept the stream: the Class field is the
// stream author's machine-checked claim about the combiner's algebra.
type CombineFn struct {
	// Name identifies the combiner in diagnostics ("add", "min", ...).
	Name string
	// Class is the combiner's reorder class. Shipped combiners are
	// commutative or idempotent; a kernel may construct its own (e.g. a
	// saturating counter) and vouch for its class.
	Class sim.ReorderClass
	// Fn folds one thread's argument into the current memory word.
	Fn func(cur, arg uint32) uint32
}

// Shipped combiners, covering the paper's RMW ALU menu (§III-B). min/max/or
// are idempotent — replaying an update cannot move the fixed point — which
// is strictly stronger than add's plain commutativity.
var (
	CombineAdd = &CombineFn{Name: "add", Class: sim.ReorderCommutative,
		Fn: func(cur, arg uint32) uint32 { return cur + arg }}
	CombineMin = &CombineFn{Name: "min", Class: sim.ReorderIdempotent,
		Fn: func(cur, arg uint32) uint32 {
			if arg < cur {
				return arg
			}
			return cur
		}}
	CombineMax = &CombineFn{Name: "max", Class: sim.ReorderIdempotent,
		Fn: func(cur, arg uint32) uint32 {
			if arg > cur {
				return arg
			}
			return cur
		}}
	CombineOr = &CombineFn{Name: "or", Class: sim.ReorderIdempotent,
		Fn: func(cur, arg uint32) uint32 { return cur | arg }}
)

// Spec is the static reconfiguration of one scratchpad stream: how a thread
// record encodes its request, and how the response mutates the thread. The
// closures are fixed at graph-construction time — the software analogue of
// reconfiguring the tile before a kernel runs — and must be pure functions
// of the record (plus the memory response).
type Spec struct {
	// Op is the stream's operation.
	Op Op
	// Width is the words accessed per request for OpRead/OpWrite.
	// RMW ops always access one word.
	Width int
	// Addr extracts the word address from a thread record. The record is
	// passed by pointer purely to avoid a copy per call on the request hot
	// path; Addr must not mutate it.
	Addr func(r *record.Rec) uint32
	// Data supplies write data word i (0 <= i < Width) for OpWrite.
	// For OpCAS, Data(r, 0) is the expected old value and Data(r, 1) the
	// new value. For OpFAA it is the delta; for OpXCHG the new value.
	// Like Addr, Data must not mutate the record.
	Data func(r *record.Rec, i int) uint32
	// Modify is the combiner for OpModify: it receives the current memory
	// word and the thread record and returns the value to store. It must
	// not mutate the record.
	Modify func(cur uint32, r *record.Rec) uint32
	// Apply merges the response into the thread record, mutating it in
	// place. resp holds Width words for OpRead and one word (the pre-op
	// value) for RMW ops; it is nil for OpWrite. resp is only valid for the
	// duration of the call — the tile recycles the buffer after Apply
	// returns, so copy values out rather than retaining the slice.
	// Returning keep == false drops the thread (rarely used; filtering
	// normally happens in compute tiles).
	Apply func(r *record.Rec, resp []uint32) (keep bool)

	// In, when set, declares the schema of thread records this stream
	// consumes; Out the schema it produces (often wider, when Apply stamps
	// the response into a new field). Either may be nil to leave that side
	// untyped. The owning Tile exposes them through sim.TypedPorts.
	In *record.Schema
	// Out: see In.
	Out *record.Schema

	// Combiner classifies an OpModify stream for the reorder-safety
	// prover. When set and Modify is nil, the tile derives the modify
	// function as Combiner.Fn(cur, Data(r, 0)) (arg 0 when Data is nil).
	Combiner *CombineFn
	// DisjointAddrs asserts that no two in-flight threads address the same
	// word (e.g. each thread writes its own ticketed slot). It lifts an
	// order-dependent op to commutative for the prover: updates that never
	// collide cannot observe each other's order. The assertion is the
	// kernel author's to make — it is stated here so it is auditable in
	// one place and visible to the static analyzer.
	DisjointAddrs bool
	// OrderWaiver accepts a genuinely order-dependent stream with a
	// human-written justification (the Spec-level analogue of a
	// lint:orderdep-ok comment). Waived streams surface in
	// ProofReport.Waived rather than failing the reorder-safety proof.
	OrderWaiver string
	// Lossy declares that Apply may return keep == false, dropping the
	// thread. The token-flow prover must know: a drop inside a cyclic
	// pipeline is an exit the loop control never counts, so the loop can
	// never prove itself drained. Streams that keep every thread (the
	// overwhelming default) leave this false; the declaration is the
	// author's, mirroring DisjointAddrs.
	Lossy bool
	// LossyWaiver justifies Lossy on a cyclic path (e.g. "drops are
	// re-driven by the retry filter"); non-empty turns the prover's
	// finding into a waived, auditable fact.
	LossyWaiver string
}

// EffectiveClass is the stream's reorder class after applying per-stream
// refinements to the op's intrinsic class: a declared Combiner overrides
// OpModify's unknown-combiner pessimism, and DisjointAddrs lifts an
// order-dependent op to commutative (non-colliding updates cannot observe
// each other's order).
func (s *Spec) EffectiveClass() sim.ReorderClass {
	c := s.Op.Commutativity()
	if s.Op == OpModify && s.Combiner != nil {
		c = s.Combiner.Class
	}
	if c == sim.ReorderOrderDependent && s.DisjointAddrs {
		c = sim.ReorderCommutative
	}
	return c
}

// Decl builds the stream's reorder-safety declaration; reorders reports
// whether the owning pipeline may emit responses out of thread order.
func (s *Spec) Decl(reorders bool) sim.ReorderDecl {
	detail := s.Op.String()
	if s.Op == OpModify && s.Combiner != nil {
		detail += "(" + s.Combiner.Name + ")"
	}
	if s.DisjointAddrs {
		detail += "(disjoint addrs)"
	}
	return sim.ReorderDecl{
		Class:    s.EffectiveClass(),
		Reorders: reorders,
		Detail:   detail,
		Waiver:   s.OrderWaiver,
	}
}

// width returns the effective words accessed.
func (s *Spec) width() int {
	if s.Op.IsRMW() {
		return 1
	}
	if s.Width <= 0 {
		return 1
	}
	return s.Width
}
