package spad

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// This file is the dynamic half of the reorder-safety contract: for every
// RMW the static prover classifies as order-insensitive (OpFAA, and
// OpModify through each shipped CombineFn), running the same workload
// through the reordering pipeline and through Capstan's in-order dequeue
// discipline must produce (a) bit-identical final memory and (b) output
// records that are a permutation of each other. The one op whose *response*
// multiset must additionally be bit-identical is OpFAA with unit deltas:
// its observed pre-add values are exactly the dense ticket set {0..c-1}
// per address under every interleaving (see TestPropertyFAAResponsesOrderFree).

// runTileCfg runs one workload through a tile under an explicit Config —
// the property-test twin of runTileQuick with the discipline selectable.
func runTileCfg(cfg Config, mem *Mem, spec Spec, recs []record.Rec) []record.Rec {
	sys := sim.NewSystem()
	in := sys.NewLink("in", 8, 1)
	out := sys.NewLink("out", 8, 1)
	tile := NewTile(cfg, mem, spec, in, out, sys.Stats())
	src := &vecSource{out: in, vecs: record.Vectorize(recs)}
	snk := &vecSink{in: out}
	sys.Add(src)
	sys.Add(tile)
	sys.Add(snk)
	if _, err := sys.Run(5_000_000); err != nil {
		panic(err)
	}
	return snk.recs
}

// recKey folds a whole record into a comparable multiset key.
func recKey(r record.Rec) string {
	k := ""
	for i := 0; i < r.Len(); i++ {
		k += fmt.Sprintf("%d,", r.Get(i))
	}
	return k
}

// multiset counts records by full field image.
func multiset(recs []record.Rec) map[string]int {
	m := make(map[string]int, len(recs))
	for _, r := range recs {
		m[recKey(r)]++
	}
	return m
}

func sameMultiset(a, b []record.Rec) bool {
	if len(a) != len(b) {
		return false
	}
	ma, mb := multiset(a), multiset(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, n := range ma {
		if mb[k] != n {
			return false
		}
	}
	return true
}

// runBoth pushes identical record sets through a reordering tile and an
// in-order tile over identically initialized memories and returns both
// outputs plus both final memory images.
func runBoth(spec func() Spec, recs []record.Rec, fill uint32) (outR, outI []record.Rec, memR, memI []uint32) {
	cp := append([]record.Rec(nil), recs...)
	mR := NewMem(16, 64, 0)
	mR.Fill(fill)
	mI := NewMem(16, 64, 0)
	mI.Fill(fill)
	outR = runTileCfg(Config{Name: "reorder", ForwardRMW: true}, mR, spec(), recs)
	outI = runTileCfg(Config{Name: "inorder", InOrder: true, ForwardRMW: true}, mI, spec(), cp)
	memR = mR.Snapshot(0, mR.Words())
	memI = mI.Snapshot(0, mI.Words())
	return
}

// conflictRecs generates a workload skewed onto a handful of addresses so
// bank conflicts force genuine reordering: (addr, arg, id) triples where id
// makes every record distinct and the permutation check meaningful.
func conflictRecs(rng *rand.Rand, n int) []record.Rec {
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(uint32(rng.Intn(8)), rng.Uint32(), uint32(i))
	}
	return recs
}

// TestPropertyCommutativeOpsReorderSafe: every op class the prover accepts
// as reorder-safe really is — same final memory bits, and the reordered
// output stream is a permutation of the in-order one. FAA's responses are
// deliberately not attached here (they are order-sensitive per thread for
// non-unit deltas even though their fold commutes); the response-level
// guarantee is pinned separately below.
func TestPropertyCommutativeOpsReorderSafe(t *testing.T) {
	keep := func(*record.Rec, []uint32) bool { return true }
	addr := func(r *record.Rec) uint32 { return r.Get(0) }
	arg := func(r *record.Rec, _ int) uint32 { return r.Get(1) }
	cases := []struct {
		name string
		fill uint32 // initial memory image; min needs a high floor to move
		spec func() Spec
	}{
		{"faa", 0, func() Spec {
			return Spec{Op: OpFAA, Addr: addr, Data: arg, Apply: keep}
		}},
		{"modify-add", 0, func() Spec {
			return Spec{Op: OpModify, Addr: addr, Data: arg, Combiner: CombineAdd, Apply: keep}
		}},
		{"modify-min", ^uint32(0), func() Spec {
			return Spec{Op: OpModify, Addr: addr, Data: arg, Combiner: CombineMin, Apply: keep}
		}},
		{"modify-max", 0, func() Spec {
			return Spec{Op: OpModify, Addr: addr, Data: arg, Combiner: CombineMax, Apply: keep}
		}},
		{"modify-or", 0, func() Spec {
			return Spec{Op: OpModify, Addr: addr, Data: arg, Combiner: CombineOr, Apply: keep}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := &quick.Config{MaxCount: 6}
			if err := quick.Check(func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				recs := conflictRecs(rng, rng.Intn(300)+64)
				outR, outI, memR, memI := runBoth(tc.spec, recs, tc.fill)
				if !sameMultiset(outR, outI) {
					return false
				}
				for i := range memR {
					if memR[i] != memI[i] {
						return false
					}
				}
				return true
			}, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPropertyFAAResponsesOrderFree pins the stronger, FAA-only guarantee:
// with unit deltas the observed pre-add values form the dense ticket set
// {0..c-1} at each address, so the (addr, ticket) response multiset is
// bit-identical between the reordering and in-order disciplines — not just
// a permutation. No other op offers this: write/xchg/cas responses and
// even FAA with mixed deltas expose the interleaving.
func TestPropertyFAAResponsesOrderFree(t *testing.T) {
	spec := func() Spec {
		return Spec{
			Op:   OpFAA,
			Addr: func(r *record.Rec) uint32 { return r.Get(0) },
			Data: func(*record.Rec, int) uint32 { return 1 },
			Apply: func(r *record.Rec, resp []uint32) bool {
				// Keep only (addr, ticket): thread identity must not leak
				// into the comparison, since which thread draws which
				// ticket is exactly what reordering changes.
				*r = record.Make(r.Get(0), resp[0])
				return true
			},
		}
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) + 32
		recs := make([]record.Rec, n)
		for i := range recs {
			recs[i] = record.Make(uint32(rng.Intn(6)), 0, uint32(i))
		}
		outR, outI, memR, memI := runBoth(spec, recs, 0)
		if !sameMultiset(outR, outI) {
			return false
		}
		for i := range memR {
			if memR[i] != memI[i] {
				return false
			}
		}
		// Dense tickets: every address that issued c tickets saw exactly
		// {0..c-1}, under both disciplines.
		for _, out := range [][]record.Rec{outR, outI} {
			seen := map[[2]uint32]bool{}
			count := map[uint32]uint32{}
			for _, r := range out {
				seen[[2]uint32{r.Get(0), r.Get(1)}] = true
				count[r.Get(0)]++
			}
			for a, c := range count {
				for tkt := uint32(0); tkt < c; tkt++ {
					if !seen[[2]uint32{a, tkt}] {
						return false
					}
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
