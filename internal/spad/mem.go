// Package spad models Aurochs' scratchpad tile: a banked SRAM with the
// sparse memory reordering pipeline the paper adds to Gorgon (§II-C,
// §III-B). Requests arrive as vectors of thread records, wait in per-lane
// issue queues, bid to a single-cycle lane↔bank allocator, and execute out
// of order; granted requests are invalidated in place so a lane's slot
// frees immediately for a new thread — the property that lets Aurochs'
// queues be half as deep as Capstan's.
//
// The package also retains Capstan's in-order dequeue discipline behind a
// config flag, used by the ablation benchmarks to quantify what thread
// reordering buys.
package spad

import "fmt"

// Mem is the SRAM storage of one scratchpad tile: Banks × BankWords 32-bit
// words. Two Tiles (one per port of the dual-ported SRAM) may share a Mem.
type Mem struct {
	words     []uint32
	banks     int
	bankWords int
	lineShift uint
}

// NewMem allocates a scratchpad of banks × bankWords words. lineShift sets
// the bank interleaving granularity: bank = (addr >> lineShift) % banks.
// Use lineShift = log2(node words) so a multi-word node read stays within
// one bank, matching Gorgon's one-record-per-lane, fields-in-time layout.
func NewMem(banks, bankWords int, lineShift uint) *Mem {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic(fmt.Sprintf("spad: banks must be a power of two, got %d", banks))
	}
	if bankWords <= 0 {
		panic("spad: bankWords must be positive")
	}
	return &Mem{
		words:     make([]uint32, banks*bankWords),
		banks:     banks,
		bankWords: bankWords,
		lineShift: lineShift,
	}
}

// Words returns the total word capacity.
func (m *Mem) Words() int { return len(m.words) }

// Banks returns the bank count.
func (m *Mem) Banks() int { return m.banks }

// Bank maps a word address to its bank.
func (m *Mem) Bank(addr uint32) int {
	return int(addr>>m.lineShift) & (m.banks - 1)
}

// Read returns the word at addr.
func (m *Mem) Read(addr uint32) uint32 {
	return m.words[addr]
}

// Write stores v at addr.
func (m *Mem) Write(addr uint32, v uint32) {
	m.words[addr] = v
}

// Fill sets every word to v (typically 0 or a NIL sentinel).
func (m *Mem) Fill(v uint32) {
	for i := range m.words {
		m.words[i] = v
	}
}

// Load copies data into the scratchpad starting at base.
func (m *Mem) Load(base uint32, data []uint32) {
	copy(m.words[base:], data)
}

// Snapshot copies out n words starting at base (for tests and readback).
func (m *Mem) Snapshot(base uint32, n int) []uint32 {
	out := make([]uint32, n)
	copy(out, m.words[base:int(base)+n])
	return out
}
