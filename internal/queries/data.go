// Package queries implements the paper's ridesharing benchmark (fig. 13,
// table 2): nine end-to-end analytics queries over synthetic geospatial and
// time-series data, each runnable on three engines — the Aurochs fabric
// simulator, the multicore CPU baseline, and the SIMT GPU model — with
// results cross-checked between engines.
package queries

import (
	"math/rand"
)

// Coordinates live on a MaxCoord × MaxCoord meter grid (a ~65 km city);
// times are seconds.
const (
	MaxCoord = 1 << 16
	// KM is 1000 grid units (meters).
	KM = 1000
	// Day in seconds.
	Day = 86400
)

// Scale sets table cardinalities (Table 2's knobs).
type Scale struct {
	Rides        int
	Riders       int
	Drivers      int
	Locations    int
	RideReqs     int
	DriverStatus int
}

// SmallScale keeps cycle simulation fast (tests).
func SmallScale() Scale {
	return Scale{Rides: 20000, Riders: 2000, Drivers: 500, Locations: 64, RideReqs: 2000, DriverStatus: 1500}
}

// BenchScale is the harness default: large enough for asymptotic shape,
// small enough for simulation (the paper notes the same practical limit).
func BenchScale() Scale {
	return Scale{Rides: 200000, Riders: 20000, Drivers: 5000, Locations: 256, RideReqs: 20000, DriverStatus: 15000}
}

// Ride is one completed trip (fact table).
type Ride struct {
	RideID    uint32
	RiderID   uint32
	DriverID  uint32
	StartX    uint32
	StartY    uint32
	StartTime uint32
	Duration  uint32
	Fare      uint32 // cents
}

// Rider is a customer.
type Rider struct {
	RiderID uint32
	Rating  uint32 // 0..500 (hundredths of stars)
}

// Driver is a supply-side participant.
type Driver struct {
	DriverID uint32
	Seats    uint32 // 1..6
	Rating   uint32
}

// Location is a city zone with a bounding rectangle.
type Location struct {
	LocationID             uint32
	MinX, MinY, MaxX, MaxY uint32
}

// RideReq is one streaming ride request.
type RideReq struct {
	ReqID   uint32
	RiderID uint32
	X, Y    uint32
	Time    uint32
	Seats   uint32
}

// DriverStatus is one streaming driver position report.
type DriverStatus struct {
	DriverID uint32
	X, Y     uint32
	Time     uint32
	Free     uint32 // 1 = available
}

// Dataset is a generated workload instance.
type Dataset struct {
	Scale        Scale
	Rides        []Ride
	Riders       []Rider
	Drivers      []Driver
	Locations    []Location
	RideReqs     []RideReq
	DriverStatus []DriverStatus
	// Now is the stream timestamp frontier; historical data reaches back
	// 30+ days from it.
	Now uint32
}

// Generate builds a seeded synthetic dataset. Demand is spatially clustered
// around a handful of hotspots (cities are not uniform), timestamps are
// spread over 35 days with recency bias in the streams — the distributions
// the time-window and geospatial predicates of Q1-Q9 care about.
func Generate(s Scale, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Scale: s, Now: 35 * Day}

	// Hotspots for spatial clustering.
	type spot struct{ x, y, sd float64 }
	spots := make([]spot, 8)
	for i := range spots {
		spots[i] = spot{
			x:  float64(rng.Intn(MaxCoord)),
			y:  float64(rng.Intn(MaxCoord)),
			sd: 2*KM + 6*KM*rng.Float64(),
		}
	}
	point := func() (uint32, uint32) {
		sp := spots[rng.Intn(len(spots))]
		clamp := func(v float64) uint32 {
			if v < 0 {
				return 0
			}
			if v >= MaxCoord {
				return MaxCoord - 1
			}
			return uint32(v)
		}
		return clamp(sp.x + rng.NormFloat64()*sp.sd), clamp(sp.y + rng.NormFloat64()*sp.sd)
	}

	d.Riders = make([]Rider, s.Riders)
	for i := range d.Riders {
		d.Riders[i] = Rider{RiderID: uint32(i), Rating: uint32(300 + rng.Intn(201))}
	}
	d.Drivers = make([]Driver, s.Drivers)
	for i := range d.Drivers {
		d.Drivers[i] = Driver{DriverID: uint32(i), Seats: uint32(1 + rng.Intn(6)), Rating: uint32(300 + rng.Intn(201))}
	}

	// Locations tile the grid coarsely with jittered rectangles.
	d.Locations = make([]Location, s.Locations)
	side := 1
	for side*side < s.Locations {
		side++
	}
	cell := uint32(MaxCoord / side)
	for i := range d.Locations {
		cx := uint32(i%side) * cell
		cy := uint32(i/side) * cell
		d.Locations[i] = Location{
			LocationID: uint32(i),
			MinX:       cx, MinY: cy,
			MaxX: cx + cell - 1, MaxY: cy + cell - 1,
		}
	}

	d.Rides = make([]Ride, s.Rides)
	for i := range d.Rides {
		x, y := point()
		d.Rides[i] = Ride{
			RideID:    uint32(i),
			RiderID:   uint32(rng.Intn(s.Riders)),
			DriverID:  uint32(rng.Intn(s.Drivers)),
			StartX:    x,
			StartY:    y,
			StartTime: uint32(rng.Intn(int(d.Now))),
			Duration:  uint32(300 + rng.Intn(3300)),
			Fare:      uint32(500 + rng.Intn(5000)),
		}
	}

	d.RideReqs = make([]RideReq, s.RideReqs)
	for i := range d.RideReqs {
		x, y := point()
		// Recency bias: most requests in the last day.
		t := d.Now - uint32(rng.ExpFloat64()*float64(Day)/4)
		if t > d.Now {
			t = d.Now
		}
		d.RideReqs[i] = RideReq{
			ReqID:   uint32(i),
			RiderID: uint32(rng.Intn(s.Riders)),
			X:       x, Y: y,
			Time:  t,
			Seats: uint32(1 + rng.Intn(4)),
		}
	}

	d.DriverStatus = make([]DriverStatus, s.DriverStatus)
	for i := range d.DriverStatus {
		x, y := point()
		t := d.Now - uint32(rng.ExpFloat64()*float64(Day)/8)
		if t > d.Now {
			t = d.Now
		}
		free := uint32(0)
		if rng.Float64() < 0.6 {
			free = 1
		}
		d.DriverStatus[i] = DriverStatus{
			DriverID: uint32(rng.Intn(s.Drivers)),
			X:        x, Y: y,
			Time: t,
			Free: free,
		}
	}
	return d
}
