package queries

import (
	"aurochs/internal/baseline/gpu"
	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/index/rtree"
)

// GPUEngine produces functional results with reference algorithms and
// costs them with the SIMT timing model (package gpu): lockstep warps,
// divergence serialization, bandwidth ceilings. The workload statistics
// that drive the model — hash-chain trip counts, tree nodes visited — come
// from the actual data, so warp execution efficiency is an output, not an
// input.
type GPUEngine struct {
	dev gpu.Device
	cpu *CPUEngine // reference algorithms for functional results
	// LastWarpEfficiency exposes the most recent divergent kernel's
	// efficiency (the §III-A profiling claim).
	LastBuildEff float64
	LastProbeEff float64
}

// NewGPU returns the V100-modeled engine.
func NewGPU() *GPUEngine {
	return &GPUEngine{dev: gpu.V100(), cpu: NewCPU()}
}

// Name implements Engine.
func (e *GPUEngine) Name() string { return "gpu" }

// Device exposes the modeled hardware.
func (e *GPUEngine) Device() gpu.Device { return e.dev }

// EquiJoin implements Engine: a chained GPU hash join. Build inserts retry
// CAS against concurrently in-flight inserts to their bucket; probes walk
// their full chain — the two divergence profiles the paper measures.
func (e *GPUEngine) EquiJoin(build, probe []KV) ([]Pair, Cost, error) {
	pairs, _, err := e.cpu.EquiJoin(build, probe)
	if err != nil {
		return nil, Cost{}, err
	}
	buckets := uint32(1)
	for int(buckets) < len(build) {
		buckets <<= 1
	}
	chain := make(map[uint32]int, len(build))
	buildTrips := make([]int, len(build))
	// A CAS prepend retries only against *concurrently in-flight* inserts
	// to its bucket, not the whole chain history — model contention within
	// launch waves of inserts.
	const wave = 256
	for base := 0; base < len(build); base += wave {
		end := base + wave
		if end > len(build) {
			end = len(build)
		}
		inWave := make(map[uint32]int)
		for _, b := range build[base:end] {
			inWave[core.Hash32(b.Key)&(buckets-1)]++
		}
		for i := base; i < end; i++ {
			bkt := core.Hash32(build[i].Key) & (buckets - 1)
			chain[bkt]++
			t := inWave[bkt]
			if t > 8 {
				t = 8
			}
			if t < 1 {
				t = 1
			}
			buildTrips[i] = t
		}
	}
	probeTrips := make([]int, len(probe))
	for i, p := range probe {
		bkt := core.Hash32(p.Key) & (buckets - 1)
		t := chain[bkt]
		if t == 0 {
			t = 1
		}
		probeTrips[i] = t
	}
	b := e.dev.DivergentLoop(buildTrips, 8)
	p := e.dev.DivergentLoop(probeTrips, 8)
	e.LastBuildEff = b.WarpEfficiency
	e.LastProbeEff = p.WarpEfficiency
	out := e.dev.Streaming(int64(len(pairs)) * 12)
	cost := Cost{Seconds: b.Time.Seconds() + p.Time.Seconds() + out.Time.Seconds()}
	return pairs, cost, nil
}

// spatialTrips walks the pre-built R-tree functionally to count the nodes
// each query visits — the divergent trip counts of the GPU tree kernel.
func spatialTrips(points []Point, rects []RectQ) []int {
	h := dram.New(dram.DefaultConfig())
	entries := make([]rtree.Entry, len(points))
	for i, p := range points {
		entries[i] = rtree.Entry{Rect: rtree.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, ID: p.ID}
	}
	tr := rtree.Build(h, 0, entries, MaxCoord)
	trips := make([]int, len(rects))
	for i, q := range rects {
		trips[i] = tr.NodesVisited(rtree.Rect{MinX: q.MinX, MinY: q.MinY, MaxX: q.MaxX, MaxY: q.MaxY})
	}
	return trips
}

// SpatialProbe implements Engine.
func (e *GPUEngine) SpatialProbe(points []Point, queries []CircleQ) ([]SPair, Cost, error) {
	out, _, err := e.cpu.SpatialProbe(points, queries)
	if err != nil {
		return nil, Cost{}, err
	}
	rects := make([]RectQ, len(queries))
	for i, q := range queries {
		rects[i] = circleRect(q)
	}
	k := e.dev.DivergentLoop(spatialTrips(points, rects), rtree.NodeWords*4)
	emit := e.dev.Streaming(int64(len(out)) * 8)
	return out, Cost{Seconds: k.Time.Seconds() + emit.Time.Seconds()}, nil
}

// WindowProbe implements Engine.
func (e *GPUEngine) WindowProbe(points []Point, queries []RectQ) ([]SPair, Cost, error) {
	out, _, err := e.cpu.WindowProbe(points, queries)
	if err != nil {
		return nil, Cost{}, err
	}
	k := e.dev.DivergentLoop(spatialTrips(points, queries), rtree.NodeWords*4)
	emit := e.dev.Streaming(int64(len(out)) * 8)
	return out, Cost{Seconds: k.Time.Seconds() + emit.Time.Seconds()}, nil
}

// TimeRange implements Engine: a binary search plus a dense scan of hits.
func (e *GPUEngine) TimeRange(entries []KV, lo, hi uint32) ([]uint32, Cost, error) {
	out, _, err := e.cpu.TimeRange(entries, lo, hi)
	if err != nil {
		return nil, Cost{}, err
	}
	height := 1
	for n := len(entries); n > 1; n >>= 1 {
		height++
	}
	search := e.dev.DivergentLoop([]int{height}, 8)
	scan := e.dev.Streaming(int64(len(out)) * 8)
	return out, Cost{Seconds: search.Time.Seconds() + scan.Time.Seconds()}, nil
}

// GroupCount implements Engine: global-memory atomics, bandwidth bound.
func (e *GPUEngine) GroupCount(keys []uint32) (map[uint32]int64, Cost, error) {
	out, _, err := e.cpu.GroupCount(keys)
	if err != nil {
		return nil, Cost{}, err
	}
	k := e.dev.Streaming(int64(len(keys)) * 8)
	return out, Cost{Seconds: k.Time.Seconds()}, nil
}

// Sort implements Engine.
func (e *GPUEngine) Sort(n int, rowBytes int) (Cost, error) {
	return Cost{Seconds: e.dev.Sort(int64(n), rowBytes).Time.Seconds()}, nil
}

// Predict implements Engine: dense GEMV-like inference, bandwidth bound on
// feature reads.
func (e *GPUEngine) Predict(n int, flops int) (Cost, error) {
	bytes := int64(n) * int64(flops) * 2 // ~4 B per 2 flops
	return Cost{Seconds: e.dev.Streaming(bytes).Time.Seconds()}, nil
}
