package queries

import (
	"fmt"
	"sort"

	"aurochs/internal/ml"
)

// The nine ridesharing queries of fig. 13, planned over the Engine
// operators. Each returns a QueryResult whose fingerprint is engine-
// independent; the integration tests run every query on all three engines
// and require identical fingerprints.

// Query is one benchmark query.
type Query struct {
	Name string
	Desc string
	Run  func(e Engine, d *Dataset) (QueryResult, error)
}

// All returns the benchmark set in order.
func All() []Query {
	return []Query{
		{"q1", "available drivers within 1 km of each recent request, seat-matched, per driver", Q1},
		{"q2", "ride demand in one zone per 10-minute interval, ordered", Q2},
		{"q3", "last-minute demand per zone, ordered by count", Q3},
		{"q4", "recent rider activity in one zone with per-rider aggregates", Q4},
		{"q5", "windowed driver telemetry features + linear model score", Q5},
		{"q6", "demand/supply imbalance per zone + surge model", Q6},
		{"q7", "30-day rider history features + logistic churn model", Q7},
		{"q8", "zone rider segmentation via k-means over ride aggregates", Q8},
		{"q9", "nearest 100 available drivers to one request, by distance", Q9},
	}
}

// statusPoints converts driver status reports to spatial points (ID =
// row index).
func statusPoints(d *Dataset) []Point {
	pts := make([]Point, len(d.DriverStatus))
	for i, s := range d.DriverStatus {
		pts[i] = Point{X: s.X, Y: s.Y, ID: uint32(i)}
	}
	return pts
}

// reqPoints converts ride requests to spatial points (ID = row index).
func reqPoints(d *Dataset) []Point {
	pts := make([]Point, len(d.RideReqs))
	for i, r := range d.RideReqs {
		pts[i] = Point{X: r.X, Y: r.Y, ID: uint32(i)}
	}
	return pts
}

// ridePoints converts rides' start positions to points (ID = row index).
func ridePoints(d *Dataset) []Point {
	pts := make([]Point, len(d.Rides))
	for i, r := range d.Rides {
		pts[i] = Point{X: r.StartX, Y: r.StartY, ID: uint32(i)}
	}
	return pts
}

// locationRects converts zones to window queries tagged by location id.
func locationRects(d *Dataset) []RectQ {
	qs := make([]RectQ, len(d.Locations))
	for i, l := range d.Locations {
		qs[i] = RectQ{MinX: l.MinX, MinY: l.MinY, MaxX: l.MaxX, MaxY: l.MaxY, Tag: l.LocationID}
	}
	return qs
}

// Q1: SELECT COUNT(*) FROM rideReq req JOIN driverStatus ds ON
// GEO.DIST(ds.pos, req.start, 1 km) JOIN driver d ON d.driverId =
// ds.driverId WHERE req.seats = d.seats AND ds.time >= NOW - 5 days
// GROUP BY ds.driverId.
func Q1(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q1"}

	// Recent driver status via the time index.
	times := make([]KV, len(d.DriverStatus))
	for i, s := range d.DriverStatus {
		times[i] = KV{Key: s.Time, Val: uint32(i)}
	}
	recent, c, err := e.TimeRange(times, d.Now-5*Day, d.Now)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	recentSet := make(map[uint32]bool, len(recent))
	for _, idx := range recent {
		recentSet[idx] = true
	}

	// Drivers within 1 km of each request.
	circles := make([]CircleQ, len(d.RideReqs))
	for i, r := range d.RideReqs {
		circles[i] = CircleQ{X: r.X, Y: r.Y, R: KM, Tag: uint32(i)}
	}
	pairs, c, err := e.SpatialProbe(statusPoints(d), circles)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)

	// Join driver attributes (driverId → seats).
	statusKV := make([]KV, 0, len(pairs))
	for i, p := range pairs {
		if recentSet[p.ID] {
			statusKV = append(statusKV, KV{Key: d.DriverStatus[p.ID].DriverID, Val: uint32(i)})
		}
	}
	driverKV := make([]KV, len(d.Drivers))
	for i, dr := range d.Drivers {
		driverKV[i] = KV{Key: dr.DriverID, Val: uint32(i)}
	}
	joined, c, err := e.EquiJoin(driverKV, statusKV)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)

	// Seat filter + group by driver.
	var grpKeys []uint32
	for _, j := range joined {
		pr := pairs[j.ProbeVal]
		req := d.RideReqs[pr.Tag]
		if d.Drivers[j.BuildVal].Seats == req.Seats {
			grpKeys = append(grpKeys, d.Drivers[j.BuildVal].DriverID)
		}
	}
	counts, c, err := e.GroupCount(grpKeys)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)

	for k, n := range counts {
		mix(&res.Fingerprint, uint64(k), uint64(n))
	}
	res.Rows = len(counts)
	return res, nil
}

// zoneContaining returns the zone holding (x, y); zones tile the grid.
func zoneContaining(d *Dataset, x, y uint32) Location {
	for _, l := range d.Locations {
		if x >= l.MinX && x <= l.MaxX && y >= l.MinY && y <= l.MaxY {
			return l
		}
	}
	return d.Locations[0]
}

// Q2: demand in one zone per 10-minute interval, ordered by count. The
// query's WHERE locationId = <const> picks the zone of the first request
// (a zone guaranteed to be live under the clustered generator).
func Q2(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q2"}
	loc := zoneContaining(d, d.RideReqs[0].X, d.RideReqs[0].Y)
	hits, c, err := e.WindowProbe(reqPoints(d), []RectQ{{MinX: loc.MinX, MinY: loc.MinY, MaxX: loc.MaxX, MaxY: loc.MaxY, Tag: 0}})
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	intervals := make([]uint32, len(hits))
	for i, h := range hits {
		intervals[i] = d.RideReqs[h.ID].Time / 600
	}
	counts, c, err := e.GroupCount(intervals)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	c, err = e.Sort(len(counts), 8)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	for k, n := range counts {
		mix(&res.Fingerprint, uint64(k), uint64(n))
	}
	res.Rows = len(counts)
	return res, nil
}

// Q3: demand per zone over the last minute, ordered by count.
func Q3(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q3"}
	times := make([]KV, len(d.RideReqs))
	for i, r := range d.RideReqs {
		times[i] = KV{Key: r.Time, Val: uint32(i)}
	}
	recent, c, err := e.TimeRange(times, d.Now-60, d.Now)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	pts := make([]Point, len(recent))
	for i, idx := range recent {
		r := d.RideReqs[idx]
		pts[i] = Point{X: r.X, Y: r.Y, ID: idx}
	}
	hits, c, err := e.WindowProbe(pts, locationRects(d))
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	locs := make([]uint32, len(hits))
	for i, h := range hits {
		locs[i] = h.Tag
	}
	counts, c, err := e.GroupCount(locs)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	c, err = e.Sort(len(counts), 8)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	for k, n := range counts {
		mix(&res.Fingerprint, uint64(k), uint64(n))
	}
	res.Rows = len(counts)
	return res, nil
}

// Q4: riders active in zone 0 over the last 5 days, with per-rider ride
// count and average fare.
func Q4(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q4"}
	times := make([]KV, len(d.Rides))
	for i, r := range d.Rides {
		times[i] = KV{Key: r.StartTime, Val: uint32(i)}
	}
	recent, c, err := e.TimeRange(times, d.Now-5*Day, d.Now)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	pts := make([]Point, len(recent))
	for i, idx := range recent {
		r := d.Rides[idx]
		pts[i] = Point{X: r.StartX, Y: r.StartY, ID: idx}
	}
	loc := zoneContaining(d, d.Rides[0].StartX, d.Rides[0].StartY)
	hits, c, err := e.WindowProbe(pts, []RectQ{{MinX: loc.MinX, MinY: loc.MinY, MaxX: loc.MaxX, MaxY: loc.MaxY, Tag: 0}})
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	riders := make([]uint32, len(hits))
	fares := make(map[uint32]uint64)
	for i, h := range hits {
		r := d.Rides[h.ID]
		riders[i] = r.RiderID
		fares[r.RiderID] += uint64(r.Fare)
	}
	counts, c, err := e.GroupCount(riders)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	for rider, n := range counts {
		avg := fares[rider] / uint64(n)
		mix(&res.Fingerprint, uint64(rider), uint64(n), avg)
	}
	res.Rows = len(counts)
	return res, nil
}

// q5Model is the shared linear model of Q5/Q6 (synthetic weights).
func q5Model(width int) *ml.Linear {
	w := make([]float32, width)
	for i := range w {
		w[i] = float32(i%5) * 0.1
	}
	return &ml.Linear{Weights: w, Bias: 0.25}
}

// Q5: join driver status to driver attributes, compute windowed features
// per driver, score with a linear model.
func Q5(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q5"}
	statusKV := make([]KV, len(d.DriverStatus))
	for i, s := range d.DriverStatus {
		statusKV[i] = KV{Key: s.DriverID, Val: uint32(i)}
	}
	driverKV := make([]KV, len(d.Drivers))
	for i, dr := range d.Drivers {
		driverKV[i] = KV{Key: dr.DriverID, Val: uint32(i)}
	}
	joined, c, err := e.EquiJoin(driverKV, statusKV)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	// Window: PARTITION BY driver ORDER BY time — a sort of the joined
	// stream, then streaming aggregates.
	c, err = e.Sort(len(joined), 16)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	type agg struct {
		n          int64
		sumX, sumY uint64
		free       int64
	}
	aggs := make(map[uint32]*agg)
	for _, j := range joined {
		s := d.DriverStatus[j.ProbeVal]
		a := aggs[j.Key]
		if a == nil {
			a = &agg{}
			aggs[j.Key] = a
		}
		a.n++
		a.sumX += uint64(s.X)
		a.sumY += uint64(s.Y)
		a.free += int64(s.Free)
	}
	model := q5Model(4)
	c, err = e.Predict(len(aggs), model.FlopsPerPredict())
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	for id, a := range aggs {
		feats := []float32{
			float32(a.sumX/uint64(a.n)) / MaxCoord,
			float32(a.sumY/uint64(a.n)) / MaxCoord,
			float32(a.free) / float32(a.n),
			float32(a.n) / 64,
		}
		score := model.Predict(feats)
		mix(&res.Fingerprint, uint64(id), uint64(a.n), uint64(int64(score*1000)))
	}
	res.Rows = len(aggs)
	return res, nil
}

// Q6: demand and supply per zone, joined, scored with a surge model.
func Q6(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q6"}
	rects := locationRects(d)
	demandHits, c, err := e.WindowProbe(reqPoints(d), rects)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	supplyHits, c, err := e.WindowProbe(statusPoints(d), rects)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	dk := make([]uint32, len(demandHits))
	for i, h := range demandHits {
		dk[i] = h.Tag
	}
	sk := make([]uint32, len(supplyHits))
	for i, h := range supplyHits {
		sk[i] = h.Tag
	}
	demand, c, err := e.GroupCount(dk)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	supply, c, err := e.GroupCount(sk)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	// Join demand and supply on locationId.
	dkv := make([]KV, 0, len(demand))
	for k, n := range demand {
		dkv = append(dkv, KV{Key: k, Val: uint32(n)})
	}
	skv := make([]KV, 0, len(supply))
	for k, n := range supply {
		skv = append(skv, KV{Key: k, Val: uint32(n)})
	}
	joined, c, err := e.EquiJoin(dkv, skv)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	model := q5Model(2)
	c, err = e.Predict(len(joined), model.FlopsPerPredict())
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	for _, j := range joined {
		score := model.Predict([]float32{float32(j.BuildVal) / 100, float32(j.ProbeVal) / 100})
		mix(&res.Fingerprint, uint64(j.Key), uint64(j.BuildVal), uint64(j.ProbeVal), uint64(int64(score*1000)))
	}
	res.Rows = len(joined)
	return res, nil
}

// Q7: 30-day rider history joined to rider and driver attributes, logistic
// model per rider.
func Q7(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q7"}
	times := make([]KV, len(d.Rides))
	for i, r := range d.Rides {
		times[i] = KV{Key: r.StartTime, Val: uint32(i)}
	}
	recent, c, err := e.TimeRange(times, d.Now-30*Day, d.Now)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	rideKV := make([]KV, len(recent))
	for i, idx := range recent {
		rideKV[i] = KV{Key: d.Rides[idx].RiderID, Val: idx}
	}
	riderKV := make([]KV, len(d.Riders))
	for i, r := range d.Riders {
		riderKV[i] = KV{Key: r.RiderID, Val: uint32(i)}
	}
	joined, c, err := e.EquiJoin(riderKV, rideKV)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	// Second join: ride → driver rating.
	drKV := make([]KV, len(joined))
	for i, j := range joined {
		drKV[i] = KV{Key: d.Rides[j.ProbeVal].DriverID, Val: uint32(i)}
	}
	driverKV := make([]KV, len(d.Drivers))
	for i, dr := range d.Drivers {
		driverKV[i] = KV{Key: dr.DriverID, Val: uint32(i)}
	}
	joined2, c, err := e.EquiJoin(driverKV, drKV)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	type agg struct {
		n, fare, drRating uint64
	}
	aggs := make(map[uint32]*agg)
	for _, j2 := range joined2 {
		j := joined[j2.ProbeVal]
		ride := d.Rides[j.ProbeVal]
		a := aggs[ride.RiderID]
		if a == nil {
			a = &agg{}
			aggs[ride.RiderID] = a
		}
		a.n++
		a.fare += uint64(ride.Fare)
		a.drRating += uint64(d.Drivers[j2.BuildVal].Rating)
	}
	model := &ml.Logistic{Linear: *q5Model(3)}
	c, err = e.Predict(len(aggs), model.FlopsPerPredict())
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	for rider, a := range aggs {
		churn := model.Predict([]float32{
			float32(a.n) / 32,
			float32(a.fare/a.n) / 5000,
			float32(a.drRating/a.n) / 500,
		})
		v := uint64(0)
		if churn {
			v = 1
		}
		mix(&res.Fingerprint, uint64(rider), uint64(a.n), v)
	}
	res.Rows = len(aggs)
	return res, nil
}

// Q8: per-rider aggregates over rides starting in zone 0, segmented with
// k-means.
func Q8(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q8"}
	loc := zoneContaining(d, d.Rides[0].StartX, d.Rides[0].StartY)
	hits, c, err := e.WindowProbe(ridePoints(d), []RectQ{{MinX: loc.MinX, MinY: loc.MinY, MaxX: loc.MaxX, MaxY: loc.MaxY, Tag: 0}})
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	rideKV := make([]KV, len(hits))
	for i, h := range hits {
		rideKV[i] = KV{Key: d.Rides[h.ID].RiderID, Val: h.ID}
	}
	riderKV := make([]KV, len(d.Riders))
	for i, r := range d.Riders {
		riderKV[i] = KV{Key: r.RiderID, Val: uint32(i)}
	}
	joined, c, err := e.EquiJoin(riderKV, rideKV)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	type agg struct {
		n, fare, dur uint64
	}
	aggs := make(map[uint32]*agg)
	for _, j := range joined {
		ride := d.Rides[j.ProbeVal]
		a := aggs[ride.RiderID]
		if a == nil {
			a = &agg{}
			aggs[ride.RiderID] = a
		}
		a.n++
		a.fare += uint64(ride.Fare)
		a.dur += uint64(ride.Duration)
	}
	km := &ml.KMeans{Centroids: [][]float32{
		{0.2, 0.2}, {0.5, 0.5}, {0.8, 0.8},
	}}
	c, err = e.Predict(len(aggs), km.FlopsPerAssign())
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	for rider, a := range aggs {
		cl := km.Assign([]float32{
			float32(a.fare/a.n) / 6000,
			float32(a.dur/a.n) / 3600,
		})
		mix(&res.Fingerprint, uint64(rider), uint64(a.n), uint64(cl))
	}
	res.Rows = len(aggs)
	return res, nil
}

// Q9: the 100 nearest available drivers to request 0, ordered by distance.
func Q9(e Engine, d *Dataset) (QueryResult, error) {
	res := QueryResult{Engine: e.Name(), Query: "q9"}
	req := d.RideReqs[0]
	hits, c, err := e.SpatialProbe(statusPoints(d), []CircleQ{{X: req.X, Y: req.Y, R: KM, Tag: 0}})
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	type cand struct {
		idx  uint32
		dist int64
	}
	var cands []cand
	for _, h := range hits {
		s := d.DriverStatus[h.ID]
		if s.Free == 0 {
			continue
		}
		dx := int64(s.X) - int64(req.X)
		dy := int64(s.Y) - int64(req.Y)
		cands = append(cands, cand{idx: h.ID, dist: dx*dx + dy*dy})
	}
	c, err = e.Sort(len(cands), 12)
	if err != nil {
		return res, err
	}
	res.Cost.Add(c)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].idx < cands[j].idx
	})
	if len(cands) > 100 {
		cands = cands[:100]
	}
	for _, cd := range cands {
		mix(&res.Fingerprint, uint64(cd.idx), uint64(cd.dist))
	}
	res.Rows = len(cands)
	return res, nil
}

// RunAll executes the full set on one engine.
func RunAll(e Engine, d *Dataset) ([]QueryResult, error) {
	var out []QueryResult
	for _, q := range All() {
		r, err := q.Run(e, d)
		if err != nil {
			return out, fmt.Errorf("%s on %s: %w", q.Name, e.Name(), err)
		}
		out = append(out, r)
	}
	return out, nil
}
