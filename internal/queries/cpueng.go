package queries

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"aurochs/internal/baseline/cpu"
)

// CPUEngine runs operators natively on the host and reports wall-clock
// cost. Index builds (spatial grid, sorted time index) are ingest-time work
// and excluded from operator cost, matching how the other engines treat
// pre-built indices.
type CPUEngine struct{}

// NewCPU returns the CPU engine.
func NewCPU() *CPUEngine { return &CPUEngine{} }

// Name implements Engine.
func (e *CPUEngine) Name() string { return "cpu" }

// EquiJoin implements Engine with a hash join over the build side,
// parallelized across cores on the probe side.
func (e *CPUEngine) EquiJoin(build, probe []KV) ([]Pair, Cost, error) {
	start := time.Now()
	idx := make(map[uint32][]uint32, len(build))
	for _, b := range build {
		idx[b.Key] = append(idx[b.Key], b.Val)
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(probe) + workers - 1) / workers
	outs := make([][]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(probe) {
			break
		}
		hi := lo + chunk
		if hi > len(probe) {
			hi = len(probe)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []Pair
			for _, p := range probe[lo:hi] {
				for _, bv := range idx[p.Key] {
					out = append(out, Pair{Key: p.Key, BuildVal: bv, ProbeVal: p.Val})
				}
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var pairs []Pair
	for _, o := range outs {
		pairs = append(pairs, o...)
	}
	return pairs, Cost{Seconds: time.Since(start).Seconds()}, nil
}

// grid is a uniform spatial hash over points (the pre-built index).
type grid struct {
	cell  uint32
	cols  uint32
	cells map[uint32][]Point
}

func buildGrid(points []Point) *grid {
	g := &grid{cell: KM, cells: make(map[uint32][]Point)}
	g.cols = MaxCoord/g.cell + 1
	for _, p := range points {
		g.cells[g.key(p.X, p.Y)] = append(g.cells[g.key(p.X, p.Y)], p)
	}
	return g
}

func (g *grid) key(x, y uint32) uint32 { return (y/g.cell)*g.cols + x/g.cell }

func (g *grid) rect(minX, minY, maxX, maxY uint32, visit func(Point)) {
	for cy := minY / g.cell; cy <= maxY/g.cell; cy++ {
		for cx := minX / g.cell; cx <= maxX/g.cell; cx++ {
			for _, p := range g.cells[cy*g.cols+cx] {
				if p.X >= minX && p.X <= maxX && p.Y >= minY && p.Y <= maxY {
					visit(p)
				}
			}
		}
	}
}

// SpatialProbe implements Engine with the grid index plus exact distance.
func (e *CPUEngine) SpatialProbe(points []Point, queries []CircleQ) ([]SPair, Cost, error) {
	g := buildGrid(points) // ingest-time
	start := time.Now()
	out := e.probeGrid(g, queries)
	return out, Cost{Seconds: time.Since(start).Seconds()}, nil
}

func (e *CPUEngine) probeGrid(g *grid, queries []CircleQ) []SPair {
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(queries) + workers - 1) / workers
	outs := make([][]SPair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(queries) {
			break
		}
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []SPair
			for _, q := range queries[lo:hi] {
				r := circleRect(q)
				g.rect(r.MinX, r.MinY, r.MaxX, r.MaxY, func(p Point) {
					if inCircle(p, q) {
						out = append(out, SPair{ID: p.ID, Tag: q.Tag})
					}
				})
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var out []SPair
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// WindowProbe implements Engine.
func (e *CPUEngine) WindowProbe(points []Point, queries []RectQ) ([]SPair, Cost, error) {
	g := buildGrid(points)
	start := time.Now()
	var out []SPair
	for _, q := range queries {
		g.rect(q.MinX, q.MinY, q.MaxX, q.MaxY, func(p Point) {
			out = append(out, SPair{ID: p.ID, Tag: q.Tag})
		})
	}
	return out, Cost{Seconds: time.Since(start).Seconds()}, nil
}

// TimeRange implements Engine via the sorted index.
func (e *CPUEngine) TimeRange(entries []KV, lo, hi uint32) ([]uint32, Cost, error) {
	idx, _ := cpu.BuildIndex(toCPU(entries)) // ingest-time
	start := time.Now()
	rows := idx.Range(lo, hi)
	out := make([]uint32, len(rows))
	for i, r := range rows {
		out[i] = r.Val
	}
	return out, Cost{Seconds: time.Since(start).Seconds()}, nil
}

// GroupCount implements Engine.
func (e *CPUEngine) GroupCount(keys []uint32) (map[uint32]int64, Cost, error) {
	start := time.Now()
	out := make(map[uint32]int64)
	for _, k := range keys {
		out[k]++
	}
	return out, Cost{Seconds: time.Since(start).Seconds()}, nil
}

// Sort implements Engine (order-by cost over n rows).
func (e *CPUEngine) Sort(n int, rowBytes int) (Cost, error) {
	rows := make([]uint64, n)
	for i := range rows {
		rows[i] = uint64((i*2654435761 + 17) % (n + 1))
	}
	start := time.Now()
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return Cost{Seconds: time.Since(start).Seconds()}, nil
}

// Predict implements Engine: dense MACs on all cores.
func (e *CPUEngine) Predict(n int, flops int) (Cost, error) {
	// ~4 flops/cycle/core effective on scalar Go code.
	cores := float64(runtime.GOMAXPROCS(0))
	secs := float64(n) * float64(flops) / (4 * 3e9 * cores)
	return Cost{Seconds: secs}, nil
}

func toCPU(entries []KV) []cpu.KV {
	out := make([]cpu.KV, len(entries))
	for i, e := range entries {
		out[i] = cpu.KV{Key: e.Key, Val: e.Val}
	}
	return out
}
