package queries

import (
	"sort"
	"testing"
)

// Operator-level cross-engine tests: tighter than the whole-query
// fingerprints, these compare operator outputs element by element.

func enginesUnderTest() []Engine {
	return []Engine{NewCPU(), NewGPU(), NewAurochs(2)}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.BuildVal != b.BuildVal {
			return a.BuildVal < b.BuildVal
		}
		return a.ProbeVal < b.ProbeVal
	})
}

func TestEquiJoinAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	build := make([]KV, 3000)
	probe := make([]KV, 2500)
	for i := range build {
		build[i] = KV{Key: uint32(i*7) % 900, Val: uint32(i)}
	}
	for i := range probe {
		probe[i] = KV{Key: uint32(i*13) % 1100, Val: uint32(10000 + i)}
	}
	var ref []Pair
	for _, e := range enginesUnderTest() {
		got, cost, err := e.EquiJoin(build, probe)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if cost.Seconds <= 0 {
			t.Errorf("%s: no cost", e.Name())
		}
		sortPairs(got)
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d pairs, cpu got %d", e.Name(), len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: pair %d = %+v, want %+v", e.Name(), i, got[i], ref[i])
			}
		}
	}
}

func TestSpatialProbeAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	d := Generate(SmallScale(), 6)
	pts := statusPoints(d)
	queries := make([]CircleQ, 64)
	for i := range queries {
		r := d.RideReqs[i]
		queries[i] = CircleQ{X: r.X, Y: r.Y, R: 2 * KM, Tag: uint32(i)}
	}
	type key struct{ id, tag uint32 }
	var ref map[key]bool
	for _, e := range enginesUnderTest() {
		got, _, err := e.SpatialProbe(pts, queries)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		m := map[key]bool{}
		for _, h := range got {
			m[key{h.ID, h.Tag}] = true
		}
		if ref == nil {
			ref = m
			continue
		}
		if len(m) != len(ref) {
			t.Fatalf("%s: %d hits, cpu got %d", e.Name(), len(m), len(ref))
		}
		for k := range ref {
			if !m[k] {
				t.Fatalf("%s missing hit %+v", e.Name(), k)
			}
		}
	}
}

func TestTimeRangeAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	entries := make([]KV, 5000)
	for i := range entries {
		entries[i] = KV{Key: uint32(i * 17 % 100000), Val: uint32(i)}
	}
	var ref map[uint32]bool
	for _, e := range enginesUnderTest() {
		got, _, err := e.TimeRange(entries, 20000, 60000)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		m := map[uint32]bool{}
		for _, v := range got {
			m[v] = true
		}
		if ref == nil {
			ref = m
			continue
		}
		if len(m) != len(ref) {
			t.Fatalf("%s: %d rows, cpu got %d", e.Name(), len(m), len(ref))
		}
	}
}

func TestGroupCountAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	keys := make([]uint32, 4000)
	for i := range keys {
		keys[i] = uint32(i % 123)
	}
	var ref map[uint32]int64
	for _, e := range enginesUnderTest() {
		got, _, err := e.GroupCount(keys)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d groups, want %d", e.Name(), len(got), len(ref))
		}
		for k, n := range ref {
			if got[k] != n {
				t.Fatalf("%s: group %d = %d, want %d", e.Name(), k, got[k], n)
			}
		}
	}
}

func TestEmptyOperatorInputs(t *testing.T) {
	for _, e := range enginesUnderTest() {
		if pairs, _, err := e.EquiJoin(nil, nil); err != nil || len(pairs) != 0 {
			t.Errorf("%s: empty join: %v %v", e.Name(), pairs, err)
		}
		if m, _, err := e.GroupCount(nil); err != nil || len(m) != 0 {
			t.Errorf("%s: empty groupcount: %v %v", e.Name(), m, err)
		}
		if _, err := e.Sort(0, 8); err != nil {
			t.Errorf("%s: empty sort: %v", e.Name(), err)
		}
	}
}
