package queries

import (
	"fmt"

	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/index/btree"
	"aurochs/internal/index/rtree"
	"aurochs/internal/record"
)

// AurochsEngine runs every operator on the cycle-level fabric simulator and
// converts cycles at the 1 GHz clock into cost. Functional results come out
// of the same kernel runs that produce the timing.
type AurochsEngine struct {
	// Pipelines is the stream-level parallelism applied to joins.
	Pipelines int
	// Tuning carries the ablation knobs through to every kernel.
	Tuning core.Tuning
}

// NewAurochs returns the fabric engine with P parallel pipelines.
func NewAurochs(p int) *AurochsEngine {
	if p <= 0 {
		p = 4
	}
	return &AurochsEngine{Pipelines: p}
}

// Name implements Engine.
func (e *AurochsEngine) Name() string { return "aurochs" }

func secs(r core.Result) Cost { return Cost{Seconds: r.Seconds()} }

// EquiJoin implements Engine with the partitioned hash join (figs. 6a/7).
func (e *AurochsEngine) EquiJoin(build, probe []KV) ([]Pair, Cost, error) {
	if len(build) == 0 || len(probe) == 0 {
		return nil, Cost{}, nil
	}
	b := make([]record.Rec, len(build))
	for i, kv := range build {
		b[i] = record.Make(kv.Key, kv.Val)
	}
	p := make([]record.Rec, len(probe))
	for i, kv := range probe {
		p[i] = record.Make(kv.Key, kv.Val)
	}
	matches, res, err := core.HashJoin(nil, b, p, core.HashJoinOptions{
		Pipelines: e.Pipelines,
		Tuning:    e.Tuning,
	})
	if err != nil {
		return nil, Cost{}, fmt.Errorf("aurochs equijoin: %w", err)
	}
	pairs := make([]Pair, len(matches))
	for i, m := range matches {
		pairs[i] = Pair{Key: m.Get(0), ProbeVal: m.Get(1), BuildVal: m.Get(2)}
	}
	return pairs, secs(res), nil
}

// buildRTree materializes the pre-built spatial index (ingest work).
func buildRTree(points []Point) *rtree.Tree {
	h := dram.New(dram.DefaultConfig())
	entries := make([]rtree.Entry, len(points))
	for i, p := range points {
		entries[i] = rtree.Entry{Rect: rtree.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, ID: p.ID}
	}
	return rtree.Build(h, core.RegionTables, entries, MaxCoord)
}

// SpatialProbe implements Engine: R-tree window walks (fig. 9) followed by
// the exact-distance filter tile. The kernel returns candidate (point, tag)
// pairs; the distance compare runs at line rate and is part of the same
// pipeline, so its cost rides on the window result stream.
func (e *AurochsEngine) SpatialProbe(points []Point, queries []CircleQ) ([]SPair, Cost, error) {
	byID := make(map[uint32]Point, len(points))
	for _, p := range points {
		byID[p.ID] = p
	}
	rects := make([]core.WindowQuery, len(queries))
	for i, q := range queries {
		r := circleRect(q)
		rects[i] = core.WindowQuery{
			Rect: rtree.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY},
			Tag:  uint32(i),
		}
	}
	tr := buildRTree(points)
	hits, res, err := core.RTreeWindowP(tr, rects, e.Tuning, e.Pipelines)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("aurochs spatial: %w", err)
	}
	var out []SPair
	for _, h := range hits {
		q := queries[h.Get(1)]
		if inCircle(byID[h.Get(0)], q) {
			out = append(out, SPair{ID: h.Get(0), Tag: q.Tag})
		}
	}
	return out, secs(res), nil
}

// WindowProbe implements Engine.
func (e *AurochsEngine) WindowProbe(points []Point, queries []RectQ) ([]SPair, Cost, error) {
	rects := make([]core.WindowQuery, len(queries))
	for i, q := range queries {
		rects[i] = core.WindowQuery{
			Rect: rtree.Rect{MinX: q.MinX, MinY: q.MinY, MaxX: q.MaxX, MaxY: q.MaxY},
			Tag:  uint32(i),
		}
	}
	tr := buildRTree(points)
	hits, res, err := core.RTreeWindowP(tr, rects, e.Tuning, e.Pipelines)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("aurochs window: %w", err)
	}
	out := make([]SPair, len(hits))
	for i, h := range hits {
		out[i] = SPair{ID: h.Get(0), Tag: queries[h.Get(1)].Tag}
	}
	return out, secs(res), nil
}

// TimeRange implements Engine: a B-tree range walk (fig. 6b) against the
// pre-built time index.
func (e *AurochsEngine) TimeRange(entries []KV, lo, hi uint32) ([]uint32, Cost, error) {
	h := dram.New(dram.DefaultConfig())
	items := make([]btree.KV, len(entries))
	for i, kv := range entries {
		items[i] = btree.KV{Key: kv.Key, Val: kv.Val}
	}
	tr := btree.Build(h, core.RegionTables, items)
	hits, res, err := core.BTreeSearch(tr, []core.RangeQuery{{Lo: lo, Hi: hi}}, e.Tuning)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("aurochs timerange: %w", err)
	}
	out := make([]uint32, len(hits))
	for i, r := range hits {
		out[i] = r.Get(1)
	}
	return out, secs(res), nil
}

// GroupCount implements Engine: the lock-free hash-aggregation kernel —
// key matches bump a per-group counter with FAA; misses insert-if-absent
// with CAS (paper §IV-A).
func (e *AurochsEngine) GroupCount(keys []uint32) (map[uint32]int64, Cost, error) {
	if len(keys) == 0 {
		return map[uint32]int64{}, Cost{}, nil
	}
	hp := core.DefaultHashTableParams(len(keys))
	hp.Tuning = e.Tuning
	agg, res, err := core.HashAggregate(hp, keys, nil)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("aurochs groupcount: %w", err)
	}
	return agg.Groups(), secs(res), nil
}

// Sort implements Engine with the Gorgon merge-sort kernel.
func (e *AurochsEngine) Sort(n int, rowBytes int) (Cost, error) {
	if n == 0 {
		return Cost{}, nil
	}
	recWords := (rowBytes + 3) / 4
	if recWords < 1 {
		recWords = 1
	}
	if recWords > 4 {
		recWords = 4
	}
	hbm := dram.New(dram.DefaultConfig())
	recs := make([]record.Rec, n)
	for i := range recs {
		var r record.Rec
		r = r.Append(uint32(i*2654435761 + 17))
		for w := 1; w < recWords; w++ {
			r = r.Append(uint32(i))
		}
		recs[i] = r
	}
	run := core.MaterializeRun(hbm, core.RegionTables, recs, recWords)
	_, res, err := core.Sort(hbm, run, func(r record.Rec) uint64 { return uint64(r.Get(0)) })
	if err != nil {
		return Cost{}, fmt.Errorf("aurochs sort: %w", err)
	}
	return secs(res), nil
}

// Predict implements Engine: inference maps onto the ML half of the fabric
// at 16 MACs per compute tile per cycle, with a bandwidth roofline on
// feature reads.
func (e *AurochsEngine) Predict(n int, flops int) (Cost, error) {
	tiles := float64(e.Pipelines * 4)                         // a few compute tiles per pipeline
	compute := float64(n) * float64(flops) / (16 * 2 * tiles) // 16 lanes × MAC
	mem := float64(n) * float64(flops) * 2 / dram.DefaultConfig().PeakBytesPerCycle()
	cycles := compute
	if mem > cycles {
		cycles = mem
	}
	return Cost{Seconds: cycles / core.ClockHz}, nil
}
