package queries

import (
	"testing"
)

// TestEnginesAgree is the central integration test: every query must
// produce an identical result fingerprint on the Aurochs fabric simulator,
// the CPU baseline, and the GPU model — the performance comparison is only
// meaningful between correct implementations.
func TestEnginesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	d := Generate(SmallScale(), 1)
	engines := []Engine{NewCPU(), NewGPU(), NewAurochs(2)}
	results := make(map[string][]QueryResult)
	for _, e := range engines {
		rs, err := RunAll(e, d)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		results[e.Name()] = rs
	}
	ref := results["cpu"]
	for _, e := range engines {
		rs := results[e.Name()]
		for i, r := range rs {
			if r.Fingerprint != ref[i].Fingerprint || r.Rows != ref[i].Rows {
				t.Errorf("%s: %s disagrees with cpu: rows %d vs %d, fp %x vs %x",
					r.Query, e.Name(), r.Rows, ref[i].Rows, r.Fingerprint, ref[i].Fingerprint)
			}
			if r.Cost.Seconds <= 0 {
				t.Errorf("%s/%s: no cost recorded", r.Query, e.Name())
			}
		}
	}
}

// TestQueriesNonTrivial: every query must produce a non-empty result on
// the generated dataset, or it is not exercising its operators.
func TestQueriesNonTrivial(t *testing.T) {
	d := Generate(SmallScale(), 2)
	rs, err := RunAll(NewCPU(), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Rows == 0 {
			t.Errorf("%s returned no rows", r.Query)
		}
	}
}

// TestDeterministicGeneration: same seed, same data; different seed,
// different data.
func TestDeterministicGeneration(t *testing.T) {
	a := Generate(SmallScale(), 7)
	b := Generate(SmallScale(), 7)
	c := Generate(SmallScale(), 8)
	if a.Rides[100] != b.Rides[100] || a.RideReqs[5] != b.RideReqs[5] {
		t.Error("generation not deterministic")
	}
	if a.Rides[100] == c.Rides[100] {
		t.Error("different seeds produced identical rides")
	}
}

// TestGPUWarpEfficiencyInPaperBand: the modeled warp execution efficiency
// on the hash join must land in the neighbourhood the paper profiles on a
// V100 (62 % build, 46 % probe): divergence, not bandwidth, is the story.
func TestGPUWarpEfficiencyInPaperBand(t *testing.T) {
	d := Generate(SmallScale(), 3)
	e := NewGPU()
	build := make([]KV, len(d.Rides))
	for i, r := range d.Rides {
		build[i] = KV{Key: r.RiderID, Val: uint32(i)}
	}
	probe := make([]KV, len(d.RideReqs))
	for i, r := range d.RideReqs {
		probe[i] = KV{Key: r.RiderID, Val: uint32(i)}
	}
	if _, _, err := e.EquiJoin(build, probe); err != nil {
		t.Fatal(err)
	}
	if e.LastBuildEff < 0.3 || e.LastBuildEff > 0.9 {
		t.Errorf("build warp efficiency %.2f outside the plausible band", e.LastBuildEff)
	}
	if e.LastProbeEff < 0.25 || e.LastProbeEff > 0.8 {
		t.Errorf("probe warp efficiency %.2f outside the plausible band", e.LastProbeEff)
	}
	if e.LastProbeEff >= e.LastBuildEff {
		t.Errorf("probe efficiency (%.2f) should be below build (%.2f) — longer divergent walks", e.LastProbeEff, e.LastBuildEff)
	}
}

// TestCostsOrdering: on the small dataset Aurochs' modeled time must beat
// the CPU's wall clock on the join-heavy queries by a visible margin (the
// full factor needs bench-scale data; here we just check the direction).
func TestCostsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	d := Generate(SmallScale(), 4)
	cpuR, err := RunAll(NewCPU(), d)
	if err != nil {
		t.Fatal(err)
	}
	aurR, err := RunAll(NewAurochs(4), d)
	if err != nil {
		t.Fatal(err)
	}
	var cpuT, aurT float64
	for i := range cpuR {
		cpuT += cpuR[i].Cost.Seconds
		aurT += aurR[i].Cost.Seconds
	}
	if aurT <= 0 || cpuT <= 0 {
		t.Fatalf("degenerate totals: cpu=%f aurochs=%f", cpuT, aurT)
	}
	t.Logf("total cpu=%.6fs aurochs=%.6fs (ratio %.1fx)", cpuT, aurT, cpuT/aurT)
}
