package queries

import (
	"fmt"
	"time"
)

// Cost is an operator's modeled or measured runtime contribution.
type Cost struct {
	Seconds float64
}

// Add accumulates.
func (c *Cost) Add(o Cost) { c.Seconds += o.Seconds }

// Duration converts to a time.Duration.
func (c Cost) Duration() time.Duration { return time.Duration(c.Seconds * 1e9) }

// KV is a generic key → row-id pair fed to join and index operators. Vals
// are row indices into the caller's tables, so queries do payload lookups
// host-side while engines model the data movement.
type KV struct {
	Key uint32
	Val uint32
}

// Pair is one equi-join match.
type Pair struct {
	Key      uint32
	BuildVal uint32
	ProbeVal uint32
}

// Point is an indexed spatial object.
type Point struct {
	X, Y uint32
	ID   uint32
}

// CircleQ asks for all points within R of (X, Y); Tag identifies the probe.
type CircleQ struct {
	X, Y uint32
	R    uint32
	Tag  uint32
}

// RectQ asks for all points inside a rectangle.
type RectQ struct {
	MinX, MinY, MaxX, MaxY uint32
	Tag                    uint32
}

// SPair is one spatial match: point ID × probe tag.
type SPair struct {
	ID  uint32
	Tag uint32
}

// Engine abstracts the physical operators the nine queries are planned
// over. Every implementation must return identical functional results —
// the integration tests enforce it — and differ only in Cost.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// EquiJoin returns every (build, probe) pair with equal keys.
	EquiJoin(build, probe []KV) ([]Pair, Cost, error)
	// SpatialProbe returns, per circle query, the points within range
	// (exact Euclidean distance, inclusive).
	SpatialProbe(points []Point, queries []CircleQ) ([]SPair, Cost, error)
	// WindowProbe returns, per rectangle query, the points inside.
	WindowProbe(points []Point, queries []RectQ) ([]SPair, Cost, error)
	// TimeRange returns the vals of entries with lo <= key <= hi from a
	// pre-built ordered index over entries (index build is ingest work,
	// not query work, and is not charged).
	TimeRange(entries []KV, lo, hi uint32) ([]uint32, Cost, error)
	// GroupCount counts occurrences per key (hash aggregation).
	GroupCount(keys []uint32) (map[uint32]int64, Cost, error)
	// Sort charges an order-by over n rows of rowBytes each.
	Sort(n int, rowBytes int) (Cost, error)
	// Predict charges n model inferences of flops each.
	Predict(n int, flops int) (Cost, error)
}

// inCircle is the exact predicate every engine's SpatialProbe must apply.
func inCircle(p Point, q CircleQ) bool {
	dx := int64(p.X) - int64(q.X)
	dy := int64(p.Y) - int64(q.Y)
	return dx*dx+dy*dy <= int64(q.R)*int64(q.R)
}

// circleRect is the bounding rectangle of a circle query, clamped to grid.
func circleRect(q CircleQ) RectQ {
	var r RectQ
	if q.X > q.R {
		r.MinX = q.X - q.R
	}
	if q.Y > q.R {
		r.MinY = q.Y - q.R
	}
	r.MaxX = q.X + q.R
	r.MaxY = q.Y + q.R
	if r.MaxX >= MaxCoord {
		r.MaxX = MaxCoord - 1
	}
	if r.MaxY >= MaxCoord {
		r.MaxY = MaxCoord - 1
	}
	r.Tag = q.Tag
	return r
}

// QueryResult is one query's outcome on one engine.
type QueryResult struct {
	Engine string
	Query  string
	// Fingerprint summarizes the functional result for cross-engine
	// comparison (order-independent).
	Fingerprint uint64
	// Rows is the result cardinality.
	Rows int
	// Cost is the summed operator cost.
	Cost Cost
}

func (r QueryResult) String() string {
	return fmt.Sprintf("%s/%s: rows=%d time=%v", r.Query, r.Engine, r.Rows, r.Cost.Duration())
}

// mix folds a value into an order-independent fingerprint.
func mix(fp *uint64, vals ...uint64) {
	var h uint64 = 1469598103934665603
	for _, v := range vals {
		h ^= v
		h *= 1099511628211
	}
	*fp += h // commutative combine: order independent
}
