// Package cpu is the software baseline: competent multicore Go
// implementations of the kernels Aurochs accelerates, measured with wall
// clock on the host. The paper's CPU baseline is a time-series database on
// a multi-socket Xeon server; what the comparison needs from it is the
// asymptotic shape — linear radix hash joins, n·log n sorts, logarithmic
// index probes — and a realistic constant factor, both of which a tuned
// native implementation provides.
package cpu

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// KV is a key-value row (8 bytes, matching the paper's join tuples).
type KV struct {
	Key uint32
	Val uint32
}

// Match is one join result.
type Match struct {
	Key      uint32
	BuildVal uint32
	ProbeVal uint32
}

// hash32 mirrors the accelerator's multiplicative hash.
func hash32(key uint32) uint32 {
	h := key * 2654435761
	h ^= h >> 16
	return h * 0x85ebca6b
}

// HashJoin is a cache-conscious radix-partitioned hash join: partition both
// sides on the hash so each partition pair fits in cache, then build and
// probe per-partition open-addressing tables, partitions in parallel
// across cores. Returns the match count and elapsed wall time (results are
// counted, not materialized, to keep the measurement about the join).
func HashJoin(build, probe []KV) (int64, time.Duration) {
	start := time.Now()
	// Size partitions toward L2-resident tables.
	parts := 1
	for parts*8192 < len(build) {
		parts *= 2
	}
	mask := uint32(parts - 1)

	bp := partition(build, mask)
	pp := partition(probe, mask)

	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	ch := make(chan int, parts)
	for p := 0; p < parts; p++ {
		ch <- p
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			for p := range ch {
				local += joinPartition(bp[p], pp[p])
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total, time.Since(start)
}

// partition scatters rows by hash into parts buckets (two-pass counting
// scatter: sequential writes per destination, the standard radix layout).
func partition(rows []KV, mask uint32) [][]KV {
	parts := int(mask) + 1
	counts := make([]int, parts)
	for _, r := range rows {
		counts[hash32(r.Key)&mask]++
	}
	out := make([][]KV, parts)
	buf := make([]KV, len(rows))
	off := 0
	offs := make([]int, parts)
	for p := 0; p < parts; p++ {
		offs[p] = off
		out[p] = buf[off : off : off+counts[p]]
		off += counts[p]
	}
	for _, r := range rows {
		p := hash32(r.Key) & mask
		out[p] = append(out[p], r)
	}
	return out
}

// joinPartition builds an open-addressing table over build and probes it.
func joinPartition(build, probe []KV) int64 {
	if len(build) == 0 || len(probe) == 0 {
		return 0
	}
	size := 1
	for size < 2*len(build) {
		size *= 2
	}
	msk := uint32(size - 1)
	keys := make([]uint32, size)
	vals := make([]uint32, size)
	used := make([]bool, size)
	for _, r := range build {
		slot := hash32(r.Key) & msk
		for used[slot] {
			slot = (slot + 1) & msk
		}
		keys[slot], vals[slot], used[slot] = r.Key, r.Val, true
	}
	var n int64
	for _, r := range probe {
		slot := hash32(r.Key) & msk
		for used[slot] {
			if keys[slot] == r.Key {
				n++
			}
			slot = (slot + 1) & msk
		}
	}
	_ = vals
	return n
}

// SortMergeJoin sorts both sides and merges: the O(n log n) alternative
// that wins on small or pre-sorted inputs.
func SortMergeJoin(build, probe []KV) (int64, time.Duration) {
	start := time.Now()
	a := append([]KV(nil), build...)
	b := append([]KV(nil), probe...)
	sortKV(a)
	sortKV(b)
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			i++
		case a[i].Key > b[j].Key:
			j++
		default:
			// Count the duplicate cross product.
			k := a[i].Key
			ia := i
			for ia < len(a) && a[ia].Key == k {
				ia++
			}
			jb := j
			for jb < len(b) && b[jb].Key == k {
				jb++
			}
			n += int64(ia-i) * int64(jb-j)
			i, j = ia, jb
		}
	}
	return n, time.Since(start)
}

// sortKV sorts rows by key with a parallel merge sort over sorted chunks.
func sortKV(rows []KV) {
	workers := runtime.GOMAXPROCS(0)
	if len(rows) < 1<<14 || workers == 1 {
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		return
	}
	chunk := (len(rows) + workers - 1) / workers
	var wg sync.WaitGroup
	for off := 0; off < len(rows); off += chunk {
		end := off + chunk
		if end > len(rows) {
			end = len(rows)
		}
		wg.Add(1)
		go func(s []KV) {
			defer wg.Done()
			sort.Slice(s, func(i, j int) bool { return s[i].Key < s[j].Key })
		}(rows[off:end])
	}
	wg.Wait()
	// Iterative pairwise merges.
	width := chunk
	buf := make([]KV, len(rows))
	for width < len(rows) {
		var mwg sync.WaitGroup
		for off := 0; off < len(rows); off += 2 * width {
			mid := off + width
			end := off + 2*width
			if mid > len(rows) {
				mid = len(rows)
			}
			if end > len(rows) {
				end = len(rows)
			}
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				mergeKV(rows[lo:mid], rows[mid:hi], buf[lo:hi])
				copy(rows[lo:hi], buf[lo:hi])
			}(off, mid, end)
		}
		mwg.Wait()
		width *= 2
	}
}

func mergeKV(a, b, out []KV) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Key <= b[j].Key {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortedIndex is the CPU-side ordered index: a sorted slice with binary
// search — the flat equivalent of a B-tree for an immutable snapshot.
type SortedIndex struct {
	rows []KV
}

// BuildIndex sorts rows into an index, returning it and the build time.
func BuildIndex(rows []KV) (*SortedIndex, time.Duration) {
	start := time.Now()
	s := append([]KV(nil), rows...)
	sortKV(s)
	return &SortedIndex{rows: s}, time.Since(start)
}

// Range returns entries with lo <= key <= hi.
func (x *SortedIndex) Range(lo, hi uint32) []KV {
	i := sort.Search(len(x.rows), func(i int) bool { return x.rows[i].Key >= lo })
	j := sort.Search(len(x.rows), func(i int) bool { return x.rows[i].Key > hi })
	return x.rows[i:j]
}

// RangeCount counts entries in [lo, hi] without materializing.
func (x *SortedIndex) RangeCount(lo, hi uint32) int {
	i := sort.Search(len(x.rows), func(i int) bool { return x.rows[i].Key >= lo })
	j := sort.Search(len(x.rows), func(i int) bool { return x.rows[i].Key > hi })
	return j - i
}

// Len returns the indexed row count.
func (x *SortedIndex) Len() int { return len(x.rows) }
