package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rows(n int, keyMod uint32, seed int64) []KV {
	rng := rand.New(rand.NewSource(seed))
	out := make([]KV, n)
	for i := range out {
		out[i] = KV{Key: rng.Uint32() % keyMod, Val: uint32(i)}
	}
	return out
}

func refCount(a, b []KV) int64 {
	cnt := map[uint32]int64{}
	for _, r := range a {
		cnt[r.Key]++
	}
	var n int64
	for _, r := range b {
		n += cnt[r.Key]
	}
	return n
}

func TestHashJoinCount(t *testing.T) {
	for _, n := range []int{0, 1, 100, 10000, 100000} {
		a := rows(n, uint32(n/2+10), int64(n)+1)
		b := rows(n, uint32(n/2+10), int64(n)+2)
		got, dt := HashJoin(a, b)
		if want := refCount(a, b); got != want {
			t.Fatalf("n=%d: join=%d want %d", n, got, want)
		}
		if n > 0 && dt <= 0 {
			t.Fatalf("n=%d: no time measured", n)
		}
	}
}

func TestSortMergeJoinMatchesHashJoin(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		a := rows(2000, 300, seed)
		b := rows(1500, 400, seed+1)
		h, _ := HashJoin(a, b)
		s, _ := SortMergeJoin(a, b)
		return h == s
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSortMergeJoinDuplicates(t *testing.T) {
	a := []KV{{5, 1}, {5, 2}, {5, 3}}
	b := []KV{{5, 10}, {5, 20}}
	if n, _ := SortMergeJoin(a, b); n != 6 {
		t.Fatalf("cross product %d, want 6", n)
	}
}

func TestParallelSortSorts(t *testing.T) {
	r := rows(1<<16, 1<<30, 9)
	sortKV(r)
	for i := 1; i < len(r); i++ {
		if r[i-1].Key > r[i].Key {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestSortedIndexRange(t *testing.T) {
	idx, dt := BuildIndex(rows(5000, 10000, 4))
	if dt <= 0 || idx.Len() != 5000 {
		t.Fatalf("build: %v, len=%d", dt, idx.Len())
	}
	got := idx.Range(1000, 2000)
	for _, kv := range got {
		if kv.Key < 1000 || kv.Key > 2000 {
			t.Fatalf("out-of-range key %d", kv.Key)
		}
	}
	if idx.RangeCount(1000, 2000) != len(got) {
		t.Error("count disagrees with materialized range")
	}
	if idx.RangeCount(20000, 30000) != 0 {
		t.Error("empty range nonzero")
	}
}

// TestJoinScalesLinearly: doubling input should roughly double time (hash
// join is O(n)); allow generous slack for cache effects.
func TestJoinScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	timeFor := func(n int) float64 {
		a := rows(n, uint32(n), 1)
		b := rows(n, uint32(n), 2)
		// Warm.
		HashJoin(a, b)
		best := 1e18
		for i := 0; i < 3; i++ {
			if _, dt := HashJoin(a, b); dt.Seconds() < best {
				best = dt.Seconds()
			}
		}
		return best
	}
	small, big := timeFor(1<<17), timeFor(1<<19)
	ratio := big / small
	if ratio > 16 {
		t.Errorf("4x input took %.1fx time — super-linear CPU join", ratio)
	}
}
