package gpu

import (
	"math/rand"
	"testing"
)

func TestUniformLoopFullEfficiency(t *testing.T) {
	d := V100()
	trips := make([]int, 32*100)
	for i := range trips {
		trips[i] = 5
	}
	r := d.DivergentLoop(trips, 8)
	if r.WarpEfficiency != 1 {
		t.Errorf("uniform trips: efficiency %.2f, want 1", r.WarpEfficiency)
	}
	if r.Time <= 0 {
		t.Error("no time")
	}
}

func TestDivergenceCollapsesEfficiency(t *testing.T) {
	d := V100()
	// One straggler per warp: 31 threads do 1 trip, one does 32.
	trips := make([]int, 32*64)
	for i := range trips {
		if i%32 == 0 {
			trips[i] = 32
		} else {
			trips[i] = 1
		}
	}
	r := d.DivergentLoop(trips, 8)
	want := float64(31+32) / float64(32*32)
	if r.WarpEfficiency < want-0.01 || r.WarpEfficiency > want+0.01 {
		t.Errorf("efficiency %.3f, want %.3f", r.WarpEfficiency, want)
	}
}

// TestPoissonChainsLandNearPaperBand: hash-chain walks with Poisson(1)
// lengths — a load-factor-1 chained table — should produce the warp
// execution efficiency regime the paper profiles (46-62 %).
func TestPoissonChainsLandNearPaperBand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 1 << 16
	buckets := make([]int, n)
	for i := 0; i < n; i++ {
		buckets[rng.Intn(n)]++
	}
	trips := make([]int, n)
	for i := 0; i < n; i++ {
		l := buckets[rng.Intn(n)]
		if l == 0 {
			l = 1
		}
		trips[i] = l
	}
	r := V100().DivergentLoop(trips, 8)
	if r.WarpEfficiency < 0.3 || r.WarpEfficiency > 0.75 {
		t.Errorf("Poisson-chain efficiency %.2f outside the divergence regime", r.WarpEfficiency)
	}
}

func TestStreamingBandwidthBound(t *testing.T) {
	d := V100()
	r := d.Streaming(900e9) // one second of traffic at peak
	if !r.MemoryBound {
		t.Error("streaming kernel must be memory bound")
	}
	if r.Time.Seconds() < 0.99 || r.Time.Seconds() > 1.05 {
		t.Errorf("1 second of peak traffic modeled as %v", r.Time)
	}
}

func TestSortCost(t *testing.T) {
	d := V100()
	small := d.Sort(1<<20, 8).Time
	big := d.Sort(1<<24, 8).Time
	ratio := big.Seconds() / small.Seconds()
	if ratio < 10 || ratio > 20 {
		t.Errorf("16x rows cost %.1fx (radix sort is linear in passes)", ratio)
	}
}

func TestJoinThroughputNearPaperAnchor(t *testing.T) {
	// The paper: the GPU joins two 100M-row 8-byte-tuple tables at
	// ~4.5 GB/s. Model the probe-dominated join and check the order of
	// magnitude (2-15 GB/s).
	d := V100()
	rng := rand.New(rand.NewSource(6))
	const n = 1 << 20 // sampled; throughput is size-independent here
	trips := make([]int, n)
	buckets := make([]int, n)
	for i := 0; i < n; i++ {
		buckets[rng.Intn(n)]++
	}
	for i := range trips {
		l := buckets[rng.Intn(n)]
		if l == 0 {
			l = 1
		}
		trips[i] = l + 1
	}
	build := d.DivergentLoop(trips, 8)
	probe := d.DivergentLoop(trips, 8)
	bytes := float64(2*n) * 8
	gbs := bytes / (build.Time.Seconds() + probe.Time.Seconds()) / 1e9
	if gbs < 2 || gbs > 15 {
		t.Errorf("modeled join throughput %.1f GB/s; paper anchor is ~4.5", gbs)
	}
}

func TestEmptyLoop(t *testing.T) {
	r := V100().DivergentLoop(nil, 8)
	if r.Time != 0 || r.WarpEfficiency != 1 {
		t.Errorf("empty launch: %+v", r)
	}
}

func TestEnergy(t *testing.T) {
	d := V100()
	if j := d.Energy(d.Streaming(900e9).Time); j < 250 || j > 350 {
		t.Errorf("1s at 300W = %f J", j)
	}
}
