// Package gpu is a SIMT timing model standing in for the paper's V100 +
// CUDA-library baseline (Table 1). No GPU is available to this repo, so we
// model the two mechanisms the paper's analysis rests on (§III-A):
//
//  1. Lockstep warps serialize divergent control flow: a warp executing a
//     pointer-chasing loop runs until its *slowest* thread finishes, so
//     warp execution efficiency = active-thread-iterations over
//     (warp-iterations × 32). The paper profiles 62 % on hash-join build
//     and 46 % on probe; the model reproduces the metric from the actual
//     per-thread trip counts of the workload being measured.
//  2. Kernels are bounded by device memory bandwidth; sparse accesses get
//     burst-granularity efficiency.
//
// Kernel time = max(compute time from warp-iterations, memory time from
// bytes moved). Threads cannot spawn, die, or migrate lanes at runtime —
// exactly the restriction Aurochs' dataflow threads remove.
package gpu

import "time"

// Device describes the modeled GPU (defaults approximate a V100).
type Device struct {
	// SMs is the streaming multiprocessor count.
	SMs int
	// WarpSchedulers per SM (warp instructions issued per cycle per SM).
	WarpSchedulers int
	// ClockHz is the SM clock.
	ClockHz float64
	// MemBandwidth is device memory bandwidth in bytes/second.
	MemBandwidth float64
	// BurstBytes is the memory access granularity (a 32 B sector).
	BurstBytes int
	// IterInstr is the warp instructions per pointer-chase iteration
	// (load, compare, branch, bookkeeping).
	IterInstr int
	// DependentAccessRate is the device's sustained rate of
	// *dependent* random memory accesses per second — the pointer-chase
	// limit set by latency, TLB behaviour, and replay, far below what
	// peak bandwidth divided by access size suggests. Published V100
	// pointer-chase/GUPS microbenchmarks land in the low units of 1e9/s.
	DependentAccessRate float64
	// Power is board power in watts (for the energy comparison).
	Power float64
}

// V100 returns the paper's GPU baseline configuration.
func V100() Device {
	return Device{
		SMs:                 80,
		WarpSchedulers:      4,
		ClockHz:             1.38e9,
		MemBandwidth:        900e9,
		BurstBytes:          32,
		IterInstr:           8,
		DependentAccessRate: 2.5e9,
		Power:               300,
	}
}

const warpSize = 32

// KernelResult is the modeled outcome of one GPU kernel launch.
type KernelResult struct {
	// Time is the modeled kernel runtime.
	Time time.Duration
	// WarpEfficiency is active-thread-slots / (warp-slots × 32).
	WarpEfficiency float64
	// MemoryBound reports whether memory time exceeded compute time.
	MemoryBound bool
	// BytesMoved is the modeled memory traffic.
	BytesMoved int64
}

// DivergentLoop models a kernel where thread i runs trips[i] iterations of
// a loop with one sparse memory access per iteration (hash-chain walks,
// tree descents). Threads are packed into warps in launch order; each warp
// runs to its slowest lane. bytesPerIter is the sparse bytes touched per
// iteration (rounded up to burst granularity per access).
func (d Device) DivergentLoop(trips []int, bytesPerIter int) KernelResult {
	var warpIters, threadIters int64
	for w := 0; w < len(trips); w += warpSize {
		end := w + warpSize
		if end > len(trips) {
			end = len(trips)
		}
		max := 0
		for _, t := range trips[w:end] {
			threadIters += int64(t)
			if t > max {
				max = t
			}
		}
		warpIters += int64(max)
	}
	if warpIters == 0 {
		return KernelResult{WarpEfficiency: 1}
	}
	eff := float64(threadIters) / float64(warpIters*warpSize)

	// Compute time: each warp-iteration costs IterInstr issue slots.
	issueSlots := warpIters * int64(d.IterInstr)
	computeSec := float64(issueSlots) / (float64(d.SMs*d.WarpSchedulers) * d.ClockHz)

	// Memory time has two ceilings. Dependent pointer chases are
	// latency-bound: a warp-iteration's loads cannot issue until the
	// previous iteration returns, and idle (diverged) lanes still consume
	// the warp's slot — so the serialized cost is warp-iterations × 32
	// lane-slots against the device's dependent-access rate. Wide blocks
	// additionally pay the bandwidth bill.
	depSec := float64(warpIters*warpSize) / d.DependentAccessRate
	burst := int64(d.BurstBytes)
	if int64(bytesPerIter) > burst {
		burst = (int64(bytesPerIter) + burst - 1) / burst * burst
	}
	bytes := threadIters * burst
	bwSec := float64(bytes) / d.MemBandwidth

	sec := computeSec
	memBound := false
	if depSec > sec {
		sec, memBound = depSec, false // divergence/latency, not bandwidth
	}
	if bwSec > sec {
		sec, memBound = bwSec, true
	}
	return KernelResult{
		Time:           time.Duration(sec * 1e9),
		WarpEfficiency: eff,
		MemoryBound:    memBound,
		BytesMoved:     bytes,
	}
}

// Streaming models a bandwidth-bound pass over bytes (scans, dense
// aggregations, materialization) with a floor of one launch overhead.
func (d Device) Streaming(bytes int64) KernelResult {
	sec := float64(bytes)/d.MemBandwidth + d.LaunchOverhead().Seconds()
	return KernelResult{Time: time.Duration(sec * 1e9), WarpEfficiency: 1, MemoryBound: true, BytesMoved: bytes}
}

// Sort models a radix sort: passes × (read + write) over the data —
// bandwidth bound on large inputs, as GPU sorts are.
func (d Device) Sort(rows int64, rowBytes int) KernelResult {
	const passes = 4 // 8-bit digits over 32-bit keys
	bytes := rows * int64(rowBytes) * 2 * passes
	return d.Streaming(bytes)
}

// LaunchOverhead is the per-kernel launch latency.
func (d Device) LaunchOverhead() time.Duration { return 5 * time.Microsecond }

// Energy converts a runtime to joules at board power.
func (d Device) Energy(t time.Duration) float64 {
	return d.Power * t.Seconds()
}
