// Package gorgon is the Gorgon baseline: the same fabric and memory system
// as Aurochs but restricted to the algorithms the original accelerator
// supports — sort-based joins and aggregations, and brute-force scans in
// place of index structures (paper §I, fig. 11). The contrast with the
// Aurochs kernels is purely algorithmic (O(n log n) vs O(n), table scans vs
// O(log n) probes) on identical hardware, which is exactly how the paper
// frames it.
package gorgon

import (
	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

// Join is Gorgon's equi-join: a sort-merge join (its hash-free kernel).
func Join(hbm *dram.HBM, a, b []record.Rec) ([]record.Rec, core.Result, error) {
	return core.SortMergeJoin(hbm, a, b, 2, func(r record.Rec) uint64 { return uint64(r.Get(0)) })
}

// RangeQuery answers a key-range predicate with a full table scan — Gorgon
// has no index structures, so every range query streams the whole table
// through a filter tile.
func RangeQuery(hbm *dram.HBM, table core.SortedRun, lo, hi uint32) (int, core.Result, error) {
	if hbm == nil {
		panic("gorgon: range query needs the table's HBM")
	}
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	in, hit := g.Link("gsc.in"), g.Link("gsc.hit")
	fabric.NewDRAMScan(g, "gsc.scan", []fabric.Extent{table.Extent()}, table.RecWords, in)
	g.Add(fabric.NewFilter("gsc.pred", func(r *record.Rec) int {
		if k := r.Get(0); k >= lo && k <= hi {
			return 0
		}
		return -1
	}, in, []fabric.Output{{Link: hit}}, nil))
	snk := fabric.NewSink("gsc.sink", hit)
	g.Add(snk)
	cycles, err := g.Run(int64(table.Recs)*64 + 1_000_000)
	res := core.Result{Cycles: cycles, Stats: g.Stats(), DRAMBytes: g.HBM.BytesMoved()}
	return snk.Count(), res, err
}

// SpatialJoin is Gorgon's spatial join: with no spatial index, it presorts
// the larger table on the Z-order of its coordinates and then, for every
// probe rectangle, scans the full sorted table through a compare tile — the
// O(n·m) nested-loop behaviour softened only by the sort's locality, giving
// the O(n log n)-per-probe-batch growth of fig. 11b. probe records are
// [minX, minY, maxX, maxY]; table records [x, y, id].
func SpatialJoin(hbm *dram.HBM, table []record.Rec, probes []record.Rec) (int, core.Result, error) {
	var total core.Result
	if hbm == nil {
		hbm = dram.New(dram.DefaultConfig())
	}
	// Presort the larger table by Morton code (reuses the fabric sort).
	run := core.MaterializeRun(hbm, core.RegionTables, table, 3)
	sorted, sres, err := core.Sort(hbm, run, func(r record.Rec) uint64 {
		return uint64(morton(r.Get(0), r.Get(1)))
	})
	if err != nil {
		return 0, total, err
	}
	total.Cycles += sres.Cycles
	total.DRAMBytes += sres.DRAMBytes

	// Nested loop: every probe rectangle streams the whole table. One
	// fabric pass evaluates all probes against one table scan by keeping
	// the probe set in a compute-tile closure (all-to-all compare), which
	// is the most charitable mapping Gorgon allows.
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	in, hit := g.Link("gsp.in"), g.Link("gsp.hit")
	fabric.NewDRAMScan(g, "gsp.scan", []fabric.Extent{sorted.Extent()}, 3, in)
	hits := 0
	g.Add(fabric.NewMap("gsp.cmp", func(r *record.Rec) {
		x, y := r.Get(0), r.Get(1)
		n := 0
		for _, p := range probes {
			if x >= p.Get(0) && y >= p.Get(1) && x <= p.Get(2) && y <= p.Get(3) {
				n++
			}
		}
		hits += n
	}, in, hit))
	snk := fabric.NewSink("gsp.sink", hit)
	g.Add(snk)
	cycles, err := g.Run(int64(len(table))*64*int64(len(probes)+1) + 1_000_000)
	if err != nil {
		return 0, total, err
	}
	// An all-to-all compare cannot hide behind one pass: each record needs
	// len(probes) comparisons at 16 lanes/cycle, so charge the serialized
	// compare time beyond what the single streaming pass covered.
	compareCycles := int64(len(table)) * int64(len(probes)) / 16
	if compareCycles > cycles {
		cycles = compareCycles
	}
	total.Cycles += cycles
	total.DRAMBytes += g.HBM.BytesMoved()
	total.Stats = g.Stats()
	return hits, total, nil
}

// morton interleaves the low 16 bits of x and y.
func morton(x, y uint32) uint32 {
	sp := func(v uint32) uint32 {
		v &= 0xFFFF
		v = (v | v<<8) & 0x00FF00FF
		v = (v | v<<4) & 0x0F0F0F0F
		v = (v | v<<2) & 0x33333333
		v = (v | v<<1) & 0x55555555
		return v
	}
	return sp(x) | sp(y)<<1
}

// SortedAggregate models Gorgon's group-by: sort on the group key, then a
// linear scan with an accumulator (vs. Aurochs' hash aggregation).
func SortedAggregate(hbm *dram.HBM, rows []record.Rec) (int, core.Result, error) {
	if hbm == nil {
		hbm = dram.New(dram.DefaultConfig())
	}
	var total core.Result
	run := core.MaterializeRun(hbm, core.RegionTables, rows, 2)
	sorted, sres, err := core.Sort(hbm, run, func(r record.Rec) uint64 { return uint64(r.Get(0)) })
	if err != nil {
		return 0, total, err
	}
	total.Cycles += sres.Cycles
	total.DRAMBytes += sres.DRAMBytes

	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	in, out := g.Link("gag.in"), g.Link("gag.out")
	fabric.NewDRAMScan(g, "gag.scan", []fabric.Extent{sorted.Extent()}, 2, in)
	groups := 0
	last := uint32(0xFFFFFFFF)
	g.Add(fabric.NewMap("gag.acc", func(r *record.Rec) {
		if r.Get(0) != last {
			groups++
			last = r.Get(0)
		}
	}, in, out))
	snk := fabric.NewSink("gag.sink", out)
	g.Add(snk)
	cycles, err := g.Run(int64(len(rows))*64 + 1_000_000)
	if err != nil {
		return 0, total, err
	}
	total.Cycles += cycles
	total.DRAMBytes += g.HBM.BytesMoved()
	return groups, total, nil
}
