package gorgon

import (
	"math/rand"
	"testing"

	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/record"
)

func TestJoinCorrectAndSlowAsymptotically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) []record.Rec {
		out := make([]record.Rec, n)
		for i := range out {
			out[i] = record.Make(rng.Uint32()%uint32(n), uint32(i))
		}
		return out
	}
	a, b := mk(2000), mk(2000)
	got, res, err := Join(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	cnt := map[uint32]int{}
	for _, r := range a {
		cnt[r.Get(0)]++
	}
	want := 0
	for _, r := range b {
		want += cnt[r.Get(0)]
	}
	if len(got) != want {
		t.Fatalf("matches %d want %d", len(got), want)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestRangeQueryScansWholeTable(t *testing.T) {
	hbm := dram.New(dram.DefaultConfig())
	recs := make([]record.Rec, 5000)
	for i := range recs {
		recs[i] = record.Make(uint32(i), uint32(i))
	}
	run := core.MaterializeRun(hbm, core.RegionTables, recs, 2)
	hits, res, err := RangeQuery(hbm, run, 100, 199)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 100 {
		t.Fatalf("hits=%d", hits)
	}
	// A scan reads the whole table regardless of selectivity.
	if res.DRAMBytes < int64(len(recs)*8) {
		t.Errorf("scan moved %d bytes; full table is %d", res.DRAMBytes, len(recs)*8)
	}
}

func TestSpatialJoinCountsOverlaps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	table := make([]record.Rec, 3000)
	for i := range table {
		table[i] = record.Make(rng.Uint32()%(1<<16), rng.Uint32()%(1<<16), uint32(i))
	}
	probes := []record.Rec{
		record.Make(0, 0, 1<<15, 1<<15), // a quarter of the space
		record.Make(100, 100, 99, 99),   // empty (inverted)
	}
	hits, res, err := SpatialJoin(nil, table, probes)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range table {
		if r.Get(0) <= 1<<15 && r.Get(1) <= 1<<15 {
			want++
		}
	}
	if hits != want {
		t.Fatalf("hits=%d want %d", hits, want)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}

// TestSpatialJoinQuadraticCost: doubling the probe count should roughly
// double the compare time — the all-to-all behaviour that makes index-free
// spatial joins impractical (paper fig. 11b).
func TestSpatialJoinQuadraticCost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	table := make([]record.Rec, 4000)
	for i := range table {
		table[i] = record.Make(rng.Uint32()%(1<<16), rng.Uint32()%(1<<16), uint32(i))
	}
	probes := func(n int) []record.Rec {
		out := make([]record.Rec, n)
		for i := range out {
			x, y := rng.Uint32()%(1<<16), rng.Uint32()%(1<<16)
			out[i] = record.Make(x, y, x+1000, y+1000)
		}
		return out
	}
	_, r64, err := SpatialJoin(nil, table, probes(64))
	if err != nil {
		t.Fatal(err)
	}
	_, r256, err := SpatialJoin(nil, table, probes(256))
	if err != nil {
		t.Fatal(err)
	}
	if r256.Cycles < r64.Cycles*2 {
		t.Errorf("4x probes: %d -> %d cycles; expected ≳2x growth", r64.Cycles, r256.Cycles)
	}
}

func TestSortedAggregate(t *testing.T) {
	rows := make([]record.Rec, 3000)
	for i := range rows {
		rows[i] = record.Make(uint32(i%57), 1)
	}
	groups, res, err := SortedAggregate(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	if groups != 57 {
		t.Fatalf("groups=%d", groups)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}
