package record

// VecPool is a free list of Vector buffers for paths that materialize
// vectors outside link rings (staging scratch, re-vectorization buffers).
// Get hands out a cleared vector; Put recycles it once the consumer has
// copied the lanes out — the explicit-recycle discipline that keeps the
// steady-state tick path allocation-free (a sink that recycles what it
// consumes never grows the heap).
//
// The pool is deliberately not synchronized: each component owns its own
// pool, and the parallel kernel never ticks one component from two workers.
type VecPool struct {
	free []*Vector
}

// Get returns a vector with an empty mask. Steady state (every Get matched
// by a Put) performs no allocation.
func (p *VecPool) Get() *Vector {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		v.Reset()
		return v
	}
	return &Vector{}
}

// Put returns a vector to the pool. The caller must not retain v.
func (p *VecPool) Put(v *Vector) {
	if v == nil {
		return
	}
	p.free = append(p.free, v)
}
