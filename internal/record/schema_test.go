package record

import (
	"strings"
	"testing"
)

func TestTrySchemaErrors(t *testing.T) {
	wide := make([]string, MaxFields+1)
	for i := range wide {
		wide[i] = string(rune('a' + i))
	}
	cases := []struct {
		name  string
		names []string
		want  string // substring of the error, "" for success
	}{
		{"ok", []string{"k", "v"}, ""},
		{"empty-ok", nil, ""},
		{"max-width-ok", wide[:MaxFields], ""},
		{"too-wide", wide, "MaxFields"},
		{"dup", []string{"a", "a"}, "duplicate"},
		{"empty-name", []string{"a", ""}, "empty field name"},
	}
	for _, tc := range cases {
		s, err := TrySchema(tc.names...)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			} else if s.Len() != len(tc.names) {
				t.Errorf("%s: len=%d want %d", tc.name, s.Len(), len(tc.names))
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestTryWith(t *testing.T) {
	base := NewSchema("k", "v")
	s, err := base.TryWith("ptr")
	if err != nil || s.MustField("ptr") != 2 {
		t.Fatalf("TryWith: %v %v", s, err)
	}
	if base.Len() != 2 {
		t.Error("TryWith must not mutate the receiver")
	}
	names := make([]string, MaxFields-1)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	nearFull := NewSchema(names...)
	if _, err := nearFull.TryWith("z"); err != nil {
		t.Errorf("widening to exactly MaxFields must succeed: %v", err)
	}
	if _, err := nearFull.TryWith("y", "z"); err == nil {
		t.Error("widening past MaxFields must fail")
	}
	if _, err := base.TryWith("k"); err == nil {
		t.Error("widening with a duplicate name must fail")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema("k", "v")
	b := NewSchema("k", "v")
	c := NewSchema("k", "w")
	d := NewSchema("k")
	if !a.Equal(b) || !a.Equal(a) {
		t.Error("identical schemas must be Equal")
	}
	if a.Equal(c) || a.Equal(d) || d.Equal(a) {
		t.Error("different schemas reported Equal")
	}
	var nilS *Schema
	if a.Equal(nil) || nilS.Equal(a) {
		t.Error("nil vs non-nil must not be Equal")
	}
	if !nilS.Equal(nil) {
		t.Error("nil.Equal(nil) must hold")
	}
}

func TestAssignableTo(t *testing.T) {
	wide := NewSchema("key", "val", "bucket", "slot")
	narrow := NewSchema("key", "val")
	renamed := NewSchema("key", "value")
	reordered := NewSchema("val", "key")

	if !wide.AssignableTo(narrow) {
		t.Error("wider producer must feed a prefix consumer")
	}
	if !wide.AssignableTo(wide) {
		t.Error("schema must be assignable to itself")
	}
	if narrow.AssignableTo(wide) {
		t.Error("narrow producer must not feed a wider consumer")
	}
	if wide.AssignableTo(renamed) {
		t.Error("renamed field must break assignability")
	}
	if wide.AssignableTo(reordered) {
		t.Error("reordered fields must break assignability")
	}
	empty := NewSchema()
	if !wide.AssignableTo(empty) {
		t.Error("the empty schema is a prefix of everything")
	}
	var nilS *Schema
	if wide.AssignableTo(nil) || nilS.AssignableTo(narrow) {
		t.Error("nil schemas are never assignable")
	}
}
