// Package record implements the data model shared by every layer of the
// Aurochs simulator: fixed-width records made of 32-bit fields, the 16-lane
// vectors that flow between tiles, and the named schemas that give fields
// meaning at graph-construction time.
//
// A record is the paper's "thread record": a small, ephemeral bundle of
// 32-bit words that fully captures one dataflow thread's local state. All
// records in a stream share a schema; pipeline stages mutate records as they
// flow through compute and scratchpad tiles.
package record

import (
	"fmt"
	"math"
	"strings"
)

const (
	// NumLanes is the vector width of a Gorgon/Aurochs compute or
	// scratchpad tile: 16 records processed in SIMD lockstep.
	NumLanes = 16

	// MaxFields bounds the fields in one record. The paper's kernels use
	// 3-6 fields; queries with wide payloads use up to 12. Keeping the
	// array inline (no heap indirection) keeps vectors cache-friendly.
	MaxFields = 12
)

// Rec is a single record: N live 32-bit fields. Fields beyond N are zero.
// The zero value is an empty record.
type Rec struct {
	F [MaxFields]uint32
	N uint8
}

// Make builds a record from the given field values.
func Make(fields ...uint32) Rec {
	if len(fields) > MaxFields {
		panic(fmt.Sprintf("record: %d fields exceeds MaxFields=%d", len(fields), MaxFields))
	}
	var r Rec
	copy(r.F[:], fields)
	r.N = uint8(len(fields))
	return r
}

// Get returns field i. It panics if i is out of range, matching how a
// misconfigured tile would fail at reconfiguration time.
func (r Rec) Get(i int) uint32 {
	if i < 0 || i >= int(r.N) {
		panic(fmt.Sprintf("record: field %d out of range (N=%d)", i, r.N))
	}
	return r.F[i]
}

// Set returns a copy of r with field i replaced, growing N if needed.
func (r Rec) Set(i int, v uint32) Rec {
	if i < 0 || i >= MaxFields {
		panic(fmt.Sprintf("record: field %d out of range (MaxFields=%d)", i, MaxFields))
	}
	r.F[i] = v
	if int(r.N) <= i {
		r.N = uint8(i + 1)
	}
	return r
}

// Put writes field i in place, growing N if needed. It is the mutating
// form of Set for hot paths where records live in arenas or link rings and
// a 52-byte copy per field write is measurable.
func (r *Rec) Put(i int, v uint32) {
	if i < 0 || i >= MaxFields {
		panic(fmt.Sprintf("record: field %d out of range (MaxFields=%d)", i, MaxFields))
	}
	r.F[i] = v
	if int(r.N) <= i {
		r.N = uint8(i + 1)
	}
}

// PutU64 writes v across fields i and i+1 in place.
func (r *Rec) PutU64(i int, v uint64) {
	r.Put(i, uint32(v))
	r.Put(i+1, uint32(v>>32))
}

// Append returns a copy of r with v appended as a new trailing field.
func (r Rec) Append(v uint32) Rec {
	if int(r.N) >= MaxFields {
		panic("record: append exceeds MaxFields")
	}
	r.F[r.N] = v
	r.N++
	return r
}

// Truncate returns a copy of r keeping only the first n fields.
func (r Rec) Truncate(n int) Rec {
	if n < 0 || n > int(r.N) {
		panic(fmt.Sprintf("record: truncate %d out of range (N=%d)", n, r.N))
	}
	for i := n; i < int(r.N); i++ {
		r.F[i] = 0
	}
	r.N = uint8(n)
	return r
}

// Len reports the number of live fields.
func (r Rec) Len() int { return int(r.N) }

// U64 reads fields i (low word) and i+1 (high word) as one 64-bit value.
// Keys wider than a 32-bit lane are split across adjacent fields and
// compared across pipeline stages, mirroring Gorgon's record layout.
func (r Rec) U64(i int) uint64 {
	return uint64(r.Get(i)) | uint64(r.Get(i+1))<<32
}

// SetU64 writes v across fields i and i+1.
func (r Rec) SetU64(i int, v uint64) Rec {
	r = r.Set(i, uint32(v))
	return r.Set(i+1, uint32(v>>32))
}

// F32 interprets field i as an IEEE-754 float32.
func (r Rec) F32(i int) float32 { return math.Float32frombits(r.Get(i)) }

// SetF32 stores a float32 in field i.
func (r Rec) SetF32(i int, v float32) Rec { return r.Set(i, math.Float32bits(v)) }

// I32 interprets field i as a signed 32-bit integer.
func (r Rec) I32(i int) int32 { return int32(r.Get(i)) }

// SetI32 stores a signed 32-bit integer in field i.
func (r Rec) SetI32(i int, v int32) Rec { return r.Set(i, uint32(v)) }

// Equal reports whether two records have identical live fields.
func (r Rec) Equal(o Rec) bool {
	if r.N != o.N {
		return false
	}
	for i := 0; i < int(r.N); i++ {
		if r.F[i] != o.F[i] {
			return false
		}
	}
	return true
}

// String renders the record for debugging.
func (r Rec) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < int(r.N); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", r.F[i])
	}
	b.WriteByte(']')
	return b.String()
}
