package record

import "testing"

func TestVecPoolRoundTrip(t *testing.T) {
	var p VecPool
	v := p.Get()
	v.Push(Make(1, 2))
	p.Put(v)
	w := p.Get()
	if w != v {
		t.Fatalf("pool did not recycle the returned vector")
	}
	if w.Mask != 0 {
		t.Fatalf("recycled vector not cleared: mask %#x", w.Mask)
	}
	p.Put(nil) // must be a no-op
	if got := p.Get(); got == nil {
		t.Fatalf("Get returned nil")
	}
}

func TestVecPoolZeroAllocSteadyState(t *testing.T) {
	var p VecPool
	p.Put(p.Get()) // prime the free list
	allocs := testing.AllocsPerRun(1000, func() {
		v := p.Get()
		v.Push(Make(3, 4))
		p.Put(v)
	})
	if allocs != 0 {
		t.Fatalf("VecPool Get/Put steady state allocates %.1f allocs/op; want 0", allocs)
	}
}
