package record

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is one SIMD beat through a 16-lane tile: up to NumLanes records
// plus a valid mask. Thread compaction (paper §III-A, fig. 5c) produces
// dense vectors — all valid lanes packed low — which is the form every tile
// in this simulator emits.
type Vector struct {
	Lane [NumLanes]Rec
	Mask uint16
}

// Count returns the number of valid lanes.
func (v Vector) Count() int { return bits.OnesCount16(v.Mask) }

// Valid reports whether lane i holds a live record.
func (v Vector) Valid(i int) bool { return v.Mask&(1<<uint(i)) != 0 }

// Dense reports whether all valid lanes are packed at the low end.
func (v Vector) Dense() bool {
	n := v.Count()
	return v.Mask == uint16(1<<uint(n))-1
}

// Push appends a record to the next free low lane of a dense vector and
// reports whether the vector is now full. It panics on a full vector.
func (v *Vector) Push(r Rec) bool {
	n := v.Count()
	if n >= NumLanes {
		panic("record: push to full vector")
	}
	v.Lane[n] = r
	v.Mask |= 1 << uint(n)
	return n+1 == NumLanes
}

// PushRef claims the next free low lane of a dense vector and returns a
// pointer to it, so callers move records with a single copy instead of
// passing them through Push's stack argument. It panics on a full vector.
func (v *Vector) PushRef() *Rec {
	n := v.Count()
	if n >= NumLanes {
		panic("record: push to full vector")
	}
	v.Mask |= 1 << uint(n)
	return &v.Lane[n]
}

// Compact returns a dense copy of v: valid lanes shuffled low, mask packed.
// This is the functional effect of the shuffle network + barrel shifter in
// the compute tile's compaction datapath.
func (v Vector) Compact() Vector {
	var out Vector
	for i := 0; i < NumLanes; i++ {
		if v.Valid(i) {
			out.Push(v.Lane[i])
		}
	}
	return out
}

// Reset clears the vector for reuse: the mask is zeroed, so stale lane
// contents are unobservable through Valid/Records/Flatten. This is the
// in-place counterpart of assigning Vector{} without the 840-byte copy,
// used by the zero-allocation staging paths (sim.Link.StageVec, pools).
func (v *Vector) Reset() { v.Mask = 0 }

// Records returns the valid records in lane order.
func (v Vector) Records() []Rec {
	out := make([]Rec, 0, v.Count())
	for i := 0; i < NumLanes; i++ {
		if v.Valid(i) {
			out = append(out, v.Lane[i])
		}
	}
	return out
}

// AppendRecords appends the valid records to dst in lane order and returns
// the extended slice. Unlike Records it allocates only when dst lacks
// capacity, so steady-state consumers (sinks, merges, DRAM backlogs) that
// recycle their accumulators run allocation-free.
func (v *Vector) AppendRecords(dst []Rec) []Rec {
	for i := 0; i < NumLanes; i++ {
		if v.Valid(i) {
			dst = append(dst, v.Lane[i])
		}
	}
	return dst
}

// String renders the vector for debugging.
func (v Vector) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vec{mask=%016b", v.Mask)
	for i := 0; i < NumLanes; i++ {
		if v.Valid(i) {
			fmt.Fprintf(&b, " %d:%s", i, v.Lane[i])
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Vectorize packs a record slice into dense vectors, NumLanes per vector.
func Vectorize(recs []Rec) []Vector {
	out := make([]Vector, 0, (len(recs)+NumLanes-1)/NumLanes)
	var cur Vector
	for _, r := range recs {
		if cur.Push(r) {
			out = append(out, cur)
			cur = Vector{}
		}
	}
	if cur.Count() > 0 {
		out = append(out, cur)
	}
	return out
}

// Flatten concatenates the valid records of a vector slice.
func Flatten(vecs []Vector) []Rec {
	n := 0
	for _, v := range vecs {
		n += v.Count()
	}
	out := make([]Rec, 0, n)
	for _, v := range vecs {
		out = append(out, v.Records()...)
	}
	return out
}
