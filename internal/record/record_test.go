package record

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeGetSet(t *testing.T) {
	r := Make(1, 2, 3)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	for i, want := range []uint32{1, 2, 3} {
		if got := r.Get(i); got != want {
			t.Errorf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	r2 := r.Set(1, 99)
	if r2.Get(1) != 99 || r.Get(1) != 2 {
		t.Errorf("Set must copy: got r2[1]=%d r[1]=%d", r2.Get(1), r.Get(1))
	}
	r3 := r.Set(5, 7)
	if r3.Len() != 6 || r3.Get(5) != 7 || r3.Get(3) != 0 {
		t.Errorf("Set beyond N should grow: %v", r3)
	}
}

func TestAppendTruncate(t *testing.T) {
	r := Make(1).Append(2).Append(3)
	if r.Len() != 3 || r.Get(2) != 3 {
		t.Fatalf("append chain broken: %v", r)
	}
	tr := r.Truncate(1)
	if tr.Len() != 1 || tr.F[1] != 0 || tr.F[2] != 0 {
		t.Errorf("truncate must zero dropped fields: %v", tr)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"get":       func() { Make(1).Get(1) },
		"get-neg":   func() { Make(1).Get(-1) },
		"set-max":   func() { Make(1).Set(MaxFields, 0) },
		"trunc-big": func() { Make(1).Truncate(2) },
		"make-wide": func() { Make(make([]uint32, MaxFields+1)...) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestU64RoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		r := Make(0, 0, 0).SetU64(1, v)
		return r.U64(1) == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestF32AndI32RoundTrip(t *testing.T) {
	if err := quick.Check(func(f float32, i int32) bool {
		r := Make(0, 0).SetF32(0, f).SetI32(1, i)
		// NaN != NaN, so compare bit patterns.
		return r.Get(0) == Make(0).SetF32(0, f).Get(0) && r.I32(1) == i
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	a, b := Make(1, 2), Make(1, 2)
	if !a.Equal(b) {
		t.Error("identical records must be equal")
	}
	if a.Equal(Make(1, 2, 0)) {
		t.Error("different N must not be equal")
	}
	if a.Equal(Make(1, 3)) {
		t.Error("different fields must not be equal")
	}
}

func TestVectorPushCount(t *testing.T) {
	var v Vector
	for i := 0; i < NumLanes; i++ {
		full := v.Push(Make(uint32(i)))
		if full != (i == NumLanes-1) {
			t.Errorf("Push %d: full=%v", i, full)
		}
	}
	if v.Count() != NumLanes || !v.Dense() {
		t.Fatalf("count=%d dense=%v", v.Count(), v.Dense())
	}
	defer func() {
		if recover() == nil {
			t.Error("push to full vector must panic")
		}
	}()
	v.Push(Make(0))
}

func TestVectorCompact(t *testing.T) {
	var v Vector
	v.Lane[3] = Make(3)
	v.Lane[7] = Make(7)
	v.Lane[12] = Make(12)
	v.Mask = 1<<3 | 1<<7 | 1<<12
	c := v.Compact()
	if !c.Dense() || c.Count() != 3 {
		t.Fatalf("compact not dense: %v", c)
	}
	want := []uint32{3, 7, 12}
	for i, r := range c.Records() {
		if r.Get(0) != want[i] {
			t.Errorf("lane %d = %d, want %d (order preserved)", i, r.Get(0), want[i])
		}
	}
}

func TestVectorizeFlattenRoundTrip(t *testing.T) {
	if err := quick.Check(func(n uint8) bool {
		recs := make([]Rec, int(n))
		for i := range recs {
			recs[i] = Make(uint32(i), rand.Uint32())
		}
		got := Flatten(Vectorize(recs))
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !got[i].Equal(recs[i]) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorizeDensity(t *testing.T) {
	recs := make([]Rec, 37)
	vecs := Vectorize(recs)
	if len(vecs) != 3 {
		t.Fatalf("37 records -> %d vectors, want 3", len(vecs))
	}
	if vecs[0].Count() != 16 || vecs[1].Count() != 16 || vecs[2].Count() != 5 {
		t.Errorf("counts: %d %d %d", vecs[0].Count(), vecs[1].Count(), vecs[2].Count())
	}
	for _, v := range vecs {
		if !v.Dense() {
			t.Error("vectorize must emit dense vectors")
		}
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema("key", "ptr", "val")
	if s.Len() != 3 {
		t.Fatalf("len=%d", s.Len())
	}
	if i := s.MustField("ptr"); i != 1 {
		t.Errorf("ptr at %d, want 1", i)
	}
	if _, ok := s.Field("nope"); ok {
		t.Error("missing field reported present")
	}
	s2 := s.With("extra")
	if s2.MustField("extra") != 3 || s.Len() != 3 {
		t.Error("With must not mutate the receiver")
	}
	proj, fn := s.Project("val", "key")
	if proj.MustField("val") != 0 {
		t.Error("projection order wrong")
	}
	r := fn(Make(10, 20, 30))
	if r.Get(0) != 30 || r.Get(1) != 10 || r.Len() != 2 {
		t.Errorf("projection record wrong: %v", r)
	}
}

func TestSchemaPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dup":     func() { NewSchema("a", "a") },
		"empty":   func() { NewSchema("") },
		"missing": func() { NewSchema("a").MustField("b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
