package record

import (
	"fmt"
	"strings"
)

// Schema names the fields of every record in a stream. Schemas are static
// per stream — the hardware analogue is the per-tile reconfiguration that
// fixes a record layout before a kernel runs. All field lookups happen at
// graph-construction time, never per record.
type Schema struct {
	names []string
	idx   map[string]int
}

// NewSchema builds a schema from ordered field names. Names must be unique
// and non-empty.
func NewSchema(names ...string) *Schema {
	if len(names) > MaxFields {
		panic(fmt.Sprintf("record: schema with %d fields exceeds MaxFields=%d", len(names), MaxFields))
	}
	s := &Schema{names: append([]string(nil), names...), idx: make(map[string]int, len(names))}
	for i, n := range names {
		if n == "" {
			panic("record: empty field name")
		}
		if _, dup := s.idx[n]; dup {
			panic(fmt.Sprintf("record: duplicate field %q", n))
		}
		s.idx[n] = i
	}
	return s
}

// Len reports the number of fields.
func (s *Schema) Len() int { return len(s.names) }

// Names returns the field names in order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Field returns the index of the named field and whether it exists.
func (s *Schema) Field(name string) (int, bool) {
	i, ok := s.idx[name]
	return i, ok
}

// MustField returns the index of the named field, panicking if absent.
// Use at graph-construction time where a missing field is a programming
// error in the kernel mapping.
func (s *Schema) MustField(name string) int {
	i, ok := s.idx[name]
	if !ok {
		panic(fmt.Sprintf("record: schema has no field %q (have %s)", name, strings.Join(s.names, ", ")))
	}
	return i
}

// With returns a new schema with extra trailing fields appended.
func (s *Schema) With(names ...string) *Schema {
	return NewSchema(append(s.Names(), names...)...)
}

// Project returns a new schema containing only the named fields, in the
// given order, plus a projection function mapping records of s to records
// of the new schema.
func (s *Schema) Project(names ...string) (*Schema, func(Rec) Rec) {
	idxs := make([]int, len(names))
	for i, n := range names {
		idxs[i] = s.MustField(n)
	}
	out := NewSchema(names...)
	proj := func(r Rec) Rec {
		var o Rec
		for _, i := range idxs {
			o = o.Append(r.Get(i))
		}
		return o
	}
	return out, proj
}

// String renders the schema for debugging.
func (s *Schema) String() string {
	return "schema(" + strings.Join(s.names, ", ") + ")"
}
