package record

import (
	"fmt"
	"strings"
)

// Schema names the fields of every record in a stream. Schemas are static
// per stream — the hardware analogue is the per-tile reconfiguration that
// fixes a record layout before a kernel runs. All field lookups happen at
// graph-construction time, never per record.
type Schema struct {
	names []string
	idx   map[string]int
}

// NewSchema builds a schema from ordered field names. Names must be unique
// and non-empty.
func NewSchema(names ...string) *Schema {
	s, err := TrySchema(names...)
	if err != nil {
		panic("record: " + err.Error())
	}
	return s
}

// TrySchema is NewSchema without the panic: it returns an error for a
// schema that is too wide, has an empty name, or repeats one. Graph
// builders use it to turn an over-wide widening into a reportable
// construction defect instead of a crash.
func TrySchema(names ...string) (*Schema, error) {
	if len(names) > MaxFields {
		return nil, fmt.Errorf("schema with %d fields exceeds MaxFields=%d (%s)",
			len(names), MaxFields, strings.Join(names, ", "))
	}
	s := &Schema{names: append([]string(nil), names...), idx: make(map[string]int, len(names))}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("empty field name at index %d", i)
		}
		if _, dup := s.idx[n]; dup {
			return nil, fmt.Errorf("duplicate field %q", n)
		}
		s.idx[n] = i
	}
	return s, nil
}

// Len reports the number of fields.
func (s *Schema) Len() int { return len(s.names) }

// Names returns the field names in order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Field returns the index of the named field and whether it exists.
func (s *Schema) Field(name string) (int, bool) {
	i, ok := s.idx[name]
	return i, ok
}

// MustField returns the index of the named field, panicking if absent.
// Use at graph-construction time where a missing field is a programming
// error in the kernel mapping.
func (s *Schema) MustField(name string) int {
	i, ok := s.idx[name]
	if !ok {
		panic(fmt.Sprintf("record: schema has no field %q (have %s)", name, strings.Join(s.names, ", ")))
	}
	return i
}

// With returns a new schema with extra trailing fields appended.
func (s *Schema) With(names ...string) *Schema {
	return NewSchema(append(s.Names(), names...)...)
}

// TryWith is With without the panic: widening past MaxFields (or with a
// duplicate name) comes back as an error the caller can report.
func (s *Schema) TryWith(names ...string) (*Schema, error) {
	return TrySchema(append(s.Names(), names...)...)
}

// Equal reports whether two schemas name the same fields in the same order.
func (s *Schema) Equal(t *Schema) bool {
	if s == nil || t == nil {
		return s == t
	}
	if len(s.names) != len(t.names) {
		return false
	}
	for i, n := range s.names {
		if t.names[i] != n {
			return false
		}
	}
	return true
}

// AssignableTo reports whether a stream carrying records of schema s can
// feed a consumer that declares schema t: t's fields must be a positional
// prefix of s's. This is the subtyping rule of the link type system —
// records may carry extra *trailing* fields the consumer never looks at
// (a recirculating path widens threads with loop-local state; the loop
// entry still only requires the external fields), but every field the
// consumer names must exist at the index the consumer will read it from.
// Field identity is positional: names must match exactly, because a
// consumer's compiled field offsets (MustField at construction time) bind
// to positions, and a renamed field signals a layout change.
func (s *Schema) AssignableTo(t *Schema) bool {
	if s == nil || t == nil {
		return false
	}
	if len(t.names) > len(s.names) {
		return false
	}
	for i, n := range t.names {
		if s.names[i] != n {
			return false
		}
	}
	return true
}

// Project returns a new schema containing only the named fields, in the
// given order, plus a projection function mapping records of s to records
// of the new schema.
func (s *Schema) Project(names ...string) (*Schema, func(Rec) Rec) {
	idxs := make([]int, len(names))
	for i, n := range names {
		idxs[i] = s.MustField(n)
	}
	out := NewSchema(names...)
	proj := func(r Rec) Rec {
		var o Rec
		for _, i := range idxs {
			o = o.Append(r.Get(i))
		}
		return o
	}
	return out, proj
}

// String renders the schema for debugging.
func (s *Schema) String() string {
	return "schema(" + strings.Join(s.names, ", ") + ")"
}
