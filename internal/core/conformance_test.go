package core

import (
	"testing"

	"aurochs/internal/fabric"
	"aurochs/internal/index/rtree"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// TestKernelIdleConformance: full kernel pipelines — hash build, hash
// probe, radix partition — run under sim.VerifyIdleContract, which ticks
// behind every Idle=true answer and proves it a no-op. This sweeps the
// component types the small fabric conformance cases cannot reach solo:
// scratchpad tiles inside kernel wiring, DRAM nodes, the HBM clock
// adapter, and the kernels' recirculating loops.
func TestKernelIdleConformance(t *testing.T) {
	input := make([]record.Rec, 400)
	for i := range input {
		input[i] = record.Make(uint32(i*7%1024), uint32(i))
	}

	t.Run("hash-build", func(t *testing.T) {
		g := fabric.NewGraph()
		g.AttachHBM(defaultHBM())
		_, snk, err := BuildHashTableInto(g, "bld", DefaultHashTableParams(len(input)), InRecs(input))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyIdleContract(g.Sys, 2_000_000); err != nil {
			t.Fatal(err)
		}
		if snk.Count() != len(input) {
			t.Fatalf("inserted %d of %d", snk.Count(), len(input))
		}
	})

	t.Run("hash-probe", func(t *testing.T) {
		ht, _, err := BuildHashTable(DefaultHashTableParams(len(input)), input, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := fabric.NewGraph()
		g.AttachHBM(ht.HBM)
		snk := ProbeHashTableInto(g, "prb", ht, InRecs(input), ProbeOptions{})
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyIdleContract(g.Sys, 2_000_000); err != nil {
			t.Fatal(err)
		}
		if snk.Count() == 0 {
			t.Fatal("probe matched nothing")
		}
	})

	t.Run("partition", func(t *testing.T) {
		g := fabric.NewGraph()
		g.AttachHBM(defaultHBM())
		p := DefaultPartitionParams(len(input), 16, 2)
		ps, snk, err := PartitionInto(g, "prt", p, InRecs(input))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyIdleContract(g.Sys, 4_000_000); err != nil {
			t.Fatal(err)
		}
		FinishPartition(ps)
		if snk.Count() != len(input) {
			t.Fatalf("stored %d of %d", snk.Count(), len(input))
		}
	})
}

// TestTileSorterIdleConformance: the double-buffered sort tile, solo.
func TestTileSorterIdleConformance(t *testing.T) {
	g := fabric.NewGraph()
	in, out := g.Link("in"), g.Link("out")
	recs := make([]record.Rec, 700)
	for i := range recs {
		recs[i] = record.Make(uint32((i*2654435761)%4096), uint32(i))
	}
	g.Add(fabric.NewSource("src", recs, in))
	g.Add(newTileSorter("ts", func(r record.Rec) uint64 { return uint64(r.Get(0)) }, 256, in, out))
	snk := fabric.NewSink("snk", out)
	g.Add(snk)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if err := sim.VerifyIdleContract(g.Sys, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != len(recs) {
		t.Fatalf("sorted %d of %d", snk.Count(), len(recs))
	}
}

// TestKernelWakeConformance: the same kernel pipelines on the wake-audit
// harness — every cycle, each sleeping component's Idle answer is
// cross-checked. This is the regression gate for the callback-host wake
// class: an HBM completion callback mutating loop-control state must wake
// the loop's entry merge, or the walk stalls only at scales where an
// expansion kills its last thread from inside the callback.
func TestKernelWakeConformance(t *testing.T) {
	input := make([]record.Rec, 400)
	for i := range input {
		input[i] = record.Make(uint32(i*7%1024), uint32(i))
	}

	t.Run("hash-probe", func(t *testing.T) {
		ht, _, err := BuildHashTable(DefaultHashTableParams(len(input)), input, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := fabric.NewGraph()
		g.AttachHBM(ht.HBM)
		snk := ProbeHashTableInto(g, "prb", ht, InRecs(input), ProbeOptions{})
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyWakeContract(g.Sys, 2_000_000); err != nil {
			t.Fatal(err)
		}
		if snk.Count() == 0 {
			t.Fatal("probe matched nothing")
		}
	})

	t.Run("tree-walk", func(t *testing.T) {
		ents := make([]rtree.Entry, 600)
		for i := range ents {
			x := uint32(i%30) * 30
			y := uint32(i/30) * 30
			ents[i] = rtree.Entry{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + 25, MaxY: y + 25}, ID: uint32(i)}
		}
		tr := rtree.Build(defaultHBM(), RegionTables, ents, 1024)
		var qs []WindowQuery
		for i := 0; i < 40; i++ {
			x := uint32(i%8) * 100
			y := uint32(i/8) * 100
			qs = append(qs, WindowQuery{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + 150, MaxY: y + 150}, Tag: uint32(i)})
		}
		g := fabric.NewGraph()
		g.AttachHBM(tr.HBM)
		var threads []record.Rec
		for _, q := range qs {
			threads = append(threads, record.Make(q.Rect.MinX, q.Rect.MinY, q.Rect.MaxX, q.Rect.MaxY, tr.Root, 0, 0, q.Tag))
		}
		snk := wireTreeWalk(g, "rtw", threads, rtree.NodeWords,
			func(r record.Rec) uint32 { return tr.NodeAddr(r.Get(rtPtr)) },
			expandRTreeNode, rtMark,
			func(r *record.Rec) {
				*r = record.Make(r.Get(rtResID), r.Get(rtTag))
			}, 16)
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyWakeContract(g.Sys, 2_000_000); err != nil {
			t.Fatal(err)
		}
		if snk.Count() == 0 {
			t.Fatal("window walk matched nothing")
		}
	})
}
