package core

import (
	"testing"

	"aurochs/internal/fabric"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// TestKernelIdleConformance: full kernel pipelines — hash build, hash
// probe, radix partition — run under sim.VerifyIdleContract, which ticks
// behind every Idle=true answer and proves it a no-op. This sweeps the
// component types the small fabric conformance cases cannot reach solo:
// scratchpad tiles inside kernel wiring, DRAM nodes, the HBM clock
// adapter, and the kernels' recirculating loops.
func TestKernelIdleConformance(t *testing.T) {
	input := make([]record.Rec, 400)
	for i := range input {
		input[i] = record.Make(uint32(i*7%1024), uint32(i))
	}

	t.Run("hash-build", func(t *testing.T) {
		g := fabric.NewGraph()
		g.AttachHBM(defaultHBM())
		_, snk, err := BuildHashTableInto(g, "bld", DefaultHashTableParams(len(input)), InRecs(input))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyIdleContract(g.Sys, 2_000_000); err != nil {
			t.Fatal(err)
		}
		if snk.Count() != len(input) {
			t.Fatalf("inserted %d of %d", snk.Count(), len(input))
		}
	})

	t.Run("hash-probe", func(t *testing.T) {
		ht, _, err := BuildHashTable(DefaultHashTableParams(len(input)), input, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := fabric.NewGraph()
		g.AttachHBM(ht.HBM)
		snk := ProbeHashTableInto(g, "prb", ht, InRecs(input), ProbeOptions{})
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyIdleContract(g.Sys, 2_000_000); err != nil {
			t.Fatal(err)
		}
		if snk.Count() == 0 {
			t.Fatal("probe matched nothing")
		}
	})

	t.Run("partition", func(t *testing.T) {
		g := fabric.NewGraph()
		g.AttachHBM(defaultHBM())
		p := DefaultPartitionParams(len(input), 16, 2)
		ps, snk, err := PartitionInto(g, "prt", p, InRecs(input))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if err := sim.VerifyIdleContract(g.Sys, 4_000_000); err != nil {
			t.Fatal(err)
		}
		FinishPartition(ps)
		if snk.Count() != len(input) {
			t.Fatalf("stored %d of %d", snk.Count(), len(input))
		}
	})
}

// TestTileSorterIdleConformance: the double-buffered sort tile, solo.
func TestTileSorterIdleConformance(t *testing.T) {
	g := fabric.NewGraph()
	in, out := g.Link("in"), g.Link("out")
	recs := make([]record.Rec, 700)
	for i := range recs {
		recs[i] = record.Make(uint32((i*2654435761)%4096), uint32(i))
	}
	g.Add(fabric.NewSource("src", recs, in))
	g.Add(newTileSorter("ts", func(r record.Rec) uint64 { return uint64(r.Get(0)) }, 256, in, out))
	snk := fabric.NewSink("snk", out)
	g.Add(snk)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if err := sim.VerifyIdleContract(g.Sys, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != len(recs) {
		t.Fatalf("sorted %d of %d", snk.Count(), len(recs))
	}
}
