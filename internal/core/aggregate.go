package core

import (
	"fmt"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
	"aurochs/internal/spad"
)

// Hash aggregation (paper §IV-A: "High-performance hash tables are the
// basis of hash joins and hash-based aggregations"): one node per distinct
// group key holding a running count, maintained lock-free. Each thread
// walks its bucket chain; a key match becomes a fetch-and-add on the
// group's counter, a chain miss becomes an insert-if-absent — write a fresh
// node, CAS it onto the head, and on CAS failure re-walk from the observed
// head because the winning insert may be this thread's own key.
//
// Aggregation-thread schema:
// [key, ptr, headSeen, slot, nkey, nnext, obs, mark].
const (
	agKey = iota
	agPtr
	agHeadSeen
	agSlot
	agNKey
	agNNext
	agObs
	agMark
)

// Aggregation node layout: [key, count, next].
// AggResult is a built aggregation table.
type AggResult struct {
	Table *HashTable
}

// NodesLinked counts nodes reachable from the bucket heads. Losing
// CAS threads stamp slots they never link (append-only structures reclaim
// nothing), so this is the real group-node count, below Table.Inserted.
func (a *AggResult) NodesLinked() int {
	n := 0
	for b := uint32(0); b < a.Table.Params.Buckets; b++ {
		ptr := a.Table.Heads.Read(b)
		for ptr != Nil {
			n++
			_, _, next := a.Table.readNode(ptr)
			ptr = next
		}
	}
	return n
}

// Groups walks every bucket chain and returns the per-key counts.
func (a *AggResult) Groups() map[uint32]int64 {
	out := make(map[uint32]int64)
	for b := uint32(0); b < a.Table.Params.Buckets; b++ {
		ptr := a.Table.Heads.Read(b)
		for ptr != Nil {
			k, cnt, next := a.Table.readNode(ptr)
			out[k] += int64(cnt)
			ptr = next
		}
	}
	return out
}

// HashAggregate runs the lock-free counting aggregation over keys on the
// fabric and returns the group table plus timing. hbm may be nil.
func HashAggregate(p HashTableParams, keys []uint32, hbm *dram.HBM) (*AggResult, Result, error) {
	if p.Buckets == 0 || p.Buckets&(p.Buckets-1) != 0 {
		return nil, Result{}, fmt.Errorf("core: buckets must be a power of two, got %d", p.Buckets)
	}
	if hbm == nil {
		hbm = defaultHBM()
	}
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	g.Workers = p.Tuning.Parallelism

	heads := spad.NewMem(16, int(p.Buckets+15)/16, 0)
	heads.Fill(Nil)
	nodeBankWords := (int(p.SpadNodes)*nodeWords + 63) / 64 * 4
	nodes := spad.NewMem(16, nodeBankWords, 2)
	ht := &HashTable{Params: p, Heads: heads, Nodes: nodes, HBM: hbm}

	// Threads are made full-width up front, so one schema covers the whole
	// pipeline (field order matches the ag* constants).
	aggS := record.NewSchema("key", "ptr", "headSeen", "slot", "nkey", "nnext", "obs", "mark")

	threads := make([]record.Rec, len(keys))
	for i, k := range keys {
		threads[i] = record.Make(k, 0, 0, Nil, 0, 0, 0, 0)
	}

	// Ingress: read the bucket head; the walk starts there.
	src := g.Link("agg.src")
	headIn := g.Link("agg.headIn")
	ext := g.Link("agg.ext")
	g.Add(fabric.NewSource("agg.in", threads, src).Typed(aggS))
	g.Add(fabric.NewMap("agg.hash", func(r *record.Rec) {
		r.Put(agPtr, Hash32(r.Get(agKey))&(p.Buckets-1))
	}, src, headIn).Typed(aggS, aggS))
	g.Add(spad.NewTile(p.Tuning.spadConfig("agg.head"), heads, spad.Spec{
		Op:    spad.OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(agPtr) },
		Apply: func(r *record.Rec, resp []uint32) bool {
			r.Put(agPtr, resp[0])
			r.Put(agHeadSeen, resp[0])
			return true
		},
		In:  aggS,
		Out: aggS,
	}, headIn, ext, g.Stats()))

	// The walk loop.
	ctl := fabric.NewLoopCtl()
	body := g.Link("agg.body")
	recircJoin := g.Link("agg.recircJoin")
	g.Add(fabric.NewLoopMerge("agg.entry", recircJoin, ext, body, ctl).Typed(aggS, aggS, aggS))

	// Route: chain end → insert path; otherwise fetch the node.
	fetchIn := g.Link("agg.fetchIn")
	insertIn := g.Link("agg.insertIn")
	g.Add(fabric.NewFilter("agg.end?", func(r *record.Rec) int {
		if r.Get(agPtr) == Nil {
			return 1
		}
		return 0
	}, body, []fabric.Output{
		{Link: fetchIn},
		{Link: insertIn},
	}, nil).Cyclic().Typed(aggS))

	// Fetch and compare.
	fetched := g.Link("agg.fetched")
	g.Add(spad.NewTile(p.Tuning.spadConfig("agg.nodeR"), nodes, spad.Spec{
		Op:    spad.OpRead,
		Width: nodeWords,
		Addr:  func(r *record.Rec) uint32 { return r.Get(agPtr) * nodeWords },
		Apply: func(r *record.Rec, resp []uint32) bool {
			r.Put(agNKey, resp[0])
			r.Put(agNNext, resp[2])
			return true
		},
		In:  aggS,
		Out: aggS,
	}, fetchIn, fetched, g.Stats()))
	faaIn := g.Link("agg.faaIn")
	walkOn := g.Link("agg.walkOn")
	g.Add(fabric.NewFilter("agg.match?", func(r *record.Rec) int {
		if r.Get(agNKey) == r.Get(agKey) {
			return 0 // found the group: bump its counter
		}
		return 1 // keep walking (agPtr advances below)
	}, fetched, []fabric.Output{
		{Link: faaIn},
		{Link: walkOn, NoEOS: true},
	}, nil).Cyclic().Typed(aggS))
	stepped := g.Link("agg.stepped")
	g.Add(fabric.NewMap("agg.step", func(r *record.Rec) {
		r.Put(agPtr, r.Get(agNNext))
	}, walkOn, stepped).Cyclic().Typed(aggS, aggS))

	// Count bump: FAA on the node's count word, then exit.
	done := g.Link("agg.done")
	g.Add(spad.NewTile(p.Tuning.spadConfig("agg.count"), nodes, spad.Spec{
		Op:   spad.OpFAA,
		Addr: func(r *record.Rec) uint32 { return r.Get(agPtr)*nodeWords + 1 },
		Data: func(*record.Rec, int) uint32 { return 1 },
		Apply: func(r *record.Rec, resp []uint32) bool {
			return true
		},
		In:  aggS,
		Out: aggS,
	}, faaIn, done, g.Stats()))
	exitFilter := g.Link("agg.exitIn")
	g.Add(fabric.NewMap("agg.id", func(*record.Rec) {}, done, exitFilter).Cyclic().Typed(aggS, aggS))
	sinkIn := g.Link("agg.sinkIn")
	g.Add(fabric.NewFilter("agg.exit", func(*record.Rec) int { return 0 }, exitFilter,
		[]fabric.Output{{Link: sinkIn, Exit: true}}, ctl).Cyclic().Typed(aggS))
	snk := fabric.NewSink("agg.sink", sinkIn).Typed(aggS)
	g.Add(snk)

	// Insert path: stamp a slot once, write [key, 0, next=headSeen], CAS
	// the head; on failure re-walk from the observed head (the winner may
	// hold our key).
	slotCtr := uint32(0)
	stamped := g.Link("agg.stamped")
	g.Add(fabric.NewMap("agg.stamp", func(r *record.Rec) {
		if r.Get(agSlot) == Nil {
			if slotCtr >= p.SpadNodes {
				panic("core: aggregation table exceeds on-chip nodes (size groups, not rows)")
			}
			r.Put(agSlot, slotCtr)
			slotCtr++
		}
	}, insertIn, stamped).Cyclic().Typed(aggS, aggS))
	wrote := g.Link("agg.wrote")
	g.Add(spad.NewTile(p.Tuning.spadConfig("agg.nodeW"), nodes, spad.Spec{
		Op:    spad.OpWrite,
		Width: nodeWords,
		Addr:  func(r *record.Rec) uint32 { return r.Get(agSlot) * nodeWords },
		Data: func(r *record.Rec, i int) uint32 {
			switch i {
			case 0:
				return r.Get(agKey)
			case 1:
				return 0 // count starts at zero; the FAA after link adds 1
			default:
				return r.Get(agHeadSeen)
			}
		},
		In:  aggS,
		Out: aggS,
		// Each insert writes the slot it just stamped and no other thread
		// holds that slot, so the node writes are disjoint.
		DisjointAddrs: true,
	}, stamped, wrote, g.Stats()))
	casOut := g.Link("agg.casOut")
	g.Add(spad.NewTile(p.Tuning.spadConfig("agg.cas"), heads, spad.Spec{
		Op:   spad.OpCAS,
		Addr: func(r *record.Rec) uint32 { return Hash32(r.Get(agKey)) & (p.Buckets - 1) },
		Data: func(r *record.Rec, i int) uint32 {
			if i == 0 {
				return r.Get(agHeadSeen)
			}
			return r.Get(agSlot)
		},
		Apply: func(r *record.Rec, resp []uint32) bool {
			r.Put(agObs, resp[0])
			return true
		},
		In:          aggS,
		Out:         aggS,
		OrderWaiver: "lock-free CAS-prepend retry loop; every interleaving yields a complete chain",
	}, wrote, casOut, g.Stats()))
	// CAS success: this thread's node is linked; bump it (count was 0).
	// CAS failure: re-walk from the observed head.
	casWin := g.Link("agg.casWin")
	casLose := g.Link("agg.casLose")
	g.Add(fabric.NewFilter("agg.casRoute", func(r *record.Rec) int {
		if r.Get(agObs) == r.Get(agHeadSeen) {
			return 0
		}
		return 1
	}, casOut, []fabric.Output{
		{Link: casWin, NoEOS: true},
		{Link: casLose, NoEOS: true},
	}, nil).Cyclic().Typed(aggS))
	// Winner: point at its own node and recirculate through the walk —
	// it will match its own key immediately and FAA count 0 → 1.
	winStep := g.Link("agg.winStep")
	g.Add(fabric.NewMap("agg.winPtr", func(r *record.Rec) {
		r.Put(agPtr, r.Get(agSlot))
	}, casWin, winStep).Cyclic().Typed(aggS, aggS))
	// Loser: restart the walk at the observed head.
	loseStep := g.Link("agg.losePtr")
	g.Add(fabric.NewMap("agg.losePtr", func(r *record.Rec) {
		r.Put(agPtr, r.Get(agObs))
		r.Put(agHeadSeen, r.Get(agObs))
	}, casLose, loseStep).Cyclic().Typed(aggS, aggS))

	// Rejoin the three recirculating paths.
	r1 := g.Link("agg.r1")
	g.Add(fabric.NewMerge("agg.rejoin1", stepped, winStep, r1).Cyclic().Typed(aggS, aggS, aggS))
	g.Add(fabric.NewMerge("agg.rejoin2", r1, loseStep, recircJoin).Cyclic().Typed(aggS, aggS, aggS))

	res, err := runGraph(g, budgetFor(len(keys))*4)
	if err != nil {
		return nil, res, fmt.Errorf("hash aggregate: %w", err)
	}
	if snk.Count() != len(keys) {
		return nil, res, fmt.Errorf("hash aggregate: %d of %d threads completed", snk.Count(), len(keys))
	}
	ht.Inserted = slotCtr
	return &AggResult{Table: ht}, res, nil
}
