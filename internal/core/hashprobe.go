package core

import (
	"fmt"

	"aurochs/internal/fabric"
	"aurochs/internal/record"
	"aurochs/internal/spad"
)

// Probe-thread schema: [key..., tag, ptr, nkey..., nval, nnext, mark];
// tag carries caller payload (e.g. a probe-side row id) through the
// search, and the indices shift with the key width.
type probeFields struct {
	tag, ptr, nkey, nval, nnext, mark int
}

func probeSchema(keyWords int) probeFields {
	return probeFields{
		tag:   keyWords,
		ptr:   keyWords + 1,
		nkey:  keyWords + 2,
		nval:  2*keyWords + 2,
		nnext: 2*keyWords + 3,
		mark:  2*keyWords + 4,
	}
}

// probeInSchema returns the external probe-stream schema: [key..., tag].
func probeInSchema(keyWords int) *record.Schema {
	if keyWords == 1 {
		return record.NewSchema("key", "tag")
	}
	return record.NewSchema("key0", "key1", "tag")
}

// ProbeOptions controls the probe pipeline.
type ProbeOptions struct {
	// FirstMatchOnly stops a thread at its first key match (semi-join /
	// exists semantics). Default walks the whole chain and emits every
	// match, which is what an equi-join needs under duplicate build keys.
	FirstMatchOnly bool
}

// ProbeHashTable runs the fig. 6a probe pipeline: threads walk bucket
// collision chains, comparing their search key against each node, exiting
// with matches and refilling their lanes on termination. probes records are
// [key, tag]; the result records are [key, tag, val] for every match.
func ProbeHashTable(ht *HashTable, probes []record.Rec, opt ProbeOptions) ([]record.Rec, Result, error) {
	g := fabric.NewGraph()
	g.AttachHBM(ht.HBM)
	g.Workers = ht.Params.Tuning.Parallelism
	snk := ProbeHashTableInto(g, "prb", ht, InRecs(probes), opt)
	res, err := runGraph(g, budgetFor(len(probes)))
	if err != nil {
		return nil, res, fmt.Errorf("hash probe: %w", err)
	}
	return snk.Records(), res, nil
}

// ProbeHashTableInto wires one probe pipeline into an existing graph under
// a name prefix (see BuildHashTableInto). The returned sink collects
// [key, tag, val] matches; the caller runs the graph.
func ProbeHashTableInto(g *fabric.Graph, pf string, ht *HashTable, probes StreamIn, opt ProbeOptions) *fabric.Sink {
	p := ht.Params
	kw := p.keyWords()
	nw := p.nodeWords()
	f := probeSchema(kw)

	// Thread layout: the external [key..., tag] stream widens at the hash
	// stage with the chain-walk state; matches project back down to
	// [key..., tag, val] on the way out.
	inS := probeInSchema(kw)
	walkNames := []string{"ptr"}
	if kw == 1 {
		walkNames = append(walkNames, "nkey")
	} else {
		walkNames = append(walkNames, "nkey0", "nkey1")
	}
	walkNames = append(walkNames, "nval", "nnext", "mark")
	fullS := g.Widen(inS, walkNames...)
	outS := g.Widen(inS, "val")

	// --- ingress: hash to bucket, read the head pointer ---
	src := g.Link(pf + ".src")
	headIn := g.Link(pf + ".headIn")
	headOut := g.Link(pf + ".headOut")
	probes.attach(g, pf+".in", src, inS)
	g.Add(fabric.NewMap(pf+".hash", func(r *record.Rec) {
		// Extend to the thread schema: ptr=bucket for the head read.
		*r = r.Append(p.bucket(p.hashKey(*r)))
		for r.Len() <= f.mark {
			*r = r.Append(0)
		}
		r.Put(f.nnext, Nil)
	}, src, headIn).Typed(inS, fullS))
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".head"), ht.Heads, spad.Spec{
		Op:    spad.OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(f.ptr) },
		Apply: func(r *record.Rec, resp []uint32) bool {
			r.Put(f.ptr, resp[0])
			return true
		},
		In:  fullS,
		Out: fullS,
	}, headIn, headOut, g.Stats()))

	// Empty buckets terminate before the loop.
	ext := g.Link(pf + ".ext")
	g.Add(fabric.NewFilter(pf+".emptyBucket", func(r *record.Rec) int {
		if r.Get(f.ptr) == Nil {
			return -1 // miss: kill thread
		}
		return 0
	}, headOut, []fabric.Output{{Link: ext}}, nil).Typed(fullS))

	// --- recirculating chain walk ---
	// Admission bound: the walk loop spans 8 links (body, toSpad, toDram,
	// fromSpad, fromDram, fetched, forked, recirc), each LinkCapacity flits
	// of NumLanes threads. When probe chains are long — a radix-partitioned
	// join reuses the partition hash bits, so only 1/Parts of the buckets
	// are populated and chains run Parts nodes deep — a thread laps the
	// loop once per chain node, and an ungated entry fills every slot of
	// the ring: total credit-cycle deadlock (observed at 512K rows,
	// fig. 11a). Capping the live population at half the ring's token
	// capacity leaves the loop permanent slack to drain while still
	// keeping far more threads in flight than the spad tile can serve
	// per cycle, so steady-state throughput is unaffected.
	const loopLinks = 8
	ctl := fabric.NewLoopCtl().Limit(loopLinks * fabric.LinkCapacity * record.NumLanes / 2)
	body := g.Link(pf + ".body")
	recirc := g.Link(pf + ".recirc")
	g.Add(fabric.NewLoopMerge(pf+".entry", recirc, ext, body, ctl).Typed(fullS, fullS, fullS))

	// Fetch the node from SRAM or the DRAM overflow buffer.
	toSpad := g.Link(pf + ".toSpad")
	toDram := g.Link(pf + ".toDram")
	fromSpad := g.Link(pf + ".fromSpad")
	fromDram := g.Link(pf + ".fromDram")
	g.Add(fabric.NewFilter(pf+".addrSplit", func(r *record.Rec) int {
		if r.Get(f.ptr) < p.SpadNodes {
			return 0
		}
		return 1
	}, body, []fabric.Output{{Link: toSpad}, {Link: toDram}}, nil).Typed(fullS))
	applyNode := func(r *record.Rec, resp []uint32) bool {
		for i := 0; i < kw; i++ {
			r.Put(f.nkey+i, resp[i])
		}
		r.Put(f.nval, resp[kw])
		r.Put(f.nnext, resp[kw+1])
		return true
	}
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".nodeR"), ht.Nodes, spad.Spec{
		Op:    spad.OpRead,
		Width: int(nw),
		Addr:  func(r *record.Rec) uint32 { return r.Get(f.ptr) * nw },
		Apply: applyNode,
		In:    fullS,
		Out:   fullS,
	}, toSpad, fromSpad, g.Stats()))
	fabric.NewDRAMNode(g, pf+".nodeRD", spad.Spec{
		Op:    spad.OpRead,
		Width: int(nw),
		Addr: func(r *record.Rec) uint32 {
			return p.OverflowBase + (r.Get(f.ptr)-p.SpadNodes)*nw
		},
		Apply: applyNode,
		In:    fullS,
		Out:   fullS,
	}, toDram, fromDram)

	fetched := g.Link(pf + ".fetched")
	g.Add(fabric.NewMerge(pf+".fetchJoin", fromSpad, fromDram, fetched).Typed(fullS, fullS, fullS))

	// Compare and continue: a matching node emits a match thread; a
	// non-nil next continues the walk. A fork expresses "both".
	forked := g.Link(pf + ".forked")
	g.Add(fabric.NewFork(pf+".compare", func(r record.Rec) []record.Rec {
		// Wide keys compare field-by-field — the serialized comparison of
		// Gorgon's fields-in-time record layout.
		match := true
		for i := 0; i < kw; i++ {
			match = match && r.Get(f.nkey+i) == r.Get(i)
		}
		cont := r.Get(f.nnext) != Nil && !(match && opt.FirstMatchOnly)
		out := make([]record.Rec, 0, 2)
		if match {
			out = append(out, r.Set(f.mark, 1))
		}
		if cont {
			out = append(out, r.Set(f.ptr, r.Get(f.nnext)).Set(f.mark, 0))
		}
		return out
	}, fetched, forked, ctl).Typed(fullS, fullS))

	found := g.Link(pf + ".found")
	g.Add(fabric.NewFilter(pf+".route", func(r *record.Rec) int {
		if r.Get(f.mark) == 1 {
			return 0
		}
		return 1
	}, forked, []fabric.Output{
		{Link: found, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl).Typed(fullS))

	// Project matches down to [key..., tag, val].
	out := g.Link(pf + ".out")
	g.Add(fabric.NewMap(pf+".project", func(r *record.Rec) {
		var o record.Rec
		for i := 0; i < kw; i++ {
			o = o.Append(r.Get(i))
		}
		o = o.Append(r.Get(f.tag))
		*r = o.Append(r.Get(f.nval))
	}, found, out).Typed(fullS, outS))
	snk := fabric.NewSink(pf+".sink", out).Typed(outS)
	g.Add(snk)
	return snk
}
