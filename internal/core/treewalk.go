package core

import (
	"fmt"

	"aurochs/internal/fabric"
	"aurochs/internal/index/btree"
	"aurochs/internal/index/rtree"
	"aurochs/internal/record"
)

// Tree walks (paper §III-A fig. 6b, §IV-C fig. 9): threads recirculate
// through a block-fetch-and-fork stage, walking multiple paths through an
// index simultaneously. A DRAM spill queue on the recirculating path keeps
// fork fan-out from deadlocking the cycle.

// B-tree search thread schema: [lo, hi, ptr, resKey, resVal, mark, tag].
const (
	btLo = iota
	btHi
	btPtr
	btResKey
	btResVal
	btMark
	btTag
)

// RangeQuery is one [Lo, Hi] key-range lookup, tagged by the caller.
type RangeQuery struct {
	Lo, Hi uint32
	Tag    uint32
}

// BTreeSearch runs a batch of range queries against an immutable B-tree on
// the fabric. Results are [key, val, tag] records, one per matching entry.
// Point lookups are ranges with Lo == Hi.
func BTreeSearch(t *btree.Tree, queries []RangeQuery, tun Tuning) ([]record.Rec, Result, error) {
	return BTreeSearchP(t, queries, tun, 1)
}

// BTreeSearchP parallelizes the walk across p independent pipelines
// sharing the HBM, splitting the query batch round-robin.
func BTreeSearchP(t *btree.Tree, queries []RangeQuery, tun Tuning, p int) ([]record.Rec, Result, error) {
	if p <= 0 {
		p = 1
	}
	g := fabric.NewGraph()
	g.AttachHBM(t.HBM)
	g.Workers = tun.Parallelism

	sinks := make([]*fabric.Sink, p)
	for k := 0; k < p; k++ {
		var threads []record.Rec
		for i := k; i < len(queries); i += p {
			q := queries[i]
			threads = append(threads, record.Make(q.Lo, q.Hi, t.Root, 0, 0, 0, q.Tag))
		}
		sinks[k] = wireTreeWalk(g, fmt.Sprintf("bts%d", k), threads, btree.NodeWords,
			func(r record.Rec) uint32 { return t.NodeAddr(r.Get(btPtr)) },
			expandBTreeNode, btMark,
			func(r *record.Rec) {
				*r = record.Make(r.Get(btResKey), r.Get(btResVal), r.Get(btTag))
			}, uint32(k))
	}
	res, err := runGraph(g, budgetFor(len(queries))*4)
	if err != nil {
		return nil, res, fmt.Errorf("btree search: %w", err)
	}
	var out []record.Rec
	for _, snk := range sinks {
		out = append(out, snk.Records()...)
	}
	return out, res, nil
}

// wireTreeWalk assembles one recirculating fetch-and-fork pipeline: loop
// merge, DRAM expand, route filter, DRAM spill queue on the cyclic path,
// and a projection into the result sink.
func wireTreeWalk(g *fabric.Graph, pf string, threads []record.Rec, nodeWidth int,
	addr func(record.Rec) uint32, expand func(record.Rec, []uint32) []record.Rec,
	markField int, project func(*record.Rec), spillSlot uint32) *fabric.Sink {

	ctl := fabric.NewLoopCtl()
	ext := g.Link(pf + ".ext")
	body := g.Link(pf + ".body")
	walked := g.Link(pf + ".walked")
	recirc := g.Link(pf + ".recirc")
	recircQ := g.Link(pf + ".recircQ")
	found := g.Link(pf + ".found")

	g.Add(fabric.NewSource(pf+".in", threads, ext))
	g.Add(fabric.NewLoopMerge(pf+".entry", recircQ, ext, body, ctl))
	fabric.NewDRAMExpand(g, pf+".fetch", nodeWidth, addr, expand, ctl, body, walked)
	g.Add(fabric.NewFilter(pf+".route", func(r *record.Rec) int {
		if r.Get(markField) == 1 {
			return 0
		}
		return 1
	}, walked, []fabric.Output{
		{Link: found, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	fabric.NewSpillQueue(g, pf+".spill", RegionSpill+spillSlot*(1<<23), record.MaxFields, 256, recirc, recircQ)

	out := g.Link(pf + ".out")
	g.Add(fabric.NewMap(pf+".project", project, found, out))
	snk := fabric.NewSink(pf+".sink", out)
	g.Add(snk)
	return snk
}

// expandBTreeNode is the fork function of the B-tree walk: internal nodes
// spawn one child thread per subtree whose key range can intersect the
// query; leaves spawn one result thread per matching entry.
func expandBTreeNode(r record.Rec, node []uint32) []record.Rec {
	lo, hi := r.Get(btLo), r.Get(btHi)
	hdr := node[0]
	n := int(hdr >> 1)
	isLeaf := hdr&1 == 1
	keys := node[1 : 1+btree.Fanout]
	vals := node[1+btree.Fanout : 1+2*btree.Fanout]
	var out []record.Rec
	if isLeaf {
		for i := 0; i < n; i++ {
			if keys[i] >= lo && keys[i] <= hi {
				c := r.Set(btResKey, keys[i])
				c = c.Set(btResVal, vals[i])
				out = append(out, c.Set(btMark, 1))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		// Child i covers [keys[i], keys[i+1]]; the high bound stays
		// inclusive because duplicate runs can spill backward across a
		// node boundary (see btree.childFor).
		low := keys[i]
		if i == 0 {
			low = 0
		}
		high := ^uint32(0)
		if i < n-1 {
			high = keys[i+1]
		}
		if high >= lo && low <= hi {
			out = append(out, r.Set(btPtr, vals[i]).Set(btMark, 0))
		}
	}
	return out
}

// R-tree walk thread schema:
// [qMinX, qMinY, qMaxX, qMaxY, ptr, resID, mark, tag].
const (
	rtMinX = iota
	rtMinY
	rtMaxX
	rtMaxY
	rtPtr
	rtResID
	rtMark
	rtTag
)

// WindowQuery is one rectangle query, tagged by the caller. A spatial
// index-nested-loop join is a batch of window queries — one per probe-side
// record, with the tag carrying the probe row id (fig. 9b).
type WindowQuery struct {
	Rect rtree.Rect
	Tag  uint32
}

// RTreeWindow runs a batch of window queries against a packed R-tree on
// the fabric. Results are [id, tag] records, one per intersecting entry.
// Search paths diverge — overlapping inner rectangles mean a thread forks
// down multiple subtrees — and the spill queue absorbs the fan-out.
func RTreeWindow(t *rtree.Tree, queries []WindowQuery, tun Tuning) ([]record.Rec, Result, error) {
	return RTreeWindowP(t, queries, tun, 1)
}

// RTreeWindowP parallelizes window queries across p pipelines — the
// paper's "multiple smaller window queries in parallel" (§IV-C).
func RTreeWindowP(t *rtree.Tree, queries []WindowQuery, tun Tuning, p int) ([]record.Rec, Result, error) {
	if p <= 0 {
		p = 1
	}
	g := fabric.NewGraph()
	g.AttachHBM(t.HBM)
	g.Workers = tun.Parallelism

	sinks := make([]*fabric.Sink, p)
	for k := 0; k < p; k++ {
		var threads []record.Rec
		for i := k; i < len(queries); i += p {
			q := queries[i]
			threads = append(threads, record.Make(q.Rect.MinX, q.Rect.MinY, q.Rect.MaxX, q.Rect.MaxY, t.Root, 0, 0, q.Tag))
		}
		sinks[k] = wireTreeWalk(g, fmt.Sprintf("rtw%d", k), threads, rtree.NodeWords,
			func(r record.Rec) uint32 { return t.NodeAddr(r.Get(rtPtr)) },
			expandRTreeNode, rtMark,
			func(r *record.Rec) {
				*r = record.Make(r.Get(rtResID), r.Get(rtTag))
			}, uint32(16+k))
	}
	res, err := runGraph(g, budgetFor(len(queries))*8)
	if err != nil {
		return nil, res, fmt.Errorf("rtree window: %w", err)
	}
	var out []record.Rec
	for _, snk := range sinks {
		out = append(out, snk.Records()...)
	}
	return out, res, nil
}

// expandRTreeNode forks a window-query thread down every child whose
// bounding rectangle intersects the query; leaf entries that intersect
// become result threads.
func expandRTreeNode(r record.Rec, node []uint32) []record.Rec {
	q := rtree.Rect{MinX: r.Get(rtMinX), MinY: r.Get(rtMinY), MaxX: r.Get(rtMaxX), MaxY: r.Get(rtMaxY)}
	hdr := node[0]
	n := int(hdr >> 1)
	isLeaf := hdr&1 == 1
	var out []record.Rec
	for i := 0; i < n; i++ {
		w := 1 + i*5
		e := rtree.Rect{MinX: node[w], MinY: node[w+1], MaxX: node[w+2], MaxY: node[w+3]}
		if !q.Intersects(e) {
			continue
		}
		if isLeaf {
			out = append(out, r.Set(rtResID, node[w+4]).Set(rtMark, 1))
		} else {
			out = append(out, r.Set(rtPtr, node[w+4]).Set(rtMark, 0))
		}
	}
	return out
}
