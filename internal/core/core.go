// Package core implements the paper's primary contribution: the dataflow
// kernels that reformulate pointer-chasing data structures — hash tables,
// B-trees, R-trees, radix partitions — as graphs of filtered, forked, and
// recirculating thread records on the Aurochs fabric (paper §III-A, §IV,
// figs. 5-7).
//
// Every kernel here runs on the cycle-level fabric model and produces both
// a functional result (the actual join matches, tree hits, partitions) and
// a timing result (cycles, DRAM traffic, conflict counters). Tests
// cross-check the functional results against straightforward software
// reference implementations; the benchmark harness reads the timing.
package core

import (
	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/sim"
	"aurochs/internal/spad"
)

// Nil is the null pointer sentinel in scratchpad and DRAM structures.
const Nil = 0xFFFFFFFF

// Hash32 is the multiplicative hash used to scramble keys into buckets and
// partitions. Hash functions take skewed key distributions to uniform ones,
// which is what lets radix-partitioning on the hash load-balance parallel
// pipelines regardless of skew (paper §IV-A).
func Hash32(key uint32) uint32 {
	h := key * 2654435761
	h ^= h >> 16
	return h * 0x85ebca6b
}

// Hash64 hashes a 64-bit key.
func Hash64(key uint64) uint32 {
	return Hash32(uint32(key)) ^ Hash32(uint32(key>>32)+0x9e3779b9)
}

// Result is the timing outcome of one kernel run.
type Result struct {
	// Cycles is the simulated cycle count at the fabric's 1 GHz clock.
	Cycles int64
	// DRAMBytes is the total HBM traffic the kernel generated.
	DRAMBytes int64
	// Stats exposes the microarchitectural counters of the run.
	Stats *sim.Stats
	// Workers is the tick-kernel worker count the run resolved to after
	// auto-mode selection (1 = the serial kernel).
	Workers int
	// Kernel is the tick-kernel decision of the run's dominant phase (the
	// phase with the largest component census): requested vs resolved
	// workers, the auto-mode fallback reason if one tripped, and the
	// stage/lane shard shape the decision was made on.
	Kernel sim.KernelDecision
}

// Seconds converts cycles to wall time at the fabric clock.
func (r Result) Seconds() float64 { return float64(r.Cycles) / ClockHz }

// ClockHz is the fabric clock rate: the design meets timing at 1 GHz with
// the critical path from the issue queue through the allocator (paper §V-A).
const ClockHz = 1e9

// runGraph executes a wired kernel graph and assembles its Result.
func runGraph(g *fabric.Graph, maxCycles int64) (Result, error) {
	var before int64
	if g.HBM != nil {
		before = g.HBM.BytesMoved()
	}
	cycles, err := g.Run(maxCycles)
	res := Result{Cycles: cycles, Stats: g.Stats(), Workers: g.Sys.EffectiveWorkers(),
		Kernel: g.Sys.KernelDecision()}
	if g.HBM != nil {
		// Attribute posted writes still resident in the combining buffer
		// to the phase that produced them.
		g.HBM.FlushWrites()
		res.DRAMBytes = g.HBM.BytesMoved() - before
	}
	return res, err
}

// Tuning shared by kernels. The InOrderSpad and NoForwarding knobs exist
// for the ablation benchmarks; production kernels leave them false.
type Tuning struct {
	// InOrderSpad selects the Capstan in-order scratchpad pipeline.
	InOrderSpad bool
	// NoForwarding disables the RMW write→read forwarding path.
	NoForwarding bool
	// Parallelism is the number of simulator worker goroutines per kernel
	// graph (0 or 1 = serial). Purely a host-side speed knob: the parallel
	// kernel is cycle-for-cycle identical to the serial one.
	Parallelism int
}

// spadConfig builds a scratchpad config honoring the tuning knobs.
func (t Tuning) spadConfig(name string) spad.Config {
	return spad.Config{Name: name, InOrder: t.InOrderSpad, ForwardRMW: !t.NoForwarding}
}

// defaultHBM builds the standard HBM model instance for kernels that are
// not handed one by the caller.
func defaultHBM() *dram.HBM {
	return dram.New(dram.DefaultConfig())
}
