package core

import (
	"fmt"
	"math/bits"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
	"aurochs/internal/sim"
	"aurochs/internal/spad"
)

// Hash table node layout: [key..., val, next] — KeyWords + 2 words per
// node (three for 32-bit keys). Nodes
// live in an on-chip scratchpad up to SpadNodes and transparently overflow
// into a pre-allocated DRAM buffer beyond it (paper fig. 7a): a node's slot
// number is its identity in a single unified address space, and every
// reader/writer converts slot → SRAM or DRAM address with a base-offset
// calculation as threads move through the pipeline.
const nodeWords = 3 // the KeyWords = 1 layout; see (*HashTableParams).nodeWords

// HashTableParams sizes an on-chip hash table with DRAM overflow.
type HashTableParams struct {
	// Buckets is the bucket count (power of two). Bucket heads always
	// live on-chip.
	Buckets uint32
	// SpadNodes is the on-chip node capacity; slots beyond it spill to
	// the DRAM overflow buffer.
	SpadNodes uint32
	// MaxNodes bounds total insertions (on-chip + overflow).
	MaxNodes uint32
	// OverflowBase is the DRAM word address of the overflow buffer.
	OverflowBase uint32
	// KeyWords is the join-key width in 32-bit lanes (1 or 2). Keys wider
	// than a lane stay in one lane and compare field-by-field across
	// pipeline stages, exactly as Gorgon serializes wide keys (§II-B).
	KeyWords int
	// Tuning carries the ablation knobs.
	Tuning Tuning
}

// keyWords returns the effective key width.
func (p *HashTableParams) keyWords() int {
	if p.KeyWords <= 1 {
		return 1
	}
	if p.KeyWords > 2 {
		panic("core: KeyWords must be 1 or 2")
	}
	return 2
}

// nodeWords returns the words per node: keys + value + next pointer.
func (p *HashTableParams) nodeWords() uint32 {
	return uint32(p.keyWords()) + 2
}

// hashKey hashes a record's leading key fields.
func (p *HashTableParams) hashKey(r record.Rec) uint32 {
	if p.keyWords() == 1 {
		return Hash32(r.Get(0))
	}
	return Hash64(r.U64(0))
}

// DefaultHashTableParams sizes the structure for n insertions using the
// paper's scratchpad geometry: 256 KiB node scratchpad (21845 three-word
// nodes) and a bucket array with load factor near one.
func DefaultHashTableParams(n int) HashTableParams {
	buckets := uint32(1)
	for int(buckets) < n {
		buckets <<= 1
	}
	if buckets > 1<<16 {
		buckets = 1 << 16 // 256 KiB head scratchpad at 4 B/bucket
	}
	spadNodes := uint32(256 * 1024 / 4 / nodeWords)
	return HashTableParams{
		Buckets:      buckets,
		SpadNodes:    spadNodes,
		MaxNodes:     uint32(n) + 16,
		OverflowBase: 1 << 26, // clear of table data regions
	}
}

// HashTable is a built chained hash table: bucket heads in one scratchpad,
// nodes split between a node scratchpad and a DRAM overflow buffer.
type HashTable struct {
	Params HashTableParams
	Heads  *spad.Mem
	Nodes  *spad.Mem
	HBM    *dram.HBM
	// Inserted is the number of nodes allocated by the build.
	Inserted uint32
}

// bucket maps a key hash to a bucket index using the hash's HIGH bits.
// The composed radix join selects pipeline and partition class from the
// LOW bits of the very same Hash32, so a low-bit mask here would leave
// only Buckets/Parts buckets populated within one partition — chains
// Parts nodes deep and probe cost quadratic in total table size. The
// high bits are independent of the radix class, so chain length stays
// at the load factor regardless of how the input was partitioned.
func (p *HashTableParams) bucket(h uint32) uint32 {
	return h >> p.bucketShift()
}

// bucketShift is the right-shift that keeps log2(Buckets) high bits.
// Go defines x>>32 == 0 for uint32, so Buckets==1 maps everything to 0.
func (p *HashTableParams) bucketShift() uint {
	return uint(32 - bits.Len32(p.Buckets-1))
}

// bucketOf maps a key to its bucket.
func (h *HashTable) bucketOf(key uint32) uint32 {
	return h.Params.bucket(Hash32(key))
}

// nodeAddr converts a slot to (isSpad, wordAddr).
func (h *HashTable) nodeAddr(slot uint32) (bool, uint32) {
	nw := h.Params.nodeWords()
	if slot < h.Params.SpadNodes {
		return true, slot * nw
	}
	return false, h.Params.OverflowBase + (slot-h.Params.SpadNodes)*nw
}

// nodeWord reads word i of a node from SRAM or DRAM.
func (h *HashTable) nodeWord(slot, i uint32) uint32 {
	if onChip, a := h.nodeAddr(slot); onChip {
		return h.Nodes.Read(a + i)
	} else {
		return h.HBM.ReadWord(a + i)
	}
}

// readNode fetches a 32-bit-key node functionally.
func (h *HashTable) readNode(slot uint32) (key, val, next uint32) {
	return h.nodeWord(slot, 0), h.nodeWord(slot, 1), h.nodeWord(slot, 2)
}

// LookupAll walks a bucket chain functionally and returns every value
// stored under key (reference path for tests and the untimed executors).
func (h *HashTable) LookupAll(key uint32) []uint32 {
	if h.Params.keyWords() != 1 {
		panic("core: LookupAll is for 32-bit keys; use LookupAll64")
	}
	var out []uint32
	ptr := h.Heads.Read(h.bucketOf(key))
	for ptr != Nil {
		k, v, next := h.readNode(ptr)
		if k == key {
			out = append(out, v)
		}
		ptr = next
	}
	return out
}

// LookupAll64 is LookupAll for two-word keys.
func (h *HashTable) LookupAll64(key uint64) []uint32 {
	if h.Params.keyWords() != 2 {
		panic("core: LookupAll64 requires KeyWords = 2")
	}
	var out []uint32
	ptr := h.Heads.Read(h.Params.bucket(Hash64(key)))
	for ptr != Nil {
		k := uint64(h.nodeWord(ptr, 0)) | uint64(h.nodeWord(ptr, 1))<<32
		if k == key {
			out = append(out, h.nodeWord(ptr, 2))
		}
		ptr = h.nodeWord(ptr, 3)
	}
	return out
}

// Build-thread schema: [key..., val, bucket, slot, cur, obs]; indices
// shift with the key width.
type buildFields struct {
	val, bucket, slot, cur, obs int
}

func buildSchema(keyWords int) buildFields {
	return buildFields{
		val:    keyWords,
		bucket: keyWords + 1,
		slot:   keyWords + 2,
		cur:    keyWords + 3,
		obs:    keyWords + 4,
	}
}

// StreamIn describes a kernel's input stream: either pre-materialized
// records (a Source tile) or dense DRAM extents (a DRAMScan) — the latter
// is how join phases stream partitions back in.
type StreamIn struct {
	Recs     []record.Rec
	Extents  []fabric.Extent
	RecWords int
	// N is the expected record count (len(Recs) or the extent total).
	N int
}

// InRecs wraps a record slice as a kernel input.
func InRecs(recs []record.Rec) StreamIn {
	return StreamIn{Recs: recs, N: len(recs)}
}

// InExtents wraps DRAM extents as a kernel input.
func InExtents(ext []fabric.Extent, recWords int) StreamIn {
	n := 0
	for _, e := range ext {
		n += e.Words / recWords
	}
	return StreamIn{Extents: ext, RecWords: recWords, N: n}
}

// attach wires the input into graph g, feeding link out with records of
// the given schema (a Source carries it as declared; a DRAMScan requires
// the schema width to equal its record width).
func (in StreamIn) attach(g *fabric.Graph, name string, out *sim.Link, schema *record.Schema) {
	if in.Recs != nil || in.Extents == nil {
		g.Add(fabric.NewSource(name, in.Recs, out).Typed(schema))
		return
	}
	fabric.NewDRAMScan(g, name, in.Extents, in.RecWords, out).Typed(schema)
}

// keySchema returns the external record schema of a keyed stream:
// [key, val] for one-word keys, [key0, key1, val] for two.
func keySchema(keyWords int) *record.Schema {
	if keyWords == 1 {
		return record.NewSchema("key", "val")
	}
	return record.NewSchema("key0", "key1", "val")
}

// BuildHashTable runs the fig. 7a build pipeline on the fabric: stamp a
// reserved slot per thread, scatter the node body to SRAM or the DRAM
// overflow path, then link into the bucket's collision chain with a
// lock-free CAS-prepend retry loop. input records are [key, val].
//
// hbm may be nil, in which case a fresh default HBM instance is created.
func BuildHashTable(p HashTableParams, input []record.Rec, hbm *dram.HBM) (*HashTable, Result, error) {
	if hbm == nil {
		hbm = defaultHBM()
	}
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	g.Workers = p.Tuning.Parallelism
	ht, snk, err := BuildHashTableInto(g, "bld", p, InRecs(input))
	if err != nil {
		return nil, Result{}, err
	}
	res, err := runGraph(g, budgetFor(len(input)))
	if err != nil {
		return nil, res, fmt.Errorf("hash build: %w", err)
	}
	if snk.Count() != len(input) {
		return nil, res, fmt.Errorf("hash build: %d of %d threads completed", snk.Count(), len(input))
	}
	return ht, res, nil
}

// NewHashTable allocates an empty table: bucket heads in one scratchpad
// (initialized to Nil), nodes line-interleaved in another so one node's
// words stay in one bank, and the overflow region in hbm. No pipeline is
// wired — callers stream records in through buildPipeline (via
// BuildHashTableInto or InsertHashTable) against the returned memories.
// hbm carries the overflow buffer and must be the same instance every
// pipeline graph attaches, or slot reads and writes would diverge.
func NewHashTable(p HashTableParams, hbm *dram.HBM) (*HashTable, error) {
	if p.Buckets == 0 || p.Buckets&(p.Buckets-1) != 0 {
		return nil, fmt.Errorf("core: buckets must be a power of two, got %d", p.Buckets)
	}
	heads := spad.NewMem(16, int(p.Buckets+15)/16, 0)
	heads.Fill(Nil)
	nodeBankWords := (int(p.SpadNodes)*int(p.nodeWords()) + 63) / 64 * 4
	nodes := spad.NewMem(16, nodeBankWords, 2)
	return &HashTable{Params: p, Heads: heads, Nodes: nodes, HBM: hbm}, nil
}

// BuildHashTableInto wires one build pipeline into an existing graph under
// the given name prefix, so callers can instantiate several pipelines that
// share a graph and its HBM (stream-level parallelism, fig. 12). The
// returned sink counts completed insertions; the caller runs the graph.
func BuildHashTableInto(g *fabric.Graph, pf string, p HashTableParams, input StreamIn) (*HashTable, *fabric.Sink, error) {
	ht, err := NewHashTable(p, g.HBM)
	if err != nil {
		return nil, nil, err
	}
	if uint32(input.N) > p.MaxNodes {
		return nil, nil, fmt.Errorf("core: %d inputs exceed MaxNodes=%d", input.N, p.MaxNodes)
	}
	return ht, buildPipeline(g, pf, ht, input), nil
}

// InsertHashTable streams additional records into an existing table through
// the same build pipeline — the streaming-ingest path that lets two live
// streams build tables from each other's records while probing (paper
// §IV-A, "low-latency stream joins"). Safe to interleave with probes:
// CAS-prepend keeps every bucket consistent at all times.
func InsertHashTable(ht *HashTable, input []record.Rec) (Result, error) {
	if uint32(len(input))+ht.Inserted > ht.Params.MaxNodes {
		return Result{}, fmt.Errorf("core: insert would exceed MaxNodes=%d", ht.Params.MaxNodes)
	}
	g := fabric.NewGraph()
	g.AttachHBM(ht.HBM)
	g.Workers = ht.Params.Tuning.Parallelism
	snk := buildPipeline(g, "ins", ht, InRecs(input))
	res, err := runGraph(g, budgetFor(len(input)))
	if err != nil {
		return res, fmt.Errorf("hash insert: %w", err)
	}
	if snk.Count() != len(input) {
		return res, fmt.Errorf("hash insert: %d of %d threads completed", snk.Count(), len(input))
	}
	return res, nil
}

// buildPipeline wires the fig. 7a pipeline against an existing table's
// memories, continuing its slot counter.
func buildPipeline(g *fabric.Graph, pf string, ht *HashTable, input StreamIn) *fabric.Sink {
	p := ht.Params
	kw := p.keyWords()
	nw := p.nodeWords()
	f := buildSchema(kw)
	nodes, heads := ht.Nodes, ht.Heads

	// Thread layout: the external [key..., val] stream widens at the stamp
	// stage with the build-loop state; every link past it carries the full
	// schema.
	inS := keySchema(kw)
	fullS := g.Widen(inS, "bucket", "slot", "cur", "obs")

	// --- ingress: hash, stamp slot ---
	src := g.Link(pf + ".src")
	stamped := g.Link(pf + ".stamped")
	input.attach(g, pf+".in", src, inS)
	g.Add(fabric.NewMap(pf+".stamp", func(r *record.Rec) {
		*r = r.Append(p.bucket(p.hashKey(*r))) // bucket
		*r = r.Append(ht.Inserted)             // slot
		ht.Inserted++
		*r = r.Append(Nil) // cur
		*r = r.Append(0)   // obs
	}, src, stamped).Typed(inS, fullS))

	// --- node-body scatter: SRAM path or DRAM overflow path ---
	toSpadW := g.Link(pf + ".toSpadW")
	toDramW := g.Link(pf + ".toDramW")
	wroteSpad := g.Link(pf + ".wroteSpad")
	wroteDram := g.Link(pf + ".wroteDram")
	g.Add(fabric.NewFilter(pf+".split", func(r *record.Rec) int {
		if r.Get(f.slot) < p.SpadNodes {
			return 0
		}
		return 1
	}, stamped, []fabric.Output{{Link: toSpadW}, {Link: toDramW}}, nil).Typed(fullS))
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".nodeW"), nodes, spad.Spec{
		Op:    spad.OpWrite,
		Width: kw + 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(f.slot) * nw },
		Data:  func(r *record.Rec, i int) uint32 { return r.Get(i) }, // keys..., val
		In:    fullS,
		Out:   fullS,
		// Each thread scatters the body of its own freshly-reserved slot.
		DisjointAddrs: true,
	}, toSpadW, wroteSpad, g.Stats()))
	fabric.NewDRAMNode(g, pf+".nodeWD", spad.Spec{
		Op:    spad.OpWrite,
		Width: kw + 1,
		Addr: func(r *record.Rec) uint32 {
			return p.OverflowBase + (r.Get(f.slot)-p.SpadNodes)*nw
		},
		Data: func(r *record.Rec, i int) uint32 { return r.Get(i) },
		In:   fullS,
		Out:  fullS,
		// Same slot reservation, overflow half of the address space.
		DisjointAddrs: true,
	}, toDramW, wroteDram)

	ext := g.Link(pf + ".ext")
	g.Add(fabric.NewMerge(pf+".rejoin", wroteSpad, wroteDram, ext).Typed(fullS, fullS, fullS))

	// --- CAS-prepend retry loop (paper §III-A, fig. 6c) ---
	ctl := fabric.NewLoopCtl()
	body := g.Link(pf + ".body")
	recirc := g.Link(pf + ".recirc")
	recirc2 := g.Link(pf + ".recirc2")
	g.Add(fabric.NewLoopMerge(pf+".entry", recirc2, ext, body, ctl).Typed(fullS, fullS, fullS))

	// Scatter cur into the node's next field (SRAM or DRAM per slot).
	nextSpadIn := g.Link(pf + ".nextSpadIn")
	nextDramIn := g.Link(pf + ".nextDramIn")
	nextSpadOut := g.Link(pf + ".nextSpadOut")
	nextDramOut := g.Link(pf + ".nextDramOut")
	g.Add(fabric.NewFilter(pf+".nextSplit", func(r *record.Rec) int {
		if r.Get(f.slot) < p.SpadNodes {
			return 0
		}
		return 1
	}, body, []fabric.Output{{Link: nextSpadIn, NoEOS: false}, {Link: nextDramIn}}, nil).Typed(fullS))
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".nextW"), nodes, spad.Spec{
		Op:    spad.OpWrite,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(f.slot)*nw + nw - 1 },
		Data:  func(r *record.Rec, _ int) uint32 { return r.Get(f.cur) },
		In:    fullS,
		Out:   fullS,
		// A thread only ever rewrites its own slot's next field; retries of
		// one thread are causally ordered through the recirculating path.
		DisjointAddrs: true,
	}, nextSpadIn, nextSpadOut, g.Stats()))
	fabric.NewDRAMNode(g, pf+".nextWD", spad.Spec{
		Op:    spad.OpWrite,
		Width: 1,
		Addr: func(r *record.Rec) uint32 {
			return p.OverflowBase + (r.Get(f.slot)-p.SpadNodes)*nw + nw - 1
		},
		Data:          func(r *record.Rec, _ int) uint32 { return r.Get(f.cur) },
		In:            fullS,
		Out:           fullS,
		DisjointAddrs: true, // own slot's next field, overflow half
	}, nextDramIn, nextDramOut)

	casIn := g.Link(pf + ".casIn")
	casOut := g.Link(pf + ".casOut")
	g.Add(fabric.NewMerge(pf+".nextJoin", nextSpadOut, nextDramOut, casIn).Typed(fullS, fullS, fullS))

	// Atomic gather-scatter CAS on the bucket head.
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".cas"), heads, spad.Spec{
		Op:   spad.OpCAS,
		Addr: func(r *record.Rec) uint32 { return r.Get(f.bucket) },
		Data: func(r *record.Rec, i int) uint32 {
			if i == 0 {
				return r.Get(f.cur) // expected
			}
			return r.Get(f.slot) // new head
		},
		Apply: func(r *record.Rec, resp []uint32) bool {
			r.Put(f.obs, resp[0])
			return true
		},
		In:  fullS,
		Out: fullS,
		// CAS outcomes depend on arrival order, but the retry loop makes
		// every interleaving converge: losers observe the winning head and
		// re-link behind it, so each bucket chain ends up containing exactly
		// the inserted nodes. Chain order is unspecified by the table's
		// multiset contract (LookupAll returns all matches regardless).
		OrderWaiver: "lock-free CAS-prepend retry loop; every interleaving yields a complete chain",
	}, casIn, casOut, g.Stats()))

	// Success exits (thread dies); failure refreshes cur and retries.
	done := g.Link(pf + ".done")
	g.Add(fabric.NewFilter(pf+".retry", func(r *record.Rec) int {
		if r.Get(f.obs) == r.Get(f.cur) {
			return 0 // CAS succeeded
		}
		return 1
	}, casOut, []fabric.Output{
		{Link: done, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl).Typed(fullS))
	g.Add(fabric.NewMap(pf+".refresh", func(r *record.Rec) {
		r.Put(f.cur, r.Get(f.obs))
	}, recirc, recirc2).Cyclic().Typed(fullS, fullS))

	snk := fabric.NewSink(pf+".sink", done).Typed(fullS)
	g.Add(snk)
	return snk
}

// budgetFor returns a generous cycle budget for n input records.
func budgetFor(n int) int64 {
	return int64(n)*200 + 1_000_000
}
