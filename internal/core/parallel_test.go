package core

import (
	"runtime"
	"sort"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/index/btree"
	"aurochs/internal/index/rtree"
	"aurochs/internal/record"
)

// kernelRun is one kernel execution: timing plus a functional fingerprint
// of the output, canonicalized so runs can be compared field-for-field.
type kernelRun struct {
	cycles    int64
	dramBytes int64
	output    []record.Rec
}

func canon(recs []record.Rec) []record.Rec {
	out := append([]record.Rec(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		for f := 0; f < record.MaxFields; f++ {
			if out[i].F[f] != out[j].F[f] {
				return out[i].F[f] < out[j].F[f]
			}
		}
		return false
	})
	return out
}

func kvRecs(n, seed int) []record.Rec {
	recs := make([]record.Rec, n)
	for i := range recs {
		k := uint32(i*seed+7) % uint32(n)
		recs[i] = record.Make(k, uint32(seed*1000+i))
	}
	return recs
}

// workerCounts: serial reference plus the two parallel configurations the
// issue's acceptance criteria name.
func workerCounts() []int {
	return []int{0, 2, runtime.GOMAXPROCS(0)}
}

func checkEquivalent(t *testing.T, name string, runs []kernelRun) {
	t.Helper()
	ref := runs[0]
	if len(ref.output) == 0 && name != "partition" {
		t.Fatalf("%s: serial run produced no output", name)
	}
	for i, r := range runs[1:] {
		if r.cycles != ref.cycles {
			t.Errorf("%s workers=%d: cycles %d != serial %d", name, workerCounts()[i+1], r.cycles, ref.cycles)
		}
		if r.dramBytes != ref.dramBytes {
			t.Errorf("%s workers=%d: DRAM bytes %d != serial %d", name, workerCounts()[i+1], r.dramBytes, ref.dramBytes)
		}
		if len(r.output) != len(ref.output) {
			t.Errorf("%s workers=%d: %d outputs != serial %d", name, workerCounts()[i+1], len(r.output), len(ref.output))
			continue
		}
		for j := range ref.output {
			if r.output[j] != ref.output[j] {
				t.Errorf("%s workers=%d: output %d differs", name, workerCounts()[i+1], j)
				break
			}
		}
	}
}

func TestHashBuildProbeParallelEquivalence(t *testing.T) {
	build := kvRecs(800, 3)
	probes := make([]record.Rec, 400)
	for i := range probes {
		probes[i] = record.Make(uint32(i%800), uint32(i))
	}
	var runs []kernelRun
	for _, w := range workerCounts() {
		p := DefaultHashTableParams(len(build))
		p.Tuning = Tuning{Parallelism: w}
		ht, bres, err := BuildHashTable(p, build, nil)
		if err != nil {
			t.Fatal(err)
		}
		matches, pres, err := ProbeHashTable(ht, probes, ProbeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, kernelRun{
			cycles:    bres.Cycles + pres.Cycles,
			dramBytes: bres.DRAMBytes + pres.DRAMBytes,
			output:    canon(matches),
		})
	}
	checkEquivalent(t, "build+probe", runs)
}

// TestHashJoinFig11aParallelEquivalence runs the fig. 11a join shape (the
// benchmark's speedup target) at a test-sized n.
func TestHashJoinFig11aParallelEquivalence(t *testing.T) {
	n := 1 << 10
	a, b := kvRecs(n, 1), kvRecs(n, 2)
	var runs []kernelRun
	for _, w := range workerCounts() {
		matches, res, err := HashJoin(nil, a, b, HashJoinOptions{
			Pipelines: 4,
			Tuning:    Tuning{Parallelism: w},
		})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, kernelRun{cycles: res.Cycles, dramBytes: res.DRAMBytes, output: canon(matches)})
	}
	checkEquivalent(t, "hashjoin-11a", runs)
}

func TestPartitionParallelEquivalence(t *testing.T) {
	input := kvRecs(1200, 5)
	var runs []kernelRun
	for _, w := range workerCounts() {
		p := DefaultPartitionParams(len(input), 8, 2)
		p.Tuning = Tuning{Parallelism: w}
		ps, res, err := Partition(p, input, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Fingerprint the partitioned layout functionally.
		var out []record.Rec
		for part := uint32(0); part < 8; part++ {
			out = append(out, ps.ReadPartition(part)...)
		}
		runs = append(runs, kernelRun{cycles: res.Cycles, dramBytes: res.DRAMBytes, output: canon(out)})
	}
	checkEquivalent(t, "partition", runs)
}

func TestHashAggregateParallelEquivalence(t *testing.T) {
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = uint32(i % 37)
	}
	var runs []kernelRun
	for _, w := range workerCounts() {
		p := DefaultHashTableParams(64)
		p.Tuning = Tuning{Parallelism: w}
		agg, res, err := HashAggregate(p, keys, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out []record.Rec
		for k, c := range agg.Groups() { // lint:maprange-ok — canon sorts below
			out = append(out, record.Make(k, uint32(c)))
		}
		runs = append(runs, kernelRun{cycles: res.Cycles, dramBytes: res.DRAMBytes, output: canon(out)})
	}
	checkEquivalent(t, "aggregate", runs)
}

func TestBTreeSearchParallelEquivalence(t *testing.T) {
	queries := make([]RangeQuery, 60)
	for i := range queries {
		lo := uint32(i * 20)
		queries[i] = RangeQuery{Lo: lo, Hi: lo + 30, Tag: uint32(i)}
	}
	var runs []kernelRun
	for _, w := range workerCounts() {
		// Fresh HBM and tree per configuration: every run starts from an
		// identical initial state (row-buffer state persists across runs).
		h := dram.New(dram.DefaultConfig())
		items := make([]btree.KV, 500)
		for i := range items {
			items[i] = btree.KV{Key: uint32(i * 3), Val: uint32(i)}
		}
		tr := btree.Build(h, RegionTables, items)
		hits, res, err := BTreeSearchP(tr, queries, Tuning{Parallelism: w}, 2)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, kernelRun{cycles: res.Cycles, dramBytes: res.DRAMBytes, output: canon(hits)})
	}
	checkEquivalent(t, "btree", runs)
}

func TestRTreeWindowParallelEquivalence(t *testing.T) {
	queries := make([]WindowQuery, 30)
	for i := range queries {
		x := uint32((i * 31) % 900)
		queries[i] = WindowQuery{Rect: rtree.Rect{MinX: x, MinY: x, MaxX: x + 60, MaxY: x + 60}, Tag: uint32(i)}
	}
	var runs []kernelRun
	for _, w := range workerCounts() {
		h := dram.New(dram.DefaultConfig())
		entries := make([]rtree.Entry, 400)
		for i := range entries {
			x := uint32((i * 13) % 1000)
			y := uint32((i * 29) % 1000)
			entries[i] = rtree.Entry{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + 8, MaxY: y + 8}, ID: uint32(i)}
		}
		tr := rtree.Build(h, RegionTables, entries, 1024)
		hits, res, err := RTreeWindowP(tr, queries, Tuning{Parallelism: w}, 2)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, kernelRun{cycles: res.Cycles, dramBytes: res.DRAMBytes, output: canon(hits)})
	}
	checkEquivalent(t, "rtree-window", runs)
}

func TestSpatialJoinParallelEquivalence(t *testing.T) {
	var runs []kernelRun
	for _, w := range workerCounts() {
		h := dram.New(dram.DefaultConfig())
		mk := func(base uint32, n int, off uint32) *rtree.Tree {
			entries := make([]rtree.Entry, n)
			for i := range entries {
				x := uint32((i*17+int(off))%500) + 1
				y := uint32((i*23+int(off))%500) + 1
				entries[i] = rtree.Entry{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + 12, MaxY: y + 12}, ID: uint32(i)}
			}
			return rtree.Build(h, base, entries, 600)
		}
		ta := mk(RegionTables, 150, 0)
		tb := mk(RegionTables+1<<22, 150, 7)
		pairs, res, err := RTreeSpatialJoin(ta, tb, Tuning{Parallelism: w})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]record.Rec, len(pairs))
		for i, p := range pairs {
			out[i] = record.Make(p.A, p.B)
		}
		runs = append(runs, kernelRun{cycles: res.Cycles, dramBytes: res.DRAMBytes, output: canon(out)})
	}
	checkEquivalent(t, "spatial-join", runs)
}
