package core

import (
	"fmt"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
	"aurochs/internal/sim"
	"aurochs/internal/spad"
)

// Radix partitioning (paper §IV-A, fig. 7b): records scatter into dense
// per-partition block lists in DRAM, with on-chip metadata tracking each
// partition's head block and fill count. A fused {block pointer | count}
// scratchpad word makes the fetch-and-add ticket atomic with the head
// lookup; the thread holding ticket == BlockRecs allocates and prepends a
// fresh block, while later tickets recirculate until the count resets.
//
// Packed metadata word: ptr in the high 18 bits, count in the low 14.
const (
	partCountBits = 14
	partCountMask = (1 << partCountBits) - 1
	// NilBlock terminates a partition's block list.
	NilBlock = (1 << 18) - 1
)

// PartitionParams sizes a radix partitioning pass.
type PartitionParams struct {
	// Parts is the partition count (power of two). The paper chooses it
	// so the expected partition size matches scratchpad capacity.
	Parts uint32
	// BlockRecs is records per DRAM block; blocks are the dense unit
	// that masks memory latency on readback.
	BlockRecs uint32
	// RecWords is the words per record (key + payload).
	RecWords uint32
	// BlockBase is the DRAM word address where blocks are allocated.
	BlockBase uint32
	// MaxBlocks bounds the block arena.
	MaxBlocks uint32
	// HashShift selects which hash bits pick the partition; pipelines at
	// different fan-out levels use disjoint bit ranges.
	HashShift uint
	// Tuning carries ablation knobs.
	Tuning Tuning
}

// DefaultPartitionParams sizes partitioning of n records of recWords words
// into parts partitions.
func DefaultPartitionParams(n int, parts uint32, recWords uint32) PartitionParams {
	blockRecs := uint32(64)
	maxBlocks := uint32(n)/blockRecs + 2*parts + 16
	return PartitionParams{
		Parts:     parts,
		BlockRecs: blockRecs,
		RecWords:  recWords,
		BlockBase: 1 << 27,
		MaxBlocks: maxBlocks,
	}
}

// PartitionSet is the result of a partitioning pass: the metadata
// scratchpad plus the DRAM block arena.
type PartitionSet struct {
	Params PartitionParams
	Meta   *spad.Mem
	HBM    *dram.HBM
	// Blocks is the number of blocks allocated.
	Blocks   uint32
	allocMem *spad.Mem
}

// blockWords is the DRAM footprint of one block: next pointer + records.
func (ps *PartitionSet) blockWords() uint32 {
	return 1 + ps.Params.BlockRecs*ps.Params.RecWords
}

// blockAddr returns the word address of block blk.
func (ps *PartitionSet) blockAddr(blk uint32) uint32 {
	return ps.Params.BlockBase + blk*ps.blockWords()
}

// PartitionOf returns the partition a key scatters to.
func (ps *PartitionSet) PartitionOf(key uint32) uint32 {
	return (Hash32(key) >> ps.Params.HashShift) & (ps.Params.Parts - 1)
}

// Extents returns the dense DRAM extents of partition p, newest block
// first, clipping the head block to its fill count. Reading them through a
// DRAMScan is the paper's "dense format" readback that avoids sparse reads
// when building hash tables from partitions.
func (ps *PartitionSet) Extents(p uint32) []fabric.Extent {
	packed := ps.Meta.Read(p)
	blk := packed >> partCountBits
	cnt := packed & partCountMask
	var out []fabric.Extent
	first := true
	for blk != NilBlock {
		if uint32(len(out)) > ps.Params.MaxBlocks {
			panic("core: partition block chain exceeds arena — chains crossed or corrupted")
		}
		n := ps.Params.BlockRecs
		if first {
			n = cnt
			first = false
		}
		out = append(out, fabric.Extent{
			Addr:  ps.blockAddr(blk) + 1,
			Words: int(n * ps.Params.RecWords),
		})
		blk = ps.HBM.ReadWord(ps.blockAddr(blk))
	}
	return out
}

// ReadPartition returns partition p's records functionally.
func (ps *PartitionSet) ReadPartition(p uint32) []record.Rec {
	var out []record.Rec
	for _, ext := range ps.Extents(p) {
		words := ps.HBM.SnapshotWords(ext.Addr, ext.Words)
		for i := 0; i+int(ps.Params.RecWords) <= len(words); i += int(ps.Params.RecWords) {
			var r record.Rec
			for k := 0; k < int(ps.Params.RecWords); k++ {
				r = r.Append(words[i+k])
			}
			out = append(out, r)
		}
	}
	return out
}

// Count returns the number of records in partition p.
func (ps *PartitionSet) Count(p uint32) int {
	n := 0
	for _, e := range ps.Extents(p) {
		n += e.Words / int(ps.Params.RecWords)
	}
	return n
}

// Partition-thread schema: input fields [0..RecWords), then part, cnt, ptr,
// newBlk appended.
func partFields(recWords uint32) (part, cnt, ptr, newBlk int) {
	return int(recWords), int(recWords) + 1, int(recWords) + 2, int(recWords) + 3
}

// partRecSchema names the external record layout: the key plus payload
// words.
func partRecSchema(recWords uint32) *record.Schema {
	names := make([]string, recWords)
	names[0] = "key"
	for i := 1; i < int(recWords); i++ {
		names[i] = fmt.Sprintf("v%d", i)
	}
	return record.NewSchema(names...)
}

// Partition runs the fig. 7b pipeline over input (records of
// p.RecWords 32-bit fields, field 0 the key). hbm may be nil.
func Partition(p PartitionParams, input []record.Rec, hbm *dram.HBM) (*PartitionSet, Result, error) {
	if hbm == nil {
		hbm = defaultHBM()
	}
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	g.Workers = p.Tuning.Parallelism
	ps, snk, err := PartitionInto(g, "prt", p, InRecs(input))
	if err != nil {
		return nil, Result{}, err
	}
	res, err := runGraph(g, budgetFor(len(input))*4)
	if err != nil {
		return nil, res, fmt.Errorf("partition: %w", err)
	}
	if snk.Count() != len(input) {
		return nil, res, fmt.Errorf("partition: stored %d of %d", snk.Count(), len(input))
	}
	ps.finish()
	return ps, res, nil
}

// PartitionInto wires one partitioning pipeline into an existing graph
// under a name prefix (stream-level parallelism instantiates several, each
// owning a disjoint block arena). Call (*PartitionSet).finish via
// FinishPartition after the graph runs.
func PartitionInto(g *fabric.Graph, pf string, p PartitionParams, input StreamIn) (*PartitionSet, *fabric.Sink, error) {
	if p.Parts == 0 || p.Parts&(p.Parts-1) != 0 {
		return nil, nil, fmt.Errorf("core: parts must be a power of two, got %d", p.Parts)
	}
	if p.BlockRecs >= partCountMask/2 {
		return nil, nil, fmt.Errorf("core: BlockRecs %d too large for the packed count field", p.BlockRecs)
	}
	fPart, fCnt, fPtr, fNew := partFields(p.RecWords)

	// Thread schemas: external records widen with the partition id at the
	// hash stage, the {cnt, ptr} ticket at the meta FAA, and the fresh
	// block index on the allocation path.
	inS := partRecSchema(p.RecWords)
	partS := g.Widen(inS, "part")
	metaS := g.Widen(partS, "cnt", "ptr")
	fullS := g.Widen(metaS, "newBlk")

	meta := spad.NewMem(16, int(p.Parts+15)/16, 0)
	meta.Fill(NilBlock<<partCountBits | p.BlockRecs) // head=nil, count=full ⇒ first thread allocates
	allocMem := spad.NewMem(16, 1, 0)                // global block allocation counter

	ps := &PartitionSet{Params: p, Meta: meta, HBM: g.HBM, allocMem: allocMem}

	src := g.Link(pf + ".src")
	input.attach(g, pf+".in", src, inS)

	// Loop entry: all records retry through the FAA until stored. The loop
	// body only guarantees the external prefix — recirculated records carry
	// stale ticket fields that the next FAA pass overwrites.
	ctl := fabric.NewLoopCtl()
	body := g.Link(pf + ".body")
	recircJoin := g.Link(pf + ".recircJoin")
	g.Add(fabric.NewLoopMerge(pf+".entry", recircJoin, src, body, ctl).Typed(metaS, inS, inS))

	// Hash to partition, then fused FAA on the packed {ptr|count} word.
	hashed := g.Link(pf + ".hashed")
	g.Add(fabric.NewMap(pf+".hash", func(r *record.Rec) {
		part := (Hash32(r.Get(0)) >> p.HashShift) & (p.Parts - 1)
		r.Put(fPart, part)
	}, body, hashed).Cyclic().Typed(inS, partS))

	// A saturating fetch-and-add (the RMW ALU's combiner): retry threads
	// hammering a stalled partition stop incrementing once the count field
	// is past every useful ticket, so the count can never creep into the
	// pointer bits however long an allocation takes. Every thread applies
	// the identical monotone function, so applications commute — the final
	// metadata word is independent of thread order.
	satFAA := &spad.CombineFn{
		Name:  "saturating-faa",
		Class: sim.ReorderCommutative,
		Fn: func(cur, _ uint32) uint32 {
			if cur&partCountMask >= 2*p.BlockRecs {
				return cur
			}
			return cur + 1
		},
	}
	faaOut := g.Link(pf + ".faaOut")
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".meta"), meta, spad.Spec{
		Op:       spad.OpModify,
		Addr:     func(r *record.Rec) uint32 { return r.Get(fPart) },
		Combiner: satFAA,
		In:       partS,
		Out:      metaS,
		Apply: func(r *record.Rec, resp []uint32) bool {
			cnt := resp[0] & partCountMask
			if cnt > p.BlockRecs+partCountMask/2 {
				// The retry storm incremented the packed count close to
				// overflowing into the pointer bits; a correctly sized
				// field never gets here.
				panic("core: partition count field overflow")
			}
			r.Put(fCnt, cnt)
			r.Put(fPtr, resp[0]>>partCountBits)
			return true
		},
	}, hashed, faaOut, g.Stats()))

	// Route on the ticket: store / allocate / retry.
	storeIn := g.Link(pf + ".storeIn")
	allocIn := g.Link(pf + ".allocIn")
	retry := g.Link(pf + ".retry")
	g.Add(fabric.NewFilter(pf+".route", func(r *record.Rec) int {
		cnt := r.Get(fCnt)
		switch {
		case cnt < p.BlockRecs:
			return 0 // free slot in the head block
		case cnt == p.BlockRecs:
			return 1 // first to see it full: allocate
		default:
			return 2 // allocation in progress: recirculate
		}
	}, faaOut, []fabric.Output{
		{Link: storeIn, Exit: true},
		{Link: allocIn},
		{Link: retry, NoEOS: true},
	}, ctl).Cyclic().Typed(metaS))

	// Store path (exits the loop): scatter the record into its block slot.
	// Each thread's {ptr, cnt} ticket names a slot no other thread holds,
	// so the scatters are disjoint and reorder freely.
	stored := g.Link(pf + ".stored")
	fabric.NewDRAMNode(g, pf+".store", spad.Spec{
		Op:    spad.OpWrite,
		Width: int(p.RecWords),
		Addr: func(r *record.Rec) uint32 {
			return ps.blockAddr(r.Get(fPtr)) + 1 + r.Get(fCnt)*p.RecWords
		},
		Data:          func(r *record.Rec, i int) uint32 { return r.Get(i) },
		In:            metaS,
		Out:           metaS,
		DisjointAddrs: true,
	}, storeIn, stored)
	snk := fabric.NewSink(pf+".sink", stored).Typed(metaS)
	g.Add(snk)

	// Allocation path (stays in the loop): grab a block index, link it to
	// the old head, publish {newBlk|0}, then retry.
	allocFaa := g.Link(pf + ".allocFaa")
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".alloc"), allocMem, spad.Spec{
		Op:   spad.OpFAA,
		Addr: func(*record.Rec) uint32 { return 0 },
		Data: func(*record.Rec, int) uint32 { return 1 },
		Apply: func(r *record.Rec, resp []uint32) bool {
			if resp[0] >= p.MaxBlocks {
				panic("core: partition block arena exhausted")
			}
			r.Put(fNew, resp[0])
			return true
		},
		In:  metaS,
		Out: fullS,
	}, allocIn, allocFaa, g.Stats()))
	linked := g.Link(pf + ".linked")
	// The allocator thread owns its fresh block outright until publish, so
	// the next-pointer writes land on disjoint addresses.
	fabric.NewDRAMNode(g, pf+".link", spad.Spec{
		Op:            spad.OpWrite,
		Width:         1,
		Addr:          func(r *record.Rec) uint32 { return ps.blockAddr(r.Get(fNew)) },
		Data:          func(r *record.Rec, _ int) uint32 { return r.Get(fPtr) },
		In:            fullS,
		Out:           fullS,
		DisjointAddrs: true,
	}, allocFaa, linked)
	published := g.Link(pf + ".published")
	g.Add(spad.NewTile(p.Tuning.spadConfig(pf+".publish"), meta, spad.Spec{
		Op:    spad.OpWrite,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(fPart) },
		Data:  func(r *record.Rec, _ int) uint32 { return r.Get(fNew) << partCountBits },
		In:    fullS,
		Out:   fullS,
		// Exactly one thread per partition generation holds ticket ==
		// BlockRecs and publishes; the next publish to the same word only
		// happens after this one is observed (the count must fill again),
		// so same-address writes are causally ordered through the meta FAA.
		OrderWaiver: "single publisher per partition generation, serialized by the meta FAA ticket",
	}, linked, published, g.Stats()))

	// Rejoin both recirculating paths.
	g.Add(fabric.NewMerge(pf+".recirc", published, retry, recircJoin).Cyclic().Typed(metaS, metaS, metaS))

	return ps, snk, nil
}

// finish records post-run facts (the allocated block count).
func (ps *PartitionSet) finish() {
	ps.Blocks = ps.allocMem.Read(0)
}

// FinishPartition finalizes partition sets after a shared graph run.
func FinishPartition(sets ...*PartitionSet) {
	for _, ps := range sets {
		ps.finish()
	}
}
