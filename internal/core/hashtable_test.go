package core

import (
	"math/rand"
	"sort"
	"testing"

	"aurochs/internal/record"
)

// refJoin is the software-reference equi-join used to validate kernels.
func refJoin(build, probe []record.Rec) map[[2]uint32][]uint32 {
	idx := make(map[uint32][]uint32)
	for _, r := range build {
		idx[r.Get(0)] = append(idx[r.Get(0)], r.Get(1))
	}
	out := make(map[[2]uint32][]uint32)
	for _, r := range probe {
		k := r.Get(0)
		for _, v := range idx[k] {
			key := [2]uint32{k, r.Get(1)}
			out[key] = append(out[key], v)
		}
	}
	for _, vs := range out {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	return out
}

func kv(n int, keyMod uint32, seed int64) []record.Rec {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(rng.Uint32()%keyMod, uint32(i)+1)
	}
	return recs
}

func TestBuildThenLookupAll(t *testing.T) {
	input := kv(500, 200, 1)
	ht, res, err := BuildHashTable(DefaultHashTableParams(len(input)), input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ht.Inserted != 500 {
		t.Fatalf("inserted %d", ht.Inserted)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
	// Every inserted (key,val) must be findable.
	want := make(map[uint32][]uint32)
	for _, r := range input {
		want[r.Get(0)] = append(want[r.Get(0)], r.Get(1))
	}
	for k, vs := range want {
		got := ht.LookupAll(k)
		if len(got) != len(vs) {
			t.Fatalf("key %d: got %d values, want %d", k, len(got), len(vs))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("key %d: values %v, want %v", k, got, vs)
			}
		}
	}
}

func TestBuildOverflowsToDRAM(t *testing.T) {
	// Force a tiny on-chip node capacity so most nodes overflow.
	p := DefaultHashTableParams(300)
	p.SpadNodes = 64
	input := kv(300, 50, 2)
	ht, _, err := BuildHashTable(p, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Chains must walk transparently across the SRAM/DRAM split.
	total := 0
	for k := uint32(0); k < 50; k++ {
		total += len(ht.LookupAll(k))
	}
	if total != 300 {
		t.Fatalf("found %d of 300 across overflow boundary", total)
	}
	if ht.HBM.ReadWord(p.OverflowBase) == 0 && ht.HBM.ReadWord(p.OverflowBase+1) == 0 {
		t.Error("overflow buffer untouched despite SpadNodes=64")
	}
}

func TestProbeFindsAllMatches(t *testing.T) {
	build := kv(400, 100, 3)
	probe := make([]record.Rec, 250)
	rng := rand.New(rand.NewSource(4))
	for i := range probe {
		probe[i] = record.Make(rng.Uint32()%150, uint32(1000+i)) // some miss
	}
	ht, _, err := BuildHashTable(DefaultHashTableParams(len(build)), build, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := ProbeHashTable(ht, probe, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	want := refJoin(build, probe)
	gotM := make(map[[2]uint32][]uint32)
	for _, r := range got {
		k := [2]uint32{r.Get(0), r.Get(1)}
		gotM[k] = append(gotM[k], r.Get(2))
	}
	for _, vs := range gotM {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	if len(gotM) != len(want) {
		t.Fatalf("got %d match groups, want %d", len(gotM), len(want))
	}
	for k, vs := range want {
		g := gotM[k]
		if len(g) != len(vs) {
			t.Fatalf("probe (key=%d,tag=%d): got %v want %v", k[0], k[1], g, vs)
		}
		for i := range vs {
			if g[i] != vs[i] {
				t.Fatalf("probe (key=%d,tag=%d): got %v want %v", k[0], k[1], g, vs)
			}
		}
	}
}

func TestProbeFirstMatchOnly(t *testing.T) {
	build := []record.Rec{
		record.Make(7, 1), record.Make(7, 2), record.Make(7, 3),
		record.Make(9, 4),
	}
	ht, _, err := BuildHashTable(DefaultHashTableParams(4), build, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ProbeHashTable(ht, []record.Rec{record.Make(7, 0), record.Make(9, 1), record.Make(8, 2)}, ProbeOptions{FirstMatchOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2 (one per present key)", len(got))
	}
}

func TestProbeOverflowChains(t *testing.T) {
	p := DefaultHashTableParams(300)
	p.SpadNodes = 32 // nearly everything in DRAM
	build := kv(300, 40, 5)
	probe := make([]record.Rec, 100)
	for i := range probe {
		probe[i] = record.Make(uint32(i)%60, uint32(i))
	}
	ht, _, err := BuildHashTable(p, build, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ProbeHashTable(ht, probe, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for _, g := range refJoin(build, probe) {
		wantCount += len(g)
	}
	if len(got) != wantCount {
		t.Fatalf("matches=%d want %d", len(got), wantCount)
	}
}

// TestConcurrentStyleSkewedBuild hammers one bucket (all duplicate keys) —
// maximum CAS contention — and must still insert everything exactly once.
func TestConcurrentStyleSkewedBuild(t *testing.T) {
	input := make([]record.Rec, 200)
	for i := range input {
		input[i] = record.Make(42, uint32(i))
	}
	ht, res, err := BuildHashTable(DefaultHashTableParams(len(input)), input, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := ht.LookupAll(42)
	if len(got) != 200 {
		t.Fatalf("chain has %d entries, want 200", len(got))
	}
	seen := map[uint32]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("value %d linked twice", v)
		}
		seen[v] = true
	}
	// Contention must cost cycles: with 200 same-bucket CAS ops the build
	// cannot finish at one insert/cycle.
	if res.Cycles < 200 {
		t.Errorf("suspiciously fast under total contention: %d cycles", res.Cycles)
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	p := DefaultHashTableParams(10)
	p.Buckets = 3
	if _, _, err := BuildHashTable(p, kv(10, 5, 1), nil); err == nil {
		t.Error("non-power-of-two buckets accepted")
	}
	p = DefaultHashTableParams(10)
	p.MaxNodes = 5
	if _, _, err := BuildHashTable(p, kv(10, 5, 1), nil); err == nil {
		t.Error("overful input accepted")
	}
}

// TestAblationInOrderSlower: the Capstan in-order scratchpad should not
// outperform the Aurochs reordering pipeline on a conflict-heavy probe.
func TestAblationInOrderSlower(t *testing.T) {
	build := kv(2000, 256, 6)
	probe := kv(2000, 256, 7)
	run := func(tun Tuning) int64 {
		p := DefaultHashTableParams(len(build))
		p.Tuning = tun
		ht, _, err := BuildHashTable(p, build, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := ProbeHashTable(ht, probe, ProbeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fast := run(Tuning{})
	slow := run(Tuning{InOrderSpad: true})
	if fast > slow+slow/10 {
		t.Errorf("reordering probe (%d cyc) should not be slower than in-order (%d cyc)", fast, slow)
	}
}

// TestInsertHashTableStreaming: streaming inserts through the build
// pipeline must land in the same table and remain probe-consistent — the
// symmetric stream-join ingest path (paper §IV-A).
func TestInsertHashTableStreaming(t *testing.T) {
	p := DefaultHashTableParams(600)
	ht, _, err := BuildHashTable(p, kv(200, 80, 31), nil)
	if err != nil {
		t.Fatal(err)
	}
	batch2 := kv(200, 80, 32)
	res, err := InsertHashTable(ht, batch2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles for insert")
	}
	if ht.Inserted != 400 {
		t.Fatalf("inserted=%d", ht.Inserted)
	}
	total := 0
	for k := uint32(0); k < 80; k++ {
		total += len(ht.LookupAll(k))
	}
	if total != 400 {
		t.Fatalf("lookup found %d of 400", total)
	}
	// Probes against the incrementally grown table.
	got, _, err := ProbeHashTable(ht, kv(100, 80, 33), ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := refJoin(append(kv(200, 80, 31), batch2...), kv(100, 80, 33))
	wantCount := 0
	for _, vs := range want {
		wantCount += len(vs)
	}
	if len(got) != wantCount {
		t.Fatalf("probe matches=%d want %d", len(got), wantCount)
	}
}

func TestInsertHashTableOverCapacity(t *testing.T) {
	p := DefaultHashTableParams(10)
	ht, _, err := BuildHashTable(p, kv(10, 5, 34), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertHashTable(ht, kv(100, 5, 35)); err == nil {
		t.Error("over-capacity insert accepted")
	}
}

// TestWideKeyBuildProbe: two-word (64-bit) keys stay in one lane and
// compare field-by-field across pipeline stages (paper §II-B). Collisions
// in the low word must not produce false matches.
func TestWideKeyBuildProbe(t *testing.T) {
	p := DefaultHashTableParams(400)
	p.KeyWords = 2
	rng := rand.New(rand.NewSource(41))
	build := make([]record.Rec, 400)
	want := map[uint64][]uint32{}
	for i := range build {
		// Shared low word, distinct high words: a 32-bit comparison
		// would alias these keys.
		key := uint64(rng.Intn(50)) | uint64(rng.Intn(40))<<32
		build[i] = record.Make(0, 0, uint32(i)).SetU64(0, key)
		want[key] = append(want[key], uint32(i))
	}
	ht, _, err := BuildHashTable(p, build, nil)
	if err != nil {
		t.Fatal(err)
	}
	for key, vs := range want {
		got := ht.LookupAll64(key)
		if len(got) != len(vs) {
			t.Fatalf("key %x: %d values, want %d", key, len(got), len(vs))
		}
	}

	probes := make([]record.Rec, 200)
	for i := range probes {
		key := uint64(rng.Intn(60)) | uint64(rng.Intn(50))<<32
		probes[i] = record.Make(0, 0, uint32(1000+i)).SetU64(0, key)
	}
	got, _, err := ProbeHashTable(ht, probes, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantMatches := 0
	for _, pr := range probes {
		wantMatches += len(want[pr.U64(0)])
	}
	if len(got) != wantMatches {
		t.Fatalf("matches=%d want %d", len(got), wantMatches)
	}
	for _, m := range got {
		if len(want[m.U64(0)]) == 0 {
			t.Fatalf("false match on key %x (low-word alias?)", m.U64(0))
		}
	}
}

func TestWideKeyRejectsBadWidth(t *testing.T) {
	p := DefaultHashTableParams(8)
	p.KeyWords = 3
	defer func() {
		if recover() == nil {
			t.Error("KeyWords=3 must panic")
		}
	}()
	BuildHashTable(p, []record.Rec{record.Make(1, 2, 3, 4)}, nil)
}
