package core

import (
	"fmt"
	"sort"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// DRAM region plan (word addresses). Kernels composing into queries share
// one HBM; fixed disjoint arenas keep their structures apart.
const (
	RegionHashOverflow = 1 << 26 // hash-table overflow nodes
	RegionPartBlocks   = 1 << 27 // partition block arena
	RegionSpill        = 1 << 28 // spill-queue rings
	RegionSortA        = 1 << 29 // sort ping buffer
	RegionSortB        = 3 << 28 // sort pong buffer
	RegionTables       = 1 << 30 // base of table/index data
)

// Gorgon's merge sort (paper §IV-B): tiles sort on-chip at line rate, then
// high-radix merge passes conserve DRAM bandwidth. Aurochs inherits the
// kernel unchanged; LSM maintenance, sort-merge joins, and ORDER BY all sit
// on top of it.
const (
	// sortTileRecs is the records sorted per on-chip tile (256 KiB of
	// 4-word records ≈ 16K; kept a power of two).
	sortTileRecs = 1 << 14
	// sortRadix is the merge fan-in per pass.
	sortRadix = 8
)

// tileSorter is the on-chip tile-sort stage: double-buffered so the stream
// sustains line rate — one tile drains through the merge network while the
// next fills.
type tileSorter struct {
	name string
	in   *sim.Link
	out  *sim.Link
	key  fabric.KeyFn

	fill  []record.Rec
	drain []record.Rec
	// drainBase pins the full backing array behind drain (which is consumed
	// by reslicing) so the swap can recycle it as the next fill buffer: the
	// two arrays ping-pong and the sorter stops allocating once both reach
	// tile capacity.
	drainBase []record.Rec
	tile      int
	eosIn     bool
	eos       bool
}

func newTileSorter(name string, key fabric.KeyFn, tile int, in, out *sim.Link) *tileSorter {
	return &tileSorter{name: name, key: key, tile: tile, in: in, out: out}
}

func (t *tileSorter) Name() string { return t.name }

func (t *tileSorter) InputLinks() []*sim.Link { return []*sim.Link{t.in} }

func (t *tileSorter) OutputLinks() []*sim.Link { return []*sim.Link{t.out} }

func (t *tileSorter) Done() bool { return t.eos }

// Idle implements sim.Idler: nothing draining, nothing fillable, no swap
// due, and no EOS pending.
func (t *tileSorter) Idle(int64) bool {
	if len(t.drain) > 0 {
		return false
	}
	if !t.eosIn && !t.in.Empty() && len(t.fill) < t.tile {
		return false
	}
	if len(t.fill) >= t.tile || (t.eosIn && len(t.fill) > 0) {
		return false
	}
	if t.eosIn && !t.eos {
		return false
	}
	return true
}

// WakeHint implements sim.WakeHinter: no self-timed events — an idle
// sorter holds no drainable or swappable work and waits on link activity.
func (t *tileSorter) WakeHint(int64) int64 { return sim.WakeNever }

func (t *tileSorter) Tick(cycle int64) {
	// Drain one vector.
	if len(t.drain) > 0 && t.out.CanPush() {
		var v record.Vector
		n := len(t.drain)
		if n > record.NumLanes {
			n = record.NumLanes
		}
		for i := 0; i < n; i++ {
			v.Push(t.drain[i])
		}
		t.drain = t.drain[n:]
		t.out.Push(cycle, sim.Flit{Vec: v})
	}
	// Fill one vector.
	if !t.eosIn && !t.in.Empty() && len(t.fill) < t.tile {
		f := t.in.Pop()
		if f.EOS {
			t.eosIn = true
		} else {
			// AppendRecords copies lanes without Records' per-call slice;
			// growth stops once each ping-pong buffer reaches tile
			// capacity (see the swap below).
			t.fill = f.Vec.AppendRecords(t.fill) // lint:hotalloc-ok warmup growth, buffers ping-pong at steady state
		}
	}
	// Swap when the fill tile is complete and the drain side is free. The
	// comparator closure and sort.SliceStable's internals allocate once per
	// tile swap — amortized over the tile-size cycles spent filling it.
	if len(t.drain) == 0 && (len(t.fill) >= t.tile || (t.eosIn && len(t.fill) > 0)) {
		sort.SliceStable(t.fill, func(i, j int) bool { return t.key(t.fill[i]) < t.key(t.fill[j]) }) // lint:hotalloc-ok per-tile swap, amortized
		t.drain = t.fill
		t.fill = t.drainBase[:0]
		t.drainBase = t.drain
	}
	if t.eosIn && !t.eos && len(t.fill) == 0 && len(t.drain) == 0 && t.out.CanPush() {
		t.out.Push(cycle, sim.Flit{EOS: true})
		t.eos = true
	}
}

// SortedRun locates a sorted dense run in DRAM.
type SortedRun struct {
	Base     uint32
	Recs     int
	RecWords int
}

// Extent returns the run as a scan extent.
func (r SortedRun) Extent() fabric.Extent {
	return fabric.Extent{Addr: r.Base, Words: r.Recs * r.RecWords}
}

// Sort runs the full Gorgon merge sort over a dense input run already
// resident in DRAM, double-buffering through the RegionSortA/RegionSortB
// arenas. See SortAt for an explicit scratch placement.
func Sort(hbm *dram.HBM, in SortedRun, key fabric.KeyFn) (SortedRun, Result, error) {
	return SortAt(hbm, in, key, RegionSortA, RegionSortB)
}

// SortAt runs the full Gorgon merge sort over a dense input run already
// resident in DRAM: a tile-sort pass producing sortTileRecs-sized sorted
// runs, then radix-sortRadix merge passes until one run remains, ping-pong
// buffering between the two scratch arenas. It returns the final run's
// location and the summed timing of all passes. Callers sorting several
// runs that must coexist give each its own arenas.
func SortAt(hbm *dram.HBM, in SortedRun, key fabric.KeyFn, scratchA, scratchB uint32) (SortedRun, Result, error) {
	var total Result
	if in.Recs == 0 {
		return in, total, nil
	}
	ping, pong := scratchA, scratchB
	if in.Base == ping {
		ping, pong = pong, scratchA
	}

	// Pass 0: tile sort, streaming in → sorted runs at ping.
	runs, res, err := tileSortPass(hbm, in, key, ping)
	if err != nil {
		return in, total, err
	}
	accumulate(&total, res)

	// Merge passes.
	for len(runs) > 1 {
		var next []SortedRun
		out := pong
		for i := 0; i < len(runs); i += sortRadix {
			end := i + sortRadix
			if end > len(runs) {
				end = len(runs)
			}
			merged, res, err := mergePass(hbm, runs[i:end], key, out)
			if err != nil {
				return in, total, err
			}
			accumulate(&total, res)
			next = append(next, merged)
			out += uint32(merged.Recs * merged.RecWords)
		}
		runs = next
		ping, pong = pong, ping
	}
	return runs[0], total, nil
}

func accumulate(total *Result, r Result) {
	total.Cycles += r.Cycles
	total.DRAMBytes += r.DRAMBytes
	if r.Workers > total.Workers {
		total.Workers = r.Workers // report the widest phase
	}
	if r.Kernel.Components > total.Kernel.Components {
		total.Kernel = r.Kernel // report the dominant (largest-census) phase
	}
	if total.Stats == nil {
		total.Stats = sim.NewStats()
	}
}

// tileSortPass streams the input through the tile sorter once, emitting
// sorted tile runs at base.
func tileSortPass(hbm *dram.HBM, in SortedRun, key fabric.KeyFn, base uint32) ([]SortedRun, Result, error) {
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	a, b := g.Link("srt.scan"), g.Link("srt.sorted")
	fabric.NewDRAMScan(g, "srt.in", []fabric.Extent{in.Extent()}, in.RecWords, a)
	g.Add(newTileSorter("srt.tile", key, sortTileRecs, a, b))
	app := fabric.NewDRAMAppend(g, "srt.out", base, in.RecWords, b)
	res, err := runGraph(g, budgetFor(in.Recs)*2)
	if err != nil {
		return nil, res, fmt.Errorf("tile sort: %w", err)
	}
	if app.Count() != in.Recs {
		return nil, res, fmt.Errorf("tile sort: wrote %d of %d", app.Count(), in.Recs)
	}
	var runs []SortedRun
	for off := 0; off < in.Recs; off += sortTileRecs {
		n := sortTileRecs
		if off+n > in.Recs {
			n = in.Recs - off
		}
		runs = append(runs, SortedRun{Base: base + uint32(off*in.RecWords), Recs: n, RecWords: in.RecWords})
	}
	return runs, res, nil
}

// mergePass merges up to sortRadix runs into one at base.
func mergePass(hbm *dram.HBM, runs []SortedRun, key fabric.KeyFn, base uint32) (SortedRun, Result, error) {
	if len(runs) == 1 {
		// Odd tail: copy-through (a real design would just leave it; we
		// relocate to keep output contiguous).
		g := fabric.NewGraph()
		g.AttachHBM(hbm)
		a := g.Link("mrg.scan")
		fabric.NewDRAMScan(g, "mrg.in", []fabric.Extent{runs[0].Extent()}, runs[0].RecWords, a)
		fabric.NewDRAMAppend(g, "mrg.out", base, runs[0].RecWords, a)
		res, err := runGraph(g, budgetFor(runs[0].Recs)*2)
		return SortedRun{Base: base, Recs: runs[0].Recs, RecWords: runs[0].RecWords}, res, err
	}
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	ins := make([]*sim.Link, len(runs))
	total := 0
	for i, r := range runs {
		ins[i] = g.Link(fmt.Sprintf("mrg.in%d", i))
		fabric.NewDRAMScan(g, fmt.Sprintf("mrg.scan%d", i), []fabric.Extent{r.Extent()}, r.RecWords, ins[i])
		total += r.Recs
	}
	out := g.Link("mrg.merged")
	g.Add(fabric.NewOrderedMerge("mrg.merge", key, ins, out))
	app := fabric.NewDRAMAppend(g, "mrg.out", base, runs[0].RecWords, out)
	res, err := runGraph(g, budgetFor(total)*2)
	if err != nil {
		return SortedRun{}, res, fmt.Errorf("merge pass: %w", err)
	}
	if app.Count() != total {
		return SortedRun{}, res, fmt.Errorf("merge pass: wrote %d of %d", app.Count(), total)
	}
	return SortedRun{Base: base, Recs: total, RecWords: runs[0].RecWords}, res, nil
}

// MaterializeRun writes records densely into DRAM (untimed — stands in for
// the previous operator's output already being resident).
func MaterializeRun(hbm *dram.HBM, base uint32, recs []record.Rec, recWords int) SortedRun {
	words := make([]uint32, 0, len(recs)*recWords)
	for _, r := range recs {
		for i := 0; i < recWords; i++ {
			words = append(words, r.Get(i))
		}
	}
	hbm.LoadWords(base, words)
	return SortedRun{Base: base, Recs: len(recs), RecWords: recWords}
}

// ReadRun reads a run back functionally.
func ReadRun(hbm *dram.HBM, run SortedRun) []record.Rec {
	words := hbm.SnapshotWords(run.Base, run.Recs*run.RecWords)
	out := make([]record.Rec, 0, run.Recs)
	for i := 0; i+run.RecWords <= len(words); i += run.RecWords {
		var r record.Rec
		for k := 0; k < run.RecWords; k++ {
			r = r.Append(words[i+k])
		}
		out = append(out, r)
	}
	return out
}

// SortMergeJoin is the Gorgon-style equi-join: sort both sides, then one
// linear merge pass. Returns the matches ([aFields..., bFields...] via the
// default combiner) and summed timing. This is the baseline algorithm that
// wins at small sizes on dense access but loses asymptotically to the hash
// join (fig. 11a).
func SortMergeJoin(hbm *dram.HBM, a, b []record.Rec, recWords int, key fabric.KeyFn) ([]record.Rec, Result, error) {
	if hbm == nil {
		hbm = defaultHBM()
	}
	var total Result
	runA := MaterializeRun(hbm, RegionTables, a, recWords)
	runB := MaterializeRun(hbm, RegionTables+uint32(len(a)*recWords)+1024, b, recWords)

	sortedA, resA, err := SortAt(hbm, runA, key, RegionSortA, RegionSortA+(1<<27))
	if err != nil {
		return nil, total, err
	}
	accumulate(&total, resA)
	sortedB, resB, err := SortAt(hbm, runB, key, RegionSortB, RegionSortB+(1<<27))
	if err != nil {
		return nil, total, err
	}
	accumulate(&total, resB)

	// Final pass: stream both sorted runs through the merge-join element.
	g := fabric.NewGraph()
	g.AttachHBM(hbm)
	la, lb, lo := g.Link("smj.a"), g.Link("smj.b"), g.Link("smj.out")
	fabric.NewDRAMScan(g, "smj.scanA", []fabric.Extent{sortedA.Extent()}, recWords, la)
	fabric.NewDRAMScan(g, "smj.scanB", []fabric.Extent{sortedB.Extent()}, recWords, lb)
	g.Add(fabric.NewMergeJoin("smj.join", key, key, func(x, y record.Rec) record.Rec {
		out := x
		for i := 0; i < recWords && out.Len() < record.MaxFields; i++ {
			out = out.Append(y.Get(i))
		}
		return out
	}, la, lb, lo))
	snk := fabric.NewSink("smj.sink", lo)
	g.Add(snk)
	res, err := runGraph(g, budgetFor(len(a)+len(b))*4)
	if err != nil {
		return nil, total, fmt.Errorf("merge join: %w", err)
	}
	accumulate(&total, res)
	return snk.Records(), total, nil
}
