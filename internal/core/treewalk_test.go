package core

import (
	"math/rand"
	"sort"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/index/btree"
	"aurochs/internal/index/rtree"
)

func TestBTreeSearchMatchesReference(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	rng := rand.New(rand.NewSource(21))
	items := make([]btree.KV, 4000)
	for i := range items {
		items[i] = btree.KV{Key: rng.Uint32() % 20000, Val: uint32(i)}
	}
	tr := btree.Build(h, 0, items)

	queries := make([]RangeQuery, 60)
	for i := range queries {
		lo := rng.Uint32() % 20000
		queries[i] = RangeQuery{Lo: lo, Hi: lo + rng.Uint32()%500, Tag: uint32(i)}
	}
	got, res, err := BTreeSearch(tr, queries, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.DRAMBytes <= 0 {
		t.Fatalf("timing missing: %+v", res)
	}
	// Group results by tag and compare against the functional Range.
	byTag := map[uint32][]uint32{}
	for _, r := range got {
		byTag[r.Get(2)] = append(byTag[r.Get(2)], r.Get(0))
	}
	for i, q := range queries {
		want := tr.Range(q.Lo, q.Hi)
		g := byTag[uint32(i)]
		if len(g) != len(want) {
			t.Fatalf("query %d [%d,%d]: %d hits, want %d", i, q.Lo, q.Hi, len(g), len(want))
		}
		sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
		for k := range want {
			if g[k] != want[k].Key {
				t.Fatalf("query %d: hit key %d, want %d", i, g[k], want[k].Key)
			}
		}
	}
}

func TestBTreePointLookups(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	items := make([]btree.KV, 1000)
	for i := range items {
		items[i] = btree.KV{Key: uint32(i * 2), Val: uint32(i)}
	}
	tr := btree.Build(h, 0, items)
	queries := []RangeQuery{
		{Lo: 500, Hi: 500, Tag: 0},   // present
		{Lo: 501, Hi: 501, Tag: 1},   // absent (odd)
		{Lo: 0, Hi: 0, Tag: 2},       // first
		{Lo: 1998, Hi: 1998, Tag: 3}, // last
	}
	got, _, err := BTreeSearch(tr, queries, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	hits := map[uint32]int{}
	for _, r := range got {
		hits[r.Get(2)]++
	}
	for tag, want := range map[uint32]int{0: 1, 1: 0, 2: 1, 3: 1} {
		if hits[tag] != want {
			t.Errorf("tag %d: %d hits, want %d", tag, hits[tag], want)
		}
	}
}

func TestBTreeDuplicatesAcrossLeaves(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	// 40 copies of one key guarantee the run spans multiple leaves.
	var items []btree.KV
	for i := 0; i < 40; i++ {
		items = append(items, btree.KV{Key: 777, Val: uint32(i)})
	}
	for i := 0; i < 200; i++ {
		items = append(items, btree.KV{Key: uint32(i * 10), Val: 0})
	}
	tr := btree.Build(h, 0, items)
	got, _, err := BTreeSearch(tr, []RangeQuery{{Lo: 777, Hi: 777}}, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("found %d duplicates, want 40", len(got))
	}
}

func TestRTreeWindowMatchesReference(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	rng := rand.New(rand.NewSource(31))
	const maxC = 1 << 16
	entries := make([]rtree.Entry, 3000)
	for i := range entries {
		x, y := rng.Uint32()%maxC, rng.Uint32()%maxC
		entries[i] = rtree.Entry{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}, ID: uint32(i)}
	}
	tr := rtree.Build(h, 0, entries, maxC)

	queries := make([]WindowQuery, 40)
	for i := range queries {
		x, y := rng.Uint32()%maxC, rng.Uint32()%maxC
		queries[i] = WindowQuery{
			Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + 3000, MaxY: y + 3000},
			Tag:  uint32(i),
		}
	}
	got, res, err := RTreeWindow(tr, queries, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	byTag := map[uint32]map[uint32]bool{}
	for _, r := range got {
		m := byTag[r.Get(1)]
		if m == nil {
			m = map[uint32]bool{}
			byTag[r.Get(1)] = m
		}
		if m[r.Get(0)] {
			t.Fatalf("duplicate hit id=%d tag=%d", r.Get(0), r.Get(1))
		}
		m[r.Get(0)] = true
	}
	for i, q := range queries {
		want := tr.Window(q.Rect)
		g := byTag[uint32(i)]
		if len(g) != len(want) {
			t.Fatalf("query %d: %d hits, want %d", i, len(g), len(want))
		}
		for _, id := range want {
			if !g[id] {
				t.Fatalf("query %d missing id %d", i, id)
			}
		}
	}
}

// TestRTreeHighFanoutSpills: a window covering the whole space forks a
// thread down every path — the spill queue must absorb it without deadlock.
func TestRTreeHighFanoutSpills(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	rng := rand.New(rand.NewSource(32))
	const maxC = 1 << 16
	entries := make([]rtree.Entry, 8000)
	for i := range entries {
		x, y := rng.Uint32()%maxC, rng.Uint32()%maxC
		entries[i] = rtree.Entry{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}, ID: uint32(i)}
	}
	tr := rtree.Build(h, 0, entries, maxC)
	got, _, err := RTreeWindow(tr, []WindowQuery{{Rect: rtree.Rect{MinX: 0, MinY: 0, MaxX: maxC, MaxY: maxC}}}, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("full-space window returned %d of %d", len(got), len(entries))
	}
}

func TestBTreeEmptyQueryBatch(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	tr := btree.Build(h, 0, []btree.KV{{Key: 1, Val: 1}})
	got, _, err := BTreeSearch(tr, nil, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("no queries produced %d results", len(got))
	}
}
