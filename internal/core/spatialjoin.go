package core

import (
	"fmt"

	"aurochs/internal/fabric"
	"aurochs/internal/index/rtree"
	"aurochs/internal/record"
)

// Spatial join between two R-tree indices (paper fig. 9b): a synchronized
// descent where each thread holds a *pair* of nodes, one from each tree,
// and forks a child thread per overlapping child pair. Leaf×leaf pairs emit
// matches. Mismatched tree heights descend the deeper side alone.
//
// Join-thread schema: [ptrA, leafA, ptrB, leafB, outA, outB, mark].
const (
	sjPtrA = iota
	sjLeafA
	sjPtrB
	sjLeafB
	sjOutA
	sjOutB
	sjMark
)

// SpatialJoinPair is one match: entry IDs from each tree whose rectangles
// intersect.
type SpatialJoinPair struct {
	A, B uint32
}

// RTreeSpatialJoin joins two packed R-trees on rectangle intersection,
// returning every (idA, idB) pair. Both trees must live on the same HBM.
func RTreeSpatialJoin(a, b *rtree.Tree, tun Tuning) ([]SpatialJoinPair, Result, error) {
	if a.HBM != b.HBM {
		return nil, Result{}, fmt.Errorf("core: spatial join requires both trees on one HBM")
	}
	if a.Len == 0 || b.Len == 0 {
		return nil, Result{}, nil
	}
	g := fabric.NewGraph()
	g.AttachHBM(a.HBM)
	g.Workers = tun.Parallelism

	ctl := fabric.NewLoopCtl()
	ext := g.Link("sj.ext")
	body := g.Link("sj.body")
	walked := g.Link("sj.walked")
	recirc := g.Link("sj.recirc")
	recircQ := g.Link("sj.recircQ")
	found := g.Link("sj.found")

	root := record.Make(a.Root, 0, b.Root, 0, 0, 0, 0)
	g.Add(fabric.NewSource("sj.in", []record.Rec{root}, ext))
	g.Add(fabric.NewLoopMerge("sj.entry", recircQ, ext, body, ctl))

	fabric.NewDRAMExpand2(g, "sj.fetch", rtree.NodeWords, rtree.NodeWords,
		func(r record.Rec) uint32 { return a.NodeAddr(r.Get(sjPtrA)) },
		func(r record.Rec) uint32 { return b.NodeAddr(r.Get(sjPtrB)) },
		expandJoinPair, ctl, body, walked)

	g.Add(fabric.NewFilter("sj.route", func(r *record.Rec) int {
		if r.Get(sjMark) == 1 {
			return 0
		}
		return 1
	}, walked, []fabric.Output{
		{Link: found, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	fabric.NewSpillQueue(g, "sj.spill", RegionSpill+(1<<24), record.MaxFields, 256, recirc, recircQ)

	snk := fabric.NewSink("sj.sink", found)
	g.Add(snk)

	res, err := runGraph(g, int64(a.Len+b.Len)*400+2_000_000)
	if err != nil {
		return nil, res, fmt.Errorf("spatial join: %w", err)
	}
	out := make([]SpatialJoinPair, snk.Count())
	for i, r := range snk.Records() {
		out[i] = SpatialJoinPair{A: r.Get(sjOutA), B: r.Get(sjOutB)}
	}
	return out, res, nil
}

// nodeEnts decodes a fetched R-tree block.
func nodeEnts(block []uint32) (isLeaf bool, ents []rtree.Entry) {
	hdr := block[0]
	n := int(hdr >> 1)
	isLeaf = hdr&1 == 1
	ents = make([]rtree.Entry, n)
	for i := 0; i < n; i++ {
		w := 1 + i*5
		ents[i] = rtree.Entry{
			Rect: rtree.Rect{MinX: block[w], MinY: block[w+1], MaxX: block[w+2], MaxY: block[w+3]},
			ID:   block[w+4],
		}
	}
	return isLeaf, ents
}

// mbr unions a node's entries.
func mbr(ents []rtree.Entry) rtree.Rect {
	out := ents[0].Rect
	for _, e := range ents[1:] {
		if e.Rect.MinX < out.MinX {
			out.MinX = e.Rect.MinX
		}
		if e.Rect.MinY < out.MinY {
			out.MinY = e.Rect.MinY
		}
		if e.Rect.MaxX > out.MaxX {
			out.MaxX = e.Rect.MaxX
		}
		if e.Rect.MaxY > out.MaxY {
			out.MaxY = e.Rect.MaxY
		}
	}
	return out
}

// expandJoinPair is the synchronized-descent fork: overlapping child pairs
// become child threads; leaf×leaf overlaps become matches; when only one
// side is a leaf, the other side descends alone against the leaf's MBR.
func expandJoinPair(r record.Rec, blockA, blockB []uint32) []record.Rec {
	leafA, entsA := nodeEnts(blockA)
	leafB, entsB := nodeEnts(blockB)
	if len(entsA) == 0 || len(entsB) == 0 {
		return nil
	}
	var out []record.Rec
	switch {
	case leafA && leafB:
		for _, ea := range entsA {
			for _, eb := range entsB {
				if ea.Rect.Intersects(eb.Rect) {
					c := r.Set(sjOutA, ea.ID)
					c = c.Set(sjOutB, eb.ID)
					out = append(out, c.Set(sjMark, 1))
				}
			}
		}
	case leafA: // descend B against A's bounds
		box := mbr(entsA)
		for _, eb := range entsB {
			if box.Intersects(eb.Rect) {
				out = append(out, r.Set(sjPtrB, eb.ID).Set(sjMark, 0))
			}
		}
	case leafB: // descend A against B's bounds
		box := mbr(entsB)
		for _, ea := range entsA {
			if box.Intersects(ea.Rect) {
				out = append(out, r.Set(sjPtrA, ea.ID).Set(sjMark, 0))
			}
		}
	default:
		for _, ea := range entsA {
			for _, eb := range entsB {
				if ea.Rect.Intersects(eb.Rect) {
					c := r.Set(sjPtrA, ea.ID)
					c = c.Set(sjPtrB, eb.ID)
					out = append(out, c.Set(sjMark, 0))
				}
			}
		}
	}
	return out
}
