package core

import (
	"fmt"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

// HashJoinOptions configures the composed equi-join (paper §IV-A).
type HashJoinOptions struct {
	// Parts is the total partition count (power of two). Zero sizes it so
	// the expected partition fits the node scratchpad.
	Parts uint32
	// Pipelines is the stream-level parallelism P: how many partition /
	// build / probe pipelines run concurrently on the fabric, sharing the
	// HBM (fig. 12's knob).
	Pipelines int
	// FirstMatchOnly selects semi-join semantics.
	FirstMatchOnly bool
	// Tuning carries the ablation knobs.
	Tuning Tuning
}

func (o *HashJoinOptions) fill(n int) {
	if o.Pipelines == 0 {
		o.Pipelines = 1
	}
	if o.Parts == 0 {
		spadRecs := 16384 // ~expected partition that fits the node scratchpad
		parts := uint32(1)
		for int(parts)*spadRecs < n {
			parts <<= 1
		}
		o.Parts = parts
	}
	if o.Parts < uint32(o.Pipelines) {
		o.Parts = uint32(o.Pipelines)
	}
}

// HashJoin runs the full two-phase partitioned hash join on the fabric:
// radix-partition both tables to DRAM on their hash keys (P parallel
// fig. 7b pipelines), then for each partition pair build an on-chip hash
// table from the build side and probe it with the probe side (figs. 6a,
// 7a). Inputs are [key, val] records; matches are [key, probeVal,
// buildVal]. The returned Result sums all phases.
func HashJoin(hbm *dram.HBM, buildSide, probeSide []record.Rec, opt HashJoinOptions) ([]record.Rec, Result, error) {
	if hbm == nil {
		hbm = defaultHBM()
	}
	opt.fill(len(buildSide))
	P := opt.Pipelines
	partsPer := opt.Parts / uint32(P)
	var total Result

	// --- Phase 1: radix-partition both sides, P pipelines each ---
	// The splitter network routes records to pipelines on the low hash
	// bits; each pipeline then partitions on the next bits.
	shift := uint(0)
	for v := 1; v < P; v <<= 1 {
		shift++
	}
	split := func(recs []record.Rec) [][]record.Rec {
		out := make([][]record.Rec, P)
		for _, r := range recs {
			k := int(Hash32(r.Get(0)) & uint32(P-1))
			out[k] = append(out[k], r)
		}
		return out
	}

	partitionSide := func(side string, recs []record.Rec, arenaOff uint32) ([]*PartitionSet, error) {
		g := fabric.NewGraph()
		g.AttachHBM(hbm)
		g.Workers = opt.Tuning.Parallelism
		groups := split(recs)
		sets := make([]*PartitionSet, P)
		sinks := make([]*fabric.Sink, P)
		// One uniform arena stride for all pipelines (sized for the whole
		// input): per-pipeline strides would differ with group sizes and
		// overlap, cross-linking block chains.
		proto := DefaultPartitionParams(len(recs)+P, partsPer, 2)
		arena := proto.MaxBlocks * (1 + proto.BlockRecs*proto.RecWords)
		for k := 0; k < P; k++ {
			pp := proto
			pp.HashShift = shift
			pp.Tuning = opt.Tuning
			pp.BlockBase = RegionPartBlocks + arenaOff + uint32(k)*arena
			ps, snk, err := PartitionInto(g, fmt.Sprintf("prt.%s%d", side, k), pp, InRecs(groups[k]))
			if err != nil {
				return nil, err
			}
			sets[k], sinks[k] = ps, snk
		}
		res, err := runGraph(g, budgetFor(len(recs))*4)
		if err != nil {
			return nil, fmt.Errorf("partition %s: %w", side, err)
		}
		accumulate(&total, res)
		for k := 0; k < P; k++ {
			if sinks[k].Count() != len(groups[k]) {
				return nil, fmt.Errorf("partition %s pipeline %d: stored %d of %d", side, k, sinks[k].Count(), len(groups[k]))
			}
		}
		FinishPartition(sets...)
		return sets, nil
	}

	buildSets, err := partitionSide("b", buildSide, 0)
	if err != nil {
		return nil, total, err
	}
	probeSets, err := partitionSide("p", probeSide, 1<<26)
	if err != nil {
		return nil, total, err
	}

	// --- Phase 2: per partition pair, build then probe; P pairs at a
	// time share the fabric ---
	var matches []record.Rec
	for r := uint32(0); r < partsPer; r++ {
		// Build round.
		gb := fabric.NewGraph()
		gb.AttachHBM(hbm)
		gb.Workers = opt.Tuning.Parallelism
		tables := make([]*HashTable, P)
		bsinks := make([]*fabric.Sink, P)
		counts := make([]int, P)
		for k := 0; k < P; k++ {
			ext := buildSets[k].Extents(r)
			in := InExtents(ext, 2)
			counts[k] = in.N
			hp := DefaultHashTableParams(in.N + 1)
			hp.OverflowBase = RegionHashOverflow + uint32(k)*(1<<22)
			hp.Tuning = opt.Tuning
			ht, snk, err := BuildHashTableInto(gb, fmt.Sprintf("bld.%d", k), hp, in)
			if err != nil {
				return nil, total, err
			}
			tables[k], bsinks[k] = ht, snk
		}
		res, err := runGraph(gb, budgetFor(sumInts(counts))*4)
		if err != nil {
			return nil, total, fmt.Errorf("build round %d: %w", r, err)
		}
		accumulate(&total, res)
		for k := 0; k < P; k++ {
			if bsinks[k].Count() != counts[k] {
				return nil, total, fmt.Errorf("build round %d pipeline %d: %d of %d", r, k, bsinks[k].Count(), counts[k])
			}
		}

		// Probe round.
		gp := fabric.NewGraph()
		gp.AttachHBM(hbm)
		gp.Workers = opt.Tuning.Parallelism
		psinks := make([]*fabric.Sink, P)
		pn := 0
		for k := 0; k < P; k++ {
			ext := probeSets[k].Extents(r)
			in := InExtents(ext, 2)
			pn += in.N
			psinks[k] = ProbeHashTableInto(gp, fmt.Sprintf("prb.%d", k), tables[k], in,
				ProbeOptions{FirstMatchOnly: opt.FirstMatchOnly})
		}
		res, err = runGraph(gp, budgetFor(pn)*4)
		if err != nil {
			return nil, total, fmt.Errorf("probe round %d: %w", r, err)
		}
		accumulate(&total, res)
		for k := 0; k < P; k++ {
			matches = append(matches, psinks[k].Records()...)
		}
	}
	return matches, total, nil
}

func sumInts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
