package core

import (
	"sort"
	"testing"

	"aurochs/internal/record"
)

// joinTriples canonicalizes [key, tag, val] match records for comparison.
func joinTriples(recs []record.Rec) [][3]uint32 {
	out := make([][3]uint32, len(recs))
	for i, r := range recs {
		out[i] = [3]uint32{r.Get(0), r.Get(1), r.Get(2)}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < 3; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// TestSymmetricJoinWindows drives two windows of the one-graph symmetric
// join and checks the streaming contract: every probe against keys the
// other side inserted in a STRICTLY EARLIER window matches exactly what
// the functional LookupAll reference reports. (Same-window matches are
// best-effort by design; the second window's key sets are chosen disjoint
// from its own inserts so its expected matches are fully deterministic.)
func TestSymmetricJoinWindows(t *testing.T) {
	j, err := NewSymmetricJoin(DefaultHashTableParams(64), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Window 1 seeds both tables: requests keyed 0..7, drivers 4..11.
	r1 := make([]record.Rec, 8)
	d1 := make([]record.Rec, 8)
	for i := range r1 {
		r1[i] = record.Make(uint32(i), uint32(100+i))
		d1[i] = record.Make(uint32(4+i), uint32(900+i))
	}
	if _, _, _, err := j.Window(r1, d1, ProbeOptions{}); err != nil {
		t.Fatal(err)
	}
	if j.Req.Inserted != 8 || j.Drv.Inserted != 8 {
		t.Fatalf("after window 1: inserted %d/%d, want 8/8", j.Req.Inserted, j.Drv.Inserted)
	}

	// Window 2 probes window 1's keys while inserting disjoint key ranges
	// (requests 20.., drivers 30..), so the expected matches are exactly
	// the prior window's table contents.
	r2 := make([]record.Rec, 6)
	d2 := make([]record.Rec, 6)
	for i := range r2 {
		r2[i] = record.Make(uint32(4+i), uint32(200+i)) // hits d1 keys 4..9
		d2[i] = record.Make(uint32(30+i), uint32(950+i))
	}
	// Reference expectation from the functional lookup path, computed
	// before the window mutates the tables.
	var wantReq [][3]uint32
	for _, r := range r2 {
		for _, v := range j.Drv.LookupAll(r.Get(0)) {
			wantReq = append(wantReq, [3]uint32{r.Get(0), r.Get(1), v})
		}
	}
	if len(wantReq) != 6 {
		t.Fatalf("reference expects %d request matches, want 6", len(wantReq))
	}
	sort.Slice(wantReq, func(i, k int) bool {
		for c := 0; c < 3; c++ {
			if wantReq[i][c] != wantReq[k][c] {
				return wantReq[i][c] < wantReq[k][c]
			}
		}
		return false
	})

	reqM, drvM, _, err := j.Window(r2, d2, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := joinTriples(reqM)
	if len(got) != len(wantReq) {
		t.Fatalf("request matches = %v, want %v", got, wantReq)
	}
	for i := range got {
		if got[i] != wantReq[i] {
			t.Fatalf("request match %d = %v, want %v", i, got[i], wantReq[i])
		}
	}
	// Driver keys 30..35 never appeared on the request side: no matches.
	if len(drvM) != 0 {
		t.Fatalf("driver matches = %v, want none", joinTriples(drvM))
	}
	if j.Req.Inserted != 14 || j.Drv.Inserted != 14 {
		t.Fatalf("after window 2: inserted %d/%d, want 14/14", j.Req.Inserted, j.Drv.Inserted)
	}
}

// TestSymmetricJoinOverflowDisjoint pins the overflow placement: the two
// tables' DRAM overflow regions must not alias.
func TestSymmetricJoinOverflowDisjoint(t *testing.T) {
	p := DefaultHashTableParams(64)
	p.SpadNodes = 4 // force overflow
	j, err := NewSymmetricJoin(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqEnd := j.Req.Params.OverflowBase + (p.MaxNodes-p.SpadNodes)*p.nodeWords()
	if j.Drv.Params.OverflowBase < reqEnd {
		t.Fatalf("driver overflow base %#x overlaps request overflow [%#x, %#x)",
			j.Drv.Params.OverflowBase, j.Req.Params.OverflowBase, reqEnd)
	}
}
