package core

import (
	"math/rand"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/index/rtree"
)

func randRects(n int, maxC, size uint32, seed int64) []rtree.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]rtree.Entry, n)
	for i := range out {
		x, y := rng.Uint32()%maxC, rng.Uint32()%maxC
		out[i] = rtree.Entry{
			Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + rng.Uint32()%size, MaxY: y + rng.Uint32()%size},
			ID:   uint32(i),
		}
	}
	return out
}

func refSpatialJoin(a, b []rtree.Entry) map[[2]uint32]bool {
	out := map[[2]uint32]bool{}
	for _, ea := range a {
		for _, eb := range b {
			if ea.Rect.Intersects(eb.Rect) {
				out[[2]uint32{ea.ID, eb.ID}] = true
			}
		}
	}
	return out
}

func TestRTreeSpatialJoinMatchesReference(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	const maxC = 1 << 14
	ea := randRects(800, maxC, 300, 1)
	eb := randRects(600, maxC, 300, 2)
	ta := rtree.Build(h, RegionTables, ea, maxC)
	tb := rtree.Build(h, RegionTables+(1<<24), eb, maxC)

	pairs, res, err := RTreeSpatialJoin(ta, tb, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.DRAMBytes <= 0 {
		t.Fatalf("timing missing: %+v", res)
	}
	want := refSpatialJoin(ea, eb)
	got := map[[2]uint32]bool{}
	for _, p := range pairs {
		k := [2]uint32{p.A, p.B}
		if got[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		got[k] = true
	}
	if len(got) != len(want) {
		t.Fatalf("pairs=%d want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing pair %v", k)
		}
	}
}

func TestRTreeSpatialJoinDisjointSpaces(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	ea := randRects(300, 1000, 10, 3)
	eb := randRects(300, 1000, 10, 4)
	for i := range eb {
		eb[i].Rect.MinX += 100000
		eb[i].Rect.MaxX += 100000
	}
	ta := rtree.Build(h, RegionTables, ea, 200000)
	tb := rtree.Build(h, RegionTables+(1<<24), eb, 200000)
	pairs, _, err := RTreeSpatialJoin(ta, tb, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("disjoint spaces produced %d pairs", len(pairs))
	}
}

func TestRTreeSpatialJoinUnevenHeights(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	const maxC = 1 << 14
	ea := randRects(2000, maxC, 100, 5) // tall tree
	eb := randRects(8, maxC, 5000, 6)   // single-leaf tree
	ta := rtree.Build(h, RegionTables, ea, maxC)
	tb := rtree.Build(h, RegionTables+(1<<24), eb, maxC)
	if ta.Height <= tb.Height {
		t.Fatalf("test setup: heights %d vs %d", ta.Height, tb.Height)
	}
	pairs, _, err := RTreeSpatialJoin(ta, tb, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if want := refSpatialJoin(ea, eb); len(pairs) != len(want) {
		t.Fatalf("pairs=%d want %d", len(pairs), len(want))
	}
}

func TestRTreeSpatialJoinRequiresSharedHBM(t *testing.T) {
	ta := rtree.Build(dram.New(dram.DefaultConfig()), 0, randRects(10, 100, 5, 7), 100)
	tb := rtree.Build(dram.New(dram.DefaultConfig()), 0, randRects(10, 100, 5, 8), 100)
	if _, _, err := RTreeSpatialJoin(ta, tb, Tuning{}); err == nil {
		t.Error("separate HBMs accepted")
	}
}
