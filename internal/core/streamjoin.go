package core

import (
	"fmt"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

// Symmetric stream hash join (paper §III-A / §IV-A, "low-latency stream
// joins"): two live streams each maintain a hash table, and every window
// each stream inserts its new records into its own table while probing the
// other stream's table. All four pipelines — two builds, two probes — run
// in ONE graph against shared memories: the lock-free CAS-prepend chains
// keep every bucket consistent for concurrent readers and writers, so a
// probe threading a chain mid-window sees a complete prefix of the other
// stream's inserts. The loop topology of every pipeline is registered in
// internal/blueprint and proven deadlock-free by the token-flow prover
// (internal/analysis/flow) in CI.

// SymmetricJoin holds the two live tables of a symmetric stream join. Req
// indexes the request stream's records, Drv the driver stream's; a window
// inserts each side into its own table and probes the opposite one.
type SymmetricJoin struct {
	Req *HashTable
	Drv *HashTable
}

// NewSymmetricJoin allocates both tables with identical geometry on one
// shared HBM (nil allocates a default instance). The overflow regions are
// disjoint: Drv's overflow buffer is placed directly above Req's.
func NewSymmetricJoin(p HashTableParams, hbm *dram.HBM) (*SymmetricJoin, error) {
	if hbm == nil {
		hbm = defaultHBM()
	}
	req, err := NewHashTable(p, hbm)
	if err != nil {
		return nil, err
	}
	pd := p
	if pd.MaxNodes > pd.SpadNodes {
		pd.OverflowBase = p.OverflowBase + (p.MaxNodes-p.SpadNodes)*p.nodeWords()
	}
	drv, err := NewHashTable(pd, hbm)
	if err != nil {
		return nil, err
	}
	return &SymmetricJoin{Req: req, Drv: drv}, nil
}

// WindowSinks are the four pipeline endpoints of one join window.
type WindowSinks struct {
	// ReqIns / DrvIns count completed insertions on each side.
	ReqIns *fabric.Sink
	DrvIns *fabric.Sink
	// ReqMatch collects [key, reqTag, drvVal] matches of the request
	// stream probing the driver table; DrvMatch the converse.
	ReqMatch *fabric.Sink
	DrvMatch *fabric.Sink
}

// WindowInto wires one window's four pipelines into g under the name
// prefix: both sides' inserts and both cross-probes, sharing the graph and
// its HBM. Records are [key, payload] on both sides. The caller runs the
// graph; sink counts validate completion (see Window).
func (j *SymmetricJoin) WindowInto(g *fabric.Graph, pf string, reqs, drvs StreamIn, opt ProbeOptions) (WindowSinks, error) {
	if uint32(reqs.N)+j.Req.Inserted > j.Req.Params.MaxNodes {
		return WindowSinks{}, fmt.Errorf("core: window would exceed request-table MaxNodes=%d", j.Req.Params.MaxNodes)
	}
	if uint32(drvs.N)+j.Drv.Inserted > j.Drv.Params.MaxNodes {
		return WindowSinks{}, fmt.Errorf("core: window would exceed driver-table MaxNodes=%d", j.Drv.Params.MaxNodes)
	}
	return WindowSinks{
		ReqIns:   buildPipeline(g, pf+".reqIns", j.Req, reqs),
		DrvIns:   buildPipeline(g, pf+".drvIns", j.Drv, drvs),
		ReqMatch: ProbeHashTableInto(g, pf+".reqPrb", j.Drv, reqs, opt),
		DrvMatch: ProbeHashTableInto(g, pf+".drvPrb", j.Req, drvs, opt),
	}, nil
}

// Window runs one micro-batch of the symmetric join: insert reqs and drvs
// into their tables and cross-probe, all concurrently in one graph run.
// Matches against records inserted in the same window are best-effort —
// a probe may walk a chain before the other side's insert lands — which
// is the streaming semantics: the next window's probes see them all.
func (j *SymmetricJoin) Window(reqs, drvs []record.Rec, opt ProbeOptions) (reqMatches, drvMatches []record.Rec, res Result, err error) {
	g := fabric.NewGraph()
	g.AttachHBM(j.Req.HBM)
	g.Workers = j.Req.Params.Tuning.Parallelism
	sinks, err := j.WindowInto(g, "win", InRecs(reqs), InRecs(drvs), opt)
	if err != nil {
		return nil, nil, Result{}, err
	}
	res, err = runGraph(g, budgetFor(len(reqs)+len(drvs)))
	if err != nil {
		return nil, nil, res, fmt.Errorf("stream join window: %w", err)
	}
	if got, want := sinks.ReqIns.Count(), len(reqs); got != want {
		return nil, nil, res, fmt.Errorf("stream join window: %d of %d request inserts completed", got, want)
	}
	if got, want := sinks.DrvIns.Count(), len(drvs); got != want {
		return nil, nil, res, fmt.Errorf("stream join window: %d of %d driver inserts completed", got, want)
	}
	return sinks.ReqMatch.Records(), sinks.DrvMatch.Records(), res, nil
}
