package core

import (
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
)

// TestKernelGraphsPassCheck: every kernel constructor must wire a graph the
// static verifier accepts — the positive half of the Check contract (the
// negative half lives in fabric/check_test.go). Run performs the same check
// before simulating, so these assert the verifier is clean on real
// pipelines, not just that the pipelines happen to drain.
func TestKernelGraphsPassCheck(t *testing.T) {
	input := kv(256, 100, 7)

	t.Run("build pipeline", func(t *testing.T) {
		g := fabric.NewGraph()
		g.AttachHBM(dram.New(dram.DefaultConfig()))
		if _, _, err := BuildHashTableInto(g, "bld", DefaultHashTableParams(len(input)), InRecs(input)); err != nil {
			t.Fatal(err)
		}
		if err := g.Check(); err != nil {
			t.Fatalf("build pipeline fails static check:\n%v", err)
		}
	})

	t.Run("probe pipeline", func(t *testing.T) {
		ht, _, err := BuildHashTable(DefaultHashTableParams(len(input)), input, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := fabric.NewGraph()
		g.AttachHBM(ht.HBM)
		ProbeHashTableInto(g, "prb", ht, InRecs(kv(64, 100, 8)), ProbeOptions{})
		if err := g.Check(); err != nil {
			t.Fatalf("probe pipeline fails static check:\n%v", err)
		}
	})

	t.Run("partition pipeline", func(t *testing.T) {
		g := fabric.NewGraph()
		g.AttachHBM(dram.New(dram.DefaultConfig()))
		if _, _, err := PartitionInto(g, "prt", DefaultPartitionParams(len(input), 4, 2), InRecs(input)); err != nil {
			t.Fatal(err)
		}
		if err := g.Check(); err != nil {
			t.Fatalf("partition pipeline fails static check:\n%v", err)
		}
	})

	t.Run("two pipelines sharing a graph", func(t *testing.T) {
		g := fabric.NewGraph()
		g.AttachHBM(dram.New(dram.DefaultConfig()))
		if _, _, err := BuildHashTableInto(g, "p0", DefaultHashTableParams(len(input)), InRecs(input)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := PartitionInto(g, "p1", DefaultPartitionParams(len(input), 4, 2), InRecs(input)); err != nil {
			t.Fatal(err)
		}
		if err := g.Check(); err != nil {
			t.Fatalf("shared graph fails static check:\n%v", err)
		}
	})
}
