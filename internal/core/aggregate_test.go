package core

import (
	"math/rand"
	"testing"
)

func TestHashAggregateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	keys := make([]uint32, 4000)
	want := map[uint32]int64{}
	for i := range keys {
		keys[i] = rng.Uint32() % 300
		want[keys[i]]++
	}
	agg, res, err := HashAggregate(DefaultHashTableParams(512), keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	got := agg.Groups()
	if len(got) != len(want) {
		t.Fatalf("groups=%d want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("group %d = %d, want %d", k, got[k], n)
		}
	}
	// One *linked* node per distinct key: insert-if-absent must not
	// duplicate (losing CAS threads waste unlinked slots by design).
	if agg.NodesLinked() != len(want) {
		t.Errorf("linked %d nodes for %d groups", agg.NodesLinked(), len(want))
	}
}

// TestHashAggregateSingleHotKey: every thread hits one group — maximal FAA
// and CAS contention, still exactly one node and an exact count.
func TestHashAggregateSingleHotKey(t *testing.T) {
	keys := make([]uint32, 2000)
	for i := range keys {
		keys[i] = 77
	}
	agg, _, err := HashAggregate(DefaultHashTableParams(64), keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := agg.Groups()
	if got[77] != 2000 || len(got) != 1 {
		t.Fatalf("groups=%v", got)
	}
	if agg.NodesLinked() != 1 {
		t.Errorf("hot key linked %d nodes", agg.NodesLinked())
	}
}

func TestHashAggregateAllDistinct(t *testing.T) {
	keys := make([]uint32, 1500)
	for i := range keys {
		keys[i] = uint32(i) * 2654435761
	}
	agg, _, err := HashAggregate(DefaultHashTableParams(len(keys)), keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := agg.Groups()
	if len(got) != len(keys) {
		t.Fatalf("groups=%d want %d", len(got), len(keys))
	}
	for _, n := range got {
		if n != 1 {
			t.Fatal("distinct key counted more than once")
		}
	}
}

// TestHashAggregateSkewIndependence: aggregation cycles under a Zipf-like
// skew should stay within a small factor of the uniform case — hashing
// takes skewed distributions to uniform bucket load (paper §IV-A), and the
// hot-group counter is a single-bank FAA the forwarding path sustains at
// line rate.
func TestHashAggregateSkewIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const n = 4000
	uniform := make([]uint32, n)
	skewed := make([]uint32, n)
	for i := range uniform {
		uniform[i] = rng.Uint32() % 512
		// 80% of traffic on 8 keys.
		if rng.Float64() < 0.8 {
			skewed[i] = rng.Uint32() % 8
		} else {
			skewed[i] = rng.Uint32() % 512
		}
	}
	_, ru, err := HashAggregate(DefaultHashTableParams(1024), uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rs, err := HashAggregate(DefaultHashTableParams(1024), skewed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles > 4*ru.Cycles {
		t.Errorf("skewed aggregation %d cycles vs uniform %d — skew resilience broken", rs.Cycles, ru.Cycles)
	}
}
