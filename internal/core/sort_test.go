package core

import (
	"math/rand"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

func keyF0(r record.Rec) uint64 { return uint64(r.Get(0)) }

func TestSortSmallAndTiled(t *testing.T) {
	for _, n := range []int{0, 1, 100, sortTileRecs, sortTileRecs*3 + 17} {
		hbm := dram.New(dram.DefaultConfig())
		rng := rand.New(rand.NewSource(int64(n)))
		recs := make([]record.Rec, n)
		for i := range recs {
			recs[i] = record.Make(rng.Uint32(), uint32(i))
		}
		run := MaterializeRun(hbm, RegionTables, recs, 2)
		sorted, res, err := Sort(hbm, run, keyF0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 0 && res.Cycles <= 0 {
			t.Fatalf("n=%d: no cycles", n)
		}
		got := ReadRun(hbm, sorted)
		if len(got) != n {
			t.Fatalf("n=%d: read %d", n, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Get(0) > got[i].Get(0) {
				t.Fatalf("n=%d: out of order at %d", n, i)
			}
		}
		// Payload preservation: same multiset.
		seen := map[uint32]bool{}
		for _, r := range got {
			if seen[r.Get(1)] {
				t.Fatalf("n=%d: payload %d duplicated", n, r.Get(1))
			}
			seen[r.Get(1)] = true
		}
	}
}

func TestSortCostGrowsSuperlinearly(t *testing.T) {
	// Total DRAM traffic must grow with pass count: sorting 8 tiles adds a
	// merge pass over the full data relative to 1 tile.
	cost := func(n int) float64 {
		hbm := dram.New(dram.DefaultConfig())
		recs := make([]record.Rec, n)
		rng := rand.New(rand.NewSource(9))
		for i := range recs {
			recs[i] = record.Make(rng.Uint32(), 0)
		}
		run := MaterializeRun(hbm, RegionTables, recs, 2)
		_, res, err := Sort(hbm, run, keyF0)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.DRAMBytes) / float64(n)
	}
	perRecSmall := cost(sortTileRecs)
	perRecBig := cost(sortTileRecs * 16)
	if perRecBig <= perRecSmall*1.2 {
		t.Errorf("bytes/record: %0.1f (1 tile) vs %0.1f (16 tiles); extra merge pass missing", perRecSmall, perRecBig)
	}
}

func TestSortMergeJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := make([]record.Rec, 3000)
	b := make([]record.Rec, 2500)
	for i := range a {
		a[i] = record.Make(rng.Uint32()%800, uint32(i))
	}
	for i := range b {
		b[i] = record.Make(rng.Uint32()%1000, uint32(10000+i))
	}
	got, res, err := SortMergeJoin(nil, a, b, 2, keyF0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	want := 0
	cnt := map[uint32]int{}
	for _, r := range a {
		cnt[r.Get(0)]++
	}
	for _, r := range b {
		want += cnt[r.Get(0)]
	}
	if len(got) != want {
		t.Fatalf("matches=%d want %d", len(got), want)
	}
	for _, m := range got {
		if m.Get(0) != m.Get(2) {
			t.Fatalf("joined records disagree on key: %v", m)
		}
	}
}

func TestSortMergeJoinDuplicateCrossProduct(t *testing.T) {
	a := []record.Rec{record.Make(5, 1), record.Make(5, 2), record.Make(5, 3)}
	b := []record.Rec{record.Make(5, 10), record.Make(5, 20)}
	got, _, err := SortMergeJoin(nil, a, b, 2, keyF0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("cross product: %d, want 6", len(got))
	}
}

func TestSortMergeJoinDisjointKeys(t *testing.T) {
	a := []record.Rec{record.Make(1, 0), record.Make(3, 0)}
	b := []record.Rec{record.Make(2, 0), record.Make(4, 0)}
	got, _, err := SortMergeJoin(nil, a, b, 2, keyF0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("disjoint join produced %d", len(got))
	}
}

func TestHashJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	build := make([]record.Rec, 4000)
	probe := make([]record.Rec, 3000)
	for i := range build {
		build[i] = record.Make(rng.Uint32()%1500, uint32(i))
	}
	for i := range probe {
		probe[i] = record.Make(rng.Uint32()%2000, uint32(10000+i))
	}
	for _, P := range []int{1, 2, 4} {
		got, res, err := HashJoin(nil, build, probe, HashJoinOptions{Parts: 8, Pipelines: P})
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if res.Cycles <= 0 || res.DRAMBytes <= 0 {
			t.Fatalf("P=%d: timing missing", P)
		}
		want := refJoin(build, probe)
		wantCount := 0
		for _, vs := range want {
			wantCount += len(vs)
		}
		if len(got) != wantCount {
			t.Fatalf("P=%d: matches=%d want %d", P, len(got), wantCount)
		}
	}
}

func TestHashJoinParallelismSpeedsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	build := make([]record.Rec, 8000)
	probe := make([]record.Rec, 8000)
	for i := range build {
		build[i] = record.Make(rng.Uint32(), uint32(i))
	}
	for i := range probe {
		probe[i] = record.Make(rng.Uint32(), uint32(i))
	}
	run := func(P int) int64 {
		_, res, err := HashJoin(nil, build, probe, HashJoinOptions{Parts: 8, Pipelines: P})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c1, c4 := run(1), run(4)
	if c4 >= c1 {
		t.Errorf("P=4 (%d cyc) must beat P=1 (%d cyc)", c4, c1)
	}
}

// bufProbe watches a tileSorter's swap buffers from inside the cycle loop,
// recording the identity of every backing array drainBase ever points at.
type bufProbe struct {
	ts       *tileSorter
	backings map[*record.Rec]bool
	swaps    int
	last     *record.Rec
}

func (p *bufProbe) Name() string { return "bufprobe" }
func (p *bufProbe) Done() bool   { return true }

// SharedState pins the probe to the sorter's shard under the parallel
// kernel: declaring the sorter's input link unions the probe with the
// link's consumer, so sampling its unexported buffers cannot race.
func (p *bufProbe) SharedState() []any { return []any{p.ts.in} }
func (p *bufProbe) Tick(int64) {
	if len(p.ts.drainBase) == 0 {
		return
	}
	base := &p.ts.drainBase[0]
	if base != p.last {
		p.backings[base] = true
		p.swaps++
		p.last = base
	}
}

// TestTileSorterBuffersPingPong: the regression test for the fill-buffer
// reallocation the hotalloc prover surfaced — the sorter used to discard its
// drained tile (`fill = nil`) and grow a fresh one from scratch every swap.
// With the ping-pong fix, an entire multi-tile run touches exactly two
// backing arrays no matter how many tiles stream through.
func TestTileSorterBuffersPingPong(t *testing.T) {
	g := fabric.NewGraph()
	in, out := g.Link("in"), g.Link("out")
	const tile = 64
	recs := make([]record.Rec, tile*6+11) // several full tiles plus a ragged tail
	for i := range recs {
		recs[i] = record.Make(uint32((i*2654435761)%4096), uint32(i))
	}
	ts := newTileSorter("ts", keyF0, tile, in, out)
	probe := &bufProbe{ts: ts, backings: map[*record.Rec]bool{}}
	g.Add(fabric.NewSource("src", recs, in))
	g.Add(ts)
	snk := fabric.NewSink("snk", out)
	g.Add(snk, probe)
	if _, err := g.Sys.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != len(recs) {
		t.Fatalf("sorted %d of %d", snk.Count(), len(recs))
	}
	if probe.swaps < 6 {
		t.Fatalf("only %d tile swaps observed; want >= 6", probe.swaps)
	}
	if got := len(probe.backings); got != 2 {
		t.Errorf("drain tiles lived in %d distinct backing arrays across %d swaps; ping-pong requires exactly 2",
			got, probe.swaps)
	}
}
