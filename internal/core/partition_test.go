package core

import (
	"math/rand"
	"testing"

	"aurochs/internal/record"
)

func TestPartitionScattersEverything(t *testing.T) {
	const n = 2000
	rng := rand.New(rand.NewSource(11))
	input := make([]record.Rec, n)
	for i := range input {
		input[i] = record.Make(rng.Uint32(), uint32(i))
	}
	p := DefaultPartitionParams(n, 8, 2)
	ps, res, err := Partition(p, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.DRAMBytes <= 0 {
		t.Fatalf("timing missing: %+v", res)
	}

	// Every record must land in exactly the partition its hash selects,
	// and nothing may be lost or duplicated.
	seen := make(map[uint32]uint32) // payload -> key
	total := 0
	for part := uint32(0); part < p.Parts; part++ {
		for _, r := range ps.ReadPartition(part) {
			if ps.PartitionOf(r.Get(0)) != part {
				t.Fatalf("key %d in partition %d, want %d", r.Get(0), part, ps.PartitionOf(r.Get(0)))
			}
			if _, dup := seen[r.Get(1)]; dup {
				t.Fatalf("payload %d stored twice", r.Get(1))
			}
			seen[r.Get(1)] = r.Get(0)
			total++
		}
	}
	if total != n {
		t.Fatalf("recovered %d of %d records", total, n)
	}
	for _, r := range input {
		if k, ok := seen[r.Get(1)]; !ok || k != r.Get(0) {
			t.Fatalf("record %v lost or corrupted", r)
		}
	}
}

func TestPartitionSkewStillBalancedByHash(t *testing.T) {
	// Heavily skewed keys: partitioning on the hash must still spread a
	// *distinct-key* skew; identical keys all land together (correctness).
	const n = 1024
	input := make([]record.Rec, n)
	for i := range input {
		input[i] = record.Make(uint32(i%4), uint32(i)) // only 4 distinct keys
	}
	ps, _, err := Partition(DefaultPartitionParams(n, 4, 2), input, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each distinct key's records must be in one partition.
	for k := uint32(0); k < 4; k++ {
		part := ps.PartitionOf(k)
		found := 0
		for _, r := range ps.ReadPartition(part) {
			if r.Get(0) == k {
				found++
			}
		}
		if found != n/4 {
			t.Fatalf("key %d: %d records in its partition, want %d", k, found, n/4)
		}
	}
}

func TestPartitionBlockChaining(t *testing.T) {
	// More records per partition than one block holds: the allocator path
	// must chain multiple blocks.
	const n = 600
	input := make([]record.Rec, n)
	for i := range input {
		input[i] = record.Make(uint32(i), uint32(i))
	}
	p := DefaultPartitionParams(n, 2, 2)
	p.BlockRecs = 16 // force many allocations
	p.MaxBlocks = 64
	ps, _, err := Partition(p, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Blocks < uint32(n)/16 {
		t.Fatalf("allocated %d blocks for %d records of block size 16", ps.Blocks, n)
	}
	got := 0
	for part := uint32(0); part < p.Parts; part++ {
		exts := ps.Extents(part)
		if len(exts) < 2 {
			t.Errorf("partition %d has %d extents; chaining expected", part, len(exts))
		}
		got += ps.Count(part)
	}
	if got != n {
		t.Fatalf("counted %d of %d", got, n)
	}
}

func TestPartitionRejectsBadParams(t *testing.T) {
	input := []record.Rec{record.Make(1, 2)}
	p := DefaultPartitionParams(1, 3, 2)
	if _, _, err := Partition(p, input, nil); err == nil {
		t.Error("non-power-of-two parts accepted")
	}
	p = DefaultPartitionParams(1, 4, 2)
	p.BlockRecs = 1 << 14
	if _, _, err := Partition(p, input, nil); err == nil {
		t.Error("oversized BlockRecs accepted")
	}
}

func TestPartitionWideRecords(t *testing.T) {
	// 4-word records (64-bit key + 64-bit payload).
	const n = 300
	input := make([]record.Rec, n)
	for i := range input {
		input[i] = record.Make(uint32(i*7), uint32(i>>16), uint32(i), uint32(i+1))
	}
	p := DefaultPartitionParams(n, 4, 4)
	ps, _, err := Partition(p, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for part := uint32(0); part < 4; part++ {
		for _, r := range ps.ReadPartition(part) {
			if r.Len() != 4 || r.Get(3) != r.Get(2)+1 {
				t.Fatalf("payload corrupted: %v", r)
			}
			total++
		}
	}
	if total != n {
		t.Fatalf("recovered %d", total)
	}
}
