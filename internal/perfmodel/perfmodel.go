// Package perfmodel is the analytical kernel model the evaluation uses to
// extend measurements to table sizes impractical for cycle simulation —
// the paper does exactly this for fig. 11 ("we project performance at
// larger datasets using an analytical model validated against smaller
// cycle-level simulations").
//
// Each kernel is a two-term model: a pipeline term (cycles per record per
// pipeline, plus a fixed fill/drain cost) and a memory term (DRAM bytes per
// record against peak bandwidth). Kernel time is the max of the two — the
// roofline that produces fig. 12's saturation. Constants are *calibrated*
// by running the real cycle-level kernels at two sizes and fitting; tests
// assert the fitted model predicts a third, larger size within tolerance.
package perfmodel

import (
	"math"

	"aurochs/internal/dram"
)

// Term is a fitted linear cost: Fixed + PerRec·n cycles at P = 1.
type Term struct {
	Fixed  float64
	PerRec float64
}

// Fit solves the two-point linear system.
func Fit(n1 int64, c1 float64, n2 int64, c2 float64) Term {
	per := (c2 - c1) / float64(n2-n1)
	return Term{Fixed: c1 - per*float64(n1), PerRec: per}
}

// At evaluates the term.
func (t Term) At(n int64) float64 {
	return t.Fixed + t.PerRec*float64(n)
}

// Model is the calibrated Aurochs kernel model.
type Model struct {
	// Peak is DRAM bandwidth in bytes per fabric cycle.
	Peak float64

	// Pipeline terms (cycles at P=1) and memory traffic (bytes/record).
	HashBuild      Term
	HashBuildBytes float64
	HashProbe      Term
	HashProbeBytes float64
	Partition      Term
	PartitionBytes float64
	SortPass       Term // one streaming pass over n records
	SortPassBytes  float64
	TreeFetch      float64 // cycles per node fetch at P=1 (latency-hidden, throughput cost)
	TreeNodeBytes  float64
	// JoinComposed is the end-to-end hash join fitted at the *composed*
	// level (both partition passes + per-partition build/probe rounds,
	// including inter-phase drain overheads the kernel terms miss). It is
	// the small-table regime: per-pipeline streams are short, so fill and
	// drain dominate and the marginal cost per record is high.
	JoinComposed      Term
	JoinComposedBytes float64
	// JoinComposedLarge is the same composed join fitted in the
	// steady-state regime (≥512K-row sides): streams are deep enough to
	// keep every pipeline stage occupied, so the marginal cost per record
	// falls toward the vector-lane bound while the fitted intercept
	// absorbs the extra partition rounds large tables need. The composed
	// cost curve is concave, so the model takes the LOWER envelope of the
	// two chords (see HashJoinCycles) — each chord is exact at the sizes
	// it was fitted from and an upper bound elsewhere.
	JoinComposedLarge Term
}

// Default returns a model with constants hand-calibrated against the cycle
// simulator at the defaults in this repository (see TestModelMatchesSim,
// which re-fits from live runs and checks agreement).
func Default() Model {
	return Model{
		Peak: dram.DefaultConfig().PeakBytesPerCycle(),
		// Fitted from cycle-level runs at n = 8k and 32k (see the
		// calibration tests). Build/probe constants are the on-chip
		// (join-path) regime: partitions are sized to the scratchpad, so
		// their bytes are the dense partition read-back.
		HashBuild:      Term{Fixed: 100, PerRec: 0.15},
		HashBuildBytes: 8,
		HashProbe:      Term{Fixed: 600, PerRec: 0.23},
		HashProbeBytes: 8,
		Partition:      Term{Fixed: 700, PerRec: 0.21},
		PartitionBytes: 9,
		SortPass:       Term{Fixed: 500, PerRec: 0.07},
		SortPassBytes:  16,
		TreeFetch:      1.1,
		TreeNodeBytes:  160,
		// Re-fitted from the BENCH_5 rows sweep (P=16, both sides equal):
		// 32K/128K-row sides for the small-table chord, 512K/1M-row sides
		// for the steady-state chord. Normalized to P=1 (the sweep slope
		// times 16). The measured DRAM traffic is 17.0 bytes per total
		// record, flat from 32K to 1M rows. TestComposedModelLargeScale
		// re-runs the 32K- and 1M-row sims and holds the envelope to them;
		// a kernel change that shifts composed cycles must re-fit these
		// constants, not widen that tolerance.
		JoinComposed:      Term{Fixed: 2194, PerRec: 1.62},
		JoinComposedBytes: 17,
		JoinComposedLarge: Term{Fixed: 48840, PerRec: 0.226},
	}
}

// kernel computes the rooflined cycles of one kernel over n records with P
// pipelines.
func (m Model) kernel(t Term, bytesPerRec float64, n int64, p int) float64 {
	pipe := t.Fixed + t.PerRec*float64(n)/float64(p)
	mem := bytesPerRec * float64(n) / m.Peak
	return math.Max(pipe, mem)
}

// sortPasses returns the streaming passes a Gorgon merge sort of n records
// needs (1 tile-sort pass + log_R merge passes) — the super-linear factor.
func sortPasses(n int64) float64 {
	const tile = 1 << 14
	const radix = 8
	passes := 1.0
	runs := float64(n) / tile
	for runs > 1 {
		passes++
		runs /= radix
	}
	return passes
}

// HashJoinCycles models the full partitioned hash join of fig. 11a using
// the composed-level fits (the per-kernel terms underestimate inter-phase
// overheads; see KernelSumCycles for the decomposition). The pipeline cost
// is the lower envelope of the two regime chords — the composed cost curve
// is concave in n because short streams pay fill/drain per round while
// deep streams amortize it — rooflined against DRAM bandwidth.
func (m Model) HashJoinCycles(nBuild, nProbe int64, p int) float64 {
	n := nBuild + nProbe
	small := m.JoinComposed.Fixed + m.JoinComposed.PerRec*float64(n)/float64(p)
	large := m.JoinComposedLarge.Fixed + m.JoinComposedLarge.PerRec*float64(n)/float64(p)
	pipe := math.Min(small, large)
	mem := m.JoinComposedBytes * float64(n) / m.Peak
	return math.Max(pipe, mem)
}

// KernelSumCycles is the per-kernel decomposition of the join (fig. 12's
// per-kernel curves use the individual terms).
func (m Model) KernelSumCycles(nBuild, nProbe int64, p int) float64 {
	c := m.kernel(m.Partition, m.PartitionBytes, nBuild, p)
	c += m.kernel(m.Partition, m.PartitionBytes, nProbe, p)
	c += m.kernel(m.HashBuild, m.HashBuildBytes, nBuild, p)
	c += m.kernel(m.HashProbe, m.HashProbeBytes, nProbe, p)
	return c
}

// PartitionCycles models one radix-partition pass.
func (m Model) PartitionCycles(n int64, p int) float64 {
	return m.kernel(m.Partition, m.PartitionBytes, n, p)
}

// SortCycles models the Gorgon merge sort.
func (m Model) SortCycles(n int64, p int) float64 {
	return sortPasses(n) * m.kernel(m.SortPass, m.SortPassBytes, n, p)
}

// SortMergeJoinCycles models Gorgon's equi-join: two sorts and a merge pass.
func (m Model) SortMergeJoinCycles(na, nb int64, p int) float64 {
	return m.SortCycles(na, p) + m.SortCycles(nb, p) +
		m.kernel(m.SortPass, m.SortPassBytes/2, na+nb, p)
}

// TreeSearchCycles models a batch of index walks: visits nodes per query
// (≈ height + hits/fanout for a B-tree; higher for R-trees with overlap).
func (m Model) TreeSearchCycles(queries int64, nodesPerQuery float64, p int) float64 {
	fetches := float64(queries) * nodesPerQuery
	pipe := m.TreeFetch * fetches / float64(p)
	mem := m.TreeNodeBytes * fetches / m.Peak
	return math.Max(pipe, mem)
}

// SpatialJoinAurochsCycles models the indexed spatial join of fig. 11b:
// probes of an R-tree of nIndex entries, O(log n) nodes per probe.
func (m Model) SpatialJoinAurochsCycles(nIndex, nProbe int64, hitsPerProbe float64, p int) float64 {
	const fanout = 8
	height := math.Max(1, math.Log(float64(nIndex))/math.Log(fanout))
	nodes := height + hitsPerProbe/fanout
	return m.TreeSearchCycles(nProbe, nodes, p)
}

// SpatialJoinGorgonCycles models Gorgon's index-free spatial join: presort
// the big table, then all-to-all compares at 16 lanes/cycle.
func (m Model) SpatialJoinGorgonCycles(nIndex, nProbe int64, p int) float64 {
	return m.SortCycles(nIndex, p) + float64(nIndex)*float64(nProbe)/(16*float64(p))
}

// LSMCost adapts the model to the lsm.CostModel interface: bulk loads are
// Gorgon sorts, merges a single streaming pass — priced at P pipelines.
type LSMCost struct {
	M Model
	P int
}

// SortCycles implements lsm.CostModel.
func (c LSMCost) SortCycles(n int) float64 {
	return c.M.SortCycles(int64(n), c.P)
}

// MergeCycles implements lsm.CostModel.
func (c LSMCost) MergeCycles(n, m int) float64 {
	return c.M.kernel(c.M.SortPass, c.M.SortPassBytes, int64(n+m), c.P)
}

// JoinThroughputGBs converts a join's cycles into GB/s of table data
// consumed (both sides, 8-byte tuples), the fig. 11a y-axis.
func JoinThroughputGBs(nBuild, nProbe int64, cycles float64) float64 {
	bytes := float64(nBuild+nProbe) * 8
	seconds := cycles / 1e9
	return bytes / seconds / 1e9
}
