package perfmodel

import (
	"math"
	"math/rand"
	"testing"

	"aurochs/internal/core"
	"aurochs/internal/record"
)

func simJoinCycles(t *testing.T, n, p int) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	mk := func() []record.Rec {
		out := make([]record.Rec, n)
		for i := range out {
			out[i] = record.Make(rng.Uint32(), uint32(i))
		}
		return out
	}
	_, res, err := core.HashJoin(nil, mk(), mk(), core.HashJoinOptions{Pipelines: p})
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

// TestModelMatchesSim is the paper's validation step: fit the hash-join
// model from two small cycle-accurate runs, predict a third (2x larger),
// and require agreement. This is what justifies projecting fig. 11 to
// table sizes the simulator cannot reach.
func TestModelMatchesSim(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	n1, n2, n3 := 4000, 8000, 16000
	c1 := simJoinCycles(t, n1, 1)
	c2 := simJoinCycles(t, n2, 1)
	c3 := simJoinCycles(t, n3, 1)

	fit := Fit(int64(n1), float64(c1), int64(n2), float64(c2))
	pred := fit.At(int64(n3))
	err := math.Abs(pred-float64(c3)) / float64(c3)
	if err > 0.30 {
		t.Errorf("model predicts %0.0f cycles at n=%d; sim says %d (%.0f%% error)",
			pred, n3, c3, err*100)
	}
	t.Logf("fit: fixed=%.0f perRec=%.3f; predicted %0.0f vs sim %d (%.1f%% error)",
		fit.Fixed, fit.PerRec, pred, c3, err*100)
}

// TestDefaultModelInSimBallpark: the shipped constants must reproduce a
// live simulation within a factor band (they are calibrated, not fitted
// per run).
func TestDefaultModelInSimBallpark(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle simulation in -short mode")
	}
	const n = 16000
	sim := float64(simJoinCycles(t, n, 1))
	model := Default().HashJoinCycles(n, n, 1)
	ratio := model / sim
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("default model %.0f vs sim %.0f cycles (ratio %.2f)", model, sim, ratio)
	}
	t.Logf("model %.0f vs sim %.0f (ratio %.2f)", model, sim, ratio)
}

// TestComposedModelLargeScale validates the two-chord envelope against live
// composed-join simulations at both ends of the fitted range — the 32K-row
// fill/drain regime and the 1M-row steady-state regime (the scale fig. 11a
// projects from). The shipped constants were fitted from the BENCH_5 sweep
// at these sizes; tolerance covers data-dependent jitter (key distribution,
// overflow placement), not drift. If a kernel change moves composed cycles
// beyond it, re-fit Default()'s JoinComposed terms from a fresh sweep
// rather than widening the band.
func TestComposedModelLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row cycle simulation in -short mode")
	}
	m := Default()
	for _, rows := range []int{32768, 1048576} {
		sim := float64(simJoinCycles(t, rows, 16))
		pred := m.HashJoinCycles(int64(rows), int64(rows), 16)
		err := math.Abs(pred-sim) / sim
		t.Logf("rows=%d sim=%.0f model=%.0f (%.1f%% error)", rows, sim, pred, err*100)
		if err > 0.15 {
			t.Errorf("rows=%d: model %.0f vs sim %.0f cycles (%.0f%% error, tolerance 15%%)",
				rows, pred, sim, err*100)
		}
	}
}

func TestCrossoverHashBeatsSortAtScale(t *testing.T) {
	m := Default()
	// Small tables: sort-merge may win (dense access); huge tables: the
	// hash join must win by a widening margin — fig. 11a's crossover. The
	// paper's configuration is heavily parallelized (P=16 here).
	small := m.SortMergeJoinCycles(1e4, 1e4, 16) / m.HashJoinCycles(1e4, 1e4, 16)
	big := m.SortMergeJoinCycles(1e8, 1e8, 16) / m.HashJoinCycles(1e8, 1e8, 16)
	if big <= small {
		t.Errorf("sort/hash cycle ratio must grow with size: small=%.2f big=%.2f", small, big)
	}
	if big < 1.5 {
		t.Errorf("at 1e8 rows the hash join should clearly win (ratio %.2f)", big)
	}
}

func TestSpatialAsymptotics(t *testing.T) {
	m := Default()
	// Aurochs' indexed spatial join grows ~log in the indexed table;
	// Gorgon's grows super-linearly. Their ratio must diverge.
	ratioAt := func(n int64) float64 {
		g := m.SpatialJoinGorgonCycles(n, 1e4, 8)
		a := m.SpatialJoinAurochsCycles(n, 1e4, 20, 8)
		return g / a
	}
	if ratioAt(1e7) <= ratioAt(1e5) {
		t.Errorf("Gorgon/Aurochs spatial ratio must widen: 1e5→%.1f 1e7→%.1f", ratioAt(1e5), ratioAt(1e7))
	}
}

func TestParallelismSaturates(t *testing.T) {
	m := Default()
	// fig. 12: throughput scales with P until memory-bound.
	c1 := m.HashJoinCycles(1e8, 1e8, 1)
	c8 := m.HashJoinCycles(1e8, 1e8, 8)
	c64 := m.HashJoinCycles(1e8, 1e8, 64)
	if c8 >= c1 {
		t.Error("P=8 not faster than P=1")
	}
	gain18 := c1 / c8
	gain864 := c8 / c64
	if gain864 >= gain18 {
		t.Errorf("scaling should flatten: 1→8 %.1fx, 8→64 %.1fx", gain18, gain864)
	}
}

func TestAurochsJoinThroughputAnchor(t *testing.T) {
	// The paper: "Aurochs can join tables at over 50 GB/s" when
	// parallelized, vs GPU 4.5 GB/s.
	m := Default()
	cycles := m.HashJoinCycles(1e8, 1e8, 32)
	gbs := JoinThroughputGBs(1e8, 1e8, cycles)
	// The paper reports "over 50 GB/s"; our fabric model is somewhat more
	// bandwidth-efficient than the authors' testbed, so accept a band
	// above the paper's floor (EXPERIMENTS.md discusses the delta).
	if gbs < 50 || gbs > 600 {
		t.Errorf("parallel join throughput %.0f GB/s; paper anchor >50", gbs)
	}
}

func TestFitExact(t *testing.T) {
	tm := Fit(10, 110, 20, 210)
	if tm.PerRec != 10 || tm.Fixed != 10 {
		t.Errorf("fit: %+v", tm)
	}
	if tm.At(30) != 310 {
		t.Errorf("At(30)=%f", tm.At(30))
	}
}
