// Package bench drives every experiment of the paper's evaluation (§V) and
// prints the rows/series each table and figure reports. cmd/aurochs-bench
// is the CLI over it; bench_test.go at the repo root exposes each as a Go
// benchmark.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"aurochs/internal/area"
	"aurochs/internal/baseline/cpu"
	"aurochs/internal/baseline/gorgon"
	"aurochs/internal/baseline/gpu"
	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/energy"
	"aurochs/internal/index/rtree"
	"aurochs/internal/perfmodel"
	"aurochs/internal/queries"
	"aurochs/internal/record"
)

func dramNew() *dram.HBM { return dram.New(dram.DefaultConfig()) }

// Fig10 prints the area overhead breakdown (paper fig. 10).
func Fig10() error {
	fmt.Println("== Fig. 10: area overhead of the Aurochs scratchpad additions ==")
	m := area.Default()
	fmt.Print(m.Breakdown())
	fmt.Printf("(paper: +15%% scratchpad, +5%% chip; %s)\n", area.TimingNote)
	return nil
}

// mkKV builds n random [key, val] records.
func mkKV(n int, seed int64) []record.Rec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]record.Rec, n)
	for i := range out {
		out[i] = record.Make(rng.Uint32(), uint32(i))
	}
	return out
}

func mkCPU(n int, seed int64) []cpu.KV {
	rng := rand.New(rand.NewSource(seed))
	out := make([]cpu.KV, n)
	for i := range out {
		out[i] = cpu.KV{Key: rng.Uint32(), Val: uint32(i)}
	}
	return out
}

// Fig11a prints equi-join throughput vs table size for Aurochs (hash),
// Gorgon (sort-merge), CPU, and GPU. Sizes up to simLimit run on the cycle
// simulator / host; larger sizes are projected with the validated
// analytical model, exactly as the paper does.
func Fig11a() error {
	fmt.Println("== Fig. 11a: join throughput (GB/s) vs table size (rows per side, 8 B tuples) ==")
	const p = 16 // the paper's "when parallelized" configuration
	model := perfmodel.Default()
	dev := gpu.V100()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rows\taurochs-hash\tgorgon-sortmerge\tcpu\tgpu\tsource")
	const simLimit = 1 << 15
	for _, n := range []int64{1e4, 3e4, 1e5, 1e6, 1e7, 1e8} {
		var aurochsC, gorgonC float64
		src := "model"
		if n <= simLimit {
			src = "cycle sim"
			_, res, err := core.HashJoin(nil, mkKV(int(n), 1), mkKV(int(n), 2), core.HashJoinOptions{Pipelines: p})
			if err != nil {
				return err
			}
			aurochsC = float64(res.Cycles)
			_, gres, err := gorgon.Join(nil, mkKV(int(n), 3), mkKV(int(n), 4))
			if err != nil {
				return err
			}
			gorgonC = float64(gres.Cycles)
		} else {
			aurochsC = model.HashJoinCycles(n, n, p)
			gorgonC = model.SortMergeJoinCycles(n, n, p)
		}

		// CPU: measure directly up to 4M rows, extrapolate linearly after.
		var cpuSec float64
		if n <= 1<<22 {
			_, dt := cpu.HashJoin(mkCPU(int(n), 5), mkCPU(int(n), 6))
			cpuSec = dt.Seconds()
		} else {
			_, dt := cpu.HashJoin(mkCPU(1<<22, 5), mkCPU(1<<22, 6))
			cpuSec = dt.Seconds() * float64(n) / float64(int64(1)<<22)
		}

		// GPU: the SIMT model with Poisson chain trips (load factor 1).
		gpuSec := gpuJoinSeconds(dev, n)

		fmt.Fprintf(w, "%.0e\t%.1f\t%.1f\t%.2f\t%.1f\t%s\n", float64(n),
			perfmodel.JoinThroughputGBs(n, n, aurochsC),
			perfmodel.JoinThroughputGBs(n, n, gorgonC),
			float64(2*n*8)/cpuSec/1e9,
			float64(2*n*8)/gpuSec/1e9,
			src)
	}
	w.Flush()
	fmt.Println("(paper shape: sort-merge wins small tables, hash wins large;")
	fmt.Println(" CPU ~0.3 GB/s, GPU ~4.5 GB/s, Aurochs >50 GB/s when parallelized)")
	return nil
}

// gpuJoinSeconds models the GPU hash join at n rows per side by sampling
// the chain-length distribution (throughput is size-invariant past cache
// scale, so a 1M-row sample represents any larger n).
func gpuJoinSeconds(dev gpu.Device, n int64) float64 {
	sample := n
	if sample > 1<<20 {
		sample = 1 << 20
	}
	rng := rand.New(rand.NewSource(9))
	buckets := make([]int, sample)
	for i := int64(0); i < sample; i++ {
		buckets[rng.Intn(int(sample))]++
	}
	trips := make([]int, sample)
	for i := range trips {
		l := buckets[rng.Intn(int(sample))]
		if l == 0 {
			l = 1
		}
		trips[i] = l
	}
	b := dev.DivergentLoop(trips, 8)
	pr := dev.DivergentLoop(trips, 8)
	perRow := (b.Time.Seconds() + pr.Time.Seconds()) / float64(sample)
	return perRow * float64(n)
}

// Fig11b prints spatial join runtime vs scaled table size: Aurochs probes
// an R-tree (O(log n) per probe); Gorgon presorts and compares all-to-all.
// It also runs the fig. 9b synchronized two-tree join on the cycle
// simulator at a small size as the mechanism check.
func Fig11b() error {
	fmt.Println("== Fig. 11b: spatial join, fixed 1e4 probes vs scaled table (ms) ==")
	const p = 8
	const probes = 1e4
	model := perfmodel.Default()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "indexed rows\taurochs\tgorgon\tratio")
	for _, n := range []int64{1e4, 1e5, 1e6, 1e7, 1e8} {
		a := model.SpatialJoinAurochsCycles(n, probes, 20, p) / 1e6
		g := model.SpatialJoinGorgonCycles(n, probes, p) / 1e6
		fmt.Fprintf(w, "%.0e\t%.2f ms\t%.1f ms\t%.0fx\n", float64(n), a, g, g/a)
	}
	w.Flush()

	// Mechanism check: the synchronized two-tree join (fig. 9b) on the
	// cycle simulator.
	h := dramNew()
	rng := rand.New(rand.NewSource(7))
	mkTree := func(n int, base uint32) *rtree.Tree {
		ents := make([]rtree.Entry, n)
		for i := range ents {
			x, y := rng.Uint32()%(1<<14), rng.Uint32()%(1<<14)
			ents[i] = rtree.Entry{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + 200, MaxY: y + 200}, ID: uint32(i)}
		}
		return rtree.Build(h, base, ents, 1<<14)
	}
	ta := mkTree(2000, core.RegionTables)
	tb := mkTree(2000, core.RegionTables+(1<<24))
	pairs, res, err := core.RTreeSpatialJoin(ta, tb, core.Tuning{})
	if err != nil {
		return err
	}
	fmt.Printf("fig. 9b two-tree join (2k x 2k rects, cycle sim): %d pairs in %d cycles (%.1f us)\n",
		len(pairs), res.Cycles, float64(res.Cycles)/1e3)
	fmt.Println("(paper shape: index-free spatial joins are impractical at real sizes)")
	return nil
}

// Fig12 prints kernel throughput vs stream-level parallelism: scaling until
// memory-bound (simulated at small P, modeled across the sweep).
func Fig12() error {
	fmt.Println("== Fig. 12: kernel throughput (Grecords/s) vs parallel pipelines ==")
	const n = 1 << 15
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "P\thash-join (sim)\thash-join (model @1e8)\tsort (model @1e8)\tpartition (model @1e8)")
	model := perfmodel.Default()
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		var simGrs float64
		if p <= 8 {
			_, res, err := core.HashJoin(nil, mkKV(n, 1), mkKV(n, 2), core.HashJoinOptions{Pipelines: p})
			if err != nil {
				return err
			}
			simGrs = float64(2*n) / float64(res.Cycles)
		}
		bigJoin := float64(2e8) / model.HashJoinCycles(1e8, 1e8, p)
		bigSort := 1e8 / model.SortCycles(1e8, p)
		bigPart := 1e8 / model.PartitionCycles(1e8, p)
		if p <= 8 {
			fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\n", p, simGrs, bigJoin, bigSort, bigPart)
		} else {
			fmt.Fprintf(w, "%d\t-\t%.3f\t%.3f\t%.3f\n", p, bigJoin, bigSort, bigPart)
		}
	}
	w.Flush()
	fmt.Println("(records per cycle; kernels flatten as the memory roofline binds —")
	fmt.Println(" observed throughput stays below raw DRAM bandwidth, as the paper notes)")
	return nil
}

// WarpEfficiency reproduces the §III-A profiling claim: GPU warp execution
// efficiency on hash-join build and probe.
func WarpEfficiency() error {
	fmt.Println("== §III-A: GPU warp execution efficiency on the hash join ==")
	d := queries.Generate(queries.SmallScale(), 11)
	e := queries.NewGPU()
	build := make([]queries.KV, len(d.Rides))
	for i, r := range d.Rides {
		build[i] = queries.KV{Key: r.RiderID, Val: uint32(i)}
	}
	probe := make([]queries.KV, len(d.RideReqs))
	for i, r := range d.RideReqs {
		probe[i] = queries.KV{Key: r.RiderID, Val: uint32(i)}
	}
	if _, _, err := e.EquiJoin(build, probe); err != nil {
		return err
	}
	fmt.Printf("build phase: %.0f%% (paper: 62%%)\n", 100*e.LastBuildEff)
	fmt.Printf("probe phase: %.0f%% (paper: 46%%)\n", 100*e.LastProbeEff)
	fmt.Println("(most lanes idle during divergent chain walks; the GPU is not memory-bound)")
	return nil
}

// Ablation quantifies the paper's microarchitectural choices: thread
// reordering vs Capstan's in-order dequeue, and RMW forwarding.
func Ablation() error {
	fmt.Println("== Ablation: scratchpad reordering & RMW forwarding (probe kernel cycles) ==")
	const n = 1 << 14
	build := mkKV(n, 21)
	probe := mkKV(n, 22)
	run := func(t core.Tuning) (int64, error) {
		p := core.DefaultHashTableParams(n)
		p.Tuning = t
		ht, _, err := core.BuildHashTable(p, build, nil)
		if err != nil {
			return 0, err
		}
		_, res, err := core.ProbeHashTable(ht, probe, core.ProbeOptions{})
		return res.Cycles, err
	}
	base, err := run(core.Tuning{})
	if err != nil {
		return err
	}
	inorder, err := run(core.Tuning{InOrderSpad: true})
	if err != nil {
		return err
	}
	nofwd, err := run(core.Tuning{NoForwarding: true})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tcycles\tvs aurochs")
	fmt.Fprintf(w, "aurochs (reorder + forwarding)\t%d\t1.00x\n", base)
	fmt.Fprintf(w, "capstan in-order dequeue (2x queue depth)\t%d\t%.2fx\n", inorder, float64(inorder)/float64(base))
	fmt.Fprintf(w, "no rmw forwarding\t%d\t%.2fx\n", nofwd, float64(nofwd)/float64(base))
	w.Flush()

	// Aggregation skew resilience: hashing spreads skewed keys, and the
	// forwarding path sustains hot-counter FAA at line rate (§IV-A).
	uniform := make([]uint32, n)
	skewed := make([]uint32, n)
	rng := rand.New(rand.NewSource(23))
	for i := range uniform {
		uniform[i] = rng.Uint32() % 2048
		if rng.Float64() < 0.8 {
			skewed[i] = rng.Uint32() % 8
		} else {
			skewed[i] = rng.Uint32() % 2048
		}
	}
	_, ru, err := core.HashAggregate(core.DefaultHashTableParams(4096), uniform, nil)
	if err != nil {
		return err
	}
	_, rs, err := core.HashAggregate(core.DefaultHashTableParams(4096), skewed, nil)
	if err != nil {
		return err
	}
	fmt.Printf("hash aggregation, uniform keys: %d cycles; 80%%-hot skew: %d cycles (%.2fx)\n",
		ru.Cycles, rs.Cycles, float64(rs.Cycles)/float64(ru.Cycles))
	fmt.Println("(reordering lets granted requests free their slots immediately — §III-B)")
	return nil
}

// Table2 prints the benchmark query descriptions and dataset cardinalities.
func Table2() error {
	fmt.Println("== Table 2: benchmark queries and dataset ==")
	s := queries.BenchScale()
	fmt.Printf("tables: rides=%d riders=%d drivers=%d locations=%d | streams: rideReq=%d driverStatus=%d\n",
		s.Rides, s.Riders, s.Drivers, s.Locations, s.RideReqs, s.DriverStatus)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, q := range queries.All() {
		fmt.Fprintf(w, "%s\t%s\n", q.Name, q.Desc)
	}
	w.Flush()
	return nil
}

// Fig14 runs the nine queries on all three engines, cross-checks results,
// and prints runtime and energy per query plus geometric-mean speedups.
func Fig14(scale string, pipelines int) error {
	fmt.Println("== Fig. 14: benchmark query runtime and energy ==")
	sc := queries.SmallScale()
	if scale == "bench" {
		sc = queries.BenchScale()
	}
	d := queries.Generate(sc, 1)
	fmt.Printf("scale: rides=%d reqs=%d status=%d (use -scale bench for the larger set)\n",
		len(d.Rides), len(d.RideReqs), len(d.DriverStatus))

	engines := []queries.Engine{queries.NewCPU(), queries.NewGPU(), queries.NewAurochs(pipelines)}
	results := map[string][]queries.QueryResult{}
	for _, e := range engines {
		rs, err := queries.RunAll(e, d)
		if err != nil {
			return err
		}
		results[e.Name()] = rs
	}
	for i := range results["cpu"] {
		fp := results["cpu"][i].Fingerprint
		for _, e := range engines {
			if results[e.Name()][i].Fingerprint != fp {
				return fmt.Errorf("%s: %s result differs from cpu", results["cpu"][i].Query, e.Name())
			}
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tcpu (ms)\tgpu (ms)\taurochs (ms)\tvs cpu\tvs gpu\tE cpu (J)\tE gpu (J)\tE aurochs (J)")
	geoCPU, geoGPU := 1.0, 1.0
	nq := 0
	for i := range results["cpu"] {
		c := results["cpu"][i]
		g := results["gpu"][i]
		a := results["aurochs"][i]
		su, sg := c.Cost.Seconds/a.Cost.Seconds, g.Cost.Seconds/a.Cost.Seconds
		geoCPU *= su
		geoGPU *= sg
		nq++
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.0fx\t%.1fx\t%.2g\t%.2g\t%.2g\n",
			c.Query, c.Cost.Seconds*1e3, g.Cost.Seconds*1e3, a.Cost.Seconds*1e3, su, sg,
			energy.CPU.Joules(c.Cost.Duration()),
			energy.GPU.Joules(g.Cost.Duration()),
			energy.Aurochs.Joules(a.Cost.Duration()))
	}
	w.Flush()
	n := float64(nq)
	fmt.Printf("geomean speedup: %.0fx vs CPU, %.1fx vs GPU (paper: 160x, 8x at full scale)\n",
		math.Pow(geoCPU, 1/n), math.Pow(geoGPU, 1/n))
	return nil
}
