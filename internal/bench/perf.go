package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aurochs/internal/core"
	"aurochs/internal/record"
)

// PerfRun is one timed kernel execution in one kernel configuration.
type PerfRun struct {
	// Workers is the requested worker count (negative = auto mode).
	Workers int `json:"workers"`
	// Resolved is what the run actually used after auto-mode selection
	// (1 = the serial kernel).
	Resolved     int     `json:"resolved"`
	Cycles       int64   `json:"cycles"`
	DRAMBytes    int64   `json:"dram_bytes"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// PerfExperiment compares the serial and parallel simulator kernels on one
// workload. Identical is the bit-identity check: same cycle count, same
// DRAM traffic, same output records.
type PerfExperiment struct {
	Name     string  `json:"name"`
	Rows     int     `json:"rows"`
	Serial   PerfRun `json:"serial"`
	Parallel PerfRun `json:"parallel"`
	// Fallback records that auto mode declined the parallel kernel (too few
	// shards, unbalanced load, or a single-CPU host); the parallel row then
	// re-measures the serial kernel and Speedup is pinned at 1.0 rather
	// than reporting run-to-run noise as a regression.
	Fallback  bool    `json:"fallback"`
	Identical bool    `json:"identical"`
	Speedup   float64 `json:"speedup"`
}

// PerfReport is the top-level benchmark document (BENCH_*.json).
type PerfReport struct {
	Benchmark   string           `json:"benchmark"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Quick       bool             `json:"quick"`
	Experiments []PerfExperiment `json:"experiments"`
}

// timedKernel runs fn once and reports wall clock plus simulated
// throughput. fn returns the kernel Result and an output fingerprint.
func timedKernel(workers int, fn func(workers int) (core.Result, []record.Rec, error)) (PerfRun, []record.Rec, error) {
	start := time.Now()
	res, out, err := fn(workers)
	wall := time.Since(start).Seconds()
	if err != nil {
		return PerfRun{}, nil, err
	}
	r := PerfRun{Workers: workers, Resolved: res.Workers, Cycles: res.Cycles,
		DRAMBytes: res.DRAMBytes, WallSeconds: wall}
	if wall > 0 {
		r.CyclesPerSec = float64(res.Cycles) / wall
	}
	return r, out, nil
}

func sameOutput(a, b []record.Rec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// perfExperiment runs fn serially and with the requested parallel worker
// count (negative = auto) and packages the comparison. The serial run is
// the correctness reference; the parallel run must reproduce it
// bit-for-bit.
func perfExperiment(name string, rows, workers int, fn func(workers int) (core.Result, []record.Rec, error)) (PerfExperiment, error) {
	serial, sOut, err := timedKernel(0, fn)
	if err != nil {
		return PerfExperiment{}, fmt.Errorf("%s serial: %w", name, err)
	}
	par, pOut, err := timedKernel(workers, fn)
	if err != nil {
		return PerfExperiment{}, fmt.Errorf("%s parallel: %w", name, err)
	}
	e := PerfExperiment{
		Name:      name,
		Rows:      rows,
		Serial:    serial,
		Parallel:  par,
		Fallback:  par.Resolved <= 1,
		Identical: serial.Cycles == par.Cycles && serial.DRAMBytes == par.DRAMBytes && sameOutput(sOut, pOut),
	}
	switch {
	case e.Fallback:
		e.Speedup = 1.0
	case serial.WallSeconds > 0 && par.WallSeconds > 0:
		e.Speedup = serial.WallSeconds / par.WallSeconds
	}
	return e, nil
}

// Perf runs the serial-vs-parallel kernel benchmark and writes the report to
// jsonPath (and a human summary to stdout). quick shrinks the datasets for
// CI. workers selects the parallel runs' request: positive pins a count,
// <= 0 requests auto mode up to GOMAXPROCS (the kernel falls back to serial
// when the topology cannot profit; the report flags that instead of
// presenting two serial timings as a speedup).
func Perf(jsonPath string, quick bool, workers int) error {
	req := workers
	if req <= 0 {
		req = -runtime.GOMAXPROCS(0)
		if req > -2 {
			req = -2 // still resolve through auto mode on one CPU
		}
	}
	rep := PerfReport{
		Benchmark:  "aurochs-sim serial vs parallel kernel",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	joinN := 1 << 15
	aggN := 1 << 16
	partN := 1 << 16
	if quick {
		joinN = 1 << 13
		aggN = 1 << 14
		partN = 1 << 14
	}

	// Fig. 11a join shape at the paper's "when parallelized" pipeline count:
	// this is the experiment the acceptance speedup is measured on.
	join, err := perfExperiment("fig11a-hashjoin-p16", joinN, req, func(w int) (core.Result, []record.Rec, error) {
		matches, res, err := core.HashJoin(nil, mkKV(joinN, 1), mkKV(joinN, 2), core.HashJoinOptions{
			Pipelines: 16,
			Tuning:    core.Tuning{Parallelism: w},
		})
		if err != nil {
			return core.Result{}, nil, err
		}
		return res, matches, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, join)

	agg, err := perfExperiment("hash-aggregate", aggN, req, func(w int) (core.Result, []record.Rec, error) {
		keys := make([]uint32, aggN)
		for i := range keys {
			keys[i] = uint32(i % 997)
		}
		p := core.DefaultHashTableParams(1024)
		p.Tuning = core.Tuning{Parallelism: w}
		res, rres, err := core.HashAggregate(p, keys, nil)
		if err != nil {
			return core.Result{}, nil, err
		}
		// Fingerprint the group counts deterministically.
		groups := res.Groups()
		out := make([]record.Rec, 0, len(groups))
		for k := uint32(0); k < 997; k++ {
			if c, ok := groups[k]; ok {
				out = append(out, record.Make(k, uint32(c)))
			}
		}
		return rres, out, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, agg)

	part, err := perfExperiment("partition-8way", partN, req, func(w int) (core.Result, []record.Rec, error) {
		p := core.DefaultPartitionParams(partN, 8, 2)
		p.Tuning = core.Tuning{Parallelism: w}
		ps, res, err := core.Partition(p, mkKV(partN, 9), nil)
		if err != nil {
			return core.Result{}, nil, err
		}
		var out []record.Rec
		for pt := uint32(0); pt < 8; pt++ {
			out = append(out, ps.ReadPartition(pt)...)
		}
		return res, out, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, part)

	fmt.Printf("== serial vs parallel kernel (request=%d, GOMAXPROCS=%d) ==\n", req, rep.GOMAXPROCS)
	for _, e := range rep.Experiments {
		status := "IDENTICAL"
		if !e.Identical {
			status = "MISMATCH"
		}
		if e.Fallback {
			status += " (serial fallback)"
		}
		fmt.Printf("%-22s rows=%-7d serial %.2fs (%.0f cyc/s)  parallel[%d] %.2fs (%.0f cyc/s)  speedup %.2fx  %s\n",
			e.Name, e.Rows, e.Serial.WallSeconds, e.Serial.CyclesPerSec,
			e.Parallel.Resolved, e.Parallel.WallSeconds, e.Parallel.CyclesPerSec, e.Speedup, status)
		if !e.Identical {
			return fmt.Errorf("%s: parallel kernel diverged from serial (cycles %d vs %d, bytes %d vs %d)",
				e.Name, e.Parallel.Cycles, e.Serial.Cycles, e.Parallel.DRAMBytes, e.Serial.DRAMBytes)
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// Compare gates a fresh perf report against a committed baseline: any
// experiment present in both whose serial cycles/sec fell below
// (1-tolerance) of the baseline fails, as does a lost bit-identity or a
// parallel speedup sinking below 1.0 without a declared fallback. Extra or
// missing experiments are reported but do not fail (benchmarks evolve).
func Compare(newPath, basePath string, tolerance float64) error {
	load := func(p string) (PerfReport, error) {
		var r PerfReport
		data, err := os.ReadFile(p)
		if err != nil {
			return r, err
		}
		return r, json.Unmarshal(data, &r)
	}
	cur, err := load(newPath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	base, err := load(basePath)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	baseBy := make(map[string]PerfExperiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseBy[e.Name] = e
	}
	var failures []string
	for _, e := range cur.Experiments {
		if !e.Identical {
			failures = append(failures, fmt.Sprintf("%s: parallel kernel not bit-identical", e.Name))
		}
		if !e.Fallback && e.Speedup < 1.0 {
			failures = append(failures, fmt.Sprintf("%s: parallel speedup %.2fx < 1.0 without fallback", e.Name, e.Speedup))
		}
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Printf("compare: %s has no baseline entry (new experiment)\n", e.Name)
			continue
		}
		if b.Serial.CyclesPerSec > 0 {
			ratio := e.Serial.CyclesPerSec / b.Serial.CyclesPerSec
			fmt.Printf("compare: %-22s serial %8.0f -> %8.0f cyc/s (%.2fx)\n",
				e.Name, b.Serial.CyclesPerSec, e.Serial.CyclesPerSec, ratio)
			if ratio < 1.0-tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s: serial cycles/sec regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
					e.Name, (1-ratio)*100, b.Serial.CyclesPerSec, e.Serial.CyclesPerSec, tolerance*100))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		return fmt.Errorf("compare: %d regression(s) vs %s", len(failures), basePath)
	}
	fmt.Printf("compare: no regressions vs %s\n", basePath)
	return nil
}
