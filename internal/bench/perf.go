package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"aurochs/internal/core"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// PerfRun is one timed kernel execution in one kernel configuration.
type PerfRun struct {
	// WorkersRequested is the worker count handed to the simulator
	// (negative = auto mode with that cap); WorkersResolved is what the run
	// actually used after auto-mode selection (1 = the serial kernel). Both
	// are recorded so a report can never again present the raw auto-mode
	// sentinel as if it were the execution width.
	WorkersRequested int `json:"workers_requested"`
	WorkersResolved  int `json:"workers_resolved"`
	// GOMAXPROCS is the host parallelism this run executed under.
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Cycles       int64   `json:"cycles"`
	DRAMBytes    int64   `json:"dram_bytes"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Kernel is the simulator's full kernel decision for this run:
	// fallback reason (if any) plus the stage/lane shard shape it was
	// decided on — the explanation behind every fallback verdict.
	Kernel sim.KernelDecision `json:"kernel"`
}

// PerfExperiment compares the serial and parallel simulator kernels on one
// workload. Identical is the bit-identity check: same cycle count, same
// DRAM traffic, same output records.
type PerfExperiment struct {
	Name     string  `json:"name"`
	Rows     int     `json:"rows"`
	Serial   PerfRun `json:"serial"`
	Parallel PerfRun `json:"parallel"`
	// Fallback records that auto mode declined the parallel kernel; the
	// parallel row then re-measures the serial kernel and Speedup is pinned
	// at 1.0 rather than reporting run-to-run noise as a regression.
	// FallbackReason names why (sim.Fallback* codes) — a fallback is never
	// silent.
	Fallback       bool   `json:"fallback"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// SingleCoreHost is the loud marker that this host could never have
	// shown a speedup: the parallel verdict is about the machine, not the
	// kernel. Gates must not treat such a row as a parallelism regression.
	SingleCoreHost bool    `json:"single_core_host,omitempty"`
	Identical      bool    `json:"identical"`
	Speedup        float64 `json:"speedup"`
}

// PerfReport is the top-level benchmark document (BENCH_*.json).
type PerfReport struct {
	Benchmark string `json:"benchmark"`
	// GOMAXPROCS is the Go runtime parallelism the benchmark ran with —
	// set to NumCPU by Perf, so the parallel side is never silently pinned
	// to one core by an inherited environment.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the host's visible CPU count.
	NumCPU int `json:"num_cpu"`
	// SingleCoreHost marks a host that cannot demonstrate any speedup; all
	// parallel verdicts in this report are machine-limited.
	SingleCoreHost bool             `json:"single_core_host"`
	Quick          bool             `json:"quick"`
	Experiments    []PerfExperiment `json:"experiments"`
}

// timedKernel runs fn once and reports wall clock plus simulated
// throughput. fn returns the kernel Result and an output fingerprint.
func timedKernel(workers int, fn func(workers int) (core.Result, []record.Rec, error)) (PerfRun, []record.Rec, error) {
	start := time.Now()
	res, out, err := fn(workers)
	wall := time.Since(start).Seconds()
	if err != nil {
		return PerfRun{}, nil, err
	}
	r := PerfRun{WorkersRequested: workers, WorkersResolved: res.Workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Cycles: res.Cycles,
		DRAMBytes: res.DRAMBytes, WallSeconds: wall, Kernel: res.Kernel}
	if wall > 0 {
		r.CyclesPerSec = float64(res.Cycles) / wall
	}
	return r, out, nil
}

func sameOutput(a, b []record.Rec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// perfExperiment runs fn serially and with the requested parallel worker
// count (negative = auto) and packages the comparison. The serial run is
// the correctness reference; the parallel run must reproduce it
// bit-for-bit.
func perfExperiment(name string, rows, workers int, fn func(workers int) (core.Result, []record.Rec, error)) (PerfExperiment, error) {
	serial, sOut, err := timedKernel(1, fn)
	if err != nil {
		return PerfExperiment{}, fmt.Errorf("%s serial: %w", name, err)
	}
	par, pOut, err := timedKernel(workers, fn)
	if err != nil {
		return PerfExperiment{}, fmt.Errorf("%s parallel: %w", name, err)
	}
	e := PerfExperiment{
		Name:           name,
		Rows:           rows,
		Serial:         serial,
		Parallel:       par,
		Fallback:       par.WorkersResolved <= 1,
		FallbackReason: par.Kernel.Fallback,
		SingleCoreHost: runtime.NumCPU() < 2,
		Identical:      serial.Cycles == par.Cycles && serial.DRAMBytes == par.DRAMBytes && sameOutput(sOut, pOut),
	}
	switch {
	case e.Fallback:
		e.Speedup = 1.0
	case serial.WallSeconds > 0 && par.WallSeconds > 0:
		e.Speedup = serial.WallSeconds / par.WallSeconds
	}
	return e, nil
}

// Perf runs the serial-vs-parallel kernel benchmark and writes the report to
// jsonPath (and a human summary to stdout). quick shrinks the datasets for
// CI. workers selects the parallel runs' request: positive pins a count,
// <= 0 requests auto mode up to GOMAXPROCS (the kernel falls back to serial
// when the topology cannot profit; the report carries the reason instead of
// presenting two serial timings as a speedup).
//
// Perf raises GOMAXPROCS to NumCPU before measuring: the whole point of the
// parallel rows is to measure host parallelism, and an inherited
// GOMAXPROCS=1 (the BENCH_3 bug) predetermines every verdict as a silent
// fallback. A genuinely single-core host is flagged loudly instead.
func Perf(jsonPath string, quick bool, workers int) error {
	if ncpu := runtime.NumCPU(); runtime.GOMAXPROCS(0) < ncpu {
		prev := runtime.GOMAXPROCS(ncpu)
		fmt.Printf("bench: raising GOMAXPROCS %d -> %d (NumCPU)\n", prev, ncpu)
	}
	req := workers
	if req <= 0 {
		req = -runtime.GOMAXPROCS(0)
		if req > -2 {
			req = -2 // still resolve through auto mode on one CPU
		}
	}
	rep := PerfReport{
		Benchmark:      "aurochs-sim serial vs parallel kernel",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		SingleCoreHost: runtime.NumCPU() < 2,
		Quick:          quick,
	}
	if rep.SingleCoreHost {
		fmt.Println("bench: SINGLE-CORE HOST — parallel verdicts below are machine-limited, not kernel verdicts")
	}

	joinN := 1 << 15
	aggN := 1 << 16
	partN := 1 << 16
	if quick {
		joinN = 1 << 13
		aggN = 1 << 14
		partN = 1 << 14
	}

	// Fig. 11a join shape at the paper's "when parallelized" pipeline count:
	// this is the experiment the acceptance speedup is measured on.
	join, err := perfExperiment("fig11a-hashjoin-p16", joinN, req, func(w int) (core.Result, []record.Rec, error) {
		matches, res, err := core.HashJoin(nil, mkKV(joinN, 1), mkKV(joinN, 2), core.HashJoinOptions{
			Pipelines: 16,
			Tuning:    core.Tuning{Parallelism: w},
		})
		if err != nil {
			return core.Result{}, nil, err
		}
		return res, matches, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, join)

	agg, err := perfExperiment("hash-aggregate", aggN, req, func(w int) (core.Result, []record.Rec, error) {
		keys := make([]uint32, aggN)
		for i := range keys {
			keys[i] = uint32(i % 997)
		}
		p := core.DefaultHashTableParams(1024)
		p.Tuning = core.Tuning{Parallelism: w}
		res, rres, err := core.HashAggregate(p, keys, nil)
		if err != nil {
			return core.Result{}, nil, err
		}
		// Fingerprint the group counts deterministically.
		groups := res.Groups()
		out := make([]record.Rec, 0, len(groups))
		for k := uint32(0); k < 997; k++ {
			if c, ok := groups[k]; ok {
				out = append(out, record.Make(k, uint32(c)))
			}
		}
		return rres, out, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, agg)

	part, err := perfExperiment("partition-8way", partN, req, func(w int) (core.Result, []record.Rec, error) {
		p := core.DefaultPartitionParams(partN, 8, 2)
		p.Tuning = core.Tuning{Parallelism: w}
		ps, res, err := core.Partition(p, mkKV(partN, 9), nil)
		if err != nil {
			return core.Result{}, nil, err
		}
		var out []record.Rec
		for pt := uint32(0); pt < 8; pt++ {
			out = append(out, ps.ReadPartition(pt)...)
		}
		return res, out, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, part)

	fmt.Printf("== serial vs parallel kernel (request=%d, GOMAXPROCS=%d, NumCPU=%d) ==\n",
		req, rep.GOMAXPROCS, rep.NumCPU)
	for _, e := range rep.Experiments {
		status := "IDENTICAL"
		if !e.Identical {
			status = "MISMATCH"
		}
		if e.Fallback {
			reason := e.FallbackReason
			if reason == "" {
				reason = "unexplained"
			}
			status += fmt.Sprintf(" (serial fallback: %s)", reason)
		}
		if e.SingleCoreHost {
			status += " [SINGLE-CORE HOST]"
		}
		fmt.Printf("%-22s rows=%-7d serial %.2fs (%.0f cyc/s)  parallel[%d] %.2fs (%.0f cyc/s)  speedup %.2fx  shards=%d stages=%d lanes=%d  %s\n",
			e.Name, e.Rows, e.Serial.WallSeconds, e.Serial.CyclesPerSec,
			e.Parallel.WorkersResolved, e.Parallel.WallSeconds, e.Parallel.CyclesPerSec, e.Speedup,
			e.Parallel.Kernel.Shards, e.Parallel.Kernel.Stages, e.Parallel.Kernel.MaxLanes, status)
		if !e.Identical {
			return fmt.Errorf("%s: parallel kernel diverged from serial (cycles %d vs %d, bytes %d vs %d)",
				e.Name, e.Parallel.Cycles, e.Serial.Cycles, e.Parallel.DRAMBytes, e.Serial.DRAMBytes)
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// Compare gates a fresh perf report against a committed baseline: any
// experiment present in both whose serial cycles/sec fell below
// (1-tolerance) of the baseline fails, as does a lost bit-identity or a
// parallel speedup sinking below 1.0 without a declared fallback. Extra or
// missing experiments are reported but do not fail (benchmarks evolve).
func Compare(newPath, basePath string, tolerance float64) error {
	load := func(p string) (PerfReport, error) {
		var r PerfReport
		data, err := os.ReadFile(p)
		if err != nil {
			return r, err
		}
		return r, json.Unmarshal(data, &r)
	}
	cur, err := load(newPath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	base, err := load(basePath)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	baseBy := make(map[string]PerfExperiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseBy[e.Name] = e
	}
	var failures []string
	for _, e := range cur.Experiments {
		if !e.Identical {
			failures = append(failures, fmt.Sprintf("%s: parallel kernel not bit-identical", e.Name))
		}
		if !e.Fallback && e.Speedup < 1.0 {
			failures = append(failures, fmt.Sprintf("%s: parallel speedup %.2fx < 1.0 without fallback", e.Name, e.Speedup))
		}
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Printf("compare: %s has no baseline entry (new experiment)\n", e.Name)
			continue
		}
		if b.Serial.CyclesPerSec > 0 {
			ratio := e.Serial.CyclesPerSec / b.Serial.CyclesPerSec
			fmt.Printf("compare: %-22s serial %8.0f -> %8.0f cyc/s (%.2fx)\n",
				e.Name, b.Serial.CyclesPerSec, e.Serial.CyclesPerSec, ratio)
			if ratio < 1.0-tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s: serial cycles/sec regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
					e.Name, (1-ratio)*100, b.Serial.CyclesPerSec, e.Serial.CyclesPerSec, tolerance*100))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		return fmt.Errorf("compare: %d regression(s) vs %s", len(failures), basePath)
	}
	fmt.Printf("compare: no regressions vs %s\n", basePath)
	return nil
}

// GateParallel enforces that named experiments in a report actually engaged
// the parallel kernel and won. spec is a comma-separated list of
// "experiment:minSpeedup" requirements (e.g. "fig11a-hashjoin-p16:1.2").
// Any listed experiment with fallback: true, a missing entry, or a speedup
// below its floor fails the gate — unless the report was produced on a
// single-core host, in which case the gate reports that loudly and passes
// vacuously (the host, not the kernel, is what cannot show a speedup).
func GateParallel(path, spec string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	if rep.SingleCoreHost {
		fmt.Printf("gate: SKIPPED — %s was produced on a single-core host (num_cpu=%d); no speedup is measurable here\n",
			path, rep.NumCPU)
		return nil
	}
	byName := make(map[string]PerfExperiment, len(rep.Experiments))
	for _, e := range rep.Experiments {
		byName[e.Name] = e
	}
	var failures []string
	for _, req := range strings.Split(spec, ",") {
		req = strings.TrimSpace(req)
		if req == "" {
			continue
		}
		name, floorStr, found := strings.Cut(req, ":")
		floor := 1.0
		if found {
			f, err := strconv.ParseFloat(floorStr, 64)
			if err != nil {
				return fmt.Errorf("gate: bad requirement %q: %w", req, err)
			}
			floor = f
		}
		e, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: experiment missing from %s", name, path))
			continue
		}
		switch {
		case e.Fallback:
			reason := e.FallbackReason
			if reason == "" {
				reason = "unexplained"
			}
			failures = append(failures, fmt.Sprintf("%s: parallel kernel fell back to serial (%s) on a multi-core host", name, reason))
		case !e.Identical:
			failures = append(failures, fmt.Sprintf("%s: parallel kernel not bit-identical", name))
		case e.Speedup < floor:
			failures = append(failures, fmt.Sprintf("%s: speedup %.2fx below required %.2fx (workers=%d, shards=%d, stages=%d)",
				name, e.Speedup, floor, e.Parallel.WorkersResolved, e.Parallel.Kernel.Shards, e.Parallel.Kernel.Stages))
		default:
			fmt.Printf("gate: %-22s ok — speedup %.2fx >= %.2fx on %d workers\n", name, e.Speedup, floor, e.Parallel.WorkersResolved)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		return fmt.Errorf("gate: %d parallel-kernel requirement(s) unmet in %s", len(failures), path)
	}
	return nil
}
