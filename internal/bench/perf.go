package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aurochs/internal/core"
	"aurochs/internal/record"
)

// PerfRun is one timed kernel execution in one kernel configuration.
type PerfRun struct {
	Workers      int     `json:"workers"`
	Cycles       int64   `json:"cycles"`
	DRAMBytes    int64   `json:"dram_bytes"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// PerfExperiment compares the serial and parallel simulator kernels on one
// workload. Identical is the bit-identity check: same cycle count, same
// DRAM traffic, same output records.
type PerfExperiment struct {
	Name      string  `json:"name"`
	Rows      int     `json:"rows"`
	Serial    PerfRun `json:"serial"`
	Parallel  PerfRun `json:"parallel"`
	Identical bool    `json:"identical"`
	Speedup   float64 `json:"speedup"`
}

// PerfReport is the top-level BENCH_2.json document.
type PerfReport struct {
	Benchmark   string           `json:"benchmark"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Quick       bool             `json:"quick"`
	Experiments []PerfExperiment `json:"experiments"`
}

// timedKernel runs fn once and reports wall clock plus simulated
// throughput. fn returns (cycles, dramBytes, output fingerprint).
func timedKernel(workers int, fn func(workers int) (int64, int64, []record.Rec, error)) (PerfRun, []record.Rec, error) {
	start := time.Now()
	cycles, bytes, out, err := fn(workers)
	wall := time.Since(start).Seconds()
	if err != nil {
		return PerfRun{}, nil, err
	}
	r := PerfRun{Workers: workers, Cycles: cycles, DRAMBytes: bytes, WallSeconds: wall}
	if wall > 0 {
		r.CyclesPerSec = float64(cycles) / wall
	}
	return r, out, nil
}

func sameOutput(a, b []record.Rec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// perfExperiment runs fn serially and with `workers` goroutines and packages
// the comparison. The serial run is the correctness reference; the parallel
// run must reproduce it bit-for-bit.
func perfExperiment(name string, rows, workers int, fn func(workers int) (int64, int64, []record.Rec, error)) (PerfExperiment, error) {
	serial, sOut, err := timedKernel(0, fn)
	if err != nil {
		return PerfExperiment{}, fmt.Errorf("%s serial: %w", name, err)
	}
	par, pOut, err := timedKernel(workers, fn)
	if err != nil {
		return PerfExperiment{}, fmt.Errorf("%s parallel: %w", name, err)
	}
	e := PerfExperiment{
		Name:      name,
		Rows:      rows,
		Serial:    serial,
		Parallel:  par,
		Identical: serial.Cycles == par.Cycles && serial.DRAMBytes == par.DRAMBytes && sameOutput(sOut, pOut),
	}
	if serial.WallSeconds > 0 && par.WallSeconds > 0 {
		e.Speedup = serial.WallSeconds / par.WallSeconds
	}
	return e, nil
}

// Perf runs the serial-vs-parallel kernel benchmark and writes the report to
// jsonPath (and a human summary to stdout). quick shrinks the datasets for
// CI; workers <= 0 means GOMAXPROCS.
func Perf(jsonPath string, quick bool, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Always exercise the parallel kernel: with one worker RunWith falls back
	// to the serial path and the comparison would measure nothing.
	if workers < 2 {
		workers = 2
	}
	rep := PerfReport{
		Benchmark:  "aurochs-sim serial vs parallel kernel",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	joinN := 1 << 15
	aggN := 1 << 16
	partN := 1 << 16
	if quick {
		joinN = 1 << 13
		aggN = 1 << 14
		partN = 1 << 14
	}

	// Fig. 11a join shape at the paper's "when parallelized" pipeline count:
	// this is the experiment the acceptance speedup is measured on.
	join, err := perfExperiment("fig11a-hashjoin-p16", joinN, workers, func(w int) (int64, int64, []record.Rec, error) {
		matches, res, err := core.HashJoin(nil, mkKV(joinN, 1), mkKV(joinN, 2), core.HashJoinOptions{
			Pipelines: 16,
			Tuning:    core.Tuning{Parallelism: w},
		})
		if err != nil {
			return 0, 0, nil, err
		}
		return res.Cycles, res.DRAMBytes, matches, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, join)

	agg, err := perfExperiment("hash-aggregate", aggN, workers, func(w int) (int64, int64, []record.Rec, error) {
		keys := make([]uint32, aggN)
		for i := range keys {
			keys[i] = uint32(i % 997)
		}
		p := core.DefaultHashTableParams(1024)
		p.Tuning = core.Tuning{Parallelism: w}
		res, rres, err := core.HashAggregate(p, keys, nil)
		if err != nil {
			return 0, 0, nil, err
		}
		// Fingerprint the group counts deterministically.
		groups := res.Groups()
		out := make([]record.Rec, 0, len(groups))
		for k := uint32(0); k < 997; k++ {
			if c, ok := groups[k]; ok {
				out = append(out, record.Make(k, uint32(c)))
			}
		}
		return rres.Cycles, rres.DRAMBytes, out, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, agg)

	part, err := perfExperiment("partition-8way", partN, workers, func(w int) (int64, int64, []record.Rec, error) {
		p := core.DefaultPartitionParams(partN, 8, 2)
		p.Tuning = core.Tuning{Parallelism: w}
		ps, res, err := core.Partition(p, mkKV(partN, 9), nil)
		if err != nil {
			return 0, 0, nil, err
		}
		var out []record.Rec
		for pt := uint32(0); pt < 8; pt++ {
			out = append(out, ps.ReadPartition(pt)...)
		}
		return res.Cycles, res.DRAMBytes, out, nil
	})
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, part)

	fmt.Printf("== serial vs parallel kernel (workers=%d, GOMAXPROCS=%d) ==\n", workers, rep.GOMAXPROCS)
	for _, e := range rep.Experiments {
		status := "IDENTICAL"
		if !e.Identical {
			status = "MISMATCH"
		}
		fmt.Printf("%-22s rows=%-7d serial %.2fs (%.0f cyc/s)  parallel %.2fs (%.0f cyc/s)  speedup %.2fx  %s\n",
			e.Name, e.Rows, e.Serial.WallSeconds, e.Serial.CyclesPerSec,
			e.Parallel.WallSeconds, e.Parallel.CyclesPerSec, e.Speedup, status)
		if !e.Identical {
			return fmt.Errorf("%s: parallel kernel diverged from serial (cycles %d vs %d, bytes %d vs %d)",
				e.Name, e.Parallel.Cycles, e.Serial.Cycles, e.Parallel.DRAMBytes, e.Serial.DRAMBytes)
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
