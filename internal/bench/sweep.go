package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"aurochs/internal/core"
)

// SweepPoint is one row count on an experiment's scaling curve, measured on
// the serial kernel (the configuration the paper-scale rows run under and
// the one the CI floor gates).
type SweepPoint struct {
	Rows         int     `json:"rows"`
	Cycles       int64   `json:"cycles"`
	DRAMBytes    int64   `json:"dram_bytes"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// RowsPerSec is simulated input throughput: how many rows of input the
	// harness chews through per wall-clock second — the number that decides
	// whether paper-scale (≥1M row) curves are practical to regenerate.
	RowsPerSec float64 `json:"rows_per_sec"`
}

// SweepExperiment is one kernel's rows-vs-throughput scaling curve.
type SweepExperiment struct {
	Name   string       `json:"name"`
	Points []SweepPoint `json:"points"`
}

// SweepReport is the top-level scaling-curve document (BENCH_5-style).
type SweepReport struct {
	Benchmark      string            `json:"benchmark"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	NumCPU         int               `json:"num_cpu"`
	SingleCoreHost bool              `json:"single_core_host"`
	Quick          bool              `json:"quick"`
	Rows           []int             `json:"rows"`
	Experiments    []SweepExperiment `json:"experiments"`
}

// sweepKernels returns the swept experiments: each builds and runs the
// kernel at one row count on the serial kernel and returns the Result.
// The fig. 11a join is the headline curve; the aggregate and partition
// kernels ride along so a regression localized to one kernel shape is
// visible as such.
func sweepKernels() []struct {
	name string
	run  func(rows int) (core.Result, error)
} {
	return []struct {
		name string
		run  func(rows int) (core.Result, error)
	}{
		{"fig11a-hashjoin-p16", func(rows int) (core.Result, error) {
			_, res, err := core.HashJoin(nil, mkKV(rows, 1), mkKV(rows, 2), core.HashJoinOptions{
				Pipelines: 16,
				Tuning:    core.Tuning{Parallelism: 1},
			})
			return res, err
		}},
		{"hash-aggregate", func(rows int) (core.Result, error) {
			keys := make([]uint32, rows)
			for i := range keys {
				keys[i] = uint32(i % 997)
			}
			p := core.DefaultHashTableParams(1024)
			p.Tuning = core.Tuning{Parallelism: 1}
			_, res, err := core.HashAggregate(p, keys, nil)
			return res, err
		}},
		{"partition-8way", func(rows int) (core.Result, error) {
			p := core.DefaultPartitionParams(rows, 8, 2)
			p.Tuning = core.Tuning{Parallelism: 1}
			_, res, err := core.Partition(p, mkKV(rows, 9), nil)
			return res, err
		}},
	}
}

// ParseRows parses a -rows specification: comma-separated row counts, each
// a plain integer or with a k/m suffix (1024-based, case-insensitive), e.g.
// "8k,32k,1m" or "8192,32768,1048576". Counts are deduplicated and sorted.
func ParseRows(spec string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		if tok == "" {
			continue
		}
		mult := 1
		switch {
		case strings.HasSuffix(tok, "k"):
			mult, tok = 1024, tok[:len(tok)-1]
		case strings.HasSuffix(tok, "m"):
			mult, tok = 1024*1024, tok[:len(tok)-1]
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bench: bad row count %q in -rows", tok)
		}
		n *= mult
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: -rows specifies no row counts")
	}
	sort.Ints(out)
	return out, nil
}

// Sweep runs every swept kernel at each requested row count on the serial
// kernel, prints the scaling curves, and writes the report to jsonPath.
// quick is recorded in the report so a CI-sized sweep can never be mistaken
// for the committed full-scale document.
func Sweep(jsonPath string, rows []int, quick bool) error {
	rep := SweepReport{
		Benchmark:      "aurochs-sim rows-vs-throughput scaling sweep (serial kernel)",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		SingleCoreHost: runtime.NumCPU() < 2,
		Quick:          quick,
		Rows:           rows,
	}
	fmt.Printf("== rows-vs-throughput sweep (serial kernel, GOMAXPROCS=%d) ==\n", rep.GOMAXPROCS)
	for _, k := range sweepKernels() {
		exp := SweepExperiment{Name: k.name}
		for _, n := range rows {
			start := time.Now()
			res, err := k.run(n)
			wall := time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("%s rows=%d: %w", k.name, n, err)
			}
			pt := SweepPoint{Rows: n, Cycles: res.Cycles, DRAMBytes: res.DRAMBytes, WallSeconds: wall}
			if wall > 0 {
				pt.CyclesPerSec = float64(res.Cycles) / wall
				pt.RowsPerSec = float64(n) / wall
			}
			exp.Points = append(exp.Points, pt)
			fmt.Printf("%-22s rows=%-8d cycles=%-10d %8.2fs  %9.0f cyc/s  %9.0f rows/s\n",
				k.name, n, pt.Cycles, pt.WallSeconds, pt.CyclesPerSec, pt.RowsPerSec)
		}
		rep.Experiments = append(rep.Experiments, exp)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// GateSerialFloor enforces absolute serial-throughput floors on a sweep
// report. spec is comma-separated "experiment@rows:minCyclesPerSec"
// requirements (row counts accept the k/m suffixes of -rows), e.g.
// "fig11a-hashjoin-p16@32k:30000". Unlike GateParallel this gate measures
// the serial kernel only, so it holds on single-core CI runners — there is
// no host-parallelism escape hatch, which is the point: it pins the
// simulator's absolute speed, not a speedup ratio.
func GateSerialFloor(path, spec string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	point := func(name string, rows int) *SweepPoint {
		for i := range rep.Experiments {
			if rep.Experiments[i].Name != name {
				continue
			}
			for j := range rep.Experiments[i].Points {
				if rep.Experiments[i].Points[j].Rows == rows {
					return &rep.Experiments[i].Points[j]
				}
			}
		}
		return nil
	}
	var failures []string
	for _, req := range strings.Split(spec, ",") {
		req = strings.TrimSpace(req)
		if req == "" {
			continue
		}
		target, floorStr, ok := strings.Cut(req, ":")
		if !ok {
			return fmt.Errorf("gate: requirement %q lacks a :minCyclesPerSec floor", req)
		}
		name, rowStr, ok := strings.Cut(target, "@")
		if !ok {
			return fmt.Errorf("gate: requirement %q lacks an @rows target", req)
		}
		rowList, err := ParseRows(rowStr)
		if err != nil || len(rowList) != 1 {
			return fmt.Errorf("gate: bad row count in requirement %q", req)
		}
		floor, err := strconv.ParseFloat(floorStr, 64)
		if err != nil {
			return fmt.Errorf("gate: bad floor in requirement %q: %w", req, err)
		}
		pt := point(name, rowList[0])
		switch {
		case pt == nil:
			failures = append(failures, fmt.Sprintf("%s@%d: no such point in %s", name, rowList[0], path))
		case pt.CyclesPerSec < floor:
			failures = append(failures, fmt.Sprintf("%s@%d: serial %.0f cyc/s below floor %.0f",
				name, pt.Rows, pt.CyclesPerSec, floor))
		default:
			fmt.Printf("gate: %-22s @%-8d ok — serial %.0f cyc/s >= floor %.0f\n",
				name, pt.Rows, pt.CyclesPerSec, floor)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		return fmt.Errorf("gate: %d serial-floor requirement(s) unmet in %s", len(failures), path)
	}
	return nil
}
