package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a PerfReport to a temp file and returns its path.
func writeReport(t *testing.T, name string, rep PerfReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func multiCoreReport() PerfReport {
	return PerfReport{
		GOMAXPROCS: 4, NumCPU: 4,
		Experiments: []PerfExperiment{
			{
				Name: "fig11a-hashjoin-p16", Rows: 1 << 15,
				Serial:    PerfRun{WorkersRequested: 1, WorkersResolved: 1, CyclesPerSec: 30000, WallSeconds: 1.0},
				Parallel:  PerfRun{WorkersRequested: -4, WorkersResolved: 4, CyclesPerSec: 60000, WallSeconds: 0.5},
				Identical: true, Speedup: 2.0,
			},
		},
	}
}

// TestGateParallelPasses: an engaged, identical, fast-enough experiment on a
// multi-core report clears the gate.
func TestGateParallelPasses(t *testing.T) {
	p := writeReport(t, "ok.json", multiCoreReport())
	if err := GateParallel(p, "fig11a-hashjoin-p16:1.2"); err != nil {
		t.Fatalf("gate failed on a winning report: %v", err)
	}
}

// TestGateParallelFailures: fallback on a multi-core host, a sub-floor
// speedup, a lost bit-identity, and a missing experiment each fail the
// gate with the offender named.
func TestGateParallelFailures(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*PerfReport)
		spec   string
		want   string
	}{
		{"fallback", func(r *PerfReport) {
			r.Experiments[0].Fallback = true
			r.Experiments[0].FallbackReason = "imbalance"
			r.Experiments[0].Speedup = 1.0
		}, "fig11a-hashjoin-p16:1.2", "fell back to serial (imbalance)"},
		{"slow", func(r *PerfReport) {
			r.Experiments[0].Speedup = 1.05
		}, "fig11a-hashjoin-p16:1.2", "below required"},
		{"divergent", func(r *PerfReport) {
			r.Experiments[0].Identical = false
		}, "fig11a-hashjoin-p16:1.2", "not bit-identical"},
		{"missing", nil, "no-such-experiment:1.0", "missing"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := multiCoreReport()
			if tc.mutate != nil {
				tc.mutate(&rep)
			}
			p := writeReport(t, "r.json", rep)
			err := GateParallel(p, tc.spec)
			if err == nil {
				t.Fatal("gate passed; want failure")
			}
			if !strings.Contains(err.Error(), "requirement") {
				t.Errorf("error %q does not summarize requirements", err)
			}
		})
	}
}

// TestGateParallelSkipsSingleCoreHost: a report produced where no speedup
// is measurable must not fail the gate — the host, not the kernel, is the
// limit, and the report says so loudly.
func TestGateParallelSkipsSingleCoreHost(t *testing.T) {
	rep := multiCoreReport()
	rep.NumCPU, rep.GOMAXPROCS = 1, 1
	rep.SingleCoreHost = true
	rep.Experiments[0].Fallback = true
	rep.Experiments[0].FallbackReason = "single-core-host"
	rep.Experiments[0].SingleCoreHost = true
	rep.Experiments[0].Speedup = 1.0
	p := writeReport(t, "single.json", rep)
	if err := GateParallel(p, "fig11a-hashjoin-p16:1.2"); err != nil {
		t.Fatalf("gate failed on a single-core report: %v", err)
	}
}

// TestCompareGates: serial regression beyond tolerance fails; matching or
// improved reports pass; undeclared sub-1.0 speedups fail.
func TestCompareGates(t *testing.T) {
	base := writeReport(t, "base.json", multiCoreReport())

	same := writeReport(t, "same.json", multiCoreReport())
	if err := Compare(same, base, 0.10); err != nil {
		t.Fatalf("identical report failed compare: %v", err)
	}

	slow := multiCoreReport()
	slow.Experiments[0].Serial.CyclesPerSec = 20000
	if err := Compare(writeReport(t, "slow.json", slow), base, 0.10); err == nil {
		t.Fatal("33% serial regression passed compare")
	}

	lost := multiCoreReport()
	lost.Experiments[0].Speedup = 0.8
	if err := Compare(writeReport(t, "lost.json", lost), base, 0.10); err == nil {
		t.Fatal("undeclared 0.8x speedup passed compare")
	}
}

// TestCompareReadsCommittedBaselines: the real committed reports parse
// under the current schema and gate cleanly against themselves — renamed
// fields must never strand an old baseline.
func TestCompareReadsCommittedBaselines(t *testing.T) {
	for _, p := range []string{"../../BENCH_3.json", "../../BENCH_4.json"} {
		if _, err := os.Stat(p); err != nil {
			t.Skipf("%s not present", p)
		}
		if err := Compare(p, p, 0.10); err != nil {
			t.Errorf("%s vs itself: %v", p, err)
		}
	}
}
