package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearPredict(t *testing.T) {
	m := &Linear{Weights: []float32{1, 2, 3}, Bias: 0.5}
	if got := m.Predict([]float32{1, 1, 1}); math.Abs(float64(got-6.5)) > 1e-6 {
		t.Errorf("got %f", got)
	}
	if m.FlopsPerPredict() != 6 {
		t.Errorf("flops %d", m.FlopsPerPredict())
	}
}

func TestLinearWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Linear{Weights: []float32{1}}).Predict([]float32{1, 2})
}

func TestLogisticBounds(t *testing.T) {
	m := &Logistic{Linear: Linear{Weights: []float32{1}, Bias: 0}}
	if err := quick.Check(func(x float32) bool {
		p := m.Prob([]float32{x})
		return p >= 0 && p <= 1
	}, nil); err != nil {
		t.Error(err)
	}
	if !m.Predict([]float32{10}) || m.Predict([]float32{-10}) {
		t.Error("hard classification wrong at extremes")
	}
}

func TestKMeansAssign(t *testing.T) {
	m := &KMeans{Centroids: [][]float32{{0, 0}, {10, 10}, {20, 0}}}
	cases := map[int][]float32{
		0: {1, 1},
		1: {9, 11},
		2: {19, -1},
	}
	for want, x := range cases {
		if got := m.Assign(x); got != want {
			t.Errorf("Assign(%v)=%d, want %d", x, got, want)
		}
	}
	if m.FlopsPerAssign() != 18 {
		t.Errorf("flops %d", m.FlopsPerAssign())
	}
}
