// Package ml implements the shallow model inference the benchmark queries
// invoke (paper fig. 13, Q5-Q8): linear regression, logistic regression,
// and k-means cluster assignment. Analytics pipelines increasingly end in
// exactly these low-latency predictors, which is the DB+ML co-location
// argument behind Gorgon and Aurochs.
package ml

import "math"

// Linear is a linear-regression model: y = bias + Σ w·x.
type Linear struct {
	Weights []float32
	Bias    float32
}

// Predict evaluates the model on one feature vector.
func (m *Linear) Predict(x []float32) float32 {
	if len(x) != len(m.Weights) {
		panic("ml: feature width mismatch")
	}
	acc := m.Bias
	for i, w := range m.Weights {
		acc += w * x[i]
	}
	return acc
}

// Logistic is a logistic-regression classifier over the linear model.
type Logistic struct {
	Linear
}

// Prob returns the positive-class probability.
func (m *Logistic) Prob(x []float32) float32 {
	z := m.Linear.Predict(x)
	return float32(1 / (1 + math.Exp(-float64(z))))
}

// Predict returns the hard class at threshold 0.5.
func (m *Logistic) Predict(x []float32) bool {
	return m.Prob(x) >= 0.5
}

// KMeans is a k-means model used for cluster inference.
type KMeans struct {
	Centroids [][]float32
}

// Assign returns the index of the nearest centroid (squared Euclidean).
func (m *KMeans) Assign(x []float32) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range m.Centroids {
		if len(cent) != len(x) {
			panic("ml: centroid width mismatch")
		}
		d := 0.0
		for i := range cent {
			diff := float64(cent[i] - x[i])
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// FlopsPerPredict returns the multiply-accumulate count of one inference —
// what the executors charge when timing the predict operators.
func (m *Linear) FlopsPerPredict() int { return 2 * len(m.Weights) }

// FlopsPerAssign returns the op count of one k-means assignment.
func (m *KMeans) FlopsPerAssign() int {
	if len(m.Centroids) == 0 {
		return 0
	}
	return 3 * len(m.Centroids) * len(m.Centroids[0])
}
