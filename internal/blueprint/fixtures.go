package blueprint

import (
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

// Fixtures are deliberately shaped topologies for exercising the token-flow
// prover (internal/analysis/flow) end to end: a negative fixture the prover
// must reject — and whose wedge witness must reproduce against the real
// simulator — and a positive fixture it must pass. aurochs-vet's -fixture
// flag vets one by name, which is how CI keeps a live negative gate on the
// -flow analyzer without shipping a broken blueprint in the registry.

// Fixture is one registered prover-exercise topology.
type Fixture struct {
	// Name identifies the fixture ("flowbad").
	Name string
	// Doc says what the topology demonstrates.
	Doc string
	// Wedges is true when the flow prover must reject the graph and its
	// witness must replay to a real failure; false when it must prove clean.
	Wedges bool
	// Build wires the fixture at its default record count.
	Build func() (*fabric.Graph, error)
	// BuildN wires the fixture with n external records — replay harnesses
	// size the input from the witness's Inject count.
	BuildN func(n int) (*fabric.Graph, error)
}

// countRecs returns n [id, count] records for the countdown loops.
func countRecs(n int, count uint32) []record.Rec {
	out := make([]record.Rec, n)
	for i := range out {
		out[i] = record.Make(uint32(i), count)
	}
	return out
}

// flowbad wires a loop with no exit: a LoopMerge correctly oriented, a body
// that recirculates every record, and nothing that ever counts a thread
// out. Structurally sound — Graph.Check passes — but every injected record
// stays in the ring forever, so enough of them saturate the cycle's credit
// and the run can never complete. The prover's flow-no-exit wedge witness
// says exactly how many records that takes.
func flowbad(n int) (*fabric.Graph, error) {
	g := fabric.NewGraph()
	s := record.NewSchema("id", "count")
	ext, body, recirc := g.Link("ext"), g.Link("body"), g.Link("recirc")
	ctl := fabric.NewLoopCtl()
	g.Add(fabric.NewSource("src", countRecs(n, 1), ext).Typed(s))
	g.Add(fabric.NewLoopMerge("entry", recirc, ext, body, ctl).Typed(s, s, s))
	g.Add(fabric.NewMap("spin", func(r *record.Rec) {
		if c := r.Get(1); c > 0 {
			r.Put(1, c-1)
		}
	}, body, recirc).Cyclic().Typed(s, s))
	return g, nil
}

// flowclean chains two well-formed countdown loops: counted entries,
// counted exits, the second loop draining the first's output. The flow
// prover must pass it with zero findings and a finite occupancy bound.
func flowclean(n int) (*fabric.Graph, error) {
	g := fabric.NewGraph()
	s := record.NewSchema("id", "count")
	dec := func(r *record.Rec) {
		if c := r.Get(1); c > 0 {
			r.Put(1, c-1)
		}
	}
	ext, aBody, aDec, handoff, aRec := g.Link("ext"), g.Link("a.body"),
		g.Link("a.dec"), g.Link("handoff"), g.Link("a.recirc")
	bBody, bDec, out, bRec := g.Link("b.body"), g.Link("b.dec"), g.Link("out"), g.Link("b.recirc")
	actl, bctl := fabric.NewLoopCtl(), fabric.NewLoopCtl()
	g.Add(fabric.NewSource("src", countRecs(n, 2), ext).Typed(s))
	g.Add(fabric.NewLoopMerge("a.entry", aRec, ext, aBody, actl).Typed(s, s, s))
	g.Add(fabric.NewMap("a.dec", dec, aBody, aDec).Cyclic().Typed(s, s))
	g.Add(fabric.NewFilter("a.exit?", func(r *record.Rec) int {
		if r.Get(1) <= 1 {
			return 0
		}
		return 1
	}, aDec, []fabric.Output{
		{Link: handoff, Exit: true},
		{Link: aRec, NoEOS: true},
	}, actl).Typed(s))
	g.Add(fabric.NewLoopMerge("b.entry", bRec, handoff, bBody, bctl).Typed(s, s, s))
	g.Add(fabric.NewMap("b.dec", dec, bBody, bDec).Cyclic().Typed(s, s))
	g.Add(fabric.NewFilter("b.exit?", func(r *record.Rec) int {
		if r.Get(1) == 0 {
			return 0
		}
		return 1
	}, bDec, []fabric.Output{
		{Link: out, Exit: true},
		{Link: bRec, NoEOS: true},
	}, bctl).Typed(s))
	g.Add(fabric.NewSink("snk", out).Typed(s))
	return g, nil
}

// Fixtures returns the registered fixtures in deterministic order.
func Fixtures() []Fixture {
	return []Fixture{
		{
			Name:   "flowbad",
			Doc:    "recirculating loop with no exit: structurally sound, provably wedges once saturated",
			Wedges: true,
			Build:  func() (*fabric.Graph, error) { return flowbad(8) },
			BuildN: flowbad,
		},
		{
			Name:   "flowclean",
			Doc:    "two chained countdown loops with counted entries and exits: proves deadlock-free",
			Wedges: false,
			Build:  func() (*fabric.Graph, error) { return flowclean(8) },
			BuildN: flowclean,
		},
	}
}

// FixtureByName returns the named fixture, or nil.
func FixtureByName(name string) *Fixture {
	for _, fx := range Fixtures() {
		if fx.Name == name {
			fx := fx
			return &fx
		}
	}
	return nil
}
