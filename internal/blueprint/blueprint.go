// Package blueprint registers every shipped graph topology in buildable —
// but not run — form, so static tooling can wire and analyze the real
// kernels without simulating them. aurochs-vet -graphs walks this registry
// through fabric.Graph.Prove: structural defects (Check diagnostics) and
// flow-control hazards (line-rate, credit starvation) in any registered
// topology fail the build, which is what makes the credit prover a CI
// gate rather than a test-only curiosity.
//
// Entries use the kernels' *Into wiring functions where they exist; a
// blueprint builds the same component graph a production run would, with
// tiny placeholder inputs (topology does not depend on data).
package blueprint

import (
	"aurochs/internal/core"
	"aurochs/internal/dram"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

// Blueprint is one registered graph topology.
type Blueprint struct {
	// Name identifies the topology in findings ("hash-build").
	Name string
	// Doc says what the graph computes.
	Doc string
	// Build wires a fresh instance of the graph without running it.
	Build func() (*fabric.Graph, error)
}

// sampleRecs returns n two-field placeholder records.
func sampleRecs(n int) []record.Rec {
	out := make([]record.Rec, n)
	for i := range out {
		out[i] = record.Make(uint32(i), uint32(i))
	}
	return out
}

// All returns the registered blueprints in deterministic order.
func All() []Blueprint {
	return []Blueprint{
		{
			Name: "countdown-loop",
			Doc:  "canonical recirculating pipeline: LoopMerge, body, exit Filter",
			Build: func() (*fabric.Graph, error) {
				g := fabric.NewGraph()
				s := record.NewSchema("id", "count")
				ext, body, dec, exit, recirc := g.Link("ext"), g.Link("body"),
					g.Link("dec"), g.Link("exit"), g.Link("recirc")
				ctl := fabric.NewLoopCtl()
				g.Add(fabric.NewSource("src", sampleRecs(8), ext).Typed(s))
				g.Add(fabric.NewLoopMerge("entry", recirc, ext, body, ctl).Typed(s, s, s))
				g.Add(fabric.NewMap("dec", func(r *record.Rec) {
					if c := r.Get(1); c > 0 {
						r.Put(1, c-1)
					}
				}, body, dec).Cyclic().Typed(s, s))
				g.Add(fabric.NewFilter("exit?", func(r *record.Rec) int {
					if r.Get(1) == 0 {
						return 0
					}
					return 1
				}, dec, []fabric.Output{
					{Link: exit, Exit: true},
					{Link: recirc, NoEOS: true},
				}, ctl).Typed(s))
				g.Add(fabric.NewSink("snk", exit).Typed(s))
				return g, nil
			},
		},
		{
			Name: "hash-build",
			Doc:  "hash-table build pipeline (paper fig. 5): CAS-prepend over scratchpad buckets with DRAM overflow",
			Build: func() (*fabric.Graph, error) {
				g := fabric.NewGraph()
				g.AttachHBM(dram.New(dram.DefaultConfig()))
				in := sampleRecs(64)
				_, _, err := core.BuildHashTableInto(g, "bld", core.DefaultHashTableParams(len(in)), core.InRecs(in))
				return g, err
			},
		},
		{
			Name: "hash-build-probe",
			Doc:  "build and probe pipelines sharing one graph and HBM (streaming join shape, fig. 12)",
			Build: func() (*fabric.Graph, error) {
				g := fabric.NewGraph()
				g.AttachHBM(dram.New(dram.DefaultConfig()))
				in := sampleRecs(64)
				ht, _, err := core.BuildHashTableInto(g, "bld", core.DefaultHashTableParams(len(in)), core.InRecs(in))
				if err != nil {
					return nil, err
				}
				core.ProbeHashTableInto(g, "prb", ht, core.InRecs(sampleRecs(32)), core.ProbeOptions{})
				return g, err
			},
		},
		{
			Name: "streamjoin",
			Doc:  "symmetric stream-join window (paper §IV-A): both sides' inserts and cross-probes concurrently in one graph",
			Build: func() (*fabric.Graph, error) {
				g := fabric.NewGraph()
				g.AttachHBM(dram.New(dram.DefaultConfig()))
				j, err := core.NewSymmetricJoin(core.DefaultHashTableParams(64), g.HBM)
				if err != nil {
					return nil, err
				}
				_, err = j.WindowInto(g, "win", core.InRecs(sampleRecs(16)),
					core.InRecs(sampleRecs(16)), core.ProbeOptions{})
				return g, err
			},
		},
		{
			Name: "partition",
			Doc:  "radix partition pipeline (paper fig. 6): fused FAA block allocation with a retry loop",
			Build: func() (*fabric.Graph, error) {
				g := fabric.NewGraph()
				g.AttachHBM(dram.New(dram.DefaultConfig()))
				in := sampleRecs(64)
				_, _, err := core.PartitionInto(g, "prt", core.DefaultPartitionParams(len(in), 16, 2), core.InRecs(in))
				return g, err
			},
		},
		{
			Name: "dram-stream",
			Doc:  "dense DRAM scan feeding a DRAM append: the run-materialization path",
			Build: func() (*fabric.Graph, error) {
				g := fabric.NewGraph()
				g.AttachHBM(dram.New(dram.DefaultConfig()))
				s := record.NewSchema("key", "val")
				mid := g.Link("mid")
				fabric.NewDRAMScan(g, "scan", []fabric.Extent{{Addr: 4096, Words: 256}}, 2, mid).Typed(s)
				fabric.NewDRAMAppend(g, "app", 1<<20, 2, mid).Typed(s)
				return g, nil
			},
		},
	}
}
