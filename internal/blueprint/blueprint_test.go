package blueprint

import (
	"testing"

	"aurochs/internal/fabric"
)

// TestAllBlueprintsProveClean is the acceptance gate for the static
// provers: every registered kernel topology must pass Graph.Check and
// come out of Graph.ProveWith(RequireSchemas) with zero warnings —
// line-rate and credit sufficiency proven on every link and cycle, every
// link schema-typed at both ends, and every stateful effect classified
// reorder-safe (or carrying an explicit waiver, which the test reports).
// A regression here means a shipped graph acquired a flow-control hazard,
// lost schema coverage, or picked up an unclassified order-dependent RMW.
func TestAllBlueprintsProveClean(t *testing.T) {
	bps := All()
	if len(bps) == 0 {
		t.Fatal("empty blueprint registry")
	}
	seen := map[string]bool{}
	for _, bp := range bps {
		bp := bp
		t.Run(bp.Name, func(t *testing.T) {
			if seen[bp.Name] {
				t.Fatalf("duplicate blueprint name %q", bp.Name)
			}
			seen[bp.Name] = true
			g, err := bp.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := g.ProveWith(fabric.ProveOptions{RequireSchemas: true})
			if err != nil {
				t.Fatalf("prove: %v", err)
			}
			if !rep.Clean() {
				t.Fatalf("prover warnings:\n%s", rep)
			}
			if len(rep.Proofs) == 0 {
				t.Fatal("no proofs emitted")
			}
			for _, w := range rep.Waived {
				t.Logf("waived: %s", w.Msg)
			}
		})
	}
}

// TestBlueprintBuildsAreIndependent: Build must wire a fresh graph each
// call — tooling builds repeatedly (vet, tests, future bench harnesses).
func TestBlueprintBuildsAreIndependent(t *testing.T) {
	for _, bp := range All() {
		g1, err1 := bp.Build()
		g2, err2 := bp.Build()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: build errors %v / %v", bp.Name, err1, err2)
		}
		if g1 == g2 {
			t.Fatalf("%s: Build returned the same graph twice", bp.Name)
		}
	}
}
