package blueprint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aurochs/internal/analysis/flow"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

// TestAllBlueprintsProveClean is the acceptance gate for the static
// provers: every registered kernel topology must pass Graph.Check and
// come out of Graph.ProveWith(RequireSchemas) with zero warnings —
// line-rate and credit sufficiency proven on every link and cycle, every
// link schema-typed at both ends, and every stateful effect classified
// reorder-safe (or carrying an explicit waiver, which the test reports).
// A regression here means a shipped graph acquired a flow-control hazard,
// lost schema coverage, or picked up an unclassified order-dependent RMW.
func TestAllBlueprintsProveClean(t *testing.T) {
	bps := All()
	if len(bps) == 0 {
		t.Fatal("empty blueprint registry")
	}
	seen := map[string]bool{}
	for _, bp := range bps {
		bp := bp
		t.Run(bp.Name, func(t *testing.T) {
			if seen[bp.Name] {
				t.Fatalf("duplicate blueprint name %q", bp.Name)
			}
			seen[bp.Name] = true
			g, err := bp.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := g.ProveWith(fabric.ProveOptions{RequireSchemas: true, RequireDeadlockFree: true})
			if err != nil {
				t.Fatalf("prove: %v", err)
			}
			if !rep.Clean() {
				t.Fatalf("prover warnings:\n%s", rep)
			}
			if len(rep.Proofs) == 0 {
				t.Fatal("no proofs emitted")
			}
			if rep.Flow == nil || !rep.Flow.DeadlockFree() || len(rep.Flow.Warnings) != 0 {
				t.Fatalf("flow prover did not fully prove the topology:\n%v", rep.Flow)
			}
			if rep.Flow.Occupancy.Total <= 0 {
				t.Fatalf("no occupancy bound: %+v", rep.Flow.Occupancy)
			}
			for _, w := range rep.Waived {
				t.Logf("waived: %s", w.Msg)
			}
		})
	}
}

// TestBlueprintBuildsAreIndependent: Build must wire a fresh graph each
// call — tooling builds repeatedly (vet, tests, future bench harnesses).
func TestBlueprintBuildsAreIndependent(t *testing.T) {
	for _, bp := range All() {
		g1, err1 := bp.Build()
		g2, err2 := bp.Build()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: build errors %v / %v", bp.Name, err1, err2)
		}
		if g1 == g2 {
			t.Fatalf("%s: Build returned the same graph twice", bp.Name)
		}
	}
}

// TestBlueprintStagePlans: every registered topology decomposes into a
// deterministic two-level (stage x lane) shard plan that covers each
// component exactly once; rebuilding a blueprint reproduces the identical
// plan shape (the planner never consults map iteration order). The test
// also reports each plan's balance so a blueprint whose parallel shape
// degenerates (one atom swallowing the graph) shows up in -v output with
// the numbers auto mode will quote when it falls back.
func TestBlueprintStagePlans(t *testing.T) {
	for _, bp := range All() {
		bp := bp
		t.Run(bp.Name, func(t *testing.T) {
			g, err := bp.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			plan := g.StagePlan()
			n := 0
			for _, sh := range plan.Shards {
				n += len(sh)
			}
			comps := len(g.Sys.Components())
			if n != comps {
				t.Fatalf("plan covers %d of %d components", n, comps)
			}
			if len(plan.CompStage) != comps {
				t.Fatalf("CompStage has %d entries for %d components", len(plan.CompStage), comps)
			}
			if plan.Stages < 1 || plan.MaxLanes < 1 {
				t.Fatalf("degenerate plan: %d stages, %d lanes", plan.Stages, plan.MaxLanes)
			}
			// Determinism across rebuilds: same shard membership, stage by stage.
			g2, err := bp.Build()
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			plan2 := g2.StagePlan()
			if len(plan2.Shards) != len(plan.Shards) || plan2.Stages != plan.Stages ||
				plan2.MaxLanes != plan.MaxLanes || plan2.Largest != plan.Largest {
				t.Fatalf("rebuild changed the plan shape: %d/%d/%d/%d vs %d/%d/%d/%d",
					len(plan.Shards), plan.Stages, plan.MaxLanes, plan.Largest,
					len(plan2.Shards), plan2.Stages, plan2.MaxLanes, plan2.Largest)
			}
			for i := range plan.Shards {
				if len(plan.Shards[i]) != len(plan2.Shards[i]) {
					t.Fatalf("rebuild changed shard %d membership", i)
				}
				for j := range plan.Shards[i] {
					if plan.Shards[i][j] != plan2.Shards[i][j] {
						t.Fatalf("rebuild changed shard %d member %d", i, j)
					}
				}
			}
			t.Logf("%s: %d comps, %d shards, %d stages, %d lanes, largest %d (%.0f%%)",
				bp.Name, comps, len(plan.Shards), plan.Stages, plan.MaxLanes,
				plan.Largest, plan.LargestShare()*100)
		})
	}
}

// TestFixturesExerciseTheFlowProver is the fixture registry's contract:
// a wedging fixture must be rejected by the token-flow prover AND its
// witness must reproduce the predicted failure on the real simulator; a
// clean fixture must prove deadlock-free and then actually drain at the
// occupancy bound's record count.
func TestFixturesExerciseTheFlowProver(t *testing.T) {
	fxs := Fixtures()
	if len(fxs) == 0 {
		t.Fatal("empty fixture registry")
	}
	for _, fx := range fxs {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			g, err := fx.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep := g.ProveFlow()
			if !fx.Wedges {
				if !rep.DeadlockFree() || len(rep.Warnings) != 0 {
					t.Fatalf("clean fixture rejected:\n%s", rep)
				}
				n := rep.Occupancy.Total + 2*record.NumLanes
				g2, err := fx.BuildN(n)
				if err != nil {
					t.Fatalf("build(%d): %v", n, err)
				}
				if _, err := g2.Run(int64(400 * n)); err != nil {
					t.Fatalf("clean fixture wedged with %d records: %v", n, err)
				}
				return
			}
			ws := rep.Witnesses()
			if len(ws) == 0 {
				t.Fatalf("wedging fixture produced no witness:\n%s", rep)
			}
			w := ws[0]
			n := w.Inject
			if n < 8 {
				n = 8
			}
			g2, err := fx.BuildN(n)
			if err != nil {
				t.Fatalf("build(%d): %v", n, err)
			}
			if err := fabric.ReplayWitness(g2, w); err != nil {
				t.Fatalf("witness did not reproduce: %v", err)
			}
		})
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestOccupancyGolden pins every registered blueprint's static occupancy
// bound — the token-flow prover's per-link, per-cycle, and node-resident
// in-flight limits. A diff here means a topology change moved a shipped
// kernel's memory ceiling; review it, then regenerate with:
// go test ./internal/blueprint -run TestOccupancyGolden -update
func TestOccupancyGolden(t *testing.T) {
	type entry struct {
		Name      string         `json:"name"`
		Occupancy flow.Occupancy `json:"occupancy"`
	}
	var out []entry
	for _, bp := range All() {
		g, err := bp.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", bp.Name, err)
		}
		rep, err := g.ProveWith(fabric.ProveOptions{RequireDeadlockFree: true})
		if err != nil {
			t.Fatalf("%s: prove: %v", bp.Name, err)
		}
		out = append(out, entry{Name: bp.Name, Occupancy: rep.Flow.Occupancy})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "occupancy.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("occupancy bounds drifted from golden file %s\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}
