package blueprint

import (
	"fmt"
	"testing"

	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

// batchFingerprint captures everything ISSUE's batch contract pins: elapsed
// cycles, the full stats counter set, DRAM traffic, per-link push/pop
// totals, and every sink's records bit-for-bit.
type batchFingerprint struct {
	cycles int64
	stats  string
	dram   int64
	links  []string
	sinks  [][]record.Rec
}

// runBlueprint builds a fresh instance and runs it with the given kernel
// selection, returning the execution fingerprint.
func runBlueprint(t *testing.T, bp Blueprint, workers int, noBatch bool) batchFingerprint {
	t.Helper()
	g, err := bp.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	g.Workers = workers
	g.NoBatch = noBatch
	cycles, err := g.Run(2_000_000)
	if err != nil {
		t.Fatalf("workers=%d noBatch=%v: %v", workers, noBatch, err)
	}
	fp := batchFingerprint{cycles: cycles, stats: g.Stats().String()}
	if g.HBM != nil {
		fp.dram = g.HBM.BytesMoved()
	}
	for _, l := range g.Sys.Links() {
		fp.links = append(fp.links, fmt.Sprintf("%s:%d/%d", l.Name(), l.Pushes(), l.Pops()))
	}
	for _, c := range g.Sys.Components() {
		if s, ok := c.(*fabric.Sink); ok {
			fp.sinks = append(fp.sinks, s.Records())
		}
	}
	return fp
}

func diffFingerprints(t *testing.T, label string, ref, got batchFingerprint) {
	t.Helper()
	if got.cycles != ref.cycles {
		t.Errorf("%s: cycles %d != reference %d", label, got.cycles, ref.cycles)
	}
	if got.stats != ref.stats {
		t.Errorf("%s: stats diverge\nreference:\n%s\ngot:\n%s", label, ref.stats, got.stats)
	}
	if got.dram != ref.dram {
		t.Errorf("%s: DRAM traffic %d bytes != reference %d", label, got.dram, ref.dram)
	}
	if len(got.links) != len(ref.links) {
		t.Fatalf("%s: link census differs (%d vs %d)", label, len(got.links), len(ref.links))
	}
	for i := range ref.links {
		if got.links[i] != ref.links[i] {
			t.Errorf("%s: link %s != reference %s", label, got.links[i], ref.links[i])
		}
	}
	if len(got.sinks) != len(ref.sinks) {
		t.Fatalf("%s: sink census differs (%d vs %d)", label, len(got.sinks), len(ref.sinks))
	}
	for i := range ref.sinks {
		if len(got.sinks[i]) != len(ref.sinks[i]) {
			t.Errorf("%s: sink %d holds %d records, reference %d", label, i, len(got.sinks[i]), len(ref.sinks[i]))
			continue
		}
		for j := range ref.sinks[i] {
			if got.sinks[i][j] != ref.sinks[i][j] {
				t.Errorf("%s: sink %d record %d differs: %v vs %v", label, i, j, got.sinks[i][j], ref.sinks[i][j])
				break
			}
		}
	}
}

// TestBatchScalarEquivalence is the batch-vs-scalar conformance gate: on
// every registered blueprint, batch execution (TickBatch offers plus the
// block transport underneath) must be observably identical to the scalar
// tick path — same cycles, same stats, same DRAM traffic, same per-link
// flit totals, same sink records — on the serial kernel and at 2, 3, 4,
// and 8 workers. CI runs this under -race with AUROCHS_WORKERS forcing the
// parallel kernel, which also makes it a determinism stress for the batch
// offer sites. A failure means some TickBatch implementation exceeded its
// scalar Tick's observable effects (see sim/batch.go for the contract).
func TestBatchScalarEquivalence(t *testing.T) {
	for _, bp := range All() {
		bp := bp
		t.Run(bp.Name, func(t *testing.T) {
			ref := runBlueprint(t, bp, 0, true) // scalar reference, serial kernel
			diffFingerprints(t, "serial+batch", ref, runBlueprint(t, bp, 0, false))
			for _, w := range []int{2, 3, 4, 8} {
				diffFingerprints(t, fmt.Sprintf("workers=%d+batch", w), ref,
					runBlueprint(t, bp, w, false))
				// The scalar path must also stay worker-count invariant, so a
				// batch bug can never hide behind a parallel-kernel bug.
				diffFingerprints(t, fmt.Sprintf("workers=%d+scalar", w), ref,
					runBlueprint(t, bp, w, true))
			}
		})
	}
}
