// Package btree implements the paper's immutable, bulk-loaded B-tree
// (§IV-B, fig. 8): sorted leaves packed into a flat DRAM array, internal
// levels built bottom-up in linear time. Immutability is the point — the
// tree is written once by a bulk load and then shared by concurrent readers
// with no locking; updates happen by building new trees inside an LSM
// (package lsm).
package btree

import (
	"fmt"
	"sort"

	"aurochs/internal/dram"
)

// Fanout is the number of entries per node. 16 keys + 16 values plus a
// header word keeps a node at 132 B — two to three HBM bursts, the block
// size that hides DRAM latency during descent (paper §III-A).
const Fanout = 16

// NodeWords is the DRAM footprint of one node:
// word 0: nkeys<<1 | isLeaf; words 1..Fanout: keys; words Fanout+1..2*Fanout: vals.
const NodeWords = 1 + 2*Fanout

// KV is one indexed entry.
type KV struct {
	Key uint32
	Val uint32
}

// Tree is an immutable B-tree materialized in DRAM.
type Tree struct {
	HBM  *dram.HBM
	Base uint32 // word address of node 0
	// Root is the root node index; Nodes the total node count.
	Root   uint32
	Nodes  uint32
	Height int
	// Len is the number of key-value entries.
	Len int
	// MinKey/MaxKey bound the keys (used by LSM time pruning).
	MinKey, MaxKey uint32
	// LeafCount is the number of level-0 nodes (leaves are nodes
	// 0..LeafCount-1, contiguous and in key order).
	LeafCount uint32
}

// NodeAddr returns the word address of node idx.
func (t *Tree) NodeAddr(idx uint32) uint32 {
	return t.Base + idx*NodeWords
}

// WordsUsed returns the DRAM words the tree occupies.
func (t *Tree) WordsUsed() uint32 { return t.Nodes * NodeWords }

// Build bulk-loads items into a new tree at base. Items are sorted by key
// in place if not already sorted; duplicate keys are allowed. An empty
// items slice yields a valid empty tree.
func Build(h *dram.HBM, base uint32, items []KV) *Tree {
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Key < items[j].Key }) {
		sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	}
	t := &Tree{HBM: h, Base: base, Len: len(items)}
	if len(items) == 0 {
		// A single empty leaf keeps readers branch-free.
		h.WriteWord(base, 0|1)
		t.Nodes, t.LeafCount, t.Root, t.Height = 1, 1, 0, 1
		return t
	}
	t.MinKey = items[0].Key
	t.MaxKey = items[len(items)-1].Key

	writeNode := func(idx uint32, isLeaf bool, keys, vals []uint32) {
		a := t.NodeAddr(idx)
		flag := uint32(0)
		if isLeaf {
			flag = 1
		}
		h.WriteWord(a, uint32(len(keys))<<1|flag)
		for i := 0; i < Fanout; i++ {
			var k, v uint32
			if i < len(keys) {
				k, v = keys[i], vals[i]
			}
			h.WriteWord(a+1+uint32(i), k)
			h.WriteWord(a+1+Fanout+uint32(i), v)
		}
	}

	// Level 0: leaves.
	next := uint32(0)
	var level []uint32 // node indices of current level
	var levelKeys []uint32
	for i := 0; i < len(items); i += Fanout {
		end := i + Fanout
		if end > len(items) {
			end = len(items)
		}
		keys := make([]uint32, 0, Fanout)
		vals := make([]uint32, 0, Fanout)
		for _, kv := range items[i:end] {
			keys = append(keys, kv.Key)
			vals = append(vals, kv.Val)
		}
		writeNode(next, true, keys, vals)
		level = append(level, next)
		levelKeys = append(levelKeys, keys[0])
		next++
	}
	t.LeafCount = next
	t.Height = 1

	// Internal levels: a streaming reduction over the previous level.
	for len(level) > 1 {
		var up []uint32
		var upKeys []uint32
		for i := 0; i < len(level); i += Fanout {
			end := i + Fanout
			if end > len(level) {
				end = len(level)
			}
			writeNode(next, false, levelKeys[i:end], level[i:end])
			up = append(up, next)
			upKeys = append(upKeys, levelKeys[i])
			next++
		}
		level, levelKeys = up, upKeys
		t.Height++
	}
	t.Root = level[0]
	t.Nodes = next
	return t
}

// node reads a node functionally.
func (t *Tree) node(idx uint32) (isLeaf bool, keys, vals []uint32) {
	a := t.NodeAddr(idx)
	hdr := t.HBM.ReadWord(a)
	n := int(hdr >> 1)
	isLeaf = hdr&1 == 1
	keys = make([]uint32, n)
	vals = make([]uint32, n)
	for i := 0; i < n; i++ {
		keys[i] = t.HBM.ReadWord(a + 1 + uint32(i))
		vals[i] = t.HBM.ReadWord(a + 1 + Fanout + uint32(i))
	}
	return isLeaf, keys, vals
}

// childFor returns the child slot to descend into when looking for the
// first entry >= key: the last child whose separator is strictly below key.
// Duplicates of key may spill backward across a leaf boundary (the previous
// leaf can end with copies of key), so descending on "separator < key"
// rather than "separator <= key" is what keeps duplicate runs reachable;
// the forward leaf scan skips the few smaller keys it lands on.
func childFor(keys []uint32, key uint32) int {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Lookup returns every value stored under key (reference implementation).
func (t *Tree) Lookup(key uint32) []uint32 {
	var out []uint32
	for _, kv := range t.Range(key, key) {
		out = append(out, kv.Val)
	}
	return out
}

// Range returns all entries with lo <= key <= hi in key order. It descends
// to the first candidate leaf, then scans contiguous leaves — the dense
// layout bulk loading buys.
func (t *Tree) Range(lo, hi uint32) []KV {
	if t.Len == 0 || lo > hi || hi < t.MinKey || lo > t.MaxKey {
		return nil
	}
	idx := t.Root
	for {
		isLeaf, keys, vals := t.node(idx)
		if isLeaf {
			break
		}
		idx = vals[childFor(keys, lo)]
	}
	var out []KV
	for leaf := idx; leaf < t.LeafCount; leaf++ {
		isLeaf, keys, vals := t.node(leaf)
		if !isLeaf {
			panic(fmt.Sprintf("btree: node %d expected leaf", leaf))
		}
		for i, k := range keys {
			if k > hi {
				return out
			}
			if k >= lo {
				out = append(out, KV{k, vals[i]})
			}
		}
	}
	return out
}

// Items streams every entry in key order (used by LSM merges).
func (t *Tree) Items() []KV {
	if t.Len == 0 {
		return nil
	}
	out := make([]KV, 0, t.Len)
	for leaf := uint32(0); leaf < t.LeafCount; leaf++ {
		_, keys, vals := t.node(leaf)
		for i := range keys {
			out = append(out, KV{keys[i], vals[i]})
		}
	}
	return out
}
