package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"aurochs/internal/dram"
)

func buildRandom(t *testing.T, n int, keyMod uint32, seed int64) (*Tree, []KV) {
	t.Helper()
	h := dram.New(dram.DefaultConfig())
	rng := rand.New(rand.NewSource(seed))
	items := make([]KV, n)
	for i := range items {
		items[i] = KV{Key: rng.Uint32() % keyMod, Val: uint32(i)}
	}
	tr := Build(h, 4096, append([]KV(nil), items...))
	return tr, items
}

func TestBuildAndLookup(t *testing.T) {
	tr, items := buildRandom(t, 5000, 2000, 1)
	want := map[uint32][]uint32{}
	for _, kv := range items {
		want[kv.Key] = append(want[kv.Key], kv.Val)
	}
	for k, vs := range want {
		got := tr.Lookup(k)
		if len(got) != len(vs) {
			t.Fatalf("key %d: %d values, want %d", k, len(got), len(vs))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("key %d: %v want %v", k, got, vs)
			}
		}
	}
	if got := tr.Lookup(2001); got != nil {
		t.Errorf("absent key returned %v", got)
	}
}

func TestRangeMatchesReference(t *testing.T) {
	tr, items := buildRandom(t, 3000, 10000, 2)
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	if err := quick.Check(func(a, b uint32) bool {
		lo, hi := a%11000, b%11000
		if lo > hi {
			lo, hi = hi, lo
		}
		got := tr.Range(lo, hi)
		want := 0
		for _, kv := range items {
			if kv.Key >= lo && kv.Key <= hi {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Key > got[i].Key {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	empty := Build(h, 0, nil)
	if empty.Range(0, ^uint32(0)) != nil || empty.Lookup(5) != nil {
		t.Error("empty tree returned entries")
	}
	one := Build(h, 4096, []KV{{Key: 7, Val: 9}})
	if got := one.Lookup(7); len(got) != 1 || got[0] != 9 {
		t.Errorf("single: %v", got)
	}
	if one.Height != 1 || one.Nodes != 1 {
		t.Errorf("single-entry tree: height=%d nodes=%d", one.Height, one.Nodes)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	for _, n := range []int{16, 256, 4096, 65536} {
		h := dram.New(dram.DefaultConfig())
		items := make([]KV, n)
		for i := range items {
			items[i] = KV{Key: uint32(i), Val: uint32(i)}
		}
		tr := Build(h, 0, items)
		wantH := 1
		for c := (n + Fanout - 1) / Fanout; c > 1; c = (c + Fanout - 1) / Fanout {
			wantH++
		}
		if n <= Fanout {
			wantH = 1
		}
		if tr.Height != wantH {
			t.Errorf("n=%d: height %d, want %d", n, tr.Height, wantH)
		}
		// Every key present.
		for _, k := range []uint32{0, uint32(n / 2), uint32(n - 1)} {
			if len(tr.Lookup(k)) != 1 {
				t.Errorf("n=%d: key %d missing", n, k)
			}
		}
	}
}

func TestUnsortedInputSorted(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	tr := Build(h, 0, []KV{{5, 50}, {1, 10}, {3, 30}, {2, 20}, {4, 40}})
	items := tr.Items()
	for i := 1; i < len(items); i++ {
		if items[i-1].Key > items[i].Key {
			t.Fatal("leaves not sorted")
		}
	}
	if tr.MinKey != 1 || tr.MaxKey != 5 {
		t.Errorf("bounds %d..%d", tr.MinKey, tr.MaxKey)
	}
}

func TestItemsRoundTrip(t *testing.T) {
	tr, items := buildRandom(t, 1000, 1<<30, 3)
	got := tr.Items()
	if len(got) != len(items) {
		t.Fatalf("items: %d want %d", len(got), len(items))
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	for i := range got {
		if got[i].Key != items[i].Key {
			t.Fatalf("item %d key %d want %d", i, got[i].Key, items[i].Key)
		}
	}
}
