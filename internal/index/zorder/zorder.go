// Package zorder implements the Morton (Z-order) space-filling curve used
// to impose a locality-preserving linear order on two-dimensional keys
// (paper §IV-C): R-tree bulk loading transforms coordinates to the Z-curve,
// sorts on the Z-value, and packs leaves in that order.
package zorder

// spread distributes the low 16 bits of v into the even bit positions.
func spread(v uint32) uint32 {
	v &= 0xFFFF
	v = (v | v<<8) & 0x00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// compact inverts spread.
func compact(v uint32) uint32 {
	v &= 0x55555555
	v = (v | v>>1) & 0x33333333
	v = (v | v>>2) & 0x0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF
	v = (v | v>>8) & 0x0000FFFF
	return v
}

// Encode interleaves two 16-bit coordinates into a 32-bit Z-value, x in
// the even bits and y in the odd bits.
func Encode(x, y uint16) uint32 {
	return spread(uint32(x)) | spread(uint32(y))<<1
}

// Decode inverts Encode.
func Decode(z uint32) (x, y uint16) {
	return uint16(compact(z)), uint16(compact(z >> 1))
}

// Quantize maps a coordinate in [0, max] onto the 16-bit curve grid.
func Quantize(v, max uint32) uint16 {
	if max == 0 {
		return 0
	}
	if v > max {
		v = max
	}
	return uint16(uint64(v) * 0xFFFF / uint64(max))
}
