package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	if err := quick.Check(func(x, y uint16) bool {
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint16
		z    uint32
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{0xFFFF, 0xFFFF, 0xFFFFFFFF},
	}
	for _, c := range cases {
		if z := Encode(c.x, c.y); z != c.z {
			t.Errorf("Encode(%d,%d)=%d, want %d", c.x, c.y, z, c.z)
		}
	}
}

// TestLocality: points close in space should mostly be close on the curve —
// check that a small square's Z-range is far smaller than the full range.
func TestLocality(t *testing.T) {
	min, max := ^uint32(0), uint32(0)
	for dx := uint16(0); dx < 8; dx++ {
		for dy := uint16(0); dy < 8; dy++ {
			z := Encode(1024+dx, 2048+dy)
			if z < min {
				min = z
			}
			if z > max {
				max = z
			}
		}
	}
	if span := max - min; span > 1<<12 {
		t.Errorf("8x8 square spans %d Z-values; locality broken", span)
	}
}

func TestQuantize(t *testing.T) {
	if Quantize(0, 1000) != 0 {
		t.Error("zero quantizes nonzero")
	}
	if Quantize(1000, 1000) != 0xFFFF {
		t.Error("max must hit the grid ceiling")
	}
	if Quantize(2000, 1000) != 0xFFFF {
		t.Error("out-of-range must clamp")
	}
	if Quantize(5, 0) != 0 {
		t.Error("max=0 must be safe")
	}
	if a, b := Quantize(250, 1000), Quantize(750, 1000); a >= b {
		t.Error("quantization not monotone")
	}
}
