// Package rtree implements the paper's packed R-tree (§IV-C, fig. 9):
// two-dimensional keys are linearized on the Z-order curve, sorted, and
// bulk-loaded bottom-up; a streaming reduction builds each internal level
// by accumulating children's bounding rectangles. Nodes allow overlapping
// rectangles, so searches may take multiple paths to the leaves — the
// fork-parallel walk Aurochs' threading model is built for.
package rtree

import (
	"sort"

	"aurochs/internal/dram"
	"aurochs/internal/index/zorder"
)

// Fanout is the entries per node; 8 five-word entries plus a header keep a
// node at 164 B, a few HBM bursts.
const Fanout = 8

// NodeWords is the DRAM footprint of one node:
// word 0: nentries<<1 | isLeaf; then Fanout entries of
// [minX, minY, maxX, maxY, ptr] (ptr = child node index, or payload id in
// a leaf).
const NodeWords = 1 + 5*Fanout

// Rect is an axis-aligned rectangle (inclusive bounds).
type Rect struct {
	MinX, MinY, MaxX, MaxY uint32
}

// Intersects reports rectangle overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether the point (x,y) lies inside r.
func (r Rect) Contains(x, y uint32) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// union grows r to cover o.
func (r Rect) union(o Rect) Rect {
	if o.MinX < r.MinX {
		r.MinX = o.MinX
	}
	if o.MinY < r.MinY {
		r.MinY = o.MinY
	}
	if o.MaxX > r.MaxX {
		r.MaxX = o.MaxX
	}
	if o.MaxY > r.MaxY {
		r.MaxY = o.MaxY
	}
	return r
}

// Entry is one indexed spatial object.
type Entry struct {
	Rect Rect
	ID   uint32
}

// Tree is an immutable packed R-tree in DRAM.
type Tree struct {
	HBM    *dram.HBM
	Base   uint32
	Root   uint32
	Nodes  uint32
	Height int
	Len    int
	// Bounds is the root MBR.
	Bounds Rect
	// MaxCoord is the coordinate ceiling used for Z-quantization.
	MaxCoord uint32
}

// NodeAddr returns the word address of node idx.
func (t *Tree) NodeAddr(idx uint32) uint32 { return t.Base + idx*NodeWords }

// WordsUsed returns the DRAM words the tree occupies.
func (t *Tree) WordsUsed() uint32 { return t.Nodes * NodeWords }

// Build bulk-loads entries into a new tree at base. maxCoord is the
// largest coordinate value (for Z-curve quantization).
func Build(h *dram.HBM, base uint32, entries []Entry, maxCoord uint32) *Tree {
	t := &Tree{HBM: h, Base: base, Len: len(entries), MaxCoord: maxCoord}
	writeNode := func(idx uint32, isLeaf bool, ents []Entry) Rect {
		a := t.NodeAddr(idx)
		flag := uint32(0)
		if isLeaf {
			flag = 1
		}
		h.WriteWord(a, uint32(len(ents))<<1|flag)
		mbr := ents[0].Rect
		for i := 0; i < Fanout; i++ {
			var e Entry
			if i < len(ents) {
				e = ents[i]
				mbr = mbr.union(e.Rect)
			}
			w := a + 1 + uint32(i)*5
			h.WriteWord(w, e.Rect.MinX)
			h.WriteWord(w+1, e.Rect.MinY)
			h.WriteWord(w+2, e.Rect.MaxX)
			h.WriteWord(w+3, e.Rect.MaxY)
			h.WriteWord(w+4, e.ID)
		}
		return mbr
	}

	if len(entries) == 0 {
		h.WriteWord(base, 1)
		t.Nodes, t.Root, t.Height = 1, 0, 1
		return t
	}

	// Linearize on the Z-curve of the rectangle centers.
	sorted := append([]Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		zi := zorder.Encode(
			zorder.Quantize((sorted[i].Rect.MinX+sorted[i].Rect.MaxX)/2, maxCoord),
			zorder.Quantize((sorted[i].Rect.MinY+sorted[i].Rect.MaxY)/2, maxCoord))
		zj := zorder.Encode(
			zorder.Quantize((sorted[j].Rect.MinX+sorted[j].Rect.MaxX)/2, maxCoord),
			zorder.Quantize((sorted[j].Rect.MinY+sorted[j].Rect.MaxY)/2, maxCoord))
		return zi < zj
	})

	next := uint32(0)
	var level []Entry // entries describing the current level's nodes
	for i := 0; i < len(sorted); i += Fanout {
		end := i + Fanout
		if end > len(sorted) {
			end = len(sorted)
		}
		mbr := writeNode(next, true, sorted[i:end])
		level = append(level, Entry{Rect: mbr, ID: next})
		next++
	}
	t.Height = 1
	for len(level) > 1 {
		var up []Entry
		for i := 0; i < len(level); i += Fanout {
			end := i + Fanout
			if end > len(level) {
				end = len(level)
			}
			mbr := writeNode(next, false, level[i:end])
			up = append(up, Entry{Rect: mbr, ID: next})
			next++
		}
		level = up
		t.Height++
	}
	t.Root = level[0].ID
	t.Bounds = level[0].Rect
	t.Nodes = next
	return t
}

// node reads a node functionally.
func (t *Tree) node(idx uint32) (isLeaf bool, ents []Entry) {
	a := t.NodeAddr(idx)
	hdr := t.HBM.ReadWord(a)
	n := int(hdr >> 1)
	isLeaf = hdr&1 == 1
	ents = make([]Entry, n)
	for i := 0; i < n; i++ {
		w := a + 1 + uint32(i)*5
		ents[i] = Entry{
			Rect: Rect{
				MinX: t.HBM.ReadWord(w), MinY: t.HBM.ReadWord(w + 1),
				MaxX: t.HBM.ReadWord(w + 2), MaxY: t.HBM.ReadWord(w + 3),
			},
			ID: t.HBM.ReadWord(w + 4),
		}
	}
	return isLeaf, ents
}

// Window returns the IDs of all entries whose rectangle intersects q
// (reference implementation for the fabric kernel and the CPU baseline).
func (t *Tree) Window(q Rect) []uint32 {
	if t.Len == 0 {
		return nil
	}
	var out []uint32
	stack := []uint32{t.Root}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		isLeaf, ents := t.node(idx)
		for _, e := range ents {
			if !e.Rect.Intersects(q) {
				continue
			}
			if isLeaf {
				out = append(out, e.ID)
			} else {
				stack = append(stack, e.ID)
			}
		}
	}
	return out
}

// NodesVisited counts the nodes a window query touches — the work metric
// behind the O(log n) spatial-join scaling of fig. 11b.
func (t *Tree) NodesVisited(q Rect) int {
	if t.Len == 0 {
		return 0
	}
	n := 0
	stack := []uint32{t.Root}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n++
		isLeaf, ents := t.node(idx)
		for _, e := range ents {
			if e.Rect.Intersects(q) && !isLeaf {
				stack = append(stack, e.ID)
			}
		}
	}
	return n
}
