package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aurochs/internal/dram"
)

func randomPoints(n int, maxCoord uint32, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		x, y := rng.Uint32()%maxCoord, rng.Uint32()%maxCoord
		out[i] = Entry{Rect: Rect{x, y, x, y}, ID: uint32(i)}
	}
	return out
}

func refWindow(entries []Entry, q Rect) map[uint32]bool {
	out := map[uint32]bool{}
	for _, e := range entries {
		if e.Rect.Intersects(q) {
			out[e.ID] = true
		}
	}
	return out
}

func TestWindowMatchesReference(t *testing.T) {
	const maxC = 100000
	entries := randomPoints(5000, maxC, 1)
	tr := Build(dram.New(dram.DefaultConfig()), 0, entries, maxC)
	if err := quick.Check(func(ax, ay, w, h uint32) bool {
		q := Rect{ax % maxC, ay % maxC, 0, 0}
		q.MaxX = q.MinX + w%(maxC/10)
		q.MaxY = q.MinY + h%(maxC/10)
		want := refWindow(entries, q)
		got := tr.Window(q)
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRectEntriesOverlap(t *testing.T) {
	// Rectangles (not points) with real overlap.
	entries := []Entry{
		{Rect: Rect{0, 0, 10, 10}, ID: 1},
		{Rect: Rect{5, 5, 15, 15}, ID: 2},
		{Rect: Rect{20, 20, 30, 30}, ID: 3},
	}
	tr := Build(dram.New(dram.DefaultConfig()), 0, entries, 100)
	got := tr.Window(Rect{8, 8, 9, 9})
	if len(got) != 2 {
		t.Fatalf("window hit %v, want ids 1,2", got)
	}
	if got := tr.Window(Rect{40, 40, 50, 50}); len(got) != 0 {
		t.Errorf("empty window returned %v", got)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(dram.New(dram.DefaultConfig()), 0, nil, 100)
	if got := tr.Window(Rect{0, 0, 100, 100}); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
}

func TestBoundsCoverEverything(t *testing.T) {
	entries := randomPoints(1000, 50000, 2)
	tr := Build(dram.New(dram.DefaultConfig()), 0, entries, 50000)
	for _, e := range entries[:50] {
		if !tr.Bounds.Intersects(e.Rect) {
			t.Fatalf("root MBR %+v misses entry %+v", tr.Bounds, e)
		}
	}
	got := tr.Window(tr.Bounds)
	if len(got) != len(entries) {
		t.Fatalf("full-bounds window: %d of %d", len(got), len(entries))
	}
}

// TestLogarithmicVisits: a small window on a large index must touch far
// fewer nodes than the tree holds — the asymptotic advantage of fig. 11b.
func TestLogarithmicVisits(t *testing.T) {
	const maxC = 1 << 20
	entries := randomPoints(20000, maxC, 3)
	tr := Build(dram.New(dram.DefaultConfig()), 0, entries, maxC)
	visited := tr.NodesVisited(Rect{maxC / 2, maxC / 2, maxC/2 + 1000, maxC/2 + 1000})
	if visited > int(tr.Nodes)/10 {
		t.Errorf("small window visited %d of %d nodes", visited, tr.Nodes)
	}
}

func TestHeightGrowth(t *testing.T) {
	small := Build(dram.New(dram.DefaultConfig()), 0, randomPoints(Fanout, 100, 4), 100)
	big := Build(dram.New(dram.DefaultConfig()), 0, randomPoints(4096, 1<<20, 5), 1<<20)
	if small.Height != 1 {
		t.Errorf("fanout entries: height %d", small.Height)
	}
	if big.Height < 3 {
		t.Errorf("4096 entries at fanout 8: height %d", big.Height)
	}
}

func TestRectPredicates(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if !a.Intersects(Rect{10, 10, 20, 20}) {
		t.Error("touching rectangles must intersect (inclusive bounds)")
	}
	if a.Intersects(Rect{11, 0, 20, 10}) {
		t.Error("disjoint rectangles intersect")
	}
	if !a.Contains(10, 0) || a.Contains(11, 0) {
		t.Error("contains broken")
	}
}
