package lsm

import (
	"math/rand"
	"sort"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/index/btree"
)

func newIndex() *Index {
	return New(dramDev(), 0, 1<<26)
}

func dramDev() *dram.HBM { return dram.New(dram.DefaultConfig()) }

func TestInsertAndLookup(t *testing.T) {
	x := newIndex()
	rng := rand.New(rand.NewSource(1))
	want := map[uint32][]uint32{}
	for b := 0; b < 20; b++ {
		batch := make([]btree.KV, 100)
		for i := range batch {
			k := rng.Uint32() % 500
			batch[i] = btree.KV{Key: k, Val: uint32(b*100 + i)}
			want[k] = append(want[k], batch[i].Val)
		}
		x.Insert(batch)
	}
	if x.Len() != 2000 {
		t.Fatalf("len=%d", x.Len())
	}
	for k, vs := range want {
		got := x.Lookup(k)
		if len(got) != len(vs) {
			t.Fatalf("key %d: %d values, want %d", k, len(got), len(vs))
		}
	}
}

func TestExponentialInvariant(t *testing.T) {
	x := newIndex()
	for b := 0; b < 64; b++ {
		batch := make([]btree.KV, 32)
		for i := range batch {
			batch[i] = btree.KV{Key: uint32(b*32 + i), Val: 1}
		}
		x.Insert(batch)
	}
	trees := x.Trees()
	for i := 0; i+1 < len(trees); i++ {
		if trees[i].Len >= trees[i+1].Len {
			t.Fatalf("tree %d (%d entries) not smaller than tree %d (%d)", i, trees[i].Len, i+1, trees[i+1].Len)
		}
	}
	// 64 equal batches must collapse into very few trees.
	if len(trees) > 7 {
		t.Errorf("%d trees after 64 equal batches", len(trees))
	}
	if x.MergesDone == 0 {
		t.Error("no merges happened")
	}
}

func TestRangeAcrossTrees(t *testing.T) {
	x := newIndex()
	var all []btree.KV
	rng := rand.New(rand.NewSource(2))
	for b := 0; b < 10; b++ {
		batch := make([]btree.KV, 200)
		for i := range batch {
			batch[i] = btree.KV{Key: rng.Uint32() % 10000, Val: uint32(b)}
			all = append(all, batch[i])
		}
		x.Insert(batch)
	}
	got := x.Range(2500, 7500)
	want := 0
	for _, kv := range all {
		if kv.Key >= 2500 && kv.Key <= 7500 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range: %d want %d", len(got), want)
	}
}

// TestTimePruning: batches arriving in time order mean old trees hold old
// keys; a recent-window query must prune most trees.
func TestTimePruning(t *testing.T) {
	x := newIndex()
	ts := uint32(0)
	// 42 batches: popcount(42)=3, so three trees survive the merge
	// cascade (a power-of-two batch count would collapse to one tree).
	for b := 0; b < 42; b++ {
		batch := make([]btree.KV, 64)
		for i := range batch {
			batch[i] = btree.KV{Key: ts, Val: ts}
			ts++
		}
		x.Insert(batch)
	}
	total := len(x.Trees())
	scanned := x.TreesScanned(ts-64, ts)
	if scanned >= total {
		t.Errorf("recent-window query scanned all %d trees", total)
	}
	got := x.Range(ts-64, ts)
	if len(got) != 64 {
		t.Fatalf("recent window returned %d entries", len(got))
	}
}

// TestWriteAmplificationTradeoff: larger batches must reduce total words
// written per entry (the paper's batch-size trade-off between update
// latency and work amortization).
func TestWriteAmplificationTradeoff(t *testing.T) {
	const total = 8192
	run := func(batchSize int) float64 {
		x := newIndex()
		rng := rand.New(rand.NewSource(3))
		for off := 0; off < total; off += batchSize {
			batch := make([]btree.KV, batchSize)
			for i := range batch {
				batch[i] = btree.KV{Key: rng.Uint32(), Val: 1}
			}
			x.Insert(batch)
		}
		return float64(x.WordsWritten) / float64(total)
	}
	small, large := run(64), run(2048)
	if large >= small {
		t.Errorf("write amplification: batch=2048 wrote %.1f words/entry, batch=64 %.1f — amortization missing", large, small)
	}
}

func TestEmptyBatchNoop(t *testing.T) {
	x := newIndex()
	x.Insert(nil)
	if x.Len() != 0 || len(x.Trees()) != 0 {
		t.Error("empty insert changed the index")
	}
}

func TestLookupSortedWithinTree(t *testing.T) {
	x := newIndex()
	batch := make([]btree.KV, 500)
	for i := range batch {
		batch[i] = btree.KV{Key: uint32(500 - i), Val: uint32(i)}
	}
	x.Insert(batch)
	got := x.Range(0, 1000)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
		t.Error("single-tree range not sorted")
	}
}

// fixedCost prices sorts super-linearly and merges linearly, enough to
// exercise the accounting.
type fixedCost struct{}

func (fixedCost) SortCycles(n int) float64     { return float64(n) * 2 }
func (fixedCost) MergeCycles(n, m int) float64 { return float64(n + m) }

func TestMaintenanceCostAccumulates(t *testing.T) {
	x := NewWithCost(dramDev(), 0, 1<<26, fixedCost{})
	for b := 0; b < 8; b++ {
		batch := make([]btree.KV, 100)
		for i := range batch {
			batch[i] = btree.KV{Key: uint32(b*100 + i), Val: 1}
		}
		x.Insert(batch)
	}
	// 8 batches × 200 sort cycles plus merge passes.
	if x.MaintenanceCycles <= 8*200 {
		t.Fatalf("maintenance cycles %.0f; merges not priced", x.MaintenanceCycles)
	}
	plain := New(dramDev(), 0, 1<<26)
	plain.Insert([]btree.KV{{Key: 1, Val: 1}})
	if plain.MaintenanceCycles != 0 {
		t.Error("cost accrued without a model")
	}
}
