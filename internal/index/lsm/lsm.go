// Package lsm implements the paper's log-structured merge-tree index
// (§IV-B): an append-only list of exponentially growing immutable B-trees.
// Batches of records bulk-load into a new small tree; when the newest tree
// grows to the size of its neighbor, both merge (a linear pass, since
// leaves are sorted) into a fresh tree, and one lock-free head update
// publishes the replacement. Readers traverse whatever immutable trees they
// see — natural concurrency with no locking.
//
// For time-series data the tree list doubles as a secondary index on time:
// each tree records its key range, so range queries prune whole trees.
package lsm

import (
	"aurochs/internal/dram"
	"aurochs/internal/index/btree"
)

// CostModel prices index maintenance on the accelerator: bulk loads run
// the Gorgon merge sort, tree merges a linear streaming pass (paper §IV-B
// "lsm trees require only merge sort to implement"). perfmodel provides a
// calibrated implementation.
type CostModel interface {
	// SortCycles prices bulk-loading a batch of n entries.
	SortCycles(n int) float64
	// MergeCycles prices merging two sorted runs of n and m entries.
	MergeCycles(n, m int) float64
}

// Index is an LSM list of immutable B-trees, newest first.
type Index struct {
	hbm  *dram.HBM
	base uint32 // arena start
	next uint32 // bump pointer within the arena
	cap  uint32 // arena words
	cost CostModel

	trees []*btree.Tree // newest first

	// MergesDone counts tree merges (exposed for benchmarks/tests).
	MergesDone int
	// WordsWritten tallies DRAM words written by loads and merges — the
	// write-amplification measure the batch-size trade-off controls.
	WordsWritten uint64
	// MaintenanceCycles accumulates the CostModel's price of all inserts
	// and merges (zero without a cost model).
	MaintenanceCycles float64
}

// New creates an empty index with a DRAM arena of cap words at base.
// The arena is append-only; superseded trees are not reclaimed (the
// paper's structures are persistent/append-only by design).
func New(h *dram.HBM, base, cap uint32) *Index {
	return &Index{hbm: h, base: base, next: base, cap: cap}
}

// NewWithCost is New plus a maintenance cost model; every insert and merge
// adds its accelerator price to MaintenanceCycles.
func NewWithCost(h *dram.HBM, base, cap uint32, cost CostModel) *Index {
	x := New(h, base, cap)
	x.cost = cost
	return x
}

// Len returns the total indexed entries.
func (x *Index) Len() int {
	n := 0
	for _, t := range x.trees {
		n += t.Len
	}
	return n
}

// Trees returns the live trees, newest first.
func (x *Index) Trees() []*btree.Tree {
	return append([]*btree.Tree(nil), x.trees...)
}

// alloc reserves words in the arena.
func (x *Index) alloc(words uint32) uint32 {
	if x.next+words > x.base+x.cap {
		panic("lsm: arena exhausted")
	}
	a := x.next
	x.next += words
	return a
}

// Insert bulk-loads a batch as a new tree, then restores the exponential
// size invariant by merging the newest tree into its neighbor while it is
// at least as large (paper: "recursively merging the list of trees to
// maintain the exponential size difference").
func (x *Index) Insert(batch []btree.KV) {
	if len(batch) == 0 {
		return
	}
	if x.cost != nil {
		x.MaintenanceCycles += x.cost.SortCycles(len(batch))
	}
	t := x.build(batch)
	x.trees = append([]*btree.Tree{t}, x.trees...)
	for len(x.trees) >= 2 && x.trees[0].Len >= x.trees[1].Len {
		if x.cost != nil {
			x.MaintenanceCycles += x.cost.MergeCycles(x.trees[0].Len, x.trees[1].Len)
		}
		merged := x.mergeTrees(x.trees[0], x.trees[1])
		x.trees = append([]*btree.Tree{merged}, x.trees[2:]...)
		x.MergesDone++
	}
}

func (x *Index) build(items []btree.KV) *btree.Tree {
	// Conservative sizing: one node per Fanout entries per level.
	nodes := uint32(1)
	for lvl := (len(items) + btree.Fanout - 1) / btree.Fanout; lvl > 1; lvl = (lvl + btree.Fanout - 1) / btree.Fanout {
		nodes += uint32(lvl)
	}
	base := x.alloc((nodes + 1) * btree.NodeWords)
	t := btree.Build(x.hbm, base, items)
	x.WordsWritten += uint64(t.WordsUsed())
	return t
}

// mergeTrees merges two trees' sorted leaves in linear time and rebuilds
// the internal nodes from scratch (the Gorgon merge-sort kernel in
// hardware; a two-way merge here).
func (x *Index) mergeTrees(a, b *btree.Tree) *btree.Tree {
	ia, ib := a.Items(), b.Items()
	out := make([]btree.KV, 0, len(ia)+len(ib))
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		if ia[i].Key <= ib[j].Key {
			out = append(out, ia[i])
			i++
		} else {
			out = append(out, ib[j])
			j++
		}
	}
	out = append(out, ia[i:]...)
	out = append(out, ib[j:]...)
	return x.build(out)
}

// Lookup returns every value stored under key across all trees.
func (x *Index) Lookup(key uint32) []uint32 {
	var out []uint32
	for _, t := range x.trees {
		out = append(out, t.Lookup(key)...)
	}
	return out
}

// Range returns all entries in [lo, hi] across all trees, pruning trees
// whose key range cannot intersect. Order is per-tree (newest tree first);
// callers needing global order sort the result.
func (x *Index) Range(lo, hi uint32) []btree.KV {
	var out []btree.KV
	for _, t := range x.trees {
		if t.Len == 0 || hi < t.MinKey || lo > t.MaxKey {
			continue
		}
		out = append(out, t.Range(lo, hi)...)
	}
	return out
}

// TreesScanned reports how many trees a [lo,hi] query must visit after
// pruning — the "secondary index on time" effect (paper §IV-B).
func (x *Index) TreesScanned(lo, hi uint32) int {
	n := 0
	for _, t := range x.trees {
		if t.Len > 0 && hi >= t.MinKey && lo <= t.MaxKey {
			n++
		}
	}
	return n
}
