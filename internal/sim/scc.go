package sim

// StronglyConnected exposes the shard planner's iterative Tarjan SCC
// (condense, shard.go) as a reusable primitive: the fabric's structural
// checker and the token-flow prover (internal/analysis/flow) condense the
// same link graphs the planner stages, and sharing one implementation
// means one determinism contract — roots are tried in ascending index
// order, edges in list order, and components are numbered in Tarjan
// emission order, which is a reverse topological order of the
// condensation (every edge of the condensed DAG points from a
// higher-numbered component to a lower-numbered one).
//
// The return is the component index per node and the component count.
func StronglyConnected(adj [][]int32) ([]int32, int) {
	r := condense(adj)
	return r.of, r.count
}
