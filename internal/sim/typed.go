package sim

import "aurochs/internal/record"

// TypedPorts is the schema-aware extension of InputPorts/OutputPorts. A
// component that implements it declares, per port, the record schema it
// consumes (InputSchemas, parallel to InputLinks) and produces
// (OutputSchemas, parallel to OutputLinks). The fabric verifier
// (fabric.Graph.Check / Prove) propagates these declarations across links:
// a link is well-typed when the producer's output schema is assignable to
// every consumer's input schema under record.Schema.AssignableTo — the
// consumer's fields must be a positional prefix of what the producer
// guarantees.
//
// The contract mirrors the link lists exactly:
//
//   - An empty (or nil) schema slice means the component is untyped on that
//     side; its links are simply not schema-checked. This keeps TypedPorts
//     opt-in per component.
//   - A non-empty slice must have exactly one entry per link in the
//     corresponding port list — including nil-link positions being omitted
//     the same way the port list omits them. A length mismatch is a hard
//     wiring error (fabric.DiagSchemaPorts), never a silent skip.
//   - A nil *record.Schema entry leaves that single port untyped while the
//     others stay checked.
type TypedPorts interface {
	// InputSchemas returns the declared schema for each link in
	// InputLinks(), or an empty slice if the inputs are untyped.
	InputSchemas() []*record.Schema
	// OutputSchemas returns the declared schema for each link in
	// OutputLinks(), or an empty slice if the outputs are untyped.
	OutputSchemas() []*record.Schema
}

// ReorderClass classifies how a component's externally observable effects
// depend on the order in which threads (records) reach it. The paper's
// contract — "thread order is deliberately undefined" (§II) — licenses the
// scratchpad to reorder requests for bank-conflict avoidance; that liberty
// is only sound when every cross-thread effect falls in one of the
// order-insensitive classes below, or is explicitly waived.
type ReorderClass int

const (
	// ReorderPure: no cross-thread state at all — reads, stateless maps,
	// routing. Any interleaving gives identical results.
	ReorderPure ReorderClass = iota
	// ReorderCommutative: updates combine with an associative+commutative
	// operator (add is the canonical case), so every interleaving reaches
	// the same final state even though intermediate responses differ.
	ReorderCommutative
	// ReorderIdempotent: commutative and additionally absorbing
	// (min/max/or): replaying or ignoring duplicates cannot change the
	// fixed point. Strictly stronger than ReorderCommutative.
	ReorderIdempotent
	// ReorderOrderDependent: last-writer-wins or read-modify-write effects
	// whose result depends on arrival order (plain writes, CAS, XCHG).
	// Safe only when addresses are disjoint per thread or an explicit
	// waiver documents why the order cannot be observed.
	ReorderOrderDependent
)

// String renders the class for diagnostics.
func (c ReorderClass) String() string {
	switch c {
	case ReorderPure:
		return "pure"
	case ReorderCommutative:
		return "commutative"
	case ReorderIdempotent:
		return "idempotent"
	case ReorderOrderDependent:
		return "order-dependent"
	default:
		return "reorder-class-invalid"
	}
}

// ReorderDecl is a component's self-declaration to the reorder-safety
// prover: what class of cross-thread effect it has, and whether it can
// itself emit responses out of thread order.
type ReorderDecl struct {
	// Class is the strongest statement the component can make about its
	// cross-thread state updates.
	Class ReorderClass
	// Reorders reports whether the component may emit outputs in a
	// different order than inputs arrived (the Aurochs scratchpad with
	// InOrder=false, the out-of-order DRAM node). Downstream
	// order-dependent consumers of a reordering producer are exactly the
	// hazard the prover rejects.
	Reorders bool
	// Detail names the operation for diagnostics, e.g. "FAA" or
	// "Write(disjoint addrs)".
	Detail string
	// Waiver, when non-empty, accepts an order-dependent effect with a
	// human-written justification (the graph-level analogue of a
	// lint:orderdep-ok comment). Waived declarations surface in
	// ProofReport.Waived instead of failing the proof.
	Waiver string
}

// ReorderSemantics is implemented by components that touch cross-thread
// state or reorder their streams, so the fabric prover can check the
// undefined-thread-order contract statically. Components that do not
// implement it are treated as pure, in-order plumbing.
type ReorderSemantics interface {
	Reordering() ReorderDecl
}
