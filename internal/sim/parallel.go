package sim

import (
	"runtime"
	"sort"
	"sync/atomic"
)

// Parallel tick kernel. Registered links make tick order unobservable
// (package doc), so components may tick concurrently within a cycle — with
// two provisos the scheduler enforces statically, before the first cycle:
//
//  1. Components touching shared state outside links (one scratchpad Mem
//     behind several tiles, the HBM behind every DRAM node, a LoopCtl
//     behind a loop's members) must stay on one worker, in registration
//     order, so their interleaving matches the serial kernel exactly.
//     Components declare this state via StateSharer; the scheduler unions
//     components over the declared keys.
//  2. A link's endpoints mutate the link from both sides (producer pushes,
//     consumer pops — disjoint fields, safe concurrently), but two
//     producers or two consumers of the same link would race, so the
//     scheduler unions same-side endpoints. Components without port
//     interfaces are unioned into one conservative group.
//
// Each cycle: the coordinator rotates the wake sets (wake.go), broadcasts
// the cycle number, and every worker walks its bin in ascending index
// order, examining only members whose wake bit is set. Because a bin is a
// union of whole shared-state groups, every same-cycle partner wake is an
// intra-bin event, handled by the owning worker exactly as the serial
// drain would — the wake discipline never crosses a bin mid-cycle. Wake
// bitmap words are shared between bins, so workers touch them with atomic
// ops; the coordinator's serial phases (set rotation, timer registration,
// link commit) are ordered against the workers by the channel barrier. A
// barrier waits for all workers, then link commit runs serially. Because
// commit is the only place credits return and arrivals surface, the
// barrier placement — after all ticks, before commit — is what preserves
// the synchronous-clock semantics.
type workerPool struct {
	sys    *System
	sched  *scheduler
	bins   [][]int
	start  []chan int64
	done   chan struct{}
	noSkip bool

	// Per-bin outboxes, written by the owning worker before it signals
	// done and read by the coordinator after the barrier: components that
	// went to sleep this cycle (with their wake hints) and the net change
	// to the not-Done census.
	sleeps  [][]timerEnt
	doneDel []int
}

// newWorkerPool partitions s.comps into independent groups, packs the
// groups onto opt workers, and starts the worker goroutines.
func newWorkerPool(s *System, sched *scheduler, workers int, noSkip bool) *workerPool {
	bins := shardComponents(s, workers)
	p := &workerPool{
		sys:     s,
		sched:   sched,
		bins:    bins,
		done:    make(chan struct{}, len(bins)),
		noSkip:  noSkip,
		sleeps:  make([][]timerEnt, len(bins)),
		doneDel: make([]int, len(bins)),
	}
	for w, bin := range bins {
		ch := make(chan int64)
		p.start = append(p.start, ch)
		go p.worker(w, bin, ch)
	}
	return p
}

// worker processes one bin each cycle: ascending walk over the bin's
// members, examining those with a set wake bit, reproducing the serial
// drain's decisions (idle→sleep, else tick + re-arm + partner wakes).
func (p *workerPool) worker(w int, bin []int, start <-chan int64) {
	s := p.sys
	sc := p.sched
	for cycle := range start {
		sleeps := p.sleeps[w][:0]
		delta := 0
		for _, i := range bin {
			word, mask := &sc.awake[i>>6], uint64(1)<<uint(i&63)
			if atomic.LoadUint64(word)&mask == 0 {
				continue
			}
			atomic.AndUint64(word, ^mask)
			idler := s.idlers[i]
			if !p.noSkip && idler != nil && idler.Idle(cycle) {
				if !sc.poll.get(i) {
					if hint := sc.hinters[i].WakeHint(cycle); hint != WakeNever {
						sleeps = append(sleeps, timerEnt{comp: int32(i), at: hint})
					}
				}
				continue
			}
			s.comps[i].Tick(cycle)
			dw := &sc.doneBits[i>>6]
			if d := s.comps[i].Done(); d != (atomic.LoadUint64(dw)&mask != 0) {
				if d {
					atomic.OrUint64(dw, mask)
					delta--
				} else {
					atomic.AndUint64(dw, ^mask)
					delta++
				}
			}
			for _, pi := range sc.partners[i] {
				// Partners share a bin with i by construction, so a
				// same-cycle (ahead-of-cursor) wake stays on this worker.
				pw, pm := &sc.awake[pi>>6], uint64(1)<<uint(pi&63)
				if int(pi) <= i {
					pw = &sc.next[pi>>6]
				}
				atomic.OrUint64(pw, pm)
			}
			atomic.OrUint64(&sc.next[i>>6], mask)
		}
		p.sleeps[w] = sleeps
		p.doneDel[w] = delta
		p.done <- struct{}{}
	}
}

// stop terminates the worker goroutines.
func (p *workerPool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}

// stepParallel advances one cycle on the worker pool: broadcast, barrier,
// timer/census merge, serial link commit. Progress detection is identical
// to the serial kernel's — commit's collected per-cycle activity flags.
// hot:path — this is the parallel kernel's per-cycle loop.
func (sc *scheduler) stepParallel(cycle int64, p *workerPool) bool {
	for _, ch := range p.start {
		ch <- cycle
	}
	for range p.start {
		<-p.done
	}
	for w := range p.bins {
		for _, e := range p.sleeps[w] {
			if e.at <= cycle {
				sc.next.set(int(e.comp))
			} else {
				sc.wheel.schedule(cycle, e.comp, e.at)
			}
		}
		sc.notDone += p.doneDel[w]
	}
	return sc.commitLinks(cycle)
}

// autoWorkers resolves RunOptions.Workers auto mode (negative values): use
// up to max workers, but fall back to the serial kernel when the barrier
// cannot pay for itself. The decision is a pure function of the topology
// and GOMAXPROCS — never of simulation results — and both kernels are
// bit-identical anyway, so the fallback is unobservable in outputs.
func (s *System) autoWorkers(max int) int {
	if max < 2 || runtime.GOMAXPROCS(0) < 2 {
		return 1
	}
	// Census threshold: a graph this small cannot amortize a per-cycle
	// barrier no matter how it shards.
	if len(s.comps) < 8 {
		return 1
	}
	bins := shardComponents(s, max)
	if len(bins) < 2 {
		return 1
	}
	// Balance threshold: when one shard holds most of the components the
	// other workers idle at the barrier while it runs serially anyway
	// (hash-aggregate's 0.99x regression was this shape).
	largest := 0
	for _, b := range bins {
		if len(b) > largest {
			largest = len(b)
		}
	}
	if largest*4 > len(s.comps)*3 {
		return 1
	}
	return len(bins)
}

// shardComponents groups components that must share a worker, then packs
// the groups onto at most workers bins, largest groups first. Everything
// here is deterministic: groups are identified by their smallest member
// index, ties break on index, and bin contents are sorted back into
// registration order.
func shardComponents(s *System, workers int) [][]int {
	n := len(s.comps)
	uf := newUnionFind(n)

	// Same-side link endpoints race; union them. (A single producer and a
	// single consumer on one link touch disjoint link state and may run
	// concurrently — that is the whole point of registered links.)
	prod := make(map[*Link][]int)
	cons := make(map[*Link][]int)
	opaque := -1 // first component with no ports and no shared-state claim
	for i, c := range s.comps {
		op, hasOut := c.(OutputPorts)
		ip, hasIn := c.(InputPorts)
		if hasOut {
			for _, l := range op.OutputLinks() {
				if l != nil {
					prod[l] = append(prod[l], i)
				}
			}
		}
		if hasIn {
			for _, l := range ip.InputLinks() {
				if l != nil {
					cons[l] = append(cons[l], i)
				}
			}
		}
		if _, shares := c.(StateSharer); !hasOut && !hasIn && !shares {
			if opaque < 0 {
				opaque = i
			} else {
				uf.union(opaque, i)
			}
		}
	}
	for _, is := range prod { // lint:maprange-ok — union is order-independent
		for k := 1; k < len(is); k++ {
			uf.union(is[0], is[k])
		}
	}
	for _, is := range cons { // lint:maprange-ok — union is order-independent
		for k := 1; k < len(is); k++ {
			uf.union(is[0], is[k])
		}
	}

	// Declared shared state: identity keys union their claimants; a *Link
	// key also unions the claimant with the link's endpoints.
	keyOwner := make(map[any]int)
	for i, c := range s.comps {
		ss, ok := c.(StateSharer)
		if !ok {
			continue
		}
		for _, key := range ss.SharedState() {
			if key == nil {
				continue
			}
			if l, isLink := key.(*Link); isLink {
				for _, j := range prod[l] {
					uf.union(i, j)
				}
				for _, j := range cons[l] {
					uf.union(i, j)
				}
				continue
			}
			if j, seen := keyOwner[key]; seen {
				uf.union(i, j)
			} else {
				keyOwner[key] = i
			}
		}
	}

	// Collect groups in order of their smallest member.
	groupOf := make(map[int][]int)
	var roots []int
	for i := 0; i < n; i++ {
		r := uf.find(i)
		if len(groupOf[r]) == 0 {
			roots = append(roots, r)
		}
		groupOf[r] = append(groupOf[r], i)
	}
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, groupOf[r])
	}

	// Pack groups onto workers: largest first onto the lightest bin. Ties
	// break on first-member index (group) and bin index, so the packing is
	// a pure function of the topology.
	sort.SliceStable(groups, func(a, b int) bool {
		if len(groups[a]) != len(groups[b]) {
			return len(groups[a]) > len(groups[b])
		}
		return groups[a][0] < groups[b][0]
	})
	if workers > len(groups) {
		workers = len(groups)
	}
	bins := make([][]int, workers)
	load := make([]int, workers)
	for _, g := range groups {
		best := 0
		for b := 1; b < workers; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		bins[best] = append(bins[best], g...)
		load[best] += len(g)
	}
	for _, bin := range bins {
		sort.Ints(bin)
	}
	return bins
}

// unionFind is a plain disjoint-set with the deterministic convention that
// the smaller root index wins, so group identities are stable.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
}
