package sim

import "sort"

// Parallel tick kernel. Registered links make tick order unobservable
// (package doc), so components may tick concurrently within a cycle — with
// two provisos the scheduler enforces statically, before the first cycle:
//
//  1. Components touching shared state outside links (one scratchpad Mem
//     behind several tiles, the HBM behind every DRAM node, a LoopCtl
//     behind a loop's members) must stay on one worker, in registration
//     order, so their interleaving matches the serial kernel exactly.
//     Components declare this state via StateSharer; the scheduler unions
//     components over the declared keys.
//  2. A link's endpoints mutate the link from both sides (producer pushes,
//     consumer pops — disjoint fields, safe concurrently), but two
//     producers or two consumers of the same link would race, so the
//     scheduler unions same-side endpoints. Components without port
//     interfaces are unioned into one conservative group.
//
// Each cycle: the coordinator broadcasts the cycle number, every worker
// ticks its components (skipping ones whose Idler proves a no-op), a
// barrier waits for all workers, then link commit runs serially. Because
// commit is the only place credits return and arrivals surface, the
// barrier placement — after all ticks, before commit — is what preserves
// the synchronous-clock semantics.
type workerPool struct {
	start []chan int64
	done  chan struct{}
	live  int
}

// compEntry pairs a component with its pre-resolved optional interfaces so
// the per-cycle loop does no type assertions.
type compEntry struct {
	c    Component
	idle Idler
}

// newWorkerPool partitions s.comps into independent groups, packs the
// groups onto opt.Workers workers, and starts the worker goroutines.
func newWorkerPool(s *System, opt RunOptions) *workerPool {
	bins := shardComponents(s, opt.Workers)
	p := &workerPool{done: make(chan struct{}, len(bins))}
	for _, bin := range bins {
		entries := make([]compEntry, len(bin))
		for i, ci := range bin {
			entries[i] = compEntry{c: s.comps[ci], idle: s.idlers[ci]}
		}
		ch := make(chan int64)
		p.start = append(p.start, ch)
		p.live++
		go func(work []compEntry, start <-chan int64) {
			for cycle := range start {
				for _, e := range work {
					if !opt.NoIdleSkip && e.idle != nil && e.idle.Idle(cycle) {
						continue
					}
					e.c.Tick(cycle)
				}
				p.done <- struct{}{}
			}
		}(entries, ch)
	}
	return p
}

// stop terminates the worker goroutines.
func (p *workerPool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}

// stepParallel advances one cycle on the worker pool: broadcast, barrier,
// serial link commit. Progress detection is identical to the serial
// kernel's — commit's collected per-cycle activity flags.
func (s *System) stepParallel(p *workerPool) bool {
	cycle := s.cycle
	for _, ch := range p.start {
		ch <- cycle
	}
	for i := 0; i < p.live; i++ {
		<-p.done
	}
	moved := false
	for _, l := range s.links {
		if l.commit(cycle) {
			moved = true
		}
	}
	s.cycle++
	return moved
}

// shardComponents groups components that must share a worker, then packs
// the groups onto at most workers bins, largest groups first. Everything
// here is deterministic: groups are identified by their smallest member
// index, ties break on index, and bin contents are sorted back into
// registration order.
func shardComponents(s *System, workers int) [][]int {
	n := len(s.comps)
	uf := newUnionFind(n)

	// Same-side link endpoints race; union them. (A single producer and a
	// single consumer on one link touch disjoint link state and may run
	// concurrently — that is the whole point of registered links.)
	prod := make(map[*Link][]int)
	cons := make(map[*Link][]int)
	opaque := -1 // first component with no ports and no shared-state claim
	for i, c := range s.comps {
		op, hasOut := c.(OutputPorts)
		ip, hasIn := c.(InputPorts)
		if hasOut {
			for _, l := range op.OutputLinks() {
				if l != nil {
					prod[l] = append(prod[l], i)
				}
			}
		}
		if hasIn {
			for _, l := range ip.InputLinks() {
				if l != nil {
					cons[l] = append(cons[l], i)
				}
			}
		}
		if _, shares := c.(StateSharer); !hasOut && !hasIn && !shares {
			if opaque < 0 {
				opaque = i
			} else {
				uf.union(opaque, i)
			}
		}
	}
	for _, is := range prod { // lint:maprange-ok — union is order-independent
		for k := 1; k < len(is); k++ {
			uf.union(is[0], is[k])
		}
	}
	for _, is := range cons { // lint:maprange-ok — union is order-independent
		for k := 1; k < len(is); k++ {
			uf.union(is[0], is[k])
		}
	}

	// Declared shared state: identity keys union their claimants; a *Link
	// key also unions the claimant with the link's endpoints.
	keyOwner := make(map[any]int)
	for i, c := range s.comps {
		ss, ok := c.(StateSharer)
		if !ok {
			continue
		}
		for _, key := range ss.SharedState() {
			if key == nil {
				continue
			}
			if l, isLink := key.(*Link); isLink {
				for _, j := range prod[l] {
					uf.union(i, j)
				}
				for _, j := range cons[l] {
					uf.union(i, j)
				}
				continue
			}
			if j, seen := keyOwner[key]; seen {
				uf.union(i, j)
			} else {
				keyOwner[key] = i
			}
		}
	}

	// Collect groups in order of their smallest member.
	groupOf := make(map[int][]int)
	var roots []int
	for i := 0; i < n; i++ {
		r := uf.find(i)
		if len(groupOf[r]) == 0 {
			roots = append(roots, r)
		}
		groupOf[r] = append(groupOf[r], i)
	}
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, groupOf[r])
	}

	// Pack groups onto workers: largest first onto the lightest bin. Ties
	// break on first-member index (group) and bin index, so the packing is
	// a pure function of the topology.
	sort.SliceStable(groups, func(a, b int) bool {
		if len(groups[a]) != len(groups[b]) {
			return len(groups[a]) > len(groups[b])
		}
		return groups[a][0] < groups[b][0]
	})
	if workers > len(groups) {
		workers = len(groups)
	}
	bins := make([][]int, workers)
	load := make([]int, workers)
	for _, g := range groups {
		best := 0
		for b := 1; b < workers; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		bins[best] = append(bins[best], g...)
		load[best] += len(g)
	}
	for _, bin := range bins {
		sort.Ints(bin)
	}
	return bins
}

// unionFind is a plain disjoint-set with the deterministic convention that
// the smaller root index wins, so group identities are stable.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
}
