package sim

import (
	"runtime"
	"sync/atomic"
)

// Parallel tick kernel. Registered links make tick order unobservable
// (package doc), so components may tick concurrently within a cycle — with
// two provisos the planner (shard.go) enforces statically, before the first
// cycle:
//
//  1. Components touching shared state outside links (one scratchpad Mem
//     behind several tiles, the HBM behind every DRAM node, a LoopCtl
//     behind a loop's members) must stay on one worker, in registration
//     order, so their interleaving matches the serial kernel exactly.
//     Components declare this state via StateSharer; the planner unions
//     components over the declared keys.
//  2. A link's endpoints mutate the link from both sides (producer pushes,
//     consumer pops — disjoint fields, safe concurrently), but two
//     producers or two consumers of the same link would race, so the
//     planner unions same-side endpoints. Components without port
//     interfaces are unioned into one conservative group.
//
// The resulting atoms, ordered (stage, lane), are the shards of the
// work-stealing scheduler (steal.go). Each cycle: the coordinator rotates
// the wake sets (wake.go), enqueues only the shards holding woken
// components onto the per-worker deques, and broadcasts the cycle number.
// A worker drains its deque — walking each claimed shard's members in
// ascending index order, examining only those whose wake bit is set — and
// then steals half of a victim's remaining shards when it runs dry. Because
// a shard is a whole shared-state atom, every same-cycle partner wake is an
// intra-shard event, handled by the claiming worker exactly as the serial
// drain would — the wake discipline never crosses a shard mid-cycle. Wake
// bitmap words are shared between shards, so workers touch them with atomic
// ops; the coordinator's serial phases (set rotation, shard distribution,
// timer registration, link commit) are ordered against the workers by the
// channel barrier. The barrier waits for all workers, then link commit runs
// serially. Because commit is the only place credits return and arrivals
// surface, the barrier placement — after all ticks, before commit — is what
// preserves the synchronous-clock semantics.
type workerPool struct {
	sys   *System
	sched *scheduler
	queue *shardQueue
	start []chan int64
	done  chan struct{}

	noSkip bool

	// Per-worker outboxes, written by the claiming workers before they
	// signal done and read by the coordinator after the barrier: components
	// that went to sleep this cycle (with their wake hints) and the net
	// change to the not-Done census. Merging is order-insensitive (timer
	// wheel buckets, an integer sum), so it does not matter which worker
	// processed which shard.
	out []workerOutbox

	// Per-worker steal buffers (claimed shard ids), preallocated.
	stealBufs [][]int32
}

// workerOutbox collects one worker's order-insensitive per-cycle results.
type workerOutbox struct {
	sleeps  []timerEnt
	doneDel int
}

// newWorkerPool builds the shard queue from the two-level plan, sizes the
// deques, and starts the worker goroutines.
func newWorkerPool(s *System, sched *scheduler, plan *ShardPlan, workers int, noSkip bool) *workerPool {
	if workers > len(plan.Shards) {
		workers = len(plan.Shards)
	}
	p := &workerPool{
		sys:    s,
		sched:  sched,
		queue:  newShardQueue(plan, workers),
		done:   make(chan struct{}, workers),
		noSkip: noSkip,
		out:    make([]workerOutbox, workers),
	}
	for w := 0; w < workers; w++ {
		p.stealBufs = append(p.stealBufs, make([]int32, (len(plan.Shards)+1)/2))
		ch := make(chan int64)
		p.start = append(p.start, ch)
		go p.worker(w, ch)
	}
	return p
}

// workers reports the pool's goroutine count.
func (p *workerPool) workers() int { return len(p.start) }

// worker is one scheduler participant: drain own deque, then steal.
func (p *workerPool) worker(w int, start <-chan int64) {
	for cycle := range start {
		ob := &p.out[w]
		ob.sleeps = ob.sleeps[:0]
		ob.doneDel = 0
		p.drain(w, cycle, ob)
		p.done <- struct{}{}
	}
}

// drain processes shards until no deque holds unclaimed work: first the
// worker's own deque, then steal-half sweeps over the other deques in ring
// order. Exiting is safe the moment a full sweep finds every deque empty:
// the coordinator never enqueues mid-cycle, and a shard claimed by another
// worker is that worker's to finish before it signals the barrier.
func (p *workerPool) drain(w int, cycle int64, ob *workerOutbox) {
	q := p.queue
	own := &q.deques[w]
	for {
		s, ok := own.claimOne()
		if !ok {
			break
		}
		p.runShard(q.shards[s], cycle, ob)
	}
	nw := len(q.deques)
	for {
		stole := false
		for k := 1; k < nw; k++ {
			got := q.deques[(w+k)%nw].stealHalf(p.stealBufs[w])
			if len(got) == 0 {
				continue
			}
			stole = true
			for _, s := range got {
				p.runShard(q.shards[s], cycle, ob)
			}
		}
		if !stole {
			return
		}
	}
}

// runShard is one shard tick-batch: an ascending walk over the shard's
// members, examining those with a set wake bit, reproducing the serial
// drain's decisions (idle→sleep, else tick + re-arm + partner wakes).
func (p *workerPool) runShard(shard []int, cycle int64, ob *workerOutbox) {
	s := p.sys
	sc := p.sched
	for _, i := range shard {
		word, mask := &sc.awake[i>>6], uint64(1)<<uint(i&63)
		if atomic.LoadUint64(word)&mask == 0 {
			continue
		}
		atomic.AndUint64(word, ^mask)
		idler := s.idlers[i]
		if !p.noSkip && idler != nil && idler.Idle(cycle) {
			if !sc.poll.get(i) {
				if hint := sc.hinters[i].WakeHint(cycle); hint != WakeNever {
					// lint:phaseconf-ok ob aliases p.out[w], private to this worker until the barrier; the coordinator merges outboxes only after all workers signal done
					ob.sleeps = append(ob.sleeps, timerEnt{comp: int32(i), at: hint})
				}
			}
			continue
		}
		if bt := sc.batchers[i]; bt != nil && !sc.noBatch {
			// Same offer as the serial drain: batchBudget reads only fields
			// owned by component i's side of its links, so pricing it here
			// does not race other workers.
			if n := sc.batchBudget(i); n >= BatchMinFlits {
				bt.TickBatch(cycle, n)
			} else {
				s.comps[i].Tick(cycle)
			}
		} else {
			s.comps[i].Tick(cycle)
		}
		dw := &sc.doneBits[i>>6]
		if d := s.comps[i].Done(); d != (atomic.LoadUint64(dw)&mask != 0) {
			if d {
				atomic.OrUint64(dw, mask)
				ob.doneDel-- // lint:phaseconf-ok per-worker outbox delta, summed by the coordinator after the barrier
			} else {
				atomic.AndUint64(dw, ^mask)
				ob.doneDel++ // lint:phaseconf-ok per-worker outbox delta, summed by the coordinator after the barrier
			}
		}
		// Partners share an atom — and therefore a shard — with i by
		// construction, so a same-cycle (ahead-of-cursor) wake stays inside
		// this very walk. The masks' words are shared with other shards'
		// components, hence the atomic ORs.
		if m := sc.wakeAhead[i]; m != nil {
			for wi, wv := range m {
				if wv != 0 {
					atomic.OrUint64(&sc.awake[wi], wv)
				}
			}
		}
		if m := sc.wakeBehind[i]; m != nil {
			for wi, wv := range m {
				if wv != 0 {
					atomic.OrUint64(&sc.next[wi], wv)
				}
			}
		}
		atomic.OrUint64(&sc.next[i>>6], mask)
	}
}

// stop terminates the worker goroutines.
func (p *workerPool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}

// stepParallel advances one cycle on the worker pool: distribute woken
// shards, broadcast, barrier, timer/census merge, serial link commit.
// Progress detection is identical to the serial kernel's — commit's
// collected per-cycle activity flags. hot:path — this is the parallel
// kernel's per-cycle loop. phase:coordinator — runs strictly between the
// worker barriers, so its plain reads of the wake bitmaps are ordered.
func (sc *scheduler) stepParallel(cycle int64, p *workerPool) bool {
	if p.queue.distribute(sc.awake) > 0 {
		for _, ch := range p.start {
			ch <- cycle
		}
		for range p.start {
			<-p.done
		}
		for w := range p.out {
			for _, e := range p.out[w].sleeps {
				if e.at <= cycle {
					sc.next.set(int(e.comp))
				} else {
					sc.wheel.schedule(cycle, e.comp, e.at)
				}
			}
			sc.notDone += p.out[w].doneDel
		}
	}
	return sc.commitLinks(cycle)
}

// KernelDecision records how one RunWith resolved its tick kernel: the
// requested worker count, what it resolved to, why auto mode fell back (if
// it did), and the shard-plan shape the decision was made on. The bench
// harness serializes this verbatim so every fallback verdict in a BENCH
// report is explained rather than silent.
type KernelDecision struct {
	// Requested is the worker request after environment resolution
	// (negative = auto mode with that cap).
	Requested int `json:"requested"`
	// Resolved is the worker count actually used (1 = serial kernel).
	Resolved int `json:"resolved"`
	// Fallback names the auto-mode fallback reason, empty when the parallel
	// kernel engaged (or was never requested).
	Fallback string `json:"fallback,omitempty"`
	// GOMAXPROCS is the host parallelism the decision saw.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Shard-plan shape: component census, shard (atom) count, pipeline
	// stages, widest stage's lane count, and the largest shard's population
	// and share of all components.
	Components   int     `json:"components"`
	Shards       int     `json:"shards"`
	Stages       int     `json:"stages"`
	MaxLanes     int     `json:"max_lanes"`
	LargestShard int     `json:"largest_shard"`
	LargestShare float64 `json:"largest_share"`
}

// Auto-mode fallback reason codes (KernelDecision.Fallback).
const (
	// FallbackNone: the parallel kernel engaged.
	FallbackNone = ""
	// FallbackRequestedSerial: the caller asked for 0/1 workers outright.
	FallbackRequestedSerial = "requested-serial"
	// FallbackAutoCap: auto mode's own cap was below 2 workers.
	FallbackAutoCap = "auto-cap"
	// FallbackSingleCoreHost: GOMAXPROCS < 2 — no host parallelism to win.
	FallbackSingleCoreHost = "single-core-host"
	// FallbackSmallCensus: too few components to amortize the per-cycle
	// barrier no matter how they shard.
	FallbackSmallCensus = "small-census"
	// FallbackSingleShard: the plan produced one shard — everything is one
	// correctness atom, which must run serially anyway.
	FallbackSingleShard = "single-shard"
	// FallbackImbalance: one shard holds most of the components; the other
	// workers would idle at the barrier while it runs serially (work
	// stealing balances across shards, never inside one).
	FallbackImbalance = "imbalance"
)

// autoWorkers resolves RunOptions.Workers auto mode (negative values): use
// up to max workers, but fall back to the serial kernel when the barrier
// cannot pay for itself. The decision is a pure function of the topology
// and GOMAXPROCS — never of simulation results — and both kernels are
// bit-identical anyway, so the fallback is unobservable in outputs. The
// reason is never discarded: it is returned alongside the worker count and
// recorded by RunWith in the System's KernelDecision and Stats.
func (s *System) autoWorkers(max int, plan *ShardPlan) (int, string) {
	if max < 2 {
		return 1, FallbackAutoCap
	}
	if runtime.GOMAXPROCS(0) < 2 {
		return 1, FallbackSingleCoreHost
	}
	// Census threshold: a graph this small cannot amortize a per-cycle
	// barrier no matter how it shards.
	if len(s.comps) < 8 {
		return 1, FallbackSmallCensus
	}
	if len(plan.Shards) < 2 {
		return 1, FallbackSingleShard
	}
	// Balance threshold: when one shard holds most of the components the
	// other workers idle at the barrier while it runs serially anyway
	// (hash-aggregate's 0.99x regression was this shape). Work stealing
	// balances the rest of the load, so the only disqualifying shape is a
	// single dominant atom.
	if plan.Largest*4 > len(s.comps)*3 {
		return 1, FallbackImbalance
	}
	workers := max
	if workers > len(plan.Shards) {
		workers = len(plan.Shards)
	}
	return workers, FallbackNone
}

// unionFind is a plain disjoint-set with the deterministic convention that
// the smaller root index wins, so group identities are stable.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
}
