package sim

import (
	"errors"
	"testing"

	"aurochs/internal/record"
)

func flit(v uint32) Flit {
	var vec record.Vector
	vec.Push(record.Make(v))
	return Flit{Vec: vec}
}

func TestLinkRegisteredLatency(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 4, 1)
	l.Push(0, flit(42))
	if !l.Empty() {
		t.Fatal("push must not be visible in the same cycle")
	}
	l.commit(0)
	if l.Empty() {
		t.Fatal("latency-1 push must be visible after commit")
	}
	if got := l.Pop().Vec.Lane[0].Get(0); got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestLinkMultiCycleLatency(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 4, 3)
	l.Push(0, flit(1))
	for c := int64(0); c < 2; c++ {
		l.commit(c)
		if !l.Empty() {
			t.Fatalf("cycle %d: flit arrived early", c)
		}
	}
	l.commit(2)
	if l.Empty() {
		t.Fatal("flit should arrive after 3 cycles")
	}
}

func TestLinkCapacityAndOrder(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 2, 1)
	l.Push(0, flit(1))
	l.Push(0, flit(2))
	if l.CanPush() {
		t.Fatal("capacity 2 link should refuse a third push")
	}
	defer func() {
		if recover() == nil {
			t.Error("push to full link must panic")
		}
	}()
	l.Push(0, flit(3))
}

func TestLinkFIFOOrder(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 8, 1)
	for i := uint32(0); i < 4; i++ {
		l.Push(int64(i), flit(i))
		l.commit(int64(i))
	}
	for i := uint32(0); i < 4; i++ {
		if got := l.Pop().Vec.Lane[0].Get(0); got != i {
			t.Fatalf("pop %d: got %d", i, got)
		}
	}
}

// producer/consumer pair used by the system tests.
type producer struct {
	out  *Link
	n    uint32
	sent uint32
	eos  bool
}

func (p *producer) Name() string { return "prod" }
func (p *producer) Done() bool   { return p.eos }
func (p *producer) Tick(c int64) {
	if p.eos || !p.out.CanPush() {
		return
	}
	if p.sent < p.n {
		p.out.Push(c, flit(p.sent))
		p.sent++
		return
	}
	p.out.Push(c, Flit{EOS: true})
	p.eos = true
}

type consumer struct {
	in   *Link
	got  []uint32
	eos  bool
	slow bool
}

func (cn *consumer) Name() string { return "cons" }
func (cn *consumer) Done() bool   { return cn.eos }
func (cn *consumer) Tick(c int64) {
	if cn.slow && c%3 != 0 {
		return
	}
	if cn.in.Empty() {
		return
	}
	f := cn.in.Pop()
	if f.EOS {
		cn.eos = true
		return
	}
	cn.got = append(cn.got, f.Vec.Lane[0].Get(0))
}

func TestSystemRunDrains(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("pc", 2, 1)
	p := &producer{out: l, n: 100}
	c := &consumer{in: l}
	s.Add(p)
	s.Add(c)
	cycles, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.got) != 100 {
		t.Fatalf("consumed %d, want 100", len(c.got))
	}
	for i, v := range c.got {
		if v != uint32(i) {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
	if cycles < 100 {
		t.Errorf("cycles=%d: cannot deliver 100 flits in under 100 cycles", cycles)
	}
}

func TestSystemBackpressure(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("pc", 2, 1)
	p := &producer{out: l, n: 30}
	c := &consumer{in: l, slow: true}
	s.Add(p)
	s.Add(c)
	if _, err := s.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(c.got) != 30 {
		t.Fatalf("consumed %d, want 30", len(c.got))
	}
}

// stuckComp never finishes: the runner must report deadlock, not hang.
type stuckComp struct{}

func (stuckComp) Name() string { return "stuck" }
func (stuckComp) Done() bool   { return false }
func (stuckComp) Tick(int64)   {}

func TestDeadlockDetection(t *testing.T) {
	s := NewSystem()
	s.Add(stuckComp{})
	_, err := s.Run(100_000)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(dl.Stuck) != 1 || dl.Stuck[0] != "stuck" {
		t.Errorf("stuck list: %v", dl.Stuck)
	}
}

func TestCycleBudget(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("pc", 2, 1)
	p := &producer{out: l, n: 1 << 30}
	c := &consumer{in: l}
	s.Add(p)
	s.Add(c)
	_, err := s.Run(50)
	if err == nil {
		t.Fatal("expected budget exhaustion error")
	}
}

func TestStats(t *testing.T) {
	st := NewStats()
	st.Add("a", 3)
	st.Add("a", 4)
	st.Add("b", 2)
	if st.Get("a") != 7 {
		t.Errorf("a=%d", st.Get("a"))
	}
	if r := st.Ratio("b", "a"); r < 0.28 || r > 0.29 {
		t.Errorf("ratio=%f", r)
	}
	if st.Ratio("a", "zero") != 0 {
		t.Error("ratio with zero denominator must be 0")
	}
	if names := st.Names(); len(names) != 2 || names[0] != "a" {
		t.Errorf("names=%v", names)
	}
}
