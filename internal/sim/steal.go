package sim

import "sync/atomic"

// Work stealing over shard tick-batches.
//
// Each cycle the coordinator consults the wake scheduler's dirty set
// (wake.go) and enqueues only the *woken* shards — an item of work is "tick
// the awake members of shard s this cycle" — round-robin onto per-worker
// bounded deques. Workers drain their own deque one shard at a time; a
// worker that runs dry scans the other deques in a fixed ring order and
// steals half of a victim's remaining items in one claim. The cycle ends at
// the usual barrier, before the serial link commit, so the synchronous-clock
// semantics (and bit-identity with the serial kernel) are untouched.
//
// Why this is safe with no per-item synchronization beyond a CAS on the
// deque head:
//
//   - Shards are correctness atoms (shard.go): every pair of components
//     that could observe each other's same-cycle effects shares a shard,
//     and a shard is processed by exactly one claimant per cycle, walking
//     members in ascending registration order — the serial interleaving.
//   - The deque arrays are filled by the coordinator while the workers are
//     parked at the cycle barrier; during the cycle workers only *claim*
//     (advance head by CAS). Tail is fixed. Every claim takes a disjoint
//     range, so each shard is processed exactly once.
//   - Cross-shard communication happens only through links (committed
//     serially after the barrier) and the wake bitmaps (atomic, commutative
//     set/clear whose drain order is fixed by index, not arrival).
//
// Determinism: which worker processes a shard is a race, but it is an
// unobservable one — all per-shard effects are confined to the shard's own
// components, per-worker outboxes are merged by the coordinator into
// order-insensitive structures (timer wheel buckets, bitmap ORs, an integer
// sum), and stats counters are commutative atomics.

// wsDeque is one worker's bounded deque of shard ids for the current cycle.
// The coordinator writes items[0:tail] and resets head before releasing the
// workers; claimants advance head with CAS. head == tail means empty.
type wsDeque struct {
	head  atomic.Int64
	tail  int64
	items []int32
	// pad keeps neighbouring deques' hot head words out of one cache line.
	pad [104]byte //nolint:unused // false-sharing spacer
}

// reset prepares the deque for a new cycle (coordinator only).
func (d *wsDeque) reset() {
	d.head.Store(0)
	d.tail = 0
}

// push appends a shard id (coordinator only, between cycles). items is
// preallocated to the shard count and a shard is enqueued at most once per
// cycle, so this never grows.
func (d *wsDeque) push(s int32) {
	d.items[d.tail] = s
	d.tail++
}

// claimOne takes the next unclaimed item, competing with thieves.
func (d *wsDeque) claimOne() (int32, bool) {
	for {
		h := d.head.Load()
		if h >= d.tail {
			return 0, false
		}
		if d.head.CompareAndSwap(h, h+1) {
			return d.items[h], true
		}
	}
}

// stealHalf claims half of the remaining items (at least one) into buf and
// returns the claimed prefix. An empty result means the victim ran dry.
func (d *wsDeque) stealHalf(buf []int32) []int32 {
	for {
		h := d.head.Load()
		n := d.tail - h
		if n <= 0 {
			return buf[:0]
		}
		take := (n + 1) / 2
		if take > int64(len(buf)) {
			take = int64(len(buf))
		}
		if d.head.CompareAndSwap(h, h+take) {
			// lint:phaseconf-ok buf is the thief's own preallocated steal buffer (stealBufs[w]); only the claimed range of the victim's items is read, never written
			return buf[:copy(buf[:take], d.items[h:h+take])]
		}
	}
}

// shardQueue is the per-pool scheduling state: the shard membership tables
// and the per-worker deques.
type shardQueue struct {
	shards  [][]int // plan.Shards: atoms in (stage, lane) order
	shardOf []int32 // component -> shard index
	// shardWords[s] lists the (awake-bitmap word, member mask) pairs that
	// cover shard s's members, so "is any member awake?" is a handful of
	// masked loads instead of a member walk.
	shardWords [][]wordMask
	deques     []wsDeque
}

type wordMask struct {
	word int32
	mask uint64
}

func newShardQueue(plan *ShardPlan, workers int) *shardQueue {
	q := &shardQueue{shards: plan.Shards}
	ncomp := 0
	for _, sh := range plan.Shards {
		ncomp += len(sh)
	}
	q.shardOf = make([]int32, ncomp)
	q.shardWords = make([][]wordMask, len(plan.Shards))
	for s, sh := range plan.Shards {
		var wm []wordMask
		for _, i := range sh {
			q.shardOf[i] = int32(s)
			w := int32(i >> 6)
			m := uint64(1) << uint(i&63)
			if len(wm) > 0 && wm[len(wm)-1].word == w {
				wm[len(wm)-1].mask |= m
			} else {
				wm = append(wm, wordMask{word: w, mask: m})
			}
		}
		q.shardWords[s] = wm
	}
	q.deques = make([]wsDeque, workers)
	for w := range q.deques {
		q.deques[w].items = make([]int32, len(plan.Shards))
	}
	return q
}

// distribute enqueues every shard with at least one awake member,
// round-robin across the deques in (stage, lane) order. phase:coordinator —
// runs between the cycle barriers, so plain reads of the wake bitmap are
// ordered. Returns the number of shards enqueued. hot:path — runs once per
// parallel cycle.
func (q *shardQueue) distribute(awake bitset) int {
	for w := range q.deques {
		q.deques[w].reset()
	}
	nw := len(q.deques)
	active := 0
	for s := range q.shards {
		woken := false
		for _, wm := range q.shardWords[s] {
			if awake[wm.word]&wm.mask != 0 {
				woken = true
				break
			}
		}
		if woken {
			q.deques[active%nw].push(int32(s))
			active++
		}
	}
	return active
}
