package sim

// Batch execution. The scalar contract is one Tick per awake component per
// cycle, with every flit handled by one Peek/Drop or Push call. On dense
// streams that per-flit, per-call bookkeeping — not the modelled hardware —
// dominates wall-clock time. BatchTicker is the vectorized alternative the
// scheduler offers when it can see, from committed link state alone, that a
// component has a block of work: the component processes the same cycle's
// work through the block-transport API (PeekBlock/DropBlock/PushBlock),
// amortizing counter updates and bounds checks over whole spans.
//
// The contract is strict so that batch execution can never be observed in
// results: TickBatch(cycle, n) must have exactly the observable effects of
// Tick(cycle) — the same link pushes and pops, the same state mutations,
// the same Stats increments, the same Done answer afterwards. n is a
// scheduler-computed budget hint (how many flits are visible on the
// richest input, clamped to the scarcest output credit); it is information
// the component could legally derive itself from Visible/Credits, handed
// over so implementations skip re-deriving it. A component is always free
// to process fewer than n flits (its Tick semantics bound what one cycle
// may do); it must never exceed what its scalar Tick would have done.
// Because TickBatch compresses bookkeeping, not simulated time, cycle
// counts, Stats, and DRAM traffic stay bit-identical to scalar runs — the
// property the batch-vs-scalar conformance suite pins on every registered
// blueprint. Multi-cycle compression happens one layer up, in the runner's
// fast-forward (see RunWith), where it is sound because *no* component
// ticks in the skipped stretch.
//
// The scheduler falls back to scalar Tick whenever the budget is below
// BatchMinFlits — thin streams pay for batch setup without amortizing it —
// or the component does not implement the interface. Both kernels (serial
// and parallel) make the same offer from the same committed state, so the
// choice itself is deterministic.

// BatchTicker is optionally implemented by components whose Tick is an
// element-wise loop over link flits. TickBatch must be observably
// identical to Tick (see the package discussion above); it returns the
// number of flits it consumed, which the scheduler records nowhere — the
// value exists for harnesses and debugging.
type BatchTicker interface {
	TickBatch(cycle int64, n int) int
}

// BatchMinFlits is the smallest batch budget worth offering: below this
// the scalar path's simplicity wins.
const BatchMinFlits = 2

// batchBudget computes the batch offer for component i from committed link
// state: the largest visible run on any input, clamped by the scarcest
// output credit. Components with no inputs (sources) are budgeted by
// credit alone; components with no outputs (sinks) by visibility alone.
// Every field read here is owned by component i's side of its links
// (consumer-side nVis, producer-side credits), so the parallel kernel may
// evaluate it during the tick phase without racing other workers.
func (sc *scheduler) batchBudget(i int) int {
	links := sc.sys.links
	n := 0
	ins := sc.inLinks[i]
	for _, id := range ins {
		if v := links[id].nVis; v > n {
			n = v
		}
	}
	if len(ins) == 0 {
		n = int(^uint(0) >> 1)
	}
	if n == 0 {
		return 0
	}
	for _, id := range sc.outLinks[i] {
		if c := links[id].credits; c < n {
			n = c
		}
	}
	return n
}
