// Package sim is the cycle-level simulation kernel underneath the Aurochs
// fabric model. It provides a synchronous clock, registered links between
// components, and a runner with progress-based deadlock detection.
//
// The timing discipline is the one that makes cyclic dataflow graphs (the
// paper's recirculating while-loops) safe to simulate deterministically:
// every link is *registered* — a value pushed in cycle N becomes visible to
// the consumer in cycle N+1 at the earliest — so the order in which
// components tick within a cycle can never change the result. This mirrors
// the skid-buffered ready-valid streaming interface that loosely times
// Gorgon's tiles (paper §III-A).
package sim

import (
	"fmt"
	"sort"
)

// Component is one clocked element of the fabric: a compute tile, a
// scratchpad pipeline, a DRAM channel group. Tick is called once per cycle
// with the current cycle number; components observe link state as committed
// at the end of the previous cycle and stage pushes for the next.
type Component interface {
	// Name identifies the component in stats and error messages.
	Name() string
	// Tick advances the component by one cycle.
	Tick(cycle int64)
	// Done reports whether the component has fully drained: it has seen
	// end-of-stream on all inputs, forwarded it, and holds no state that
	// could still produce output.
	Done() bool
}

// InputPorts is implemented by components that can report the links they
// pop from. Together with OutputPorts it lets the fabric's static verifier
// (fabric.Graph.Check) reconstruct the graph topology without instrumenting
// the simulation path. Every component shipped in this repository
// implements the interfaces; custom components wired into a fabric.Graph
// must too, or Check will report their links as unclaimed.
type InputPorts interface {
	// InputLinks returns the links the component consumes. Nil entries
	// are reported as wiring bugs.
	InputLinks() []*Link
}

// OutputPorts is the producer-side counterpart of InputPorts.
type OutputPorts interface {
	// OutputLinks returns the links the component pushes to. Nil entries
	// are reported as wiring bugs.
	OutputLinks() []*Link
}

// System owns the clock, components, and links of one simulation.
type System struct {
	comps []Component
	links []*Link
	cycle int64
	stats *Stats
}

// NewSystem creates an empty simulation.
func NewSystem() *System {
	return &System{stats: NewStats()}
}

// Stats returns the system-wide counter set.
func (s *System) Stats() *Stats { return s.stats }

// Cycle returns the current cycle number.
func (s *System) Cycle() int64 { return s.cycle }

// Add registers a component. Components tick in registration order; because
// links are registered, the order is not observable in results.
func (s *System) Add(c Component) {
	s.comps = append(s.comps, c)
}

// Components returns the registered components in registration order.
func (s *System) Components() []Component { return s.comps }

// Links returns the registered links in creation order.
func (s *System) Links() []*Link { return s.links }

// NewLink creates and registers a link with the given capacity and latency.
// Capacity is the skid-buffer depth (entries buffered at the consumer);
// latency models interconnect hops and must be >= 1 (registered).
func (s *System) NewLink(name string, capacity, latency int) *Link {
	l := newLink(name, capacity, latency)
	s.links = append(s.links, l)
	return l
}

// DeadlockError reports a simulation that stopped making progress before
// all components drained.
type DeadlockError struct {
	Cycle int64
	Stuck []string // components not Done
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; stuck components: %v", e.Cycle, e.Stuck)
}

// Run ticks the system until every component reports Done, the cycle budget
// is exhausted, or no progress is observed for a grace window. It returns
// the number of cycles simulated.
func (s *System) Run(maxCycles int64) (int64, error) {
	// grace must exceed the longest internal latency any component can
	// hide from the links (DRAM round trips are the worst case).
	const grace = 4096
	idle := 0
	start := s.cycle
	for s.cycle-start < maxCycles {
		if s.allDone() {
			return s.cycle - start, nil
		}
		moved := s.step()
		if moved {
			idle = 0
		} else {
			idle++
			if idle > grace {
				return s.cycle - start, &DeadlockError{Cycle: s.cycle, Stuck: s.stuckNames()}
			}
		}
	}
	if s.allDone() {
		return s.cycle - start, nil
	}
	return s.cycle - start, fmt.Errorf("sim: cycle budget %d exhausted; stuck components: %v", maxCycles, s.stuckNames())
}

// step advances one cycle and reports whether any link carried traffic.
func (s *System) step() bool {
	var before int64
	for _, l := range s.links {
		before += l.Pushes() + l.Pops()
	}
	for _, c := range s.comps {
		c.Tick(s.cycle)
	}
	for _, l := range s.links {
		l.commit(s.cycle)
	}
	var after int64
	for _, l := range s.links {
		after += l.Pushes() + l.Pops()
	}
	s.cycle++
	return after != before
}

func (s *System) allDone() bool {
	for _, c := range s.comps {
		if !c.Done() {
			return false
		}
	}
	for _, l := range s.links {
		if !l.Drained() {
			return false
		}
	}
	return true
}

func (s *System) stuckNames() []string {
	var out []string
	for _, c := range s.comps {
		if !c.Done() {
			out = append(out, c.Name())
		}
	}
	for _, l := range s.links {
		if !l.Drained() {
			out = append(out, "link:"+l.name)
		}
	}
	sort.Strings(out)
	return out
}
