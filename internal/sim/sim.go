// Package sim is the cycle-level simulation kernel underneath the Aurochs
// fabric model. It provides a synchronous clock, registered links between
// components, and a runner with progress-based deadlock detection.
//
// The timing discipline is the one that makes cyclic dataflow graphs (the
// paper's recirculating while-loops) safe to simulate deterministically:
// every link is *registered* — a value pushed in cycle N becomes visible to
// the consumer in cycle N+1 at the earliest — so the order in which
// components tick within a cycle can never change the result. This mirrors
// the skid-buffered ready-valid streaming interface that loosely times
// Gorgon's tiles (paper §III-A). The same property licenses the parallel
// tick path (RunOptions.Workers): components that share no state outside
// links may tick concurrently within a cycle, with a barrier before link
// commit.
package sim

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
)

// Component is one clocked element of the fabric: a compute tile, a
// scratchpad pipeline, a DRAM channel group. Tick is called once per cycle
// with the current cycle number; components observe link state as committed
// at the end of the previous cycle and stage pushes for the next.
type Component interface {
	// Name identifies the component in stats and error messages.
	Name() string
	// Tick advances the component by one cycle.
	Tick(cycle int64)
	// Done reports whether the component has fully drained: it has seen
	// end-of-stream on all inputs, forwarded it, and holds no state that
	// could still produce output.
	Done() bool
}

// Idler is optionally implemented by components that can prove a Tick
// would be a no-op. Idle(cycle) must return true only when Tick(cycle)
// would neither mutate component state nor touch any link or shared
// resource — the runner then skips the call entirely. The answer must be a
// deterministic function of simulation state (never host time or
// randomness) so the serial and parallel kernels skip identically and runs
// stay bit-reproducible.
type Idler interface {
	Idle(cycle int64) bool
}

// StateSharer is optionally implemented by components that touch state
// outside their links: a shared scratchpad memory, the HBM, a loop
// controller. SharedState returns opaque keys (compared by identity);
// components returning a common key are scheduled onto the same worker by
// the parallel kernel and tick in registration order, which keeps their
// interleaving identical to the serial kernel. A *Link key additionally
// groups the component with that link's producers and consumers — for
// components that inspect link state beyond the Pop/Push contract (e.g. a
// loop-entry merge reading Drained on its recirculating input).
//
// A component with no ports (neither InputPorts nor OutputPorts) and no
// SharedState is conservatively scheduled into one common group: the
// kernel cannot prove it independent of anything.
type StateSharer interface {
	SharedState() []any
}

// LatencyBound is optionally implemented by components that can hide work
// from the links for many cycles (DRAM round trips are the canonical
// case). WorstCaseInternalLatency returns an upper bound, in cycles, on
// how long the component can go without producing link activity while
// still holding work. The runner sums these bounds into its deadlock grace
// window, replacing a hard-coded constant that deep memory queues could
// legally exceed.
type LatencyBound interface {
	WorstCaseInternalLatency() int64
}

// InputPorts is implemented by components that can report the links they
// pop from. Together with OutputPorts it lets the fabric's static verifier
// (fabric.Graph.Check) reconstruct the graph topology without instrumenting
// the simulation path, and lets the parallel kernel prove which components
// may tick concurrently. Every component shipped in this repository
// implements the interfaces; custom components wired into a fabric.Graph
// must too, or Check will report their links as unclaimed.
type InputPorts interface {
	// InputLinks returns the links the component consumes. Nil entries
	// are reported as wiring bugs.
	InputLinks() []*Link
}

// OutputPorts is the producer-side counterpart of InputPorts.
type OutputPorts interface {
	// OutputLinks returns the links the component pushes to. Nil entries
	// are reported as wiring bugs.
	OutputLinks() []*Link
}

// System owns the clock, components, and links of one simulation.
type System struct {
	comps  []Component
	idlers []Idler // parallel to comps; nil where not implemented
	links  []*Link
	cycle  int64
	stats  *Stats

	// effectiveWorkers records the worker count the last RunWith actually
	// used after auto-mode resolution (see RunOptions.Workers).
	effectiveWorkers int
	// lastKernel records the most recent RunWith's full kernel decision:
	// requested vs resolved workers, the fallback reason (if any), and the
	// shard-plan shape it was decided on.
	lastKernel KernelDecision
}

// NewSystem creates an empty simulation.
func NewSystem() *System {
	return &System{stats: NewStats()}
}

// Stats returns the system-wide counter set.
func (s *System) Stats() *Stats { return s.stats }

// Cycle returns the current cycle number.
func (s *System) Cycle() int64 { return s.cycle }

// Add registers a component. Components tick in registration order; because
// links are registered, the order is not observable in results.
func (s *System) Add(c Component) {
	s.comps = append(s.comps, c)
	idler, _ := c.(Idler)
	s.idlers = append(s.idlers, idler)
}

// Components returns the registered components in registration order.
func (s *System) Components() []Component { return s.comps }

// Links returns the registered links in creation order.
func (s *System) Links() []*Link { return s.links }

// NewLink creates and registers a link with the given capacity and latency.
// Capacity is the skid-buffer depth (entries buffered at the consumer);
// latency models interconnect hops and must be >= 1 (registered).
func (s *System) NewLink(name string, capacity, latency int) *Link {
	l := newLink(name, capacity, latency)
	s.links = append(s.links, l)
	return l
}

// DeadlockError reports a simulation that stopped making progress before
// all components drained.
type DeadlockError struct {
	Cycle int64
	Stuck []string // components not Done
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; stuck components: %v", e.Cycle, e.Stuck)
}

// BudgetError reports a simulation that exhausted its cycle budget while
// components still held work — the runner's other failure mode, typed so
// harnesses can distinguish "too slow / budget too small" from a genuine
// deadlock.
type BudgetError struct {
	Budget int64
	Cycle  int64
	Stuck  []string // components not Done
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: cycle budget %d exhausted at cycle %d; stuck components: %v", e.Budget, e.Cycle, e.Stuck)
}

// RunOptions selects the tick kernel.
type RunOptions struct {
	// Workers is the number of goroutines ticking components each cycle.
	// Values 0 and 1 select the serial kernel; values > 1 request that
	// many workers. Negative values select auto mode: up to -Workers
	// workers, falling back to the serial kernel when the topology cannot
	// profit — too few independent union-find shards, a component census
	// too small to amortize the per-cycle barrier, one shard dominating
	// the load, or a single-CPU host. Components sharing state (declared
	// via StateSharer or implied by shared links) stay on one worker, so
	// results are bit-identical to the serial kernel at any worker count;
	// the fallback only changes wall-clock time. EffectiveWorkers reports
	// what a run resolved to. When Workers is 0, the AUROCHS_WORKERS
	// environment variable (if set to a valid integer) supplies the value
	// instead — CI uses this to force the whole test suite through the
	// parallel kernel under the race detector.
	Workers int
	// NoIdleSkip disables per-component quiescence: every component ticks
	// every cycle, as the pre-quiescence kernel did. Results are identical
	// either way for components honouring the Idler contract; the knob
	// exists for A/B validation and debugging.
	NoIdleSkip bool
	// NoBatch disables TickBatch offers: every component ticks through the
	// scalar path even when it implements BatchTicker and the budget clears
	// BatchMinFlits. Results are identical either way for components
	// honouring the BatchTicker contract (see batch.go); the knob supplies
	// the reference side of the batch-vs-scalar conformance suite.
	NoBatch bool
}

// envWorkers reads the AUROCHS_WORKERS environment override. It applies
// only when RunOptions.Workers is 0 (the caller expressed no preference),
// so CI can force every simulation in the test suite through the parallel
// kernel — under the race detector this turns the whole suite into a
// determinism stress. Unset, empty, or unparsable values keep the default.
func envWorkers() int {
	v := os.Getenv("AUROCHS_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return n
}

// Run ticks the system until every component reports Done, the cycle budget
// is exhausted, or no progress is observed for a grace window. It returns
// the number of cycles simulated.
func (s *System) Run(maxCycles int64) (int64, error) {
	return s.RunWith(maxCycles, RunOptions{})
}

// RunParallel runs with the given worker count (see RunOptions.Workers).
func (s *System) RunParallel(maxCycles int64, workers int) (int64, error) {
	return s.RunWith(maxCycles, RunOptions{Workers: workers})
}

// RunWith is Run with an explicit kernel selection. Both kernels are
// event-driven (see wake.go): a cycle examines only the components in the
// wake set, and fully quiescent stretches fast-forward to the next timer.
// The fast-forward advances the clock and the no-progress counter by
// exactly the cycles it skips, so deadlock and budget errors carry the
// same cycle numbers the polling kernel reported.
func (s *System) RunWith(maxCycles int64, opt RunOptions) (int64, error) {
	requested := opt.Workers
	if requested == 0 {
		requested = envWorkers()
	}
	plan := s.PlanShards()
	workers, reason := requested, FallbackNone
	switch {
	case requested < 0:
		workers, reason = s.autoWorkers(-requested, plan)
	case requested <= 1:
		workers, reason = 1, FallbackRequestedSerial
	default:
		// An explicit positive count skips the auto heuristics, but a plan
		// with a single shard (or a single component) is serial regardless:
		// one atom can only ever run on one worker.
		if len(plan.Shards) < 2 || len(s.comps) < 2 {
			workers, reason = 1, FallbackSingleShard
		}
	}
	grace := s.graceWindow()
	sched := newScheduler(s)
	sched.noSkip = opt.NoIdleSkip
	sched.noBatch = opt.NoBatch
	var pool *workerPool
	if workers > 1 {
		pool = newWorkerPool(s, sched, plan, workers, opt.NoIdleSkip)
		defer pool.stop()
	} else {
		// Serial kernel: wire the dirty-link tracker so commit visits only
		// links with pending work. The pointers are cleared on exit — a later
		// parallel run's workers must never reach a stale scheduler.
		sched.trackDirty = true
		for _, l := range s.links {
			l.sched = sched
		}
		defer func() {
			for _, l := range s.links {
				l.sched = nil
			}
		}()
	}
	s.effectiveWorkers = 1
	if pool != nil {
		s.effectiveWorkers = pool.workers()
	}
	s.recordKernelDecision(requested, reason, plan)
	idle := int64(0)
	start := s.cycle
	for s.cycle-start < maxCycles {
		if sched.allDone() {
			return s.cycle - start, nil
		}
		sched.beginCycle(s.cycle)
		if !opt.NoIdleSkip && !sched.awake.any() {
			// Steady-state fast-forward. With no component scheduled this
			// cycle, the only possible activity is link commits maturing
			// in-flight flits. Two cases:
			//
			//   - Fully quiescent (no in-flight flits either): every cycle
			//     until the next timer is identical — no ticks, no commits,
			//     no progress. Jump to the timer.
			//   - In-flight only: commits before the earliest arrival's
			//     maturation promote nothing, return no credits, and wake
			//     nobody — provable no-ops, because arrival stamps are the
			//     only time-dependent input to commit and they are
			//     nondecreasing per link. Jump to one cycle before the
			//     earliest arrival (that cycle's commit performs the
			//     promotion), bounded by the next timer.
			//
			// Either jump is bounded by the deadlock and budget horizons and
			// charges the skipped cycles to the no-progress counter, so the
			// detector's arithmetic matches a cycle-by-cycle run exactly.
			jump := int64(0)
			if sched.quiescent() {
				jump = grace - idle + 1
				if nt := sched.wheel.next(s.cycle); nt != WakeNever && nt-s.cycle < jump {
					jump = nt - s.cycle
				}
			} else if na := sched.nextArrival(); na-1 > s.cycle {
				jump = na - 1 - s.cycle
				if nt := sched.wheel.next(s.cycle); nt != WakeNever && nt-s.cycle < jump {
					jump = nt - s.cycle
				}
			}
			if d := grace - idle + 1; d < jump {
				jump = d
			}
			if left := maxCycles - (s.cycle - start); left < jump {
				jump = left
			}
			if jump > 0 {
				s.cycle += jump
				idle += jump
				if idle > grace {
					return s.cycle - start, &DeadlockError{Cycle: s.cycle, Stuck: s.stuckNames()}
				}
				continue
			}
		}
		var moved bool
		if pool != nil {
			moved = sched.stepParallel(s.cycle, pool)
		} else {
			moved = sched.stepSerial(s.cycle)
		}
		s.cycle++
		if moved {
			idle = 0
		} else {
			idle++
			if idle > grace {
				return s.cycle - start, &DeadlockError{Cycle: s.cycle, Stuck: s.stuckNames()}
			}
		}
	}
	if sched.allDone() {
		return s.cycle - start, nil
	}
	return s.cycle - start, &BudgetError{Budget: maxCycles, Cycle: s.cycle, Stuck: s.stuckNames()}
}

// EffectiveWorkers reports the worker count the most recent RunWith used
// after resolving auto mode (1 when it fell back to the serial kernel, or
// before any run).
func (s *System) EffectiveWorkers() int {
	if s.effectiveWorkers < 1 {
		return 1
	}
	return s.effectiveWorkers
}

// KernelDecision reports how the most recent RunWith resolved its tick
// kernel: requested vs resolved workers, the fallback reason (if any), and
// the shard-plan shape the decision was made on. Zero before any run.
func (s *System) KernelDecision() KernelDecision { return s.lastKernel }

// recordKernelDecision stores the resolved kernel choice and surfaces it
// through the Stats meta channel (never the counters, which must stay
// bit-identical across kernels). The fallback reason in particular is no
// longer discarded: harnesses read it back via Stats().Meta() or
// KernelDecision() and the bench JSON quotes it per experiment.
func (s *System) recordKernelDecision(requested int, reason string, plan *ShardPlan) {
	s.lastKernel = KernelDecision{
		Requested:    requested,
		Resolved:     s.EffectiveWorkers(),
		Fallback:     reason,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Components:   len(s.comps),
		Shards:       len(plan.Shards),
		Stages:       plan.Stages,
		MaxLanes:     plan.MaxLanes,
		LargestShard: plan.Largest,
		LargestShare: plan.LargestShare(),
	}
	st := s.stats
	st.SetMeta("kernel.workers_requested", strconv.Itoa(requested))
	st.SetMeta("kernel.workers_resolved", strconv.Itoa(s.EffectiveWorkers()))
	st.SetMeta("kernel.fallback", reason)
	st.SetMeta("kernel.shards", strconv.Itoa(len(plan.Shards)))
	st.SetMeta("kernel.stages", strconv.Itoa(plan.Stages))
	st.SetMeta("kernel.max_lanes", strconv.Itoa(plan.MaxLanes))
	st.SetMeta("kernel.largest_shard", strconv.Itoa(plan.Largest))
	st.SetMeta("kernel.gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)))
}

// graceWindow derives the deadlock detector's no-progress tolerance from
// the registered topology: a base allowance for fabric pipelines, the
// worst link latency, and every component-declared internal latency bound
// (DRAM queues, scratchpad pipelines). A fixed constant here was a bug:
// a legal dram.Config with a deep queue and a large row-miss penalty could
// exceed any constant and be misreported as deadlock.
func (s *System) graceWindow() int64 {
	g := int64(256)
	maxLat := 0
	for _, l := range s.links {
		if l.latency > maxLat {
			maxLat = l.latency
		}
	}
	g += int64(4 * maxLat)
	for _, c := range s.comps {
		if lb, ok := c.(LatencyBound); ok {
			g += lb.WorstCaseInternalLatency()
		}
	}
	return g
}

// allDone is the full-sweep termination check; the runner proper uses the
// scheduler's O(1) incremental version, but the conformance harnesses (which
// instrument every cycle anyway) keep using this one.
func (s *System) allDone() bool {
	for _, c := range s.comps {
		if !c.Done() {
			return false
		}
	}
	for _, l := range s.links {
		if !l.Drained() {
			return false
		}
	}
	return true
}

func (s *System) stuckNames() []string {
	var out []string
	for _, c := range s.comps {
		if !c.Done() {
			out = append(out, c.Name())
		}
	}
	for _, l := range s.links {
		if !l.Drained() {
			out = append(out, "link:"+l.name)
		}
	}
	sort.Strings(out)
	return out
}
