package sim

import "aurochs/internal/record"

// Flit is one beat on a link: either a vector of records or the
// end-of-stream pulse that a tile sends downstream once all of its upstream
// producers have signalled stream end (paper §III-A).
type Flit struct {
	Vec record.Vector
	EOS bool
}

// Link is a registered, latency-annotated FIFO between two components.
//
// Semantics:
//   - Push in cycle N is visible to Pop no earlier than cycle N+latency.
//   - Capacity bounds the entries buffered at the consumer side (the skid
//     buffer); in-flight entries within the latency window occupy pipeline
//     registers and do not count against capacity.
//   - CanPush applies credit-based flow control: the producer may push only
//     when consumer-side space is guaranteed on arrival.
type Link struct {
	name    string
	cap     int
	latency int

	buf      []Flit   // visible to the consumer
	inflight []timedF // pushed, not yet arrived

	pushes int64
	pops   int64
}

type timedF struct {
	f     Flit
	ready int64 // first cycle the flit may enter buf
}

func newLink(name string, capacity, latency int) *Link {
	// Invalid capacities/latencies are not rejected here: the fabric's
	// static verifier (fabric.Graph.Check) reports them with a diagnostic
	// before any simulation runs, which beats a construction-time panic
	// when a whole graph is being assembled.
	return &Link{name: name, cap: capacity, latency: latency}
}

// Name returns the link's identifier.
func (l *Link) Name() string { return l.name }

// Capacity returns the skid-buffer depth.
func (l *Link) Capacity() int { return l.cap }

// Latency returns the link latency in cycles.
func (l *Link) Latency() int { return l.latency }

// CanPush reports whether the producer may push this cycle.
func (l *Link) CanPush() bool {
	return len(l.buf)+len(l.inflight) < l.cap
}

// Push stages a flit for delivery after the link latency. The caller must
// check CanPush first; pushing a full link is a modelling bug and panics.
func (l *Link) Push(cycle int64, f Flit) {
	if !l.CanPush() {
		panic("sim: push to full link " + l.name)
	}
	l.inflight = append(l.inflight, timedF{f: f, ready: cycle + int64(l.latency)})
	l.pushes++
}

// Empty reports whether the consumer has nothing to pop this cycle.
func (l *Link) Empty() bool { return len(l.buf) == 0 }

// Peek returns the head flit without consuming it. Panics if empty.
func (l *Link) Peek() Flit {
	if len(l.buf) == 0 {
		panic("sim: peek on empty link " + l.name)
	}
	return l.buf[0]
}

// Pop consumes and returns the head flit. Panics if empty.
func (l *Link) Pop() Flit {
	f := l.Peek()
	l.buf = l.buf[1:]
	l.pops++
	return f
}

// Drained reports whether no flits remain anywhere in the link.
func (l *Link) Drained() bool { return len(l.buf) == 0 && len(l.inflight) == 0 }

// Pushes returns the total flits ever pushed (for stats/deadlock detection).
func (l *Link) Pushes() int64 { return l.pushes }

// Pops returns the total flits ever popped.
func (l *Link) Pops() int64 { return l.pops }

// commit moves arrived in-flight flits into the visible buffer at the end
// of a cycle. It reports whether the link saw any activity this cycle.
func (l *Link) commit(cycle int64) bool {
	before := len(l.buf)
	n := 0
	for n < len(l.inflight) && l.inflight[n].ready <= cycle+1 {
		// ready <= cycle+1: a flit pushed at cycle C with latency 1 is
		// visible at cycle C+1, i.e. after this commit.
		l.buf = append(l.buf, l.inflight[n].f)
		n++
	}
	l.inflight = l.inflight[n:]
	return n > 0 || before != len(l.buf)
}
