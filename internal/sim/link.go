package sim

import "aurochs/internal/record"

// Flit is one beat on a link: either a vector of records or the
// end-of-stream pulse that a tile sends downstream once all of its upstream
// producers have signalled stream end (paper §III-A).
type Flit struct {
	Vec record.Vector
	EOS bool
}

// Link is a registered, latency-annotated FIFO between two components.
//
// Semantics:
//   - Push in cycle N is visible to Pop no earlier than cycle N+latency.
//   - Flow control is credit-based: the producer holds one credit per slot
//     of consumer-side space that is guaranteed to exist when the flit
//     arrives. A push consumes a credit; a pop frees a slot, but the credit
//     returns to the producer only at the end-of-cycle commit (the credit
//     wire is registered too). Entries in flight within the latency window
//     therefore hold a credit even though they occupy pipeline registers,
//     not buffer slots — the skid buffer must have room for every flit the
//     producer has launched.
//   - CanPush is a pure function of state committed at the end of the
//     previous cycle: pops performed earlier in the same cycle cannot make
//     it flip from false to true, so tick order stays unobservable.
//
// Storage is a fixed ring of capacity slots held as two parallel arrays:
// buf carries the flits, ready the cycle at which each staged flit may
// become visible. Because every launched flit holds a credit whether it is
// still in flight or already buffered, visible + in-flight occupancy can
// never exceed capacity — so one ring holds both segments (visible entries
// first, in-flight entries behind them) and commit "moves" an arrival by
// advancing a boundary counter instead of copying the ~840-byte flit
// between slices. The split layout is what makes the block operations
// (PeekBlock/PopBlock/PushBlock) and commit's arrival scan cache-friendly:
// maturity stamps live in a dense int64 array the promote loop walks
// without striding over flit payloads, and a block of flits is a
// contiguous span (at most two, around the wrap) handed to the caller in
// one step with counters updated once per block rather than once per flit.
type Link struct {
	name    string
	cap     int
	latency int

	// Ring indices are split by owner so the parallel kernel can tick both
	// endpoints concurrently: the consumer advances head/nVis (Drop), the
	// producer advances tail/nFly (stage), and commit — which runs at the
	// end-of-cycle barrier — is the only place that reads both sides.
	// tail always equals (head+nVis+nFly) mod capacity: Drop moves a slot
	// from the visible run to free space by head++/nVis--, leaving the sum
	// unchanged, so the producer never needs the consumer's counters.
	buf   []Flit
	ready []int64 // parallel to buf: first cycle the staged flit may become visible
	head  int     // consumer-owned: ring index of the oldest visible flit
	nVis  int     // consumer-decremented, commit-incremented: visible flits
	nFly  int     // producer-owned: flits pushed but not yet arrived
	tail  int     // producer-owned: ring index of the next free slot

	credits int // producer-side: pushes permitted before the next commit

	pushes int64
	pops   int64

	// pushedNow/poppedNow record per-cycle activity; commit collects and
	// clears them so the runner detects progress without sweeping counters.
	// The producer writes only pushedNow and the consumer only poppedNow,
	// which is what lets the parallel kernel tick both endpoints of a link
	// concurrently.
	pushedNow bool
	poppedNow bool

	// Scheduler bookkeeping (see wake.go). id is the index in System.links
	// (-1 for links built outside a System); wasDrained/wasFly cache the
	// drain/in-flight state as of the last commit so the runner maintains
	// its O(1) termination and fast-forward counters incrementally.
	id         int
	wasDrained bool // phase:commit — cached drain state, updated only by commitLinks
	wasFly     bool // phase:commit — cached in-flight state, updated only by commitLinks

	// sched, when non-nil, receives a markLink on every mutation so the
	// serial kernel commits only dirty links instead of sweeping the census.
	// RunWith wires it for serial runs only: parallel workers mutating links
	// concurrently would race on the shared dirty list, so the parallel
	// kernel leaves it nil and commits by sweep.
	sched *scheduler
}

// touch reports a mutation to the serial kernel's dirty-link tracker.
func (l *Link) touch() {
	if s := l.sched; s != nil {
		s.markLink(l)
	}
}

func newLink(name string, capacity, latency int) *Link {
	// Invalid capacities/latencies are not rejected here: the fabric's
	// static verifier (fabric.Graph.Check) reports them with a diagnostic
	// before any simulation runs, which beats a construction-time panic
	// when a whole graph is being assembled.
	credits := capacity
	if credits < 0 {
		credits = 0
	}
	return &Link{name: name, cap: capacity, latency: latency,
		credits: credits, buf: make([]Flit, credits), ready: make([]int64, credits),
		id: -1, wasDrained: true}
}

// Name returns the link's identifier.
func (l *Link) Name() string { return l.name }

// Capacity returns the skid-buffer depth.
func (l *Link) Capacity() int { return l.cap }

// Latency returns the link latency in cycles.
func (l *Link) Latency() int { return l.latency }

// CanPush reports whether the producer holds a credit this cycle. Credits
// are recomputed only at commit, so the answer cannot change mid-cycle.
func (l *Link) CanPush() bool {
	return l.credits > 0
}

// Credits returns the number of pushes the producer may still perform this
// cycle — the block-transport counterpart of CanPush, letting a batched
// producer size one PushBlock instead of polling CanPush per flit.
func (l *Link) Credits() int { return l.credits }

// stage claims the next free ring slot for a push at cycle, consuming one
// credit and stamping the arrival time. Occupancy (nVis+nFly) can never
// reach capacity while a credit remains, so the claimed slot is free.
func (l *Link) stage(cycle int64) *Flit {
	if l.credits <= 0 {
		panic("sim: push to full link " + l.name)
	}
	l.touch()
	l.credits--
	i := l.tail
	l.tail++
	if l.tail >= len(l.buf) {
		l.tail = 0
	}
	l.ready[i] = cycle + int64(l.latency)
	l.nFly++
	l.pushes++
	l.pushedNow = true
	return &l.buf[i]
}

// Push stages a flit for delivery after the link latency, consuming one
// credit. The caller must check CanPush first; pushing without a credit is
// a modelling bug and panics.
func (l *Link) Push(cycle int64, f Flit) {
	*l.stage(cycle) = f
}

// StageVec is the zero-copy form of Push for data flits: it consumes a
// credit and returns a pointer to the staged flit's (cleared) vector so the
// producer builds lanes directly in the ring instead of copying a whole
// vector through Push. The pointer is valid only until the producer's tick
// returns. The caller must check CanPush first.
func (l *Link) StageVec(cycle int64) *record.Vector {
	f := l.stage(cycle)
	f.EOS = false
	f.Vec.Reset()
	return &f.Vec
}

// PushEOS stages an end-of-stream pulse without copying a flit.
func (l *Link) PushEOS(cycle int64) {
	f := l.stage(cycle)
	f.EOS = true
	f.Vec.Reset()
}

// PushBlock stages up to len(fs) flits in one call, bounded by the credits
// in hand, and returns how many it took. The span is copied into the ring
// with at most two copy calls (one per side of the wrap); credits, the
// occupancy counters, and the push statistics are updated once for the
// whole block, and every flit in the block shares one arrival stamp —
// exactly what per-flit Push calls in the same cycle would have produced.
func (l *Link) PushBlock(cycle int64, fs []Flit) int {
	n := len(fs)
	if n > l.credits {
		n = l.credits
	}
	if n == 0 {
		return 0
	}
	l.touch()
	at := cycle + int64(l.latency)
	first := len(l.buf) - l.tail
	if first > n {
		first = n
	}
	copy(l.buf[l.tail:], fs[:first])
	for i := l.tail; i < l.tail+first; i++ {
		l.ready[i] = at
	}
	if rest := n - first; rest > 0 {
		copy(l.buf, fs[first:n])
		for i := 0; i < rest; i++ {
			l.ready[i] = at
		}
	}
	l.tail += n
	if l.tail >= len(l.buf) {
		l.tail -= len(l.buf)
	}
	l.credits -= n
	l.nFly += n
	l.pushes += int64(n)
	l.pushedNow = true
	return n
}

// Empty reports whether the consumer has nothing to pop this cycle.
func (l *Link) Empty() bool { return l.nVis == 0 }

// Visible returns the number of flits the consumer may pop this cycle —
// the block-transport counterpart of Empty, letting a batched consumer
// size one PeekBlock/DropBlock round instead of polling Empty per flit.
func (l *Link) Visible() int { return l.nVis }

// Peek returns the head flit without consuming it. The pointer's contents
// stay stable until the end-of-cycle commit, even across a Pop/Drop in the
// same tick: the producer cannot stage into the slot because the freed
// credit is only returned at commit, and a full producer burst fills
// exactly the slots that were free at the previous commit. Consumers may
// therefore Drop early and keep reading the peeked flit for the rest of
// their tick. Panics if empty.
func (l *Link) Peek() *Flit {
	if l.nVis == 0 {
		panic("sim: peek on empty link " + l.name)
	}
	return &l.buf[l.head]
}

// PeekBlock returns the longest contiguous span of visible flits starting
// at the head — the whole visible run when it does not wrap, the head-side
// piece when it does (a second call after DropBlock(len(span)) yields the
// rest). The span aliases the ring with the same stability guarantee as
// Peek: its contents survive until the end-of-cycle commit, even across
// same-tick drops. An empty link yields an empty span.
func (l *Link) PeekBlock() []Flit {
	n := l.nVis
	if max := len(l.buf) - l.head; n > max {
		n = max
	}
	return l.buf[l.head : l.head+n]
}

// Pop consumes and returns the head flit. Panics if empty. Consumers on the
// hot path that only inspect the flit should prefer Peek+Drop, which skips
// this copy.
func (l *Link) Pop() Flit {
	f := *l.Peek()
	l.Drop()
	return f
}

// Drop consumes the head flit without copying it out (the zero-copy
// counterpart of Pop, paired with Peek). Panics if empty.
func (l *Link) Drop() {
	if l.nVis == 0 {
		panic("sim: pop on empty link " + l.name)
	}
	l.touch()
	l.head++
	if l.head >= len(l.buf) {
		l.head = 0
	}
	l.nVis--
	l.pops++
	l.poppedNow = true
}

// DropBlock consumes n visible flits with one counter update — the block
// form of Drop, paired with PeekBlock. Panics if fewer than n are visible.
func (l *Link) DropBlock(n int) {
	if n == 0 {
		return
	}
	if n < 0 || n > l.nVis {
		panic("sim: block pop beyond visible run on link " + l.name)
	}
	l.touch()
	l.head += n
	if l.head >= len(l.buf) {
		l.head -= len(l.buf)
	}
	l.nVis -= n
	l.pops += int64(n)
	l.poppedNow = true
}

// PopBlock copies up to len(dst) visible flits out of the ring — at most
// two copy calls around the wrap — consumes them, and returns the count.
// Counters update once per block. Consumers that can work in place should
// prefer PeekBlock/DropBlock, which skip the copy entirely.
func (l *Link) PopBlock(dst []Flit) int {
	n := len(dst)
	if n > l.nVis {
		n = l.nVis
	}
	if n == 0 {
		return 0
	}
	first := len(l.buf) - l.head
	if first > n {
		first = n
	}
	copy(dst[:first], l.buf[l.head:l.head+first]) // lint:phaseconf-ok dst is the consuming component's own staging storage; the consumer side of a link is owned by the claiming worker until commit
	if rest := n - first; rest > 0 {
		copy(dst[first:n], l.buf[:rest]) // lint:phaseconf-ok dst is the consuming component's own staging storage; the consumer side of a link is owned by the claiming worker until commit
	}
	l.DropBlock(n)
	return n
}

// Drained reports whether no flits remain anywhere in the link.
func (l *Link) Drained() bool { return l.nVis == 0 && l.nFly == 0 }

// Pushes returns the total flits ever pushed (for stats/deadlock detection).
func (l *Link) Pushes() int64 { return l.pushes }

// Pops returns the total flits ever popped.
func (l *Link) Pops() int64 { return l.pops }

// pending reports whether commit has any work this cycle: per-cycle
// activity to collect or in-flight entries that may arrive.
func (l *Link) pending() bool { return l.pushedNow || l.poppedNow || l.nFly > 0 }

// nextArrival returns the maturity stamp of the oldest in-flight flit.
// Stamps are nondecreasing along the ring (pushes happen at nondecreasing
// cycles with a constant latency), so the oldest in-flight entry is the
// next to arrive. Callers guarantee nFly > 0. phase:commit — read by the
// runner's fast-forward between cycles, never during ticks.
func (l *Link) nextArrival() int64 {
	i := l.head + l.nVis
	if i >= len(l.buf) {
		i -= len(l.buf)
	}
	return l.ready[i]
}

// commit ends the link's cycle: arrived in-flight flits join the visible
// run (a boundary advance over the dense ready array, not a copy — whole
// spans promote in one scan), the producer's credits are recomputed from
// the space the consumer freed, and the per-cycle activity flags are
// collected. It returns the progress signal the deadlock detector consumes
// (a push or pop happened) and a wake signal for the event scheduler:
// whether anything observable about the link changed this cycle — traffic,
// an arrival, or a credit return — meaning the endpoints (and any
// component inspecting this link's state) must be re-examined.
func (l *Link) commit(cycle int64) (progress, wake bool) {
	arrivals := 0
	for l.nFly > 0 {
		i := l.head + l.nVis
		if i >= len(l.buf) {
			i -= len(l.buf)
		}
		// ready <= cycle+1: a flit pushed at cycle C with latency 1 is
		// visible at cycle C+1, i.e. after this commit.
		if l.ready[i] > cycle+1 {
			break
		}
		l.nVis++
		l.nFly--
		arrivals++
	}
	// Credit return: every buffer slot not occupied (and not promised to a
	// flit still in flight) is a credit for the producer's next cycle.
	credits := l.cap - l.nVis - l.nFly
	if credits < 0 {
		credits = 0
	}
	gained := credits > l.credits
	l.credits = credits
	progress = l.pushedNow || l.poppedNow
	wake = progress || arrivals > 0 || gained
	l.pushedNow = false
	l.poppedNow = false
	return progress, wake
}
