package sim

import "aurochs/internal/record"

// Flit is one beat on a link: either a vector of records or the
// end-of-stream pulse that a tile sends downstream once all of its upstream
// producers have signalled stream end (paper §III-A).
type Flit struct {
	Vec record.Vector
	EOS bool
}

// Link is a registered, latency-annotated FIFO between two components.
//
// Semantics:
//   - Push in cycle N is visible to Pop no earlier than cycle N+latency.
//   - Flow control is credit-based: the producer holds one credit per slot
//     of consumer-side space that is guaranteed to exist when the flit
//     arrives. A push consumes a credit; a pop frees a slot, but the credit
//     returns to the producer only at the end-of-cycle commit (the credit
//     wire is registered too). Entries in flight within the latency window
//     therefore hold a credit even though they occupy pipeline registers,
//     not buffer slots — the skid buffer must have room for every flit the
//     producer has launched.
//   - CanPush is a pure function of state committed at the end of the
//     previous cycle: pops performed earlier in the same cycle cannot make
//     it flip from false to true, so tick order stays unobservable.
type Link struct {
	name    string
	cap     int
	latency int

	buf      []Flit   // visible to the consumer
	inflight []timedF // pushed, not yet arrived

	credits int // producer-side: pushes permitted before the next commit

	pushes int64
	pops   int64

	// pushedNow/poppedNow record per-cycle activity; commit collects and
	// clears them so the runner detects progress without sweeping counters.
	pushedNow bool
	poppedNow bool
}

type timedF struct {
	f     Flit
	ready int64 // first cycle the flit may enter buf
}

func newLink(name string, capacity, latency int) *Link {
	// Invalid capacities/latencies are not rejected here: the fabric's
	// static verifier (fabric.Graph.Check) reports them with a diagnostic
	// before any simulation runs, which beats a construction-time panic
	// when a whole graph is being assembled.
	credits := capacity
	if credits < 0 {
		credits = 0
	}
	return &Link{name: name, cap: capacity, latency: latency, credits: credits}
}

// Name returns the link's identifier.
func (l *Link) Name() string { return l.name }

// Capacity returns the skid-buffer depth.
func (l *Link) Capacity() int { return l.cap }

// Latency returns the link latency in cycles.
func (l *Link) Latency() int { return l.latency }

// CanPush reports whether the producer holds a credit this cycle. Credits
// are recomputed only at commit, so the answer cannot change mid-cycle.
func (l *Link) CanPush() bool {
	return l.credits > 0
}

// Push stages a flit for delivery after the link latency, consuming one
// credit. The caller must check CanPush first; pushing without a credit is
// a modelling bug and panics.
func (l *Link) Push(cycle int64, f Flit) {
	if l.credits <= 0 {
		panic("sim: push to full link " + l.name)
	}
	l.credits--
	l.inflight = append(l.inflight, timedF{f: f, ready: cycle + int64(l.latency)})
	l.pushes++
	l.pushedNow = true
}

// Empty reports whether the consumer has nothing to pop this cycle.
func (l *Link) Empty() bool { return len(l.buf) == 0 }

// Peek returns the head flit without consuming it. Panics if empty.
func (l *Link) Peek() Flit {
	if len(l.buf) == 0 {
		panic("sim: peek on empty link " + l.name)
	}
	return l.buf[0]
}

// Pop consumes and returns the head flit. Panics if empty.
func (l *Link) Pop() Flit {
	f := l.Peek()
	l.buf = l.buf[1:]
	l.pops++
	l.poppedNow = true
	return f
}

// Drained reports whether no flits remain anywhere in the link.
func (l *Link) Drained() bool { return len(l.buf) == 0 && len(l.inflight) == 0 }

// Pushes returns the total flits ever pushed (for stats/deadlock detection).
func (l *Link) Pushes() int64 { return l.pushes }

// Pops returns the total flits ever popped.
func (l *Link) Pops() int64 { return l.pops }

// commit ends the link's cycle: arrived in-flight flits move into the
// visible buffer, the producer's credits are recomputed from the space the
// consumer freed, and the per-cycle activity flags are collected. It
// reports whether the link saw a push or a pop this cycle — the progress
// signal the runner's deadlock detector consumes.
func (l *Link) commit(cycle int64) bool {
	n := 0
	for n < len(l.inflight) && l.inflight[n].ready <= cycle+1 {
		// ready <= cycle+1: a flit pushed at cycle C with latency 1 is
		// visible at cycle C+1, i.e. after this commit.
		l.buf = append(l.buf, l.inflight[n].f)
		n++
	}
	l.inflight = l.inflight[n:]
	// Credit return: every buffer slot not occupied (and not promised to a
	// flit still in flight) is a credit for the producer's next cycle.
	l.credits = l.cap - len(l.buf) - len(l.inflight)
	if l.credits < 0 {
		l.credits = 0
	}
	active := l.pushedNow || l.poppedNow
	l.pushedNow = false
	l.poppedNow = false
	return active
}
