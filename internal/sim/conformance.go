package sim

import "fmt"

// This file is the runtime half of the tickpurity/idle contract that
// internal/analysis checks statically: a conformance harness that runs a
// system with every Idle answer cross-checked against the Tick it would
// have suppressed. The static analyzer proves observation methods cannot
// write state; this harness proves the *answers* are right — that a
// component claiming quiescence really has nothing to do. Component
// packages drive it from table-driven tests covering each registered
// component type.

// IdleViolation reports one breach of the Idler contract observed by
// VerifyIdleContract.
type IdleViolation struct {
	// Component is the offender's Name().
	Component string
	// Cycle is when the breach was observed.
	Cycle int64
	// What describes the breach.
	What string
}

func (e *IdleViolation) Error() string {
	return fmt.Sprintf("sim: idle contract violated by %q at cycle %d: %s", e.Component, e.Cycle, e.What)
}

// VerifyIdleContract runs the system to completion on an instrumented
// serial kernel that never actually skips: whenever a component answers
// Idle(cycle)=true, its Tick is invoked anyway and must prove to be the
// no-op the contract promises — no link push or pop anywhere in the
// system, and no change to Done(). Idle is also asked twice to catch
// answers that depend on anything but simulation state. The first breach
// aborts the run as an *IdleViolation; a clean run that fails to drain
// within maxCycles returns *BudgetError, so a component whose Idle=true
// starves its own pending work (the runner would skip it forever) is
// caught by the same harness even though each individual answer looked
// harmless.
func VerifyIdleContract(sys *System, maxCycles int64) error {
	start := sys.cycle
	for sys.cycle-start < maxCycles {
		if sys.allDone() {
			return nil
		}
		cycle := sys.cycle
		for i, c := range sys.comps {
			idler := sys.idlers[i]
			claimed := idler != nil && idler.Idle(cycle)
			if claimed && !idler.Idle(cycle) {
				return &IdleViolation{Component: c.Name(), Cycle: cycle,
					What: "Idle answered true then false in the same cycle; the answer must be a pure function of simulation state"}
			}
			doneBefore := c.Done()
			pushes, pops := sys.linkTotals()
			c.Tick(cycle)
			if claimed {
				p, q := sys.linkTotals()
				if p != pushes || q != pops {
					return &IdleViolation{Component: c.Name(), Cycle: cycle,
						What: fmt.Sprintf("Idle answered true but Tick moved data (%d pushes, %d pops); the runner would have skipped real work", p-pushes, q-pops)}
				}
				if c.Done() != doneBefore {
					return &IdleViolation{Component: c.Name(), Cycle: cycle,
						What: "Idle answered true but Tick changed Done()"}
				}
			}
		}
		for _, l := range sys.links {
			l.commit(cycle)
		}
		sys.cycle++
	}
	if sys.allDone() {
		return nil
	}
	return &BudgetError{Budget: maxCycles, Cycle: sys.cycle, Stuck: sys.stuckNames()}
}

// WakeViolation reports a breach of the wake-registration contract
// observed by VerifyWakeContract: a component the event scheduler put to
// sleep answered Idle=false on a cycle no wake event targeted it.
type WakeViolation struct {
	// Component is the offender's Name().
	Component string
	// Cycle is when the breach was observed.
	Cycle int64
	// What describes the breach.
	What string
}

func (e *WakeViolation) Error() string {
	return fmt.Sprintf("sim: wake contract violated by %q at cycle %d: %s", e.Component, e.Cycle, e.What)
}

// VerifyWakeContract is the event-scheduler extension of
// VerifyIdleContract: it runs the system on the serial wake kernel and, on
// every cycle, cross-checks each *sleeping* component's Idle answer. A
// sleeping component answering Idle=false has work the scheduler does not
// know about — its WakeHint failed to register an internal timer, or its
// state is mutated through a channel not declared via ports/SharedState —
// and the polling kernel would have ticked it, so the kernels diverge.
// The first breach aborts the run as a *WakeViolation; a clean run that
// fails to drain within maxCycles returns *BudgetError (a missed wake that
// only ever manifests as a stall is still caught).
func VerifyWakeContract(sys *System, maxCycles int64) error {
	sched := newScheduler(sys)
	start := sys.cycle
	for sys.cycle-start < maxCycles {
		if sched.allDone() {
			return nil
		}
		cycle := sys.cycle
		sched.beginCycle(cycle)
		// No fast-forward: every cycle is audited, including quiescent
		// ones (exactly where a missed wake registration hides).
		for i, c := range sys.comps {
			if sched.awake.get(i) {
				continue // scheduled for examination this cycle
			}
			if sys.idlers[i] != nil && !sys.idlers[i].Idle(cycle) {
				return &WakeViolation{Component: c.Name(), Cycle: cycle,
					What: "asleep but Idle answered false: the component has work no wake event announces (missing WakeHint timer or undeclared shared state)"}
			}
		}
		sched.stepSerial(cycle)
		sys.cycle++
	}
	if sched.allDone() {
		return nil
	}
	return &BudgetError{Budget: maxCycles, Cycle: sys.cycle, Stuck: sys.stuckNames()}
}

// linkTotals sums cumulative push and pop counts across every link —
// the cheap observable the conformance harness differences around a Tick.
func (s *System) linkTotals() (pushes, pops int64) {
	for _, l := range s.links {
		pushes += l.pushes
		pops += l.pops
	}
	return pushes, pops
}
