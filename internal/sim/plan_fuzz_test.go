package sim

import (
	"reflect"
	"testing"
)

// Fuzzing the shard planner. The bytes steer a synthetic topology —
// component count, link wiring (including multi-producer/multi-consumer
// links), shared-state keys (both identity keys and *Link keys), and
// port-less opaque components — and the harness checks the planner's
// structural contract on whatever graph falls out: no panic, a partition
// (every component in exactly one shard), coherent (stage, lane)
// numbering, stages that respect link direction, and bit-identical plans
// on re-planning.

// fzPort is a fuzz component with arbitrary port lists and shared keys. It
// never runs (the fuzz target only plans), so Tick is empty.
type fzPort struct {
	name string
	ins  []*Link
	outs []*Link
	keys []any
}

func (c *fzPort) Name() string         { return c.name }
func (c *fzPort) Done() bool           { return true }
func (c *fzPort) Tick(int64)           {}
func (c *fzPort) InputLinks() []*Link  { return c.ins }
func (c *fzPort) OutputLinks() []*Link { return c.outs }
func (c *fzPort) SharedState() []any   { return c.keys }

// fzOpaque has neither ports nor a SharedState declaration, so the planner
// must conservatively co-locate every instance.
type fzOpaque struct{ name string }

func (c *fzOpaque) Name() string { return c.name }
func (c *fzOpaque) Done() bool   { return true }
func (c *fzOpaque) Tick(int64)   {}

// buildFuzzSystem decodes data into a System plus the producer→consumer
// component pairs of every link (for the direction check) and the indices
// of the opaque components.
func buildFuzzSystem(data []byte) (s *System, edges [][2]int, opaque []int) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	s = NewSystem()
	nPort := 1 + int(next())%20
	nLink := int(next()) % 24
	nKey := int(next()) % 4
	nOpq := int(next()) % 3

	ports := make([]*fzPort, nPort)
	for i := range ports {
		ports[i] = &fzPort{name: "p"}
		s.Add(ports[i])
	}
	links := make([]*Link, nLink)
	for i := range links {
		b := next()
		links[i] = s.NewLink("l", 1+int(b&3), 1+int(b>>2&3))
	}
	for _, l := range links {
		b := next()
		p := int(b) % nPort
		c := int(next()) % nPort
		ports[p].outs = append(ports[p].outs, l)
		ports[c].ins = append(ports[c].ins, l)
		prods, conss := []int{p}, []int{c}
		if b&0x80 != 0 { // second producer: same-side endpoints must co-shard
			p2 := int(next()) % nPort
			ports[p2].outs = append(ports[p2].outs, l)
			prods = append(prods, p2)
		}
		if b&0x40 != 0 { // second consumer
			c2 := int(next()) % nPort
			ports[c2].ins = append(ports[c2].ins, l)
			conss = append(conss, c2)
		}
		for _, pp := range prods {
			for _, cc := range conss {
				edges = append(edges, [2]int{pp, cc})
			}
		}
	}
	keyPool := make([]*int, nKey)
	for i := range keyPool {
		keyPool[i] = new(int)
	}
	for _, c := range ports {
		kb := next()
		if kb&1 != 0 && nKey > 0 {
			c.keys = append(c.keys, keyPool[int(kb>>1)%nKey])
		}
		if kb&2 != 0 && nLink > 0 {
			c.keys = append(c.keys, links[int(kb>>2)%nLink])
		}
	}
	for i := 0; i < nOpq; i++ {
		opaque = append(opaque, len(s.comps))
		s.Add(&fzOpaque{name: "o"})
	}
	return s, edges, opaque
}

func FuzzPlanShards(f *testing.F) {
	// Seeds mirror the committed corpus in testdata/fuzz/FuzzPlanShards:
	// a bare chain, a recirculating cycle, fan-in/fan-out with shared keys,
	// and opaque components alongside a multi-endpoint link.
	f.Add([]byte{})
	f.Add([]byte{3, 3, 0, 0, 0, 0, 1, 0, 1, 2, 0, 2, 3})
	f.Add([]byte{2, 3, 0, 0, 5, 0, 1, 9, 1, 2, 2, 2, 0})
	f.Add([]byte{7, 4, 3, 2, 0, 0x80, 0, 1, 2, 0x40, 2, 3, 4, 0, 4, 5, 0, 6, 1, 3, 5, 7, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, edges, opaque := buildFuzzSystem(data)
		n := len(s.comps)
		plan := s.PlanShards()

		if len(plan.Stage) != len(plan.Shards) || len(plan.Lane) != len(plan.Shards) {
			t.Fatalf("ragged plan: %d shards, %d stages, %d lanes",
				len(plan.Shards), len(plan.Stage), len(plan.Lane))
		}
		if len(plan.CompStage) != n {
			t.Fatalf("CompStage covers %d of %d components", len(plan.CompStage), n)
		}

		// Partition: every component in exactly one shard, members sorted.
		shardOf := make([]int, n)
		for i := range shardOf {
			shardOf[i] = -1
		}
		largest := 0
		for si, sh := range plan.Shards {
			if len(sh) == 0 {
				t.Fatalf("shard %d is empty", si)
			}
			if len(sh) > largest {
				largest = len(sh)
			}
			for k, i := range sh {
				if i < 0 || i >= n {
					t.Fatalf("shard %d contains out-of-range component %d", si, i)
				}
				if shardOf[i] >= 0 {
					t.Fatalf("component %d in shards %d and %d", i, shardOf[i], si)
				}
				shardOf[i] = si
				if k > 0 && sh[k-1] >= i {
					t.Fatalf("shard %d members not strictly ascending: %v", si, sh)
				}
			}
		}
		for i, si := range shardOf {
			if si < 0 {
				t.Fatalf("component %d in no shard", i)
			}
			if plan.CompStage[i] != plan.Stage[si] {
				t.Fatalf("CompStage[%d]=%d but its shard %d has stage %d",
					i, plan.CompStage[i], si, plan.Stage[si])
			}
		}
		if plan.Largest != largest {
			t.Fatalf("Largest=%d, biggest shard has %d", plan.Largest, largest)
		}

		// (stage, lane) numbering: stages nondecreasing across shards, lanes
		// consecutive from 0 within each stage, shape metrics consistent.
		stages, maxLanes := 0, 0
		for si := range plan.Shards {
			if si == 0 || plan.Stage[si] != plan.Stage[si-1] {
				stages++
				if plan.Lane[si] != 0 {
					t.Fatalf("shard %d opens stage %d at lane %d", si, plan.Stage[si], plan.Lane[si])
				}
			} else if plan.Lane[si] != plan.Lane[si-1]+1 {
				t.Fatalf("shard %d lane %d after lane %d", si, plan.Lane[si], plan.Lane[si-1])
			}
			if si > 0 && plan.Stage[si] < plan.Stage[si-1] {
				t.Fatalf("stage order regresses at shard %d: %d after %d", si, plan.Stage[si], plan.Stage[si-1])
			}
			if plan.Lane[si]+1 > maxLanes {
				maxLanes = plan.Lane[si] + 1
			}
		}
		if plan.Stages != stages || plan.MaxLanes != maxLanes {
			t.Fatalf("shape metrics: Stages=%d/%d MaxLanes=%d/%d", plan.Stages, stages, plan.MaxLanes, maxLanes)
		}

		// Direction: a link edge never points to an earlier stage, and an
		// equal-stage edge between distinct shards is legal only inside a
		// recirculating loop — the consumer's shard must reach the producer's
		// back through the shard-level link graph.
		adj := map[int][]int{}
		for _, e := range edges {
			a, b := shardOf[e[0]], shardOf[e[1]]
			if a != b {
				adj[a] = append(adj[a], b)
			}
		}
		reaches := func(from, to int) bool {
			seen := map[int]bool{from: true}
			work := []int{from}
			for len(work) > 0 {
				v := work[len(work)-1]
				work = work[:len(work)-1]
				if v == to {
					return true
				}
				for _, w := range adj[v] {
					if !seen[w] {
						seen[w] = true
						work = append(work, w)
					}
				}
			}
			return false
		}
		for _, e := range edges {
			ps, cs := plan.CompStage[e[0]], plan.CompStage[e[1]]
			if ps > cs {
				t.Fatalf("link %d->%d runs from stage %d back to stage %d", e[0], e[1], ps, cs)
			}
			if ps == cs && shardOf[e[0]] != shardOf[e[1]] && !reaches(shardOf[e[1]], shardOf[e[0]]) {
				t.Fatalf("equal-stage link %d->%d crosses shards outside a cycle", e[0], e[1])
			}
		}

		// Opaque components are conservatively one atom.
		for _, i := range opaque[min(1, len(opaque)):] {
			if shardOf[i] != shardOf[opaque[0]] {
				t.Fatalf("opaque components split across shards %d and %d", shardOf[opaque[0]], shardOf[i])
			}
		}

		// Determinism: planning is a pure function of the topology.
		if again := s.PlanShards(); !reflect.DeepEqual(plan, again) {
			t.Fatalf("re-planning the same system produced a different plan")
		}
	})
}
