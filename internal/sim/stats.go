package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a named-counter set shared across a simulation. Components
// record microarchitectural events (bank conflicts, grants, stalls,
// compactions, DRAM row hits/misses) that the benchmark harness and tests
// read back to explain throughput numbers.
//
// The hot path is a Counter handle: components resolve their counter names
// once at construction and bump an atomic int64 per event — no per-tick map
// lookup, no string hashing, no interface boxing of deltas, and no lock:
// a bare atomic add is the entire cost. Increments are commutative, so
// final values are independent of tick order — which is what keeps the
// parallel kernel bit-identical to the serial one. Snapshot coherence is
// per-counter (each value is an atomic load); every harness in this
// repository snapshots at rest — after RunWith returns or between cycles —
// where per-counter atomicity is full coherence. A snapshot taken while
// worker goroutines are mid-tick would be a phase-discipline breach long
// before it is a stats problem.
type Stats struct {
	mu       sync.RWMutex // guards the counters map (registration), not Add
	counters map[string]*Counter

	// meta holds host-side run telemetry (kernel selection, fallback
	// reasons, worker resolution) keyed by name. It is deliberately a
	// separate namespace from the counters: counters are simulation results
	// and must be bit-identical across kernels, while meta *describes* the
	// kernel choice and differs between serial and parallel runs by design.
	// Snapshot and String never include it; read it with Meta/MetaLookup.
	metaMu sync.Mutex
	meta   map[string]string // phase:commit — host telemetry, written only outside the tick phase
}

// Counter is a handle to one named statistic. Obtain with Stats.Counter at
// construction time; Add is safe from concurrent workers.
type Counter struct {
	v int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	atomic.AddInt64(&c.v, delta)
}

// Value returns the counter's current value.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// NewStats returns an empty counter set.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*Counter)}
}

// Counter returns the handle for name, creating it at zero on first use.
func (s *Stats) Counter(name string) *Counter {
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	s.counters[name] = c
	return c
}

// Add increments counter name by delta (the by-name convenience for cold
// paths; hot paths should hold a Counter handle).
func (s *Stats) Add(name string, delta int64) {
	s.Counter(name).Add(delta)
}

// Get returns counter name (zero if never written).
func (s *Stats) Get(name string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c := s.counters[name]; c != nil {
		return c.Value()
	}
	return 0
}

// Ratio returns num/den as a float, or 0 when den is zero.
func (s *Stats) Ratio(num, den string) float64 {
	d := s.Get(den)
	if d == 0 {
		return 0
	}
	return float64(s.Get(num)) / float64(d)
}

// Snapshot returns a copy of every counter. Each value is an atomic load;
// callers snapshot at rest (after a run or between cycles), where that is
// full coherence.
func (s *Stats) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.counters))
	// lint:maprange-ok — copying into a map; order cannot matter.
	for k, c := range s.counters {
		out[k] = atomic.LoadInt64(&c.v)
	}
	return out
}

// SetMeta records one host-side telemetry fact (e.g. the kernel fallback
// reason). Meta is outside the counter namespace: it never appears in
// Snapshot or String, so it cannot break serial/parallel stats identity.
func (s *Stats) SetMeta(name, value string) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if s.meta == nil {
		s.meta = make(map[string]string)
	}
	s.meta[name] = value
}

// Meta returns a copy of the host-side telemetry map.
func (s *Stats) Meta() map[string]string {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	out := make(map[string]string, len(s.meta))
	// lint:maprange-ok — copying into a map; order cannot matter.
	for k, v := range s.meta {
		out[k] = v
	}
	return out
}

// MetaLookup returns one telemetry value and whether it was recorded.
func (s *Stats) MetaLookup(name string) (string, bool) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	v, ok := s.meta[name]
	return v, ok
}

// Names returns all counter names, sorted.
func (s *Stats) Names() []string {
	snap := s.Snapshot()
	out := make([]string, 0, len(snap))
	for k := range snap {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders all counters, one per line, sorted by name. The render
// works from a single coherent Snapshot, never from per-counter reads.
func (s *Stats) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %12d\n", k, snap[k])
	}
	return b.String()
}
