package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats is a named-counter set shared across a simulation. Components
// record microarchitectural events (bank conflicts, grants, stalls,
// compactions, DRAM row hits/misses) that the benchmark harness and tests
// read back to explain throughput numbers.
//
// Counters are sharded by name hash: a single simulation running on the
// parallel tick path has many components incrementing counters in the same
// cycle, and a single mutex would serialize exactly the hot path the
// worker pool exists to spread out. Increments are commutative, so the
// final values are independent of tick order — which is what keeps the
// parallel kernel bit-identical to the serial one.
type Stats struct {
	shards [statsShards]statsShard
}

type statsShard struct {
	mu       sync.Mutex
	counters map[string]int64
}

// statsShards is the stripe count; a small power of two keeps the hash
// cheap while spreading contention across more locks than workers.
const statsShards = 32

// NewStats returns an empty counter set.
func NewStats() *Stats {
	s := &Stats{}
	for i := range s.shards {
		s.shards[i].counters = make(map[string]int64)
	}
	return s
}

// shard maps a counter name to its stripe (FNV-1a, deterministic).
func (s *Stats) shard(name string) *statsShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &s.shards[h&(statsShards-1)]
}

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta int64) {
	sh := s.shard(name)
	sh.mu.Lock()
	sh.counters[name] += delta
	sh.mu.Unlock()
}

// Get returns counter name (zero if never written).
func (s *Stats) Get(name string) int64 {
	sh := s.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.counters[name]
}

// Ratio returns num/den as a float, or 0 when den is zero.
func (s *Stats) Ratio(num, den string) float64 {
	d := s.Get(den)
	if d == 0 {
		return 0
	}
	return float64(s.Get(num)) / float64(d)
}

// Snapshot returns a coherent copy of every counter: all stripe locks are
// held while the copy is taken, so a reader racing concurrent writers sees
// one consistent point in time rather than a torn mix of before/after
// values.
func (s *Stats) Snapshot() map[string]int64 {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	out := make(map[string]int64)
	for i := range s.shards {
		// lint:maprange-ok — copying into a map; order cannot matter.
		for k, v := range s.shards[i].counters {
			out[k] = v
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	return out
}

// Names returns all counter names, sorted.
func (s *Stats) Names() []string {
	snap := s.Snapshot()
	out := make([]string, 0, len(snap))
	for k := range snap {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders all counters, one per line, sorted by name. The render
// works from a single coherent Snapshot, never from per-counter reads.
func (s *Stats) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %12d\n", k, snap[k])
	}
	return b.String()
}
