package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats is a named-counter set shared across a simulation. Components
// record microarchitectural events (bank conflicts, grants, stalls,
// compactions, DRAM row hits/misses) that the benchmark harness and tests
// read back to explain throughput numbers.
//
// The counter map is mutex-guarded: a single simulation is synchronous,
// but harnesses run several simulations (and the parallel CPU baselines)
// from concurrent goroutines, and a Stats handle outlives its run.
type Stats struct {
	mu       sync.Mutex
	counters map[string]int64
}

// NewStats returns an empty counter set.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]int64)}
}

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta int64) {
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// Get returns counter name (zero if never written).
func (s *Stats) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Ratio returns num/den as a float, or 0 when den is zero.
func (s *Stats) Ratio(num, den string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.counters[den]
	if d == 0 {
		return 0
	}
	return float64(s.counters[num]) / float64(d)
}

// Names returns all counter names, sorted.
func (s *Stats) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counters))
	for k := range s.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders all counters, one per line, sorted by name.
func (s *Stats) String() string {
	var b strings.Builder
	for _, k := range s.Names() {
		fmt.Fprintf(&b, "%-40s %12d\n", k, s.Get(k))
	}
	return b.String()
}
