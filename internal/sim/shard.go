package sim

import "sort"

// Two-level sharding: stage × lane.
//
// The unit of parallel scheduling is the *atom*: the smallest set of
// components that must tick on one worker, in registration order, for the
// parallel kernel to reproduce the serial kernel bit-for-bit. Atoms are
// computed by union-find exactly as before (same-side link endpoints race;
// declared SharedState keys interleave through heap the kernel cannot see).
//
// What changed is everything above the atom. The old kernel packed atoms
// into one static bin per worker and walked every bin member every cycle;
// a 16-lane join whose lanes woke unevenly left most workers idling at the
// barrier while one walked its whole bin. The planner now gives each atom a
// two-level identity:
//
//   - stage: the atom's topological layer in the link graph (strongly
//     connected components — the recirculating loops — collapse to one
//     layer, then longest-path from the sources). Stages are the paper's
//     pipeline phases: partition feeds build feeds probe.
//   - lane: the atom's ordinal within its stage. A P-pipeline kernel shows
//     up as P lanes per stage — components whose links never alias and
//     whose SharedState keys are disjoint, so they may tick concurrently.
//
// Shards (= atoms, ordered by (stage, lane)) are the currency of the
// work-stealing scheduler in steal.go: each cycle only the *woken* shards
// are enqueued, and idle workers steal half of a victim's remaining shards
// instead of waiting at the barrier. The ShardPlan is also the kernel's
// telemetry: auto mode's fallback decisions quote its shape instead of
// silently running serial.

// ShardPlan is the deterministic two-level decomposition of a System's
// components for the parallel kernel, plus the derived shape metrics the
// auto-mode heuristics and the bench harness report.
type ShardPlan struct {
	// Shards holds the correctness atoms, each a sorted slice of component
	// indices, ordered by (Stage, Lane). Every component appears in exactly
	// one shard.
	Shards [][]int
	// Stage[s] is shard s's topological layer; Lane[s] its ordinal within
	// that layer. Both are indexed like Shards.
	Stage []int
	Lane  []int
	// CompStage[i] is component i's stage (its shard's stage).
	CompStage []int
	// Stages is the number of topological layers; MaxLanes the lane count
	// of the widest stage.
	Stages   int
	MaxLanes int
	// Largest is the population of the biggest shard — the serial chain the
	// barrier cannot split, which drives the imbalance fallback.
	Largest int
}

// LargestShare returns the largest shard's fraction of all components
// (0 when the plan is empty).
func (p *ShardPlan) LargestShare() float64 {
	n := 0
	for _, s := range p.Shards {
		n += len(s)
	}
	if n == 0 {
		return 0
	}
	return float64(p.Largest) / float64(n)
}

// PlanShards computes the two-level shard decomposition of the registered
// components. The plan is a pure function of the topology: atoms are
// identified by their smallest member, stages by deterministic traversals
// in registration/creation order, and lanes by smallest-member order within
// a stage — no map iteration order is ever consulted.
func (s *System) PlanShards() *ShardPlan {
	n := len(s.comps)
	plan := &ShardPlan{CompStage: make([]int, n)}
	if n == 0 {
		return plan
	}
	atoms, atomOf := buildAtoms(s)
	stage := stageAtoms(s, atoms, atomOf)

	// Order atoms by (stage, smallest member); assign lanes within stages.
	order := make([]int, len(atoms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if stage[order[a]] != stage[order[b]] {
			return stage[order[a]] < stage[order[b]]
		}
		return atoms[order[a]][0] < atoms[order[b]][0]
	})
	lane, lastStage := 0, -1
	for _, a := range order {
		if stage[a] != lastStage {
			lane, lastStage = 0, stage[a]
			plan.Stages++
		}
		plan.Shards = append(plan.Shards, atoms[a])
		plan.Stage = append(plan.Stage, stage[a])
		plan.Lane = append(plan.Lane, lane)
		lane++
		if lane > plan.MaxLanes {
			plan.MaxLanes = lane
		}
		if len(atoms[a]) > plan.Largest {
			plan.Largest = len(atoms[a])
		}
		for _, i := range atoms[a] {
			plan.CompStage[i] = stage[a]
		}
	}
	return plan
}

// linkEnds returns per-link producer and consumer component lists, indexed
// by link id (assigned here, idempotently, in creation order).
func linkEnds(s *System) (prod, cons [][]int) {
	for id, l := range s.links {
		l.id = id
	}
	prod = make([][]int, len(s.links))
	cons = make([][]int, len(s.links))
	add := func(dst [][]int, l *Link, i int) {
		if l != nil && l.id >= 0 && l.id < len(dst) {
			dst[l.id] = append(dst[l.id], i)
		}
	}
	for i, c := range s.comps {
		if op, ok := c.(OutputPorts); ok {
			for _, l := range op.OutputLinks() {
				add(prod, l, i)
			}
		}
		if ip, ok := c.(InputPorts); ok {
			for _, l := range ip.InputLinks() {
				add(cons, l, i)
			}
		}
	}
	return prod, cons
}

// buildAtoms groups components that must share a worker (the union-find
// from the original scheduler, unchanged in what it unions): same-side link
// endpoints, declared shared-state claimants, and — conservatively — every
// component with neither ports nor a SharedState declaration. It returns
// the atoms ordered by smallest member, each sorted ascending, and the
// component→atom index.
func buildAtoms(s *System) (atoms [][]int, atomOf []int) {
	n := len(s.comps)
	uf := newUnionFind(n)
	prod, cons := linkEnds(s)

	// Same-side link endpoints race; union them. (A single producer and a
	// single consumer on one link touch disjoint link state and may run
	// concurrently — that is the whole point of registered links.)
	for id := range s.links {
		for k := 1; k < len(prod[id]); k++ {
			uf.union(prod[id][0], prod[id][k])
		}
		for k := 1; k < len(cons[id]); k++ {
			uf.union(cons[id][0], cons[id][k])
		}
	}

	// Components with no ports and no shared-state claim cannot be proven
	// independent of anything: one conservative atom.
	opaque := -1
	for i, c := range s.comps {
		_, hasOut := c.(OutputPorts)
		_, hasIn := c.(InputPorts)
		_, shares := c.(StateSharer)
		if !hasOut && !hasIn && !shares {
			if opaque < 0 {
				opaque = i
			} else {
				uf.union(opaque, i)
			}
		}
	}

	// Declared shared state: identity keys union their claimants; a *Link
	// key also unions the claimant with the link's endpoints.
	keyOwner := make(map[any]int)
	for i, c := range s.comps {
		ss, ok := c.(StateSharer)
		if !ok {
			continue
		}
		for _, key := range ss.SharedState() {
			if key == nil {
				continue
			}
			if l, isLink := key.(*Link); isLink {
				if l.id >= 0 && l.id < len(prod) {
					for _, j := range prod[l.id] {
						uf.union(i, j)
					}
					for _, j := range cons[l.id] {
						uf.union(i, j)
					}
				}
				continue
			}
			if j, seen := keyOwner[key]; seen {
				uf.union(i, j)
			} else {
				keyOwner[key] = i
			}
		}
	}

	// Collect atoms in order of their smallest member (roots are minimal by
	// the union-find convention, so ascending component order discovers
	// atoms in smallest-member order and members arrive sorted).
	atomOf = make([]int, n)
	rootAtom := make([]int, n)
	for i := range rootAtom {
		rootAtom[i] = -1
	}
	for i := 0; i < n; i++ {
		r := uf.find(i)
		a := rootAtom[r]
		if a < 0 {
			a = len(atoms)
			rootAtom[r] = a
			atoms = append(atoms, nil)
		}
		atoms[a] = append(atoms[a], i)
		atomOf[i] = a
	}
	return atoms, atomOf
}

// stageAtoms assigns each atom a topological layer of the atom-level link
// graph: strongly connected components (the recirculating loops) collapse
// to one layer, and a layer is the longest path from the sources in the
// condensation. Deterministic: edges are discovered in link-creation order
// and the SCC walk seeds atoms in smallest-member order.
func stageAtoms(s *System, atoms [][]int, atomOf []int) []int {
	na := len(atoms)
	prod, cons := linkEnds(s)
	adj := make([][]int32, na)
	for id := range s.links {
		for _, pi := range prod[id] {
			for _, ci := range cons[id] {
				a, b := atomOf[pi], atomOf[ci]
				if a != b {
					adj[a] = append(adj[a], int32(b))
				}
			}
		}
	}
	scc := condense(adj)

	// Tarjan emits SCCs in reverse topological order of the condensation,
	// so walking the emission list backwards visits every predecessor
	// before its successors: one pass computes longest-path layers.
	sccStage := make([]int, scc.count)
	for k := scc.count - 1; k >= 0; k-- {
		// Relax out-edges of every atom in SCC k.
		for a := 0; a < na; a++ {
			if scc.of[a] != int32(k) {
				continue
			}
			for _, b := range adj[a] {
				bs := scc.of[b]
				if bs == int32(k) {
					continue
				}
				if d := sccStage[k] + 1; d > sccStage[bs] {
					sccStage[bs] = d
				}
			}
		}
	}
	stage := make([]int, na)
	for a := 0; a < na; a++ {
		stage[a] = sccStage[scc.of[a]]
	}
	return stage
}

// sccResult maps each node to its strongly connected component. Components
// are numbered in Tarjan emission order, which is reverse topological order
// of the condensation.
type sccResult struct {
	of    []int32
	count int
}

// condense runs an iterative Tarjan SCC over adj. Deterministic: roots are
// tried in ascending index order and edges in list order.
func condense(adj [][]int32) sccResult {
	n := len(adj)
	const unvisited = int32(-1)
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32   // Tarjan's SCC stack
	type frame struct { // explicit DFS stack (graphs can be deep chains)
		v  int32
		ei int
	}
	var frames []frame
	next := int32(0)
	count := 0

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: int32(root)})
		index[root], low[root] = next, next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished: pop an SCC if v is a root, then propagate low.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccResult{of: comp, count: count}
}
