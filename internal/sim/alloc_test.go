package sim

import (
	"testing"

	"aurochs/internal/record"
)

// The zero-allocation contract of the hot path: steady-state link traffic
// must never touch the allocator. These are regression gates — a change
// that reintroduces a per-flit allocation fails here long before it shows
// up on a profile.

func TestLinkPushPopZeroAlloc(t *testing.T) {
	sys := NewSystem()
	l := sys.NewLink("hot", 4, 1)
	var cycle int64
	f := Flit{}
	f.Vec.Push(record.Make(1, 2, 3))
	allocs := testing.AllocsPerRun(1000, func() {
		if l.CanPush() {
			l.Push(cycle, f)
		}
		l.commit(cycle)
		cycle++
		for !l.Empty() {
			_ = l.Pop()
		}
		l.commit(cycle)
		cycle++
	})
	if allocs != 0 {
		t.Fatalf("Link Push/Pop steady state allocates %.1f allocs/op; want 0", allocs)
	}
}

func TestLinkStageVecPeekDropZeroAlloc(t *testing.T) {
	sys := NewSystem()
	l := sys.NewLink("hot", 4, 1)
	var cycle int64
	allocs := testing.AllocsPerRun(1000, func() {
		if l.CanPush() {
			v := l.StageVec(cycle)
			v.Push(record.Make(7, 8))
		}
		l.commit(cycle)
		cycle++
		for !l.Empty() {
			f := l.Peek()
			_ = f.Vec.Mask
			l.Drop()
		}
		l.commit(cycle)
		cycle++
	})
	if allocs != 0 {
		t.Fatalf("Link StageVec/Peek/Drop steady state allocates %.1f allocs/op; want 0", allocs)
	}
}

func TestLinkPushEOSZeroAlloc(t *testing.T) {
	sys := NewSystem()
	l := sys.NewLink("hot", 2, 1)
	var cycle int64
	allocs := testing.AllocsPerRun(1000, func() {
		l.PushEOS(cycle)
		l.commit(cycle)
		cycle++
		l.Drop()
		l.commit(cycle)
		cycle++
	})
	if allocs != 0 {
		t.Fatalf("Link PushEOS steady state allocates %.1f allocs/op; want 0", allocs)
	}
}

func TestCounterAddZeroAlloc(t *testing.T) {
	s := NewStats()
	c := s.Counter("hot.counter")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f allocs/op; want 0", allocs)
	}
	if got := s.Snapshot()["hot.counter"]; got <= 0 {
		t.Fatalf("counter lost its adds: %d", got)
	}
}
