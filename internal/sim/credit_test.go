package sim

import (
	"errors"
	"testing"

	"aurochs/internal/record"
)

func oneRecFlit(v uint32) Flit {
	var vec record.Vector
	vec.Push(record.Make(v))
	return Flit{Vec: vec}
}

// TestCanPushOrderIndependent pins the credit contract: a pop earlier in
// the same cycle must not make CanPush flip from false to true — credits
// return only at commit. (The old accounting computed fullness live from
// len(buf)+len(inflight), so whether a producer saw space depended on
// whether the consumer had already ticked.)
func TestCanPushOrderIndependent(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("x", 1, 1)

	l.Push(0, oneRecFlit(7))
	if l.CanPush() {
		t.Fatal("capacity-1 link should be full after one push")
	}
	l.commit(0)
	if l.CanPush() {
		t.Fatal("flit occupies the buffer; no credit should return")
	}

	// Cycle 1: the consumer pops. Mid-cycle the producer must still see no
	// credit; only the commit at end of cycle returns it.
	l.Pop()
	if l.CanPush() {
		t.Fatal("CanPush flipped mid-cycle after a pop: tick order is observable")
	}
	l.commit(1)
	if !l.CanPush() {
		t.Fatal("credit did not return at commit")
	}
}

// TestLongLatencyLinkThroughput: a link whose capacity covers its latency
// window sustains one flit per cycle. Under the old accounting in-flight
// entries and buffered entries competed for the same space check with no
// documented contract; the credit formulation makes the requirement
// explicit — capacity >= latency+1 for full throughput.
func TestLongLatencyLinkThroughput(t *testing.T) {
	const latency = 4
	s := NewSystem()
	l := s.NewLink("deep", latency+4, latency)

	const cycles = 200
	pushed, popped := 0, 0
	for c := int64(0); c < cycles; c++ {
		if l.CanPush() {
			l.Push(c, oneRecFlit(uint32(pushed)))
			pushed++
		}
		if !l.Empty() {
			f := l.Pop()
			if got := f.Vec.Lane[0].Get(0); got != uint32(popped) {
				t.Fatalf("flit %d arrived out of order (got %d)", popped, got)
			}
			popped++
		}
		l.commit(c)
	}
	// Steady state is one flit per cycle; only the fill of the latency
	// window is lost.
	if popped < cycles-2*latency {
		t.Fatalf("popped %d of %d cycles: long-latency link does not sustain line rate", popped, cycles)
	}

	// A capacity smaller than the latency window must throttle throughput
	// (each credit is out for latency cycles before the commit returns it)
	// — but never deadlock or overfill.
	s2 := NewSystem()
	short := s2.NewLink("short", 2, latency)
	pushed, popped = 0, 0
	for c := int64(0); c < cycles; c++ {
		if short.CanPush() {
			short.Push(c, oneRecFlit(uint32(pushed)))
			pushed++
		}
		if !short.Empty() {
			short.Pop()
			popped++
		}
		short.commit(c)
	}
	if popped == 0 || popped >= cycles-latency {
		t.Fatalf("capacity-2 latency-%d link popped %d of %d: expected throttled but nonzero throughput", latency, popped, cycles)
	}
}

// spinner never finishes but keeps a link busy, so the runner exhausts its
// budget rather than declaring deadlock.
type spinner struct {
	out *Link
	n   int64
}

func (sp *spinner) Name() string         { return "spinner" }
func (sp *spinner) Done() bool           { return false }
func (sp *spinner) OutputLinks() []*Link { return []*Link{sp.out} }
func (sp *spinner) Tick(cycle int64) {
	if sp.out.CanPush() {
		sp.out.Push(cycle, oneRecFlit(uint32(sp.n)))
		sp.n++
	}
}

type drain struct{ in *Link }

func (d *drain) Name() string        { return "drain" }
func (d *drain) Done() bool          { return true }
func (d *drain) InputLinks() []*Link { return []*Link{d.in} }
func (d *drain) Tick(int64) {
	if !d.in.Empty() {
		d.in.Pop()
	}
}

// TestBudgetErrorTyped: budget exhaustion with live traffic is a
// *BudgetError carrying the budget, cycle, and stuck components — distinct
// from *DeadlockError, which means no progress.
func TestBudgetErrorTyped(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("busy", 4, 1)
	s.Add(&spinner{out: l})
	s.Add(&drain{in: l})

	cycles, err := s.Run(50)
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T: %v", err, err)
	}
	var de *DeadlockError
	if errors.As(err, &de) {
		t.Fatal("budget exhaustion misreported as deadlock")
	}
	if be.Budget != 50 || cycles != 50 {
		t.Fatalf("budget=%d cycles=%d, want 50", be.Budget, cycles)
	}
	if len(be.Stuck) == 0 {
		t.Fatal("BudgetError did not name stuck components")
	}
}

// TestGraceWindowFromLatencyBounds: the deadlock window includes declared
// component latency bounds. A component that legally stays silent for
// longer than the base grace must not be misreported as deadlocked.
type slowResponder struct {
	out     *Link
	release int64
	bound   int64
	done    bool
}

func (sr *slowResponder) Name() string                    { return "slow" }
func (sr *slowResponder) Done() bool                      { return sr.done }
func (sr *slowResponder) OutputLinks() []*Link            { return []*Link{sr.out} }
func (sr *slowResponder) WorstCaseInternalLatency() int64 { return sr.bound }
func (sr *slowResponder) Tick(cycle int64) {
	if !sr.done && cycle >= sr.release && sr.out.CanPush() {
		sr.out.Push(cycle, Flit{EOS: true})
		sr.done = true
	}
}

type eosSink struct {
	in  *Link
	eos bool
}

func (es *eosSink) Name() string        { return "eosSink" }
func (es *eosSink) Done() bool          { return es.eos }
func (es *eosSink) InputLinks() []*Link { return []*Link{es.in} }
func (es *eosSink) Tick(int64) {
	if !es.in.Empty() && es.in.Pop().EOS {
		es.eos = true
	}
}

func TestGraceWindowFromLatencyBounds(t *testing.T) {
	// Silent for 2000 cycles: beyond the 256-cycle base grace, within the
	// declared bound.
	s := NewSystem()
	l := s.NewLink("out", 1, 1)
	s.Add(&slowResponder{out: l, release: 2000, bound: 3000})
	s.Add(&eosSink{in: l})
	if _, err := s.Run(100_000); err != nil {
		t.Fatalf("legal silence within declared bound misreported: %v", err)
	}

	// Without the declared bound the same silence is (correctly) a deadlock.
	s2 := NewSystem()
	l2 := s2.NewLink("out", 1, 1)
	s2.Add(&slowResponder{out: l2, release: 2000, bound: 0})
	s2.Add(&eosSink{in: l2})
	_, err := s2.Run(100_000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want deadlock without a latency bound, got %v", err)
	}
}
