package sim

import (
	"math"
	"math/bits"
)

// Event-driven wake scheduling.
//
// The polling kernels ask every component "Idle(cycle)?" every cycle; on
// sparsely active fabrics (most tiles stalled on credits or DRAM most
// cycles, paper §IV) that sweep dominates wall-clock time. The wake
// scheduler inverts it: a component sleeps until an *event* could have
// changed its answer, so a cycle costs O(active components), and stretches
// where nothing is scheduled at all fast-forward to the next timer.
//
// Sleeping is sound only if every way an Idle answer can flip maps to a
// wake. With the kernel's timing discipline there are exactly three:
//
//  1. Link activity. Idle may observe attached links only through the
//     committed-state API (Empty/Peek/CanPush/Drained), and committed link
//     state changes only at the end-of-cycle commit (plus the component's
//     own pushes/pops, which it performs while awake). Commit therefore
//     reports a wake signal whenever anything observable changed — push,
//     pop, arrival, credit return — and the scheduler wakes the link's
//     producers, consumers, and declared sharers for the next cycle.
//  2. A shared-state partner's tick. Components declaring a common
//     StateSharer key interleave through heap state the kernel cannot see
//     (an HBM completion callback filling a DRAM node's buffer, a LoopCtl
//     counter). Whenever such a component ticks, its partners are woken.
//     Crucially the poll kernel evaluates Idle in registration order,
//     interleaved with ticks — a later component already observes an
//     earlier partner's same-cycle mutation — so a tick wakes partners at
//     higher indices for the *same* cycle and partners at lower-or-equal
//     indices for the next one. The drain loop processes indices
//     ascending and accepts insertions ahead of the cursor, reproducing
//     the poll kernel's visibility exactly.
//  3. The passage of time. Internal pipelines mature without any external
//     event (a Map's pipeline register, the HBM write buffer's age-out).
//     Components expose these via WakeHinter; the hint is registered in a
//     bucketed timer wheel when the component goes to sleep.
//
// Components implementing Idler but not WakeHinter keep the old behavior —
// they sit in a poll set and are examined every cycle (the compatibility
// shim). Components without Idler tick every cycle, as always.
//
// Determinism: the wake set is an index bitmap drained in ascending order,
// timers expire into the same bitmap, and link/partner tables are built by
// deterministic traversals — no map iteration anywhere on the cycle path,
// so serial and parallel kernels stay bit-identical (the parallel kernel's
// bins are unions of shared-state groups, which makes every same-cycle
// wake an intra-bin event; see parallel.go).

// WakeHinter is optionally implemented by components (alongside Idler) that
// can sleep between events. WakeHint(cycle) returns the earliest future
// cycle at which the component could become non-idle *without* any activity
// on its attached links and without any tick of a shared-state partner —
// i.e. the maturity time of purely internal state. Components whose
// idleness is entirely link- or partner-driven return WakeNever. The answer
// must be a deterministic function of simulation state, like Idle's.
//
// Implementing WakeHinter is the wake registration the scheduler needs to
// let a component sleep; without it, an Idler component is polled every
// cycle exactly as the pre-event kernels did.
type WakeHinter interface {
	WakeHint(cycle int64) int64
}

// WakeNever is the WakeHint answer of a component with no internal timers:
// only link activity or a shared-state partner's tick can end its sleep.
const WakeNever = int64(math.MaxInt64)

// CallbackHost marks components whose Tick executes completion callbacks
// registered by *other* components — a memory model firing Done closures is
// the canonical case. A callback runs a fragment of its owner's logic, so
// its mutations can reach any state the owner declares shared — state the
// host itself never declared. The scheduler therefore widens a host's
// tick-wake set by one hop: its partners' partners are woken too. One hop
// suffices because a callback owner must be a direct partner of its host
// (it shares the resource that fires the callback) and the sharedstate
// analyzer confines a component's mutations to its declared keys.
type CallbackHost interface {
	HostsCallbacks()
}

// bitset is a fixed-size index set drained in ascending order.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) clearAll() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) orInto(dst bitset) {
	for i := range b {
		dst[i] |= b[i]
	}
}

func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// timerEnt is one scheduled wake: component index and due cycle.
type timerEnt struct {
	comp int32
	at   int64
}

// wheelSlots is the timer wheel horizon. Hints are short in practice
// (pipeline depths, write-buffer ages); farther wakes overflow into a side
// list that is folded back in as the wheel advances.
const wheelSlots = 1024

// timerWheel is a bucketed timer queue: slot cycle%wheelSlots holds the
// wakes due in the wheel's current lap. Entries a full lap or more out wait
// in far. Expiry fills a bitset, so the order entries sit in a bucket is
// unobservable.
type timerWheel struct {
	slots  [][]timerEnt
	far    []timerEnt
	farMin int64
	count  int
}

func newTimerWheel() *timerWheel {
	return &timerWheel{slots: make([][]timerEnt, wheelSlots), farMin: WakeNever}
}

// schedule registers a wake for comp at cycle `at` (callers guarantee
// at > now). Duplicate or stale registrations are harmless: expiry only
// re-examines the component's Idle.
func (w *timerWheel) schedule(now int64, comp int32, at int64) {
	if at-now < wheelSlots {
		idx := at % wheelSlots
		// Buckets are filtered in place at expiry, so each grows to its
		// steady-state population once and then reuses its array.
		w.slots[idx] = append(w.slots[idx], timerEnt{comp: comp, at: at}) // lint:hotalloc-ok bucket warmup growth, array reused after expiry
	} else {
		w.far = append(w.far, timerEnt{comp: comp, at: at}) // lint:hotalloc-ok far-list warmup growth, array reused by refill's in-place filter
		if at < w.farMin {
			w.farMin = at
		}
	}
	w.count++
}

// expireInto wakes everything due at exactly `cycle` into dst. The runner
// visits cycles in nondecreasing order and never jumps past a scheduled
// timer, so entries left in the bucket are due a later lap.
func (w *timerWheel) expireInto(cycle int64, dst bitset) {
	if w.count == 0 {
		return
	}
	if w.farMin-cycle < wheelSlots {
		w.refill(cycle)
	}
	bucket := w.slots[cycle%wheelSlots]
	if len(bucket) == 0 {
		return
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if e.at <= cycle {
			dst.set(int(e.comp))
			w.count--
		} else {
			kept = append(kept, e) // lint:hotalloc-ok in-place filter into bucket[:0], cannot grow
		}
	}
	w.slots[cycle%wheelSlots] = kept
}

// refill folds far entries now within the horizon into their buckets.
func (w *timerWheel) refill(cycle int64) {
	kept := w.far[:0]
	w.farMin = WakeNever
	for _, e := range w.far {
		if e.at-cycle < wheelSlots {
			idx := e.at % wheelSlots
			// Each far entry folds into a bucket exactly once.
			w.slots[idx] = append(w.slots[idx], e) // lint:hotalloc-ok bucket warmup growth, array reused after expiry
		} else {
			kept = append(kept, e) // lint:hotalloc-ok in-place filter into far[:0], cannot grow
			if e.at < w.farMin {
				w.farMin = e.at
			}
		}
	}
	w.far = kept
}

// next returns the earliest scheduled wake at or after cycle, or WakeNever.
// Called only when the whole system is asleep, so an O(entries) sweep is
// fine — and deterministic.
func (w *timerWheel) next(cycle int64) int64 {
	if w.count == 0 {
		return WakeNever
	}
	min := w.farMin
	for _, bucket := range w.slots {
		for _, e := range bucket {
			if e.at >= cycle && e.at < min {
				min = e.at
			}
		}
	}
	return min
}

// scheduler is the per-run wake state. It is rebuilt by each RunWith (and
// by the conformance harnesses), so components and links registered between
// runs are picked up.
type scheduler struct {
	sys      *System
	n        int
	hinters  []WakeHinter  // parallel to comps; nil where not implemented
	batchers []BatchTicker // parallel to comps; nil where not implemented

	awake bitset // components to examine this cycle
	next  bitset // accumulated wakes for the following cycle
	poll  bitset // compatibility shim: always examined (no Idler or no WakeHinter)

	// partners[i] lists the components sharing a non-Link SharedState key
	// with component i (excluding i), ascending. linkWake[l.id] lists the
	// components to wake when link l reports observable change: producers,
	// consumers, and components declaring the link as shared state.
	partners [][]int32
	linkWake [][]int32

	// wakeAhead/wakeBehind are partners[i] precompiled to bitset masks,
	// split by index: partners above i wake the same cycle (OR into awake),
	// partners at or below wake the next (OR into next). Wide groups — every
	// DRAM node sharing one HBM is partnered with every other — made the
	// per-partner set loop a measurable cost; a mask OR is a handful of word
	// ops regardless of group width. nil where a side is empty.
	wakeAhead  []bitset
	wakeBehind []bitset

	// inLinks/outLinks give each component's consumed/produced link ids, in
	// port-declaration order — the occupancy/credit view batchBudget prices
	// a TickBatch offer from.
	inLinks  [][]int32
	outLinks [][]int32

	// Dirty-link commit tracking (serial kernel only). When trackDirty is
	// set, every link mutation (stage/Drop and their block forms) reports
	// the link via markLink, and the commit phase visits exactly the links
	// with pending work — the marked ones plus flyIDs, the links carrying
	// in-flight flits as of the last commit — instead of sweeping the whole
	// census. The parallel kernel keeps the sweep: its workers mutate links
	// concurrently, and a shared dirty list would reintroduce the very
	// cross-worker traffic the owner-split link fields avoid.
	trackDirty bool
	dirtySet   bitset  // over link ids: marked since the last commit
	dirtyIDs   []int32 // phase:tick — marked links, appended by markLink
	flyIDs     []int32 // phase:commit — links with in-flight flits at last commit
	flyScratch []int32 // phase:commit — double buffer for rebuilding flyIDs

	wheel *timerWheel

	// O(1) termination/fast-forward bookkeeping, maintained incrementally:
	// Done can flip only in a Tick (the Idle contract), link drain state
	// only at a commit.
	doneBits  bitset
	notDone   int // phase:commit — census delta applied only after the barrier
	undrained int // phase:commit — maintained by commitLinks alone
	flyLinks  int // phase:commit — links holding in-flight flits (commit work pending)

	// noSkip mirrors RunOptions.NoIdleSkip: never consult Idle, tick every
	// awake component. Ticking re-arms, so after the all-set first cycle
	// every component stays awake — the pre-quiescence behavior.
	noSkip bool

	// noBatch mirrors RunOptions.NoBatch: never offer TickBatch, drive every
	// component through scalar Tick. The reference side of the batch-vs-scalar
	// conformance suite runs with this set.
	noBatch bool
}

func newScheduler(s *System) *scheduler {
	n := len(s.comps)
	sc := &scheduler{
		sys:      s,
		n:        n,
		hinters:  make([]WakeHinter, n),
		batchers: make([]BatchTicker, n),
		awake:    newBitset(n),
		next:     newBitset(n),
		poll:     newBitset(n),
		wheel:    newTimerWheel(),
		doneBits: newBitset(n),
	}
	for i, c := range s.comps {
		h, _ := c.(WakeHinter)
		sc.hinters[i] = h
		bt, _ := c.(BatchTicker)
		sc.batchers[i] = bt
		if s.idlers[i] == nil || h == nil {
			sc.poll.set(i)
		}
		// Everyone is examined on the first cycle; sleeps begin from the
		// first idle answer.
		sc.next.set(i)
		if c.Done() {
			sc.doneBits.set(i)
		} else {
			sc.notDone++
		}
	}
	sc.buildPartnerTables() // assigns link ids
	sc.dirtySet = newBitset(len(s.links))
	sc.dirtyIDs = make([]int32, 0, len(s.links))
	sc.flyIDs = make([]int32, 0, len(s.links))
	sc.flyScratch = make([]int32, 0, len(s.links))
	for _, l := range s.links {
		l.wasDrained = l.Drained()
		l.wasFly = l.nFly > 0
		if !l.wasDrained {
			sc.undrained++
		}
		if l.wasFly {
			sc.flyLinks++
			sc.flyIDs = append(sc.flyIDs, int32(l.id))
		}
	}
	return sc
}

// buildPartnerTables derives the wake topology from the same declarations
// the parallel scheduler shards by: port lists and SharedState keys. All
// traversals run in registration order; the only maps are keyed lookups
// whose iteration order is never consulted.
func (sc *scheduler) buildPartnerTables() {
	s := sc.sys
	sc.linkWake = make([][]int32, len(s.links))
	addLink := func(l *Link, i int) {
		if l == nil || l.id < 0 || l.id >= len(sc.linkWake) {
			return
		}
		sc.linkWake[l.id] = append(sc.linkWake[l.id], int32(i))
	}
	for id, l := range s.links {
		l.id = id
	}
	sc.inLinks = make([][]int32, sc.n)
	sc.outLinks = make([][]int32, sc.n)
	for i, c := range s.comps {
		if op, ok := c.(OutputPorts); ok {
			for _, l := range op.OutputLinks() {
				addLink(l, i)
				if l != nil && l.id >= 0 {
					sc.outLinks[i] = append(sc.outLinks[i], int32(l.id))
				}
			}
		}
		if ip, ok := c.(InputPorts); ok {
			for _, l := range ip.InputLinks() {
				addLink(l, i)
				if l != nil && l.id >= 0 {
					sc.inLinks[i] = append(sc.inLinks[i], int32(l.id))
				}
			}
		}
	}
	// Non-Link shared keys group components; *Link keys subscribe the
	// claimant to that link's wake list (it inspects the link's state
	// beyond the push/pop contract, e.g. a loop-entry merge reading
	// Drained on its recirculating input).
	keyGroup := make(map[any]int)
	var groups [][]int32
	for i, c := range s.comps {
		ss, ok := c.(StateSharer)
		if !ok {
			continue
		}
		for _, key := range ss.SharedState() {
			if key == nil {
				continue
			}
			if l, isLink := key.(*Link); isLink {
				addLink(l, i)
				continue
			}
			g, seen := keyGroup[key]
			if !seen {
				g = len(groups)
				groups = append(groups, nil)
				keyGroup[key] = g
			}
			groups[g] = append(groups[g], int32(i))
		}
	}
	sc.partners = make([][]int32, sc.n)
	for _, g := range groups {
		for _, i := range g {
			for _, j := range g {
				if i != j {
					sc.partners[i] = append(sc.partners[i], j)
				}
			}
		}
	}
	for i := range sc.partners {
		sc.partners[i] = dedupSorted(sc.partners[i])
	}
	// A callback host's tick can run partner-owned closures whose mutations
	// reach the owners' shared keys: widen its wake set to partners'
	// partners (see CallbackHost).
	for i, c := range s.comps {
		if _, host := c.(CallbackHost); !host {
			continue
		}
		ext := sc.partners[i]
		for _, p := range sc.partners[i] {
			for _, q := range sc.partners[p] {
				if int(q) != i {
					ext = append(ext, q)
				}
			}
		}
		sc.partners[i] = dedupSorted(ext)
	}
	for id := range sc.linkWake {
		sc.linkWake[id] = dedupSorted(sc.linkWake[id])
	}
	// Compile the partner lists to masks (see the field comment). Only
	// components with partners pay for storage.
	sc.wakeAhead = make([]bitset, sc.n)
	sc.wakeBehind = make([]bitset, sc.n)
	for i, ps := range sc.partners {
		for _, p := range ps {
			if int(p) > i {
				if sc.wakeAhead[i] == nil {
					sc.wakeAhead[i] = newBitset(sc.n)
				}
				sc.wakeAhead[i].set(int(p))
			} else {
				if sc.wakeBehind[i] == nil {
					sc.wakeBehind[i] = newBitset(sc.n)
				}
				sc.wakeBehind[i].set(int(p))
			}
		}
	}
}

// markLink records link activity for the serial kernel's dirty-list commit.
// Called from the link mutators (stage/Drop and the block forms) via the
// link's sched pointer, which RunWith wires only for serial runs — the
// parallel kernel's workers would race on the shared list, so it sweeps.
func (sc *scheduler) markLink(l *Link) {
	id := l.id
	if id < 0 || sc.dirtySet.get(id) {
		return
	}
	sc.dirtySet.set(id)
	sc.dirtyIDs = append(sc.dirtyIDs, int32(id)) // lint:hotalloc-ok bounded by the link census; backing array preallocated and reused
}

// dedupSorted sorts ascending and removes duplicates in place.
func dedupSorted(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	// Insertion sort: lists are tiny (a link has a handful of endpoints).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// allDone is the O(1) replacement for the full Done/Drained sweep.
func (sc *scheduler) allDone() bool { return sc.notDone == 0 && sc.undrained == 0 }

// beginCycle rotates the wake sets: this cycle's set is last cycle's
// accumulated wakes, the poll shim, and expiring timers. hot:path — runs
// once per simulated cycle. phase:coordinator — no worker is running while
// the sets rotate.
func (sc *scheduler) beginCycle(cycle int64) {
	sc.awake, sc.next = sc.next, sc.awake
	sc.next.clearAll()
	sc.poll.orInto(sc.awake)
	sc.wheel.expireInto(cycle, sc.awake)
}

// markTicked updates the Done cache after component i ticked.
func (sc *scheduler) markTicked(i int) {
	d := sc.sys.comps[i].Done()
	if d != sc.doneBits.get(i) {
		if d {
			sc.doneBits.set(i)
			sc.notDone--
		} else {
			sc.doneBits[i>>6] &^= 1 << uint(i&63)
			sc.notDone++
		}
	}
}

// wakePartners propagates a tick of component i to its shared-state
// partners: same cycle ahead of the cursor, next cycle at or behind it.
// The precompiled masks make this O(words), not O(partners) — the HBM's
// group partners every DRAM node with every other.
func (sc *scheduler) wakePartners(i int) {
	if m := sc.wakeAhead[i]; m != nil {
		m.orInto(sc.awake)
	}
	if m := sc.wakeBehind[i]; m != nil {
		m.orInto(sc.next)
	}
}

// sleep records component i going idle: schedule its self-timer, if any.
// (Poll-set members never reach here.)
func (sc *scheduler) sleep(i int, cycle int64) {
	hint := sc.hinters[i].WakeHint(cycle)
	if hint == WakeNever {
		return
	}
	if hint <= cycle {
		// A hint at or before the current cycle means "re-examine next
		// cycle"; the contract asks for future cycles but clamping is
		// safer than dropping the wake.
		sc.next.set(i)
		return
	}
	sc.wheel.schedule(cycle, int32(i), hint)
}

// stepSerial advances one cycle on the serial event kernel: drain the wake
// set in ascending index order (accepting same-cycle insertions ahead of
// the cursor), then commit every link with pending work. It reports
// link-traffic progress, exactly like the polling kernel's step. hot:path —
// this is the serial kernel's per-cycle loop. phase:coordinator — the serial
// kernel has no workers; its plain bitmap ops never race.
func (sc *scheduler) stepSerial(cycle int64) bool {
	s := sc.sys
	aw := sc.awake
	for wi := range aw {
		for {
			w := aw[wi]
			if w == 0 {
				break
			}
			b := bits.TrailingZeros64(w)
			aw[wi] &^= 1 << uint(b)
			i := wi<<6 | b
			idler := s.idlers[i]
			if !sc.noSkip && idler != nil && idler.Idle(cycle) {
				if !sc.poll.get(i) {
					sc.sleep(i, cycle)
				}
				continue
			}
			if bt := sc.batchers[i]; bt != nil && !sc.noBatch {
				if n := sc.batchBudget(i); n >= BatchMinFlits {
					bt.TickBatch(cycle, n)
				} else {
					s.comps[i].Tick(cycle)
				}
			} else {
				s.comps[i].Tick(cycle)
			}
			sc.markTicked(i)
			sc.wakePartners(i)
			sc.next.set(i) // may have more work; it will re-idle otherwise
		}
	}
	if sc.trackDirty {
		return sc.commitDirty(cycle)
	}
	return sc.commitLinks(cycle)
}

// commitOne ends one link's cycle and applies the wake consequences and
// the incremental termination/fast-forward bookkeeping. It also rebuilds
// the in-flight list for the next cycle. phase:commit — serial in both
// kernels (the parallel kernel barriers first), so plain state suffices.
func (sc *scheduler) commitOne(id int, l *Link, cycle int64) (progress bool) {
	progress, wake := l.commit(cycle)
	if wake {
		for _, ci := range sc.linkWake[id] {
			sc.next.set(int(ci))
		}
	}
	if d := l.Drained(); d != l.wasDrained {
		l.wasDrained = d
		if d {
			sc.undrained--
		} else {
			sc.undrained++
		}
	}
	if fly := l.nFly > 0; fly != l.wasFly {
		l.wasFly = fly
		if fly {
			sc.flyLinks++
		} else {
			sc.flyLinks--
		}
	}
	if l.nFly > 0 {
		sc.flyScratch = append(sc.flyScratch, int32(id)) // lint:hotalloc-ok bounded by the link census; backing array preallocated and reused
	}
	return progress
}

// commitLinks runs the end-of-cycle commit over every link with pending
// work, by full census sweep — the parallel kernel's commit (its workers
// cannot share a dirty list without racing) and the fallback for schedulers
// driven outside RunWith (the conformance harnesses). hot:path — runs once
// per simulated cycle.
func (sc *scheduler) commitLinks(cycle int64) bool {
	moved := false
	sc.flyScratch = sc.flyScratch[:0]
	for id, l := range sc.sys.links {
		if !l.pending() {
			continue
		}
		if sc.commitOne(id, l, cycle) {
			moved = true
		}
	}
	sc.flyIDs, sc.flyScratch = sc.flyScratch, sc.flyIDs
	return moved
}

// commitDirty is the serial kernel's commit: visit exactly the links with
// pending work — those marked by a push or pop this cycle (dirtyIDs) plus
// those carrying in-flight flits from earlier cycles (flyIDs). Commit order
// across links is unobservable: each link's commit touches only that link,
// and the wake/census updates are idempotent or commutative. hot:path —
// runs once per simulated cycle.
func (sc *scheduler) commitDirty(cycle int64) bool {
	moved := false
	sc.flyScratch = sc.flyScratch[:0]
	links := sc.sys.links
	for _, id := range sc.dirtyIDs {
		if sc.commitOne(int(id), links[id], cycle) {
			moved = true
		}
	}
	for _, id := range sc.flyIDs {
		if sc.dirtySet.get(int(id)) {
			continue // committed above
		}
		if sc.commitOne(int(id), links[id], cycle) {
			moved = true
		}
	}
	for _, id := range sc.dirtyIDs {
		sc.dirtySet[id>>6] &^= 1 << uint(id&63)
	}
	sc.dirtyIDs = sc.dirtyIDs[:0]
	sc.flyIDs, sc.flyScratch = sc.flyScratch, sc.flyIDs
	return moved
}

// nextArrival returns the earliest cycle at which any in-flight flit
// matures, or WakeNever when nothing is in flight. Together with the timer
// wheel this bounds the runner's fast-forward when every component is
// asleep but links still carry flits: commits before (arrival-1) are
// provable no-ops. phase:commit — called between cycles only.
func (sc *scheduler) nextArrival() int64 {
	min := WakeNever
	links := sc.sys.links
	for _, id := range sc.flyIDs {
		if at := links[id].nextArrival(); at < min {
			min = at
		}
	}
	return min
}

// quiescent reports whether nothing at all is scheduled for this cycle:
// no component to examine and no link commit pending. The runner may then
// fast-forward to the next timer (or to the deadlock/budget horizon).
func (sc *scheduler) quiescent() bool {
	return sc.flyLinks == 0 && !sc.awake.any()
}
