package sim

import (
	"reflect"
	"sync"
	"testing"
)

// buildStaged wires `lanes` parallel 3-stage pipelines so the link graph has
// an unambiguous layer structure: src -> s1 -> s2 -> s3 -> snk per lane, all
// lanes independent.
func buildStaged(lanes, recsPer int) *System {
	s := NewSystem()
	for c := 0; c < lanes; c++ {
		l0 := s.NewLink("l0", 4, 1)
		l1 := s.NewLink("l1", 4, 2)
		l2 := s.NewLink("l2", 4, 1)
		l3 := s.NewLink("l3", 4, 3)
		s.Add(&genSource{name: "src", out: l0, n: uint32(recsPer)})
		s.Add(&addStage{name: "s1", in: l0, out: l1, add: 1})
		s.Add(&addStage{name: "s2", in: l1, out: l2, add: 10})
		s.Add(&addStage{name: "s3", in: l2, out: l3, add: 100})
		s.Add(&collector{name: "snk", in: l3})
	}
	return s
}

// TestShardPlanStagesAndLanes: a P-lane pipeline graph decomposes into
// pipeline stages (one per topological layer) with P lanes per stage, and
// the shards come out ordered by (stage, lane).
func TestShardPlanStagesAndLanes(t *testing.T) {
	const lanes = 4
	plan := buildStaged(lanes, 8).PlanShards()

	if plan.Stages != 5 {
		t.Errorf("Stages = %d; want 5 (src, s1, s2, s3, snk layers)", plan.Stages)
	}
	if plan.MaxLanes != lanes {
		t.Errorf("MaxLanes = %d; want %d", plan.MaxLanes, lanes)
	}
	if len(plan.Shards) != 5*lanes {
		t.Errorf("len(Shards) = %d; want %d", len(plan.Shards), 5*lanes)
	}
	// (stage, lane) ordering is strictly increasing.
	for i := 1; i < len(plan.Shards); i++ {
		if plan.Stage[i] < plan.Stage[i-1] ||
			(plan.Stage[i] == plan.Stage[i-1] && plan.Lane[i] != plan.Lane[i-1]+1) {
			t.Fatalf("shard %d out of (stage, lane) order: (%d,%d) after (%d,%d)",
				i, plan.Stage[i], plan.Lane[i], plan.Stage[i-1], plan.Lane[i-1])
		}
	}
	// Each pipeline position c%5 of every lane lands in stage c%5.
	for i, st := range plan.CompStage {
		if want := i % 5; st != want {
			t.Errorf("component %d: stage %d; want %d", i, st, want)
		}
	}
	if plan.Largest != 1 {
		t.Errorf("Largest = %d; want 1 (all atoms singletons)", plan.Largest)
	}
	if share := plan.LargestShare(); share != 1.0/float64(5*lanes) {
		t.Errorf("LargestShare() = %v; want %v", share, 1.0/float64(5*lanes))
	}
}

// TestShardPlanStageMonotone: for every link, either both endpoints share a
// shard (an aliasing/shared-state atom, or a recirculating loop collapsed to
// one layer) or the consumer's stage strictly exceeds the producer's. This
// is the invariant that makes a stage a pipeline phase.
func TestShardPlanStageMonotone(t *testing.T) {
	s, _ := buildChains(5, 8)
	plan := s.PlanShards()
	shardOf := make([]int, len(s.comps))
	for sh, members := range plan.Shards {
		for _, i := range members {
			shardOf[i] = sh
		}
	}
	prod, cons := linkEnds(s)
	for id := range s.links {
		for _, pi := range prod[id] {
			for _, ci := range cons[id] {
				if shardOf[pi] == shardOf[ci] {
					continue
				}
				if plan.CompStage[ci] <= plan.CompStage[pi] {
					t.Errorf("link %d: consumer %d stage %d <= producer %d stage %d in distinct shards",
						id, ci, plan.CompStage[ci], pi, plan.CompStage[pi])
				}
			}
		}
	}
}

// TestShardPlanCollapsesLoops: a recirculating loop (a link-graph cycle) is
// one strongly connected component and must collapse to a single stage —
// its members cannot be pipeline-ordered against each other.
func TestShardPlanCollapsesLoops(t *testing.T) {
	s := NewSystem()
	ext := s.NewLink("ext", 4, 1)
	fwd := s.NewLink("fwd", 4, 1)
	back := s.NewLink("back", 4, 1)
	out := s.NewLink("out", 4, 1)
	s.Add(&genSource{name: "src", out: ext, n: 4})
	// entry consumes ext+back, feeds fwd; body consumes fwd, feeds back+out:
	// entry and body form a two-node cycle through back.
	s.Add(&loopEntry{name: "entry", ins: []*Link{ext, back}, out: fwd})
	s.Add(&loopBody{name: "body", in: fwd, outs: []*Link{back, out}})
	s.Add(&collector{name: "snk", in: out})

	plan := s.PlanShards()
	ci := func(name string) int {
		for i, c := range s.comps {
			if c.Name() == name {
				return i
			}
		}
		t.Fatalf("no component %q", name)
		return -1
	}
	eSt, bSt := plan.CompStage[ci("entry")], plan.CompStage[ci("body")]
	if eSt != bSt {
		t.Errorf("loop members in different stages: entry %d, body %d", eSt, bSt)
	}
	if src := plan.CompStage[ci("src")]; src >= eSt {
		t.Errorf("source stage %d not before loop stage %d", src, eSt)
	}
	if snk := plan.CompStage[ci("snk")]; snk <= bSt {
		t.Errorf("sink stage %d not after loop stage %d", snk, bSt)
	}
}

type loopEntry struct {
	name string
	ins  []*Link
	out  *Link
}

func (c *loopEntry) Name() string         { return c.name }
func (c *loopEntry) Done() bool           { return true }
func (c *loopEntry) InputLinks() []*Link  { return c.ins }
func (c *loopEntry) OutputLinks() []*Link { return []*Link{c.out} }
func (c *loopEntry) Tick(int64)           {}

type loopBody struct {
	name string
	in   *Link
	outs []*Link
}

func (c *loopBody) Name() string         { return c.name }
func (c *loopBody) Done() bool           { return true }
func (c *loopBody) InputLinks() []*Link  { return []*Link{c.in} }
func (c *loopBody) OutputLinks() []*Link { return c.outs }
func (c *loopBody) Tick(int64)           {}

// TestShardPlanMapOrderIndependent: the plan must be a pure function of the
// topology even though shared-state keys live in a Go map. Rebuilding the
// same topology many times (fresh map allocations, fresh key addresses,
// different iteration orders) must always produce the same plan shape and
// membership.
func TestShardPlanMapOrderIndependent(t *testing.T) {
	shape := func(p *ShardPlan) [][]int { return p.Shards }
	ref, _ := buildChains(6, 4)
	want := shape(ref.PlanShards())
	for trial := 0; trial < 50; trial++ {
		s, _ := buildChains(6, 4)
		if got := shape(s.PlanShards()); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: plan differs:\n got %v\nwant %v", trial, got, want)
		}
	}
	// Repeated planning of one System is stable too (PlanShards mutates no
	// planner-visible state).
	s, _ := buildChains(6, 4)
	p1, p2 := s.PlanShards(), s.PlanShards()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("re-planning one system diverged:\n%+v\n%+v", p1, p2)
	}
}

// TestStealBitIdentityImbalanced: a deliberately imbalanced graph — one
// chain carries 20x the records of the rest, so its shard stays awake long
// after the others drain — must still be bit-identical to serial at every
// worker count. This is the shape work stealing exists for.
func TestStealBitIdentityImbalanced(t *testing.T) {
	build := func() (*System, []*collector) {
		s := NewSystem()
		var sinks []*collector
		for c := 0; c < 8; c++ {
			n := 40
			if c == 0 {
				n = 800
			}
			l0 := s.NewLink("l0", 4, 1)
			l1 := s.NewLink("l1", 4, 2)
			l2 := s.NewLink("l2", 4, 1)
			s.Add(&genSource{name: "src", out: l0, n: uint32(n)})
			s.Add(&addStage{name: "s1", in: l0, out: l1, add: 1})
			s.Add(&addStage{name: "s2", in: l1, out: l2, add: 10})
			snk := &collector{name: "snk", in: l2}
			s.Add(snk)
			sinks = append(sinks, snk)
		}
		return s, sinks
	}
	run := func(opt RunOptions) (int64, [][]uint32) {
		s, sinks := build()
		cycles, err := s.RunWith(1_000_000, opt)
		if err != nil {
			t.Fatalf("run %+v: %v", opt, err)
		}
		outs := make([][]uint32, len(sinks))
		for i, snk := range sinks {
			outs[i] = snk.got
		}
		return cycles, outs
	}
	refCycles, refOuts := run(RunOptions{})
	for _, w := range []int{2, 3, 4, 8} {
		cycles, outs := run(RunOptions{Workers: w})
		if cycles != refCycles {
			t.Errorf("workers=%d: cycles %d != serial %d", w, cycles, refCycles)
		}
		if !reflect.DeepEqual(outs, refOuts) {
			t.Errorf("workers=%d: outputs differ from serial", w)
		}
	}
}

// TestWSDequeClaimSteal: single-threaded semantics of the deque — claims
// and steals partition the items with no loss or duplication, and
// steal-half takes ceil(half) of what remains.
func TestWSDequeClaimSteal(t *testing.T) {
	d := &wsDeque{items: make([]int32, 16)}
	d.reset()
	for i := int32(0); i < 10; i++ {
		d.push(i)
	}
	buf := make([]int32, 16)
	got := d.stealHalf(buf)
	if len(got) != 5 {
		t.Fatalf("stealHalf of 10 took %d; want 5", len(got))
	}
	seen := map[int32]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for {
		v, ok := d.claimOne()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("item %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("delivered %d of 10 items", len(seen))
	}
	if got := d.stealHalf(buf); len(got) != 0 {
		t.Fatalf("stealHalf on empty deque returned %v", got)
	}

	// Steal is capped by the thief's buffer.
	d.reset()
	for i := int32(0); i < 10; i++ {
		d.push(i)
	}
	if got := d.stealHalf(buf[:2]); len(got) != 2 {
		t.Fatalf("buffer-capped steal took %d; want 2", len(got))
	}
}

// TestWSDequeConcurrent: claimants and thieves racing on one deque deliver
// every item exactly once. Run with -race this is the memory-model check
// for the CAS-advance design.
func TestWSDequeConcurrent(t *testing.T) {
	const items = 4096
	const thieves = 4
	d := &wsDeque{items: make([]int32, items)}
	d.reset()
	for i := int32(0); i < items; i++ {
		d.push(i)
	}
	var mu sync.Mutex
	counts := make([]int, items)
	var wg sync.WaitGroup
	deliver := func(got []int32) {
		mu.Lock()
		for _, v := range got {
			counts[v]++
		}
		mu.Unlock()
	}
	wg.Add(1 + thieves)
	go func() { // owner claims one at a time
		defer wg.Done()
		var local []int32
		for {
			v, ok := d.claimOne()
			if !ok {
				break
			}
			local = append(local, v)
		}
		deliver(local)
	}()
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			buf := make([]int32, items)
			var local []int32
			for {
				got := d.stealHalf(buf)
				if len(got) == 0 {
					break
				}
				local = append(local, got...)
			}
			deliver(local)
		}()
	}
	wg.Wait()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d delivered %d times", i, c)
		}
	}
}

// TestKernelDecisionRecorded: RunWith leaves a full decision record — in
// the System and mirrored into Stats meta — for both the engaged and the
// fallen-back kernels.
func TestKernelDecisionRecorded(t *testing.T) {
	s, _ := buildChains(6, 10)
	if _, err := s.RunWith(1_000_000, RunOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	d := s.KernelDecision()
	if d.Requested != 4 {
		t.Errorf("Requested = %d; want 4", d.Requested)
	}
	if d.Resolved < 2 {
		t.Errorf("Resolved = %d; want >= 2 (explicit request on a shardable graph)", d.Resolved)
	}
	if d.Fallback != FallbackNone {
		t.Errorf("Fallback = %q; want none", d.Fallback)
	}
	if d.Shards < 2 || d.Stages < 2 || d.Components != len(s.comps) {
		t.Errorf("shape not recorded: %+v", d)
	}
	if v, ok := s.Stats().MetaLookup("kernel.fallback"); !ok || v != "" {
		t.Errorf("Stats meta kernel.fallback = %q, %v; want \"\", true", v, ok)
	}
	if v, _ := s.Stats().MetaLookup("kernel.workers_resolved"); v == "" || v == "1" {
		t.Errorf("Stats meta kernel.workers_resolved = %q; want >= 2", v)
	}

	// Serial request records its reason too.
	s2, _ := buildChains(6, 10)
	if _, err := s2.RunWith(1_000_000, RunOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if d := s2.KernelDecision(); d.Fallback != FallbackRequestedSerial || d.Resolved != 1 {
		t.Errorf("serial request decision = %+v; want requested-serial/1", d)
	}
}
