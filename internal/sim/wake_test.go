package sim

import (
	"errors"
	"testing"

	"aurochs/internal/record"
)

// sleeper emits `total` flits, one every `period` cycles, sleeping between
// emissions on a WakeHint timer — the well-behaved event-driven citizen.
type sleeper struct {
	name   string
	out    *Link
	next   int64
	period int64
	sent   int
	total  int
}

func (s *sleeper) Name() string         { return s.name }
func (s *sleeper) OutputLinks() []*Link { return []*Link{s.out} }
func (s *sleeper) Done() bool           { return s.sent == s.total }
func (s *sleeper) Idle(cycle int64) bool {
	return s.sent == s.total || cycle < s.next || !s.out.CanPush()
}
func (s *sleeper) WakeHint(cycle int64) int64 {
	if s.sent == s.total || s.next <= cycle {
		return WakeNever // done, or waiting on link credit only
	}
	return s.next
}
func (s *sleeper) WorstCaseInternalLatency() int64 { return s.period }
func (s *sleeper) Tick(cycle int64) {
	if s.sent < s.total && cycle >= s.next && s.out.CanPush() {
		v := s.out.StageVec(cycle)
		v.Push(record.Make(uint32(s.sent)))
		s.sent++
		s.next = cycle + s.period
	}
}

// drain consumes everything; purely link-driven.
type pulseDrain struct {
	name string
	in   *Link
	got  int
	need int
}

func (d *pulseDrain) Name() string         { return d.name }
func (d *pulseDrain) InputLinks() []*Link  { return []*Link{d.in} }
func (d *pulseDrain) Done() bool           { return d.got == d.need }
func (d *pulseDrain) Idle(int64) bool      { return d.in.Empty() }
func (d *pulseDrain) WakeHint(int64) int64 { return WakeNever }
func (d *pulseDrain) Tick(int64) {
	for !d.in.Empty() {
		f := d.in.Peek()
		d.got += f.Vec.Count()
		d.in.Drop()
	}
}

// stuckTimer claims Idle until an internal release cycle but registers no
// wake: no ports, no shared state, WakeHint answers WakeNever. The event
// scheduler puts it to sleep on cycle 0 and never examines it again — the
// contract breach VerifyWakeContract exists to catch.
type stuckTimer struct {
	release int64
	fired   bool
}

func (b *stuckTimer) Name() string          { return "stuck-timer" }
func (b *stuckTimer) Done() bool            { return b.fired }
func (b *stuckTimer) Idle(cycle int64) bool { return !b.fired && cycle < b.release }
func (b *stuckTimer) WakeHint(int64) int64  { return WakeNever }
func (b *stuckTimer) Tick(cycle int64) {
	if cycle >= b.release {
		b.fired = true
	}
}

func wirePulsePipeline(period int64, total int) (*System, *pulseDrain) {
	sys := NewSystem()
	l := sys.NewLink("pulse", 2, 1)
	sys.Add(&sleeper{name: "pulser", out: l, period: period, total: total})
	d := &pulseDrain{name: "drain", in: l, need: total}
	sys.Add(d)
	return sys, d
}

func TestVerifyWakeContractClean(t *testing.T) {
	sys, d := wirePulsePipeline(17, 12)
	if err := VerifyWakeContract(sys, 4096); err != nil {
		t.Fatalf("well-behaved pipeline violates the wake contract: %v", err)
	}
	if d.got != d.need {
		t.Fatalf("drained %d records; want %d", d.got, d.need)
	}
}

func TestVerifyWakeContractCatchesMissingRegistration(t *testing.T) {
	sys := NewSystem()
	sys.Add(&stuckTimer{release: 50})
	err := VerifyWakeContract(sys, 4096)
	var wv *WakeViolation
	if !errors.As(err, &wv) {
		t.Fatalf("missing wake registration not caught; err = %v", err)
	}
	if wv.Component != "stuck-timer" {
		t.Fatalf("violation blamed %q; want stuck-timer", wv.Component)
	}
}

// The real kernel must stall on the same breach VerifyWakeContract reports:
// the stuck component sleeps forever and the run deadlocks rather than
// silently diverging from the polling kernel.
func TestWakeKernelStallsOnMissingRegistration(t *testing.T) {
	sys := NewSystem()
	sys.Add(&stuckTimer{release: 50})
	_, err := sys.Run(100000)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError from unregistered wake, got %v", err)
	}
	// The same system under NoIdleSkip (the polling behavior) completes.
	sys2 := NewSystem()
	sys2.Add(&stuckTimer{release: 50})
	if _, err := sys2.RunWith(100000, RunOptions{NoIdleSkip: true}); err != nil {
		t.Fatalf("polling run should complete: %v", err)
	}
}

// Event-driven and polling runs of the same pipeline must agree exactly —
// cycle count and records delivered.
func TestWakeKernelMatchesPollingKernel(t *testing.T) {
	runOnce := func(opt RunOptions) (int64, int) {
		sys, d := wirePulsePipeline(23, 40)
		cycles, err := sys.RunWith(1<<20, opt)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return cycles, d.got
	}
	evCycles, evGot := runOnce(RunOptions{})
	poCycles, poGot := runOnce(RunOptions{NoIdleSkip: true})
	if evCycles != poCycles || evGot != poGot {
		t.Fatalf("kernels diverge: event (%d cycles, %d recs) vs polling (%d cycles, %d recs)",
			evCycles, evGot, poCycles, poGot)
	}
}

// Timer-wheel coverage: hints beyond the wheel horizon must land in the far
// list and still fire exactly on time.
func TestWakeTimerBeyondWheelHorizon(t *testing.T) {
	sys, d := wirePulsePipeline(wheelSlots+137, 3)
	cycles, err := sys.Run(1 << 22)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if d.got != d.need {
		t.Fatalf("drained %d records; want %d", d.got, d.need)
	}
	want := int64(2*(wheelSlots+137)) + 2 // third pulse fires then arrives
	if cycles > want+8 {
		t.Fatalf("fast-forward missed far timers: %d cycles for 3 pulses (want ~%d)", cycles, want)
	}
}
