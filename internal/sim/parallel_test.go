package sim

import (
	"reflect"
	"runtime"
	"testing"

	"aurochs/internal/record"
)

// ---- synthetic port-declaring components for kernel equivalence tests ----

type genSource struct {
	name string
	out  *Link
	next uint32
	n    uint32
	eos  bool
}

func (g *genSource) Name() string         { return g.name }
func (g *genSource) Done() bool           { return g.eos }
func (g *genSource) OutputLinks() []*Link { return []*Link{g.out} }
func (g *genSource) Idle(int64) bool      { return g.eos || !g.out.CanPush() }
func (g *genSource) Tick(cycle int64) {
	if g.eos || !g.out.CanPush() {
		return
	}
	if g.next >= g.n {
		g.out.Push(cycle, Flit{EOS: true})
		g.eos = true
		return
	}
	var v record.Vector
	for i := 0; i < record.NumLanes && g.next < g.n; i++ {
		v.Push(record.Make(g.next))
		g.next++
	}
	g.out.Push(cycle, Flit{Vec: v})
}

type addStage struct {
	name string
	in   *Link
	out  *Link
	add  uint32
	eos  bool
}

func (a *addStage) Name() string         { return a.name }
func (a *addStage) Done() bool           { return a.eos }
func (a *addStage) InputLinks() []*Link  { return []*Link{a.in} }
func (a *addStage) OutputLinks() []*Link { return []*Link{a.out} }
func (a *addStage) Idle(int64) bool      { return a.eos || a.in.Empty() || !a.out.CanPush() }
func (a *addStage) Tick(cycle int64) {
	if a.eos || a.in.Empty() || !a.out.CanPush() {
		return
	}
	f := a.in.Pop()
	if f.EOS {
		a.out.Push(cycle, f)
		a.eos = true
		return
	}
	var v record.Vector
	for _, r := range f.Vec.Records() {
		v.Push(record.Make(r.Get(0) + a.add))
	}
	a.out.Push(cycle, Flit{Vec: v})
}

type collector struct {
	name string
	in   *Link
	got  []uint32
	eos  bool
}

func (c *collector) Name() string        { return c.name }
func (c *collector) Done() bool          { return c.eos }
func (c *collector) InputLinks() []*Link { return []*Link{c.in} }
func (c *collector) Idle(int64) bool     { return c.eos || c.in.Empty() }
func (c *collector) Tick(int64) {
	if c.eos || c.in.Empty() {
		return
	}
	f := c.in.Pop()
	if f.EOS {
		c.eos = true
		return
	}
	for _, r := range f.Vec.Records() {
		c.got = append(c.got, r.Get(0))
	}
}

// sharedCounter pairs: both components bump one Go-side counter each tick,
// declared via SharedState, so the scheduler must co-locate them.
type sharedCounter struct {
	name  string
	state *int64
	in    *Link
	out   *Link
	eos   bool
}

func (sc *sharedCounter) Name() string         { return sc.name }
func (sc *sharedCounter) Done() bool           { return sc.eos }
func (sc *sharedCounter) InputLinks() []*Link  { return []*Link{sc.in} }
func (sc *sharedCounter) OutputLinks() []*Link { return []*Link{sc.out} }
func (sc *sharedCounter) SharedState() []any   { return []any{sc.state} }
func (sc *sharedCounter) Idle(int64) bool      { return sc.eos || sc.in.Empty() || !sc.out.CanPush() }
func (sc *sharedCounter) Tick(cycle int64) {
	if sc.eos || sc.in.Empty() || !sc.out.CanPush() {
		return
	}
	f := sc.in.Pop()
	if f.EOS {
		sc.out.Push(cycle, f)
		sc.eos = true
		return
	}
	var v record.Vector
	for _, r := range f.Vec.Records() {
		*sc.state++
		v.Push(record.Make(r.Get(0), uint32(*sc.state)))
	}
	sc.out.Push(cycle, Flit{Vec: v})
}

// buildChains wires `chains` independent 3-stage pipelines plus one pair of
// stages coupled through a shared counter, and returns the system and its
// collectors.
func buildChains(chains, recsPer int) (*System, []*collector) {
	s := NewSystem()
	var sinks []*collector
	for c := 0; c < chains; c++ {
		l0 := s.NewLink("l0", 4, 1)
		l1 := s.NewLink("l1", 4, 2)
		l2 := s.NewLink("l2", 4, 1)
		l3 := s.NewLink("l3", 4, 3)
		s.Add(&genSource{name: "src", out: l0, n: uint32(recsPer)})
		s.Add(&addStage{name: "s1", in: l0, out: l1, add: 1})
		s.Add(&addStage{name: "s2", in: l1, out: l2, add: 10})
		s.Add(&addStage{name: "s3", in: l2, out: l3, add: 100})
		snk := &collector{name: "snk", in: l3}
		s.Add(snk)
		sinks = append(sinks, snk)
	}
	// Coupled pair: stamps a shared sequence across two chains.
	shared := new(int64)
	for k := 0; k < 2; k++ {
		in := s.NewLink("cin", 4, 1)
		out := s.NewLink("cout", 4, 1)
		s.Add(&genSource{name: "csrc", out: in, n: uint32(recsPer)})
		s.Add(&sharedCounter{name: "cnt", state: shared, in: in, out: out})
		snk := &collector{name: "csnk", in: out}
		s.Add(snk)
		sinks = append(sinks, snk)
	}
	return s, sinks
}

func runChains(t *testing.T, opt RunOptions) (int64, [][]uint32, map[string]int64) {
	t.Helper()
	s, sinks := buildChains(6, 500)
	cycles, err := s.RunWith(1_000_000, opt)
	if err != nil {
		t.Fatalf("run %+v: %v", opt, err)
	}
	outs := make([][]uint32, len(sinks))
	for i, snk := range sinks {
		outs[i] = snk.got
	}
	return cycles, outs, s.Stats().Snapshot()
}

// TestParallelMatchesSerial: the parallel kernel is bit-identical to the
// serial kernel — same cycle count, same outputs in order, same stats — at
// every worker count, with and without idle skipping.
func TestParallelMatchesSerial(t *testing.T) {
	refCycles, refOuts, refStats := runChains(t, RunOptions{})
	for _, opt := range []RunOptions{
		{NoIdleSkip: true},
		{Workers: 2},
		{Workers: 3, NoIdleSkip: true},
		{Workers: runtime.GOMAXPROCS(0)},
		{Workers: 16},
	} {
		cycles, outs, stats := runChains(t, opt)
		if cycles != refCycles {
			t.Errorf("%+v: cycles %d != serial %d", opt, cycles, refCycles)
		}
		if !reflect.DeepEqual(outs, refOuts) {
			t.Errorf("%+v: outputs differ from serial", opt)
		}
		if !reflect.DeepEqual(stats, refStats) {
			t.Errorf("%+v: stats differ from serial", opt)
		}
	}
}

// TestShardingDeterministic: the shard plan is a pure function of the
// topology.
func TestShardingDeterministic(t *testing.T) {
	s1, _ := buildChains(5, 10)
	s2, _ := buildChains(5, 10)
	p1 := s1.PlanShards()
	p2 := s2.PlanShards()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("sharding not deterministic:\n%+v\n%+v", p1, p2)
	}
}

// TestShardingRespectsSharedState: components declaring a common state key
// land in the same shard; independent chains spread across shards.
func TestShardingRespectsSharedState(t *testing.T) {
	s, _ := buildChains(4, 10)
	plan := s.PlanShards()
	if len(plan.Shards) < 2 {
		t.Fatalf("expected multiple shards for independent chains, got %d", len(plan.Shards))
	}
	// Find the two sharedCounter components and check they share a shard.
	shardOf := make(map[int]int)
	for sh, members := range plan.Shards {
		for _, ci := range members {
			shardOf[ci] = sh
		}
	}
	var counterShards []int
	for i, c := range s.Components() {
		if _, ok := c.(*sharedCounter); ok {
			counterShards = append(counterShards, shardOf[i])
		}
	}
	if len(counterShards) != 2 {
		t.Fatalf("found %d sharedCounter components", len(counterShards))
	}
	if counterShards[0] != counterShards[1] {
		t.Fatalf("shared-state components scheduled on different workers: %v", counterShards)
	}
	// Every component must be assigned exactly once.
	seen := 0
	for _, members := range plan.Shards {
		seen += len(members)
	}
	if seen != len(s.Components()) {
		t.Fatalf("sharding covered %d of %d components", seen, len(s.Components()))
	}
}

// TestRunParallelSmoke covers the public entry point.
func TestRunParallelSmoke(t *testing.T) {
	s, sinks := buildChains(3, 100)
	if _, err := s.RunParallel(1_000_000, 4); err != nil {
		t.Fatal(err)
	}
	for _, snk := range sinks {
		if len(snk.got) != 100 {
			t.Fatalf("sink %s got %d records", snk.name, len(snk.got))
		}
	}
}

// TestAutoWorkers: negative Workers resolves through the topology
// heuristics — engage on wide independent graphs, fall back to serial on
// small censuses, single shards, or single-CPU hosts.
func TestAutoWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	wide, _ := buildChains(6, 10) // 36 comps, many independent shards
	if got, reason := wide.autoWorkers(4, wide.PlanShards()); got < 2 {
		t.Errorf("wide independent graph resolved to %d workers (%s); want >= 2", got, reason)
	}
	if got, reason := wide.autoWorkers(1, wide.PlanShards()); got != 1 || reason != FallbackAutoCap {
		t.Errorf("max=1 resolved to %d workers (%q); want 1 (%q)", got, reason, FallbackAutoCap)
	}

	small := NewSystem() // census below the barrier-amortization floor
	l := small.NewLink("l", 4, 1)
	small.Add(&genSource{name: "src", out: l, n: 4})
	small.Add(&collector{name: "snk", in: l})
	if got, reason := small.autoWorkers(4, small.PlanShards()); got != 1 || reason != FallbackSmallCensus {
		t.Errorf("tiny graph resolved to %d workers (%q); want 1 (%q)", got, reason, FallbackSmallCensus)
	}

	runtime.GOMAXPROCS(1)
	if got, reason := wide.autoWorkers(4, wide.PlanShards()); got != 1 || reason != FallbackSingleCoreHost {
		t.Errorf("single-CPU host resolved to %d workers (%q); want 1 (%q)", got, reason, FallbackSingleCoreHost)
	}
	runtime.GOMAXPROCS(2)

	// End to end: auto mode is bit-identical to serial and records what it
	// resolved to.
	refCycles, refOuts, _ := runChains(t, RunOptions{})
	autoCycles, autoOuts, _ := runChains(t, RunOptions{Workers: -4})
	if autoCycles != refCycles || !reflect.DeepEqual(autoOuts, refOuts) {
		t.Errorf("auto mode diverged from serial: %d vs %d cycles", autoCycles, refCycles)
	}
	sys, _ := buildChains(6, 10)
	if _, err := sys.RunWith(1_000_000, RunOptions{Workers: -4}); err != nil {
		t.Fatal(err)
	}
	if sys.EffectiveWorkers() < 1 {
		t.Errorf("EffectiveWorkers() = %d; want >= 1", sys.EffectiveWorkers())
	}
}

// TestEnvWorkers: the AUROCHS_WORKERS override applies only when the caller
// expressed no preference (Workers == 0), parses leniently, and produces
// bit-identical results to an explicit worker count.
func TestEnvWorkers(t *testing.T) {
	for _, tc := range []struct {
		val  string
		want int
	}{
		{"", 0},
		{"4", 4},
		{"-2", -2},
		{"banana", 0},
	} {
		t.Setenv("AUROCHS_WORKERS", tc.val)
		if got := envWorkers(); got != tc.want {
			t.Errorf("AUROCHS_WORKERS=%q: envWorkers() = %d; want %d", tc.val, got, tc.want)
		}
	}

	// End to end: a plain Run under the env override matches serial output.
	t.Setenv("AUROCHS_WORKERS", "")
	refCycles, refOuts, _ := runChains(t, RunOptions{})
	t.Setenv("AUROCHS_WORKERS", "3")
	envCycles, envOuts, _ := runChains(t, RunOptions{})
	if envCycles != refCycles || !reflect.DeepEqual(envOuts, refOuts) {
		t.Errorf("env-selected kernel diverged from serial: %d vs %d cycles", envCycles, refCycles)
	}

	// An explicit choice wins over the environment.
	t.Setenv("AUROCHS_WORKERS", "7")
	expCycles, expOuts, _ := runChains(t, RunOptions{Workers: 2})
	if expCycles != refCycles || !reflect.DeepEqual(expOuts, refOuts) {
		t.Errorf("explicit Workers diverged under env override: %d vs %d cycles", expCycles, refCycles)
	}
}
