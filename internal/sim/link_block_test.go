package sim

import (
	"testing"
)

// blockVals drains every visible flit through PeekBlock/DropBlock rounds and
// returns the lane-0 field-0 value of each data flit (EOS flits append the
// sentinel 0xEEEE). At most two rounds are ever needed per cycle: the visible
// run is contiguous except around the ring wrap.
func blockVals(t *testing.T, l *Link) []uint32 {
	t.Helper()
	var out []uint32
	rounds := 0
	for l.Visible() > 0 {
		span := l.PeekBlock()
		if len(span) == 0 {
			t.Fatalf("Visible=%d but PeekBlock returned empty span", l.Visible())
		}
		for i := range span {
			if span[i].EOS {
				out = append(out, 0xEEEE)
			} else {
				out = append(out, span[i].Vec.Lane[0].Get(0))
			}
		}
		l.DropBlock(len(span))
		if rounds++; rounds > 2 {
			t.Fatal("visible run required more than two PeekBlock rounds")
		}
	}
	return out
}

func flits(vals ...uint32) []Flit {
	fs := make([]Flit, len(vals))
	for i, v := range vals {
		fs[i] = flit(v)
	}
	return fs
}

// TestPushBlockWraparoundSplit: a block staged across the ring wrap lands in
// two copies but reads back in FIFO order, with PeekBlock yielding the
// head-side piece first and the wrapped remainder on the second round.
func TestPushBlockWraparoundSplit(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 8, 1)
	// Advance head to 5 so the next block of 6 wraps (slots 5,6,7,0,1,2).
	if n := l.PushBlock(0, flits(90, 91, 92, 93, 94)); n != 5 {
		t.Fatalf("prefill PushBlock took %d of 5", n)
	}
	l.commit(0)
	l.DropBlock(5)
	l.commit(1)
	if n := l.PushBlock(2, flits(0, 1, 2, 3, 4, 5)); n != 6 {
		t.Fatalf("wrap PushBlock took %d of 6", n)
	}
	l.commit(2)
	if l.Visible() != 6 {
		t.Fatalf("Visible=%d want 6", l.Visible())
	}
	if span := l.PeekBlock(); len(span) != 3 {
		// head=5 in a cap-8 ring: the contiguous head-side piece is 3 flits.
		t.Fatalf("head-side span %d flits, want 3", len(span))
	}
	got := blockVals(t, l)
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("flit %d: got %d (order broken across wrap: %v)", i, v, got)
		}
	}
	if len(got) != 6 {
		t.Fatalf("drained %d flits, want 6", len(got))
	}
}

// TestPopBlockCopiesAcrossWrap: PopBlock's two-sided copy reassembles a
// wrapped run into one dense destination slice.
func TestPopBlockCopiesAcrossWrap(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 4, 1)
	l.PushBlock(0, flits(80, 81, 82))
	l.commit(0)
	l.DropBlock(3)
	l.commit(1)
	if n := l.PushBlock(2, flits(7, 8, 9, 10)); n != 4 {
		t.Fatalf("PushBlock took %d of 4", n)
	}
	l.commit(2)
	dst := make([]Flit, 4)
	if n := l.PopBlock(dst); n != 4 {
		t.Fatalf("PopBlock returned %d, want 4", n)
	}
	for i, want := range []uint32{7, 8, 9, 10} {
		if got := dst[i].Vec.Lane[0].Get(0); got != want {
			t.Fatalf("dst[%d]=%d want %d", i, got, want)
		}
	}
	if !l.Drained() {
		t.Fatal("link should be drained after full PopBlock")
	}
}

// TestPushBlockExactCapacity: a block of exactly the link capacity consumes
// every credit, arrives as one full visible run, and the producer stays
// blocked until the consumer frees space and a commit returns the credits.
func TestPushBlockExactCapacity(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 4, 1)
	if n := l.PushBlock(0, flits(1, 2, 3, 4)); n != 4 {
		t.Fatalf("PushBlock took %d of 4", n)
	}
	if l.Credits() != 0 || l.CanPush() {
		t.Fatalf("credits=%d after exact-capacity block, want 0", l.Credits())
	}
	if n := l.PushBlock(0, flits(5)); n != 0 {
		t.Fatalf("full link accepted %d extra flits", n)
	}
	l.commit(0)
	if l.Visible() != 4 {
		t.Fatalf("Visible=%d want 4", l.Visible())
	}
	if span := l.PeekBlock(); len(span) != 4 {
		t.Fatalf("unwrapped exact-capacity run peeked as %d flits, want 4", len(span))
	}
	// Credits return only at commit after the consumer frees slots.
	l.DropBlock(2)
	if l.Credits() != 0 {
		t.Fatal("credits must not return mid-cycle")
	}
	l.commit(1)
	if l.Credits() != 2 {
		t.Fatalf("credits=%d after freeing 2 slots, want 2", l.Credits())
	}
}

// TestPushBlockCreditClamp: a block larger than the credits in hand is
// truncated, not rejected — the producer learns the accepted count and
// carries the tail into a later cycle, preserving stream order.
func TestPushBlockCreditClamp(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 3, 1)
	all := flits(10, 11, 12, 13, 14)
	n := l.PushBlock(0, all)
	if n != 3 {
		t.Fatalf("PushBlock took %d of 5 with 3 credits", n)
	}
	l.commit(0)
	l.DropBlock(l.Visible())
	l.commit(1)
	if m := l.PushBlock(2, all[n:]); m != 2 {
		t.Fatalf("tail PushBlock took %d of 2", m)
	}
	l.commit(2)
	got := blockVals(t, l)
	for i, v := range got {
		if v != uint32(13+i) {
			t.Fatalf("tail flit %d: got %d", i, v)
		}
	}
}

// TestPushBlockPartialAtEOS: the end-of-stream pulse rides the block path
// like any flit. A producer whose final block is data..data+EOS but holds
// too few credits splits the block; the EOS must arrive last and intact.
func TestPushBlockPartialAtEOS(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 2, 1)
	final := append(flits(1, 2), Flit{EOS: true})
	n := l.PushBlock(0, final)
	if n != 2 {
		t.Fatalf("PushBlock took %d of 3 with 2 credits", n)
	}
	l.commit(0)
	if got := blockVals(t, l); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("first window: %v", got)
	}
	l.commit(1)
	if m := l.PushBlock(2, final[n:]); m != 1 {
		t.Fatalf("EOS remainder took %d of 1", m)
	}
	l.commit(2)
	span := l.PeekBlock()
	if len(span) != 1 || !span[0].EOS {
		t.Fatalf("EOS flit lost through split block: %+v", span)
	}
	l.DropBlock(1)
	if !l.Drained() {
		t.Fatal("link should drain after EOS consumed")
	}
}

// TestPushBlockArrivalStampsMatchScalar: every flit in a block shares the
// arrival cycle per-flit pushes in the same cycle would have — none visible
// one commit early, all visible after latency.
func TestPushBlockArrivalStampsMatchScalar(t *testing.T) {
	s := NewSystem()
	blk := s.NewLink("blk", 8, 3)
	ref := s.NewLink("ref", 8, 3)
	blk.PushBlock(5, flits(1, 2, 3))
	for _, f := range flits(1, 2, 3) {
		ref.Push(5, f)
	}
	for c := int64(5); c <= 8; c++ {
		blk.commit(c)
		ref.commit(c)
		if blk.Visible() != ref.Visible() {
			t.Fatalf("cycle %d: block path visible=%d, scalar=%d", c, blk.Visible(), ref.Visible())
		}
	}
	if blk.Visible() != 3 {
		t.Fatalf("latency-3 block not fully visible: %d", blk.Visible())
	}
	if blk.Pushes() != ref.Pushes() {
		t.Fatalf("push stats diverge: block=%d scalar=%d", blk.Pushes(), ref.Pushes())
	}
}

// TestDropBlockBeyondVisiblePanics: over-consuming a run is a modelling bug,
// caught at the call site like a scalar pop on an empty link.
func TestDropBlockBeyondVisiblePanics(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 4, 1)
	l.PushBlock(0, flits(1, 2))
	l.commit(0)
	defer func() {
		if recover() == nil {
			t.Error("DropBlock beyond the visible run must panic")
		}
	}()
	l.DropBlock(3)
}

// TestPopBlockClampsToVisible: a destination larger than the visible run
// takes what is there and reports it, leaving the link empty, not panicking.
func TestPopBlockClampsToVisible(t *testing.T) {
	s := NewSystem()
	l := s.NewLink("l", 8, 1)
	l.PushBlock(0, flits(6, 7))
	l.commit(0)
	dst := make([]Flit, 5)
	if n := l.PopBlock(dst); n != 2 {
		t.Fatalf("PopBlock returned %d, want 2", n)
	}
	if n := l.PopBlock(dst); n != 0 {
		t.Fatalf("empty PopBlock returned %d", n)
	}
}
