package sim

import (
	"sync"
	"testing"
)

// Edge cases of the work-stealing deque that the partition and bulk-race
// tests in shard_test.go do not isolate: the size-1 boundary of stealHalf's
// ceil division, the two-way race for the very last item, and the
// termination sweep a dry worker performs over all-empty deques.

// TestWSDequeStealHalfSizeOne: with one item left, ceil(1/2) = 1 — the
// thief takes the whole deque rather than rounding down to an empty steal
// (which would make a one-item victim invisible to thieves and strand the
// item until the owner returns).
func TestWSDequeStealHalfSizeOne(t *testing.T) {
	d := &wsDeque{items: make([]int32, 4)}
	d.reset()
	d.push(7)
	buf := make([]int32, 4)
	got := d.stealHalf(buf)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("stealHalf of size-1 deque = %v; want [7]", got)
	}
	if _, ok := d.claimOne(); ok {
		t.Fatal("item still claimable after a full steal")
	}
}

// TestWSDequeLastItemRace: an owner claiming and a thief stealing contend
// for the single remaining item; exactly one of them must get it, every
// time. This is the CAS path where h+1 and h+take land on the same head
// word. Run under -race it also checks the item read happens-after the
// claim.
func TestWSDequeLastItemRace(t *testing.T) {
	const rounds = 2000
	d := &wsDeque{items: make([]int32, 1)}
	buf := make([]int32, 1)
	for r := 0; r < rounds; r++ {
		d.reset()
		d.push(int32(r))
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(2)
		wins := make([]int, 2)
		go func() {
			defer done.Done()
			start.Wait()
			if v, ok := d.claimOne(); ok {
				if v != int32(r) {
					t.Errorf("round %d: claimOne got %d", r, v)
				}
				wins[0] = 1
			}
		}()
		go func() {
			defer done.Done()
			start.Wait()
			if got := d.stealHalf(buf); len(got) > 0 {
				if len(got) != 1 || got[0] != int32(r) {
					t.Errorf("round %d: stealHalf got %v", r, got)
				}
				wins[1] = 1
			}
		}()
		start.Done()
		done.Wait()
		if wins[0]+wins[1] != 1 {
			t.Fatalf("round %d: last item delivered %d times", r, wins[0]+wins[1])
		}
	}
}

// TestWSDequeTerminationSweep: a worker that runs dry scans every deque in
// ring order; when all are empty the sweep must visit each exactly once,
// observe emptiness from both claim and steal, and mutate nothing — the
// repeated sweep a parked worker performs before the barrier must be
// idempotent.
func TestWSDequeTerminationSweep(t *testing.T) {
	const n = 8
	deques := make([]wsDeque, n)
	for i := range deques {
		deques[i].items = make([]int32, 4)
		deques[i].reset()
	}
	buf := make([]int32, 4)
	for sweep := 0; sweep < 3; sweep++ {
		for i := range deques {
			if _, ok := deques[i].claimOne(); ok {
				t.Fatalf("sweep %d: empty deque %d yielded a claim", sweep, i)
			}
			if got := deques[i].stealHalf(buf); len(got) != 0 {
				t.Fatalf("sweep %d: empty deque %d yielded a steal %v", sweep, i, got)
			}
			if h := deques[i].head.Load(); h != 0 || deques[i].tail != 0 {
				t.Fatalf("sweep %d: deque %d mutated by empty probes (head=%d tail=%d)", sweep, i, h, deques[i].tail)
			}
		}
	}
}
