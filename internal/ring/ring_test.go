package ring

import "testing"

func TestFIFOOrderAcrossWraps(t *testing.T) {
	var q Queue[int]
	next := 0 // next value to pop
	push := 0 // next value to push
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(push)
			push++
		}
		for i := 0; i < 5; i++ {
			if got := q.Pop(); got != next {
				t.Fatalf("pop=%d want %d", got, next)
			}
			next++
		}
	}
	for !q.Empty() {
		if got := q.Pop(); got != next {
			t.Fatalf("drain pop=%d want %d", got, next)
		}
		next++
	}
	if next != push {
		t.Fatalf("drained %d, pushed %d", next, push)
	}
}

func TestPushRefAndAt(t *testing.T) {
	var q Queue[[4]int]
	for i := 0; i < 10; i++ {
		p := q.PushRef()
		p[0] = i
	}
	for i := 0; i < 10; i++ {
		if q.At(i)[0] != i {
			t.Fatalf("At(%d)=%v", i, q.At(i))
		}
	}
	q.DropN(3)
	if q.Len() != 7 || q.Front()[0] != 3 {
		t.Fatalf("after DropN: len=%d front=%v", q.Len(), q.Front())
	}
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset did not empty queue")
	}
}

func TestPanicOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue must panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}

// TestSteadyStateAllocFree pins the reason this package exists: once warm,
// push/pop cycles do not touch the allocator.
func TestSteadyStateAllocFree(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 64; i++ {
		q.Push(i)
	}
	q.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(i)
		}
		for i := 0; i < 32; i++ {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f/op, want 0", allocs)
	}
}

// TestGrowWhileWrapped: doubling with the head mid-buffer must unwrap the
// ring — the element order after a wrapped grow is the original FIFO order.
func TestGrowWhileWrapped(t *testing.T) {
	var q Queue[int]
	// Fill to the initial capacity of 8, drop half, refill past the wrap
	// point so head > 0 and the ring is split across the boundary.
	for i := 0; i < 8; i++ {
		q.Push(i)
	}
	q.DropN(5) // head=5, occupied slots wrap: [5 6 7] + room for 5 more
	for i := 8; i < 13; i++ {
		q.Push(i)
	}
	// Next push forces grow() while wrapped.
	q.Push(13)
	for want := 5; want <= 13; want++ {
		if got := q.Pop(); got != want {
			t.Fatalf("after wrapped grow: pop=%d want %d", got, want)
		}
	}
	if !q.Empty() {
		t.Fatalf("queue not drained, len=%d", q.Len())
	}
}

// TestFullEmptyTransitions: the ambiguous states — completely full and
// completely empty at the same head position — are distinguished correctly
// through repeated fill/drain cycles at exact capacity.
func TestFullEmptyTransitions(t *testing.T) {
	var q Queue[int]
	q.Push(0)
	q.Pop()
	cap0 := len(q.buf)
	if cap0 == 0 {
		t.Fatal("expected warm backing buffer")
	}
	for round := 0; round < 3*cap0; round++ {
		if !q.Empty() || q.Len() != 0 {
			t.Fatalf("round %d: queue not empty at start", round)
		}
		for i := 0; i < cap0; i++ {
			q.Push(round*cap0 + i)
		}
		if q.Len() != cap0 || q.Empty() {
			t.Fatalf("round %d: full queue misreported len=%d", round, q.Len())
		}
		if len(q.buf) != cap0 {
			t.Fatalf("round %d: fill to exact capacity grew the buffer", round)
		}
		for i := 0; i < cap0; i++ {
			if got := q.Pop(); got != round*cap0+i {
				t.Fatalf("round %d: pop=%d want %d", round, got, round*cap0+i)
			}
		}
	}
}

// TestDrainRefillPeekStability: under repeated partial drain-refill cycles,
// Front/At observations, Drop, and PushRef stay mutually consistent — the
// pattern every simulator consumer (peek, decide, drop or keep) relies on.
func TestDrainRefillPeekStability(t *testing.T) {
	var q Queue[[2]int]
	next, push := 0, 0
	for round := 0; round < 200; round++ {
		// Refill with in-place construction.
		for i := 0; i < 3; i++ {
			s := q.PushRef()
			s[0], s[1] = push, push*2
			push++
		}
		// Peek every element before touching the front: At must agree with
		// eventual Pop order.
		for i := 0; i < q.Len(); i++ {
			if got := q.At(i)[0]; got != next+i {
				t.Fatalf("round %d: At(%d)=%d want %d", round, i, got, next+i)
			}
		}
		// Drain a different amount than we pushed so head sweeps the ring.
		drop := 2
		if round%5 == 0 {
			drop = 3
		}
		for i := 0; i < drop && !q.Empty(); i++ {
			f := q.Front()
			if f[0] != next || f[1] != next*2 {
				t.Fatalf("round %d: front=%v want [%d %d]", round, *f, next, next*2)
			}
			q.Drop()
			next++
		}
	}
	for !q.Empty() {
		if got := q.Pop(); got[0] != next {
			t.Fatalf("drain: pop=%d want %d", got[0], next)
		}
		next++
	}
	if next != push {
		t.Fatalf("drained %d, pushed %d", next, push)
	}
}

// TestDropClearsPointers: dropping an element of a pointer-bearing type
// zeroes the vacated slot so the queue does not pin garbage, while a
// pointer-free type skips the clear (the slot keeps its remains until
// PushRefDirty reuses it).
func TestDropClearsPointers(t *testing.T) {
	var qp Queue[*int]
	v := new(int)
	qp.Push(v)
	qp.Drop()
	if !qp.mustClear() {
		t.Fatal("pointer element type must clear on drop")
	}
	if got := qp.buf[0]; got != nil {
		t.Fatalf("dropped slot still holds %p", got)
	}

	var qi Queue[int]
	qi.Push(42)
	qi.Drop()
	if qi.mustClear() {
		t.Fatal("pointer-free element type must skip clearing")
	}
	if got := qi.buf[0]; got != 42 {
		t.Fatalf("pointer-free drop zeroed the slot: got %d", got)
	}
	// The dirty remains are invisible through the API: PushRefDirty hands the
	// slot back for full overwrite.
	*qi.PushRefDirty() = 7
	if got := qi.Pop(); got != 7 {
		t.Fatalf("reused slot pop=%d want 7", got)
	}
}
