package ring

import "testing"

func TestFIFOOrderAcrossWraps(t *testing.T) {
	var q Queue[int]
	next := 0 // next value to pop
	push := 0 // next value to push
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(push)
			push++
		}
		for i := 0; i < 5; i++ {
			if got := q.Pop(); got != next {
				t.Fatalf("pop=%d want %d", got, next)
			}
			next++
		}
	}
	for !q.Empty() {
		if got := q.Pop(); got != next {
			t.Fatalf("drain pop=%d want %d", got, next)
		}
		next++
	}
	if next != push {
		t.Fatalf("drained %d, pushed %d", next, push)
	}
}

func TestPushRefAndAt(t *testing.T) {
	var q Queue[[4]int]
	for i := 0; i < 10; i++ {
		p := q.PushRef()
		p[0] = i
	}
	for i := 0; i < 10; i++ {
		if q.At(i)[0] != i {
			t.Fatalf("At(%d)=%v", i, q.At(i))
		}
	}
	q.DropN(3)
	if q.Len() != 7 || q.Front()[0] != 3 {
		t.Fatalf("after DropN: len=%d front=%v", q.Len(), q.Front())
	}
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset did not empty queue")
	}
}

func TestPanicOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue must panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}

// TestSteadyStateAllocFree pins the reason this package exists: once warm,
// push/pop cycles do not touch the allocator.
func TestSteadyStateAllocFree(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 64; i++ {
		q.Push(i)
	}
	q.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(i)
		}
		for i := 0; i < 32; i++ {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f/op, want 0", allocs)
	}
}
