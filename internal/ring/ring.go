// Package ring provides a growable FIFO backed by a circular buffer. It
// exists for the simulator's hot accumulators (filter pipelines, merge
// buffers, scratchpad response queues, DRAM burst queues): the idiomatic
// `q = append(q, x)` / `q = q[1:]` pattern re-allocates the backing array
// every wrap-around and was one of the dominant allocation sources in the
// cycle loop. A Queue reuses its storage forever — steady-state push/pop is
// allocation-free — while keeping strict FIFO order, so swapping it in is
// behavior-preserving.
package ring

import "reflect"

// Queue is a FIFO of T. The zero value is an empty queue ready for use.
// It is not synchronized; each simulator component owns its queues.
type Queue[T any] struct {
	buf  []T
	head int
	n    int
	// clear caches whether dropped slots must be zeroed so they do not pin
	// garbage: 0 = undetermined, 1 = T holds pointers (clear), 2 = T is
	// pointer-free (skip — zeroing a large flit struct on every drop was a
	// measurable fraction of the cycle loop).
	clear int8
}

func (q *Queue[T]) mustClear() bool {
	if q.clear == 0 {
		var z *T
		if typeHasPointers(reflect.TypeOf(z).Elem()) {
			q.clear = 1
		} else {
			q.clear = 2
		}
	}
	return q.clear == 1
}

// typeHasPointers reports whether values of t contain any pointer the
// garbage collector traces. Unknown kinds conservatively count as pointers.
func typeHasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return typeHasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if typeHasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	}
	return true
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.n == 0 }

// At returns a pointer to the i-th element from the front (0 = front). The
// pointer is valid until the element is popped or the queue grows.
func (q *Queue[T]) At(i int) *T {
	if i < 0 || i >= q.n {
		panic("ring: index out of range")
	}
	p := q.head + i
	if p >= len(q.buf) {
		p -= len(q.buf)
	}
	return &q.buf[p]
}

// Front returns a pointer to the front element. Panics when empty.
func (q *Queue[T]) Front() *T { return q.At(0) }

// Push appends v at the back. The slot is fully overwritten, so no
// pre-clearing is needed.
func (q *Queue[T]) Push(v T) { *q.PushRefDirty() = v }

// PushRef grows the queue by one zeroed element at the back and returns a
// pointer to it, letting callers build large elements in place instead of
// copying them through the stack.
func (q *Queue[T]) PushRef() *T {
	s := q.PushRefDirty()
	var zero T
	*s = zero
	return s
}

// PushRefDirty is PushRef without the zeroing: the returned slot may hold
// the remains of a previously dropped element, so the caller must assign
// every field it will later read. This is the right call for hot paths that
// fully overwrite the slot anyway.
func (q *Queue[T]) PushRefDirty() *T {
	if q.n == len(q.buf) {
		q.grow()
	}
	p := q.head + q.n
	if p >= len(q.buf) {
		p -= len(q.buf)
	}
	q.n++
	return &q.buf[p]
}

// Pop removes and returns the front element. Panics when empty.
func (q *Queue[T]) Pop() T {
	v := *q.Front()
	q.Drop()
	return v
}

// Drop removes the front element without copying it out. Panics when empty.
func (q *Queue[T]) Drop() {
	if q.n == 0 {
		panic("ring: drop on empty queue")
	}
	if q.mustClear() {
		// Zero the slot so queued pointers do not pin garbage.
		var zero T
		q.buf[q.head] = zero
	}
	q.head++
	if q.head >= len(q.buf) {
		q.head = 0
	}
	q.n--
}

// DropN removes the front n elements.
func (q *Queue[T]) DropN(n int) {
	for i := 0; i < n; i++ {
		q.Drop()
	}
}

// BackingID identifies the current backing array (its first slot's
// address), or nil before the first push. It exists for white-box
// allocation probes that assert a queue stops reallocating at steady
// state; it is not useful for reading queue contents.
func (q *Queue[T]) BackingID() *T {
	if len(q.buf) == 0 {
		return nil
	}
	return &q.buf[0]
}

// Reset empties the queue, keeping the backing storage.
func (q *Queue[T]) Reset() {
	var zero T
	for i := 0; i < q.n; i++ {
		*q.At(i) = zero
	}
	q.head, q.n = 0, 0
}

// grow doubles the backing array, unwrapping the ring so order is kept.
//
// lint:hotalloc-ok — classic amortized doubling: each element is copied at
// most twice over the queue's lifetime, and a queue that has reached its
// steady-state population never grows again (the runtime AllocsPerRun gates
// in internal/sim pin this down dynamically).
func (q *Queue[T]) grow() {
	size := len(q.buf) * 2
	if size < 8 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < q.n; i++ {
		buf[i] = *q.At(i)
	}
	q.buf = buf
	q.head = 0
}
