package area

import (
	"strings"
	"testing"
)

func TestHeadlineOverheads(t *testing.T) {
	m := Default()
	// Paper §V-A: +15 % scratchpad area, +5 % chip area.
	if got := m.ScratchpadOverhead(); got < 0.145 || got > 0.155 {
		t.Errorf("scratchpad overhead %.3f, want ~0.15", got)
	}
	if got := m.ChipOverhead(); got < 0.045 || got > 0.055 {
		t.Errorf("chip overhead %.3f, want ~0.05", got)
	}
}

func TestAllocatorIsSmall(t *testing.T) {
	// "the allocation logic ... occupies only a small portion" — under
	// 10 % of the additions.
	m := Default()
	for _, c := range m.Additions {
		if c.Name == "allocator" {
			if c.Area/m.AddedArea() > 0.10 {
				t.Errorf("allocator is %.0f%% of additions; paper calls it small", 100*c.Area/m.AddedArea())
			}
			return
		}
	}
	t.Fatal("no allocator component in the model")
}

func TestIssueQueuesDominate(t *testing.T) {
	m := Default()
	var max Component
	for _, c := range m.Additions {
		if c.Area > max.Area {
			max = c
		}
	}
	if !strings.Contains(max.Name, "issue queues") {
		t.Errorf("largest addition is %q; issue-queue storage should dominate", max.Name)
	}
}

func TestBreakdownRenders(t *testing.T) {
	out := Default().Breakdown()
	for _, want := range []string{"allocator", "issue queues", "total added", "chip overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}
