// Package area models the silicon cost of Aurochs' additions (paper §V-A,
// fig. 10). The paper implements the memory-reordering pipeline in Chisel,
// synthesizes it with a 15 nm predictive PDK, and reports that Aurochs
// grows a Gorgon scratchpad tile by 15 %, which is 5 % of whole-chip area;
// the allocator itself is a small slice of the addition. We encode the same
// component inventory with per-component areas calibrated to those two
// headline ratios; tests verify the arithmetic reproduces them.
package area

import (
	"fmt"
	"sort"
	"strings"
)

// Component is one piece of the added scratchpad logic.
type Component struct {
	Name string
	// Area is in µm² at the 15 nm node (scaled as the paper scales SRAMs
	// from the 28 nm industrial PDK).
	Area float64
}

// Model is the area breakdown of one scratchpad tile.
type Model struct {
	// BaselineScratchpad is a Gorgon scratchpad tile (256 KiB SRAM banks,
	// control, existing crossbars).
	BaselineScratchpad float64
	// Additions are Aurochs' new components.
	Additions []Component
	// ScratchpadShareOfChip is the fraction of Gorgon's total area spent
	// on scratchpad tiles (what converts tile overhead to chip overhead).
	ScratchpadShareOfChip float64
}

// Default returns the calibrated model. The baseline tile is normalized to
// 100 units; additions sum to 15 (the reported +15 % tile growth), and the
// scratchpad share is chosen so chip overhead lands at 5 %.
func Default() Model {
	return Model{
		BaselineScratchpad: 100,
		Additions: []Component{
			// Issue queues dominate: 16 lanes × 8 deep × (bank tag in
			// registers for single-cycle readout + payload register file).
			{Name: "issue queues (reg files)", Area: 6.1},
			// Two response reorder/compaction buffers.
			{Name: "response compactors", Area: 3.2},
			// Read and write crossbars between lanes and banks.
			{Name: "lane-bank crossbars", Area: 2.6},
			// RMW ALUs with the write→read forwarding path.
			{Name: "rmw units + forwarding", Area: 1.9},
			// The lane↔bank allocator is combinational and small — the
			// paper calls out that it "occupies only a small portion".
			{Name: "allocator", Area: 0.7},
			{Name: "control / config", Area: 0.5},
		},
		ScratchpadShareOfChip: 1.0 / 3.0,
	}
}

// AddedArea sums the additions.
func (m Model) AddedArea() float64 {
	s := 0.0
	for _, c := range m.Additions {
		s += c.Area
	}
	return s
}

// ScratchpadOverhead returns the tile-level growth (paper: 15 %).
func (m Model) ScratchpadOverhead() float64 {
	return m.AddedArea() / m.BaselineScratchpad
}

// ChipOverhead returns the whole-chip growth (paper: 5 %).
func (m Model) ChipOverhead() float64 {
	return m.ScratchpadOverhead() * m.ScratchpadShareOfChip
}

// Breakdown renders fig. 10's per-component view: each addition as a
// percentage of the baseline scratchpad.
func (m Model) Breakdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %8s %9s\n", "component", "area", "% of spad")
	adds := append([]Component(nil), m.Additions...)
	sort.Slice(adds, func(i, j int) bool { return adds[i].Area > adds[j].Area })
	for _, c := range adds {
		fmt.Fprintf(&b, "%-32s %8.2f %8.2f%%\n", c.Name, c.Area, 100*c.Area/m.BaselineScratchpad)
	}
	fmt.Fprintf(&b, "%-32s %8.2f %8.2f%%\n", "total added", m.AddedArea(), 100*m.ScratchpadOverhead())
	fmt.Fprintf(&b, "%-32s %17.2f%%\n", "chip overhead", 100*m.ChipOverhead())
	return b.String()
}

// TimingNote documents the synthesis result the paper reports alongside
// fig. 10.
const TimingNote = "design meets timing at 1 GHz; critical path: issue queue → allocator"
