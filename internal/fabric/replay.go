package fabric

import (
	"errors"
	"fmt"
	"strings"

	"aurochs/internal/analysis/flow"
	"aurochs/internal/sim"
)

// This file is the differential half of the token-flow prover: a witness
// is only worth its name if the real simulator fails the way it predicts.
// ReplayWitness drives a concrete graph — built by the caller with at
// least Witness.Inject records at the cycle's external input — and
// asserts the engine reaches exactly the predicted failure:
//
//   - wedge  → the run never completes: sim.DeadlockError when motion
//     stops outright, or sim.BudgetError when the saturated ring keeps
//     rotating (livelock) — either way with every witness-Blocked
//     component in the stuck set;
//   - stall  → the graph quiesces with work done but end-of-stream
//     undeliverable: sim.DeadlockError with the Blocked components stuck;
//   - underflow → the LoopCtl "inflight underflow" panic.
//
// The run bypasses Graph.Check on purpose: several witnessed shapes (a
// swapped LoopMerge, an uncounted side entrance) are also structural
// Check errors, and the point of the replay is to show the prover's
// runtime prediction holds, not that a second analyzer objects earlier.

// ReplayBudget bounds a replay in cycles: generous enough that a healthy
// graph of Inject records finishes, small enough that a witness wrongly
// predicting failure on a live graph is caught by the budget, not a hang.
func ReplayBudget(w *flow.Witness) int64 {
	return 4000 + 200*int64(w.Inject)
}

// ReplayWitness runs the graph against the witness's prediction and
// returns nil exactly when the engine fails as predicted. Any other
// outcome — a clean drain, the wrong failure mode, a stuck set missing a
// predicted component — is returned as an error describing the
// divergence.
func ReplayWitness(g *Graph, w *flow.Witness) error {
	var runErr error
	panicked, panicMsg := false, ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				panicMsg = fmt.Sprint(r)
			}
		}()
		// Always the serial kernel (Workers: 1, which also pins the
		// AUROCHS_WORKERS env override): a predicted underflow panic must
		// fire on this goroutine for the recover above to catch it, and
		// the parallel kernel is cycle-for-cycle identical anyway.
		_, runErr = g.Sys.RunWith(ReplayBudget(w), sim.RunOptions{Workers: 1})
	}()

	switch w.Mode {
	case flow.UnderflowWitness:
		if !panicked {
			return fmt.Errorf("replay %s: predicted an inflight-underflow panic, got %v", w.Rule, runErr)
		}
		if !strings.Contains(panicMsg, "inflight underflow") {
			return fmt.Errorf("replay %s: predicted an inflight-underflow panic, engine panicked differently: %s", w.Rule, panicMsg)
		}
		return nil
	case flow.WedgeWitness, flow.StallWitness:
		if panicked {
			return fmt.Errorf("replay %s: predicted a deadlock, engine panicked: %s", w.Rule, panicMsg)
		}
		var stuckSet []string
		var dl *sim.DeadlockError
		var be *sim.BudgetError
		switch {
		case errors.As(runErr, &dl):
			stuckSet = dl.Stuck
		case w.Mode == flow.WedgeWitness && errors.As(runErr, &be):
			// A saturated ring can livelock — rotate forever without
			// draining. The generous replay budget makes exhaustion with
			// the predicted components still stuck the wedge's signature.
			stuckSet = be.Stuck
		default:
			return fmt.Errorf("replay %s: predicted a deadlock with %v stuck, got %v", w.Rule, w.Blocked, runErr)
		}
		stuck := make(map[string]bool, len(stuckSet))
		for _, s := range stuckSet {
			stuck[s] = true
		}
		for _, b := range w.Blocked {
			if !stuck[b] {
				return fmt.Errorf("replay %s: predicted %q stuck, stuck set is %v", w.Rule, b, stuckSet)
			}
		}
		return nil
	default:
		return fmt.Errorf("replay: unknown witness mode %q", w.Mode)
	}
}
