package fabric

import (
	"fmt"

	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/sim"
	"aurochs/internal/spad"
)

// DRAMNode is a fabric endpoint that gathers or scatters thread records
// against the shared HBM: the paths that fetch B-tree blocks, spill hash
// partitions, and write overflow nodes. It reuses spad.Spec to describe how
// a record encodes its request; widths may be large (block fetches).
//
// Timing: each record becomes one HBM request (split into bursts by the
// DRAM model); responses return out of order and are re-vectorized, exactly
// like the scratchpad's reordering pipeline but with memory-system latency.
type DRAMNode struct {
	name string
	h    *dram.HBM
	spec spad.Spec // lint:sharedstate-ok — Spec (incl. its schemas) is immutable after construction
	in   *sim.Link
	out  *sim.Link
	stat *sim.Stats

	maxOutstanding int
	backlog        []record.Rec
	outstanding    int
	ready          []record.Rec
	eosIn          bool
	eos            bool
}

// NewDRAMNode builds a DRAM access node on graph g.
func NewDRAMNode(g *Graph, name string, spec spad.Spec, in, out *sim.Link) *DRAMNode {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	if spec.Addr == nil {
		panic("fabric: dram spec.Addr is required")
	}
	if spec.Op != spad.OpRead && spec.Data == nil {
		panic(fmt.Sprintf("fabric: dram node %s: op %s requires spec.Data", name, spec.Op))
	}
	if spec.Op == spad.OpXCHG {
		panic("fabric: dram node does not implement xchg")
	}
	n := &DRAMNode{
		name:           name,
		h:              g.HBM,
		spec:           spec,
		in:             in,
		out:            out,
		stat:           g.Stats(),
		maxOutstanding: 64,
	}
	g.Add(n)
	return n
}

// Name implements sim.Component.
func (d *DRAMNode) Name() string { return d.name }

// InputLinks implements sim.InputPorts.
func (d *DRAMNode) InputLinks() []*sim.Link { return []*sim.Link{d.in} }

// OutputLinks implements sim.OutputPorts.
func (d *DRAMNode) OutputLinks() []*sim.Link { return []*sim.Link{d.out} }

// Done implements sim.Component.
func (d *DRAMNode) Done() bool { return d.eos }

// Idle implements sim.Idler: with nothing buffered on either side the node
// can only wait — completions arrive via the HBM's tick, not this one.
func (d *DRAMNode) Idle(int64) bool {
	if len(d.ready) > 0 || len(d.backlog) > 0 {
		return false
	}
	if !d.eosIn && !d.in.Empty() {
		return false
	}
	if d.eosIn && !d.eos && d.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: submissions and completion
// callbacks interleave with the HBM's tick.
func (d *DRAMNode) SharedState() []any { return []any{d.h} }

func (d *DRAMNode) width() int {
	if d.spec.Width <= 0 {
		return 1
	}
	return d.spec.Width
}

// Tick implements sim.Component.
func (d *DRAMNode) Tick(cycle int64) {
	d.emit(cycle)
	d.submit()
	d.accept()
	d.finishEOS(cycle)
}

// submit pushes backlogged records into the memory system, stalling when
// the response side backs up (bounded buffering, like the scratchpad's
// response compactor).
func (d *DRAMNode) submit() {
	for len(d.backlog) > 0 && d.outstanding < d.maxOutstanding &&
		len(d.ready)+d.outstanding < 8*record.NumLanes {
		r := d.backlog[0]
		w := d.width()
		addr := d.spec.Addr(r)
		req := dram.Request{Addr: addr, Words: w}
		switch d.spec.Op {
		case spad.OpWrite:
			data := make([]uint32, w)
			for i := 0; i < w; i++ {
				data[i] = d.spec.Data(r, i)
			}
			req.Write = true
			req.Data = data
		case spad.OpRead:
			// nothing extra
		case spad.OpFAA:
			// Atomic at the memory controller: mutate functionally now
			// (submissions are serialized), respond after the round trip.
			old := d.h.ReadWord(addr)
			d.h.WriteWord(addr, old+d.spec.Data(r, 0))
			req.Write = true
			req.Data = []uint32{old + d.spec.Data(r, 0)}
			rr := r
			prev := old
			req.Done = d.completer(rr, []uint32{prev})
		case spad.OpCAS:
			cur := d.h.ReadWord(addr)
			if cur == d.spec.Data(r, 0) {
				d.h.WriteWord(addr, d.spec.Data(r, 1))
			}
			req.Write = true
			req.Data = []uint32{d.h.ReadWord(addr)}
			req.Done = d.completer(r, []uint32{cur})
		default:
			panic("fabric: dram node op not implemented: " + d.spec.Op.String())
		}
		if req.Done == nil {
			rr := r
			if req.Write {
				req.Done = func([]uint32) { d.complete(rr, nil) }
			} else {
				req.Done = func(data []uint32) { d.complete(rr, data) }
			}
		}
		if !d.h.Submit(req) {
			d.stat.Add(d.name+".dram_stall", 1)
			return
		}
		d.outstanding++
		d.backlog = d.backlog[1:]
		d.stat.Add(d.name+".dram_reqs", 1)
	}
}

func (d *DRAMNode) completer(r record.Rec, resp []uint32) func([]uint32) {
	return func([]uint32) { d.complete(r, resp) }
}

// complete applies the response to the thread and queues it for output.
func (d *DRAMNode) complete(r record.Rec, resp []uint32) {
	d.outstanding--
	out, keep := r, true
	if d.spec.Apply != nil {
		out, keep = d.spec.Apply(r, resp)
	}
	if keep {
		d.ready = append(d.ready, out)
	} else {
		d.stat.Add(d.name+".dropped", 1)
	}
}

// accept pulls one input vector into the backlog.
func (d *DRAMNode) accept() {
	if d.eosIn || d.in.Empty() || len(d.backlog) > 2*record.NumLanes {
		return
	}
	f := d.in.Pop()
	if f.EOS {
		d.eosIn = true
		return
	}
	d.backlog = append(d.backlog, f.Vec.Records()...)
}

// emit vectorizes completed threads, one vector per cycle.
func (d *DRAMNode) emit(cycle int64) {
	if len(d.ready) == 0 || !d.out.CanPush() {
		return
	}
	var v record.Vector
	n := len(d.ready)
	if n > record.NumLanes {
		n = record.NumLanes
	}
	for i := 0; i < n; i++ {
		v.Push(d.ready[i])
	}
	d.ready = d.ready[n:]
	d.out.Push(cycle, sim.Flit{Vec: v})
}

func (d *DRAMNode) finishEOS(cycle int64) {
	if d.eos || !d.eosIn {
		return
	}
	if len(d.backlog) > 0 || d.outstanding > 0 || len(d.ready) > 0 {
		return
	}
	if !d.out.CanPush() {
		return
	}
	d.out.Push(cycle, sim.Flit{EOS: true})
	d.eos = true
}
