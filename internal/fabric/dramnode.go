package fabric

import (
	"fmt"

	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
	"aurochs/internal/spad"
)

// DRAMNode is a fabric endpoint that gathers or scatters thread records
// against the shared HBM: the paths that fetch B-tree blocks, spill hash
// partitions, and write overflow nodes. It reuses spad.Spec to describe how
// a record encodes its request; widths may be large (block fetches).
//
// Timing: each record becomes one HBM request (split into bursts by the
// DRAM model); responses return out of order and are re-vectorized, exactly
// like the scratchpad's reordering pipeline but with memory-system latency.
type DRAMNode struct {
	name string
	h    *dram.HBM
	spec spad.Spec // lint:sharedstate-ok — Spec (incl. its schemas) is immutable after construction
	in   *sim.Link
	out  *sim.Link
	stat *sim.Stats

	maxOutstanding int
	backlog        ring.Queue[record.Rec]
	outstanding    int
	ready          ring.Queue[record.Rec]
	eosIn          bool
	eos            bool

	wdata []uint32 // scratch for write payloads (consumed synchronously by SubmitAt)

	stallCnt, reqCnt, dropCnt *sim.Counter
}

// NewDRAMNode builds a DRAM access node on graph g.
func NewDRAMNode(g *Graph, name string, spec spad.Spec, in, out *sim.Link) *DRAMNode {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	if spec.Addr == nil {
		panic("fabric: dram spec.Addr is required")
	}
	if spec.Op != spad.OpRead && spec.Data == nil {
		panic(fmt.Sprintf("fabric: dram node %s: op %s requires spec.Data", name, spec.Op))
	}
	if spec.Op == spad.OpXCHG {
		panic("fabric: dram node does not implement xchg")
	}
	n := &DRAMNode{
		name:           name,
		h:              g.HBM,
		spec:           spec,
		in:             in,
		out:            out,
		stat:           g.Stats(),
		maxOutstanding: 64,
	}
	n.stallCnt = n.stat.Counter(name + ".dram_stall")
	n.reqCnt = n.stat.Counter(name + ".dram_reqs")
	n.dropCnt = n.stat.Counter(name + ".dropped")
	g.Add(n)
	return n
}

// Name implements sim.Component.
func (d *DRAMNode) Name() string { return d.name }

// InputLinks implements sim.InputPorts.
func (d *DRAMNode) InputLinks() []*sim.Link { return []*sim.Link{d.in} }

// OutputLinks implements sim.OutputPorts.
func (d *DRAMNode) OutputLinks() []*sim.Link { return []*sim.Link{d.out} }

// Done implements sim.Component.
func (d *DRAMNode) Done() bool { return d.eos }

// Idle implements sim.Idler: with nothing buffered on either side the node
// can only wait — completions arrive via the HBM's tick, not this one.
func (d *DRAMNode) Idle(int64) bool {
	if d.ready.Len() > 0 || d.backlog.Len() > 0 {
		return false
	}
	if !d.eosIn && !d.in.Empty() {
		return false
	}
	if d.eosIn && !d.eos && d.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: submissions and completion
// callbacks interleave with the HBM's tick.
func (d *DRAMNode) SharedState() []any { return []any{d.h} }

// WakeHint implements sim.WakeHinter: the node has no self-timed events —
// it reacts to link flits and to HBM completions, and the HBM is a
// shared-state partner that wakes it on every non-idle memory tick.
func (d *DRAMNode) WakeHint(int64) int64 { return sim.WakeNever }

func (d *DRAMNode) width() int {
	if d.spec.Width <= 0 {
		return 1
	}
	return d.spec.Width
}

// Tick implements sim.Component.
func (d *DRAMNode) Tick(cycle int64) {
	d.emit(cycle)
	d.submit(cycle)
	d.accept()
	d.finishEOS(cycle)
}

// submit pushes backlogged records into the memory system, stalling when
// the response side backs up (bounded buffering, like the scratchpad's
// response compactor).
//
// lint:hotalloc-ok — the per-request payload slices and completion closures
// escape into the HBM callback and live until the response returns; one
// small allocation per DRAM request is amortized over the multi-ten-cycle
// round trip, and the write scratch (d.wdata) is cap-guarded reuse.
func (d *DRAMNode) submit(cycle int64) {
	for d.backlog.Len() > 0 && d.outstanding < d.maxOutstanding &&
		d.ready.Len()+d.outstanding < 8*record.NumLanes {
		r := *d.backlog.Front()
		w := d.width()
		addr := d.spec.Addr(&r)
		req := dram.Request{Addr: addr, Words: w}
		switch d.spec.Op {
		case spad.OpWrite:
			// SubmitAt consumes write payloads synchronously, so the
			// scratch buffer is safe to reuse across records.
			if cap(d.wdata) < w {
				d.wdata = make([]uint32, w)
			}
			data := d.wdata[:w]
			for i := 0; i < w; i++ {
				data[i] = d.spec.Data(&r, i)
			}
			req.Write = true
			req.Data = data
		case spad.OpRead:
			// nothing extra
		case spad.OpFAA:
			// Atomic at the memory controller: mutate functionally now
			// (submissions are serialized), respond after the round trip.
			old := d.h.ReadWord(addr)
			d.h.WriteWord(addr, old+d.spec.Data(&r, 0))
			req.Write = true
			req.Data = []uint32{old + d.spec.Data(&r, 0)}
			rr := r
			prev := old
			req.Done = d.completer(rr, []uint32{prev})
		case spad.OpCAS:
			cur := d.h.ReadWord(addr)
			if cur == d.spec.Data(&r, 0) {
				d.h.WriteWord(addr, d.spec.Data(&r, 1))
			}
			req.Write = true
			req.Data = []uint32{d.h.ReadWord(addr)}
			req.Done = d.completer(r, []uint32{cur})
		default:
			panic("fabric: dram node op not implemented: " + d.spec.Op.String())
		}
		if req.Done == nil {
			rr := r
			if req.Write {
				req.Done = func([]uint32) { d.complete(rr, nil) }
			} else {
				req.Done = func(data []uint32) { d.complete(rr, data) }
			}
		}
		if !d.h.SubmitAt(cycle, req) {
			d.stallCnt.Add(1)
			return
		}
		d.outstanding++
		d.backlog.Drop()
		d.reqCnt.Add(1)
	}
}

// completer binds one response to the completion path.
//
// lint:hotalloc-ok — one closure per atomic request, amortized over the
// DRAM round trip (see submit).
func (d *DRAMNode) completer(r record.Rec, resp []uint32) func([]uint32) {
	return func([]uint32) { d.complete(r, resp) }
}

// complete applies the response to the thread and queues it for output. It
// runs inside the HBM's tick (the completion callback fires when the
// controller retires the request), and DRAMNode declares that HBM via
// SharedState — so the kernel's partner-tick wake channel re-examines this
// node's Idle on every HBM tick and the mutations below cannot strand a
// sleeping node.
func (d *DRAMNode) complete(r record.Rec, resp []uint32) {
	d.outstanding-- // lint:wakeprop-ok fires inside the HBM partner's tick; partner-tick wake re-checks Idle
	keep := true
	if d.spec.Apply != nil {
		keep = d.spec.Apply(&r, resp)
	}
	if keep {
		*d.ready.PushRefDirty() = r // lint:wakeprop-ok fires inside the HBM partner's tick; partner-tick wake re-checks Idle
	} else {
		d.dropCnt.Add(1)
	}
}

// accept pulls one input vector into the backlog.
func (d *DRAMNode) accept() {
	if d.eosIn || d.in.Empty() || d.backlog.Len() > 2*record.NumLanes {
		return
	}
	f := d.in.Peek()
	d.in.Drop()
	if f.EOS {
		d.eosIn = true
		return
	}
	for i := 0; i < record.NumLanes; i++ {
		if f.Vec.Mask&(1<<uint(i)) != 0 {
			*d.backlog.PushRefDirty() = f.Vec.Lane[i]
		}
	}
}

// emit vectorizes completed threads, one vector per cycle.
func (d *DRAMNode) emit(cycle int64) {
	if d.ready.Len() == 0 || !d.out.CanPush() {
		return
	}
	n := d.ready.Len()
	if n > record.NumLanes {
		n = record.NumLanes
	}
	v := d.out.StageVec(cycle)
	for i := 0; i < n; i++ {
		v.Push(d.ready.Pop())
	}
}

func (d *DRAMNode) finishEOS(cycle int64) {
	if d.eos || !d.eosIn {
		return
	}
	if d.backlog.Len() > 0 || d.outstanding > 0 || d.ready.Len() > 0 {
		return
	}
	if !d.out.CanPush() {
		return
	}
	d.out.Push(cycle, sim.Flit{EOS: true})
	d.eos = true
}
