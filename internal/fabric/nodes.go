package fabric

import (
	"math/bits"

	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// Source feeds a pre-materialized record stream into the fabric at one
// vector per cycle, then signals end-of-stream.
type Source struct {
	name   string
	out    *sim.Link
	vecs   []record.Vector
	pos    int
	eos    bool
	schema *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
}

// NewSource builds a source from records (vectorized densely).
func NewSource(name string, recs []record.Rec, out *sim.Link) *Source {
	return &Source{name: name, out: out, vecs: record.Vectorize(recs)}
}

// Name implements sim.Component.
func (s *Source) Name() string { return s.name }

// OutputLinks implements sim.OutputPorts.
func (s *Source) OutputLinks() []*sim.Link { return []*sim.Link{s.out} }

// Done implements sim.Component.
func (s *Source) Done() bool { return s.eos }

// Idle implements sim.Idler: nothing to do once drained or backpressured.
func (s *Source) Idle(int64) bool { return s.eos || !s.out.CanPush() }

// WakeHint implements sim.WakeHinter: a source only waits on link credit.
func (s *Source) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (s *Source) Tick(cycle int64) {
	if s.eos || !s.out.CanPush() {
		return
	}
	if s.pos < len(s.vecs) {
		// StageVec writes the vector straight into the ring slot — one copy
		// instead of composing a Flit on the stack and copying it again.
		*s.out.StageVec(cycle) = s.vecs[s.pos]
		s.pos++
		return
	}
	s.out.PushEOS(cycle)
	s.eos = true
}

// Sink collects a stream's records and observes its end.
type Sink struct {
	name   string
	in     *sim.Link
	recs   []record.Rec
	eos    bool
	schema *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
}

// NewSink builds a sink on the given link.
func NewSink(name string, in *sim.Link) *Sink {
	return &Sink{name: name, in: in}
}

// Name implements sim.Component.
func (s *Sink) Name() string { return s.name }

// InputLinks implements sim.InputPorts.
func (s *Sink) InputLinks() []*sim.Link { return []*sim.Link{s.in} }

// Done implements sim.Component.
func (s *Sink) Done() bool { return s.eos }

// Idle implements sim.Idler: nothing to do without input.
func (s *Sink) Idle(int64) bool { return s.eos || s.in.Empty() }

// WakeHint implements sim.WakeHinter: a sink only waits on link arrivals.
func (s *Sink) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (s *Sink) Tick(cycle int64) {
	for !s.in.Empty() {
		f := s.in.Peek()
		s.in.Drop()
		if f.EOS {
			s.eos = true
			return
		}
		s.recs = f.Vec.AppendRecords(s.recs)
	}
}

// TickBatch implements sim.BatchTicker: the sink drains every visible flit
// in Tick already, so the batch form only changes the bookkeeping — whole
// contiguous spans are read through PeekBlock and released with one
// DropBlock counter update instead of a Peek/Drop pair per flit.
func (s *Sink) TickBatch(cycle int64, n int) int {
	total := 0
	for !s.in.Empty() {
		blk := s.in.PeekBlock()
		for i := range blk {
			if blk[i].EOS {
				// Consume up to and including the EOS, then stop exactly as
				// the scalar loop does — nothing after EOS is touched.
				s.in.DropBlock(i + 1)
				s.eos = true
				return total + i + 1
			}
			s.recs = blk[i].Vec.AppendRecords(s.recs)
		}
		s.in.DropBlock(len(blk))
		total += len(blk)
	}
	return total
}

// Records returns everything collected so far.
func (s *Sink) Records() []record.Rec { return s.recs }

// Count returns the number of records collected.
func (s *Sink) Count() int { return len(s.recs) }

// Map is a compute tile statically configured with a per-record function:
// one vector per cycle through a PipelineDepth-stage datapath. The function
// mutates the record in place — it is handed a pointer into the tile's own
// pipeline buffer, so no per-record copy crosses the call. The function
// may hold state (e.g. the ingress counter that stamps hash-table node
// slots) because one node models one physical pipeline through which
// records pass in a definite order.
type Map struct {
	name string
	in   *sim.Link
	out  *sim.Link
	fn   func(*record.Rec)

	pipe     ring.Queue[timedVec]
	eosIn    bool
	eos      bool
	cyclic   bool
	inSchema *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
	outSchem *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
}

type timedVec struct {
	v     record.Vector
	ready int64
}

// NewMap builds a map tile applying fn, in place, to every record.
func NewMap(name string, fn func(*record.Rec), in, out *sim.Link) *Map {
	return &Map{name: name, fn: fn, in: in, out: out}
}

// Cyclic marks the node as living on a recirculating path that never
// carries an end-of-stream token (paper §III-A): the node is done whenever
// it is empty, because the enclosing LoopCtl proves the loop has drained.
// It returns the node for call chaining.
func (m *Map) Cyclic() *Map {
	m.cyclic = true
	return m
}

// Name implements sim.Component.
func (m *Map) Name() string { return m.name }

// InputLinks implements sim.InputPorts.
func (m *Map) InputLinks() []*sim.Link { return []*sim.Link{m.in} }

// OutputLinks implements sim.OutputPorts.
func (m *Map) OutputLinks() []*sim.Link { return []*sim.Link{m.out} }

// Done implements sim.Component.
func (m *Map) Done() bool {
	if m.cyclic {
		return m.pipe.Len() == 0
	}
	return m.eos
}

// Idle implements sim.Idler: mirrors Tick's three actions — drain a
// matured head, accept input, forward EOS — returning true only when none
// can fire this cycle.
func (m *Map) Idle(cycle int64) bool {
	if m.pipe.Len() > 0 && m.pipe.Front().ready <= cycle && m.out.CanPush() {
		return false
	}
	if !m.eosIn && !m.in.Empty() && m.pipe.Len() < PipelineDepth+2 {
		return false
	}
	if m.eosIn && !m.eos && m.pipe.Len() == 0 && m.out.CanPush() {
		return false
	}
	return true
}

// WakeHint implements sim.WakeHinter: the datapath's only self-timed
// event is the head vector maturing out of the pipeline.
func (m *Map) WakeHint(int64) int64 {
	if m.pipe.Len() > 0 {
		return m.pipe.Front().ready
	}
	return sim.WakeNever
}

// WorstCaseInternalLatency implements sim.LatencyBound: a vector can sit
// in the datapath for the pipeline depth without link activity.
func (m *Map) WorstCaseInternalLatency() int64 { return PipelineDepth }

// Tick implements sim.Component.
func (m *Map) Tick(cycle int64) {
	// Drain pipeline head.
	if m.pipe.Len() > 0 && m.pipe.Front().ready <= cycle && m.out.CanPush() {
		*m.out.StageVec(cycle) = m.pipe.Front().v
		m.pipe.Drop()
	}
	// Accept one vector per cycle.
	if !m.eosIn && !m.in.Empty() && m.pipe.Len() < PipelineDepth+2 {
		f := m.in.Peek()
		m.in.Drop()
		if f.EOS {
			m.eosIn = true
		} else {
			slot := m.pipe.PushRefDirty()
			slot.ready = cycle + PipelineDepth
			slot.v.Reset()
			for i := 0; i < record.NumLanes; i++ {
				if f.Vec.Valid(i) {
					r := slot.v.PushRef()
					*r = f.Vec.Lane[i]
					m.fn(r)
				}
			}
		}
	}
	// Forward EOS once drained.
	if m.eosIn && !m.eos && m.pipe.Len() == 0 && m.out.CanPush() {
		m.out.PushEOS(cycle)
		m.eos = true
	}
}

// copyVec copies only the valid lanes of src into dst, leaving invalid
// lanes dirty — no reader consults a lane outside the mask, and on the
// sparse streams filters re-pack, lane-wise copying moves a fraction of the
// full 16-lane vector.
func copyVec(dst, src *record.Vector) {
	m := src.Mask
	dst.Mask = m // lint:phaseconf-ok dst is the caller's staged flit on a link the ticking component produces into (Link.StageVec), owned by the claiming worker until commit
	if m == (1<<record.NumLanes)-1 {
		dst.Lane = src.Lane // lint:phaseconf-ok dst is the caller's staged flit on a link the ticking component produces into, owned by the claiming worker until commit
		return
	}
	for m != 0 {
		i := bits.TrailingZeros16(m)
		m &= m - 1
		dst.Lane[i] = src.Lane[i] // lint:phaseconf-ok dst is the caller's staged flit on a link the ticking component produces into, owned by the claiming worker until commit
	}
}
