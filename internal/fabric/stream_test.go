package fabric

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

func newHBMGraph() *Graph {
	g := NewGraph()
	g.AttachHBM(dram.New(dram.DefaultConfig()))
	return g
}

func TestDRAMScanRoundTrip(t *testing.T) {
	g := newHBMGraph()
	const n = 5000
	words := make([]uint32, 3*n)
	for i := range words {
		words[i] = uint32(i)
	}
	g.HBM.LoadWords(1000, words)
	out := g.Link("out")
	NewDRAMScan(g, "scan", []Extent{{Addr: 1000, Words: 3 * n}}, 3, out)
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != n {
		t.Fatalf("scanned %d records", snk.Count())
	}
	for i, r := range snk.Records() {
		for k := 0; k < 3; k++ {
			if r.Get(k) != uint32(3*i+k) {
				t.Fatalf("record %d field %d = %d (ordering across chunks broken)", i, k, r.Get(k))
			}
		}
	}
}

func TestDRAMScanMultipleExtents(t *testing.T) {
	g := newHBMGraph()
	g.HBM.LoadWords(0, []uint32{1, 2, 3, 4})
	g.HBM.LoadWords(9000, []uint32{5, 6})
	out := g.Link("out")
	NewDRAMScan(g, "scan", []Extent{{Addr: 0, Words: 4}, {Addr: 9000, Words: 2}, {Addr: 0, Words: 0}}, 2, out)
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	got := snk.Records()
	if len(got) != 3 || got[2].Get(0) != 5 || got[2].Get(1) != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestDRAMAppendThenScan(t *testing.T) {
	g := newHBMGraph()
	const n = 1000
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(uint32(i), uint32(i*2))
	}
	mid := g.Link("mid")
	g.Add(NewSource("src", recs, mid))
	app := NewDRAMAppend(g, "app", 4096, 2, mid)
	if _, err := g.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if app.Count() != n || app.Words() != 2*n {
		t.Fatalf("append: count=%d words=%d", app.Count(), app.Words())
	}
	for i := 0; i < n; i++ {
		if g.HBM.ReadWord(4096+uint32(2*i)) != uint32(i) {
			t.Fatalf("word %d wrong", i)
		}
	}
}

func TestOrderedMergeProducesSortedStream(t *testing.T) {
	g := newHBMGraph()
	rng := rand.New(rand.NewSource(1))
	mkSorted := func(n int) []record.Rec {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32() % 10000
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]record.Rec, n)
		for i, k := range keys {
			out[i] = record.Make(k, uint32(i))
		}
		return out
	}
	var ins []*sim.Link
	total := 0
	for i := 0; i < 5; i++ {
		l := g.Link(fmt.Sprintf("in%d", i))
		n := 100 + i*57
		g.Add(NewSource(fmt.Sprintf("src%d", i), mkSorted(n), l))
		ins = append(ins, l)
		total += n
	}
	out := g.Link("out")
	g.Add(NewOrderedMerge("om", func(r record.Rec) uint64 { return uint64(r.Get(0)) }, ins, out))
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	got := snk.Records()
	if len(got) != total {
		t.Fatalf("merged %d of %d", len(got), total)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Get(0) > got[i].Get(0) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestOrderedMergeEmptyInput(t *testing.T) {
	g := newHBMGraph()
	a, b, out := g.Link("a"), g.Link("b"), g.Link("out")
	g.Add(NewSource("sa", []record.Rec{record.Make(1)}, a))
	g.Add(NewSource("sb", nil, b))
	g.Add(NewOrderedMerge("om", func(r record.Rec) uint64 { return uint64(r.Get(0)) }, []*sim.Link{a, b}, out))
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != 1 {
		t.Fatalf("count=%d", snk.Count())
	}
}

func TestSpillQueueFIFOAndSpills(t *testing.T) {
	g := newHBMGraph()
	const n = 3000 // far beyond the on-chip capacity
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(uint32(i))
	}
	in, out := g.Link("in"), g.Link("out")
	g.Add(NewSource("src", recs, in))
	sq := NewSpillQueue(g, "sq", 1<<28, 1, 64, in, out)
	// A deliberately slow consumer forces the queue to fill and spill.
	// Spill queues sit on cyclic paths and never forward EOS, so the sink
	// finishes by count.
	snk := &slowSink{in: out, want: n}
	g.Add(snk)
	if _, err := g.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if len(snk.recs) != n {
		t.Fatalf("drained %d of %d", len(snk.recs), n)
	}
	for i, r := range snk.recs {
		if r.Get(0) != uint32(i) {
			t.Fatalf("FIFO order broken at %d: got %d", i, r.Get(0))
		}
	}
	if sq.Spills == 0 {
		t.Error("expected spills with a 64-record on-chip segment and a slow consumer")
	}
}

type slowSink struct {
	in   *sim.Link
	recs []record.Rec
	want int
}

func (s *slowSink) Name() string { return "slow" }
func (s *slowSink) Done() bool   { return len(s.recs) >= s.want }

func (s *slowSink) InputLinks() []*sim.Link { return []*sim.Link{s.in} }
func (s *slowSink) Tick(c int64) {
	if c%4 != 0 || s.in.Empty() {
		return
	}
	f := s.in.Pop()
	if f.EOS {
		return
	}
	s.recs = append(s.recs, f.Vec.Records()...)
}

func TestDRAMExpandSpawnsChildren(t *testing.T) {
	g := newHBMGraph()
	// Memory holds per-slot child counts.
	for i := uint32(0); i < 100; i++ {
		g.HBM.WriteWord(i, i%4)
	}
	in, out := g.Link("in"), g.Link("out")
	recs := make([]record.Rec, 100)
	for i := range recs {
		recs[i] = record.Make(uint32(i))
	}
	g.Add(NewSource("src", recs, in))
	NewDRAMExpand(g, "exp", 1,
		func(r record.Rec) uint32 { return r.Get(0) },
		func(r record.Rec, data []uint32) []record.Rec {
			out := make([]record.Rec, data[0])
			for i := range out {
				out[i] = r.Append(uint32(i))
			}
			return out
		}, nil, in, out)
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		want += i % 4
	}
	if snk.Count() != want {
		t.Fatalf("children=%d want %d", snk.Count(), want)
	}
}

func TestMergeJoinElement(t *testing.T) {
	g := newHBMGraph()
	a := []record.Rec{record.Make(1, 10), record.Make(2, 20), record.Make(2, 21), record.Make(5, 50)}
	b := []record.Rec{record.Make(2, 91), record.Make(2, 92), record.Make(3, 93), record.Make(5, 95)}
	la, lb, out := g.Link("a"), g.Link("b"), g.Link("out")
	g.Add(NewSource("sa", a, la))
	g.Add(NewSource("sb", b, lb))
	key := func(r record.Rec) uint64 { return uint64(r.Get(0)) }
	mj := NewMergeJoin("mj", key, key, func(x, y record.Rec) record.Rec {
		return record.Make(x.Get(0), x.Get(1), y.Get(1))
	}, la, lb, out)
	g.Add(mj)
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(100_000); err != nil {
		t.Fatal(err)
	}
	// key 2: 2x2 = 4 pairs; key 5: 1 pair.
	if mj.Matches() != 5 || snk.Count() != 5 {
		t.Fatalf("matches=%d sunk=%d, want 5", mj.Matches(), snk.Count())
	}
}
