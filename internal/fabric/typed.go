package fabric

import (
	"fmt"
	"strings"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// This file is the schema type system of the fabric: every node type gains
// a chainable Typed(...) declaration and implements sim.TypedPorts, and
// Graph.Check propagates the declarations across links. The rule is
// record.Schema.AssignableTo — a producer may guarantee more trailing
// fields than a consumer requires (recirculating paths widen threads with
// loop-local state; the loop entry only demands the external fields), but
// every field the consumer names must sit at the position it will read it
// from. Schemas are static per stream, so the whole check runs at
// graph-construction time; no per-record cost is added to the simulation.
//
// Reorder safety rides on the same pass: components implementing
// sim.ReorderSemantics declare the commutativity class of their
// cross-thread effects, and Check rejects any order-dependent effect that
// carries no waiver — the static half of the paper's undefined-thread-order
// contract (§II).

// The schema and reorder defect classes. DiagSchemaMismatch,
// DiagSchemaWidth, DiagSchemaPorts, and DiagOrderDependent are hard Check
// errors; DiagUntypedLink is a Prove warning emitted only under
// ProveOptions.RequireSchemas.
const (
	// DiagSchemaMismatch: a link's producer schema is not assignable to a
	// consumer's declared schema.
	DiagSchemaMismatch DiagCode = "schema-mismatch"
	// DiagSchemaWidth: a schema widening (Graph.Widen) pushed a record
	// layout past record.MaxFields — the fork/filter/stamp stage would
	// overflow the register file at runtime.
	DiagSchemaWidth DiagCode = "schema-width"
	// DiagSchemaPorts: a component's schema list does not parallel its
	// link list (wrong length), so declarations cannot be matched to ports.
	DiagSchemaPorts DiagCode = "schema-ports"
	// DiagOrderDependent: a component declares an order-dependent
	// cross-thread effect with no waiver; under undefined thread order its
	// results vary between the in-order and reordering pipelines.
	DiagOrderDependent DiagCode = "order-dependent"
	// DiagUntypedLink: a link endpoint with no schema declaration, found
	// while proving with ProveOptions.RequireSchemas.
	DiagUntypedLink DiagCode = "untyped-link"
)

// Widen appends trailing fields to a schema, converting an overflow past
// record.MaxFields into a DiagSchemaWidth construction defect (reported by
// the next Check) instead of a panic. Kernels widen thread layouts as
// records pick up loop-local state; this is the checked path for doing so.
func (g *Graph) Widen(s *record.Schema, names ...string) *record.Schema {
	w, err := s.TryWith(names...)
	if err != nil {
		g.defectf(DiagSchemaWidth, "widening %s with %v: %v", s, names, err)
		return s
	}
	return w
}

// ---- Typed declarations, one per node type ----

// Typed declares the schema of the records this source emits.
func (s *Source) Typed(schema *record.Schema) *Source {
	s.schema = schema
	return s
}

// InputSchemas implements sim.TypedPorts; a source has no inputs.
func (s *Source) InputSchemas() []*record.Schema { return nil }

// OutputSchemas implements sim.TypedPorts.
func (s *Source) OutputSchemas() []*record.Schema {
	if s.schema == nil {
		return nil
	}
	return []*record.Schema{s.schema}
}

// Typed declares the schema of the records this sink expects.
func (s *Sink) Typed(schema *record.Schema) *Sink {
	s.schema = schema
	return s
}

// InputSchemas implements sim.TypedPorts.
func (s *Sink) InputSchemas() []*record.Schema {
	if s.schema == nil {
		return nil
	}
	return []*record.Schema{s.schema}
}

// OutputSchemas implements sim.TypedPorts; a sink has no outputs.
func (s *Sink) OutputSchemas() []*record.Schema { return nil }

// Typed declares the map's consumed and produced schemas. Either may be nil
// to leave that side untyped.
func (m *Map) Typed(in, out *record.Schema) *Map {
	m.inSchema, m.outSchem = in, out
	return m
}

// InputSchemas implements sim.TypedPorts.
func (m *Map) InputSchemas() []*record.Schema {
	if m.inSchema == nil {
		return nil
	}
	return []*record.Schema{m.inSchema}
}

// OutputSchemas implements sim.TypedPorts.
func (m *Map) OutputSchemas() []*record.Schema {
	if m.outSchem == nil {
		return nil
	}
	return []*record.Schema{m.outSchem}
}

// Typed declares the filter's schemas. With no outs arguments every output
// carries the input schema unchanged (a filter routes, it does not rewrite);
// otherwise outs must name one schema per output — including nil-link
// (kill) slots — in declaration order.
func (f *Filter) Typed(in *record.Schema, outs ...*record.Schema) *Filter {
	f.inSchema = in
	if len(outs) == 0 {
		f.outSchemas = make([]*record.Schema, len(f.outs))
		for i := range f.outSchemas {
			f.outSchemas[i] = in
		}
		return f
	}
	if len(outs) != len(f.outs) {
		panic(fmt.Sprintf("fabric: %s.Typed: %d output schemas for %d outputs", f.name, len(outs), len(f.outs)))
	}
	f.outSchemas = outs
	return f
}

// InputSchemas implements sim.TypedPorts.
func (f *Filter) InputSchemas() []*record.Schema {
	if f.inSchema == nil {
		return nil
	}
	return []*record.Schema{f.inSchema}
}

// OutputSchemas implements sim.TypedPorts. Like OutputLinks, nil-link
// (kill) slots are omitted so the two lists stay parallel.
func (f *Filter) OutputSchemas() []*record.Schema {
	if f.outSchemas == nil {
		return nil
	}
	var out []*record.Schema
	for i, o := range f.outs {
		if o.Link != nil {
			out = append(out, f.outSchemas[i])
		}
	}
	return out
}

// Typed declares the merge's schemas: pri and sec for the two inputs
// (priority first, matching InputLinks order), out for the merged stream.
// On a loop entry pri is the recirculating path — typically wider than the
// external input, with out matching the body's expectation.
func (m *Merge) Typed(pri, sec, out *record.Schema) *Merge {
	m.priSchema, m.secSchema, m.outSchem = pri, sec, out
	return m
}

// InputSchemas implements sim.TypedPorts.
func (m *Merge) InputSchemas() []*record.Schema {
	if m.priSchema == nil && m.secSchema == nil {
		return nil
	}
	return []*record.Schema{m.priSchema, m.secSchema}
}

// OutputSchemas implements sim.TypedPorts.
func (m *Merge) OutputSchemas() []*record.Schema {
	if m.outSchem == nil {
		return nil
	}
	return []*record.Schema{m.outSchem}
}

// Typed declares the fork's consumed and produced schemas.
func (f *Fork) Typed(in, out *record.Schema) *Fork {
	f.inSchema, f.outSchem = in, out
	return f
}

// InputSchemas implements sim.TypedPorts.
func (f *Fork) InputSchemas() []*record.Schema {
	if f.inSchema == nil {
		return nil
	}
	return []*record.Schema{f.inSchema}
}

// OutputSchemas implements sim.TypedPorts.
func (f *Fork) OutputSchemas() []*record.Schema {
	if f.outSchem == nil {
		return nil
	}
	return []*record.Schema{f.outSchem}
}

// Typed declares the scan's emitted schema, which must name exactly
// recWords fields — the scan chops DRAM into records of that width.
func (s *DRAMScan) Typed(schema *record.Schema) *DRAMScan {
	if schema != nil && schema.Len() != s.recWords {
		panic(fmt.Sprintf("fabric: %s.Typed: schema %s has %d fields but the scan emits %d-word records",
			s.name, schema, schema.Len(), s.recWords))
	}
	s.schema = schema
	return s
}

// InputSchemas implements sim.TypedPorts; a scan has no inputs.
func (s *DRAMScan) InputSchemas() []*record.Schema { return nil }

// OutputSchemas implements sim.TypedPorts.
func (s *DRAMScan) OutputSchemas() []*record.Schema {
	if s.schema == nil {
		return nil
	}
	return []*record.Schema{s.schema}
}

// Reordering implements sim.ReorderSemantics: the scan only reads DRAM, and
// out-of-order chunk completions are reassembled in sequence before any
// record is emitted.
func (s *DRAMScan) Reordering() sim.ReorderDecl {
	return sim.ReorderDecl{Class: sim.ReorderPure, Reorders: false, Detail: "dram-scan(read, in-order reassembly)"}
}

// Typed declares the append's consumed schema, which must name exactly
// recWords fields — the append materializes that prefix of every record.
func (a *DRAMAppend) Typed(schema *record.Schema) *DRAMAppend {
	if schema != nil && schema.Len() != a.recWords {
		panic(fmt.Sprintf("fabric: %s.Typed: schema %s has %d fields but the append writes %d-word records",
			a.name, schema, schema.Len(), a.recWords))
	}
	a.schema = schema
	return a
}

// InputSchemas implements sim.TypedPorts.
func (a *DRAMAppend) InputSchemas() []*record.Schema {
	if a.schema == nil {
		return nil
	}
	return []*record.Schema{a.schema}
}

// OutputSchemas implements sim.TypedPorts; an append has no outputs.
func (a *DRAMAppend) OutputSchemas() []*record.Schema { return nil }

// Reordering implements sim.ReorderSemantics. The append buffer's contract
// is a multiset: each record lands in its own freshly-reserved slot
// (addresses are disjoint by construction), so the set of records
// materialized is order-invariant; only their layout order — which the
// append-only buffer deliberately leaves undefined — depends on arrival
// order.
func (a *DRAMAppend) Reordering() sim.ReorderDecl {
	return sim.ReorderDecl{Class: sim.ReorderCommutative, Reorders: false, Detail: "dram-append(disjoint slots, unordered buffer)"}
}

// InputSchemas implements sim.TypedPorts from the node's spad.Spec.
func (d *DRAMNode) InputSchemas() []*record.Schema {
	if d.spec.In == nil {
		return nil
	}
	return []*record.Schema{d.spec.In}
}

// OutputSchemas implements sim.TypedPorts from the node's spad.Spec.
func (d *DRAMNode) OutputSchemas() []*record.Schema {
	if d.spec.Out == nil {
		return nil
	}
	return []*record.Schema{d.spec.Out}
}

// Reordering implements sim.ReorderSemantics: DRAM responses complete out
// of order across channels and are re-vectorized as they land, so the node
// always reorders; its effect class comes from its Spec.
func (d *DRAMNode) Reordering() sim.ReorderDecl { return d.spec.Decl(true) }

// ---- The static checks ----

// schemaSide returns one side's link and schema lists for a typed
// component.
func schemaSide(c sim.Component, tp sim.TypedPorts, output bool) (links []*sim.Link, schemas []*record.Schema, side string) {
	if output {
		side = "output"
		if op, ok := c.(sim.OutputPorts); ok {
			links = op.OutputLinks()
		}
		schemas = tp.OutputSchemas()
	} else {
		side = "input"
		if ip, ok := c.(sim.InputPorts); ok {
			links = ip.InputLinks()
		}
		schemas = tp.InputSchemas()
	}
	return links, schemas, side
}

// schemaParity reports a DiagSchemaPorts defect when a non-empty schema
// list is not parallel to its link list, which makes the declarations
// unmatchable to ports.
func schemaParity(c sim.Component, tp sim.TypedPorts, output bool) *Diag {
	links, schemas, side := schemaSide(c, tp, output)
	if len(schemas) == 0 || len(schemas) == len(links) {
		return nil
	}
	return &Diag{DiagSchemaPorts,
		fmt.Sprintf("node %q declares %d %s schemas for %d %s links; the lists must be parallel",
			c.Name(), len(schemas), side, len(links), side)}
}

// schemaFor returns the schema a component declares for link l on the given
// side, or nil when the component (or that port) is untyped or the schema
// list is mis-sized (schemaParity reports that separately).
func schemaFor(c sim.Component, l *sim.Link, output bool) *record.Schema {
	tp, ok := c.(sim.TypedPorts)
	if !ok {
		return nil
	}
	links, schemas, _ := schemaSide(c, tp, output)
	if len(schemas) == 0 || len(schemas) != len(links) {
		return nil
	}
	for i, cand := range links {
		if cand == l {
			return schemas[i]
		}
	}
	return nil
}

// checkSchemas propagates schema declarations across every attributed link:
// the producer's declared output schema must be assignable to each
// consumer's declared input schema. Links with an untyped endpoint are
// skipped here (Prove reports them under RequireSchemas).
func (g *Graph) checkSchemas(comps []sim.Component, ends map[*sim.Link]*linkEnds) []Diag {
	var diags []Diag
	for _, c := range comps {
		tp, ok := c.(sim.TypedPorts)
		if !ok {
			continue
		}
		if d := schemaParity(c, tp, false); d != nil {
			diags = append(diags, *d)
		}
		if d := schemaParity(c, tp, true); d != nil {
			diags = append(diags, *d)
		}
	}
	for _, l := range g.Sys.Links() {
		e := ends[l]
		if e == nil || len(e.producers) != 1 {
			continue
		}
		prod := comps[e.producers[0]]
		ps := schemaFor(prod, l, true)
		if ps == nil {
			continue
		}
		for _, ci := range e.consumers {
			cons := comps[ci]
			cs := schemaFor(cons, l, false)
			if cs == nil {
				continue
			}
			if !ps.AssignableTo(cs) {
				diags = append(diags, Diag{DiagSchemaMismatch,
					fmt.Sprintf("link %q: producer %q emits %s but consumer %q requires %s (consumer fields must be a positional prefix)",
						l.Name(), prod.Name(), ps, cons.Name(), cs)})
			}
		}
	}
	return diags
}

// proveSchemas adds the positive half of the schema check to a proof
// report: one proof per link whose endpoints are both typed (Check already
// rejected incompatible pairs, so reaching here means they are assignable).
// Under opt.RequireSchemas, endpoints left untyped become DiagUntypedLink
// warnings — the strict mode shipped blueprints must pass.
func (g *Graph) proveSchemas(report *ProofReport, comps []sim.Component, ends map[*sim.Link]*linkEnds, opt ProveOptions) {
	for _, l := range g.Sys.Links() {
		e := ends[l]
		if e == nil || len(e.producers) != 1 || len(e.consumers) != 1 {
			continue
		}
		prod, cons := comps[e.producers[0]], comps[e.consumers[0]]
		ps := schemaFor(prod, l, true)
		cs := schemaFor(cons, l, false)
		switch {
		case ps != nil && cs != nil:
			prop := fmt.Sprintf("schema-compatible: %q emits %s, %q requires %s", prod.Name(), ps, cons.Name(), cs)
			if ps.Equal(cs) {
				prop = fmt.Sprintf("schema-compatible: %q and %q agree on %s", prod.Name(), cons.Name(), ps)
			}
			report.Proofs = append(report.Proofs, Proof{Subject: "link " + l.Name(), Property: prop})
		case opt.RequireSchemas:
			var missing []string
			if ps == nil {
				missing = append(missing, fmt.Sprintf("producer %q", prod.Name()))
			}
			if cs == nil {
				missing = append(missing, fmt.Sprintf("consumer %q", cons.Name()))
			}
			report.Warnings = append(report.Warnings, Diag{DiagUntypedLink,
				fmt.Sprintf("link %q is not schema-checked: %s declared no schema for it",
					l.Name(), strings.Join(missing, " and "))})
		}
	}
}

// proveReorder adds the reorder-safety facts: every component declaring its
// cross-thread effects either proves order-insensitive (pure, commutative,
// or idempotent — a proof) or is accepted on an explicit waiver (recorded
// in report.Waived; unwaived order dependence never reaches Prove, it is a
// Check error).
func (g *Graph) proveReorder(report *ProofReport, comps []sim.Component) {
	for _, c := range comps {
		rs, ok := c.(sim.ReorderSemantics)
		if !ok {
			continue
		}
		decl := rs.Reordering()
		if decl.Class == sim.ReorderOrderDependent {
			report.Waived = append(report.Waived, Diag{DiagOrderDependent,
				fmt.Sprintf("node %q: order-dependent %s waived: %s", c.Name(), decl.Detail, decl.Waiver)})
			continue
		}
		how := "does not reorder threads"
		if decl.Reorders {
			how = "reorders threads freely"
		}
		report.Proofs = append(report.Proofs, Proof{
			Subject:  "node " + c.Name(),
			Property: fmt.Sprintf("reorder-safe: %s effect (%s) %s", decl.Class, decl.Detail, how),
		})
	}
}

// checkReorder enforces the undefined-thread-order contract: every
// component declaring its cross-thread effects (sim.ReorderSemantics) must
// classify them as pure, commutative, or idempotent — or carry an explicit
// waiver explaining why arrival order cannot be observed. An unwaived
// order-dependent effect is a hard error: its results would differ between
// the in-order and reordering scratchpad configurations.
func (g *Graph) checkReorder(comps []sim.Component) []Diag {
	var diags []Diag
	for _, c := range comps {
		rs, ok := c.(sim.ReorderSemantics)
		if !ok {
			continue
		}
		decl := rs.Reordering()
		if decl.Class == sim.ReorderOrderDependent && decl.Waiver == "" {
			diags = append(diags, Diag{DiagOrderDependent,
				fmt.Sprintf("node %q performs an order-dependent update (%s) with no waiver; under undefined thread order its result depends on request arrival order — use a commutative RMW op, declare DisjointAddrs, or set OrderWaiver",
					c.Name(), decl.Detail)})
		}
	}
	return diags
}
